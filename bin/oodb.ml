(* Command-line driver for the Open OODB query optimizer.

     oodb catalog                          print the Table 1 catalog
     oodb rules                            list togglable rule names
     oodb optimize "<zql>"                 simplify + optimize + explain
     oodb optimize --paper q1              same for a built-in paper query
     oodb optimize --paper q1 --cache      through the plan cache (OODB_PLANCACHE_DIR)
     oodb optimize-all --repeat 2          batch MQO over a shared memo, warm 2nd pass
     oodb memo --paper q2                  dump the memo after closure
     oodb run "<zql>" [--scale 0.1]        optimize + execute on generated data
     oodb run --paper q1 --profile         ... with per-operator profiling
     oodb run --paper q1 --trace-out t.json   ... writing a Perfetto-loadable trace
     oodb run --paper q1 --feedback        ... closing the cardinality-feedback loop
     oodb feedback [--json|--clear]        inspect or clear the feedback store
     oodb explain --paper q3 --analyze     plan annotated with measured actuals
     oodb explain --paper q1 --why         derivation lineage of the winning plan
     oodb explain --paper q2 --memo-out m.json --memo-dot m.dot   memo export
     oodb why-not --paper q1 --force-join merge    where the alternative died
     oodb optimize --paper q1 --trace      ... with search tracing
     oodb stats [-o FILE]                  full machine-readable workload report
     oodb bench-compare OLD [NEW]          regression gate over bench history records
     oodb greedy --paper q4                the ObjectStore-style greedy baseline
     oodb analyze --scale 0.2              refresh catalog statistics from data
     oodb gen --seed 42 --scenarios 100    seeded scenarios + differential fuzzing
     oodb effectiveness --seed 42          OptMark-style plan rank/regret scoring *)

module Value = Oodb_storage.Value
module Logical = Oodb_algebra.Logical
module Catalog = Oodb_catalog.Catalog
module OC = Oodb_catalog.Open_oodb_catalog
module Cost = Oodb_cost.Cost
module Opt = Open_oodb.Optimizer
module Options = Open_oodb.Options
module Engine = Open_oodb.Model.Engine
module Db = Oodb_exec.Db
module Executor = Oodb_exec.Executor
module Json = Oodb_util.Json
module Trace = Oodb_obs.Trace
module Profile = Oodb_obs.Profile
module Report = Oodb_obs.Report
module Span = Oodb_obs.Span
module Metrics = Oodb_obs.Metrics
module History = Oodb_obs.History
module Plancache = Oodb_plancache.Plancache
module Fingerprint = Oodb_plancache.Fingerprint
module Feedback = Oodb_obs.Feedback
module Provenance = Oodb_obs.Provenance
module Datagen = Oodb_workloads.Datagen
module Scenario = Oodb_scenario.Scenario
module Differential = Oodb_scenario.Differential
module Effectiveness = Oodb_scenario.Effectiveness
open Cmdliner

(* ------------------------------------------------------------------ *)
(* Shared arguments                                                     *)

let query_pos =
  Arg.(value & pos 0 (some string) None & info [] ~docv:"QUERY" ~doc:"ZQL query text.")

let paper_arg =
  Arg.(
    value
    & opt (some (enum (List.map (fun (n, q) -> (n, q)) Oodb_workloads.Queries.all))) None
    & info [ "paper"; "p" ] ~docv:"NAME"
        ~doc:"Use a built-in paper query instead of ZQL text: $(b,q1), $(b,q2), $(b,q3), \
              $(b,q4), $(b,fig2) or $(b,fig3).")

let disable_arg =
  Arg.(
    value & opt_all string []
    & info [ "disable"; "d" ] ~docv:"RULE"
        ~doc:"Disable an optimizer rule (repeatable); see $(b,oodb rules).")

let window_arg =
  Arg.(
    value & opt (some int) None
    & info [ "window"; "w" ] ~docv:"N" ~doc:"Assembly window of open references.")

let no_pruning_arg =
  Arg.(value & flag & info [ "no-pruning" ] ~doc:"Disable branch-and-bound cost limits.")

let no_indexes_arg =
  Arg.(value & flag & info [ "no-indexes" ] ~doc:"Hide all indexes from the optimizer.")

let scale_arg =
  Arg.(
    value & opt float 0.1
    & info [ "scale"; "s" ] ~docv:"S" ~doc:"Database scale factor (1.0 = paper's Table 1).")

let limit_arg =
  Arg.(value & opt int 10 & info [ "limit"; "n" ] ~docv:"N" ~doc:"Rows to print.")

let batch_size_arg =
  Arg.(
    value & opt (some int) None
    & info [ "batch-size"; "b" ] ~docv:"N"
        ~doc:"Tuples per execution batch (default $(b,OODB_BATCH_SIZE) or 64; 1 = classic \
              tuple-at-a-time Volcano).")

let options_of ?batch_size disabled window no_pruning =
  let options = Options.default in
  let options = List.fold_left (fun o r -> Options.disable r o) options disabled in
  let options = match window with Some w -> Options.with_assembly_window w options | None -> options in
  let options =
    match batch_size with Some b -> Options.with_batch_size b options | None -> options
  in
  { options with Options.pruning = not no_pruning }

(* queries compile to a logical expression plus the required physical
   properties an ORDER BY implies *)
let compile_query catalog paper text =
  match paper, text with
  | Some q, _ -> Ok (q, Open_oodb.Physprop.empty)
  | None, Some text -> (
    match Zql.Simplify.compile_ordered catalog text with
    | Error _ as e -> e
    | Ok c ->
      let required =
        match c.Zql.Simplify.c_order with
        | None -> Open_oodb.Physprop.empty
        | Some (ord_binding, ord_field) ->
          { Open_oodb.Physprop.empty with
            Open_oodb.Physprop.order =
              Some { Open_oodb.Physprop.ord_binding; ord_field } }
      in
      Ok (c.Zql.Simplify.c_logical, required))
  | None, None -> Error "no query given: pass ZQL text or --paper NAME"

(* ------------------------------------------------------------------ *)
(* Commands                                                             *)

let catalog_cmd =
  let run () =
    let cat = OC.catalog_with_indexes () in
    Format.printf "%a" Catalog.pp_table cat;
    Format.printf "@.Indexes:@.";
    List.iter
      (fun ix ->
        Format.printf "  %-22s on %s(%s), %d distinct keys@." ix.Catalog.ix_name
          ix.Catalog.ix_coll
          (String.concat "." ix.Catalog.ix_path)
          ix.Catalog.ix_distinct)
      (Catalog.indexes cat)
  in
  Cmd.v (Cmd.info "catalog" ~doc:"Print the Table 1 catalog and its indexes.")
    Term.(const (fun () -> run (); 0) $ const ())

let rules_cmd =
  let run () =
    Format.printf "transformation rules:@.";
    List.iter (Format.printf "  %s@.") Open_oodb.Trules.names;
    Format.printf "implementation rules:@.";
    List.iter (Format.printf "  %s@.") Open_oodb.Irules.names;
    Format.printf "enforcers:@.";
    List.iter (Format.printf "  %s@.") Open_oodb.Enforcers.names
  in
  Cmd.v
    (Cmd.info "rules" ~doc:"List all togglable optimizer rules.")
    Term.(const (fun () -> run (); 0) $ const ())

let optimize_run paper text disabled window no_pruning no_indexes trace timeline cache =
  let cat = if no_indexes then OC.catalog () else OC.catalog_with_indexes () in
  match compile_query cat paper text with
  | Error m ->
    Format.eprintf "error: %s@." m;
    1
  | Ok (q, required) ->
    Format.printf "optimizer input:@.%a@.@." Logical.pp q;
    let options = options_of disabled window no_pruning in
    if cache then begin
      (* with OODB_PLANCACHE_DIR set, a repeat invocation serves the
         stored plan without a search *)
      let pc = Plancache.of_env () in
      let o = Plancache.optimize ~options ~required pc cat q in
      (match o.Plancache.plan with
      | None -> Format.printf "no plan@."
      | Some p ->
        Format.printf "%a@.anticipated cost: %a@." Engine.pp_plan p Cost.pp p.Engine.cost);
      Format.printf "plan cache: %s in %.6fs%s@."
        (if o.Plancache.cached then "HIT" else "MISS (plan stored)")
        o.Plancache.opt_seconds
        (match Plancache.dir pc with
        | Some d -> Printf.sprintf " (dir %s)" d
        | None -> " (in-memory only; set OODB_PLANCACHE_DIR to persist)");
      0
    end
    else begin
      let recorder = if trace then Some (Trace.create ()) else None in
      let outcome =
        Opt.optimize ~options ~required ?trace:(Option.map Trace.sink recorder) cat q
      in
      Format.printf "%s" (Opt.explain outcome);
      (match recorder with
      | None -> ()
      | Some tr ->
        Format.printf "@.search trace: %a" Trace.pp_summary tr;
        Format.printf "@.%a" Trace.pp_rules tr;
        Format.printf "@.per-group activity:@.%a" Trace.pp_groups tr;
        if timeline > 0 then
          Format.printf "@.timeline (last %d events):@.%a" timeline
            (fun ppf tr ->
              Trace.pp_timeline ~limit:timeline
                ~prov_dropped:outcome.Opt.stats.Engine.prov_dropped ppf tr)
            tr);
      0
    end

let trace_arg =
  Arg.(
    value & flag
    & info [ "trace"; "t" ]
        ~doc:"Record the optimizer search trace and print its per-rule and per-group tables.")

let timeline_arg =
  Arg.(
    value & opt int 0
    & info [ "timeline" ] ~docv:"N"
        ~doc:"With $(b,--trace), also print the last $(docv) events of the search timeline.")

let cache_arg =
  Arg.(
    value & flag
    & info [ "cache" ]
        ~doc:"Route the query through the fingerprinted plan cache (honors \
              $(b,OODB_PLANCACHE_DIR) for persistence across invocations).")

let optimize_cmd =
  Cmd.v
    (Cmd.info "optimize" ~doc:"Simplify, optimize and explain a query.")
    Term.(
      const optimize_run $ paper_arg $ query_pos $ disable_arg $ window_arg $ no_pruning_arg
      $ no_indexes_arg $ trace_arg $ timeline_arg $ cache_arg)

(* ------------------------------------------------------------------ *)
(* optimize-all: the multi-query entry point                            *)

let optimize_all_run papers disabled window no_pruning no_indexes repeat =
  let cat = if no_indexes then OC.catalog () else OC.catalog_with_indexes () in
  let queries = match papers with [] -> Oodb_workloads.Queries.all | ps -> ps in
  let options = options_of disabled window no_pruning in
  let pc = Plancache.of_env () in
  for pass = 1 to max 1 repeat do
    Format.printf "pass %d:@." pass;
    let outcomes = Plancache.optimize_all ~options pc cat (List.map snd queries) in
    List.iter2
      (fun (name, _) (o : Plancache.outcome) ->
        match o.Plancache.plan with
        | None -> Format.printf "  %-5s no plan@." name
        | Some p ->
          Format.printf "  %-5s %-6s %.6fs  cost %a  (%d groups)@." name
            (if o.Plancache.cached then "cached" else "cold")
            o.Plancache.opt_seconds Cost.pp p.Engine.cost o.Plancache.stats.Engine.groups)
      queries outcomes
  done;
  let s = Plancache.stats pc in
  Format.printf
    "plan cache: %d hits, %d misses, %d insertions, %d evictions (%d/%d entries)@."
    s.Plancache.hits s.Plancache.misses s.Plancache.insertions s.Plancache.evictions
    s.Plancache.entries s.Plancache.capacity;
  0

let papers_all_arg =
  Arg.(
    value
    & opt_all (enum (List.map (fun (n, q) -> (n, (n, q))) Oodb_workloads.Queries.all)) []
    & info [ "paper"; "p" ] ~docv:"NAME"
        ~doc:"Add a built-in paper query to the batch (repeatable); all six when omitted.")

let repeat_arg =
  Arg.(
    value & opt int 1
    & info [ "repeat"; "r" ] ~docv:"N"
        ~doc:"Optimize the batch $(docv) times; passes after the first are served from the \
              plan cache.")

let optimize_all_cmd =
  Cmd.v
    (Cmd.info "optimize-all"
       ~doc:
         "Optimize a batch of queries against one shared memo (memo-level multi-query \
          optimization) behind the plan cache, printing per-query cost, time, and whether \
          the plan came from the cache.")
    Term.(
      const optimize_all_run $ papers_all_arg $ disable_arg $ window_arg $ no_pruning_arg
      $ no_indexes_arg $ repeat_arg)

let memo_run paper text disabled =
  let cat = OC.catalog_with_indexes () in
  match compile_query cat paper text with
  | Error m ->
    Format.eprintf "error: %s@." m;
    1
  | Ok (q, required) ->
    let options = options_of disabled None false in
    let outcome = Opt.optimize ~options ~required cat q in
    Format.printf "%a" Engine.pp_memo outcome.Opt.memo;
    Format.printf "root group: %d@." outcome.Opt.root;
    0

let memo_cmd =
  Cmd.v
    (Cmd.info "memo" ~doc:"Dump the memo (all groups and multi-expressions) after closure.")
    Term.(const memo_run $ paper_arg $ query_pos $ disable_arg)

let write_file path text =
  let oc = open_out path in
  output_string oc text;
  output_char oc '\n';
  close_out oc

let run_run paper text disabled window no_pruning batch_size scale limit profile trace_out
    skewed feedback =
  (* one collector for the whole pipeline: compile, cache lookup, search
     phases and per-operator execution all land in the same trace *)
  let spans = Option.map (fun _ -> Span.create ()) trace_out in
  let db = if skewed then Datagen.generate_skewed ~scale () else Datagen.generate ~scale () in
  let cat = Db.catalog db in
  match
    Span.with_span spans ~cat:"zql" "parse-simplify" (fun () ->
        compile_query cat paper text)
  with
  | Error m ->
    Format.eprintf "error: %s@." m;
    1
  | Ok (q, required) ->
    let options = options_of ?batch_size disabled window no_pruning in
    let fb =
      if not feedback then None
      else
        Some
          (match Feedback.of_env cat with
          | Some f -> f
          | None -> Feedback.create cat)
    in
    let options = match fb with Some f -> Feedback.install f options | None -> options in
    let qerror_limit =
      if feedback then Some options.Options.feedback_qerror_limit else None
    in
    let pc = Plancache.of_env () in
    let o = Plancache.optimize ~options ~required ?qerror_limit ?spans pc cat q in
    (if feedback then
       let s = Plancache.stats pc in
       if s.Plancache.qerror_evictions > 0 then
         Format.printf
           "plan cache: %d cached plan(s) evicted by the q-error gate (limit %.1f); \
            replanned with feedback@."
           s.Plancache.qerror_evictions options.Options.feedback_qerror_limit);
    (match o.Plancache.plan with
    | None ->
      Format.eprintf "error: no plan found@.";
      1
    | Some plan ->
      let rows, report =
        if profile || feedback || Option.is_some trace_out then begin
          (* the profiler's interposed iterators are what emit the
             per-operator spans, so --trace-out implies profiling; the
             feedback loop needs per-node actuals, so --feedback does too *)
          let rows, report, prof =
            Span.with_span spans ~cat:"pipeline" "execute" (fun () ->
                Profile.run ~config:options.Options.config ?spans db plan)
          in
          if profile || feedback then
            Format.printf "plan (est vs actual):@.%a@.estimated: %a@.@." Profile.pp
              prof Cost.pp plan.Engine.cost
          else
            Format.printf "plan:@.%a@.estimated: %a@.@." Engine.pp_plan plan Cost.pp
              plan.Engine.cost;
          (match fb with
          | None -> ()
          | Some f ->
            let n = Feedback.harvest f options.Options.config cat prof in
            Feedback.save f;
            let max_q, mean_q = Feedback.plan_quality prof in
            let fp = Fingerprint.make ~catalog:cat ~options ~required q in
            Plancache.note_execution pc fp ~epoch:(Catalog.epoch cat) ~max_qerror:max_q
              ~mean_qerror:mean_q;
            Format.printf
              "feedback: %d observation(s) harvested, store has %d key(s)%s@.plan \
               quality: max q-error %.2f, mean %.2f%s@.@."
              n (Feedback.size f)
              (match Feedback.file f with
              | Some p -> Printf.sprintf " (%s)" p
              | None -> " (in-memory; set OODB_FEEDBACK_DIR to persist)")
              max_q mean_q
              (if max_q > options.Options.feedback_qerror_limit then
                 Printf.sprintf " — over the %.1f gate, next lookup replans"
                   options.Options.feedback_qerror_limit
               else ""));
          (rows, report)
        end
        else begin
          Format.printf "plan:@.%a@.estimated: %a@.@." Engine.pp_plan plan Cost.pp
            plan.Engine.cost;
          Executor.run_measured ~config:options.Options.config db plan
        end
      in
      Format.printf "%a@.@." Executor.pp_report report;
      List.iteri
        (fun i row ->
          if i < limit then
            Format.printf "%s@."
              (String.concat ", "
                 (List.map
                    (fun (k, v) -> Printf.sprintf "%s=%s" k (Value.to_string v))
                    row)))
        rows;
      if List.length rows > limit then Format.printf "... (%d rows)@." (List.length rows);
      (match trace_out, spans with
      | Some path, Some s ->
        (match Span.well_formed s with
        | Ok () -> ()
        | Error m -> Format.eprintf "warning: trace not well-formed: %s@." m);
        write_file path (Json.to_string ~minify:true (Span.to_chrome s));
        Format.eprintf "wrote %s (%d span events; load in ui.perfetto.dev)@." path
          (Span.count s)
      | _ -> ());
      0)

let profile_arg =
  Arg.(
    value & flag
    & info [ "profile" ]
        ~doc:"Wrap every operator in counting iterators and print the annotated plan: \
              actual rows, estimated rows, q-error and per-operator I/O deltas.")

let trace_out_arg =
  Arg.(
    value & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:"Write a Chrome trace-event JSON of the whole pipeline (compile, cache \
              lookup, search phases, per-operator execution) to $(docv); load it in \
              ui.perfetto.dev or chrome://tracing.")

let skewed_arg =
  Arg.(
    value & flag
    & info [ "skewed" ]
        ~doc:"Generate the feedback-demo database: same data, but employee-name \
              statistics corrupted to 2 distinct values (the data really has ~100), so \
              the cold optimizer misprices $(b,name = ...) predicates until a profiled \
              run under $(b,--feedback) observes the truth.")

let feedback_arg =
  Arg.(
    value & flag
    & info [ "feedback" ]
        ~doc:"Close the cardinality-feedback loop: install stored observations (from \
              $(b,OODB_FEEDBACK_DIR) when set) into the optimizer, gate cached plans by \
              their recorded q-error, profile the execution, harvest per-node observed \
              statistics back into the store, and record this plan's quality in the plan \
              cache.")

let run_cmd =
  Cmd.v
    (Cmd.info "run" ~doc:"Optimize a query and execute it on a generated database.")
    Term.(
      const run_run $ paper_arg $ query_pos $ disable_arg $ window_arg $ no_pruning_arg
      $ batch_size_arg $ scale_arg $ limit_arg $ profile_arg $ trace_out_arg $ skewed_arg
      $ feedback_arg)

(* ------------------------------------------------------------------ *)
(* feedback: inspect or clear the persistent cardinality-feedback store  *)

let feedback_run json clear scale skewed =
  let dir =
    match Sys.getenv_opt Feedback.env_var with Some d when d <> "" -> Some d | _ -> None
  in
  if clear then (
    match dir with
    | None ->
      Format.eprintf "error: %s is not set; nothing to clear@." Feedback.env_var;
      1
    | Some d ->
      let n = Feedback.clear_dir d in
      Format.printf "cleared %d feedback store(s) under %s@." n d;
      0)
  else
    match dir with
    | None ->
      Format.eprintf
        "error: %s is not set; the feedback store lives in that directory (one JSON file \
         per catalog scope)@."
        Feedback.env_var;
      1
    | Some _ -> (
      (* the store is scoped to a catalog state, so rebuild the catalog
         the observations were harvested under *)
      let db = if skewed then Datagen.generate_skewed ~scale () else Datagen.generate ~scale () in
      let cat = Db.catalog db in
      match Feedback.of_env cat with
      | None -> assert false
      | Some fb ->
        if json then begin
          print_endline (Json.to_string (Feedback.to_json fb));
          0
        end
        else begin
          (match Feedback.file fb with
          | Some p ->
            Format.printf "store: %s (catalog epoch %d)%s@." p (Catalog.epoch cat)
              (if Sys.file_exists p then "" else " — not yet written")
          | None -> ());
          let rows = Feedback.contents fb in
          if rows = [] then
            Format.printf
              "no observations for this catalog scope; run a query with 'oodb run \
               --feedback' first@."
          else begin
            Format.printf "%-6s  %-48s %12s %6s %9s@." "kind" "key" "value" "count"
              "q-error";
            List.iter
              (fun (kind, key, o) ->
                Format.printf "%-6s  %-48s %12.6g %6d %9.2f@." kind key
                  o.Feedback.o_value o.Feedback.o_count o.Feedback.o_qerror)
              rows
          end;
          0
        end)

let feedback_json_arg =
  Arg.(value & flag & info [ "json" ] ~doc:"Emit the store as machine-readable JSON.")

let feedback_clear_arg =
  Arg.(
    value & flag
    & info [ "clear" ]
        ~doc:"Remove every feedback store file under $(b,OODB_FEEDBACK_DIR) (all catalog \
              scopes).")

let feedback_cmd =
  Cmd.v
    (Cmd.info "feedback"
       ~doc:
         "Inspect the persistent cardinality-feedback store for the current catalog \
          scope: observed selectivities, collection cardinalities and unnest fanouts \
          with their merge counts and worst q-errors. With $(b,--clear), remove all \
          stores under $(b,OODB_FEEDBACK_DIR).")
    Term.(
      const feedback_run $ feedback_json_arg $ feedback_clear_arg $ scale_arg
      $ skewed_arg)

let explain_run paper text disabled window no_pruning batch_size scale analyze why
    guided skewed feedback memo_out memo_dot =
  let db =
    if skewed then Datagen.generate_skewed ~scale ()
    else Oodb_workloads.Datagen.generate ~scale ()
  in
  let cat = Db.catalog db in
  match compile_query cat paper text with
  | Error m ->
    Format.eprintf "error: %s@." m;
    1
  | Ok (q, required) ->
    let options = options_of ?batch_size disabled window no_pruning in
    let options = if guided then Options.with_guided options else options in
    let options =
      if not feedback then options
      else
        match Feedback.of_env cat with
        | Some f -> Feedback.install f options
        | None ->
          Format.eprintf
            "warning: --feedback but %s is unset or empty; using cold statistics@."
            Feedback.env_var;
          options
    in
    let outcome = Opt.optimize ~options ~required cat q in
    (* memo exports work even when no plan was found: an empty physical
       memo with full lineage is exactly what debugging wants *)
    (match memo_out with
    | None -> ()
    | Some path ->
      write_file path (Json.to_string (Provenance.memo_json outcome ~required));
      Format.eprintf "wrote %s@." path);
    (match memo_dot with
    | None -> ()
    | Some path ->
      write_file path (Provenance.memo_dot outcome ~required);
      Format.eprintf "wrote %s@." path);
    (match outcome.Opt.plan with
    | None ->
      Format.printf "no plan found@.";
      1
    | Some plan ->
      if analyze then begin
        let _rows, report, prof = Profile.run ~config:options.Options.config db plan in
        Format.printf "plan (est vs actual, exclusive per node):@.%a@." Profile.pp prof;
        Format.printf "@.anticipated cost: %a@.optimization: %.4fs, %a@.@.%a@." Cost.pp
          plan.Engine.cost outcome.Opt.opt_seconds Opt.pp_stats outcome.Opt.stats
          Executor.pp_report report;
        0
      end
      else if why then begin
        match Provenance.why outcome ~required with
        | Error m ->
          Format.eprintf "error: %s@." m;
          1
        | Ok step ->
          let est =
            Provenance.est_annotations ~config:options.Options.config cat outcome
          in
          Format.printf "%s" (Opt.explain outcome);
          Format.printf "@.derivation (bottom-up):@.%a"
            (fun ppf s -> Provenance.pp_why ?est ppf s)
            step;
          let dropped = outcome.Opt.stats.Engine.prov_dropped in
          if dropped > 0 then
            Format.printf
              "WARNING: %d provenance record(s) dropped; lineage may be incomplete@."
              dropped;
          0
      end
      else begin
        Format.printf "%s" (Opt.explain outcome);
        0
      end)

let analyze_flag_arg =
  Arg.(
    value & flag
    & info [ "analyze" ]
        ~doc:"Also execute the plan and annotate every node with actual rows, q-error, \
              exclusive wall time and exclusive I/O (estimates alone otherwise).")

let why_flag_arg =
  Arg.(
    value & flag
    & info [ "why" ]
        ~doc:"Print the winning plan's derivation lineage: every node's producing \
              implementation rule, the transformation chain that derived its \
              multi-expression, per-step costs and cardinality estimates with their \
              source (model or feedback).")

let guided_arg =
  Arg.(
    value & flag
    & info [ "guided" ]
        ~doc:"Use cost-bounded guided search (promise-ordered rules, cheapest-first \
              candidates, subgoal domination).")

let memo_out_arg =
  Arg.(
    value & opt (some string) None
    & info [ "memo-out" ] ~docv:"FILE"
        ~doc:"Write a deterministic JSON export of the memo — groups, multi-expressions \
              with lineage, the candidate log with prune dispositions, and the winner \
              path — to $(docv).")

let memo_dot_arg =
  Arg.(
    value & opt (some string) None
    & info [ "memo-dot" ] ~docv:"FILE"
        ~doc:"Write a Graphviz DOT rendering of the memo DAG to $(docv): lineage edges \
              labeled with producing rules, the winner path in red, pruned-everywhere \
              nodes dashed.")

let explain_cmd =
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Show the chosen plan for a query; with $(b,--analyze), execute it and fuse the \
          optimizer's estimates with measured per-operator actuals; with $(b,--why), \
          print the plan's derivation lineage; with $(b,--memo-out)/$(b,--memo-dot), \
          export the memo as deterministic JSON or Graphviz DOT.")
    Term.(
      const explain_run $ paper_arg $ query_pos $ disable_arg $ window_arg $ no_pruning_arg
      $ batch_size_arg $ scale_arg $ analyze_flag_arg $ why_flag_arg $ guided_arg
      $ skewed_arg $ feedback_arg $ memo_out_arg $ memo_dot_arg)

(* ------------------------------------------------------------------ *)
(* why-not: counterfactual plan-shape classification                     *)

let why_not_run paper text chain disabled window no_pruning no_indexes guided skewed
    feedback scale force_index force_join force_scan force_alg json =
  let shape =
    match force_index, force_join, force_scan, force_alg with
    | Some ix, None, None, None -> Ok (Provenance.Force_index ix)
    | None, Some j, None, None -> Ok (Provenance.Force_join j)
    | None, None, Some c, None -> Ok (Provenance.Force_scan c)
    | None, None, None, Some a -> Ok (Provenance.Force_alg a)
    | None, None, None, None ->
      Error "no shape given: pass --force-index, --force-join, --force-scan or --force-alg"
    | _ -> Error "pass exactly one of --force-index/--force-join/--force-scan/--force-alg"
  in
  match shape with
  | Error m ->
    Format.eprintf "error: %s@." m;
    1
  | Ok shape -> (
    let cat =
      if skewed then Db.catalog (Datagen.generate_skewed ~scale ())
      else if no_indexes then OC.catalog ()
      else OC.catalog_with_indexes ()
    in
    let compiled =
      match chain with
      | Some w -> Ok (Oodb_workloads.Queries.join_chain w, Open_oodb.Physprop.empty)
      | None -> compile_query cat paper text
    in
    match compiled with
    | Error m ->
      Format.eprintf "error: %s@." m;
      1
    | Ok (q, required) -> (
      let options = options_of disabled window no_pruning in
      let options = if guided then Options.with_guided options else options in
      let options =
        if not feedback then options
        else
          match Feedback.of_env cat with
          | Some f -> Feedback.install f options
          | None ->
            Format.eprintf
              "warning: --feedback but %s is unset or empty; using cold statistics@."
              Feedback.env_var;
            options
      in
      let outcome = Opt.optimize ~options ~required cat q in
      let replay options = Opt.optimize ~options ~required cat q in
      match Provenance.classify ~options ~replay outcome shape with
      | Error m ->
        Format.eprintf "error: %s@." m;
        1
      | Ok cl ->
        if json then
          print_endline (Json.to_string (Provenance.classification_json cl))
        else Format.printf "%a" Provenance.pp_classification cl;
        0))

let chain_arg =
  Arg.(
    value & opt (some int) None
    & info [ "chain" ] ~docv:"W"
        ~doc:"Use the built-in $(docv)-way chain-join query instead of ZQL text or \
              $(b,--paper) (the guided-search pruning demo).")

let force_index_arg =
  Arg.(
    value & opt (some string) None
    & info [ "force-index" ] ~docv:"NAME"
        ~doc:"Ask why the plan does not scan through index $(docv) (empty string: any \
              index scan).")

let force_join_arg =
  Arg.(
    value & opt (some string) None
    & info [ "force-join" ] ~docv:"KIND"
        ~doc:"Ask why the plan does not use a $(docv) join: $(b,hash), $(b,merge) or \
              $(b,pointer).")

let force_scan_arg =
  Arg.(
    value & opt (some string) None
    & info [ "force-scan" ] ~docv:"COLL"
        ~doc:"Ask why the plan does not file-scan collection $(docv) (empty string: any \
              file scan).")

let force_alg_arg =
  Arg.(
    value & opt (some string) None
    & info [ "force-alg" ] ~docv:"LABEL"
        ~doc:"Ask why the plan does not contain algorithm $(docv) (e.g. $(b,sort), \
              $(b,assembly)).")

let why_not_json_arg =
  Arg.(value & flag & info [ "json" ] ~doc:"Emit the classification as JSON.")

let why_not_cmd =
  Cmd.v
    (Cmd.info "why-not"
       ~doc:
         "Classify why a hypothetical plan shape is absent from the chosen plan: \
          $(b,never derived) (no producing rule fired — e.g. the rule is disabled or \
          no such index exists), $(b,derived but lost) (costed, but beaten — the \
          report decomposes the cost gap into I/O and CPU), or $(b,pruned) (died \
          under the branch-and-bound limit — the report replays the bound and the \
          margin). Requires provenance recording (on by default).")
    Term.(
      const why_not_run $ paper_arg $ query_pos $ chain_arg $ disable_arg $ window_arg
      $ no_pruning_arg $ no_indexes_arg $ guided_arg $ skewed_arg $ feedback_arg
      $ scale_arg $ force_index_arg $ force_join_arg $ force_scan_arg $ force_alg_arg
      $ why_not_json_arg)

(* ------------------------------------------------------------------ *)
(* bench-compare: the regression gate over BENCH_history.jsonl          *)

let bench_compare_run old_path new_path threshold min_seconds report_only =
  let newest_first path =
    match History.load path with
    | Error e -> Error e
    | Ok [] -> Error (path ^ ": empty history")
    | Ok rs -> Ok (List.rev rs)
  in
  let pair =
    match new_path with
    | None -> (
      (* one file: compare its last record against the one before *)
      match newest_first old_path with
      | Error e -> Error e
      | Ok (newest :: prev :: _) -> Ok (prev, newest)
      | Ok _ -> Error (old_path ^ ": need at least two records to compare"))
    | Some np -> (
      match newest_first old_path, newest_first np with
      | Error e, _ | _, Error e -> Error e
      | Ok (o :: _), Ok (n :: _) -> Ok (o, n)
      | Ok [], _ | _, Ok [] -> assert false)
  in
  match pair with
  | Error e ->
    Format.eprintf "error: %s@." e;
    2
  | Ok (old_rec, new_rec) ->
    let c =
      History.compare_records ?threshold ?min_seconds ~old_rec ~new_rec ()
    in
    Format.printf "%a" History.pp_comparison c;
    if History.regressed c && not report_only then 1 else 0

let bench_old_pos =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"OLD" ~doc:"Baseline history file (JSONL).")

let bench_new_pos =
  Arg.(
    value
    & pos 1 (some string) None
    & info [] ~docv:"NEW"
        ~doc:"History file with the candidate record; when omitted, $(i,OLD)'s last two \
              records are compared against each other.")

let threshold_arg =
  Arg.(
    value & opt (some float) None
    & info [ "threshold" ] ~docv:"R"
        ~doc:"Relative slowdown that counts as a regression (default 0.5 = +50%).")

let min_seconds_arg =
  Arg.(
    value & opt (some float) None
    & info [ "min-seconds" ] ~docv:"S"
        ~doc:"Absolute slowdown floor in seconds (default 0.001); smaller deltas are \
              noise, never regressions.")

let report_only_arg =
  Arg.(
    value & flag
    & info [ "report-only" ]
        ~doc:"Print the comparison but exit 0 even on a regression (for advisory CI \
              gates).")

let bench_compare_cmd =
  Cmd.v
    (Cmd.info "bench-compare"
       ~doc:
         "Compare the newest benchmark-history records of two JSONL files (or the last \
          two records of one file) and exit 1 when a per-query min wall time regressed \
          beyond both the relative threshold and the absolute floor.")
    Term.(
      const bench_compare_run $ bench_old_pos $ bench_new_pos $ threshold_arg
      $ min_seconds_arg $ report_only_arg)

let greedy_run paper text =
  let cat = OC.catalog_with_indexes () in
  match compile_query cat paper text with
  | Error m ->
    Format.eprintf "error: %s@." m;
    1
  | Ok (q, _required) -> (
    match Oodb_baselines.Greedy.optimize cat q with
    | Error m ->
      Format.eprintf "greedy: %s@." m;
      1
    | Ok plan ->
      Format.printf "greedy plan:@.%a@.anticipated cost: %a@." Engine.pp_plan plan Cost.pp
        plan.Engine.cost;
      let full = Opt.optimize cat q in
      Format.printf "cost-based optimum: %a (%.1fx better)@." Cost.pp (Opt.cost full)
        (Cost.total plan.Engine.cost /. Cost.total (Opt.cost full));
      0)

let analyze_run scale =
  let db = Oodb_workloads.Datagen.generate ~scale () in
  let report = Oodb_exec.Analyze.refresh db in
  Format.printf "%a@.@." Oodb_exec.Analyze.pp_report report;
  Format.printf "%a" Catalog.pp_table (Db.catalog db);
  Format.printf "@.Refreshed index statistics:@.";
  List.iter
    (fun ix ->
      Format.printf "  %-22s %d distinct keys@." ix.Catalog.ix_name ix.Catalog.ix_distinct)
    (Catalog.indexes (Db.catalog db));
  0

let analyze_cmd =
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Generate a database and refresh its catalog statistics from the stored data.")
    Term.(const analyze_run $ scale_arg)

let greedy_cmd =
  Cmd.v
    (Cmd.info "greedy" ~doc:"Run the ObjectStore-style greedy baseline and compare.")
    Term.(const greedy_run $ paper_arg $ query_pos)

let stats_run scale out disabled window no_pruning =
  let db = Oodb_workloads.Datagen.generate ~scale () in
  let options = options_of disabled window no_pruning in
  let registry = Oodb_obs.Metrics.create () in
  let reports =
    List.map
      (fun (name, q) -> Report.collect ~options ~registry db ~name q)
      Oodb_workloads.Queries.all
  in
  (* cold-then-warm sweep through the plan cache: the second pass should
     be all hits, and its time collapse is part of the report *)
  let pc = Plancache.of_env () in
  let cat = Db.catalog db in
  let qs = List.map snd Oodb_workloads.Queries.all in
  let sum_opt os =
    List.fold_left (fun acc (o : Plancache.outcome) -> acc +. o.Plancache.opt_seconds) 0. os
  in
  let cold = Plancache.optimize_all ~options ~registry pc cat qs in
  let warm = Plancache.optimize_all ~options ~registry pc cat qs in
  (* plan-quality pass: profile each cached plan once, fold its measured
     q-errors into the cache entry (what the feedback gate judges) and
     harvest the observations into an in-memory store so the report
     carries est-vs-actual provenance *)
  let fb = Feedback.create cat in
  let quality =
    List.map2
      (fun (name, q) (o : Plancache.outcome) ->
        match o.Plancache.plan with
        | None -> (name, Json.Null)
        | Some plan ->
          let _rows, _report, prof = Profile.run ~config:options.Options.config db plan in
          let max_q, mean_q = Feedback.plan_quality prof in
          ignore (Feedback.harvest ~registry fb options.Options.config cat prof);
          let fp =
            Fingerprint.make ~catalog:cat ~options ~required:Open_oodb.Physprop.empty q
          in
          Plancache.note_execution pc fp ~epoch:(Catalog.epoch cat) ~max_qerror:max_q
            ~mean_qerror:mean_q;
          ( name,
            Plancache.quality_json
              { Plancache.q_execs = 1; q_max_qerror = max_q; q_mean_qerror = mean_q;
                q_last_epoch = Catalog.epoch cat } ))
      Oodb_workloads.Queries.all cold
  in
  let extra =
    [ ( "plan_cache",
        Json.Obj
          [ ("stats", Plancache.stats_json (Plancache.stats pc));
            ("cold_opt_seconds", Json.float (sum_opt cold));
            ("warm_opt_seconds", Json.float (sum_opt warm));
            ("plan_quality", Json.Obj quality) ] );
      ("feedback", Feedback.to_json fb) ]
  in
  let json = Report.workload_json ~registry ~extra reports in
  let text = Json.to_string json in
  (match out with
  | None -> print_endline text
  | Some path ->
    let oc = open_out path in
    output_string oc text;
    output_char oc '\n';
    close_out oc;
    Format.eprintf "wrote %s@." path);
  0

let out_arg =
  Arg.(
    value & opt (some string) None
    & info [ "output"; "o" ] ~docv:"FILE" ~doc:"Write the JSON report to $(docv) instead of stdout.")

let stats_cmd =
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Optimize and execute every workload query with tracing and profiling on, and emit \
          one machine-readable JSON report: search statistics, per-rule and per-group trace \
          tables (the paper's Tables 2-3 shape), chosen plans with costs, measured I/O, and \
          per-operator profiles with estimated-vs-actual q-errors.")
    Term.(const stats_run $ scale_arg $ out_arg $ disable_arg $ window_arg $ no_pruning_arg)

(* ------------------------------------------------------------------ *)
(* lint: all verifier passes over queries x optimizers x rule subsets    *)

let lint_run verbose strict =
  let queries = Oodb_workloads.Queries.all in
  let catalogs = [ ("indexes", OC.catalog_with_indexes ()); ("no-indexes", OC.catalog ()) ] in
  let variants =
    [ ("default", Options.default);
      ("warm-start", Options.with_warm_start Options.default);
      ("window-1", Options.with_assembly_window 1 Options.default);
      ("no-pruning", { Options.default with Options.pruning = false }) ]
    @ List.map
        (fun r -> ("disable:" ^ r, Options.disable r Options.default))
        Options.rule_names
  in
  let failures = ref 0 in
  let warnings = ref 0 in
  let checked = ref 0 in
  let planned = ref 0 in
  let fail fmt =
    incr failures;
    Format.printf fmt
  in
  let warn fmt =
    incr warnings;
    Format.printf fmt
  in
  let lint_plan label cat plan =
    incr planned;
    (match Oodb_verify.Verify.plan cat plan with
    | Ok () -> ()
    | Error vs ->
      fail "FAIL %s: plan lint@.%a@." label Oodb_verify.Verify.pp_violations vs);
    match Oodb_verify.Verify.plan_costs plan with
    | Ok () -> ()
    | Error vs ->
      fail "FAIL %s: cost sanity@." label;
      List.iter (Format.printf "  %a@." Oodb_verify.Verify.pp_cost_violation) vs
  in
  List.iter
    (fun (cat_name, cat) ->
      List.iter
        (fun (variant, options) ->
          (* lint explicitly: verify=off so violations are reported, not raised *)
          let options = { options with Options.verify = false } in
          List.iter
            (fun (qname, q) ->
              let label = Printf.sprintf "%s/%s/%s" cat_name variant qname in
              incr checked;
              if verbose then Format.printf "lint %s@." label;
              let outcome = Opt.optimize ~options cat q in
              (match outcome.Opt.plan with
              | Some plan -> lint_plan label cat plan
              | None -> ());
              (match
                 Oodb_verify.Verify.memo ~config:options.Options.config cat
                   outcome.Opt.memo
               with
              | Ok () -> ()
              | Error vs ->
                fail "FAIL %s: memo consistency@." label;
                List.iter (Format.printf "  %a@." Oodb_verify.Verify.pp_memo_violation) vs);
              match Oodb_verify.Verify.types cat outcome.Opt.memo with
              | Ok () -> ()
              | Error vs ->
                fail "FAIL %s: memo-wide type consistency@." label;
                List.iter (Format.printf "  %a@." Oodb_verify.Verify.pp_typ_violation) vs)
            queries)
        variants;
      (* baselines *)
      List.iter
        (fun (qname, q) ->
          (match Oodb_baselines.Greedy.optimize cat q with
          | Ok plan ->
            incr checked;
            lint_plan (Printf.sprintf "%s/greedy/%s" cat_name qname) cat plan
          | Error _ -> (* query outside the greedy baseline's shape *) ());
          let outcome = Oodb_baselines.Naive.optimize cat q in
          incr checked;
          match outcome.Opt.plan with
          | Some plan -> lint_plan (Printf.sprintf "%s/naive/%s" cat_name qname) cat plan
          | None -> ())
        queries)
    catalogs;
  (* rule-set analysis: coverage + termination over the certification
     corpus (the paper workload plus the synthetic set-operation
     queries, so setop rules are not spuriously reported dead) *)
  let report =
    Oodb_verify.Verify.rules (OC.catalog_with_indexes ()) Oodb_verify.Certify.corpus
  in
  Format.printf "@.rule coverage over the certification corpus:@.%a"
    Oodb_verify.Verify.pp_rules_report report;
  if not (Oodb_verify.Verify.rules_ok report) then
    fail "FAIL rule-set analysis: closure diverged@.";
  List.iter
    (fun r -> warn "WARN rule %s never fired over the certification corpus@." r)
    report.Oodb_verify.Verify.never_fired;
  Format.printf "@.lint: %d configurations, %d plans linted, %d failure(s), %d warning(s)@."
    !checked !planned !failures !warnings;
  if !failures > 0 then 1 else if strict && !warnings > 0 then 1 else 0

let lint_cmd =
  let verbose_arg =
    Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Print each configuration as it is checked.")
  in
  let strict_arg =
    Arg.(
      value & flag
      & info [ "strict" ]
          ~doc:"Exit nonzero on warnings (e.g. never-firing rules), not just failures.")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Run all verifier passes (plan linter, memo consistency, memo-wide type \
          consistency, cost sanity, rule-set analysis) over the workload queries under \
          every baseline optimizer and rule-toggle subset.")
    Term.(const lint_run $ verbose_arg $ strict_arg)

(* ------------------------------------------------------------------ *)
(* certify-rules: static + bounded denotational rule-soundness pass      *)

let certify_run json_out =
  let report = Oodb_verify.Certify.run () in
  Format.printf "%a@." Oodb_verify.Certify.pp_report report;
  (match json_out with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    output_string oc (Json.to_string (Oodb_verify.Certify.to_json report));
    output_char oc '\n';
    close_out oc;
    Format.eprintf "wrote %s@." path);
  if Oodb_verify.Certify.ok report then 0 else 1

let certify_cmd =
  let json_arg =
    Arg.(
      value & opt (some string) None
      & info [ "json" ] ~docv:"FILE" ~doc:"Also write the machine-readable report to $(docv).")
  in
  Cmd.v
    (Cmd.info "certify-rules"
       ~doc:
         "Certify every registered optimizer rule: static type/cardinality preservation and \
          guard completeness, then bounded denotational checking — both sides of every \
          harvested rewrite (and every winning plan) executed over enumerated \
          micro-databases and compared as row multisets. Exits nonzero if any rule is \
          refuted, statically unsound, or never exercised.")
    Term.(const certify_run $ json_arg)

(* ------------------------------------------------------------------ *)
(* gen / effectiveness: the seeded scenario factory                     *)

let seed_arg =
  Arg.(
    value & opt int 42
    & info [ "seed" ] ~docv:"S"
        ~doc:"Root seed; every scenario is derived from (seed, index), so scenario $(i,i) \
              is the same regardless of how many scenarios are generated around it.")

let scenarios_arg =
  Arg.(value & opt int 10 & info [ "scenarios"; "n" ] ~docv:"N" ~doc:"Scenarios to generate.")

let zql_out_arg =
  Arg.(
    value & opt (some string) None
    & info [ "zql-out" ] ~docv:"DIR"
        ~doc:"Also write every generated query as $(docv)/s<index>_<name>.zql.")

let emit_json out json =
  let text = Json.to_string json in
  match out with
  | None -> print_endline text
  | Some path ->
    let oc = open_out path in
    output_string oc text;
    output_char oc '\n';
    close_out oc;
    Format.eprintf "wrote %s@." path

let join_width_arg =
  Arg.(
    value & opt (some int) None
    & info [ "join-width" ] ~docv:"W"
        ~doc:"Append a $(docv)-way chain-join query (name [wide]) to every scenario's query \
              set — the wide-join scaling knob for the guided-search differentials.")

let gen_run seed n join_width zql_out out =
  (match zql_out with
  | Some dir when not (Sys.file_exists dir) -> Sys.mkdir dir 0o755
  | _ -> ());
  let failed = ref 0 in
  let reports =
    List.init n (fun index ->
        let sc = Scenario.generate ?join_width ~seed ~index () in
        (match zql_out with
        | None -> ()
        | Some dir ->
          List.iter
            (fun (qc : Scenario.query_case) ->
              write_file
                (Filename.concat dir
                   (Printf.sprintf "s%d_%s.zql" index qc.Scenario.qc_name))
                qc.Scenario.qc_zql)
            sc.Scenario.sc_queries);
        let r = Differential.run sc in
        if r.Differential.d_failures <> [] then begin
          incr failed;
          List.iter
            (fun (f : Differential.failure) ->
              Format.eprintf "scenario %d: %s under %s: %s@.  zql: %s@.  shrunk: %s@." index
                f.Differential.f_query f.Differential.f_variant f.Differential.f_detail
                f.Differential.f_zql f.Differential.f_shrunk_zql)
            r.Differential.d_failures
        end;
        Json.Obj
          [ ("digest", Json.String (Scenario.digest sc));
            ("scenario", Scenario.to_json sc);
            ("differential", Differential.report_json r) ])
  in
  (* no wall-clock anywhere in the report: repeated runs must produce
     byte-identical JSON (the reproducibility contract) *)
  let json =
    Json.Obj
      [ ("seed", Json.Int seed); ("scenarios", Json.Int n);
        ("reports", Json.List reports) ]
  in
  let digest = Digest.to_hex (Digest.string (Json.to_string json)) in
  emit_json out (Json.Obj [ ("digest", Json.String digest); ("report", json) ]);
  if !failed > 0 then 1 else 0

let gen_cmd =
  Cmd.v
    (Cmd.info "gen"
       ~doc:
         "Generate seeded random scenarios (OODB schema, populated store, indexes, ZQL \
          queries) and differentially fuzz each one: every query is optimized and executed \
          under batch-size, pruning, rule-toggle, plan-cache and feedback variants, every \
          winner is statically verified, and all row multisets must agree. Failures are \
          shrunk to minimal ZQL counterexamples. The JSON report is deterministic: same \
          seed, same bytes.")
    Term.(const gen_run $ seed_arg $ scenarios_arg $ join_width_arg $ zql_out_arg $ out_arg)

let effectiveness_run seed n sample out =
  let mismatches = ref 0 in
  let reports =
    List.init n (fun index ->
        let t0 = Sys.time () in
        let sc = Scenario.generate ~seed ~index () in
        let r = Effectiveness.run ~sample sc in
        List.iter
          (fun (s : Effectiveness.score) ->
            mismatches := !mismatches + s.Effectiveness.s_row_mismatches)
          r.Effectiveness.e_scores;
        Printf.eprintf "scenario %d: scored in %.1fs\n%!" index
          (Sys.time () -. t0);
        Effectiveness.report_json r)
  in
  emit_json out
    (Json.Obj
       [ ("seed", Json.Int seed); ("scenarios", Json.Int n); ("sample", Json.Int sample);
         ("reports", Json.List reports) ]);
  if !mismatches > 0 then 1 else 0

let sample_arg =
  Arg.(
    value & opt int 12
    & info [ "sample" ] ~docv:"K"
        ~doc:"Alternative plans sampled from the memo per query (chosen plan included).")

let effectiveness_cmd =
  Cmd.v
    (Cmd.info "effectiveness"
       ~doc:
         "OptMark-style optimizer effectiveness scoring over seeded scenarios: sample \
          structurally distinct alternative plans from each query's memo, execute every \
          one on the simulated store, and report the chosen plan's rank and regret \
          against the best sampled alternative. Each report includes a negative control \
          (the anchor lookup re-scored under corrupted statistics) whose regret is \
          expected to exceed 1. Exits nonzero if any sampled plan disagrees on rows.")
    Term.(const effectiveness_run $ seed_arg $ scenarios_arg $ sample_arg $ out_arg)

let () =
  let doc = "The Open OODB query optimizer (SIGMOD 1993 reproduction)" in
  let info = Cmd.info "oodb" ~version:"1.0.0" ~doc in
  exit (Cmd.eval' (Cmd.group info
          [ catalog_cmd; rules_cmd; optimize_cmd; optimize_all_cmd; memo_cmd; run_cmd;
            feedback_cmd; explain_cmd; why_not_cmd; bench_compare_cmd; greedy_cmd;
            analyze_cmd; stats_cmd; lint_cmd; certify_cmd; gen_cmd; effectiveness_cmd ]))
