(* Quickstart: the whole pipeline in one page.

   1. generate a synthetic database matching the paper's Table 1;
   2. write a query in ZQL (the paper's ZQL[C++] dialect);
   3. simplify it into the optimizable algebra (Mat chains etc.);
   4. optimize with the Volcano-based Open OODB optimizer;
   5. execute the plan on the simulated store.

   Run with: dune exec examples/quickstart.exe *)

module Db = Oodb_exec.Db
module Executor = Oodb_exec.Executor
module Opt = Open_oodb.Optimizer
module Value = Oodb_storage.Value

let () =
  (* 1. a small database (scale 0.1 keeps this instant) *)
  let db = Oodb_workloads.Datagen.generate ~scale:0.1 () in
  let catalog = Db.catalog db in

  (* 2. the query: employees working in a Dallas plant *)
  let text =
    {| SELECT Newobject(e.name, e.dept.name)
       FROM Employee e IN Employees
       WHERE e.dept.plant.location == "Dallas" && e.age >= 30 |}
  in
  Format.printf "ZQL query:@.%s@.@." text;

  (* 3. simplification: paths become explicit Mat operators *)
  let logical =
    match Zql.Simplify.compile catalog text with
    | Ok q -> q
    | Error m -> failwith m
  in
  Format.printf "optimizer input (logical algebra):@.%a@.@." Oodb_algebra.Logical.pp logical;

  (* 4. cost-based optimization *)
  let outcome = Opt.optimize catalog logical in
  Format.printf "optimal physical plan:@.%s@." (Opt.explain outcome);

  (* 5. execution *)
  let rows, report = Executor.run_measured db (Opt.plan_exn outcome) in
  Format.printf "executed: %a@.@." Executor.pp_report report;
  List.iteri
    (fun i row ->
      if i < 5 then
        Format.printf "  %s@."
          (String.concat ", "
             (List.map (fun (k, v) -> Printf.sprintf "%s = %s" k (Value.to_string v)) row)))
    rows;
  if List.length rows > 5 then Format.printf "  ... (%d rows total)@." (List.length rows)
