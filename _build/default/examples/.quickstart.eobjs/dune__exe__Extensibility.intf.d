examples/extensibility.mli:
