examples/quickstart.mli:
