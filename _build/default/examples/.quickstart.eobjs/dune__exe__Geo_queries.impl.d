examples/geo_queries.ml: Format Oodb_catalog Oodb_cost Oodb_exec Oodb_workloads Open_oodb Zql
