examples/company_queries.ml: Format List Oodb_cost Oodb_exec Oodb_workloads Open_oodb Zql
