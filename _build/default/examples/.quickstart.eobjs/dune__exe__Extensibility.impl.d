examples/extensibility.ml: Format List Oodb_algebra Oodb_catalog Oodb_cost Oodb_storage Open_oodb
