examples/geo_queries.mli:
