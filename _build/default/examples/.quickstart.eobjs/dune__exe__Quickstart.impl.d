examples/quickstart.ml: Format List Oodb_algebra Oodb_exec Oodb_storage Oodb_workloads Open_oodb Printf String Zql
