examples/project_tasks.mli:
