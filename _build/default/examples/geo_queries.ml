(* The geopolitical workload: cities, mayors, countries, presidents —
   Queries 2 and 3 and the Figure 2 multi-path query. Demonstrates path
   indexes, the collapse-to-index-scan rule, and goal-directed search
   with the presence-in-memory property.

   Run with: dune exec examples/geo_queries.exe *)

module Db = Oodb_exec.Db
module Catalog = Oodb_catalog.Catalog
module Executor = Oodb_exec.Executor
module Opt = Open_oodb.Optimizer
module Options = Open_oodb.Options
module Cost = Oodb_cost.Cost

let db = Oodb_workloads.Datagen.generate ~scale:0.5 ()

let catalog = Db.catalog db

let compile text =
  match Zql.Simplify.compile catalog text with Ok q -> q | Error m -> failwith m

let show label options q =
  let outcome = Opt.optimize ~options catalog q in
  let plan = Opt.plan_exn outcome in
  let _, report = Executor.run_measured db plan in
  Format.printf "@.== %s ==@.%a@.estimated %a | %a@." label Open_oodb.Model.Engine.pp_plan plan
    Cost.pp (Opt.cost outcome) Executor.pp_report report

let () =
  (* Query 2: the path index on mayor.name answers this without touching
     a single Person object. *)
  let q2 = compile {| SELECT * FROM City c IN Cities WHERE c.mayor.name == "Joe" |} in
  show "cities whose mayor is Joe (path index collapses)" Options.default q2;
  show "same, path index disabled"
    (Options.disable "collapse-index-scan" Options.default)
    q2;

  (* Query 3: asking for the mayor's age forces the mayor into memory;
     the optimizer answers with an assembly enforcer ABOVE the index
     scan (paper Fig. 10). *)
  let q3 =
    compile {| SELECT c.mayor.age, c.name FROM City c IN Cities WHERE c.mayor.name == "Joe" |}
  in
  show "plus the mayor's age (assembly enforcer)" Options.default q3;

  (* Figure 2: compare a mayor's name with the president's name at the
     end of a two-link path. The optimizer turns reference chasing into
     value-based joins where profitable. *)
  let fig2 =
    compile
      {| SELECT c.name
         FROM City c IN Cities
         WHERE c.mayor.name == c.country.president.name |}
  in
  show "mayors who share the president's name" Options.default fig2;

  (* What if the optimizer could not traverse references backwards?
     Disabling join commutativity restricts the orientations available. *)
  show "same, without join commutativity"
    (Options.without_join_commutativity Options.default)
    fig2
