(* Extensibility: the paper's central design goal. This example extends
   the optimizer WITHOUT touching the library:

   1. a new transformation rule ("select-elimination": drop trivially
      true conjuncts) is added to the rule set;
   2. a new physical property (sort order) is requested at the root, and
      the sort enforcer — which no standard experiment exercises — kicks
      in, exactly as the assembly enforcer does for presence in memory.

   Everything goes through the public Volcano engine instance
   (Open_oodb.Model.Engine) with a custom spec, which is the paper's
   "model description file" expressed as OCaml values.

   Run with: dune exec examples/extensibility.exe *)

module Logical = Oodb_algebra.Logical
module Pred = Oodb_algebra.Pred
module Value = Oodb_storage.Value
module OC = Oodb_catalog.Open_oodb_catalog
module Config = Oodb_cost.Config
module Estimator = Oodb_cost.Estimator
module Engine = Open_oodb.Model.Engine
module Physprop = Open_oodb.Physprop

let cat = OC.catalog_with_indexes ()

let cfg = Config.default

(* 1. A new logical transformation: Select [x == x] (A) => A. *)
let select_elimination =
  { Engine.t_name = "select-elimination";
    t_apply =
      (fun _ctx m ->
        match m.Engine.mop, m.Engine.minputs with
        | Logical.Select p, [ g ] ->
          let tautology (a : Pred.atom) = a.Pred.cmp = Pred.Eq && a.Pred.lhs = a.Pred.rhs in
          if List.exists tautology p then
            let p' = List.filter (fun a -> not (tautology a)) p in
            if p' = [] then [ Engine.Ref g ]
            else [ Engine.Node (Logical.Select p', [ Engine.Ref g ]) ]
          else []
        | _ -> []) }

let spec_with_rule =
  let base =
    { Engine.derive_lprop = Estimator.derive cfg cat;
      transformations = Open_oodb.Trules.all cfg cat;
      implementations = Open_oodb.Irules.all cfg cat;
      enforcers = Open_oodb.Enforcers.all cfg cat }
  in
  { base with Engine.transformations = select_elimination :: base.Engine.transformations }

let () =
  (* a query with a tautological conjunct *)
  let q =
    Logical.get ~coll:"Cities" ~binding:"c"
    |> Logical.select
         [ Pred.atom Pred.Eq (Pred.Self "c") (Pred.Self "c");
           Pred.atom Pred.Ge (Pred.Field ("c", "population")) (Pred.Const (Value.Int 5000)) ]
  in
  Format.printf "query with a tautological conjunct:@.%a@.@." Logical.pp q;
  let result =
    Engine.run spec_with_rule (Open_oodb.Model.expr_of_logical q) ~required:Physprop.empty
  in
  (match result.Engine.plan with
  | Some plan ->
    Format.printf "with the new select-elimination rule:@.%a@."
      (fun ppf -> Engine.pp_plan ppf) plan
  | None -> Format.printf "no plan?!@.");

  (* 2. Request a new physical property at the root: tuples sorted by
     city name. No scan delivers it, so the search must enforce it. *)
  let sorted =
    { Physprop.empty with
      Physprop.order = Some { Physprop.ord_binding = "c"; ord_field = Some "name" } }
  in
  let q2 =
    Logical.get ~coll:"Cities" ~binding:"c"
    |> Logical.select
         [ Pred.atom Pred.Ge (Pred.Field ("c", "population")) (Pred.Const (Value.Int 5000)) ]
  in
  let result = Engine.run spec_with_rule (Open_oodb.Model.expr_of_logical q2) ~required:sorted in
  match result.Engine.plan with
  | Some plan ->
    Format.printf "@.requesting output sorted by c.name (sort enforcer appears):@.%a@."
      (fun ppf -> Engine.pp_plan ppf) plan
  | None -> Format.printf "no plan?!@."
