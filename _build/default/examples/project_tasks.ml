(* The project-task workload (paper Query 4): set-valued paths, index
   choice, and why greedy "use every index" optimization loses to
   cost-based search — the experiment behind Table 3 and Figure 13.

   Run with: dune exec examples/project_tasks.exe *)

module Db = Oodb_exec.Db
module Catalog = Oodb_catalog.Catalog
module Executor = Oodb_exec.Executor
module Opt = Open_oodb.Optimizer
module Engine = Open_oodb.Model.Engine
module Cost = Oodb_cost.Cost
module Greedy = Oodb_baselines.Greedy

let db = Oodb_workloads.Datagen.generate ~scale:0.5 ()

let catalog = Db.catalog db

let () =
  (* time values shrink with the scale; pick one that exists *)
  let store = Db.store db in
  let a_time =
    match
      Oodb_storage.Store.field
        (Oodb_storage.Store.peek store (List.hd (Oodb_storage.Store.oids store ~coll:"Tasks")))
        "time"
    with
    | Oodb_storage.Value.Int t -> t
    | _ -> 1
  in
  let text =
    Printf.sprintf
      {| SELECT * FROM Task t IN Tasks
         WHERE t.time == %d &&
               EXISTS (SELECT m FROM m IN t.team_members WHERE m.name == "Fred") |}
      a_time
  in
  Format.printf "ZQL (existential subquery over a set-valued path):@.%s@.@." text;
  let q =
    match Zql.Simplify.compile catalog text with Ok q -> q | Error m -> failwith m
  in
  Format.printf "simplified (paper Fig. 3 shape):@.%a@." Oodb_algebra.Logical.pp q;

  (* cost-based: uses only the time index, resolves members by assembly *)
  let outcome = Opt.optimize catalog q in
  let plan = Opt.plan_exn outcome in
  let rows, report = Executor.run_measured db plan in
  Format.printf "@.== cost-based plan (paper Fig. 12) ==@.%a@.estimated %a | %a@."
    Engine.pp_plan plan Cost.pp (Opt.cost outcome) Executor.pp_report report;

  (* greedy: grabs both indexes, hash-joins them (paper Fig. 13) *)
  (match Greedy.optimize catalog q with
  | Error m -> Format.printf "greedy failed: %s@." m
  | Ok gplan ->
    let grows, greport = Executor.run_measured db gplan in
    Format.printf "@.== greedy plan (paper Fig. 13) ==@.%a@.estimated %a | %a@." Engine.pp_plan
      gplan Cost.pp gplan.Engine.cost Executor.pp_report greport;
    Format.printf "@.same answers? %b  |  greedy/cost-based estimate: %.1fx@."
      (List.length rows = List.length grows)
      (Cost.total gplan.Engine.cost /. Cost.total (Opt.cost outcome)));

  (* index configuration sweep: the Table 3 experiment at this scale *)
  Format.printf "@.== index sweep (cost-based estimates) ==@.";
  let sweep =
    [ ("none", [] ); ("time", [ "tasks_time" ]); ("name", [ "employees_name" ]);
      ("both", [ "tasks_time"; "employees_name" ]) ]
  in
  List.iter
    (fun (label, keep) ->
      (* temporarily drop the other indexes from the catalog metadata *)
      let dropped =
        List.filter (fun ix -> not (List.mem ix.Catalog.ix_name keep)) (Catalog.indexes catalog)
      in
      List.iter (fun ix -> Catalog.drop_index catalog ix.Catalog.ix_name) dropped;
      let c = Cost.total (Opt.cost (Opt.optimize catalog q)) in
      List.iter (Catalog.add_index catalog) dropped;
      Format.printf "  %-6s %10.2fs@." label c)
    sweep
