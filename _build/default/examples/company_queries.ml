(* The company workload from the paper's introduction: employees,
   departments, jobs and plants (Query 1 territory). Shows how plan
   choice reacts to the rule set — the experiment behind Table 2.

   Run with: dune exec examples/company_queries.exe *)

module Db = Oodb_exec.Db
module Executor = Oodb_exec.Executor
module Opt = Open_oodb.Optimizer
module Options = Open_oodb.Options
module Cost = Oodb_cost.Cost

let db = Oodb_workloads.Datagen.generate ~scale:0.2 ()

let catalog = Db.catalog db

let compile text =
  match Zql.Simplify.compile catalog text with Ok q -> q | Error m -> failwith m

let run label options text =
  let q = compile text in
  let outcome = Opt.optimize ~options catalog q in
  let plan = Opt.plan_exn outcome in
  let rows, report = Executor.run_measured db plan in
  Format.printf "@.== %s ==@.%a@.estimated %a | %a@." label Open_oodb.Model.Engine.pp_plan plan
    Cost.pp (Opt.cost outcome) Executor.pp_report report;
  rows

let () =
  (* The paper's Query 1: who works in a Dallas plant? *)
  let q1 =
    {| SELECT Newobject(e.name, e.dept.name, e.job.name)
       FROM Employee e IN Employees
       WHERE e.dept.plant.location == "Dallas" |}
  in
  Format.printf "Query: %s@." q1;
  let full = run "all rules (paper Fig. 6)" Options.default q1 in
  let naive = run "naive pointer chasing (paper Fig. 7)"
      (Options.disable "mat-to-join" Options.default) q1
  in
  assert (List.length full = List.length naive);

  (* The ZQL example of the paper's Figure 1: an explicit join between two
     collection ranges. *)
  let fig1 =
    {| SELECT Newobject(e.name, d.name)
       FROM Employee e IN Employees, Department d IN Departments
       WHERE d.floor == 3 && e.age >= 32 && e.last_raise >= date(1991,1,1)
          && e.dept == d |}
  in
  Format.printf "@.Query: %s@." fig1;
  ignore (run "figure 1 query" Options.default fig1);

  (* Salary analytics over a path: who earns a lot on the third floor? *)
  let salaries =
    {| SELECT e.name, e.salary
       FROM Employee e IN Employees
       WHERE e.dept.floor == 3 && e.salaAry >= 80000.0 |}
  in
  (match Zql.Simplify.compile catalog salaries with
  | Ok _ -> Format.printf "@.unexpected: typo accepted@."
  | Error m -> Format.printf "@.typo rejected by the type checker: %s@." m);
  ignore
    (run "salary query" Options.default
       {| SELECT e.name, e.salary
          FROM Employee e IN Employees
          WHERE e.dept.floor == 3 && e.salary >= 80000.0 |})
