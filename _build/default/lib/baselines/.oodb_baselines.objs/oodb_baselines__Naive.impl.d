lib/baselines/naive.ml: List Oodb_cost Open_oodb
