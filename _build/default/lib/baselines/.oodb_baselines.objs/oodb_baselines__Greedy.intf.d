lib/baselines/greedy.mli: Oodb_algebra Oodb_catalog Oodb_cost Open_oodb
