lib/baselines/greedy.ml: Float Hashtbl List Oodb_algebra Oodb_catalog Oodb_cost Open_oodb Option Printf
