(** The "naive pointer chasing" strategy: a direct translation of the
    simplified algebra with no transformations, no indexes, and no join
    algorithms — every Mat becomes an assembly over the unmodified
    pipeline ("goto's on disk", paper §4).

    Expressed as a rule subset of the real optimizer: all transformation
    rules and every implementation rule except scan / filter / assembly /
    unnest / project are disabled, so the search engine can only cost the
    one direct plan. *)

val options : ?config:Oodb_cost.Config.t -> unit -> Open_oodb.Options.t

val optimize :
  ?config:Oodb_cost.Config.t ->
  Oodb_catalog.Catalog.t ->
  Oodb_algebra.Logical.t ->
  Open_oodb.Optimizer.outcome
