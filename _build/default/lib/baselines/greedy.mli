(** An ObjectStore-style greedy optimizer (paper §2 and §4): a "fixed,
    greedy strategy designed to exploit any available indexes", with no
    cost model and no algebraic search.

    The strategy, applied to a simplified single-collection pipeline:

    + if any selection conjunct is covered by a (possibly path) index on
      the scanned collection, replace the file scan with an index scan —
      first match wins;
    + for {e every} remaining indexed conjunct over a materialized
      component whose class has its own scannable collection, probe that
      index and hash-join the result into the pipeline (this is how the
      paper's Figure 13 uses both the [time] and the [name] index);
    + everything left is naive: Mats become assemblies in their original
      order, remaining conjuncts become filters on top.

    The returned plan carries costs from the same cost model the real
    optimizer uses, so the two are directly comparable (Table 3's
    "Greedy use" row). Queries outside the supported shape (multiple
    collection ranges, set operators) are rejected. *)

val optimize :
  ?config:Oodb_cost.Config.t ->
  Oodb_catalog.Catalog.t ->
  Oodb_algebra.Logical.t ->
  (Open_oodb.Model.Engine.plan, string) result
