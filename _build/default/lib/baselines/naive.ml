module Options = Open_oodb.Options

let disabled_rules =
  Open_oodb.Trules.names
  @ [ "collapse-index-scan"; "hash-join"; "pointer-join"; "sort-enforcer" ]

let options ?(config = Oodb_cost.Config.default) () =
  List.fold_left
    (fun opts name -> Options.disable name opts)
    (Options.with_config config Options.default)
    disabled_rules

let optimize ?config cat expr =
  Open_oodb.Optimizer.optimize ~options:(options ?config ()) cat expr
