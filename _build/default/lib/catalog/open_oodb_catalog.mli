(** The paper's database: schema and Table 1 catalog statistics.

    Two rows of Table 1 are partly illegible in the archival scan (the
    Country set column and the Task cardinality column); the values used
    here are reconstructed so that every derived quantity the paper
    reasons with still holds — see the comments in the implementation and
    the substitution notes in DESIGN.md. *)

val schema : unit -> Schema.t
(** Classes: Person, Employee, Department, Plant, Job, City, Capital,
    Country, Task, Information. *)

val catalog : unit -> Catalog.t
(** Fresh catalog with Table 1 collections, distinct-value statistics and
    {e no} indexes; add the ones an experiment needs from
    {!standard_indexes}. *)

(** Index definitions used by the paper's experiments. *)

val idx_cities_mayor_name : Catalog.index_def
(** Path index on [Cities.mayor().name()] (Queries 2 and 3). *)

val idx_tasks_time : Catalog.index_def
(** Index on [Tasks.time] (Query 4). *)

val idx_employees_name : Catalog.index_def
(** Index on [Employees.name] (Query 4). *)

val standard_indexes : Catalog.index_def list
(** The three above. *)

val catalog_with_indexes : unit -> Catalog.t
(** [catalog ()] plus {!standard_indexes}. *)
