lib/catalog/schema.ml: Format Hashtbl List Option Printf
