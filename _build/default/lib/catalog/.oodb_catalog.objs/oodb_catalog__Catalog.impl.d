lib/catalog/catalog.ml: Format Hashtbl List Printf Schema
