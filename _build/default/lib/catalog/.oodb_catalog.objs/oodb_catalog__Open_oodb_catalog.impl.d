lib/catalog/open_oodb_catalog.ml: Catalog List Schema
