lib/catalog/open_oodb_catalog.mli: Catalog Schema
