lib/catalog/catalog.mli: Format Schema
