type attr_ty =
  | Bool
  | Int
  | Float
  | String
  | Date
  | Ref of string
  | Set_of of attr_ty

type attr = { a_name : string; a_ty : attr_ty }

type class_def = { cl_name : string; cl_attrs : attr list }

type t = { by_name : (string, class_def) Hashtbl.t; order : class_def list }

let rec ref_target = function
  | Ref cls -> Some cls
  | Set_of ty -> ref_target ty
  | Bool | Int | Float | String | Date -> None

let create defs =
  let by_name = Hashtbl.create 16 in
  List.iter
    (fun cd ->
      if Hashtbl.mem by_name cd.cl_name then
        invalid_arg (Printf.sprintf "Schema.create: duplicate class %s" cd.cl_name);
      Hashtbl.add by_name cd.cl_name cd)
    defs;
  List.iter
    (fun cd ->
      List.iter
        (fun a ->
          match ref_target a.a_ty with
          | Some target when not (Hashtbl.mem by_name target) ->
            invalid_arg
              (Printf.sprintf "Schema.create: %s.%s references unknown class %s" cd.cl_name
                 a.a_name target)
          | Some _ | None -> ())
        cd.cl_attrs)
    defs;
  { by_name; order = defs }

let classes t = t.order

let find_class t name = Hashtbl.find_opt t.by_name name

let attr_ty t ~cls name =
  match find_class t cls with
  | None -> None
  | Some cd ->
    List.find_map (fun a -> if a.a_name = name then Some a.a_ty else None) cd.cl_attrs

let follow t ~cls name = Option.bind (attr_ty t ~cls name) ref_target

let rec resolve_path t ~cls = function
  | [] -> None
  | [ last ] -> attr_ty t ~cls last
  | step :: rest -> (
    match follow t ~cls step with
    | Some next -> resolve_path t ~cls:next rest
    | None -> None)

let rec pp_attr_ty ppf = function
  | Bool -> Format.pp_print_string ppf "bool"
  | Int -> Format.pp_print_string ppf "int"
  | Float -> Format.pp_print_string ppf "float"
  | String -> Format.pp_print_string ppf "string"
  | Date -> Format.pp_print_string ppf "date"
  | Ref cls -> Format.fprintf ppf "ref<%s>" cls
  | Set_of ty -> Format.fprintf ppf "set<%a>" pp_attr_ty ty
