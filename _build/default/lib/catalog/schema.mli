(** Schema metadata: classes (object types) and their attributes.

    The optimizer uses this to resolve path expressions (each step of
    [c.country.president.name] must name a reference attribute except the
    last) and to find the class reached by a path. *)

type attr_ty =
  | Bool
  | Int
  | Float
  | String
  | Date
  | Ref of string  (** reference to a class, by name *)
  | Set_of of attr_ty

type attr = { a_name : string; a_ty : attr_ty }

type class_def = { cl_name : string; cl_attrs : attr list }

type t

val create : class_def list -> t
(** @raise Invalid_argument on duplicate class names or dangling [Ref]s. *)

val classes : t -> class_def list

val find_class : t -> string -> class_def option

val attr_ty : t -> cls:string -> string -> attr_ty option
(** Type of one attribute of a class. *)

val ref_target : attr_ty -> string option
(** [Some cls] for [Ref cls] and [Set_of (Ref cls)]; [None] otherwise. *)

val follow : t -> cls:string -> string -> string option
(** Class reached by dereferencing a (possibly set-valued) reference
    attribute; [None] if the attribute is missing or not a reference. *)

val resolve_path : t -> cls:string -> string list -> attr_ty option
(** Type at the end of a path whose intermediate steps are single-valued
    references. *)

val pp_attr_ty : Format.formatter -> attr_ty -> unit
