(* Reconstruction notes (Table 1 of the paper):

   - Capital/Capitals (160, 400 B, no extent), City/Cities (10,000, 200 B,
     no extent), Country (extent of 160, 300 B), Department (extent of
     1,000, 400 B), Employee/Employees (set of 50,000, 250 B), Information
     (extent of 1,000, 400 B), Job (extent of 5,000, 250 B), Person
     (extent of 100,000, 100 B) and Plant (1,000 B objects, no extent) are
     legible in the paper.
   - The Country extent is named "Countries" here because Figure 4 scans
     "Get Countries: n".
   - The Task row is partly illegible; we use a Tasks set of 10,000
     objects of 150 bytes with 9 team members on average. With the 10%
     default selectivity for the time predicate when no index exists,
     the no-index plan resolves ~9,000 member references, reproducing
     the ~100 s magnitude of Table 3's first column.
   - Employee's extent (200,000) is recorded in the paper but never
     scanned by any experiment (all queries range over the Employees set),
     so it is not modelled as a collection.
   - Distinct-value statistics: the paper derives "2 cities have mayors
     named Joe" (so the mayor-name path index has ~5,000 distinct keys
     over 10,000 cities) and a 10% selectivity for the Dallas predicate
     (10 distinct plant locations). Employee names are given 100 distinct
     values so that the name-only column of Table 3 lands between the
     no-index and time-index columns, as in the paper. Task completion
     times have 100 distinct values ("t.time == 100" selects ~10 tasks). *)

let schema () =
  let open Schema in
  let attr name ty = { a_name = name; a_ty = ty } in
  create
    [ { cl_name = "Person";
        cl_attrs = [ attr "name" String; attr "age" Int ] };
      { cl_name = "Job"; cl_attrs = [ attr "name" String; attr "level" Int ] };
      { cl_name = "Plant";
        cl_attrs = [ attr "name" String; attr "location" String ] };
      { cl_name = "Department";
        cl_attrs = [ attr "name" String; attr "floor" Int; attr "plant" (Ref "Plant") ] };
      { cl_name = "Employee";
        cl_attrs =
          [ attr "name" String;
            attr "age" Int;
            attr "salary" Float;
            attr "last_raise" Date;
            attr "dept" (Ref "Department");
            attr "job" (Ref "Job") ] };
      { cl_name = "Capital";
        cl_attrs = [ attr "name" String; attr "population" Int ] };
      { cl_name = "Country";
        cl_attrs =
          [ attr "name" String;
            attr "president" (Ref "Person");
            attr "capital" (Ref "Capital") ] };
      { cl_name = "City";
        cl_attrs =
          [ attr "name" String;
            attr "population" Int;
            attr "mayor" (Ref "Person");
            attr "country" (Ref "Country") ] };
      { cl_name = "Task";
        cl_attrs =
          [ attr "name" String;
            attr "time" Int;
            attr "team_members" (Set_of (Ref "Employee")) ] };
      { cl_name = "Information";
        cl_attrs = [ attr "subject" String; attr "body" String ] } ]

let catalog () =
  let cat = Catalog.create (schema ()) in
  let coll name cls kind card bytes =
    Catalog.add_collection cat
      { Catalog.co_name = name;
        co_class = cls;
        co_kind = kind;
        co_card = card;
        co_obj_bytes = bytes }
  in
  coll "Capitals" "Capital" Catalog.Set 160 400;
  coll "Cities" "City" Catalog.Set 10_000 200;
  coll "Countries" "Country" Catalog.Extent 160 300;
  coll "Departments" "Department" Catalog.Extent 1_000 400;
  coll "Employees" "Employee" Catalog.Set 50_000 250;
  coll "Information" "Information" Catalog.Extent 1_000 400;
  coll "Jobs" "Job" Catalog.Extent 5_000 250;
  coll "Persons" "Person" Catalog.Extent 100_000 100;
  (* Plant has no extent: objects exist on disk but the optimizer may not
     scan them and has no cardinality statistic — the paper's Query 1
     discussion hinges on this. *)
  coll "Plant.heap" "Plant" Catalog.Hidden 100 1_000;
  coll "Tasks" "Task" Catalog.Set 10_000 150;
  (* Distinct-value statistics. Task.time and Employee.name deliberately
     have no class statistic: the paper estimates their selectivities
     from index statistics when an index exists and falls back to the
     10% default otherwise, which is what produces the spread of
     Table 3's columns. *)
  Catalog.set_distinct cat ~cls:"Person" ~field:"name" 5_000;
  Catalog.set_distinct cat ~cls:"Person" ~field:"age" 80;
  Catalog.set_distinct cat ~cls:"Plant" ~field:"location" 10;
  Catalog.set_distinct cat ~cls:"Department" ~field:"floor" 10;
  Catalog.set_distinct cat ~cls:"City" ~field:"name" 10_000;
  Catalog.set_distinct cat ~cls:"Job" ~field:"name" 5_000;
  Catalog.set_avg_set_size cat ~cls:"Task" ~field:"team_members" 9.0;
  cat

let idx_cities_mayor_name =
  { Catalog.ix_name = "cities_mayor_name";
    ix_coll = "Cities";
    ix_path = [ "mayor"; "name" ];
    ix_distinct = 5_000 }

let idx_tasks_time =
  { Catalog.ix_name = "tasks_time"; ix_coll = "Tasks"; ix_path = [ "time" ]; ix_distinct = 1_000 }

let idx_employees_name =
  { Catalog.ix_name = "employees_name";
    ix_coll = "Employees";
    ix_path = [ "name" ];
    ix_distinct = 100 }

let standard_indexes = [ idx_cities_mayor_name; idx_tasks_time; idx_employees_name ]

let catalog_with_indexes () =
  let cat = catalog () in
  List.iter (Catalog.add_index cat) standard_indexes;
  cat
