(** Hand-written lexer for ZQL. *)

type token =
  | SELECT
  | FROM
  | WHERE
  | IN
  | AS
  | EXISTS
  | ORDER
  | BY
  | NEWOBJECT
  | DATE
  | TRUE
  | FALSE
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | LPAREN
  | RPAREN
  | COMMA
  | DOT
  | SEMI
  | STAR
  | ANDAND
  | EQEQ
  | NEQ
  | LT
  | LE
  | GT
  | GE
  | EOF

val token_name : token -> string

val tokenize : string -> (token list, string) result
(** Whole-input tokenization; keywords are case-insensitive, identifiers
    keep their case. Errors carry a position message. *)
