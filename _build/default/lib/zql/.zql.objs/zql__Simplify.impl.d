lib/zql/simplify.ml: Ast Format List Oodb_algebra Oodb_catalog Oodb_storage Parser Result
