lib/zql/parser.mli: Ast
