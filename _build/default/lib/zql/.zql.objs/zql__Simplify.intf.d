lib/zql/simplify.mli: Ast Oodb_algebra Oodb_catalog
