lib/zql/ast.ml: Format Oodb_storage String
