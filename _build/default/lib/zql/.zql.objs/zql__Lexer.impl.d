lib/zql/lexer.ml: Buffer Format List Printf String
