lib/zql/lexer.mli:
