lib/zql/parser.ml: Ast Format Lexer List Oodb_storage Printf
