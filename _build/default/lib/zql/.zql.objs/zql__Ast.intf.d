lib/zql/ast.mli: Format Oodb_storage
