(** Query simplification: ZQL parse trees to optimizer-input algebra.

    This is the paper's separation between the user-level algebra (rich,
    complex arguments) and the optimizable algebra (simple arguments):

    - every link of a path expression becomes an explicit [Mat] operator
      (named after the path, so [e.dept.plant] introduces bindings
      ["e.dept"] and ["e.dept.plant"]);
    - a set-valued range ([m IN t.team_members]) becomes [Unnest]
      revealing the references plus a [Mat] resolving them, as in the
      paper's Figure 3;
    - additional FROM ranges combine with joins (an empty join predicate
      until selection conjuncts are pushed into it by the optimizer);
    - [EXISTS] subqueries are unnested into the enclosing query
      (producing witness pairs, the formulation the paper itself uses
      for Query 4);
    - the WHERE conjunction becomes a single [Select] with simple
      operands only.

    Scalar type checking (comparability, path validity, class
    annotations) happens here. *)

type compiled = {
  c_logical : Oodb_algebra.Logical.t;
  c_order : (string * string option) option;
      (** [ORDER BY] as a physical-property request: the binding and the
          field (or [None] for the object itself, ordered by identity).
          Callers turn this into the optimizer's required sort-order
          property. *)
}

val query :
  Oodb_catalog.Catalog.t -> Ast.query -> (Oodb_algebra.Logical.t, string) result
(** Simplify, ignoring any [ORDER BY] (see {!query_ordered}). *)

val query_ordered : Oodb_catalog.Catalog.t -> Ast.query -> (compiled, string) result

val compile :
  Oodb_catalog.Catalog.t -> string -> (Oodb_algebra.Logical.t, string) result
(** Parse then simplify (ignoring [ORDER BY]). *)

val compile_ordered : Oodb_catalog.Catalog.t -> string -> (compiled, string) result
(** Parse then simplify, returning the [ORDER BY] request alongside. *)

val compile_exn : Oodb_catalog.Catalog.t -> string -> Oodb_algebra.Logical.t
(** @raise Invalid_argument on any error. *)
