lib/workloads/queries.mli: Oodb_algebra
