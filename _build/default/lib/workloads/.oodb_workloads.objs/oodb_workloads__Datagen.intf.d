lib/workloads/datagen.mli: Oodb_catalog Oodb_exec
