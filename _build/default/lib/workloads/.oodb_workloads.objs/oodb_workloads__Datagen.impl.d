lib/workloads/datagen.ml: Array Hashtbl List Oodb_catalog Oodb_cost Oodb_exec Oodb_storage Printf
