lib/workloads/queries.ml: Oodb_algebra Oodb_storage
