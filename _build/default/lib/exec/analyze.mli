(** Statistics collection — the "improved statistics and cost models"
    extensibility axis of the paper's design goals.

    [refresh db] walks the stored data and replaces the catalog's
    estimates with measured values: collection cardinalities cannot be
    updated in place (they are immutable collection metadata), but the
    distinct-value statistics for every scalar attribute and the average
    cardinality of every set-valued attribute are recomputed, and each
    registered index's distinct-key statistic is re-read from the
    physical index. Subsequent optimizations use the refreshed numbers.

    Collection of statistics is free of simulated I/O (it peeks at the
    store), matching how offline ANALYZE passes are usually treated in
    optimizer studies. *)

type report = {
  attributes_updated : int;  (** distinct-value statistics written *)
  set_attributes_updated : int;  (** average set sizes written *)
  indexes_updated : int;  (** index distinct-key statistics rewritten *)
}

val refresh : Db.t -> report

val distinct_values : Db.t -> coll:string -> field:string -> int
(** Exact distinct count of one attribute over one collection. *)

val average_set_size : Db.t -> coll:string -> field:string -> float
(** Mean cardinality of a set-valued attribute ([0.] for an empty
    collection). *)

val pp_report : Format.formatter -> report -> unit
