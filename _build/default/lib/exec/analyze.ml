module Value = Oodb_storage.Value
module Store = Oodb_storage.Store
module Btree_index = Oodb_storage.Btree_index
module Catalog = Oodb_catalog.Catalog
module Schema = Oodb_catalog.Schema

type report = {
  attributes_updated : int;
  set_attributes_updated : int;
  indexes_updated : int;
}

let distinct_values db ~coll ~field =
  let store = Db.store db in
  let seen = Hashtbl.create 64 in
  List.iter
    (fun oid ->
      match Store.field (Store.peek store oid) field with
      | v -> Hashtbl.replace seen v ()
      | exception Not_found -> ())
    (Store.oids store ~coll);
  Hashtbl.length seen

let average_set_size db ~coll ~field =
  let store = Db.store db in
  let oids = Store.oids store ~coll in
  match oids with
  | [] -> 0.0
  | _ ->
    let total =
      List.fold_left
        (fun acc oid ->
          match Store.field (Store.peek store oid) field with
          | v -> acc + List.length (Value.set_elements v)
          | exception Not_found -> acc)
        0 oids
    in
    float_of_int total /. float_of_int (List.length oids)

let refresh db =
  let cat = Db.catalog db in
  let schema = Catalog.schema cat in
  let attrs = ref 0 and sets = ref 0 and ixs = ref 0 in
  List.iter
    (fun (co : Catalog.collection) ->
      match Schema.find_class schema co.Catalog.co_class with
      | None -> ()
      | Some cd ->
        List.iter
          (fun (a : Schema.attr) ->
            match a.Schema.a_ty with
            | Schema.Bool | Schema.Int | Schema.Float | Schema.String | Schema.Date ->
              (* only refresh attributes that already carry a statistic:
                 attributes the paper's catalog deliberately leaves
                 unstatisticized (Task.time, Employee.name) stay that way
                 so index-vs-default selectivity behaviour is preserved *)
              if Catalog.distinct cat ~cls:co.Catalog.co_class ~field:a.Schema.a_name <> None
              then begin
                Catalog.set_distinct cat ~cls:co.Catalog.co_class ~field:a.Schema.a_name
                  (distinct_values db ~coll:co.Catalog.co_name ~field:a.Schema.a_name);
                incr attrs
              end
            | Schema.Set_of _ ->
              Catalog.set_avg_set_size cat ~cls:co.Catalog.co_class ~field:a.Schema.a_name
                (average_set_size db ~coll:co.Catalog.co_name ~field:a.Schema.a_name);
              incr sets
            | Schema.Ref _ -> ())
          cd.Schema.cl_attrs)
    (Catalog.collections cat);
  (* re-read index statistics from the physical indexes *)
  let updated_defs =
    List.filter_map
      (fun (ix : Catalog.index_def) ->
        match Db.find_index db ix.Catalog.ix_name with
        | Some physical ->
          Some { ix with Catalog.ix_distinct = Btree_index.distinct_keys physical }
        | None -> None)
      (Catalog.indexes cat)
  in
  List.iter
    (fun (ix : Catalog.index_def) ->
      Catalog.drop_index cat ix.Catalog.ix_name;
      Catalog.add_index cat ix;
      incr ixs)
    updated_defs;
  { attributes_updated = !attrs; set_attributes_updated = !sets; indexes_updated = !ixs }

let pp_report ppf r =
  Format.fprintf ppf "refreshed %d attribute, %d set-size and %d index statistics"
    r.attributes_updated r.set_attributes_updated r.indexes_updated
