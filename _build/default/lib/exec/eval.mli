(** Predicate and scalar evaluation over tuples. *)

module Value = Oodb_storage.Value
module Pred = Oodb_algebra.Pred

val operand : Env.t -> Pred.operand -> Value.t
(** [Field] reads a materialized object's attribute ([Null] if missing);
    [Self] yields the binding's OID as a [Ref].
    @raise Env.Not_materialized / Env.Unbound on plan bugs. *)

val atom : Env.t -> Pred.atom -> bool
(** Three-valued-logic shortcut: comparisons involving [Null] are false
    (except [Null == Null] and [Null != x]). *)

val pred : Env.t -> Pred.t -> bool
(** Conjunction. *)
