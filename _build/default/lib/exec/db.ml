module Store = Oodb_storage.Store
module Btree_index = Oodb_storage.Btree_index
module Catalog = Oodb_catalog.Catalog

type t = {
  catalog : Catalog.t;
  store : Store.t;
  indexes : (string, Btree_index.t) Hashtbl.t;
}

let create catalog store = { catalog; store; indexes = Hashtbl.create 8 }

let catalog t = t.catalog

let store t = t.store

let add_index t ix =
  let name = Btree_index.name ix in
  if Hashtbl.mem t.indexes name then
    invalid_arg (Printf.sprintf "Db.add_index: duplicate index %s" name);
  Hashtbl.add t.indexes name ix

let find_index t name = Hashtbl.find_opt t.indexes name

let index_names t = Hashtbl.fold (fun name _ acc -> name :: acc) t.indexes []
