module Value = Oodb_storage.Value
module Store = Oodb_storage.Store
module Pred = Oodb_algebra.Pred

let operand env = function
  | Pred.Const v -> v
  | Pred.Self b -> Value.Ref (Env.oid env b)
  | Pred.Field (b, f) -> (
    let o = Env.obj env b in
    match Store.field o f with v -> v | exception Not_found -> Value.Null)

let atom env (a : Pred.atom) =
  let l = operand env a.Pred.lhs and r = operand env a.Pred.rhs in
  match a.Pred.cmp with
  | Pred.Eq -> Value.equal l r
  | Pred.Ne -> not (Value.equal l r)
  | Pred.Lt -> l <> Value.Null && r <> Value.Null && Value.compare l r < 0
  | Pred.Le -> l <> Value.Null && r <> Value.Null && Value.compare l r <= 0
  | Pred.Gt -> l <> Value.Null && r <> Value.Null && Value.compare l r > 0
  | Pred.Ge -> l <> Value.Null && r <> Value.Null && Value.compare l r >= 0

let pred env atoms = List.for_all (atom env) atoms
