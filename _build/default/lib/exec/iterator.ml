type t = {
  open_ : unit -> unit;
  next : unit -> Env.t option;
  close : unit -> unit;
}

let make ~open_ ~next ~close = { open_; next; close }

let open_ t = t.open_ ()

let next t = t.next ()

let close t = t.close ()

let of_gen factory =
  let gen = ref (fun () -> None) in
  { open_ = (fun () -> gen := factory ());
    next = (fun () -> !gen ());
    close = (fun () -> gen := fun () -> None) }

let of_list_thunk thunk =
  of_gen (fun () ->
      let remaining = ref (thunk ()) in
      fun () ->
        match !remaining with
        | [] -> None
        | env :: rest ->
          remaining := rest;
          Some env)

let to_list t =
  open_ t;
  let rec drain acc =
    match next t with
    | Some env -> drain (env :: acc)
    | None ->
      close t;
      List.rev acc
  in
  drain []

let iter f t =
  open_ t;
  let rec go () =
    match next t with
    | Some env ->
      f env;
      go ()
    | None -> close t
  in
  go ()
