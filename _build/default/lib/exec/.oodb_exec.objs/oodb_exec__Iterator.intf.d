lib/exec/iterator.mli: Env
