lib/exec/env.ml: List Oodb_storage
