lib/exec/iterator.ml: Env List
