lib/exec/operators.ml: Array Db Env Eval Float Hashtbl Iterator List Oodb_algebra Oodb_cost Oodb_storage Open_oodb Option Printf
