lib/exec/executor.ml: Db Env Eval Format Iterator List Oodb_algebra Oodb_cost Oodb_storage Open_oodb Operators
