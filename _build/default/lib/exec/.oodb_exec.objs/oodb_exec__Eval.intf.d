lib/exec/eval.mli: Env Oodb_algebra Oodb_storage
