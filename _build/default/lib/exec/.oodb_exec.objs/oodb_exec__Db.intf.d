lib/exec/db.mli: Oodb_catalog Oodb_storage
