lib/exec/analyze.mli: Db Format
