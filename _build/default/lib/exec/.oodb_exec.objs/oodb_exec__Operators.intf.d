lib/exec/operators.mli: Db Iterator Oodb_algebra Oodb_cost Oodb_storage Open_oodb
