lib/exec/executor.mli: Db Format Iterator Oodb_cost Oodb_storage Open_oodb
