lib/exec/env.mli: Oodb_storage
