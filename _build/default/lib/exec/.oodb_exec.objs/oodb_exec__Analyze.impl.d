lib/exec/analyze.ml: Db Format Hashtbl List Oodb_catalog Oodb_storage
