lib/exec/eval.ml: Env List Oodb_algebra Oodb_storage
