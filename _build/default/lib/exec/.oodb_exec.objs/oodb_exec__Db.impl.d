lib/exec/db.ml: Hashtbl Oodb_catalog Oodb_storage Printf
