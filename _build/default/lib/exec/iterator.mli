(** Volcano-style demand-driven iterators (open / next / close).

    This is the execution model of the Volcano query execution module the
    paper plans to transfer to the Open OODB system: every algorithm is
    an iterator over {!Env.t} tuples, composed into a tree mirroring the
    physical plan. *)

type t

val make :
  open_:(unit -> unit) -> next:(unit -> Env.t option) -> close:(unit -> unit) -> t

val of_gen : (unit -> (unit -> Env.t option)) -> t
(** Build from a generator factory: [open_] calls the factory, [next]
    pulls from the generator, [close] drops it. *)

val open_ : t -> unit

val next : t -> Env.t option

val close : t -> unit

val to_list : t -> Env.t list
(** Open, drain, close. *)

val iter : (Env.t -> unit) -> t -> unit

val of_list_thunk : (unit -> Env.t list) -> t
(** Materializing source: the thunk runs at open time. *)
