(** A database: catalog metadata plus the physical store and indexes. *)

module Store = Oodb_storage.Store
module Btree_index = Oodb_storage.Btree_index
module Catalog = Oodb_catalog.Catalog

type t

val create : Catalog.t -> Store.t -> t

val catalog : t -> Catalog.t

val store : t -> Store.t

val add_index : t -> Btree_index.t -> unit
(** Register a physical index under its name.
    @raise Invalid_argument on duplicates. *)

val find_index : t -> string -> Btree_index.t option

val index_names : t -> string list
