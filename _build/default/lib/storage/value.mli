(** Runtime values stored in objects and manipulated by predicates.

    This is the common currency between the storage layer, the algebra's
    predicate language, and the execution engine. Object identity is a
    plain integer OID; inter-object references are [Ref] values, and
    set-valued components (e.g. [Task.team_members]) are [Set] values
    whose elements are usually references. *)

type oid = int

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Date of int  (** days since 1900-01-01; total order matches calendar order *)
  | Ref of oid
  | Set of t list

val equal : t -> t -> bool

val compare : t -> t -> int
(** Total order. Values of different constructors are ordered by
    constructor rank; [Int] and [Float] compare numerically with each
    other. Used by indexes and by hash-based set operations. *)

val hash : t -> int

val pp : Format.formatter -> t -> unit

val to_string : t -> string

val date_of_ymd : int -> int -> int -> int
(** [date_of_ymd y m d] encodes a calendar date, monotone in (y, m, d).
    Mirrors the paper's [Date lr(01,01,1992)] example. *)

val as_ref : t -> oid option
(** [Some oid] for [Ref oid], [None] otherwise. *)

val set_elements : t -> t list
(** Elements of a [Set]; [Null] is the empty set; other values raise
    [Invalid_argument]. *)
