lib/storage/btree_index.mli: Store Value
