lib/storage/disk.mli:
