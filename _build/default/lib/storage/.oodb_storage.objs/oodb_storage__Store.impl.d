lib/storage/store.ml: Array Buffer_pool Disk Hashtbl List Printf Value
