lib/storage/disk.ml: Printf
