lib/storage/btree_index.ml: Array Buffer_pool Disk Int List Store Value
