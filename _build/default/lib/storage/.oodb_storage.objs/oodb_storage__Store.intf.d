lib/storage/store.mli: Buffer_pool Disk Value
