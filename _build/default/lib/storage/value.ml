type oid = int

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Date of int
  | Ref of oid
  | Set of t list

let rank = function
  | Null -> 0
  | Bool _ -> 1
  | Int _ -> 2
  | Float _ -> 2 (* numeric values compare with each other *)
  | Str _ -> 3
  | Date _ -> 4
  | Ref _ -> 5
  | Set _ -> 6

let rec compare a b =
  match a, b with
  | Null, Null -> 0
  | Bool x, Bool y -> Bool.compare x y
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | Int x, Float y -> Float.compare (float_of_int x) y
  | Float x, Int y -> Float.compare x (float_of_int y)
  | Str x, Str y -> String.compare x y
  | Date x, Date y -> Int.compare x y
  | Ref x, Ref y -> Int.compare x y
  | Set x, Set y -> List.compare compare x y
  | _ -> Int.compare (rank a) (rank b)

let equal a b = compare a b = 0

let rec hash = function
  | Null -> 17
  | Bool b -> if b then 3 else 5
  | Int i -> Hashtbl.hash i
  | Float f ->
    (* Keep Int/Float hashing consistent with their cross comparison when
       the float is integral. *)
    if Float.is_integer f && Float.abs f < 1e15 then Hashtbl.hash (int_of_float f)
    else Hashtbl.hash f
  | Str s -> Hashtbl.hash s
  | Date d -> Hashtbl.hash (d + 0x5bd1)
  | Ref o -> Hashtbl.hash (o + 0x9e37)
  | Set vs -> List.fold_left (fun acc v -> (acc * 31) + hash v) 7 vs

let rec pp ppf = function
  | Null -> Format.pp_print_string ppf "null"
  | Bool b -> Format.pp_print_bool ppf b
  | Int i -> Format.pp_print_int ppf i
  | Float f -> Format.fprintf ppf "%g" f
  | Str s -> Format.fprintf ppf "%S" s
  | Date d -> Format.fprintf ppf "date:%d" d
  | Ref o -> Format.fprintf ppf "@@%d" o
  | Set vs ->
    Format.fprintf ppf "{%a}" (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ") pp) vs

let to_string v = Format.asprintf "%a" pp v

let date_of_ymd y m d = ((y - 1900) * 372) + ((m - 1) * 31) + (d - 1)

let as_ref = function Ref o -> Some o | Null | Bool _ | Int _ | Float _ | Str _ | Date _ | Set _ -> None

let set_elements = function
  | Set vs -> vs
  | Null -> []
  | Bool _ | Int _ | Float _ | Str _ | Date _ | Ref _ ->
    invalid_arg "Value.set_elements: not a set"
