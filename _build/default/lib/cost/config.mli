(** Tunable constants of the cost model and execution environment.

    The defaults are calibrated against the paper's anticipated execution
    times (its testbed was a 25 MHz DECstation 5000/125 with 32 MB of
    memory); EXPERIMENTS.md records how close each reproduced number
    lands. Everything is a plain record so experiments and property tests
    can sweep values. *)

type t = {
  page_bytes : int;  (** disk page size *)
  seq_io : float;  (** seconds per sequentially read page *)
  rand_io : float;  (** seconds per randomly read page *)
  asm_io_floor : float;
      (** seconds per assembly fetch with an unbounded window: the
          elevator pattern removes most seek time but not rotation and
          transfer *)
  assembly_window : int;  (** default window of open references *)
  cpu_tuple : float;  (** seconds of CPU per tuple handled by an operator *)
  cpu_pred : float;  (** seconds per predicate-atom evaluation *)
  cpu_hash : float;  (** seconds per hash-table insert or probe *)
  memory_bytes : int;  (** budget for hash tables before spilling *)
  buffer_pages : int;  (** buffer-pool capacity used by the executor *)
  default_selectivity : float;  (** the paper's 10% fallback *)
  range_selectivity : float;  (** fallback for inequality predicates *)
}

val default : t

val assembly_io : t -> window:int -> float
(** Per-fetch I/O seconds for the assembly algorithm with the given
    window: [rand_io] when the window is 1 (one object at a time, no seek
    optimization — the degraded variant in the paper's Table 2) and
    approaching [asm_io_floor] as the window grows. *)

val pages : t -> bytes:float -> float
(** Number of pages occupied by [bytes] of densely packed data. *)
