(** Cost abstract data type.

    As in the paper, cost is "encapsulated in an abstract data type" and
    plans are compared on anticipated total execution time; the I/O and
    CPU components are kept separate only for explanation output. *)

type t = { io : float; cpu : float }
(** Both components in seconds. *)

val zero : t

val io : float -> t

val cpu : float -> t

val make : io:float -> cpu:float -> t

val add : t -> t -> t

val sub : t -> t -> t
(** Componentwise difference; used for branch-and-bound limit budgets. *)

val sum : t list -> t

val total : t -> float

val compare : t -> t -> int
(** By total seconds. *)

val ( <= ) : t -> t -> bool

val infinite : t
(** Upper bound used as the initial branch-and-bound limit. *)

val is_finite : t -> bool

val pp : Format.formatter -> t -> unit
(** e.g. [119.60s (io 118.52 + cpu 1.08)]. *)
