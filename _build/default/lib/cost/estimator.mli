(** Derivation of logical properties, bottom-up over the logical algebra.

    The derivation encodes the paper's statistical model: cardinality
    information is kept only with sets and extents, so a [Mat] whose
    target class has no scannable collection (the paper's [Plant])
    produces a binding with no class-cardinality bound — which is what
    later makes its assembly cost proportional to the input stream. *)

val class_bytes : Oodb_catalog.Catalog.t -> string -> float
(** Average object size of a class, from any collection holding it
    (including hidden heaps); a conservative 128 bytes if unknown. *)

val derive :
  Config.t ->
  Oodb_catalog.Catalog.t ->
  Oodb_algebra.Logical.op ->
  Lprops.t list ->
  Lprops.t
(** [derive cfg cat op inputs] — properties of [op] applied to inputs
    with the given properties.
    @raise Invalid_argument on arity mismatch or unresolvable schema
    references (expressions are validated by {!Oodb_algebra.Logical.well_formed}
    before optimization, so this indicates a bug). *)

val derive_expr : Config.t -> Oodb_catalog.Catalog.t -> Oodb_algebra.Logical.t -> Lprops.t
(** Whole-tree convenience wrapper. *)
