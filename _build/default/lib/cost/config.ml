type t = {
  page_bytes : int;
  seq_io : float;
  rand_io : float;
  asm_io_floor : float;
  assembly_window : int;
  cpu_tuple : float;
  cpu_pred : float;
  cpu_hash : float;
  memory_bytes : int;
  buffer_pages : int;
  default_selectivity : float;
  range_selectivity : float;
}

(* Calibrated against the paper's DECstation 5000/125 era: ~20 ms
   sequential and ~30 ms random page access, ~0.5 ms of CPU per tuple per
   operator on the 25 MHz processor. With these constants the anticipated
   times for the paper's queries land within a small factor of Tables 2-3
   (see EXPERIMENTS.md). *)
let default =
  { page_bytes = 4096;
    seq_io = 0.020;
    rand_io = 0.030;
    asm_io_floor = 0.008;
    assembly_window = 16;
    cpu_tuple = 5.0e-4;
    cpu_pred = 1.0e-4;
    cpu_hash = 5.0e-4;
    memory_bytes = 4 * 1024 * 1024;
    buffer_pages = 1024;
    default_selectivity = 0.10;
    range_selectivity = 0.33 }

let assembly_io t ~window =
  let window = max 1 window in
  t.asm_io_floor +. ((t.rand_io -. t.asm_io_floor) /. float_of_int window)

let pages t ~bytes = Float.max 1.0 (Float.ceil (bytes /. float_of_int t.page_bytes))
