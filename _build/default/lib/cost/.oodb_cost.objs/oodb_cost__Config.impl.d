lib/cost/config.ml: Float
