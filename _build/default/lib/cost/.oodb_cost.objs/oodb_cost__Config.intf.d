lib/cost/config.mli:
