lib/cost/lprops.mli: Format
