lib/cost/lprops.ml: Format List Option String
