lib/cost/selectivity.mli: Config Lprops Oodb_algebra Oodb_catalog
