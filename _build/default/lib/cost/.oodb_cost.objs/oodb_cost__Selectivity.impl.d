lib/cost/selectivity.ml: Config Float List Lprops Oodb_algebra Oodb_catalog Oodb_storage Option
