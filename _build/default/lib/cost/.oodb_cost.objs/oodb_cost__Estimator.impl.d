lib/cost/estimator.ml: Float Format List Lprops Oodb_algebra Oodb_catalog Selectivity
