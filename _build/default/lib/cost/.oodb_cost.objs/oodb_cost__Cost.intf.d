lib/cost/cost.mli: Format
