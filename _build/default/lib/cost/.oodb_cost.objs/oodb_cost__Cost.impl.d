lib/cost/cost.ml: Float Format List
