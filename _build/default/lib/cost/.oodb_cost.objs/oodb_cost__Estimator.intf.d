lib/cost/estimator.mli: Config Lprops Oodb_algebra Oodb_catalog
