type source =
  | From_get of string
  | From_mat of string * string option
  | From_unnest of string * string

type binding_info = {
  b_class : string;
  b_bytes : float;
  b_source : source;
}

type t = {
  card : float;
  bindings : (string * binding_info) list;
}

let find t b = List.assoc_opt b t.bindings

let class_of t b = Option.map (fun i -> i.b_class) (find t b)

let row_bytes t = List.fold_left (fun acc (_, i) -> acc +. i.b_bytes) 0.0 t.bindings

let bytes_of t bs =
  List.fold_left
    (fun acc b -> match find t b with Some i -> acc +. i.b_bytes | None -> acc)
    0.0 bs

let provenance t b =
  (* [path] accumulates root-to-leaf order: walking upward prepends the
     step closer to the root in front of those already collected. *)
  let rec go b path depth =
    if depth > 64 then None (* defensive: malformed self-referential scopes *)
    else
      match find t b with
      | None -> None
      | Some { b_source = From_get coll; _ } -> Some (coll, path)
      | Some { b_source = From_mat (src, Some field); _ } -> go src (field :: path) (depth + 1)
      | Some { b_source = From_mat (src, None); _ } -> go src path (depth + 1)
      | Some { b_source = From_unnest _; _ } -> None
  in
  go b [] 0

let pp ppf t =
  Format.fprintf ppf "card=%.1f scope={%s}" t.card
    (String.concat ", " (List.map (fun (b, i) -> b ^ ":" ^ i.b_class) t.bindings))
