(** Logical properties of an algebra expression: estimated cardinality
    and the in-scope bindings with their classes, sizes and provenance.

    Logical properties are "properties of an expression determined by the
    logical operators before execution algorithms are chosen" (paper §3);
    they are attached to every memo group and consumed by selectivity
    estimation, by transformation-rule guards (e.g. Mat-to-Join needs the
    target class to have a scannable collection) and by the cost model. *)

type source =
  | From_get of string  (** scanned from this collection *)
  | From_mat of string * string option
      (** dereferenced from [(src binding, field)]; [None] when the source
          binding is itself the reference being materialized *)
  | From_unnest of string * string  (** unnested from [(src binding, field)] *)

type binding_info = {
  b_class : string;
  b_bytes : float;  (** average object size in bytes *)
  b_source : source;
}

type t = {
  card : float;  (** estimated output cardinality *)
  bindings : (string * binding_info) list;  (** scope, in introduction order *)
}

val find : t -> string -> binding_info option

val class_of : t -> string -> string option

val row_bytes : t -> float
(** Total bytes of one output tuple's in-scope objects — the footprint a
    hash table holding the output must budget for. *)

val bytes_of : t -> string list -> float
(** Footprint of a subset of the bindings. *)

val provenance : t -> string -> (string * string list) option
(** [provenance t b] chases [From_mat] links back to a [From_get]:
    [Some (collection, path)] means binding [b] holds the object reached
    from a member of [collection] via [path] — the shape matched against
    path-index definitions. [path = []] for the scanned binding itself.
    [None] when the chain crosses an [Unnest] or a projected-away
    binding. *)

val pp : Format.formatter -> t -> unit
