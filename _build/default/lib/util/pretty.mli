(** Rendering of operator trees in the vertical style used by the paper's
    figures: a node label, then each child indented beneath a [|] rail. *)

type tree = Node of string * tree list

val render : tree -> string
(** Multi-line rendering; single-input chains are drawn as a vertical
    spine (like the paper's Figures 2-13), multi-input nodes fan out. *)

val render_compact : tree -> string
(** One-line rendering [label(child, child)], for logs and tests. *)
