(** Deterministic pseudo-random number generator (SplitMix64).

    The shipped data generator derives everything from fixed congruences
    (so invariants such as "exactly 2 Joe mayors" hold exactly), but
    downstream users building their own workloads get a seedable,
    reproducible stream here instead of the global [Random] state. *)

type t

val create : int -> t
(** [create seed] returns a fresh generator. Equal seeds yield equal
    streams. *)

val copy : t -> t
(** Independent copy continuing from the same state. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] (inclusive). *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val pick : t -> 'a array -> 'a
(** Uniform choice from a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
