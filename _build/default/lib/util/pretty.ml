type tree = Node of string * tree list

(* The paper draws plans as a vertical spine for unary chains:

     Select p
     |
     Mat c.mayor
     |
     Get Cities: c

   and indents the extra inputs of n-ary operators underneath. *)

let render tree =
  let buf = Buffer.create 256 in
  let rec go indent (Node (label, children)) =
    Buffer.add_string buf indent;
    Buffer.add_string buf label;
    Buffer.add_char buf '\n';
    match children with
    | [] -> ()
    | [ child ] ->
      Buffer.add_string buf indent;
      Buffer.add_string buf "|\n";
      go indent child
    | children ->
      let child_indent = indent ^ "    " in
      List.iter
        (fun child ->
          Buffer.add_string buf indent;
          Buffer.add_string buf "|\n";
          go child_indent child)
        children
  in
  go "" tree;
  (* Drop the final newline so callers control spacing. *)
  let s = Buffer.contents buf in
  if String.length s > 0 && s.[String.length s - 1] = '\n' then
    String.sub s 0 (String.length s - 1)
  else s

let rec render_compact (Node (label, children)) =
  match children with
  | [] -> label
  | _ ->
    let inner = String.concat ", " (List.map render_compact children) in
    label ^ "(" ^ inner ^ ")"
