lib/util/pretty.mli:
