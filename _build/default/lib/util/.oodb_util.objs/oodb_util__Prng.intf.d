lib/util/prng.mli:
