(** Logical transformation rules.

    The rule set contains the known relational transformations (selection
    pushing and merging, join commutativity and associativity, set-
    operator commutativity) "plus some new ones pertaining to the
    materialize operator" (paper §3): Mat-Mat commutativity, moving Mat
    through joins, and the Mat-to-Join rule that turns a reference
    traversal into a value-based join against a scannable collection of
    the target class (assuming referential containment of references in
    that collection, which the data generator guarantees).

    Each rule has a stable name so experiments can disable it — the paper
    "simulates" weaker optimizers by disabling [join-commute] (Table 2)
    and friends. *)

val names : string list
(** All rule names, in registration order. *)

val all : Oodb_cost.Config.t -> Oodb_catalog.Catalog.t -> Model.Engine.trule list
