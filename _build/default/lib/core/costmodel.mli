(** Cost functions for the physical algorithms (anticipated execution
    time in seconds, split into I/O and CPU).

    The assembly/pointer-dereference formulas implement the paper's
    estimation rule: when the referenced class has a scannable collection
    the optimizer "can place an upper bound on the number of I/O
    operations needed" (every object ends up buffered), otherwise it must
    assume one fetch per reference — that assumption is what prices naive
    pointer chasing of 50,000 plant references out of Query 1's plan. *)

module Cost = Oodb_cost.Cost
module Config = Oodb_cost.Config
module Lprops = Oodb_cost.Lprops
module Catalog = Oodb_catalog.Catalog

val file_scan : Config.t -> Catalog.collection -> Cost.t

val btree_height : Config.t -> entries:float -> int
(** Simulated B+-tree height for an index of that many entries, matching
    {!Oodb_storage.Btree_index}. *)

val index_scan :
  Config.t -> coll:Catalog.collection -> matches:float -> residual_atoms:int -> Cost.t
(** Descent, leaf pages for [matches] entries, one random fetch per
    matching object, residual predicate CPU. *)

val filter : Config.t -> card:float -> atoms:int -> Cost.t

val hash_join :
  Config.t ->
  build_card:float ->
  build_bytes:float ->
  probe_card:float ->
  probe_bytes:float ->
  out_card:float ->
  atoms:int ->
  Cost.t
(** In-memory when the build side fits the memory budget; otherwise one
    partitioning pass writing and re-reading both sides. *)

val merge_join :
  Config.t -> left_card:float -> right_card:float -> out_card:float -> atoms:int -> Cost.t
(** Linear merge of two sorted inputs (sorting, when needed, is priced by
    the sort enforcer). *)

val deref_fetches : Catalog.t -> target_cls:string -> stream_card:float -> float
(** Estimated I/O operations to dereference [stream_card] references to
    objects of [target_cls]: bounded by the class cardinality when known
    (paper's extent upper bound), the stream cardinality otherwise. *)

val assembly :
  Config.t ->
  Catalog.t ->
  window:int ->
  stream_card:float ->
  targets:string list ->
  Cost.t
(** One windowed dereference pass per target class in [targets]. *)

val warm_assembly :
  Config.t -> Catalog.t -> target_coll:Catalog.collection -> stream_card:float -> Cost.t
(** Lesson-7 warm start: one sequential scan of the referenced collection
    primes the buffer pool, so dereferences cost only CPU. Only offered
    when the collection fits the buffer (checked by the rule). *)

val pointer_join :
  Config.t -> Catalog.t -> target_cls:string -> stream_card:float -> atoms:int -> Cost.t
(** Naive per-tuple dereference (window of one) plus residual predicate. *)

val alg_project : Config.t -> card:float -> Cost.t

val alg_unnest : Config.t -> in_card:float -> out_card:float -> Cost.t

val hash_setop : Config.t -> left_card:float -> right_card:float -> out_card:float -> Cost.t

val sort : Config.t -> card:float -> row_bytes:float -> Cost.t
