(** Argument transformations (paper Lesson 9).

    The paper found it "sometimes necessary to transform logical operator
    arguments in a way that is similar to the algebraic operator
    transformations", under rules "completely different than the
    algebraic operator transformations". This module is that second rule
    group: a normalization pass over predicate arguments that runs before
    algebraic optimization —

    - constant folding: atoms comparing two constants evaluate away;
    - tautology elimination: [x == x], [x <= x] and friends drop out;
    - duplicate conjuncts collapse (they would otherwise square their
      estimated selectivity);
    - contradictions ([x == 1 && x == 2], or any atom folding to false)
      reduce the whole conjunction to a canonical false atom whose
      selectivity is (near) zero;
    - operand canonicalization: constants move to the right-hand side.

    All optimizer entry points (cost-based, greedy, naive) run this pass,
    so their estimates agree on degenerate inputs. *)

module Pred = Oodb_algebra.Pred
module Logical = Oodb_algebra.Logical

val false_atom : Pred.atom
(** The canonical unsatisfiable conjunct, [true == false]. *)

val atom : Pred.atom -> [ `Keep of Pred.atom | `True | `False ]
(** Normalize one atom. *)

val pred : Pred.t -> [ `Pred of Pred.t | `Contradiction ]
(** Normalize a conjunction; [`Pred []] is [true]. *)

val expr : Logical.t -> Logical.t
(** Normalize every Select and Join argument in an expression. A
    contradictory Select becomes [Select [false_atom]]; a contradictory
    Join keeps its link atoms and adds [false_atom]. *)
