module Value = Oodb_storage.Value
module Pred = Oodb_algebra.Pred
module Logical = Oodb_algebra.Logical

let false_atom = Pred.atom Pred.Eq (Pred.Const (Value.Bool true)) (Pred.Const (Value.Bool false))

let holds cmp c =
  match (cmp : Pred.cmp) with
  | Pred.Eq -> c = 0
  | Pred.Ne -> c <> 0
  | Pred.Lt -> c < 0
  | Pred.Le -> c <= 0
  | Pred.Gt -> c > 0
  | Pred.Ge -> c >= 0

let atom (a : Pred.atom) =
  match a.Pred.lhs, a.Pred.rhs with
  | Pred.Const l, Pred.Const r ->
    if holds a.Pred.cmp (Value.compare l r) then `True else `False
  | lhs, rhs when lhs = rhs -> (
    (* same operand on both sides: decided by the comparison's reflexivity *)
    match a.Pred.cmp with
    | Pred.Eq | Pred.Le | Pred.Ge -> `True
    | Pred.Ne | Pred.Lt | Pred.Gt -> `False)
  | Pred.Const _, (Pred.Field _ | Pred.Self _) ->
    (* constants canonically on the right *)
    `Keep (Pred.atom (Pred.flip a.Pred.cmp) a.Pred.rhs a.Pred.lhs)
  | _ -> `Keep a

let pred atoms =
  let exception Contradiction in
  try
    let kept =
      List.filter_map
        (fun a ->
          match atom a with
          | `True -> None
          | `False -> raise Contradiction
          | `Keep a -> Some a)
        atoms
    in
    (* dedup identical conjuncts *)
    let kept =
      List.fold_left (fun acc a -> if List.mem a acc then acc else a :: acc) [] kept
      |> List.rev
    in
    (* x == c1 && x == c2 with distinct constants is unsatisfiable *)
    let eq_consts =
      List.filter_map
        (fun (a : Pred.atom) ->
          match a.Pred.cmp, a.Pred.lhs, a.Pred.rhs with
          | Pred.Eq, operand, Pred.Const v -> Some (operand, v)
          | _ -> None)
        kept
    in
    List.iter
      (fun (op1, v1) ->
        List.iter
          (fun (op2, v2) -> if op1 = op2 && not (Value.equal v1 v2) then raise Contradiction)
          eq_consts)
      eq_consts;
    `Pred kept
  with Contradiction -> `Contradiction

let rec expr (t : Logical.t) =
  let inputs = List.map expr t.Logical.inputs in
  match t.Logical.op, inputs with
  | Logical.Select p, [ input ] -> (
    match pred p with
    | `Pred [] -> input
    | `Pred p' -> Logical.select p' input
    | `Contradiction -> Logical.select [ false_atom ] input)
  | Logical.Join p, [ l; r ] -> (
    match pred p with
    | `Pred p' -> Logical.join p' l r
    | `Contradiction ->
      (* keep equality links so downstream algorithms still apply, and
         force emptiness with the canonical false conjunct *)
      let links = List.filter (fun (a : Pred.atom) -> a.Pred.cmp = Pred.Eq) p in
      Logical.join (links @ [ false_atom ]) l r)
  | op, inputs -> { Logical.op; inputs }
