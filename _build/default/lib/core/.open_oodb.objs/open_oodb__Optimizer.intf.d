lib/core/optimizer.mli: Format Model Oodb_algebra Oodb_catalog Oodb_cost Options Physprop
