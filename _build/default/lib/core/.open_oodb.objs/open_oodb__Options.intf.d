lib/core/options.mli: Oodb_cost
