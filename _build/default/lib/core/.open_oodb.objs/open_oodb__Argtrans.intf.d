lib/core/argtrans.mli: Oodb_algebra
