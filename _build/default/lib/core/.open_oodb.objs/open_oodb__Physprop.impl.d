lib/core/physprop.ml: Format Hashtbl List Printf Set String
