lib/core/enforcers.mli: Model Oodb_catalog Oodb_cost
