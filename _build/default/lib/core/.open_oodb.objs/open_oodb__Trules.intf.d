lib/core/trules.mli: Model Oodb_catalog Oodb_cost
