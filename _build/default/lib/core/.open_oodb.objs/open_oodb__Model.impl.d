lib/core/model.ml: Hashtbl List Oodb_algebra Oodb_cost Physical Physprop Stdlib Volcano
