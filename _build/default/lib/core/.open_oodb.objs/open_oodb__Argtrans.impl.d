lib/core/argtrans.ml: List Oodb_algebra Oodb_storage
