lib/core/trules.ml: Engine List Model Oodb_algebra Oodb_catalog Oodb_cost
