lib/core/optimizer.ml: Argtrans Enforcers Engine Format Irules Model Oodb_algebra Oodb_catalog Oodb_cost Options Physprop Printf Sys Trules
