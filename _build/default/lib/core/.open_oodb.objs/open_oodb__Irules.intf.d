lib/core/irules.mli: Model Oodb_catalog Oodb_cost
