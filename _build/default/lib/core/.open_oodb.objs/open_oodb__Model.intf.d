lib/core/model.mli: Oodb_algebra Oodb_cost Physical Physprop Volcano
