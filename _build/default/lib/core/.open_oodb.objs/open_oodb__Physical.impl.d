lib/core/physical.ml: Format Oodb_algebra Oodb_storage Physprop
