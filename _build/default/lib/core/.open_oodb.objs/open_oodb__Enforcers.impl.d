lib/core/enforcers.ml: Costmodel Engine List Model Oodb_catalog Oodb_cost Physical Physprop
