lib/core/costmodel.ml: Float List Oodb_catalog Oodb_cost
