lib/core/physprop.mli: Format Set
