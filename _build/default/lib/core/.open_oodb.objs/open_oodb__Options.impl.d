lib/core/options.ml: Enforcers Irules List Oodb_cost Printf Trules
