lib/core/costmodel.mli: Oodb_catalog Oodb_cost
