lib/core/irules.ml: Costmodel Engine Float Hashtbl List Model Oodb_algebra Oodb_catalog Oodb_cost Option Physical Physprop
