lib/core/physical.mli: Format Oodb_algebra Oodb_storage Physprop
