module Pred = Oodb_algebra.Pred
module Logical = Oodb_algebra.Logical
module Value = Oodb_storage.Value

type assembly_path = {
  ap_src : string;
  ap_field : string option;
  ap_out : string;
}

type t =
  | File_scan of { coll : string; binding : string }
  | Index_scan of {
      coll : string;
      binding : string;
      index : string;
      key : Value.t;
      residual : Pred.t;
      derefs : (string * string option * string) list;
    }
  | Filter of Pred.t
  | Hash_join of Pred.t
  | Merge_join of {
      key_l : Pred.operand;
      key_r : Pred.operand;
      residual : Pred.t;
    }
  | Pointer_join of {
      src : string;
      field : string option;
      out : string;
      residual : Pred.t;
    }
  | Assembly of { paths : assembly_path list; window : int; warm : string option }
  | Alg_project of Logical.proj list
  | Alg_unnest of { src : string; field : string; out : string }
  | Hash_union
  | Hash_intersect
  | Hash_difference
  | Sort of Physprop.order

let pp_path ppf p =
  match p.ap_field with
  | Some field ->
    if p.ap_out = p.ap_src ^ "." ^ field then Format.fprintf ppf "%s.%s" p.ap_src field
    else Format.fprintf ppf "%s.%s: %s" p.ap_src field p.ap_out
  | None -> Format.fprintf ppf "%s: %s" p.ap_src p.ap_out

let pp_projs ppf ps =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
    (fun ppf (p : Logical.proj) -> Pred.pp_operand ppf p.Logical.p_expr)
    ppf ps

let pp ppf = function
  | File_scan { coll; binding } -> Format.fprintf ppf "File Scan %s: %s" coll binding
  | Index_scan { coll; binding; index; key; residual; derefs = _ } ->
    Format.fprintf ppf "Index Scan %s: %s, %s == %a" coll binding index Value.pp key;
    if residual <> [] then Format.fprintf ppf " [then %a]" Pred.pp residual
  | Filter pred -> Format.fprintf ppf "Filter %a" Pred.pp pred
  | Hash_join pred -> Format.fprintf ppf "Hybrid Hash Join %a" Pred.pp pred
  | Merge_join { key_l; key_r; residual } ->
    Format.fprintf ppf "Merge Join %a == %a" Pred.pp_operand key_l Pred.pp_operand key_r;
    if residual <> [] then Format.fprintf ppf " [then %a]" Pred.pp residual
  | Pointer_join { src; field; out; residual } ->
    (match field with
    | Some field -> Format.fprintf ppf "Pointer Join %s.%s: %s" src field out
    | None -> Format.fprintf ppf "Pointer Join %s: %s" src out);
    if residual <> [] then Format.fprintf ppf " [%a]" Pred.pp residual
  | Assembly { paths; window; warm } ->
    Format.fprintf ppf "Assembly %a"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ") pp_path)
      paths;
    if window = 1 then Format.pp_print_string ppf " [window 1]";
    (match warm with
    | Some coll -> Format.fprintf ppf " [warm-start %s]" coll
    | None -> ())
  | Alg_project ps -> Format.fprintf ppf "Alg-Project %a" pp_projs ps
  | Alg_unnest { src; field; out } -> Format.fprintf ppf "Alg-Unnest %s.%s: %s" src field out
  | Hash_union -> Format.pp_print_string ppf "Hash Union"
  | Hash_intersect -> Format.pp_print_string ppf "Hash Intersect"
  | Hash_difference -> Format.pp_print_string ppf "Hash Difference"
  | Sort { Physprop.ord_binding; ord_field = Some f } ->
    Format.fprintf ppf "Sort %s.%s" ord_binding f
  | Sort { Physprop.ord_binding; ord_field = None } ->
    Format.fprintf ppf "Sort %s (by identity)" ord_binding

let to_string t = Format.asprintf "%a" pp t
