(** Physical properties of intermediate results.

    The property central to the paper is {e presence in memory}: the set
    of bindings whose objects are materialized in each output tuple (not
    just referenced by OID). File scans deliver their binding in memory;
    an index scan delivers only the scanned binding, never path
    components; the assembly algorithm both implements [Mat] and
    {e enforces} this property.

    A sort-order slot extends the vector beyond the paper's
    implementation (which "currently supports only presence in memory"):
    merge join requires its inputs ordered on the join keys and the sort
    enforcer or an order-preserving scan delivers them — the extension
    the paper explicitly forecast when adding merge join. *)

module Bset : Set.S with type elt = string

type order = {
  ord_binding : string;
  ord_field : string option;
      (** [None]: ordered by the binding's object identity (OID) — the
          order a file scan naturally delivers and the one merge join
          needs on the referenced side of a link *)
}

type t = {
  in_memory : Bset.t;
  order : order option;
}

val empty : t

val in_memory : string list -> t

val with_order : order -> t -> t

val mem : t -> string -> bool

val add : string -> t -> t

val remove : string -> t -> t

val union : t -> t -> t
(** Union of in-memory sets; keeps the left order. *)

val restrict : t -> string list -> t
(** Drop in-memory bindings (and order) not in the given scope. *)

val satisfies : delivered:t -> required:t -> bool
(** Superset on [in_memory]; order must match exactly when required. *)

val equal : t -> t -> bool

val hash : t -> int

val pp : Format.formatter -> t -> unit
