module Bset = Set.Make (String)

type order = { ord_binding : string; ord_field : string option }

type t = {
  in_memory : Bset.t;
  order : order option;
}

let empty = { in_memory = Bset.empty; order = None }

let in_memory bs = { in_memory = Bset.of_list bs; order = None }

let with_order ord t = { t with order = Some ord }

let mem t b = Bset.mem b t.in_memory

let add b t = { t with in_memory = Bset.add b t.in_memory }

let remove b t = { t with in_memory = Bset.remove b t.in_memory }

let union a b = { in_memory = Bset.union a.in_memory b.in_memory; order = a.order }

let restrict t scope =
  { in_memory = Bset.filter (fun b -> List.mem b scope) t.in_memory;
    order =
      (match t.order with
      | Some o when List.mem o.ord_binding scope -> t.order
      | Some _ | None -> None) }

let satisfies ~delivered ~required =
  Bset.subset required.in_memory delivered.in_memory
  && (match required.order with
     | None -> true
     | Some o -> delivered.order = Some o)

let equal a b = Bset.equal a.in_memory b.in_memory && a.order = b.order

let hash t =
  let base = Bset.fold (fun b acc -> (acc * 31) + Hashtbl.hash b) t.in_memory 17 in
  match t.order with None -> base | Some o -> (base * 31) + Hashtbl.hash o

let pp ppf t =
  Format.fprintf ppf "{mem: %s%s}"
    (String.concat ", " (Bset.elements t.in_memory))
    (match t.order with
    | None -> ""
    | Some { ord_binding; ord_field = Some f } ->
      Printf.sprintf "; order: %s.%s" ord_binding f
    | Some { ord_binding; ord_field = None } ->
      Printf.sprintf "; order: %s.self" ord_binding)
