(** Physical algebra: the execution algorithms the optimizer chooses
    among, with the arguments the execution engine needs.

    Every constructor corresponds to an algorithm named in the paper:
    file (extent) scan, index scan (including the collapsed
    select-materialize-scan form over a path index), filter, hybrid hash
    join, pointer-based join, complex-object assembly with a window of
    open references, Alg-Project, Alg-Unnest, the hash-based set
    operations, and a sort enforcer kept as an extensibility demo. *)

type assembly_path = {
  ap_src : string;  (** binding holding the reference *)
  ap_field : string option;  (** [None]: [ap_src] is itself the reference *)
  ap_out : string;  (** binding for the materialized object *)
}

type t =
  | File_scan of { coll : string; binding : string }
  | Index_scan of {
      coll : string;
      binding : string;
      index : string;  (** catalog/physical index name *)
      key : Oodb_storage.Value.t;  (** equality probe value *)
      residual : Oodb_algebra.Pred.t;
          (** extra conjuncts on [binding], checked after fetching *)
      derefs : (string * string option * string) list;
          (** the Mat links the collapse consumed, root-first: the scan
              re-emits each output binding as a bare reference so the
              logical scope stays complete *)
    }
  | Filter of Oodb_algebra.Pred.t
  | Hash_join of Oodb_algebra.Pred.t
      (** first child builds the hash table, second probes *)
  | Merge_join of {
      key_l : Oodb_algebra.Pred.operand;  (** merge key of the first input *)
      key_r : Oodb_algebra.Pred.operand;
      residual : Oodb_algebra.Pred.t;
    }
      (** both inputs must arrive ordered on their key (the sort-order
          property; enforced by {!constructor:Sort} or delivered by an
          order-preserving scan) — the merge-join extension the paper
          planned once sort order joined presence-in-memory in the
          property vector *)
  | Pointer_join of {
      src : string;
      field : string option;
      out : string;
      residual : Oodb_algebra.Pred.t;
          (** join conjuncts beyond the reference equality *)
    }  (** naive pointer-based join: dereference per input tuple *)
  | Assembly of {
      paths : assembly_path list;
      window : int;
      warm : string option;
          (** warm-start (paper Lesson 7): scan this scannable collection
              into the buffer pool before assembly begins, so the
              per-reference faults become buffer hits *)
    }
  | Alg_project of Oodb_algebra.Logical.proj list
  | Alg_unnest of { src : string; field : string; out : string }
  | Hash_union
  | Hash_intersect
  | Hash_difference
  | Sort of Physprop.order

val pp : Format.formatter -> t -> unit
(** Paper style, e.g. ["Hybrid Hash Join d.self == e.dept"],
    ["Index Scan Cities: c, c.mayor.name == "Joe""], ["Assembly d.plant"]. *)

val to_string : t -> string
