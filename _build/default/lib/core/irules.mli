(** Implementation rules: the correspondence between logical expressions
    and execution algorithms, including the required/delivered physical
    property plumbing and cost estimation for each candidate.

    The multi-level [collapse-index-scan] rule implements the paper's
    crucial Query 2 optimization: a Select over a Mat chain over a Get
    collapses into a single index scan over a path index, never reading
    the intermediate objects. Because the index scan delivers only the
    scanned binding in memory, Query 3's projection of [mayor.age] cannot
    use it directly — the assembly enforcer (see {!Enforcers}) bridges
    the gap, reproducing the paper's Figure 10 plan. *)

val names : string list

val all : Oodb_cost.Config.t -> Oodb_catalog.Catalog.t -> Model.Engine.irule list
