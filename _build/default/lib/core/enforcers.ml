module Catalog = Oodb_catalog.Catalog
module Config = Oodb_cost.Config
module Lprops = Oodb_cost.Lprops
module Bset = Physprop.Bset
open Model

(* Enforce in-memory presence of one binding with an assembly step; the
   input plan must provide whatever the dereference reads. *)
let assembly_enforcer cfg cat =
  { Engine.e_name = "assembly-enforcer";
    e_apply =
      (fun ctx ~required g ->
        let lp = Engine.group_lprop ctx g in
        let window = cfg.Config.assembly_window in
        Bset.elements required.Physprop.in_memory
        |> List.filter_map (fun b ->
               match Lprops.find lp b with
               | None -> None
               | Some info ->
                 let weaker_base = Physprop.remove b required in
                 let make weaker src_field =
                   let path = { Physical.ap_src = fst src_field; ap_field = snd src_field; ap_out = b } in
                   let cost =
                     Costmodel.assembly cfg cat ~window ~stream_card:lp.Lprops.card
                       ~targets:[ info.Lprops.b_class ]
                   in
                   Some (Physical.Assembly { paths = [ path ]; window; warm = None }, weaker, cost)
                 in
                 (match info.Lprops.b_source with
                 | Lprops.From_mat (src, (Some _ as field)) ->
                   (* reading src.field requires src in memory *)
                   make (Physprop.add src weaker_base) (src, field)
                 | Lprops.From_mat (src, None) ->
                   (* src is a reference already carried by the tuple *)
                   make weaker_base (src, None)
                 | Lprops.From_unnest _ ->
                   (* the unnest stored b's reference in the tuple *)
                   make weaker_base (b, None)
                 | Lprops.From_get _ -> None))) }

(* Enforce a sort order (extensibility demo; no rule requires it). *)
let sort_enforcer cfg =
  { Engine.e_name = "sort-enforcer";
    e_apply =
      (fun ctx ~required g ->
        match required.Physprop.order with
        | None -> []
        | Some o ->
          let lp = Engine.group_lprop ctx g in
          (* sorting by a field reads the object: the input must deliver
             that binding in memory; identity sorts need only the OID *)
          let weaker_mem =
            match o.Physprop.ord_field with
            | Some _ -> Bset.add o.Physprop.ord_binding required.Physprop.in_memory
            | None -> required.Physprop.in_memory
          in
          let weaker = { Physprop.in_memory = weaker_mem; order = None } in
          let cost =
            Costmodel.sort cfg ~card:lp.Lprops.card ~row_bytes:(Lprops.row_bytes lp)
          in
          [ (Physical.Sort o, weaker, cost) ]) }

let all cfg cat = [ assembly_enforcer cfg cat; sort_enforcer cfg ]

let names = [ "assembly-enforcer"; "sort-enforcer" ]
