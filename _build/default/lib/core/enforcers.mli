(** Property enforcers.

    The assembly enforcer is the paper's central example: it achieves the
    presence-in-memory of a binding by resolving that binding's
    references on top of a plan optimized for weaker requirements —
    exactly how the Query 3 optimal plan places Assembly above the
    collapsed index scan (Figure 10). The sort enforcer demonstrates
    extending the property vector beyond the paper's implementation. *)

val names : string list

val all : Oodb_cost.Config.t -> Oodb_catalog.Catalog.t -> Model.Engine.enforcer list
