(** The logical algebra that is the input to the optimizer (paper §3).

    The foundation is the traditional set/relation operators plus two
    object-specific operators: [Unnest] for set-valued components and the
    paper's novel [Mat] (materialize), which represents one link of a path
    expression and brings the referenced component "into scope". A binding
    enters scope by being scanned ([Get]) or referenced ([Mat]/[Unnest])
    and remains in scope until a [Project] discards it. *)

type proj = { p_expr : Pred.operand; p_name : string }

type op =
  | Get of { coll : string; binding : string }
      (** scan collection [coll], binding each member *)
  | Select of Pred.t
  | Project of proj list
  | Join of Pred.t
  | Cross
  | Mat of { src : string; field : string option; out : string }
      (** dereference [src.field], bringing the target into scope as
          [out]; the conventional [out] for [Mat c.mayor] is ["c.mayor"].
          [field = None] materializes the reference held by binding [src]
          itself — the paper's [Mat m.employee: e] resolving the
          reference [m] revealed by an [Unnest] into the object [e] *)
  | Unnest of { src : string; field : string; out : string }
      (** flatten the set-valued component [src.field], one output tuple
          per element; the element is a {e reference} in scope as [out] —
          reading its attributes requires materializing it first *)
  | Union
  | Intersect
  | Difference

type t = { op : op; inputs : t list }

(** {1 Constructors} (arity-checked) *)

val get : coll:string -> binding:string -> t

val select : Pred.t -> t -> t

val project : proj list -> t -> t

val join : Pred.t -> t -> t -> t

val cross : t -> t -> t

val mat : ?out:string -> src:string -> field:string -> t -> t
(** [out] defaults to ["<src>.<field>"]. *)

val mat_ref : out:string -> src:string -> t -> t
(** Materialize the reference binding [src] itself as [out]
    ([Mat { field = None }]). *)

val unnest : ?out:string -> src:string -> field:string -> t -> t
(** [out] defaults to ["<src>.<field>[]"]. *)

val union : t -> t -> t

val intersect : t -> t -> t

val difference : t -> t -> t

val arity : op -> int

(** {1 Structure} *)

val equal : t -> t -> bool

val compare : t -> t -> int

val hash : t -> int

val scope : t -> string list
(** Bindings in scope at the root, in introduction order. [Project]
    narrows the scope to the bindings its expressions mention. *)

val binding_class : Oodb_catalog.Catalog.t -> t -> string -> string option
(** Class of a binding introduced somewhere below the root. *)

val well_formed : Oodb_catalog.Catalog.t -> t -> (unit, string) result
(** Scoping and schema checks: every operand refers to an in-scope
    binding and an existing attribute; [Mat] follows a single-valued
    reference; [Unnest] follows a set-valued attribute; set operators
    combine inputs of identical scope; no binding is introduced twice. *)

val pp_op : Format.formatter -> op -> unit

val pp : Format.formatter -> t -> unit
(** Vertical rendering in the style of the paper's figures. *)

val to_string : t -> string

val to_tree : t -> Oodb_util.Pretty.tree
