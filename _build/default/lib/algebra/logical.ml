module Pretty = Oodb_util.Pretty
module Schema = Oodb_catalog.Schema
module Catalog = Oodb_catalog.Catalog

type proj = { p_expr : Pred.operand; p_name : string }

type op =
  | Get of { coll : string; binding : string }
  | Select of Pred.t
  | Project of proj list
  | Join of Pred.t
  | Cross
  | Mat of { src : string; field : string option; out : string }
  | Unnest of { src : string; field : string; out : string }
  | Union
  | Intersect
  | Difference

type t = { op : op; inputs : t list }

let arity = function
  | Get _ -> 0
  | Select _ | Project _ | Mat _ | Unnest _ -> 1
  | Join _ | Cross | Union | Intersect | Difference -> 2

let node op inputs =
  if List.length inputs <> arity op then invalid_arg "Logical: wrong arity";
  { op; inputs }

let get ~coll ~binding = node (Get { coll; binding }) []

let select pred input = node (Select pred) [ input ]

let project ps input = node (Project ps) [ input ]

let join pred l r = node (Join pred) [ l; r ]

let cross l r = node Cross [ l; r ]

let mat ?out ~src ~field input =
  let out = match out with Some o -> o | None -> src ^ "." ^ field in
  node (Mat { src; field = Some field; out }) [ input ]

let mat_ref ~out ~src input = node (Mat { src; field = None; out }) [ input ]

let unnest ?out ~src ~field input =
  let out = match out with Some o -> o | None -> src ^ "." ^ field ^ "[]" in
  node (Unnest { src; field; out }) [ input ]

let union l r = node Union [ l; r ]

let intersect l r = node Intersect [ l; r ]

let difference l r = node Difference [ l; r ]

let compare_op (a : op) (b : op) = Stdlib.compare a b

let rec compare a b =
  let c = compare_op a.op b.op in
  if c <> 0 then c else List.compare compare a.inputs b.inputs

let equal a b = compare a b = 0

let rec hash t =
  List.fold_left (fun acc i -> (acc * 1000003) + hash i) (Hashtbl.hash t.op) t.inputs

let rec scope t =
  match t.op with
  | Get { binding; _ } -> [ binding ]
  | Select _ -> scope (List.hd t.inputs)
  | Project ps ->
    let used = List.concat_map (fun p -> Pred.bindings_of_operand p.p_expr) ps in
    List.filter (fun b -> List.mem b used) (scope (List.hd t.inputs))
  | Join _ | Cross -> (
    match t.inputs with [ l; r ] -> scope l @ scope r | _ -> assert false)
  | Mat { out; _ } -> scope (List.hd t.inputs) @ [ out ]
  | Unnest { out; _ } -> scope (List.hd t.inputs) @ [ out ]
  | Union | Intersect | Difference -> scope (List.hd t.inputs)

(* Environment of binding classes at the root of [t]; shared plumbing for
   [binding_class] and [well_formed]. *)
let rec infer_env cat t : ((string * string) list, string) result =
  let ( let* ) = Result.bind in
  let schema = Catalog.schema cat in
  let fail fmt = Format.kasprintf (fun s -> Error s) fmt in
  let introduce env b cls =
    if List.mem_assoc b env then fail "binding %s introduced twice" b
    else Ok (env @ [ (b, cls) ])
  in
  let check_operand env = function
    | Pred.Const _ -> Ok ()
    | Pred.Self b ->
      if List.mem_assoc b env then Ok () else fail "binding %s not in scope" b
    | Pred.Field (b, f) -> (
      match List.assoc_opt b env with
      | None -> fail "binding %s not in scope" b
      | Some cls -> (
        match Schema.attr_ty schema ~cls f with
        | None -> fail "class %s has no attribute %s" cls f
        | Some _ -> Ok ()))
  in
  let check_pred env pred =
    List.fold_left
      (fun acc (a : Pred.atom) ->
        let* () = acc in
        let* () = check_operand env a.lhs in
        check_operand env a.rhs)
      (Ok ()) pred
  in
  match t.op, t.inputs with
  | Get { coll; binding }, [] -> (
    match Catalog.find_collection cat coll with
    | None -> fail "unknown collection %s" coll
    | Some co -> introduce [] binding co.co_class)
  | Select pred, [ input ] ->
    let* env = infer_env cat input in
    let* () = check_pred env pred in
    Ok env
  | Project ps, [ input ] ->
    let* env = infer_env cat input in
    let* () =
      List.fold_left
        (fun acc p ->
          let* () = acc in
          check_operand env p.p_expr)
        (Ok ()) ps
    in
    let used = List.concat_map (fun p -> Pred.bindings_of_operand p.p_expr) ps in
    Ok (List.filter (fun (b, _) -> List.mem b used) env)
  | Join pred, [ l; r ] ->
    let* envl = infer_env cat l in
    let* envr = infer_env cat r in
    let* () =
      List.fold_left
        (fun acc (b, _) ->
          let* () = acc in
          if List.mem_assoc b envl then fail "binding %s introduced twice" b else Ok ())
        (Ok ()) envr
    in
    let env = envl @ envr in
    let* () = check_pred env pred in
    Ok env
  | Cross, [ l; r ] ->
    let* envl = infer_env cat l in
    let* envr = infer_env cat r in
    Ok (envl @ envr)
  | Mat { src; field; out }, [ input ] ->
    let* env = infer_env cat input in
    (match List.assoc_opt src env with
    | None -> fail "Mat: binding %s not in scope" src
    | Some cls -> (
      match field with
      | None -> introduce env out cls
      | Some field -> (
        match Schema.attr_ty schema ~cls field with
        | Some (Schema.Ref target) -> introduce env out target
        | Some ty ->
          fail "Mat: %s.%s is %a, not a single-valued reference" cls field Schema.pp_attr_ty ty
        | None -> fail "Mat: class %s has no attribute %s" cls field)))
  | Unnest { src; field; out }, [ input ] ->
    let* env = infer_env cat input in
    (match List.assoc_opt src env with
    | None -> fail "Unnest: binding %s not in scope" src
    | Some cls -> (
      match Schema.attr_ty schema ~cls field with
      | Some (Schema.Set_of (Schema.Ref target)) -> introduce env out target
      | Some ty -> fail "Unnest: %s.%s is %a, not a set of references" cls field Schema.pp_attr_ty ty
      | None -> fail "Unnest: class %s has no attribute %s" cls field))
  | (Union | Intersect | Difference), [ l; r ] ->
    let* envl = infer_env cat l in
    let* envr = infer_env cat r in
    if envl = envr then Ok envl
    else fail "set operation inputs have different scopes"
  | _ -> fail "malformed expression (wrong arity)"

let binding_class cat t b =
  match infer_env cat t with
  | Ok env -> List.assoc_opt b env
  | Error _ -> None

let well_formed cat t = Result.map (fun _ -> ()) (infer_env cat t)

let pp_proj ppf p =
  if
    match p.p_expr with
    | Pred.Field (b, f) -> b ^ "." ^ f = p.p_name
    | Pred.Self b -> b = p.p_name
    | Pred.Const _ -> false
  then Pred.pp_operand ppf p.p_expr
  else Format.fprintf ppf "%a as %s" Pred.pp_operand p.p_expr p.p_name

let pp_op ppf = function
  | Get { coll; binding } -> Format.fprintf ppf "Get %s: %s" coll binding
  | Select pred -> Format.fprintf ppf "Select %a" Pred.pp pred
  | Project ps ->
    Format.fprintf ppf "Project %a"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ") pp_proj)
      ps
  | Join pred -> Format.fprintf ppf "Join %a" Pred.pp pred
  | Cross -> Format.pp_print_string ppf "Cross"
  | Mat { src; field = Some field; out } ->
    if out = src ^ "." ^ field then Format.fprintf ppf "Mat %s.%s" src field
    else Format.fprintf ppf "Mat %s.%s: %s" src field out
  | Mat { src; field = None; out } -> Format.fprintf ppf "Mat %s: %s" src out
  | Unnest { src; field; out } -> Format.fprintf ppf "Unnest %s.%s: %s" src field out
  | Union -> Format.pp_print_string ppf "Union"
  | Intersect -> Format.pp_print_string ppf "Intersect"
  | Difference -> Format.pp_print_string ppf "Difference"

let rec to_tree t =
  Pretty.Node (Format.asprintf "%a" pp_op t.op, List.map to_tree t.inputs)

let pp ppf t = Format.pp_print_string ppf (Pretty.render (to_tree t))

let to_string t = Format.asprintf "%a" pp t
