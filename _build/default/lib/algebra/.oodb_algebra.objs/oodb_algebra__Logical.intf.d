lib/algebra/logical.mli: Format Oodb_catalog Oodb_util Pred
