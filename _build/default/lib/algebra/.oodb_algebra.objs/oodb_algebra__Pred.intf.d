lib/algebra/pred.mli: Format Oodb_storage
