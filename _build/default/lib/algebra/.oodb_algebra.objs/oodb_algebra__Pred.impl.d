lib/algebra/pred.ml: Format Hashtbl List Oodb_storage Stdlib
