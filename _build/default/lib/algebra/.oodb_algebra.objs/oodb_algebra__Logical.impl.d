lib/algebra/logical.ml: Format Hashtbl List Oodb_catalog Oodb_util Pred Result Stdlib
