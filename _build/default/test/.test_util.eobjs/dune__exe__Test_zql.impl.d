test/test_zql.ml: Alcotest Format Helpers Lazy List Oodb_algebra Oodb_catalog Oodb_exec Oodb_storage Oodb_workloads Open_oodb String Zql
