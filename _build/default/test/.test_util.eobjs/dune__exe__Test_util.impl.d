test/test_util.ml: Alcotest Array List Oodb_util QCheck2 QCheck_alcotest
