test/test_exec.ml: Alcotest Helpers Lazy List Oodb_algebra Oodb_catalog Oodb_cost Oodb_exec Oodb_storage Oodb_workloads Open_oodb
