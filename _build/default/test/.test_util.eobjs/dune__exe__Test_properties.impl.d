test/test_properties.ml: Alcotest Float Helpers Lazy List Oodb_algebra Oodb_baselines Oodb_cost Oodb_exec Oodb_storage Open_oodb Printf QCheck2 QCheck_alcotest
