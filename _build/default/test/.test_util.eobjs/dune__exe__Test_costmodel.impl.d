test/test_costmodel.ml: Alcotest List Oodb_catalog Oodb_cost Open_oodb Option
