test/test_cost.ml: Alcotest List Oodb_algebra Oodb_catalog Oodb_cost Oodb_storage Oodb_workloads QCheck2 QCheck_alcotest
