test/test_volcano.ml: Alcotest Bool Float Format Hashtbl List String Volcano
