test/test_integration.ml: Alcotest Float Helpers Lazy List Oodb_algebra Oodb_baselines Oodb_cost Oodb_exec Oodb_storage Oodb_workloads Open_oodb Option Printf Zql
