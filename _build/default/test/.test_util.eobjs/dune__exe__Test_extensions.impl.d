test/test_extensions.ml: Alcotest Array Helpers Lazy List Oodb_algebra Oodb_catalog Oodb_cost Oodb_exec Oodb_storage Oodb_workloads Open_oodb Printf QCheck2 QCheck_alcotest
