test/test_rules.ml: Alcotest List Oodb_algebra Oodb_catalog Oodb_storage Oodb_workloads Open_oodb
