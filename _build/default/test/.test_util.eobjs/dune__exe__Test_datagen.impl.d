test/test_datagen.ml: Alcotest Hashtbl Helpers Lazy List Oodb_catalog Oodb_exec Oodb_storage Oodb_workloads Option
