test/test_catalog.ml: Alcotest Format List Oodb_catalog Option String
