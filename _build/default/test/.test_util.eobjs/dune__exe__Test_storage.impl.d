test/test_storage.ml: Alcotest List Oodb_storage QCheck2 QCheck_alcotest
