test/test_algebra.ml: Alcotest List Oodb_algebra Oodb_catalog Oodb_storage Oodb_workloads QCheck2 QCheck_alcotest String
