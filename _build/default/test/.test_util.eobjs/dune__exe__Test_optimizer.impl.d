test/test_optimizer.ml: Alcotest Helpers Lazy List Oodb_algebra Oodb_baselines Oodb_catalog Oodb_cost Oodb_exec Oodb_storage Oodb_workloads Open_oodb Printf String
