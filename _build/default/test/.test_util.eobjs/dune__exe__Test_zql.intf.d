test/test_zql.mli:
