module Schema = Oodb_catalog.Schema
module Catalog = Oodb_catalog.Catalog
module OC = Oodb_catalog.Open_oodb_catalog

let schema = OC.schema ()

let test_schema_lookup () =
  Alcotest.(check bool) "City exists" true (Schema.find_class schema "City" <> None);
  Alcotest.(check bool) "Nope missing" true (Schema.find_class schema "Nope" = None);
  (match Schema.attr_ty schema ~cls:"City" "mayor" with
  | Some (Schema.Ref "Person") -> ()
  | _ -> Alcotest.fail "City.mayor should be ref<Person>");
  match Schema.attr_ty schema ~cls:"Task" "team_members" with
  | Some (Schema.Set_of (Schema.Ref "Employee")) -> ()
  | _ -> Alcotest.fail "Task.team_members should be set<ref<Employee>>"

let test_schema_follow () =
  Alcotest.(check (option string)) "follow mayor" (Some "Person") (Schema.follow schema ~cls:"City" "mayor");
  Alcotest.(check (option string)) "follow set" (Some "Employee")
    (Schema.follow schema ~cls:"Task" "team_members");
  Alcotest.(check (option string)) "terminal" None (Schema.follow schema ~cls:"City" "name")

let test_schema_resolve_path () =
  (match Schema.resolve_path schema ~cls:"Employee" [ "dept"; "plant"; "location" ] with
  | Some Schema.String -> ()
  | _ -> Alcotest.fail "e.dept.plant.location should be a string");
  Alcotest.(check bool) "bad path" true
    (Schema.resolve_path schema ~cls:"Employee" [ "dept"; "nope" ] = None)

let test_schema_validation () =
  Alcotest.check_raises "dangling ref"
    (Invalid_argument "Schema.create: A.b references unknown class B") (fun () ->
      ignore
        (Schema.create
           [ { Schema.cl_name = "A";
               cl_attrs = [ { Schema.a_name = "b"; a_ty = Schema.Ref "B" } ] } ]));
  Alcotest.check_raises "duplicate class" (Invalid_argument "Schema.create: duplicate class A")
    (fun () ->
      ignore
        (Schema.create
           [ { Schema.cl_name = "A"; cl_attrs = [] }; { Schema.cl_name = "A"; cl_attrs = [] } ]))

let test_table1_collections () =
  let cat = OC.catalog () in
  let co name = Option.get (Catalog.find_collection cat name) in
  Alcotest.(check int) "Cities card" 10_000 (co "Cities").Catalog.co_card;
  Alcotest.(check int) "Employees card" 50_000 (co "Employees").Catalog.co_card;
  Alcotest.(check int) "Person extent" 100_000 (co "Persons").Catalog.co_card;
  Alcotest.(check int) "Capital bytes" 400 (co "Capitals").Catalog.co_obj_bytes;
  Alcotest.(check bool) "Plant hidden" true ((co "Plant.heap").Catalog.co_kind = Catalog.Hidden)

let test_scannables_and_cardinality () =
  let cat = OC.catalog () in
  Alcotest.(check int) "Employee scannables" 1
    (List.length (Catalog.scannables_of_class cat "Employee"));
  Alcotest.(check (list string)) "Plant not scannable" []
    (List.map (fun c -> c.Catalog.co_name) (Catalog.scannables_of_class cat "Plant"));
  Alcotest.(check (option int)) "Plant no cardinality" None (Catalog.class_cardinality cat "Plant");
  Alcotest.(check (option int)) "Department cardinality" (Some 1_000)
    (Catalog.class_cardinality cat "Department")

let test_indexes () =
  let cat = OC.catalog () in
  Alcotest.(check int) "no indexes initially" 0 (List.length (Catalog.indexes cat));
  Catalog.add_index cat OC.idx_tasks_time;
  Catalog.add_index cat OC.idx_cities_mayor_name;
  Alcotest.(check bool) "path index found" true
    (Catalog.find_index cat ~coll:"Cities" ~path:[ "mayor"; "name" ] <> None);
  Alcotest.(check bool) "wrong path" true
    (Catalog.find_index cat ~coll:"Cities" ~path:[ "mayor" ] = None);
  Alcotest.(check int) "indexes_on Tasks" 1 (List.length (Catalog.indexes_on cat ~coll:"Tasks"));
  Catalog.drop_index cat "tasks_time";
  Alcotest.(check bool) "dropped" true (Catalog.find_index cat ~coll:"Tasks" ~path:[ "time" ] = None);
  Catalog.drop_index cat "no-such-index" (* ignored *)

let test_index_errors () =
  let cat = OC.catalog () in
  Catalog.add_index cat OC.idx_tasks_time;
  Alcotest.check_raises "duplicate index" (Invalid_argument "Catalog.add_index: duplicate tasks_time")
    (fun () -> Catalog.add_index cat OC.idx_tasks_time);
  Alcotest.check_raises "unknown collection"
    (Invalid_argument "Catalog.add_index: unknown collection Nope") (fun () ->
      Catalog.add_index cat
        { Catalog.ix_name = "x"; ix_coll = "Nope"; ix_path = [ "a" ]; ix_distinct = 1 })

let test_stats () =
  let cat = OC.catalog () in
  Alcotest.(check (option int)) "person names" (Some 5_000)
    (Catalog.distinct cat ~cls:"Person" ~field:"name");
  Alcotest.(check (option int)) "no Task.time stat" None
    (Catalog.distinct cat ~cls:"Task" ~field:"time");
  Alcotest.(check (float 0.01)) "team size" 9.0
    (Catalog.avg_set_size cat ~cls:"Task" ~field:"team_members");
  Alcotest.(check (float 0.01)) "default set size" 10.0
    (Catalog.avg_set_size cat ~cls:"City" ~field:"whatever")

let test_duplicate_collection () =
  let cat = OC.catalog () in
  Alcotest.check_raises "dup" (Invalid_argument "Catalog.add_collection: duplicate Cities")
    (fun () ->
      Catalog.add_collection cat
        { Catalog.co_name = "Cities";
          co_class = "City";
          co_kind = Catalog.Set;
          co_card = 1;
          co_obj_bytes = 1 })

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_pp_table () =
  let cat = OC.catalog () in
  let s = Format.asprintf "%a" Catalog.pp_table cat in
  Alcotest.(check bool) "mentions Cities" true (contains s "Cities");
  Alcotest.(check bool) "mentions extent kind" true (contains s "extent")

let () =
  Alcotest.run "catalog"
    [ ( "schema",
        [ Alcotest.test_case "class and attribute lookup" `Quick test_schema_lookup;
          Alcotest.test_case "reference following" `Quick test_schema_follow;
          Alcotest.test_case "path resolution" `Quick test_schema_resolve_path;
          Alcotest.test_case "validation" `Quick test_schema_validation ] );
      ( "table1",
        [ Alcotest.test_case "collection statistics" `Quick test_table1_collections;
          Alcotest.test_case "scannables and class cardinality" `Quick
            test_scannables_and_cardinality;
          Alcotest.test_case "distinct statistics" `Quick test_stats;
          Alcotest.test_case "duplicate collection" `Quick test_duplicate_collection;
          Alcotest.test_case "table rendering" `Quick test_pp_table ] );
      ( "indexes",
        [ Alcotest.test_case "add / find / drop" `Quick test_indexes;
          Alcotest.test_case "errors" `Quick test_index_errors ] ) ]
