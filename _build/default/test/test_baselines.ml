module Value = Oodb_storage.Value
module Logical = Oodb_algebra.Logical
module Cost = Oodb_cost.Cost
module Catalog = Oodb_catalog.Catalog
module OC = Oodb_catalog.Open_oodb_catalog
module Q = Oodb_workloads.Queries
module Opt = Open_oodb.Optimizer
module Physical = Open_oodb.Physical
module Engine = Open_oodb.Model.Engine
module Greedy = Oodb_baselines.Greedy
module Naive = Oodb_baselines.Naive

let greedy_exn cat q =
  match Greedy.optimize cat q with Ok p -> p | Error m -> Alcotest.fail m

(* ------------------------------------------------------------------ *)
(* Naive baseline                                                       *)

let test_naive_shape_q1 () =
  let cat = OC.catalog_with_indexes () in
  let p = Opt.plan_exn (Naive.optimize cat Q.q1) in
  (* no joins, no indexes: pure pointer chasing *)
  List.iter
    (fun alg ->
      match (alg : Physical.t) with
      | Physical.Hash_join _ | Physical.Pointer_join _ | Physical.Index_scan _ ->
        Alcotest.fail "naive plan must not join or use indexes"
      | _ -> ())
    (Helpers.algs p)

let test_naive_never_beats_optimizer () =
  let cat = OC.catalog_with_indexes () in
  List.iter
    (fun (name, q) ->
      let full = Cost.total (Opt.cost (Opt.optimize cat q)) in
      let naive = Cost.total (Opt.cost (Naive.optimize cat q)) in
      Alcotest.(check bool) (name ^ ": optimizer <= naive") true (full <= naive +. 1e-9))
    Q.all

let test_naive_executes_same_results () =
  let db = Lazy.force Helpers.small_db in
  let cat = Oodb_exec.Db.catalog db in
  List.iter
    (fun (name, q) ->
      let full = Opt.plan_exn (Opt.optimize cat q) in
      let naive = Opt.plan_exn (Naive.optimize cat q) in
      Helpers.check_same_rows name (Helpers.run_rows db naive) (Helpers.run_rows db full))
    Q.all

(* ------------------------------------------------------------------ *)
(* Greedy baseline                                                      *)

let test_greedy_fig13_shape () =
  let cat = OC.catalog_with_indexes () in
  let p = greedy_exn cat Q.q4 in
  (* Fig 13: hash join of the employee-name index scan with the unnested
     time-index scan *)
  Helpers.check_shape "figure 13" [ "hash-join"; "index-scan"; "unnest"; "index-scan" ] p

let test_greedy_uses_both_indexes () =
  let cat = OC.catalog_with_indexes () in
  let p = greedy_exn cat Q.q4 in
  let indexes =
    List.filter_map
      (function Physical.Index_scan { index; _ } -> Some index | _ -> None)
      (Helpers.algs p)
  in
  Alcotest.(check (list string)) "greedily uses both" [ "employees_name"; "tasks_time" ]
    (List.sort compare indexes)

let test_greedy_slower_with_both () =
  (* the paper's point: greedy index use misses the optimal plan *)
  let cat = OC.catalog_with_indexes () in
  let optimal = Cost.total (Opt.cost (Opt.optimize cat Q.q4)) in
  let greedy = Helpers.total_cost (greedy_exn cat Q.q4) in
  Alcotest.(check bool) "greedy > 5x optimal" true (greedy > 5.0 *. optimal)

let test_greedy_matches_table3_pattern () =
  (* without the name index, greedy coincides with the cost-based plan *)
  let check ixs =
    let cat = OC.catalog () in
    List.iter (Catalog.add_index cat) ixs;
    let optimal = Cost.total (Opt.cost (Opt.optimize cat Q.q4)) in
    let greedy = Helpers.total_cost (greedy_exn cat Q.q4) in
    Alcotest.(check (float 1e-6)) "same cost" optimal greedy
  in
  check [];
  check [ OC.idx_tasks_time ]

let test_greedy_same_results () =
  let db = Lazy.force Helpers.small_db in
  let cat = Oodb_exec.Db.catalog db in
  List.iter
    (fun name ->
      let q = List.assoc name Q.all in
      let greedy = greedy_exn cat q in
      let full = Opt.plan_exn (Opt.optimize cat q) in
      Helpers.check_same_rows name (Helpers.run_rows db full) (Helpers.run_rows db greedy))
    [ "q1"; "q2"; "q3"; "q4" ]

let test_greedy_rejects_unsupported () =
  let cat = OC.catalog () in
  let two_ranges =
    Logical.join []
      (Logical.get ~coll:"Cities" ~binding:"c")
      (Logical.get ~coll:"Countries" ~binding:"n")
  in
  match Greedy.optimize cat two_ranges with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "greedy should reject multi-collection queries"

let test_greedy_q2_uses_path_index () =
  let cat = OC.catalog_with_indexes () in
  let p = greedy_exn cat Q.q2 in
  match Helpers.algs p with
  | Physical.Assembly _ :: Physical.Index_scan { index = "cities_mayor_name"; _ } :: _
  | Physical.Index_scan { index = "cities_mayor_name"; _ } :: _ -> ()
  | _ -> Alcotest.failf "greedy should probe the path index, got %s" (String.concat "," (Helpers.shape p))

let () =
  Alcotest.run "baselines"
    [ ( "naive",
        [ Alcotest.test_case "pointer-chasing shape" `Quick test_naive_shape_q1;
          Alcotest.test_case "never beats the optimizer" `Quick test_naive_never_beats_optimizer;
          Alcotest.test_case "same results as optimizer" `Quick test_naive_executes_same_results
        ] );
      ( "greedy",
        [ Alcotest.test_case "figure 13 shape" `Quick test_greedy_fig13_shape;
          Alcotest.test_case "uses every index" `Quick test_greedy_uses_both_indexes;
          Alcotest.test_case "slower with both indexes" `Quick test_greedy_slower_with_both;
          Alcotest.test_case "table 3 pattern" `Quick test_greedy_matches_table3_pattern;
          Alcotest.test_case "same results as optimizer" `Quick test_greedy_same_results;
          Alcotest.test_case "rejects unsupported shapes" `Quick test_greedy_rejects_unsupported;
          Alcotest.test_case "query 2 via path index" `Quick test_greedy_q2_uses_path_index ] )
    ]
