module Value = Oodb_storage.Value
module Pred = Oodb_algebra.Pred
module Logical = Oodb_algebra.Logical
module OC = Oodb_catalog.Open_oodb_catalog
module Q = Oodb_workloads.Queries

let cat = OC.catalog ()

let atom = Pred.atom Pred.Eq (Pred.Field ("c", "name")) (Pred.Const (Value.Str "x"))

let ref_atom = Pred.atom Pred.Eq (Pred.Field ("e", "dept")) (Pred.Self "d")

(* ------------------------------------------------------------------ *)
(* Predicates                                                           *)

let test_pred_bindings () =
  Alcotest.(check (list string)) "bindings" [ "c"; "e"; "d" ] (Pred.bindings [ atom; ref_atom ]);
  Alcotest.(check (list string)) "memory bindings exclude Self" [ "c"; "e" ]
    (Pred.memory_bindings [ atom; ref_atom ])

let test_pred_ref_eq () =
  Alcotest.(check bool) "detects link" true (Pred.ref_eq_sides ref_atom = Some ("e", "dept", "d"));
  let mirrored = Pred.atom Pred.Eq (Pred.Self "d") (Pred.Field ("e", "dept")) in
  Alcotest.(check bool) "mirrored link" true (Pred.ref_eq_sides mirrored = Some ("e", "dept", "d"));
  Alcotest.(check bool) "not a link" true (Pred.ref_eq_sides atom = None)

let test_pred_flip () =
  Alcotest.(check bool) "lt" true (Pred.flip Pred.Lt = Pred.Gt);
  Alcotest.(check bool) "eq" true (Pred.flip Pred.Eq = Pred.Eq);
  Alcotest.(check bool) "le" true (Pred.flip Pred.Le = Pred.Ge)

let test_pred_rename () =
  let renamed = Pred.rename (fun b -> if b = "c" then "z" else b) [ atom ] in
  Alcotest.(check (list string)) "renamed" [ "z" ] (Pred.bindings renamed)

let test_pred_pp () =
  Alcotest.(check string) "atom" "c.name == \"x\"" (Pred.to_string [ atom ]);
  Alcotest.(check string) "conj" "c.name == \"x\" && e.dept == d.self"
    (Pred.to_string [ atom; ref_atom ]);
  Alcotest.(check string) "true" "true" (Pred.to_string [])

(* ------------------------------------------------------------------ *)
(* Logical algebra                                                      *)

let test_arity () =
  Alcotest.(check int) "get" 0 (Logical.arity (Logical.Get { coll = "Cities"; binding = "c" }));
  Alcotest.(check int) "select" 1 (Logical.arity (Logical.Select []));
  Alcotest.(check int) "join" 2 (Logical.arity (Logical.Join []));
  Alcotest.(check int) "union" 2 (Logical.arity Logical.Union);
  Alcotest.(check int) "mat" 1
    (Logical.arity (Logical.Mat { src = "a"; field = None; out = "b" }))

let test_scope () =
  Alcotest.(check (list string)) "q1 scope narrowed by project"
    [ "e"; "e.job"; "e.dept" ] (Logical.scope Q.q1);
  Alcotest.(check (list string)) "q2 scope" [ "c"; "c.mayor" ] (Logical.scope Q.q2);
  Alcotest.(check (list string)) "q4 scope" [ "t"; "m"; "e" ] (Logical.scope Q.q4)

let test_well_formed_queries () =
  List.iter
    (fun (name, q) ->
      match Logical.well_formed cat q with
      | Ok () -> ()
      | Error m -> Alcotest.failf "%s not well-formed: %s" name m)
    Q.all

let test_ill_formed () =
  let bad msg expr =
    match Logical.well_formed cat expr with
    | Ok () -> Alcotest.failf "expected failure: %s" msg
    | Error _ -> ()
  in
  bad "unknown collection" (Logical.get ~coll:"Nope" ~binding:"x");
  bad "unknown binding in select"
    (Logical.select
       [ Pred.atom Pred.Eq (Pred.Field ("zz", "name")) (Pred.Const (Value.Str "x")) ]
       (Logical.get ~coll:"Cities" ~binding:"c"));
  bad "unknown attribute"
    (Logical.select
       [ Pred.atom Pred.Eq (Pred.Field ("c", "nope")) (Pred.Const (Value.Str "x")) ]
       (Logical.get ~coll:"Cities" ~binding:"c"));
  bad "mat over non-reference"
    (Logical.mat ~src:"c" ~field:"name" (Logical.get ~coll:"Cities" ~binding:"c"));
  bad "unnest over non-set"
    (Logical.unnest ~src:"c" ~field:"mayor" (Logical.get ~coll:"Cities" ~binding:"c"));
  bad "duplicate binding"
    (Logical.join []
       (Logical.get ~coll:"Cities" ~binding:"c")
       (Logical.get ~coll:"Cities" ~binding:"c"));
  bad "set op scope mismatch"
    (Logical.union
       (Logical.get ~coll:"Cities" ~binding:"c")
       (Logical.get ~coll:"Capitals" ~binding:"k"))

let test_binding_class () =
  (* q1's root projection narrows the scope, dropping e.dept.plant *)
  Alcotest.(check (option string)) "projected away" None
    (Logical.binding_class cat Q.q1 "e.dept.plant");
  Alcotest.(check (option string)) "mat target" (Some "Department")
    (Logical.binding_class cat Q.q1 "e.dept");
  Alcotest.(check (option string)) "unnest+mat target" (Some "Employee")
    (Logical.binding_class cat Q.q4 "e");
  Alcotest.(check (option string)) "missing" None (Logical.binding_class cat Q.q1 "nope")

let test_structural_equality () =
  Alcotest.(check bool) "equal to itself" true (Logical.equal Q.q2 Q.q2);
  Alcotest.(check bool) "hash stable" true (Logical.hash Q.q2 = Logical.hash Q.q2);
  Alcotest.(check bool) "distinct queries differ" false (Logical.equal Q.q1 Q.q2)

let test_pp_fig2 () =
  (* the rendering mirrors the paper's Figure 2 *)
  let expected =
    "Select c.mayor.name == c.country.president.name\n\
     |\n\
     Mat c.country.president\n\
     |\n\
     Mat c.country\n\
     |\n\
     Mat c.mayor\n\
     |\n\
     Get Cities: c"
  in
  Alcotest.(check string) "figure 2" expected (Logical.to_string Q.fig2)

let test_pp_mat_ref () =
  let s = Logical.to_string Q.fig3 in
  let contains hay needle =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "mat-ref rendering" true (contains s "Mat m: e");
  Alcotest.(check bool) "unnest rendering" true (contains s "Unnest t.team_members: m")

let test_set_ops_well_formed () =
  let cities b = Logical.get ~coll:"Cities" ~binding:b in
  let sub b =
    Logical.select [ Pred.atom Pred.Ge (Pred.Field (b, "population")) (Pred.Const (Value.Int 1)) ]
      (cities b)
  in
  match Logical.well_formed cat (Logical.union (sub "c") (sub "c")) with
  | Ok () -> ()
  | Error m -> Alcotest.failf "union should be well-formed: %s" m

(* ------------------------------------------------------------------ *)
(* Properties                                                           *)

let binding_gen = QCheck2.Gen.oneofl [ "a"; "b"; "c"; "d" ]

let operand_gen =
  let open QCheck2.Gen in
  oneof
    [ map (fun b -> Pred.Self b) binding_gen;
      map2 (fun b f -> Pred.Field (b, f)) binding_gen (oneofl [ "x"; "y" ]);
      map (fun i -> Pred.Const (Value.Int i)) small_signed_int ]

let atom_gen =
  let open QCheck2.Gen in
  map3
    (fun cmp l r -> Pred.atom cmp l r)
    (oneofl [ Pred.Eq; Pred.Ne; Pred.Lt; Pred.Le; Pred.Gt; Pred.Ge ])
    operand_gen operand_gen

let prop_rename_id =
  QCheck2.Test.make ~name:"rename with identity is identity" ~count:200
    (QCheck2.Gen.list_size (QCheck2.Gen.int_bound 5) atom_gen)
    (fun p -> Pred.equal p (Pred.rename (fun b -> b) p))

let prop_rename_compose =
  QCheck2.Test.make ~name:"rename composes" ~count:200
    (QCheck2.Gen.list_size (QCheck2.Gen.int_bound 5) atom_gen)
    (fun p ->
      let f b = b ^ "1" and g b = b ^ "2" in
      Pred.equal (Pred.rename (fun b -> g (f b)) p) (Pred.rename g (Pred.rename f p)))

let prop_memory_subset_bindings =
  QCheck2.Test.make ~name:"memory_bindings subset of bindings" ~count:200
    (QCheck2.Gen.list_size (QCheck2.Gen.int_bound 5) atom_gen)
    (fun p ->
      let all = Pred.bindings p in
      List.for_all (fun b -> List.mem b all) (Pred.memory_bindings p))

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "algebra"
    [ ( "pred",
        [ Alcotest.test_case "bindings" `Quick test_pred_bindings;
          Alcotest.test_case "ref equality detection" `Quick test_pred_ref_eq;
          Alcotest.test_case "comparison flip" `Quick test_pred_flip;
          Alcotest.test_case "rename" `Quick test_pred_rename;
          Alcotest.test_case "printing" `Quick test_pred_pp ] );
      ( "logical",
        [ Alcotest.test_case "operator arity" `Quick test_arity;
          Alcotest.test_case "scope computation" `Quick test_scope;
          Alcotest.test_case "paper queries well-formed" `Quick test_well_formed_queries;
          Alcotest.test_case "ill-formed rejected" `Quick test_ill_formed;
          Alcotest.test_case "binding classes" `Quick test_binding_class;
          Alcotest.test_case "structural equality" `Quick test_structural_equality;
          Alcotest.test_case "figure 2 rendering" `Quick test_pp_fig2;
          Alcotest.test_case "mat-ref rendering" `Quick test_pp_mat_ref;
          Alcotest.test_case "set operators" `Quick test_set_ops_well_formed ] );
      ("properties", qcheck [ prop_rename_id; prop_rename_compose; prop_memory_subset_bindings ])
    ]
