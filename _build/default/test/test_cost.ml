module Value = Oodb_storage.Value
module Pred = Oodb_algebra.Pred
module Logical = Oodb_algebra.Logical
module Config = Oodb_cost.Config
module Cost = Oodb_cost.Cost
module Lprops = Oodb_cost.Lprops
module Selectivity = Oodb_cost.Selectivity
module Estimator = Oodb_cost.Estimator
module Catalog = Oodb_catalog.Catalog
module OC = Oodb_catalog.Open_oodb_catalog
module Q = Oodb_workloads.Queries

let cfg = Config.default

(* ------------------------------------------------------------------ *)
(* Config                                                               *)

let test_assembly_io_window () =
  let w1 = Config.assembly_io cfg ~window:1 in
  let w16 = Config.assembly_io cfg ~window:16 in
  let w256 = Config.assembly_io cfg ~window:256 in
  Alcotest.(check (float 1e-9)) "window 1 = random" cfg.Config.rand_io w1;
  Alcotest.(check bool) "monotone" true (w1 > w16 && w16 > w256);
  Alcotest.(check bool) "floor" true (w256 >= cfg.Config.asm_io_floor)

let test_pages () =
  Alcotest.(check (float 1e-9)) "one page minimum" 1.0 (Config.pages cfg ~bytes:1.0);
  Alcotest.(check (float 1e-9)) "rounding up" 2.0 (Config.pages cfg ~bytes:4097.0)

(* ------------------------------------------------------------------ *)
(* Cost ADT                                                             *)

let test_cost_arith () =
  let a = Cost.make ~io:1.0 ~cpu:2.0 and b = Cost.make ~io:3.0 ~cpu:4.0 in
  Alcotest.(check (float 1e-9)) "total" 3.0 (Cost.total a);
  Alcotest.(check (float 1e-9)) "add" 10.0 (Cost.total (Cost.add a b));
  Alcotest.(check (float 1e-9)) "sum" 13.0 (Cost.total (Cost.sum [ a; b; a ]));
  Alcotest.(check bool) "compare" true (Cost.compare a b < 0);
  Alcotest.(check bool) "le" true Cost.(a <= b);
  Alcotest.(check bool) "infinite" false (Cost.is_finite Cost.infinite);
  Alcotest.(check (float 1e-9)) "sub for limits" 4.0 (Cost.total (Cost.sub b a))

(* ------------------------------------------------------------------ *)
(* Selectivity                                                          *)

let env_of cat expr = Estimator.derive_expr cfg cat expr

let test_selectivity_tiers () =
  let cat = OC.catalog_with_indexes () in
  let base = Logical.mat ~src:"c" ~field:"mayor" (Logical.get ~coll:"Cities" ~binding:"c") in
  let env = env_of cat base in
  (* tier 1: the mayor.name path index (5000 distinct keys) *)
  let a = Pred.atom Pred.Eq (Pred.Field ("c.mayor", "name")) (Pred.Const (Value.Str "Joe")) in
  Alcotest.(check (float 1e-9)) "index-assisted" (1.0 /. 5000.0) (Selectivity.atom cfg cat ~env a);
  (* tier 2: class statistic for Person.age (80 distinct) *)
  let b = Pred.atom Pred.Eq (Pred.Field ("c.mayor", "age")) (Pred.Const (Value.Int 41)) in
  Alcotest.(check (float 1e-9)) "statistic" (1.0 /. 80.0) (Selectivity.atom cfg cat ~env b);
  (* tier 3: the 10% default *)
  let c = Pred.atom Pred.Eq (Pred.Field ("c", "population")) (Pred.Const (Value.Int 7)) in
  Alcotest.(check (float 1e-9)) "default" 0.10 (Selectivity.atom cfg cat ~env c);
  (* ranges *)
  let d = Pred.atom Pred.Ge (Pred.Field ("c.mayor", "age")) (Pred.Const (Value.Int 30)) in
  Alcotest.(check (float 1e-9)) "range" cfg.Config.range_selectivity
    (Selectivity.atom cfg cat ~env d)

let test_selectivity_no_index_falls_back () =
  let cat = OC.catalog () in
  let base = Logical.mat ~src:"c" ~field:"mayor" (Logical.get ~coll:"Cities" ~binding:"c") in
  let env = env_of cat base in
  let a = Pred.atom Pred.Eq (Pred.Field ("c.mayor", "name")) (Pred.Const (Value.Str "Joe")) in
  (* without the path index, the Person.name class statistic applies *)
  Alcotest.(check (float 1e-9)) "stat fallback" (1.0 /. 5000.0) (Selectivity.atom cfg cat ~env a)

let test_selectivity_ref_eq () =
  let cat = OC.catalog () in
  let base =
    Logical.join []
      (Logical.get ~coll:"Employees" ~binding:"e")
      (Logical.get ~coll:"Departments" ~binding:"d")
  in
  let env = env_of cat base in
  let a = Pred.atom Pred.Eq (Pred.Field ("e", "dept")) (Pred.Self "d") in
  Alcotest.(check (float 1e-9)) "1/|Department|" (1.0 /. 1000.0) (Selectivity.atom cfg cat ~env a)

let test_selectivity_conjunction () =
  let cat = OC.catalog () in
  let env = env_of cat (Logical.get ~coll:"Cities" ~binding:"c") in
  let a = Pred.atom Pred.Eq (Pred.Field ("c", "population")) (Pred.Const (Value.Int 7)) in
  Alcotest.(check (float 1e-9)) "independence" 0.01 (Selectivity.pred cfg cat ~env [ a; a ])

(* ------------------------------------------------------------------ *)
(* Estimator (logical property derivation)                              *)

let test_estimator_q2_chain () =
  let cat = OC.catalog_with_indexes () in
  let lp = env_of cat Q.q2 in
  (* 10,000 cities, mayor-name index with 5,000 keys: 2 qualifying *)
  Alcotest.(check (float 0.001)) "2 cities" 2.0 lp.Lprops.card;
  Alcotest.(check (list string)) "scope" [ "c"; "c.mayor" ] (List.map fst lp.Lprops.bindings)

let test_estimator_q1_cards () =
  let cat = OC.catalog_with_indexes () in
  let lp = env_of cat Q.q1 in
  (* 50,000 employees x 10% Dallas selectivity *)
  Alcotest.(check (float 0.001)) "5000 rows" 5000.0 lp.Lprops.card

let test_estimator_unnest () =
  let cat = OC.catalog_with_indexes () in
  let lp = env_of cat Q.fig3 in
  (* 10,000 tasks x 9 team members *)
  Alcotest.(check (float 0.001)) "90000 pairs" 90000.0 lp.Lprops.card;
  Alcotest.(check (option string)) "m class" (Some "Employee") (Lprops.class_of lp "m");
  Alcotest.(check (option string)) "e class" (Some "Employee") (Lprops.class_of lp "e")

let test_estimator_setops () =
  let cat = OC.catalog () in
  let g b = Logical.get ~coll:"Cities" ~binding:b in
  let union = env_of cat (Logical.union (g "c") (g "c")) in
  Alcotest.(check (float 0.001)) "union adds" 20000.0 union.Lprops.card;
  let inter = env_of cat (Logical.intersect (g "c") (g "c")) in
  Alcotest.(check (float 0.001)) "intersect min" 10000.0 inter.Lprops.card

let test_provenance () =
  let cat = OC.catalog () in
  let base =
    Logical.mat ~src:"c.country" ~field:"president"
      (Logical.mat ~src:"c" ~field:"country" (Logical.get ~coll:"Cities" ~binding:"c"))
  in
  let lp = env_of cat base in
  Alcotest.(check bool) "chain provenance" true
    (Lprops.provenance lp "c.country.president" = Some ("Cities", [ "country"; "president" ]));
  Alcotest.(check bool) "root provenance" true (Lprops.provenance lp "c" = Some ("Cities", []));
  (* unnest breaks index provenance *)
  let lp4 = env_of cat Q.fig3 in
  Alcotest.(check bool) "unnest breaks provenance" true (Lprops.provenance lp4 "e" = None)

let test_row_bytes () =
  let cat = OC.catalog () in
  let lp =
    env_of cat (Logical.mat ~src:"c" ~field:"mayor" (Logical.get ~coll:"Cities" ~binding:"c"))
  in
  (* City 200 + Person 100 *)
  Alcotest.(check (float 0.001)) "row bytes" 300.0 (Lprops.row_bytes lp);
  Alcotest.(check (float 0.001)) "subset" 100.0 (Lprops.bytes_of lp [ "c.mayor" ])

let test_estimator_errors () =
  let cat = OC.catalog () in
  Alcotest.(check bool) "bad collection raises" true
    (try
       ignore (Estimator.derive cfg cat (Logical.Get { coll = "Nope"; binding = "x" }) []);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Properties                                                           *)

let prop_selectivity_bounded =
  QCheck2.Test.make ~name:"selectivity within (0, 1]" ~count:200
    QCheck2.Gen.(pair (oneofl [ "name"; "age"; "population" ]) small_signed_int)
    (fun (field, v) ->
      let cat = OC.catalog_with_indexes () in
      let env =
        Estimator.derive_expr cfg cat
          (Logical.mat ~src:"c" ~field:"mayor" (Logical.get ~coll:"Cities" ~binding:"c"))
      in
      let binding = if field = "population" then "c" else "c.mayor" in
      let a = Pred.atom Pred.Eq (Pred.Field (binding, field)) (Pred.Const (Value.Int v)) in
      let s = Selectivity.atom cfg cat ~env a in
      s > 0.0 && s <= 1.0)

let prop_cards_non_negative =
  QCheck2.Test.make ~name:"derived cardinality non-negative" ~count:100
    QCheck2.Gen.(int_bound 4)
    (fun n ->
      let cat = OC.catalog_with_indexes () in
      let _, q =
        List.nth Oodb_workloads.Queries.all (n mod List.length Oodb_workloads.Queries.all)
      in
      (Estimator.derive_expr cfg cat q).Lprops.card >= 0.0)

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "cost"
    [ ( "config",
        [ Alcotest.test_case "assembly window economics" `Quick test_assembly_io_window;
          Alcotest.test_case "page arithmetic" `Quick test_pages ] );
      ("cost", [ Alcotest.test_case "arithmetic and comparison" `Quick test_cost_arith ]);
      ( "selectivity",
        [ Alcotest.test_case "index > statistic > default" `Quick test_selectivity_tiers;
          Alcotest.test_case "fallback without index" `Quick test_selectivity_no_index_falls_back;
          Alcotest.test_case "reference equality" `Quick test_selectivity_ref_eq;
          Alcotest.test_case "conjunction independence" `Quick test_selectivity_conjunction ] );
      ( "estimator",
        [ Alcotest.test_case "query 2 chain" `Quick test_estimator_q2_chain;
          Alcotest.test_case "query 1 cardinality" `Quick test_estimator_q1_cards;
          Alcotest.test_case "unnest fan-out" `Quick test_estimator_unnest;
          Alcotest.test_case "set operators" `Quick test_estimator_setops;
          Alcotest.test_case "provenance chasing" `Quick test_provenance;
          Alcotest.test_case "row bytes" `Quick test_row_bytes;
          Alcotest.test_case "errors" `Quick test_estimator_errors ] );
      ("properties", qcheck [ prop_selectivity_bounded; prop_cards_non_negative ]) ]
