(* Full-pipeline integration tests on a medium-scale generated database:
   ZQL text -> simplification -> optimization -> execution, checking the
   result contents against independently computed ground truth. *)

module Value = Oodb_storage.Value
module Store = Oodb_storage.Store
module Db = Oodb_exec.Db
module Executor = Oodb_exec.Executor
module Opt = Open_oodb.Optimizer
module Options = Open_oodb.Options
module Q = Oodb_workloads.Queries

let db = Lazy.force Helpers.medium_db

let cat = Db.catalog db

let store = Db.store db

let run_logical ?options q =
  Helpers.run_rows db (Opt.plan_exn (Opt.optimize ?options cat q))

let run_zql ?options text =
  match Zql.Simplify.compile cat text with
  | Error m -> Alcotest.failf "ZQL error: %s" m
  | Ok q -> run_logical ?options q

(* Ground truth computed by brute force over the store (peek = free). *)
let dallas_employees () =
  Store.oids store ~coll:"Employees"
  |> List.filter (fun e ->
         let dept = Option.get (Value.as_ref (Store.field (Store.peek store e) "dept")) in
         let plant = Option.get (Value.as_ref (Store.field (Store.peek store dept) "plant")) in
         Value.equal (Value.Str "Dallas") (Store.field (Store.peek store plant) "location"))

let joe_cities () =
  Store.oids store ~coll:"Cities"
  |> List.filter (fun c ->
         let m = Option.get (Value.as_ref (Store.field (Store.peek store c) "mayor")) in
         Value.equal (Value.Str "Joe") (Store.field (Store.peek store m) "name"))

let fred_task_pairs time =
  Store.oids store ~coll:"Tasks"
  |> List.concat_map (fun t ->
         if not (Value.equal (Value.Int time) (Store.field (Store.peek store t) "time")) then []
         else
           Value.set_elements (Store.field (Store.peek store t) "team_members")
           |> List.filter_map Value.as_ref
           |> List.filter (fun m ->
                  Value.equal (Value.Str "Fred") (Store.field (Store.peek store m) "name"))
           |> List.map (fun m -> (t, m)))

(* ------------------------------------------------------------------ *)

let test_q1_ground_truth () =
  let rows = run_logical Q.q1 in
  Alcotest.(check int) "dallas employees" (List.length (dallas_employees ())) (List.length rows)

let test_q2_ground_truth () =
  let rows = run_logical Q.q2 in
  let truth = joe_cities () in
  Alcotest.(check int) "joe cities" (List.length truth) (List.length rows);
  let cities =
    rows
    |> List.filter_map (fun row ->
           match List.assoc_opt "c" row with Some (Value.Ref o) -> Some o | _ -> None)
    |> List.sort compare
  in
  Alcotest.(check (list int)) "same cities" (List.sort compare truth) cities

let test_q3_projects_ages () =
  let rows = run_logical Q.q3 in
  List.iter
    (fun row ->
      match List.assoc "c.mayor.age" row with
      | Value.Int a -> Alcotest.(check bool) "age plausible" true (a >= 20 && a < 100)
      | _ -> Alcotest.fail "expected an integer age")
    rows

let test_q4_ground_truth () =
  (* at scale 0.05, distinct times shrink: use a time that exists *)
  let t0 = List.hd (Store.oids store ~coll:"Tasks") in
  let time = match Store.field (Store.peek store t0) "time" with Value.Int t -> t | _ -> 1 in
  let q =
    Oodb_algebra.Logical.(
      get ~coll:"Tasks" ~binding:"t"
      |> unnest ~out:"m" ~src:"t" ~field:"team_members"
      |> mat_ref ~out:"e" ~src:"m"
      |> select
           [ Oodb_algebra.Pred.atom Oodb_algebra.Pred.Eq
               (Oodb_algebra.Pred.Field ("e", "name"))
               (Oodb_algebra.Pred.Const (Value.Str "Fred"));
             Oodb_algebra.Pred.atom Oodb_algebra.Pred.Eq
               (Oodb_algebra.Pred.Field ("t", "time"))
               (Oodb_algebra.Pred.Const (Value.Int time)) ])
  in
  let rows = run_logical q in
  Alcotest.(check int) "witness pairs" (List.length (fred_task_pairs time)) (List.length rows)

let test_all_configurations_agree () =
  (* every rule-disabling configuration must compute identical results *)
  let configurations =
    [ ("all rules", Options.default);
      ("no commutativity", Options.without_join_commutativity Options.default);
      ("no collapse", Options.disable "collapse-index-scan" Options.default);
      ("no mat-to-join", Options.disable "mat-to-join" Options.default);
      ("window 1", Options.with_assembly_window 1 Options.default);
      ("naive", Oodb_baselines.Naive.options ()) ]
  in
  List.iter
    (fun (qname, q) ->
      let reference = Helpers.canon_rows (run_logical q) in
      List.iter
        (fun (cname, options) ->
          let rows = Helpers.canon_rows (run_logical ~options q) in
          if rows <> reference then
            Alcotest.failf "%s under %s differs from the reference plan" qname cname)
        configurations)
    Q.all

let test_zql_full_pipeline () =
  let rows =
    run_zql
      {| SELECT Newobject(e.name, e.dept.name, e.job.name)
         FROM Employee e IN Employees
         WHERE e.dept.plant.location == "Dallas" |}
  in
  Alcotest.(check int) "zql == hand-built" (List.length (run_logical Q.q1)) (List.length rows);
  List.iter (fun row -> Alcotest.(check int) "3 columns" 3 (List.length row)) rows

let test_zql_fig1 () =
  let rows =
    run_zql
      {| SELECT Newobject(e.name, d.name)
         FROM Employee e IN Employees, Department d IN Departments
         WHERE d.floor == 3 && e.age >= 32 && e.last_raise >= date(1991,1,1)
            && e.dept == d |}
  in
  (* brute force the same conditions *)
  let expected =
    Store.oids store ~coll:"Employees"
    |> List.filter (fun e ->
           let eo = Store.peek store e in
           let dept = Option.get (Value.as_ref (Store.field eo "dept")) in
           Value.compare (Store.field eo "age") (Value.Int 32) >= 0
           && Value.compare (Store.field eo "last_raise")
                (Value.Date (Value.date_of_ymd 1991 1 1))
              >= 0
           && Value.equal (Value.Int 3) (Store.field (Store.peek store dept) "floor"))
    |> List.length
  in
  Alcotest.(check int) "figure 1 result size" expected (List.length rows)

let test_estimates_vs_execution () =
  (* the estimated result cardinality should be within an order of
     magnitude of the actual result for the calibrated queries *)
  List.iter
    (fun (name, q) ->
      let lp = Oodb_cost.Estimator.derive_expr Oodb_cost.Config.default cat q in
      let actual = float_of_int (List.length (run_logical q)) in
      let est = lp.Oodb_cost.Lprops.card in
      if actual > 0.0 then
        Alcotest.(check bool)
          (Printf.sprintf "%s estimate within 20x (est %.1f, actual %.0f)" name est actual)
          true
          (est /. actual < 20.0 && actual /. est < 20.0))
    [ ("q1", Q.q1); ("fig3", Q.fig3) ]

let test_exec_io_close_to_anticipated () =
  (* executed disk time vs the optimizer's anticipated I/O for Q1 *)
  let plan = Opt.plan_exn (Opt.optimize cat Q.q1) in
  let _, report = Executor.run_measured db plan in
  let est_io = (Opt.optimize cat Q.q1 |> Opt.cost).Oodb_cost.Cost.io in
  Alcotest.(check bool)
    (Printf.sprintf "within 4x (est %.1f, simulated %.1f)" est_io report.Executor.simulated_seconds)
    true
    (report.Executor.simulated_seconds < 4.0 *. est_io
    && est_io < 4.0 *. Float.max 0.01 report.Executor.simulated_seconds)

let () =
  Alcotest.run "integration"
    [ ( "ground-truth",
        [ Alcotest.test_case "query 1" `Quick test_q1_ground_truth;
          Alcotest.test_case "query 2" `Quick test_q2_ground_truth;
          Alcotest.test_case "query 3" `Quick test_q3_projects_ages;
          Alcotest.test_case "query 4" `Quick test_q4_ground_truth ] );
      ( "equivalence",
        [ Alcotest.test_case "all rule configurations agree" `Slow test_all_configurations_agree ] );
      ( "zql",
        [ Alcotest.test_case "full pipeline" `Quick test_zql_full_pipeline;
          Alcotest.test_case "paper figure 1" `Quick test_zql_fig1 ] );
      ( "calibration",
        [ Alcotest.test_case "cardinality estimates" `Quick test_estimates_vs_execution;
          Alcotest.test_case "anticipated vs simulated IO" `Quick test_exec_io_close_to_anticipated
        ] ) ]
