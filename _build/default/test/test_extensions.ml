(* Tests for the features beyond the paper's implementation: merge join
   with the sort-order property, the Lesson-7 warm-start assembly, and
   the Lesson-9 argument-transformation pass. *)

module Value = Oodb_storage.Value
module Pred = Oodb_algebra.Pred
module Logical = Oodb_algebra.Logical
module Cost = Oodb_cost.Cost
module OC = Oodb_catalog.Open_oodb_catalog
module Q = Oodb_workloads.Queries
module Opt = Open_oodb.Optimizer
module Options = Open_oodb.Options
module Physical = Open_oodb.Physical
module Physprop = Open_oodb.Physprop
module Argtrans = Open_oodb.Argtrans
module Engine = Open_oodb.Model.Engine
module Db = Oodb_exec.Db

let db = Lazy.force Helpers.small_db

let cat = Db.catalog db

(* a single-link query joining tasks' members with Employees *)
let member_query =
  Logical.get ~coll:"Tasks" ~binding:"t"
  |> Logical.unnest ~out:"m" ~src:"t" ~field:"team_members"
  |> Logical.mat_ref ~out:"e" ~src:"m"
  |> Logical.select [ Pred.atom Pred.Ge (Pred.Field ("e", "age")) (Pred.Const (Value.Int 40)) ]

(* ------------------------------------------------------------------ *)
(* Merge join                                                           *)

let force_merge_join =
  (* remove the competing join implementations *)
  List.fold_left (fun o r -> Options.disable r o) Options.default
    [ "hash-join"; "pointer-join"; "mat-assembly" ]

let test_merge_join_plan () =
  let p = Opt.plan_exn (Opt.optimize ~options:force_merge_join cat member_query) in
  Alcotest.(check bool) "uses merge join" true
    (List.mem "merge-join" (Helpers.shape p));
  (* at least one side gets sorted by the enforcer; the Employees side
     may come pre-sorted by identity straight from the file scan *)
  Alcotest.(check bool) "sorted inputs" true
    (List.mem "sort" (Helpers.shape p)
    || List.mem "file-scan" (Helpers.shape p))

let test_merge_join_results () =
  let merge = Opt.plan_exn (Opt.optimize ~options:force_merge_join cat member_query) in
  let hash = Opt.plan_exn (Opt.optimize cat member_query) in
  Helpers.check_same_rows "merge == hash results" (Helpers.run_rows db hash)
    (Helpers.run_rows db merge)

let test_scan_delivers_identity_order () =
  (* requesting identity order on a plain scan needs no sort *)
  let q = Logical.get ~coll:"Countries" ~binding:"n" in
  let required =
    { Physprop.empty with
      Physprop.order = Some { Physprop.ord_binding = "n"; ord_field = None } }
  in
  let p = Opt.plan_exn (Opt.optimize ~required cat q) in
  Helpers.check_shape "no sort needed" [ "file-scan" ] p

let test_field_order_needs_sort () =
  let q = Logical.get ~coll:"Countries" ~binding:"n" in
  let required =
    { Physprop.empty with
      Physprop.order = Some { Physprop.ord_binding = "n"; ord_field = Some "name" } }
  in
  let p = Opt.plan_exn (Opt.optimize ~required cat q) in
  Helpers.check_shape "sort enforcer" [ "sort"; "file-scan" ] p;
  (* and the executed output really is sorted *)
  let rows = Helpers.run_rows db p in
  Alcotest.(check bool) "non-trivial" true (List.length rows > 2)

let test_merge_join_duplicates () =
  (* many employees share a department: duplicate keys on the probe side *)
  let q =
    Logical.join
      [ Pred.atom Pred.Eq (Pred.Field ("e", "dept")) (Pred.Self "d") ]
      (Logical.get ~coll:"Employees" ~binding:"e")
      (Logical.get ~coll:"Departments" ~binding:"d")
  in
  let merge =
    Opt.plan_exn
      (Opt.optimize
         ~options:(List.fold_left (fun o r -> Options.disable r o) Options.default
                     [ "hash-join"; "pointer-join" ])
         cat q)
  in
  let hash = Opt.plan_exn (Opt.optimize cat q) in
  Helpers.check_same_rows "duplicate-key merge" (Helpers.run_rows db hash)
    (Helpers.run_rows db merge)

(* ------------------------------------------------------------------ *)
(* Warm-start assembly (Lesson 7)                                       *)

let test_warm_assembly_opt_in () =
  Alcotest.(check bool) "disabled by default" true
    (List.mem "warm-assembly" Options.default.Options.disabled);
  let on = Options.with_warm_start Options.default in
  Alcotest.(check bool) "enabled" false (List.mem "warm-assembly" on.Options.disabled)

let test_warm_assembly_improves_q1 () =
  let base = Cost.total (Opt.cost (Opt.optimize cat Q.q1)) in
  let warm =
    Cost.total (Opt.cost (Opt.optimize ~options:(Options.with_warm_start Options.default) cat Q.q1))
  in
  Alcotest.(check bool)
    (Printf.sprintf "warm start at least as good (%.1f vs %.1f)" warm base)
    true (warm <= base +. 1e-9)

let test_warm_assembly_results () =
  let options = Options.with_warm_start Options.default in
  let warm = Opt.plan_exn (Opt.optimize ~options cat Q.q1) in
  let base = Opt.plan_exn (Opt.optimize cat Q.q1) in
  Helpers.check_same_rows "warm == base results" (Helpers.run_rows db base)
    (Helpers.run_rows db warm)

let test_warm_assembly_in_plan () =
  (* force it: drop the join routes so the mat resolution must assemble *)
  let options =
    List.fold_left (fun o r -> Options.disable r o)
      (Options.with_warm_start Options.default)
      [ "mat-to-join"; "mat-assembly" ]
  in
  let q =
    Logical.get ~coll:"Employees" ~binding:"e" |> Logical.mat ~src:"e" ~field:"dept"
  in
  let p = Opt.plan_exn (Opt.optimize ~options cat q) in
  let warm_used =
    List.exists
      (function Physical.Assembly { warm = Some _; _ } -> true | _ -> false)
      (Helpers.algs p)
  in
  Alcotest.(check bool) "warm-start assembly used" true warm_used;
  let rows = Helpers.run_rows db p in
  Alcotest.(check int) "all employees" (List.length (Helpers.run_rows db (Opt.plan_exn (Opt.optimize cat q))))
    (List.length rows)

(* ------------------------------------------------------------------ *)
(* Argument transformations (Lesson 9)                                  *)

let test_argtrans_atoms () =
  let check label expected a =
    Alcotest.(check bool) label true (Argtrans.atom a = expected)
  in
  check "const fold true" `True (Pred.atom Pred.Lt (Pred.Const (Value.Int 1)) (Pred.Const (Value.Int 2)));
  check "const fold false" `False (Pred.atom Pred.Gt (Pred.Const (Value.Int 1)) (Pred.Const (Value.Int 2)));
  check "tautology" `True (Pred.atom Pred.Eq (Pred.Self "x") (Pred.Self "x"));
  check "anti-tautology" `False (Pred.atom Pred.Lt (Pred.Field ("x", "a")) (Pred.Field ("x", "a")));
  (* constant moves right with a flipped comparison *)
  match Argtrans.atom (Pred.atom Pred.Lt (Pred.Const (Value.Int 5)) (Pred.Field ("x", "a"))) with
  | `Keep a ->
    Alcotest.(check bool) "canonicalized" true
      (a = Pred.atom Pred.Gt (Pred.Field ("x", "a")) (Pred.Const (Value.Int 5)))
  | _ -> Alcotest.fail "expected Keep"

let test_argtrans_pred () =
  let f = Pred.Field ("x", "a") in
  let eq v = Pred.atom Pred.Eq f (Pred.Const (Value.Int v)) in
  (match Argtrans.pred [ eq 1; eq 1 ] with
  | `Pred [ _ ] -> ()
  | _ -> Alcotest.fail "duplicates collapse");
  (match Argtrans.pred [ eq 1; eq 2 ] with
  | `Contradiction -> ()
  | _ -> Alcotest.fail "x==1 && x==2 is unsatisfiable");
  match Argtrans.pred [ Pred.atom Pred.Eq (Pred.Const (Value.Int 1)) (Pred.Const (Value.Int 1)) ] with
  | `Pred [] -> ()
  | _ -> Alcotest.fail "constant truth drops out"

let test_argtrans_expr_contradiction_executes_empty () =
  let q =
    Logical.get ~coll:"Cities" ~binding:"c"
    |> Logical.select
         [ Pred.atom Pred.Eq (Pred.Field ("c", "population")) (Pred.Const (Value.Int 1));
           Pred.atom Pred.Eq (Pred.Field ("c", "population")) (Pred.Const (Value.Int 2)) ]
  in
  let p = Opt.plan_exn (Opt.optimize cat q) in
  Alcotest.(check int) "empty result" 0 (List.length (Helpers.run_rows db p))

let test_argtrans_dedup_matches_unnormalized_results () =
  let q =
    Logical.get ~coll:"Cities" ~binding:"c"
    |> Logical.select
         [ Pred.atom Pred.Ge (Pred.Field ("c", "population")) (Pred.Const (Value.Int 5000));
           Pred.atom Pred.Ge (Pred.Field ("c", "population")) (Pred.Const (Value.Int 5000)) ]
  in
  let normalized = Opt.plan_exn (Opt.optimize cat q) in
  let raw =
    Opt.plan_exn (Opt.optimize ~options:{ Options.default with Options.normalize = false } cat q)
  in
  Helpers.check_same_rows "same rows" (Helpers.run_rows db raw) (Helpers.run_rows db normalized)

let test_argtrans_preserves_paper_queries () =
  List.iter
    (fun (name, q) ->
      Alcotest.(check bool) (name ^ " unchanged") true (Logical.equal (Argtrans.expr q) q))
    Q.all

(* qcheck: normalization is semantics-preserving on random conjunctions
   of city predicates *)
let atom_pool k =
  let f name = Pred.Field ("c", name) in
  [| Pred.atom Pred.Ge (f "population") (Pred.Const (Value.Int (k * 500)));
     Pred.atom Pred.Eq (f "population") (Pred.Const (Value.Int (k * 1000)));
     Pred.atom Pred.Eq (Pred.Const (Value.Int k)) (Pred.Const (Value.Int 7));
     Pred.atom Pred.Ne (f "name") (f "name");
     Pred.atom Pred.Le (f "population") (f "population");
     Pred.atom Pred.Eq (Pred.Const (Value.Int 3)) (f "population") |]

let prop_argtrans_sound =
  QCheck2.Test.make ~name:"normalization preserves results" ~count:60
    QCheck2.Gen.(list_size (int_bound 4) (pair (int_bound 5) (int_bound 9)))
    (fun picks ->
      let atoms = List.map (fun (i, k) -> (atom_pool k).(i)) picks in
      let q = Logical.select atoms (Logical.get ~coll:"Cities" ~binding:"c") in
      match Logical.well_formed cat q with
      | Error _ -> QCheck2.assume_fail ()
      | Ok () ->
        let normalized = Opt.plan_exn (Opt.optimize cat q) in
        let raw =
          Opt.plan_exn
            (Opt.optimize ~options:{ Options.default with Options.normalize = false } cat q)
        in
        Helpers.canon_rows (Helpers.run_rows db raw)
        = Helpers.canon_rows (Helpers.run_rows db normalized))

let () =
  Alcotest.run "extensions"
    [ ( "merge-join",
        [ Alcotest.test_case "plan uses merge join" `Quick test_merge_join_plan;
          Alcotest.test_case "same results as hash join" `Quick test_merge_join_results;
          Alcotest.test_case "scan delivers identity order" `Quick
            test_scan_delivers_identity_order;
          Alcotest.test_case "field order needs a sort" `Quick test_field_order_needs_sort;
          Alcotest.test_case "duplicate keys" `Quick test_merge_join_duplicates ] );
      ( "warm-assembly",
        [ Alcotest.test_case "opt-in" `Quick test_warm_assembly_opt_in;
          Alcotest.test_case "never worse on Q1" `Quick test_warm_assembly_improves_q1;
          Alcotest.test_case "same results" `Quick test_warm_assembly_results;
          Alcotest.test_case "appears in plans" `Quick test_warm_assembly_in_plan ] );
      ( "argtrans",
        [ Alcotest.test_case "atom normalization" `Quick test_argtrans_atoms;
          Alcotest.test_case "conjunction normalization" `Quick test_argtrans_pred;
          Alcotest.test_case "contradictions execute empty" `Quick
            test_argtrans_expr_contradiction_executes_empty;
          Alcotest.test_case "dedup preserves results" `Quick
            test_argtrans_dedup_matches_unnormalized_results;
          Alcotest.test_case "paper queries unchanged" `Quick
            test_argtrans_preserves_paper_queries;
          QCheck_alcotest.to_alcotest prop_argtrans_sound ] ) ]
