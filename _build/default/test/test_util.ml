module Prng = Oodb_util.Prng
module Pretty = Oodb_util.Pretty

let test_prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  let take g = List.init 100 (fun _ -> Prng.int g 1000) in
  Alcotest.(check (list int)) "same seed, same stream" (take a) (take b);
  let c = Prng.create 43 in
  Alcotest.(check bool) "different seed differs" true (take (Prng.create 42) <> take c)

let test_prng_bounds () =
  let g = Prng.create 7 in
  for _ = 1 to 1000 do
    let v = Prng.int g 13 in
    Alcotest.(check bool) "int bound" true (v >= 0 && v < 13);
    let w = Prng.int_in g 5 9 in
    Alcotest.(check bool) "int_in range" true (w >= 5 && w <= 9);
    let f = Prng.float g 2.5 in
    Alcotest.(check bool) "float bound" true (f >= 0.0 && f < 2.5)
  done

let test_prng_copy () =
  let g = Prng.create 1 in
  ignore (Prng.int g 10);
  let h = Prng.copy g in
  Alcotest.(check int) "copy continues identically" (Prng.int g 1000) (Prng.int h 1000)

let test_prng_pick_shuffle () =
  let g = Prng.create 3 in
  let arr = [| 1; 2; 3; 4; 5 |] in
  for _ = 1 to 50 do
    Alcotest.(check bool) "pick member" true (Array.mem (Prng.pick g arr) arr)
  done;
  let arr2 = Array.init 20 (fun i -> i) in
  Prng.shuffle g arr2;
  Alcotest.(check (list int)) "shuffle is a permutation" (List.init 20 (fun i -> i))
    (List.sort compare (Array.to_list arr2))

let test_pretty_spine () =
  let t = Pretty.Node ("a", [ Pretty.Node ("b", [ Pretty.Node ("c", []) ]) ]) in
  Alcotest.(check string) "vertical spine" "a\n|\nb\n|\nc" (Pretty.render t)

let test_pretty_fanout () =
  let t = Pretty.Node ("join", [ Pretty.Node ("l", []); Pretty.Node ("r", []) ]) in
  Alcotest.(check string) "fanout indents" "join\n|\n    l\n|\n    r" (Pretty.render t)

let test_pretty_compact () =
  let t = Pretty.Node ("a", [ Pretty.Node ("b", []); Pretty.Node ("c", []) ]) in
  Alcotest.(check string) "compact" "a(b, c)" (Pretty.render_compact t)

let prop_prng_uniformish =
  QCheck2.Test.make ~name:"int bound respected for random bounds" ~count:200
    QCheck2.Gen.(pair small_signed_int (int_range 1 1000))
    (fun (seed, bound) ->
      let g = Prng.create seed in
      List.for_all (fun v -> v >= 0 && v < bound) (List.init 50 (fun _ -> Prng.int g bound)))

let () =
  Alcotest.run "util"
    [ ( "prng",
        [ Alcotest.test_case "determinism" `Quick test_prng_deterministic;
          Alcotest.test_case "bounds" `Quick test_prng_bounds;
          Alcotest.test_case "copy" `Quick test_prng_copy;
          Alcotest.test_case "pick and shuffle" `Quick test_prng_pick_shuffle;
          QCheck_alcotest.to_alcotest prop_prng_uniformish ] );
      ( "pretty",
        [ Alcotest.test_case "spine rendering" `Quick test_pretty_spine;
          Alcotest.test_case "fanout rendering" `Quick test_pretty_fanout;
          Alcotest.test_case "compact rendering" `Quick test_pretty_compact ] ) ]
