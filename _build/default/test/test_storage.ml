module Value = Oodb_storage.Value
module Disk = Oodb_storage.Disk
module Buffer_pool = Oodb_storage.Buffer_pool
module Store = Oodb_storage.Store
module Btree_index = Oodb_storage.Btree_index

(* ------------------------------------------------------------------ *)
(* Value                                                                *)

let test_value_order () =
  Alcotest.(check bool) "int lt" true (Value.compare (Value.Int 1) (Value.Int 2) < 0);
  Alcotest.(check bool) "int/float numeric" true (Value.compare (Value.Int 2) (Value.Float 1.5) > 0);
  Alcotest.(check bool) "int/float equal" true (Value.equal (Value.Int 2) (Value.Float 2.0));
  Alcotest.(check bool) "str" true (Value.compare (Value.Str "a") (Value.Str "b") < 0);
  Alcotest.(check bool) "null lowest" true (Value.compare Value.Null (Value.Int min_int) < 0);
  Alcotest.(check bool) "set order" true
    (Value.compare (Value.Set [ Value.Int 1 ]) (Value.Set [ Value.Int 2 ]) < 0)

let test_value_date () =
  let d1992 = Value.date_of_ymd 1992 1 1 in
  let d1991 = Value.date_of_ymd 1991 12 31 in
  Alcotest.(check bool) "calendar order" true (d1991 < d1992);
  Alcotest.(check bool) "month order" true (Value.date_of_ymd 1992 2 1 > d1992)

let test_value_hash_consistent () =
  (* equal values (including cross int/float) must hash equally *)
  Alcotest.(check int) "int/float hash" (Value.hash (Value.Int 7)) (Value.hash (Value.Float 7.0))

let test_value_helpers () =
  Alcotest.(check (option int)) "as_ref" (Some 42) (Value.as_ref (Value.Ref 42));
  Alcotest.(check (option int)) "as_ref not" None (Value.as_ref (Value.Int 42));
  Alcotest.(check int) "set elements" 2 (List.length (Value.set_elements (Value.Set [ Value.Int 1; Value.Int 2 ])));
  Alcotest.(check int) "null set empty" 0 (List.length (Value.set_elements Value.Null));
  Alcotest.check_raises "set_elements on int" (Invalid_argument "Value.set_elements: not a set")
    (fun () -> ignore (Value.set_elements (Value.Int 1)))

(* ------------------------------------------------------------------ *)
(* Disk                                                                 *)

let test_disk_sequential () =
  let d = Disk.create () in
  let seg = Disk.alloc_segment d ~name:"s" in
  Disk.extend d seg 10;
  for p = 0 to 9 do
    Disk.read d seg p
  done;
  let s = Disk.stats d in
  (* the head parks just before segment 0, so all reads stream *)
  Alcotest.(check int) "seq" 10 s.Disk.seq_reads;
  Alcotest.(check int) "rand" 0 s.Disk.rand_reads

let test_disk_random () =
  let d = Disk.create () in
  let seg = Disk.alloc_segment d ~name:"s" in
  Disk.extend d seg 10;
  Disk.read d seg 9;
  Disk.read d seg 0;
  Disk.read d seg 5;
  let s = Disk.stats d in
  Alcotest.(check int) "all random" 3 s.Disk.rand_reads;
  Alcotest.(check bool) "seeks accounted" true (s.Disk.seek_pages > 0)

let test_disk_bounds () =
  let d = Disk.create () in
  let seg = Disk.alloc_segment d ~name:"s" in
  Disk.extend d seg 2;
  Alcotest.check_raises "oob" (Invalid_argument "Disk: page 2 out of range in segment s (2 pages)")
    (fun () -> Disk.read d seg 2)

let test_disk_reset () =
  let d = Disk.create () in
  let seg = Disk.alloc_segment d ~name:"s" in
  Disk.extend d seg 1;
  Disk.read d seg 0;
  Disk.reset_stats d;
  let s = Disk.stats d in
  Alcotest.(check int) "reset" 0 (s.Disk.seq_reads + s.Disk.rand_reads)

(* ------------------------------------------------------------------ *)
(* Buffer pool                                                          *)

let test_buffer_hit () =
  let d = Disk.create () in
  let seg = Disk.alloc_segment d ~name:"s" in
  Disk.extend d seg 4;
  let b = Buffer_pool.create d ~capacity_pages:2 in
  Buffer_pool.read b seg 0;
  Buffer_pool.read b seg 0;
  let s = Buffer_pool.stats b in
  Alcotest.(check int) "hits" 1 s.Buffer_pool.hits;
  Alcotest.(check int) "misses" 1 s.Buffer_pool.misses

let test_buffer_lru_eviction () =
  let d = Disk.create () in
  let seg = Disk.alloc_segment d ~name:"s" in
  Disk.extend d seg 4;
  let b = Buffer_pool.create d ~capacity_pages:2 in
  Buffer_pool.read b seg 0;
  Buffer_pool.read b seg 1;
  Buffer_pool.read b seg 2;
  (* page 0 was least recently used *)
  Alcotest.(check bool) "0 evicted" false (Buffer_pool.contains b seg 0);
  Alcotest.(check bool) "1 resident" true (Buffer_pool.contains b seg 1);
  Alcotest.(check bool) "2 resident" true (Buffer_pool.contains b seg 2);
  (* touching 1 makes 2 the LRU *)
  Buffer_pool.read b seg 1;
  Buffer_pool.read b seg 3;
  Alcotest.(check bool) "2 evicted after touch" false (Buffer_pool.contains b seg 2);
  Alcotest.(check bool) "1 kept" true (Buffer_pool.contains b seg 1)

let test_buffer_capacity_never_exceeded () =
  let d = Disk.create () in
  let seg = Disk.alloc_segment d ~name:"s" in
  Disk.extend d seg 64;
  let b = Buffer_pool.create d ~capacity_pages:8 in
  for i = 0 to 63 do
    Buffer_pool.read b seg (i * 7 mod 64);
    Alcotest.(check bool) "within capacity" true (Buffer_pool.resident b <= 8)
  done

let test_buffer_flush () =
  let d = Disk.create () in
  let seg = Disk.alloc_segment d ~name:"s" in
  Disk.extend d seg 2;
  let b = Buffer_pool.create d ~capacity_pages:2 in
  Buffer_pool.read b seg 0;
  Buffer_pool.flush b;
  Alcotest.(check int) "empty" 0 (Buffer_pool.resident b);
  Buffer_pool.read b seg 0;
  Alcotest.(check int) "miss after flush" 2 (Buffer_pool.stats b).Buffer_pool.misses

(* ------------------------------------------------------------------ *)
(* Store                                                                *)

let mk_store () =
  let store = Store.create ~buffer_pages:16 () in
  Store.declare_collection store ~name:"Things" ~cls:"Thing" ~obj_bytes:1000;
  store

let test_store_insert_fetch () =
  let store = mk_store () in
  let oid = Store.insert store ~coll:"Things" [ ("x", Value.Int 7) ] in
  let o = Store.fetch store oid in
  Alcotest.(check bool) "field" true (Value.equal (Value.Int 7) (Store.field o "x"));
  Alcotest.(check string) "class" "Thing" (Store.class_of store oid);
  Alcotest.(check int) "cardinality" 1 (Store.cardinality store ~coll:"Things")

let test_store_packing () =
  (* 1000-byte objects, 4096-byte pages: 4 per page *)
  let store = mk_store () in
  for i = 0 to 7 do
    ignore (Store.insert store ~coll:"Things" [ ("x", Value.Int i) ])
  done;
  Alcotest.(check int) "pages" 2 (Oodb_storage.Disk.segment_pages (Store.segment store ~coll:"Things"))

let test_store_scan_order_and_io () =
  let store = mk_store () in
  let oids = List.init 8 (fun i -> Store.insert store ~coll:"Things" [ ("x", Value.Int i) ]) in
  Disk.reset_stats (Store.disk store);
  let seen = ref [] in
  Store.scan store ~coll:"Things" (fun o -> seen := o.Store.oid :: !seen);
  Alcotest.(check (list int)) "insertion order" oids (List.rev !seen);
  let s = Disk.stats (Store.disk store) in
  Alcotest.(check int) "2 pages read" 2 (s.Disk.seq_reads + s.Disk.rand_reads)

let test_store_set_field () =
  let store = mk_store () in
  let oid = Store.insert store ~coll:"Things" [ ("x", Value.Int 1) ] in
  Store.set_field store oid "x" (Value.Int 2);
  Alcotest.(check bool) "updated" true (Value.equal (Value.Int 2) (Store.field (Store.peek store oid) "x"))

let test_store_big_objects_span_pages () =
  let store = Store.create ~buffer_pages:16 () in
  Store.declare_collection store ~name:"Big" ~cls:"Big" ~obj_bytes:10_000;
  let oid = Store.insert store ~coll:"Big" [] in
  Disk.reset_stats (Store.disk store);
  Buffer_pool.flush (Store.buffer store);
  ignore (Store.fetch store oid);
  let s = Disk.stats (Store.disk store) in
  Alcotest.(check int) "3 pages per object" 3 (s.Disk.seq_reads + s.Disk.rand_reads)

let test_store_errors () =
  let store = mk_store () in
  Alcotest.check_raises "dup" (Invalid_argument "Store.declare_collection: duplicate collection Things")
    (fun () -> Store.declare_collection store ~name:"Things" ~cls:"T" ~obj_bytes:8);
  Alcotest.check_raises "unknown" (Invalid_argument "Store: unknown collection Nope") (fun () ->
      ignore (Store.cardinality store ~coll:"Nope"));
  Alcotest.check_raises "dangling" Not_found (fun () -> ignore (Store.fetch store 424242))

(* ------------------------------------------------------------------ *)
(* B-tree index                                                         *)

let mk_indexed_store n =
  let store = Store.create ~buffer_pages:64 () in
  Store.declare_collection store ~name:"Nums" ~cls:"Num" ~obj_bytes:64;
  let oids = List.init n (fun i -> Store.insert store ~coll:"Nums" [ ("v", Value.Int (i mod 10)) ]) in
  let ix =
    Btree_index.build store ~name:"nums_v" ~coll:"Nums"
      ~key:(fun oid -> Store.field (Store.peek store oid) "v")
  in
  (store, oids, ix)

let test_btree_lookup () =
  let store, _, ix = mk_indexed_store 100 in
  let hits = Btree_index.lookup ix (Value.Int 3) in
  Alcotest.(check int) "10 matches" 10 (List.length hits);
  List.iter
    (fun oid ->
      Alcotest.(check bool) "key matches" true
        (Value.equal (Value.Int 3) (Store.field (Store.peek store oid) "v")))
    hits;
  Alcotest.(check int) "miss" 0 (List.length (Btree_index.lookup ix (Value.Int 77)))

let test_btree_range () =
  let _, _, ix = mk_indexed_store 100 in
  let hits = Btree_index.lookup_range ix ~lo:(Some (Value.Int 8)) ~hi:None in
  Alcotest.(check int) "8 and 9" 20 (List.length hits);
  let all = Btree_index.lookup_range ix ~lo:None ~hi:None in
  Alcotest.(check int) "all" 100 (List.length all)

let test_btree_stats () =
  let _, _, ix = mk_indexed_store 100 in
  Alcotest.(check int) "entries" 100 (Btree_index.entry_count ix);
  Alcotest.(check int) "distinct" 10 (Btree_index.distinct_keys ix);
  Alcotest.(check bool) "height" true (Btree_index.height ix >= 1)

let test_btree_charges_io () =
  let store, _, ix = mk_indexed_store 100 in
  Disk.reset_stats (Store.disk store);
  Buffer_pool.flush (Store.buffer store);
  ignore (Btree_index.lookup ix (Value.Int 3));
  let s = Disk.stats (Store.disk store) in
  Alcotest.(check bool) "descent charged" true (s.Disk.seq_reads + s.Disk.rand_reads >= 1)

let test_btree_empty () =
  let store = Store.create () in
  Store.declare_collection store ~name:"Empty" ~cls:"E" ~obj_bytes:8;
  let ix = Btree_index.build store ~name:"e" ~coll:"Empty" ~key:(fun _ -> Value.Null) in
  Alcotest.(check int) "no entries" 0 (Btree_index.entry_count ix);
  Alcotest.(check int) "no hits" 0 (List.length (Btree_index.lookup ix (Value.Int 1)))

(* ------------------------------------------------------------------ *)
(* Property-based                                                       *)

let value_gen =
  let open QCheck2.Gen in
  sized @@ fix (fun self n ->
      let base =
        oneof
          [ return Value.Null;
            map (fun b -> Value.Bool b) bool;
            map (fun i -> Value.Int i) small_signed_int;
            map (fun f -> Value.Float f) (float_bound_inclusive 1000.0);
            map (fun s -> Value.Str s) (string_size (int_bound 8));
            map (fun d -> Value.Date d) small_nat;
            map (fun r -> Value.Ref r) small_nat ]
      in
      if n <= 0 then base
      else oneof [ base; map (fun vs -> Value.Set vs) (list_size (int_bound 3) (self (n / 4))) ])

let prop_compare_antisym =
  QCheck2.Test.make ~name:"Value.compare antisymmetric" ~count:500
    QCheck2.Gen.(pair value_gen value_gen)
    (fun (a, b) ->
      let c1 = Value.compare a b and c2 = Value.compare b a in
      (c1 = 0 && c2 = 0) || (c1 < 0 && c2 > 0) || (c1 > 0 && c2 < 0))

let prop_compare_trans =
  QCheck2.Test.make ~name:"Value.compare transitive" ~count:500
    QCheck2.Gen.(triple value_gen value_gen value_gen)
    (fun (a, b, c) ->
      let sorted = List.sort Value.compare [ a; b; c ] in
      match sorted with
      | [ x; y; z ] -> Value.compare x y <= 0 && Value.compare y z <= 0 && Value.compare x z <= 0
      | _ -> false)

let prop_equal_hash =
  QCheck2.Test.make ~name:"equal values hash equally" ~count:500
    QCheck2.Gen.(pair value_gen value_gen)
    (fun (a, b) -> (not (Value.equal a b)) || Value.hash a = Value.hash b)

let prop_btree_matches_scan =
  QCheck2.Test.make ~name:"btree lookup == linear scan" ~count:50
    QCheck2.Gen.(pair (list_size (int_bound 200) (int_bound 20)) (int_bound 20))
    (fun (values, probe) ->
      let store = Store.create ~buffer_pages:64 () in
      Store.declare_collection store ~name:"C" ~cls:"C" ~obj_bytes:32;
      let oids = List.map (fun v -> Store.insert store ~coll:"C" [ ("v", Value.Int v) ]) values in
      let ix =
        Btree_index.build store ~name:"ix" ~coll:"C"
          ~key:(fun oid -> Store.field (Store.peek store oid) "v")
      in
      let expected =
        List.filter
          (fun oid -> Value.equal (Value.Int probe) (Store.field (Store.peek store oid) "v"))
          oids
        |> List.sort compare
      in
      let actual = Btree_index.lookup ix (Value.Int probe) |> List.sort compare in
      expected = actual)

let prop_lru_capacity =
  QCheck2.Test.make ~name:"LRU pool never exceeds capacity" ~count:50
    QCheck2.Gen.(pair (int_range 1 8) (list_size (int_bound 100) (int_bound 30)))
    (fun (cap, accesses) ->
      let d = Disk.create () in
      let seg = Disk.alloc_segment d ~name:"s" in
      Disk.extend d seg 31;
      let b = Buffer_pool.create d ~capacity_pages:cap in
      List.for_all
        (fun p ->
          Buffer_pool.read b seg p;
          Buffer_pool.resident b <= cap)
        accesses)

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "storage"
    [ ( "value",
        [ Alcotest.test_case "total order basics" `Quick test_value_order;
          Alcotest.test_case "date encoding" `Quick test_value_date;
          Alcotest.test_case "hash consistency" `Quick test_value_hash_consistent;
          Alcotest.test_case "helpers" `Quick test_value_helpers ] );
      ( "disk",
        [ Alcotest.test_case "sequential accounting" `Quick test_disk_sequential;
          Alcotest.test_case "random accounting" `Quick test_disk_random;
          Alcotest.test_case "bounds check" `Quick test_disk_bounds;
          Alcotest.test_case "stats reset" `Quick test_disk_reset ] );
      ( "buffer",
        [ Alcotest.test_case "hit/miss" `Quick test_buffer_hit;
          Alcotest.test_case "LRU eviction" `Quick test_buffer_lru_eviction;
          Alcotest.test_case "capacity bound" `Quick test_buffer_capacity_never_exceeded;
          Alcotest.test_case "flush" `Quick test_buffer_flush ] );
      ( "store",
        [ Alcotest.test_case "insert/fetch" `Quick test_store_insert_fetch;
          Alcotest.test_case "dense packing" `Quick test_store_packing;
          Alcotest.test_case "scan order and IO" `Quick test_store_scan_order_and_io;
          Alcotest.test_case "set_field" `Quick test_store_set_field;
          Alcotest.test_case "multi-page objects" `Quick test_store_big_objects_span_pages;
          Alcotest.test_case "errors" `Quick test_store_errors ] );
      ( "btree",
        [ Alcotest.test_case "equality lookup" `Quick test_btree_lookup;
          Alcotest.test_case "range lookup" `Quick test_btree_range;
          Alcotest.test_case "statistics" `Quick test_btree_stats;
          Alcotest.test_case "charges IO" `Quick test_btree_charges_io;
          Alcotest.test_case "empty index" `Quick test_btree_empty ] );
      ( "properties",
        qcheck
          [ prop_compare_antisym;
            prop_compare_trans;
            prop_equal_hash;
            prop_btree_matches_scan;
            prop_lru_capacity ] ) ]
