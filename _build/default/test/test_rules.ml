(* Tests of the logical closure: which multi-expressions the
   transformation rules put into the memo for the paper's queries. *)

module Logical = Oodb_algebra.Logical
module Pred = Oodb_algebra.Pred
module Value = Oodb_storage.Value
module OC = Oodb_catalog.Open_oodb_catalog
module Q = Oodb_workloads.Queries
module Opt = Open_oodb.Optimizer
module Options = Open_oodb.Options
module Engine = Open_oodb.Model.Engine

let memo_of ?(options = Options.default) cat q =
  let o = Opt.optimize ~options cat q in
  (o.Opt.memo, o.Opt.root, o.Opt.stats)

let ops_of ctx g = List.map (fun (m : Engine.mexpr) -> m.Engine.mop) (Engine.group_exprs ctx g)

let group_has ctx g pred = List.exists pred (ops_of ctx g)

let rec any_group_has ctx g pred ~fuel =
  fuel > 0
  && (group_has ctx g pred
     || List.exists
          (fun (m : Engine.mexpr) ->
            List.exists (fun g' -> any_group_has ctx g' pred ~fuel:(fuel - 1)) m.Engine.minputs)
          (Engine.group_exprs ctx g))

let is_join = function Logical.Join _ -> true | _ -> false

let test_mat_to_join_fires () =
  let cat = OC.catalog_with_indexes () in
  let ctx, root, _ = memo_of cat Q.q2 in
  (* the Mat c.mayor group must contain a Join against Persons *)
  Alcotest.(check bool) "join form exists" true (any_group_has ctx root is_join ~fuel:6)

let test_mat_to_join_respects_hidden () =
  let cat = OC.catalog_with_indexes () in
  let ctx, root, _ = memo_of cat Q.q1 in
  (* Plant has no scannable collection: no Get of the plant heap anywhere *)
  let scans_plant = function
    | Logical.Get { coll = "Plant.heap"; _ } -> true
    | _ -> false
  in
  Alcotest.(check bool) "no plant scan" false (any_group_has ctx root scans_plant ~fuel:10)

let test_mat_to_join_disabled () =
  let cat = OC.catalog_with_indexes () in
  let options = Options.disable "mat-to-join" Options.default in
  let ctx, root, _ = memo_of ~options cat Q.q2 in
  Alcotest.(check bool) "no join form" false (any_group_has ctx root is_join ~fuel:6)

let test_select_pushdown () =
  let cat = OC.catalog_with_indexes () in
  let ctx, root, _ = memo_of cat Q.q4 in
  (* t.time == 100 must be pushable below the unnest, onto Get Tasks *)
  let pushed = function
    | Logical.Select p -> (
      match Pred.bindings p with [ "t" ] -> true | _ -> false)
    | _ -> false
  in
  Alcotest.(check bool) "time predicate pushed to tasks" true
    (any_group_has ctx root pushed ~fuel:8)

let test_join_commutativity_closure () =
  let cat = OC.catalog_with_indexes () in
  let all = memo_of cat Q.q2 in
  let without =
    memo_of ~options:(Options.without_join_commutativity Options.default) cat Q.q2
  in
  let _, _, s_all = all and _, _, s_wo = without in
  Alcotest.(check bool) "commutativity enlarges the memo" true
    (s_all.Engine.mexprs > s_wo.Engine.mexprs)

let test_closure_terminates_fig2 () =
  let cat = OC.catalog_with_indexes () in
  let _, _, stats = memo_of cat Q.fig2 in
  Alcotest.(check bool) "finite memo" true (stats.Engine.mexprs < 2_000);
  Alcotest.(check bool) "substantial exploration" true (stats.Engine.mexprs > 20)

let test_mat_commute_generates_orders () =
  let cat = OC.catalog () in
  (* two independent mats over cities: both orders must appear *)
  let q =
    Logical.get ~coll:"Cities" ~binding:"c"
    |> Logical.mat ~src:"c" ~field:"mayor"
    |> Logical.mat ~src:"c" ~field:"country"
  in
  let ctx, root, _ = memo_of cat q in
  let mat_of field = function
    | Logical.Mat { field = Some f; _ } -> f = field
    | _ -> false
  in
  Alcotest.(check bool) "country on top" true (group_has ctx root (mat_of "country"));
  Alcotest.(check bool) "mayor on top too" true (group_has ctx root (mat_of "mayor"))

let test_dependent_mats_not_commuted () =
  let cat = OC.catalog () in
  (* c.country.president depends on c.country: the dependent order is the
     only one *)
  let ctx, root, _ = memo_of cat Q.fig2 in
  let top_select_inputs =
    Engine.group_exprs ctx root
    |> List.concat_map (fun (m : Engine.mexpr) ->
           match m.Engine.mop with Logical.Select _ -> m.Engine.minputs | _ -> [])
  in
  (* in every select-over-mat form, president never appears below country *)
  let rec president_below_country g fuel =
    fuel > 0
    && Engine.group_exprs ctx g
       |> List.exists (fun (m : Engine.mexpr) ->
              match m.Engine.mop, m.Engine.minputs with
              | Logical.Mat { field = Some "country"; _ }, [ g' ] ->
                any_group_has ctx g'
                  (function
                    | Logical.Mat { field = Some "president"; _ } -> true
                    | _ -> false)
                  ~fuel:(fuel - 1)
              | _, inputs ->
                List.exists (fun g' -> president_below_country g' (fuel - 1)) inputs)
  in
  List.iter
    (fun g ->
      Alcotest.(check bool) "president above country" false (president_below_country g 8))
    top_select_inputs

let test_setop_commute () =
  let cat = OC.catalog () in
  let g b = Logical.get ~coll:"Cities" ~binding:b in
  let q = Logical.union (g "c") (Logical.select [] (g "c") |> fun _ -> g "c") in
  (* union of a group with itself: commuted form dedups into the same *)
  let ctx, root, _ = memo_of cat q in
  Alcotest.(check int) "self-union has one form" 1 (List.length (Engine.group_exprs ctx root))

let test_stats_monotone_in_rules () =
  let cat = OC.catalog_with_indexes () in
  let _, _, s_all = memo_of cat Q.q1 in
  let disabled =
    List.fold_left (fun o n -> Options.disable n o) Options.default Open_oodb.Trules.names
  in
  let _, _, s_none = memo_of ~options:disabled cat Q.q1 in
  Alcotest.(check bool) "no transformations => minimal memo" true
    (s_none.Engine.mexprs < s_all.Engine.mexprs);
  Alcotest.(check int) "exactly the input expressions" 6 s_none.Engine.mexprs

let () =
  Alcotest.run "rules"
    [ ( "transformations",
        [ Alcotest.test_case "mat-to-join fires" `Quick test_mat_to_join_fires;
          Alcotest.test_case "mat-to-join skips extent-less classes" `Quick
            test_mat_to_join_respects_hidden;
          Alcotest.test_case "mat-to-join disable" `Quick test_mat_to_join_disabled;
          Alcotest.test_case "selection pushdown through unnest" `Quick test_select_pushdown;
          Alcotest.test_case "join commutativity enlarges memo" `Quick
            test_join_commutativity_closure;
          Alcotest.test_case "closure terminates on fig2" `Quick test_closure_terminates_fig2;
          Alcotest.test_case "independent mats commute" `Quick test_mat_commute_generates_orders;
          Alcotest.test_case "dependent mats do not commute" `Quick
            test_dependent_mats_not_commuted;
          Alcotest.test_case "set-op self-commute dedups" `Quick test_setop_commute;
          Alcotest.test_case "memo scales with rule set" `Quick test_stats_monotone_in_rules ] ) ]
