(* Invariants of the deterministic data generator: the properties the
   experiments (and the paper's derived numbers) rely on. *)

module Value = Oodb_storage.Value
module Store = Oodb_storage.Store
module Catalog = Oodb_catalog.Catalog
module Db = Oodb_exec.Db

let db = Lazy.force Helpers.small_db

let store = Db.store db

let cat = Db.catalog db

let field oid f = Store.field (Store.peek store oid) f

let ref_field oid f = Option.get (Value.as_ref (field oid f))

let test_cardinalities_match_catalog () =
  List.iter
    (fun (co : Catalog.collection) ->
      Alcotest.(check int) (co.Catalog.co_name ^ " cardinality") co.Catalog.co_card
        (Store.cardinality store ~coll:co.Catalog.co_name))
    (Catalog.collections cat)

let test_referential_containment () =
  (* every reference lands in the collection Mat-to-Join would join
     against — the assumption that makes the rule sound *)
  let members coll = Store.oids store ~coll in
  let in_coll coll =
    let set = Hashtbl.create 64 in
    List.iter (fun o -> Hashtbl.replace set o ()) (members coll);
    Hashtbl.mem set
  in
  let dept_ok = in_coll "Departments" and job_ok = in_coll "Jobs" in
  List.iter
    (fun e ->
      Alcotest.(check bool) "dept contained" true (dept_ok (ref_field e "dept"));
      Alcotest.(check bool) "job contained" true (job_ok (ref_field e "job")))
    (members "Employees");
  let person_ok = in_coll "Persons" and country_ok = in_coll "Countries" in
  List.iter
    (fun c ->
      Alcotest.(check bool) "mayor contained" true (person_ok (ref_field c "mayor"));
      Alcotest.(check bool) "country contained" true (country_ok (ref_field c "country")))
    (members "Cities");
  let employee_ok = in_coll "Employees" in
  List.iter
    (fun t ->
      List.iter
        (fun m ->
          Alcotest.(check bool) "member contained" true
            (employee_ok (Option.get (Value.as_ref m))))
        (Value.set_elements (field t "team_members")))
    (members "Tasks")

let test_dallas_fraction () =
  (* a tenth of the plants are in Dallas, by construction *)
  let plants = Store.oids store ~coll:"Plant.heap" in
  let dallas =
    List.length
      (List.filter (fun p -> Value.equal (Value.Str "Dallas") (field p "location")) plants)
  in
  Alcotest.(check int) "10% Dallas" (List.length plants / 10) dallas

let test_measured_stats_in_catalog () =
  let measured = Oodb_exec.Analyze.distinct_values db ~coll:"Persons" ~field:"name" in
  Alcotest.(check (option int)) "catalog carries measured stat" (Some measured)
    (Catalog.distinct cat ~cls:"Person" ~field:"name")

let test_determinism () =
  let db2 = Oodb_workloads.Datagen.generate ~scale:0.01 ~buffer_pages:256 () in
  let names d =
    Oodb_storage.Store.oids (Db.store d) ~coll:"Cities"
    |> List.map (fun o -> Oodb_storage.Store.field (Oodb_storage.Store.peek (Db.store d) o) "name")
  in
  Alcotest.(check bool) "same data both times" true (names db = names db2)

let test_indexes_built () =
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " physical index") true (Db.find_index db name <> None))
    [ "cities_mayor_name"; "tasks_time"; "employees_name" ];
  Alcotest.(check int) "catalog index defs" 3 (List.length (Catalog.indexes cat))

let test_fred_and_joe_exist () =
  let has coll fieldname v =
    List.exists (fun o -> Value.equal (Value.Str v) (field o fieldname)) (Store.oids store ~coll)
  in
  Alcotest.(check bool) "a Fred exists" true (has "Employees" "name" "Fred");
  Alcotest.(check bool) "a Joe exists" true (has "Persons" "name" "Joe")

let () =
  Alcotest.run "datagen"
    [ ( "invariants",
        [ Alcotest.test_case "cardinalities match catalog" `Quick test_cardinalities_match_catalog;
          Alcotest.test_case "referential containment" `Quick test_referential_containment;
          Alcotest.test_case "Dallas fraction" `Quick test_dallas_fraction;
          Alcotest.test_case "measured statistics" `Quick test_measured_stats_in_catalog;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "physical indexes" `Quick test_indexes_built;
          Alcotest.test_case "Fred and Joe exist" `Quick test_fred_and_joe_exist ] ) ]
