(* Random well-formed logical expressions over the shipped workload
   schema — the fuzz population shared by the plan-cache fingerprint
   tests, the typed-algebra property tests and the vectorized-executor
   differential tests (formerly three near-identical copies under
   test/).

   Queries are built as a root scan followed by a short random walk over
   the schema's reference graph (Mat steps whose availability depends on
   what is already in scope), at most one selection of 1-2 atoms on
   in-scope scalar fields, and an optional terminal projection. Derived
   names all flow from the root binding name, so re-running the
   generator with the same seed and a different root name yields an
   alpha-renamed variant. The single-Select cap keeps the queries inside
   the territory where the rule set's closure is known to terminate:
   stacks of Selects make the split/merge transformations enumerate
   conjunct partitions without bound (the paper only validated
   termination on its own workload shapes). *)

module Prng = Oodb_util.Prng
module Value = Oodb_storage.Value
module Logical = Oodb_algebra.Logical
module Pred = Oodb_algebra.Pred

let refs_of = function
  | "Employee" -> [ ("dept", "Department"); ("job", "Job") ]
  | "Department" -> [ ("plant", "Plant") ]
  | "City" -> [ ("mayor", "Person"); ("country", "Country") ]
  | "Country" -> [ ("president", "Person"); ("capital", "Capital") ]
  | _ -> []

let scalars_of = function
  | "Employee" -> [ ("name", `Str); ("age", `Int) ]
  | "Department" -> [ ("name", `Str); ("floor", `Int) ]
  | "Plant" -> [ ("name", `Str); ("location", `Str) ]
  | "Job" -> [ ("name", `Str); ("level", `Int) ]
  | "Person" -> [ ("name", `Str); ("age", `Int) ]
  | "City" -> [ ("name", `Str); ("population", `Int) ]
  | "Country" -> [ ("name", `Str) ]
  | "Capital" -> [ ("name", `Str); ("population", `Int) ]
  | "Task" -> [ ("name", `Str); ("time", `Int) ]
  | _ -> []

let roots = [| ("Employees", "Employee"); ("Cities", "City"); ("Tasks", "Task");
               ("Countries", "Country"); ("Departments", "Department") |]

let str_pool = [| "Dallas"; "Joe"; "Fred"; "Austin" |]

let cmps = [| Pred.Eq; Pred.Ne; Pred.Lt; Pred.Le; Pred.Gt; Pred.Ge |]

let gen_expr ~seed ~root_name =
  let rng = Prng.create seed in
  let coll, cls = Prng.pick rng roots in
  let expr = ref (Logical.get ~coll ~binding:root_name) in
  (* (binding, class) pairs whose fields are addressable *)
  let scope = ref [ (root_name, cls) ] in
  (* a Task's team members are references: unnest then materialize *)
  if cls = "Task" && Prng.bool rng then begin
    let m = root_name ^ "_m" and e = root_name ^ "_e" in
    expr :=
      !expr
      |> Logical.unnest ~out:m ~src:root_name ~field:"team_members"
      |> Logical.mat_ref ~out:e ~src:m;
    scope := (e, "Employee") :: !scope
  end;
  let random_atom () =
    let b, c = Prng.pick rng (Array.of_list !scope) in
    let f, ty = Prng.pick rng (Array.of_list (scalars_of c)) in
    let const =
      match ty with
      | `Int -> Pred.Const (Value.Int (Prng.int rng 200))
      | `Str -> Pred.Const (Value.Str (Prng.pick rng str_pool))
    in
    Pred.atom (Prng.pick rng cmps) (Pred.Field (b, f)) const
  in
  let mat_step () =
    let unused_refs =
      List.concat_map
        (fun (b, c) ->
          List.filter_map
            (fun (f, target) ->
              let out = b ^ "." ^ f in
              if List.mem_assoc out !scope then None else Some (b, f, out, target))
            (refs_of c))
        !scope
    in
    match unused_refs with
    | [] -> ()
    | refs ->
      let b, f, out, target = Prng.pick rng (Array.of_list refs) in
      expr := Logical.mat ~src:b ~field:f !expr;
      scope := (out, target) :: !scope
  in
  for _ = 1 to Prng.int rng 4 do mat_step () done;
  if Prng.bool rng then begin
    let atoms = List.init (1 + Prng.int rng 2) (fun _ -> random_atom ()) in
    expr := Logical.select atoms !expr
  end;
  for _ = 1 to Prng.int rng 2 do mat_step () done;
  if Prng.int rng 3 = 0 then begin
    let b, c = Prng.pick rng (Array.of_list !scope) in
    let f, _ = Prng.pick rng (Array.of_list (scalars_of c)) in
    expr :=
      Logical.project [ { Logical.p_expr = Pred.Field (b, f); p_name = b ^ "." ^ f } ] !expr
  end;
  !expr

let n_fuzz = 200
