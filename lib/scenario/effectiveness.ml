module Value = Oodb_storage.Value
module Catalog = Oodb_catalog.Catalog
module Cost = Oodb_cost.Cost
module Db = Oodb_exec.Db
module Executor = Oodb_exec.Executor
module Options = Open_oodb.Options
module Opt = Open_oodb.Optimizer
module Physprop = Open_oodb.Physprop
module Physical = Open_oodb.Physical
module Engine = Open_oodb.Model.Engine
module Irules = Open_oodb.Irules
module Enforcers = Open_oodb.Enforcers
module Verify = Oodb_verify.Verify
module Json = Oodb_util.Json

(* OptMark-style effectiveness scoring (Stillger & Spiliopoulou's idea
   of judging an optimizer by where its chosen plan ranks among real
   alternatives): sample structurally distinct plans from the final
   memo, execute every one of them on the simulated store, and report
   the chosen plan's rank and regret against the best sampled plan.
   [run_measured] resets the I/O statistics and flushes the buffer pool
   per execution, so the measured [simulated_seconds] are
   order-independent and deterministic. *)

type score = {
  s_query : string;
  s_alternatives : int;  (** executed plans, chosen included *)
  s_rank : int;  (** 1 = no sampled alternative was strictly faster *)
  s_regret : float;  (** chosen seconds / best sampled seconds, >= 1 *)
  s_chosen_seconds : float;
  s_best_seconds : float;
  s_row_mismatches : int;
      (** sampled plans whose row multiset differed from the chosen
          plan's — any nonzero value is an optimizer soundness bug *)
  s_why_not : Oodb_obs.Provenance.classification option;
      (** when regret > 1: why the best sampled plan's distinguishing
          operator is absent from the chosen plan — the actionable
          diagnosis behind the regret number *)
}

type report = {
  e_index : int;
  e_scores : score list;
  e_control : score option;
      (** the anchor lookup re-scored under corrupted statistics; a
          healthy memo keeps the index plan available, so this regret is
          expected to exceed 1 *)
}

(* ------------------------------------------------------------------ *)
(* Alternative-plan sampling from the memo *)

let take n l =
  let rec go n = function x :: tl when n > 0 -> x :: go (n - 1) tl | _ -> [] in
  go n l

let rec skeleton (p : Engine.plan) =
  Physical.to_string p.Engine.alg ^ "("
  ^ String.concat "," (List.map skeleton p.Engine.children)
  ^ ")"

let dedup_by_skeleton plans =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun p ->
      let k = skeleton p in
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.add seen k ();
        true
      end)
    plans

(* All orderings of child plans, capped: child plan lists are combined
   left to right, keeping at most [cap] partial combinations. *)
let combinations ~cap lists =
  List.fold_left
    (fun acc l -> take cap (List.concat_map (fun prefix -> List.map (fun x -> x :: prefix) l) acc))
    [ [] ] lists
  |> List.map List.rev

(* Enumerate plans for (group, required) the way the engine's search
   does — implementation-rule candidates whose delivered properties
   satisfy the goal, plus one enforcer layer — but keeping up to
   [per_goal] structurally distinct plans per goal instead of only the
   cheapest. Costs are rebuilt exactly as the engine does (local
   candidate cost plus children's subtree costs); enforcer plans deliver
   [required], mirroring the engine. *)
let sample_plans ?(per_goal = 12) ?(max_combos = 16) ?(max_depth = 64) outcome options cat
    required =
  let ctx = outcome.Opt.memo in
  let config = options.Options.config in
  let irules =
    List.filter
      (fun (ir : Engine.irule) -> not (List.mem ir.Engine.i_name options.Options.disabled))
      (Irules.all config cat)
  in
  let enforcers =
    List.filter
      (fun (en : Engine.enforcer) -> not (List.mem en.Engine.e_name options.Options.disabled))
      (Enforcers.all config cat)
  in
  (* Goal memo, like the engine's physical memo: (group, allow-enforcer)
     to per-required entries. An in-progress entry ([None]) marks a goal
     on the current recursion path — re-reaching it is a cycle through
     merged groups and contributes no plans. Finitely many goals exist
     (groups x candidate-required vectors), so recursion terminates. *)
  let memo : (int * bool, (Physprop.t * Engine.plan list option ref) list ref) Hashtbl.t =
    Hashtbl.create 64
  in
  let rec plans depth allow_enf g required =
    if depth > max_depth then []
    else begin
      let entries =
        match Hashtbl.find_opt memo (g, allow_enf) with
        | Some r -> r
        | None ->
          let r = ref [] in
          Hashtbl.add memo (g, allow_enf) r;
          r
      in
      match List.find_opt (fun (req, _) -> Physprop.equal req required) !entries with
      | Some (_, { contents = Some ps }) -> ps
      | Some (_, { contents = None }) -> []
      | None ->
        let cell = ref None in
        entries := (required, cell) :: !entries;
        let result = compute depth allow_enf g required in
        cell := Some result;
        result
    end
  and compute depth allow_enf g required =
    begin
      let from_rules =
        List.concat_map
          (fun mx ->
            List.concat_map
              (fun (ir : Engine.irule) ->
                List.concat_map
                  (fun (cand : Engine.candidate) ->
                    if
                      not
                        (Physprop.satisfies ~delivered:cand.Engine.cand_delivers ~required)
                    then []
                    else begin
                      let child_lists =
                        List.map
                          (fun (cg, creq) -> plans (depth + 1) true cg creq)
                          cand.Engine.cand_inputs
                      in
                      if List.exists (fun l -> l = []) child_lists then []
                      else
                        List.map
                          (fun children ->
                            { Engine.alg = cand.Engine.cand_alg;
                              children;
                              cost =
                                List.fold_left
                                  (fun acc (c : Engine.plan) -> Cost.add acc c.Engine.cost)
                                  cand.Engine.cand_cost children;
                              delivered = cand.Engine.cand_delivers })
                          (combinations ~cap:max_combos child_lists)
                    end)
                  (ir.Engine.i_apply ctx ~required mx))
              irules)
          (Engine.group_exprs ctx g)
      in
      let from_enforcers =
        if not allow_enf then []
        else
          List.concat_map
            (fun (en : Engine.enforcer) ->
              List.concat_map
                (fun (alg, weaker, ecost) ->
                  List.map
                    (fun (sub : Engine.plan) ->
                      { Engine.alg;
                        children = [ sub ];
                        cost = Cost.add ecost sub.Engine.cost;
                        delivered = required })
                    (plans (depth + 1) false g weaker))
                (en.Engine.e_apply ctx ~required g))
            enforcers
      in
      take per_goal (dedup_by_skeleton (from_rules @ from_enforcers))
    end
  in
  plans 0 true outcome.Opt.root required

(* ------------------------------------------------------------------ *)
(* Scoring *)

let score_zql_exn ~sample db options ~name ~zql =
  let cat = Db.catalog db in
  match Differential.compile cat zql with
  | Error e -> Error ("does not compile: " ^ e)
  | Ok (logical, required) -> (
    let outcome = Opt.optimize ~options ~required cat logical in
    match outcome.Opt.plan with
    | None -> Error "optimizer found no plan"
    | Some chosen ->
      let sampled = sample_plans ~per_goal:sample outcome options cat required in
      (* The chosen plan heads the list; statically broken samples
         (which would execute garbage) are dropped, not scored. Samples
         whose *estimated* cost exceeds [est_cap] times the chosen
         plan's estimate are dropped too: they are almost always raw
         cross products, each of which takes seconds of real executor
         time to confirm the obvious, and none of which can influence
         rank or regret (both only reward plans *faster* than the
         winner). The budget caps the estimate's *CPU* component: real
         execution time tracks tuples processed, which is what the CPU
         term prices, whereas the I/O term prices the simulated disk
         and is nearly free to execute. The floor keeps modestly bad
         alternatives scoreable even when the winner is a micro index
         scan; the relative term keeps everything the model could
         plausibly be wrong about. *)
      let est p = p.Engine.cost.Cost.cpu in
      let budget = Float.max (200.0 *. est chosen) 250.0 in
      let alternatives =
        dedup_by_skeleton (chosen :: sampled)
        |> List.filter (fun p -> Verify.plan ~required cat p = Ok ())
        |> List.filter (fun p -> p == chosen || est p <= budget)
        |> take sample
      in
      let timed =
        List.map
          (fun p ->
            let rows, rep = Executor.run_measured ~config:options.Options.config db p in
            (p, Differential.canon_rows rows, rep.Executor.simulated_seconds))
          alternatives
      in
      let _, chosen_rows, chosen_seconds = List.hd timed in
      let best_seconds =
        List.fold_left (fun acc (_, _, s) -> min acc s) chosen_seconds (List.tl timed)
      in
      let rank =
        1 + List.length (List.filter (fun (_, _, s) -> s < chosen_seconds) (List.tl timed))
      in
      let mismatches =
        List.length (List.filter (fun (_, rows, _) -> rows <> chosen_rows) (List.tl timed))
      in
      let regret =
        if best_seconds <= 0.0 then 1.0 else chosen_seconds /. best_seconds
      in
      (* Regret > 1 means a sampled plan beat the chosen one on measured
         seconds: diagnose it by asking why-not about the fastest
         alternative's distinguishing operator (topmost-first), turning
         the regret number into a rule/cost/prune story. *)
      let why_not =
        if regret <= 1.0 then None
        else
          let rec algs (p : Engine.plan) =
            p.Engine.alg :: List.concat_map algs p.Engine.children
          in
          let best_plan =
            List.fold_left
              (fun (bp, bs) (p, _, s) -> if s < bs then (p, s) else (bp, bs))
              (chosen, chosen_seconds) (List.tl timed)
            |> fst
          in
          let chosen_algs = algs chosen in
          let distinguishing =
            List.find_opt
              (fun a ->
                let shape = Oodb_obs.Provenance.shape_of_alg a in
                not (List.exists (Oodb_obs.Provenance.shape_matches shape) chosen_algs))
              (algs best_plan)
          in
          match distinguishing with
          | None -> None
          | Some a -> (
            let replay options = Opt.optimize ~options ~required cat logical in
            match
              Oodb_obs.Provenance.classify ~options ~replay outcome
                (Oodb_obs.Provenance.shape_of_alg a)
            with
            | Ok cl -> Some cl
            | Error _ -> None)
      in
      Ok
        { s_query = name;
          s_alternatives = List.length timed;
          s_rank = rank;
          s_regret = regret;
          s_chosen_seconds = chosen_seconds;
          s_best_seconds = best_seconds;
          s_row_mismatches = mismatches;
          s_why_not = why_not })

(* Engine exceptions while optimizing or running sampled plans are
   reported, not propagated — scoring rides on fuzzed inputs. *)
let score_zql ?(sample = 12) db options ~name ~zql =
  try score_zql_exn ~sample db options ~name ~zql
  with e -> Error ("exception: " ^ Printexc.to_string e)

let negative_control ?sample (sc : Scenario.t) =
  let db = Scenario.build_db ~corrupt:true sc in
  let lookup =
    List.find (fun (qc : Scenario.query_case) -> qc.Scenario.qc_name = "lookup")
      sc.Scenario.sc_queries
  in
  score_zql ?sample db Options.default ~name:"lookup-corrupt" ~zql:lookup.Scenario.qc_zql

let run ?sample (sc : Scenario.t) =
  let db = Scenario.build_db sc in
  let scores =
    List.filter_map
      (fun (qc : Scenario.query_case) ->
        match
          score_zql ?sample db Options.default ~name:qc.Scenario.qc_name
            ~zql:qc.Scenario.qc_zql
        with
        | Ok s -> Some s
        | Error _ -> None)
      sc.Scenario.sc_queries
  in
  let control = match negative_control ?sample sc with Ok s -> Some s | Error _ -> None in
  { e_index = sc.Scenario.sc_index; e_scores = scores; e_control = control }

(* ------------------------------------------------------------------ *)

let score_json s =
  Json.Obj
    [ ("query", Json.String s.s_query);
      ("alternatives", Json.Int s.s_alternatives);
      ("rank", Json.Int s.s_rank);
      ("regret", Json.float s.s_regret);
      ("chosen_seconds", Json.float s.s_chosen_seconds);
      ("best_seconds", Json.float s.s_best_seconds);
      ("row_mismatches", Json.Int s.s_row_mismatches);
      ( "why_not",
        match s.s_why_not with
        | None -> Json.Null
        | Some cl -> Oodb_obs.Provenance.classification_json cl ) ]

let report_json r =
  Json.Obj
    [ ("index", Json.Int r.e_index);
      ("scores", Json.List (List.map score_json r.e_scores));
      ( "control",
        match r.e_control with None -> Json.Null | Some s -> score_json s ) ]
