module Value = Oodb_storage.Value
module Catalog = Oodb_catalog.Catalog
module Db = Oodb_exec.Db
module Executor = Oodb_exec.Executor
module Options = Open_oodb.Options
module Opt = Open_oodb.Optimizer
module Physprop = Open_oodb.Physprop
module Engine = Open_oodb.Model.Engine
module Verify = Oodb_verify.Verify
module Plancache = Oodb_plancache.Plancache
module Feedback = Oodb_obs.Feedback
module Profile = Oodb_obs.Profile
module Json = Oodb_util.Json
module Ast = Zql.Ast

(* The differential harness: one query, many configurations that must
   not change its result. Every configuration's winner is statically
   verified (plan lint + memo-wide type check) and executed; row
   multisets are compared against the default configuration's. *)

type failure = {
  f_query : string;
  f_variant : string;
  f_detail : string;
  f_zql : string;  (** the query as generated *)
  f_shrunk_zql : string;  (** minimal still-failing simplification *)
}

type report = {
  d_index : int;
  d_queries : int;
  d_checks : int;  (** variant comparisons performed *)
  d_failures : failure list;
}

(* ------------------------------------------------------------------ *)
(* Row canonicalization (multiset compare, independent of delivery
   order — ORDER BY correctness is the sort enforcer's concern and is
   covered by plan lint) *)

let canon_rows rows =
  let canon_row row = List.sort (fun (a, _) (b, _) -> String.compare a b) row in
  rows |> List.map canon_row
  |> List.sort
       (List.compare (fun (k1, v1) (k2, v2) ->
            let c = String.compare k1 k2 in
            if c <> 0 then c else Value.compare v1 v2))

(* ------------------------------------------------------------------ *)
(* Variants *)

type kind =
  | V_options of Options.t
  | V_cache  (** cold then warm through a fresh plan cache *)
  | V_feedback  (** re-optimize after harvesting one profiled run *)
  | V_guided
      (** promise-ordered, cost-bounded search: the winner must cost
          {e exactly} what the exhaustive search's winner costs — guided
          mode changes how fast the winner is found, never which winner —
          and execute to the same rows *)

(* Only rules with overlapping coverage are toggled: disabling e.g.
   [file-scan] would leave groups with no implementation at all. *)
let toggle_candidates =
  [ "join-commute"; "join-assoc"; "collapse-index-scan"; "merge-join"; "pointer-join";
    "mat-to-join" ]

let variants () =
  let base = Options.default in
  [ ("batch-1", V_options (Options.with_batch_size 1 base));
    ("batch-64", V_options (Options.with_batch_size 64 base));
    ("no-pruning", V_options { base with Options.pruning = false });
    ("window-1", V_options (Options.with_assembly_window 1 base));
    ("guided", V_guided);
    ("cache-warm", V_cache);
    ("feedback", V_feedback) ]
  @ List.filter_map
      (fun r ->
        if List.mem r Options.rule_names then Some ("no-" ^ r, V_options (Options.disable r base))
        else None)
      toggle_candidates

let compile cat zql =
  match Zql.Simplify.compile_ordered cat zql with
  | Error e -> Error e
  | Ok c ->
    let required =
      match c.Zql.Simplify.c_order with
      | None -> Physprop.empty
      | Some (ord_binding, ord_field) ->
        { Physprop.empty with Physprop.order = Some { Physprop.ord_binding; ord_field } }
    in
    Ok (c.Zql.Simplify.c_logical, required)

(* Optimize under [options], statically verify the winner and its memo,
   execute, canonicalize. *)
let run_opt_exn db logical required options =
  let cat = Db.catalog db in
  let outcome = Opt.optimize ~options ~required cat logical in
  match outcome.Opt.plan with
  | None -> Error "optimizer found no plan"
  | Some plan -> (
    match Verify.plan ~required cat plan with
    | Error vs -> Error (Format.asprintf "plan lint: %a" Verify.pp_violations vs)
    | Ok () -> (
      match Verify.types cat outcome.Opt.memo with
      | Error (tv :: _) -> Error (Format.asprintf "memo types: %a" Verify.pp_typ_violation tv)
      | Error [] -> Error "memo types: unknown violation"
      | Ok () -> Ok (canon_rows (Executor.run ~config:options.Options.config db plan))))

(* Optimizer or executor exceptions (e.g. an engine [Type_violation])
   are findings, not harness crashes. *)
let run_opt db logical required options =
  try run_opt_exn db logical required options
  with e -> Error ("exception: " ^ Printexc.to_string e)

let describe_mismatch base rows =
  Printf.sprintf "row multisets differ: baseline %d rows, variant %d rows%s" (List.length base)
    (List.length rows)
    (if List.length base = List.length rows then " (same count, different contents)" else "")

(* One variant check against an already-computed baseline. Split out so
   the harness can amortize the baseline across all variants of a query
   (the optimizer run dominates, not execution). *)
let check_variant_exn db ~base logical required kind =
  let cat = Db.catalog db in
  (match kind with
      | V_options options -> (
        match run_opt db logical required options with
        | Error e -> Some e
        | Ok rows -> if rows = base then None else Some (describe_mismatch base rows))
      | V_cache -> (
        let pc = Plancache.create () in
        let exec outcome =
          match outcome.Plancache.plan with
          | None -> Error "plancache found no plan"
          | Some plan -> (
            match Verify.plan ~required cat plan with
            | Error vs -> Error (Format.asprintf "plan lint: %a" Verify.pp_violations vs)
            | Ok () -> Ok (canon_rows (Executor.run db plan)))
        in
        let cold = Plancache.optimize ~required pc cat logical in
        let warm = Plancache.optimize ~required pc cat logical in
        if cold.Plancache.cached then Some "first plan-cache lookup claimed a hit"
        else if not warm.Plancache.cached then Some "second plan-cache lookup missed"
        else
          match exec cold, exec warm with
          | Error e, _ -> Some ("cache-cold: " ^ e)
          | _, Error e -> Some ("cache-warm: " ^ e)
          | Ok r1, Ok r2 ->
            if r1 <> base then Some ("cache-cold: " ^ describe_mismatch base r1)
            else if r2 <> base then Some ("cache-warm: " ^ describe_mismatch base r2)
            else None)
      | V_guided -> (
        (* Winner-cost parity is the contract worth a dedicated variant:
           row parity alone would let a silently suboptimal guided
           search slip through (many plans produce the same rows). *)
        let module Cost = Oodb_cost.Cost in
        let exh = Opt.optimize ~required cat logical in
        let gui = Opt.optimize ~options:(Options.with_guided Options.default) ~required cat logical in
        match exh.Opt.plan, gui.Opt.plan with
        | None, None -> None
        | Some _, None -> Some "guided search found no plan where exhaustive did"
        | None, Some _ -> Some "guided search found a plan where exhaustive did not"
        | Some pe, Some pg -> (
          if Cost.compare pg.Engine.cost pe.Engine.cost <> 0 then
            Some
              (Format.asprintf "guided winner costs %a, exhaustive winner costs %a" Cost.pp
                 pg.Engine.cost Cost.pp pe.Engine.cost)
          else
            match Verify.plan ~required cat pg with
            | Error vs -> Some (Format.asprintf "plan lint: %a" Verify.pp_violations vs)
            | Ok () ->
              let rows = canon_rows (Executor.run db pg) in
              if rows = base then None else Some (describe_mismatch base rows)))
      | V_feedback -> (
        let outcome = Opt.optimize ~required cat logical in
        match outcome.Opt.plan with
        | None -> Some "optimizer found no plan"
        | Some plan ->
          let fb = Feedback.create cat in
          let config = Options.default.Options.config in
          let _rows, _report, node = Profile.run ~config db plan in
          let (_ : int) = Feedback.harvest fb config cat node in
          let options = Feedback.install fb Options.default in
          (match run_opt db logical required options with
          | Error e -> Some ("with feedback: " ^ e)
          | Ok rows -> if rows = base then None else Some (describe_mismatch base rows))))

let check_variant db ~base logical required kind =
  try check_variant_exn db ~base logical required kind
  with e -> Some ("exception: " ^ Printexc.to_string e)

(* The self-contained predicate the shrinker replays: compile, fresh
   baseline, then the variant check. *)
let variant_failure db kind zql =
  let cat = Db.catalog db in
  match compile cat zql with
  | Error e -> Some ("does not compile: " ^ e)
  | Ok (logical, required) -> (
    match run_opt db logical required Options.default with
    | Error e -> Some ("baseline: " ^ e)
    | Ok base -> check_variant db ~base logical required kind)

(* ------------------------------------------------------------------ *)
(* Shrinking: greedy descent over structural simplifications of the
   failing query, keeping any candidate that still fails the same
   variant. The database is held fixed — minimality is at the query
   level, which is where generated complexity lives. *)

let reconjoin = function
  | [] -> None
  | c :: cs -> Some (List.fold_left (fun a b -> Ast.And (a, b)) c cs)

let shrink_candidates (q : Ast.query) =
  let drop_setops =
    match q.Ast.q_setops with
    | [] -> []
    | branches ->
      { q with Ast.q_setops = [] }
      :: List.mapi (fun i _ -> { q with Ast.q_setops = List.filteri (fun j _ -> j <> i) branches })
           branches
  in
  let drop_order = if q.Ast.q_order <> None then [ { q with Ast.q_order = None } ] else [] in
  let drop_select = if q.Ast.q_select <> [] then [ { q with Ast.q_select = [] } ] else [] in
  let drop_conjuncts =
    match q.Ast.q_where with
    | None -> []
    | Some c ->
      let cs = Ast.conjuncts c in
      List.mapi
        (fun i _ -> { q with Ast.q_where = reconjoin (List.filteri (fun j _ -> j <> i) cs) })
        cs
  in
  drop_setops @ drop_order @ drop_select @ drop_conjuncts

let shrink db kind q =
  let still_fails q' =
    match Ast.to_zql q' with
    | exception Ast.Unprintable _ -> false
    | zql -> variant_failure db kind zql <> None
  in
  let rec go q =
    match List.find_opt still_fails (shrink_candidates q) with
    | Some q' -> go q'
    | None -> q
  in
  Ast.to_zql (go q)

(* ------------------------------------------------------------------ *)

let run (sc : Scenario.t) =
  let db = Scenario.build_db sc in
  let cat = Db.catalog db in
  let vs = variants () in
  let checks = ref 0 in
  let failures = ref [] in
  let fail qc vname detail kind =
    failures :=
      { f_query = qc.Scenario.qc_name;
        f_variant = vname;
        f_detail = detail;
        f_zql = qc.Scenario.qc_zql;
        f_shrunk_zql =
          (match kind with
          | None -> qc.Scenario.qc_zql
          | Some k -> shrink db k qc.Scenario.qc_ast) }
      :: !failures
  in
  List.iter
    (fun (qc : Scenario.query_case) ->
      (* the baseline is compiled, optimized and executed once per
         query; each variant then costs a single optimizer run *)
      incr checks;
      match compile cat qc.Scenario.qc_zql with
      | Error e -> fail qc "baseline" ("does not compile: " ^ e) None
      | Ok (logical, required) -> (
        match run_opt db logical required Options.default with
        | Error e -> fail qc "baseline" e None
        | Ok base ->
          List.iter
            (fun (vname, kind) ->
              incr checks;
              match check_variant db ~base logical required kind with
              | None -> ()
              | Some detail -> fail qc vname detail (Some kind))
            vs))
    sc.Scenario.sc_queries;
  { d_index = sc.Scenario.sc_index;
    d_queries = List.length sc.Scenario.sc_queries;
    d_checks = !checks;
    d_failures = List.rev !failures }

let failure_json f =
  Json.Obj
    [ ("query", Json.String f.f_query);
      ("variant", Json.String f.f_variant);
      ("detail", Json.String f.f_detail);
      ("zql", Json.String f.f_zql);
      ("shrunk_zql", Json.String f.f_shrunk_zql) ]

let report_json r =
  Json.Obj
    [ ("index", Json.Int r.d_index);
      ("queries", Json.Int r.d_queries);
      ("checks", Json.Int r.d_checks);
      ("failures", Json.List (List.map failure_json r.d_failures)) ]
