(** OptMark-style optimizer effectiveness scoring.

    For each query the final memo is re-walked to sample up to [sample]
    structurally distinct physical plans for the root goal (same
    implementation rules and enforcers the search used, but keeping many
    plans per (group, required) goal instead of only the cheapest).
    Every sampled plan is statically verified and executed on the
    simulated store under measured conditions (statistics reset, buffer
    pool flushed), and the chosen plan is scored by:

    - {b rank}: 1 + the number of sampled alternatives strictly faster
      (in simulated disk seconds) than the chosen plan;
    - {b regret}: chosen seconds / best sampled seconds, 1.0 when the
      optimizer's choice was (among the sample) optimal.

    The {e negative control} rebuilds the scenario database with
    corrupted anchor statistics ({!Scenario.build_db}[ ~corrupt:true]):
    the optimizer then prefers a file scan for the anchor lookup while
    the index plan remains in the memo, so a working scorer must report
    regret > 1 there. *)

type score = {
  s_query : string;
  s_alternatives : int;
  s_rank : int;
  s_regret : float;
  s_chosen_seconds : float;
  s_best_seconds : float;
  s_row_mismatches : int;
  s_why_not : Oodb_obs.Provenance.classification option;
      (** when regret > 1: the why-not classification of the best
          sampled plan's distinguishing operator (the topmost operator
          shape present in the fastest alternative but absent from the
          chosen plan) — was it never derived, derived but lost on
          estimated cost, or pruned? [None] when the chosen plan was
          (among the sample) optimal, when the plans differ only in
          shape arrangement, or when provenance was off. *)
}

type report = {
  e_index : int;
  e_scores : score list;
  e_control : score option;
}

val sample_plans :
  ?per_goal:int ->
  ?max_combos:int ->
  ?max_depth:int ->
  Open_oodb.Optimizer.outcome ->
  Open_oodb.Options.t ->
  Oodb_catalog.Catalog.t ->
  Open_oodb.Physprop.t ->
  Open_oodb.Model.Engine.plan list
(** Structurally distinct plans for the outcome's root group under the
    given required properties, deduplicated by plan skeleton. *)

val score_zql :
  ?sample:int -> Oodb_exec.Db.t -> Open_oodb.Options.t -> name:string -> zql:string ->
  (score, string) result

val negative_control : ?sample:int -> Scenario.t -> (score, string) result
(** Score the scenario's anchor lookup on the corrupted-statistics
    database. *)

val run : ?sample:int -> Scenario.t -> report

val score_json : score -> Oodb_util.Json.t

val report_json : report -> Oodb_util.Json.t
