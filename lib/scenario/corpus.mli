(** The shared fuzz population over the shipped (Table 1) workload
    schema: random well-formed logical expressions built by a seeded
    walk over the reference graph. One generator feeds the plan-cache
    fingerprint tests, the typed-algebra property tests and the
    vectorized-executor differential tests, so they all exercise the
    same query distribution.

    For fuzzing over {e generated} schemas — where the schema itself is
    random — see {!Scenario} and {!Querygen}, which go through the ZQL
    front end instead of building algebra directly. *)

val refs_of : string -> (string * string) list
(** Reference-valued fields of a workload class, with target classes. *)

val scalars_of : string -> (string * [ `Int | `Str ]) list
(** Scalar fields of a workload class usable in generated atoms. *)

val roots : (string * string) array
(** Scannable [(collection, class)] roots. *)

val str_pool : string array
(** String constants that actually occur in the generated data. *)

val cmps : Oodb_algebra.Pred.cmp array

val gen_expr : seed:int -> root_name:string -> Oodb_algebra.Logical.t
(** Deterministic: equal seeds yield equal expressions; the same seed
    with a different [root_name] yields an alpha-renamed variant (every
    derived binding name flows from the root), which is what the
    fingerprint tests rely on. *)

val n_fuzz : int
(** Default population size used by the in-tree fuzz suites. *)
