module Prng = Oodb_util.Prng
module Value = Oodb_storage.Value
module Schema = Oodb_catalog.Schema
module Json = Oodb_util.Json

type scalar =
  | F_int of int  (* values uniform in [0, n) *)
  | F_str of int  (* "w<i>" with i uniform in [0, n) *)
  | F_float
  | F_date
  | F_bool

type set_src =
  | S_inverse of { src_cls : string; ref_field : string }
  | S_random of int

type cls = {
  c_name : string;
  c_card : int;
  c_bytes : int;
  c_name_pool : int;  (* pool size of the "name" scalar *)
  c_scalars : (string * scalar) list;  (* includes ("name", F_str c_name_pool) *)
  c_refs : (string * string) list;  (* field -> target class, strictly earlier *)
  c_sets : (string * string * set_src) list;  (* field, element class, contents *)
}

type index =
  | I_field of { ix_name : string; ix_cls : string; ix_field : string }
  | I_path of { ix_name : string; ix_cls : string; ix_ref : string; ix_field : string }

type t = {
  g_classes : cls list;
  g_indexes : index list;
  g_anchor : string;
}

let coll_of cls = cls ^ "s"

let find_cls t name = List.find (fun c -> c.c_name = name) t.g_classes

let anchor_cls t = find_cls t t.g_anchor

(* Name pools kept deliberately small and boring: the point is the
   shape of the schema graph (fanout, depth, set-valued links), not the
   vocabulary. *)
let class_pool =
  [| "Part"; "Supplier"; "Order"; "Site"; "Agent"; "Folder"; "Doc"; "Team"; "Asset";
     "Route"; "Hub"; "Crate" |]

let ref_field_pool = [| "owner"; "site"; "link"; "peer" |]

let scalar_pool rng =
  [| ("rank", F_int (2 + Prng.int rng 14));
     ("size", F_int (10 + Prng.int rng 190));
     ("score", F_float);
     ("since", F_date);
     ("active", F_bool);
     ("tag", F_str (2 + Prng.int rng 6)) |]

(* One value of a scalar kind — shared by the data generator (stored
   fields) and the query generator (comparison literals), so generated
   predicates select with realistic, nonzero frequencies. *)
let value_of_scalar rng = function
  | F_int n -> Value.Int (Prng.int rng n)
  | F_str n -> Value.Str (Printf.sprintf "w%d" (Prng.int rng n))
  | F_float -> Value.Float (float_of_int (Prng.int rng 1000) /. 10.0)
  | F_date ->
    Value.Date
      (Value.date_of_ymd (1980 + Prng.int rng 40) (1 + Prng.int rng 12) (1 + Prng.int rng 28))
  | F_bool -> Value.Bool (Prng.bool rng)

let generate rng =
  let n = Prng.int_in rng 3 6 in
  let names =
    let pool = Array.copy class_pool in
    Prng.shuffle rng pool;
    Array.sub pool 0 n
  in
  let anchor = names.(n - 1) in
  let classes =
    Array.to_list
      (Array.init n (fun i ->
           let name = names.(i) in
           (* Cardinalities are sized so that even the worst sampled
              plan (a cross-product join order from the memo) executes
              in well under a second — effectiveness scoring runs every
              sampled alternative for real. *)
           let card =
             if name = anchor then Prng.int_in rng 60 100 else Prng.int_in rng 12 40
           in
           (* anchor names are near-unique so an equality lookup through
              its index touches ~1 object — the negative-control query *)
           let name_pool = if name = anchor then 2 * card else max 4 (card / 3) in
           let pool = scalar_pool rng in
           Prng.shuffle rng pool;
           let extra = Array.to_list (Array.sub pool 0 (2 + Prng.int rng 2)) in
           let refs =
             if i = 0 then []
             else begin
               let targets = Array.init i (fun j -> names.(j)) in
               Prng.shuffle rng targets;
               let k = Prng.int_in rng 1 (min 2 i) in
               List.init k (fun p -> (ref_field_pool.(p), targets.(p)))
             end
           in
           { c_name = name;
             c_card = card;
             c_bytes = 100 * (1 + Prng.int rng 4);
             c_name_pool = name_pool;
             c_scalars = ("name", F_str name_pool) :: extra;
             c_refs = refs;
             c_sets = [] }))
  in
  (* Second pass: set-valued fields. Inverse relationships hang the
     preimage of a reference on its target (wired after insertion, so
     they point "forward" to later classes); forward sets are random
     subsets of an earlier extent. *)
  let classes =
    List.map
      (fun c ->
        let inverses =
          List.concat_map
            (fun (src : cls) ->
              List.filter_map
                (fun (f, target) ->
                  if target = c.c_name && Prng.bool rng then
                    Some
                      ( Printf.sprintf "rev_%s_%s" (String.lowercase_ascii src.c_name) f,
                        src.c_name,
                        S_inverse { src_cls = src.c_name; ref_field = f } )
                  else None)
                src.c_refs)
            classes
        in
        let forward =
          if c.c_refs <> [] && Prng.int rng 3 = 0 then
            [ ("group", snd (List.hd c.c_refs), S_random (1 + Prng.int rng 4)) ]
          else []
        in
        { c with c_sets = inverses @ forward })
      classes
  in
  let spec = { g_classes = classes; g_indexes = []; g_anchor = anchor } in
  let indexes = ref [] in
  let have cls field =
    List.exists
      (function
        | I_field ix -> ix.ix_cls = cls && ix.ix_field = field
        | I_path _ -> false)
      !indexes
  in
  indexes :=
    [ I_field
        { ix_name = Printf.sprintf "ix_%s_name" (String.lowercase_ascii (coll_of anchor));
          ix_cls = anchor;
          ix_field = "name" } ];
  List.iter
    (fun c ->
      if Prng.int rng 3 = 0 then begin
        let f, _ = Prng.pick rng (Array.of_list c.c_scalars) in
        if not (have c.c_name f) then
          indexes :=
            I_field
              { ix_name =
                  Printf.sprintf "ix_%s_%s" (String.lowercase_ascii (coll_of c.c_name)) f;
                ix_cls = c.c_name;
                ix_field = f }
            :: !indexes
      end;
      match c.c_refs with
      | (rf, _target) :: _ when Prng.int rng 4 = 0 ->
        indexes :=
          I_path
            { ix_name =
                Printf.sprintf "ix_%s_%s_name" (String.lowercase_ascii (coll_of c.c_name)) rf;
              ix_cls = c.c_name;
              ix_ref = rf;
              ix_field = "name" }
          :: !indexes
      | _ -> ())
    classes;
  { spec with g_indexes = List.rev !indexes }

let attr_of_scalar = function
  | F_int _ -> Schema.Int
  | F_str _ -> Schema.String
  | F_float -> Schema.Float
  | F_date -> Schema.Date
  | F_bool -> Schema.Bool

let to_schema t =
  Schema.create
    (List.map
       (fun c ->
         { Schema.cl_name = c.c_name;
           cl_attrs =
             List.map (fun (f, k) -> { Schema.a_name = f; a_ty = attr_of_scalar k }) c.c_scalars
             @ List.map (fun (f, target) -> { Schema.a_name = f; a_ty = Schema.Ref target }) c.c_refs
             @ List.map
                 (fun (f, elem, _) ->
                   { Schema.a_name = f; a_ty = Schema.Set_of (Schema.Ref elem) })
                 c.c_sets })
       t.g_classes)

let scalar_json = function
  | F_int n -> Json.Obj [ ("kind", Json.String "int"); ("range", Json.Int n) ]
  | F_str n -> Json.Obj [ ("kind", Json.String "str"); ("pool", Json.Int n) ]
  | F_float -> Json.Obj [ ("kind", Json.String "float") ]
  | F_date -> Json.Obj [ ("kind", Json.String "date") ]
  | F_bool -> Json.Obj [ ("kind", Json.String "bool") ]

let index_json = function
  | I_field ix ->
    Json.Obj
      [ ("name", Json.String ix.ix_name); ("class", Json.String ix.ix_cls);
        ("path", Json.List [ Json.String ix.ix_field ]) ]
  | I_path ix ->
    Json.Obj
      [ ("name", Json.String ix.ix_name); ("class", Json.String ix.ix_cls);
        ("path", Json.List [ Json.String ix.ix_ref; Json.String ix.ix_field ]) ]

let to_json t =
  Json.Obj
    [ ("anchor", Json.String t.g_anchor);
      ( "classes",
        Json.List
          (List.map
             (fun c ->
               Json.Obj
                 [ ("name", Json.String c.c_name);
                   ("card", Json.Int c.c_card);
                   ("bytes", Json.Int c.c_bytes);
                   ( "scalars",
                     Json.Obj (List.map (fun (f, k) -> (f, scalar_json k)) c.c_scalars) );
                   ( "refs",
                     Json.Obj (List.map (fun (f, tgt) -> (f, Json.String tgt)) c.c_refs) );
                   ( "sets",
                     Json.Obj
                       (List.map
                          (fun (f, elem, src) ->
                            ( f,
                              Json.Obj
                                [ ("elem", Json.String elem);
                                  ( "src",
                                    Json.String
                                      (match src with
                                      | S_inverse i ->
                                        Printf.sprintf "inverse(%s.%s)" i.src_cls i.ref_field
                                      | S_random n -> Printf.sprintf "random(%d)" n) ) ] ))
                          c.c_sets) ) ])
             t.g_classes) );
      ("indexes", Json.List (List.map index_json t.g_indexes)) ]
