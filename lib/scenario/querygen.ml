module Prng = Oodb_util.Prng
module Value = Oodb_storage.Value
module Ast = Zql.Ast
module G = Schemagen

(* Queries are generated as ZQL abstract syntax and rendered to concrete
   text by the caller ([Ast.to_zql]), so the real lexer, parser and
   simplifier sit on every fuzz path. Construction keeps to the shapes
   the simplifier accepts: joins are reference-equality atoms
   ([v.ref == w]), set-valued ranges come from in-scope bindings, EXISTS
   subqueries always carry a correlating atom, and set-operation
   branches share FROM, SELECT and join atoms so they deliver identical
   scopes. *)

type range_info = { ri_var : string; ri_cls : G.cls }

let path root steps = { Ast.p_root = root; p_steps = steps; p_pos = Zql.Loc.none }

let var i = Printf.sprintf "v%d" i

let conj = function
  | [] -> None
  | c :: cs -> Some (List.fold_left (fun a b -> Ast.And (a, b)) c cs)

let range ri =
  { Ast.r_class = None;
    r_var = ri.ri_var;
    r_src = Ast.Coll (G.coll_of ri.ri_cls.G.c_name);
    r_pos = Zql.Loc.none }

(* Equality and inequality make sense for every kind; orderings only for
   kinds whose generated literals land inside the stored value range. *)
let cmp_for rng = function
  | G.F_bool | G.F_str _ -> if Prng.bool rng then Ast.Eq else Ast.Ne
  | G.F_int _ | G.F_float | G.F_date ->
    Prng.pick rng [| Ast.Eq; Ast.Ne; Ast.Lt; Ast.Le; Ast.Gt; Ast.Ge |]

let scalar_atom rng ri =
  let f, k = Prng.pick rng (Array.of_list ri.ri_cls.G.c_scalars) in
  Ast.Cmp (cmp_for rng k, Ast.Path (path ri.ri_var [ f ]), Ast.Lit (G.value_of_scalar rng k))

(* A predicate through one or two reference steps, exercising the
   simplifier's Mat introduction. *)
let deep_atom rng spec ri =
  match ri.ri_cls.G.c_refs with
  | [] -> None
  | refs ->
    let rf, target = Prng.pick rng (Array.of_list refs) in
    let tcls = G.find_cls spec target in
    let steps, final =
      match tcls.G.c_refs with
      | (rf2, target2) :: _ when Prng.bool rng -> ([ rf; rf2 ], G.find_cls spec target2)
      | _ -> ([ rf ], tcls)
    in
    let f, k = Prng.pick rng (Array.of_list final.G.c_scalars) in
    Some
      (Ast.Cmp
         ( cmp_for rng k,
           Ast.Path (path ri.ri_var (steps @ [ f ])),
           Ast.Lit (G.value_of_scalar rng k) ))

let join_atom src_ri rf dst_ri =
  Ast.Cmp (Ast.Eq, Ast.Path (path src_ri.ri_var [ rf ]), Ast.Path (path dst_ri.ri_var []))

(* Join candidates touching an in-scope range: outgoing references from
   its class, and incoming references from any class pointing at it. *)
let join_cands spec ris =
  List.concat_map
    (fun ri ->
      List.map (fun (rf, target) -> `Out (ri, rf, target)) ri.ri_cls.G.c_refs
      @ List.concat_map
          (fun c ->
            List.filter_map
              (fun (rf, t) -> if t = ri.ri_cls.G.c_name then Some (`In (ri, rf, c)) else None)
              c.G.c_refs)
          spec.G.g_classes)
    ris

let exists_atom rng spec outer =
  let x = "x" in
  let inner cls where =
    { Ast.q_select = [];
      q_from =
        [ { Ast.r_class = None;
            r_var = x;
            r_src = Ast.Coll (G.coll_of cls.G.c_name);
            r_pos = Zql.Loc.none } ];
      q_where = where;
      q_order = None;
      q_setops = [] }
  in
  let referrers =
    List.filter
      (fun c -> List.exists (fun (_, t) -> t = outer.ri_cls.G.c_name) c.G.c_refs)
      spec.G.g_classes
  in
  match referrers with
  | [] ->
    (* no reference correlation available; correlate on the (universal)
       name field instead *)
    let others = List.filter (fun c -> c.G.c_name <> outer.ri_cls.G.c_name) spec.G.g_classes in
    (match others with
    | [] -> None
    | _ ->
      let cls = Prng.pick rng (Array.of_list others) in
      let corr =
        Ast.Cmp (Ast.Eq, Ast.Path (path x [ "name" ]), Ast.Path (path outer.ri_var [ "name" ]))
      in
      Some (Ast.Exists (inner cls (Some corr))))
  | _ ->
    let cls = Prng.pick rng (Array.of_list referrers) in
    let rf, _ = List.find (fun (_, t) -> t = outer.ri_cls.G.c_name) cls.G.c_refs in
    let corr = Ast.Cmp (Ast.Eq, Ast.Path (path x [ rf ]), Ast.Path (path outer.ri_var [])) in
    let extra = if Prng.bool rng then [ scalar_atom rng { ri_var = x; ri_cls = cls } ] else [] in
    Some (Ast.Exists (inner cls (conj (corr :: extra))))

(* The anchor lookup: an indexed, near-unique equality probe. Also the
   query whose plan flips under corrupted statistics (the effectiveness
   negative control). *)
let lookup_query rng spec =
  let a = G.anchor_cls spec in
  let k = Prng.int rng a.G.c_name_pool in
  { Ast.q_select = [];
    q_from = [ range { ri_var = "a"; ri_cls = a } ];
    q_where =
      Some
        (Ast.Cmp
           ( Ast.Eq,
             Ast.Path (path "a" [ "name" ]),
             Ast.Lit (Value.Str (Printf.sprintf "w%d" k)) ));
    q_order = None;
    q_setops = [] }

(* A multi-way join rooted at the anchor, guaranteed to offer the memo
   enough physically distinct plans for effectiveness sampling. *)
let rich_query rng spec =
  let a = G.anchor_cls spec in
  let r0 = { ri_var = var 0; ri_cls = a } in
  let ranges = ref [ r0 ] in
  let atoms = ref [] in
  List.iter
    (fun (rf, target) ->
      let nri = { ri_var = var (List.length !ranges); ri_cls = G.find_cls spec target } in
      ranges := !ranges @ [ nri ];
      atoms := join_atom r0 rf nri :: !atoms)
    a.G.c_refs;
  (* single outgoing reference: lengthen the chain one more hop *)
  (if List.length !ranges < 3 then
     match !ranges with
     | _ :: nri :: _ -> (
       match nri.ri_cls.G.c_refs with
       | (rf, target) :: _ ->
         let mri = { ri_var = var (List.length !ranges); ri_cls = G.find_cls spec target } in
         ranges := !ranges @ [ mri ];
         atoms := join_atom nri rf mri :: !atoms
       | [] -> ())
     | _ -> ());
  let k = Prng.int rng a.G.c_name_pool in
  atoms :=
    Ast.Cmp
      (Ast.Eq, Ast.Path (path r0.ri_var [ "name" ]), Ast.Lit (Value.Str (Printf.sprintf "w%d" k)))
    :: !atoms;
  { Ast.q_select = [];
    q_from = List.map range !ranges;
    q_where = conj !atoms;
    q_order = None;
    q_setops = [] }

(* A [width]-way chain join: every added range is linked to the newest
   in-scope range by one reference-equality atom, zigzagging between
   outgoing and incoming references as the schema allows (classes may
   repeat — self-join chains are the point). The join-order search space
   then grows with [width] alone, which makes this the scaling knob for
   the wide-join benchmarks and the guided-search differential tests.
   Generated schemas always give the anchor class at least one outgoing
   reference, and any edge once used offers its reverse, so the chain
   always reaches the full width. *)
let join_chain_query ~width rng spec =
  let r0 = { ri_var = var 0; ri_cls = G.anchor_cls spec } in
  let ranges = ref [ r0 ] in
  let atoms = ref [] in
  let rec grow last =
    if List.length !ranges < width then
      match join_cands spec [ last ] with
      | [] -> ()
      | cands ->
        let i = List.length !ranges in
        let nri, atom =
          match Prng.pick rng (Array.of_list cands) with
          | `Out (ri, rf, target) ->
            let nri = { ri_var = var i; ri_cls = G.find_cls spec target } in
            (nri, join_atom ri rf nri)
          | `In (ri, rf, c) ->
            let nri = { ri_var = var i; ri_cls = c } in
            (nri, join_atom nri rf ri)
        in
        ranges := !ranges @ [ nri ];
        atoms := atom :: !atoms;
        grow nri
  in
  grow r0;
  { Ast.q_select = [];
    q_from = List.map range !ranges;
    q_where = conj (List.rev !atoms);
    q_order = None;
    q_setops = [] }

(* Set-operation branches must deliver identical scopes: identical FROM
   list, SELECT *, shared join atoms — only the depth-1 scalar
   predicates differ between branches. *)
let setop_query rng spec =
  let classes = Array.of_list spec.G.g_classes in
  let r0 = { ri_var = var 0; ri_cls = Prng.pick rng classes } in
  let ranges, shared =
    match join_cands spec [ r0 ] with
    | [] -> ([ r0 ], [])
    | cands when Prng.bool rng -> (
      match Prng.pick rng (Array.of_list cands) with
      | `Out (ri, rf, target) ->
        let r1 = { ri_var = var 1; ri_cls = G.find_cls spec target } in
        ([ r0; r1 ], [ join_atom ri rf r1 ])
      | `In (ri, rf, c) ->
        let r1 = { ri_var = var 1; ri_cls = c } in
        ([ r0; r1 ], [ join_atom r1 rf ri ]))
    | _ -> ([ r0 ], [])
  in
  let q_from = List.map range ranges in
  let branch () =
    let n = Prng.int_in rng 1 2 in
    let preds = List.init n (fun _ -> scalar_atom rng (Prng.pick rng (Array.of_list ranges))) in
    { Ast.q_select = [];
      q_from;
      q_where = conj (shared @ preds);
      q_order = None;
      q_setops = [] }
  in
  let head = branch () in
  let branches =
    List.init (Prng.int_in rng 1 2) (fun _ ->
        (Prng.pick rng [| Ast.Union; Ast.Intersect; Ast.Except |], branch ()))
  in
  { head with Ast.q_setops = branches }

let random_query rng spec =
  let classes = Array.of_list spec.G.g_classes in
  let r0 = { ri_var = var 0; ri_cls = Prng.pick rng classes } in
  let ranges = ref [ r0 ] in
  let atoms = ref [] in
  (* every added range comes with a join atom — no cross products *)
  for _ = 1 to Prng.int rng 3 do
    match join_cands spec !ranges with
    | [] -> ()
    | cands -> (
      let i = List.length !ranges in
      match Prng.pick rng (Array.of_list cands) with
      | `Out (ri, rf, target) ->
        let nri = { ri_var = var i; ri_cls = G.find_cls spec target } in
        ranges := !ranges @ [ nri ];
        atoms := join_atom ri rf nri :: !atoms
      | `In (ri, rf, c) ->
        let nri = { ri_var = var i; ri_cls = c } in
        ranges := !ranges @ [ nri ];
        atoms := join_atom nri rf ri :: !atoms)
  done;
  let set_cands =
    List.concat_map (fun ri -> List.map (fun (f, elem, _) -> (ri, f, elem)) ri.ri_cls.G.c_sets)
      !ranges
  in
  let unnest =
    if set_cands <> [] && Prng.int rng 3 = 0 then begin
      let ri, f, elem = Prng.pick rng (Array.of_list set_cands) in
      Some (ri, f, { ri_var = var (List.length !ranges); ri_cls = G.find_cls spec elem })
    end
    else None
  in
  let all_ris = !ranges @ (match unnest with Some (_, _, nri) -> [ nri ] | None -> []) in
  (* The transformation search space grows steeply with conjunct count
     (select-split subsets times push-down placements): measured on
     generated schemas, six conjuncts optimize in ~0.3-2.5s and seven in
     13-20s, with Mat-introducing deep predicates and EXISTS each
     costing about double a scalar. Queries stay under a fixed total
     weight — join atoms included — so a differential sweep over a dozen
     variants runs in seconds, not hours. *)
  let cap = 5 in
  let weight = ref (List.length !atoms) in
  let want_exists = Prng.int rng 4 = 0 && !weight + 2 <= cap in
  if want_exists then weight := !weight + 2;
  List.iter
    (fun ri ->
      for _ = 1 to Prng.int rng 3 do
        if !weight < cap then begin
          incr weight;
          atoms := scalar_atom rng ri :: !atoms
        end
      done;
      if !weight + 2 <= cap && Prng.int rng 4 = 0 then
        match deep_atom rng spec ri with
        | Some a ->
          weight := !weight + 2;
          atoms := a :: !atoms
        | None -> ())
    all_ris;
  if want_exists then begin
    let outer = Prng.pick rng (Array.of_list all_ris) in
    match exists_atom rng spec outer with Some a -> atoms := a :: !atoms | None -> ()
  end;
  let select =
    if Prng.bool rng then []
    else begin
      let items =
        List.init (Prng.int_in rng 1 2) (fun _ ->
            let ri = Prng.pick rng (Array.of_list all_ris) in
            let steps =
              if ri.ri_cls.G.c_refs <> [] && Prng.int rng 4 = 0 then begin
                let rf, _ = Prng.pick rng (Array.of_list ri.ri_cls.G.c_refs) in
                [ rf; "name" ]
              end
              else [ fst (Prng.pick rng (Array.of_list ri.ri_cls.G.c_scalars)) ]
            in
            (ri.ri_var, steps))
      in
      (* two draws can land on the same path, and duplicate output
         columns are ill-typed downstream *)
      List.sort_uniq compare items
      |> List.map (fun (v, steps) -> { Ast.si_expr = Ast.Path (path v steps); si_as = None })
    end
  in
  let order =
    if select = [] && Prng.int rng 4 = 0 then begin
      let ri = Prng.pick rng (Array.of_list all_ris) in
      let f, _ = Prng.pick rng (Array.of_list ri.ri_cls.G.c_scalars) in
      Some (path ri.ri_var [ f ])
    end
    else None
  in
  { Ast.q_select = select;
    q_from =
      List.map range !ranges
      @ (match unnest with
        | Some (ri, f, nri) ->
          [ { Ast.r_class = None;
              r_var = nri.ri_var;
              r_src = Ast.Set_path (path ri.ri_var [ f ]);
              r_pos = Zql.Loc.none } ]
        | None -> []);
    q_where = conj !atoms;
    q_order = order;
    q_setops = [] }

let n_random = 3

let generate ?join_width rng cat spec =
  (* Every emitted query must simplify: the catalog is the authority on
     what a well-formed query is, so check here and retry rather than
     ship a generator bug to every downstream harness. Retries draw from
     the same stream, so generation stays deterministic. *)
  let checked name mk =
    let rec go attempts =
      let q = mk () in
      match Zql.Simplify.query_ordered cat q with
      | Ok _ -> q
      | Error e ->
        if attempts = 0 then
          failwith (Printf.sprintf "querygen: %s never simplified: %s" name e)
        else go (attempts - 1)
    in
    (name, go 8)
  in
  let fixed =
    checked "lookup" (fun () -> lookup_query rng spec)
    :: checked "rich" (fun () -> rich_query rng spec)
    :: checked "setop" (fun () -> setop_query rng spec)
    :: List.init n_random (fun i ->
           checked (Printf.sprintf "rand%d" i) (fun () -> random_query rng spec))
  in
  (* The wide chain is appended, never interleaved, so the default query
     set for a given (seed, index) is bit-identical with the knob off. *)
  match join_width with
  | Some width when width >= 2 ->
    fixed @ [ checked "wide" (fun () -> join_chain_query ~width rng spec) ]
  | _ -> fixed
