module Prng = Oodb_util.Prng
module Value = Oodb_storage.Value
module Store = Oodb_storage.Store
module Catalog = Oodb_catalog.Catalog
module Db = Oodb_exec.Db
module Datagen = Oodb_workloads.Datagen
module Json = Oodb_util.Json
module Ast = Zql.Ast
module G = Schemagen

type query_case = { qc_name : string; qc_ast : Ast.query; qc_zql : string }

type t = {
  sc_seed : int;
  sc_index : int;
  sc_schema : G.t;
  sc_queries : query_case list;
}

(* Per-scenario streams are derived from (seed, index), never from a
   shared stream, so scenario [i] of [--scenarios 100] is bit-identical
   to scenario [i] of [--scenarios 10]: prefix stability. *)
let rng_for ~seed ~index = Prng.create ((seed * 1_000_003) + index)

(* The data builder draws from its own stream (salted), so the stored
   objects do not depend on how many random draws query generation
   happened to make. *)
let data_rng_for ~seed ~index = Prng.create (((seed * 1_000_003) + index) lxor 0x0da7a)

let base_catalog spec =
  let cat = Catalog.create (G.to_schema spec) in
  List.iter
    (fun (c : G.cls) ->
      Catalog.add_collection cat
        { Catalog.co_name = G.coll_of c.G.c_name;
          co_class = c.G.c_name;
          co_kind = Catalog.Extent;
          co_card = c.G.c_card;
          co_obj_bytes = c.G.c_bytes })
    spec.G.g_classes;
  cat

let generate ?join_width ~seed ~index () =
  let rng = rng_for ~seed ~index in
  let schema = G.generate rng in
  let cat = base_catalog schema in
  let queries =
    List.map
      (fun (name, ast) -> { qc_name = name; qc_ast = ast; qc_zql = Ast.to_zql ast })
      (Querygen.generate ?join_width rng cat schema)
  in
  { sc_seed = seed; sc_index = index; sc_schema = schema; sc_queries = queries }

let build_db ?(corrupt = false) t =
  let spec = t.sc_schema in
  let rng = data_rng_for ~seed:t.sc_seed ~index:t.sc_index in
  let store = Store.create ~buffer_pages:256 () in
  List.iter
    (fun (c : G.cls) ->
      Store.declare_collection store ~name:(G.coll_of c.G.c_name) ~cls:c.G.c_name
        ~obj_bytes:c.G.c_bytes)
    spec.G.g_classes;
  (* Classes are inserted in declaration order; references point only at
     earlier classes, so every Ref resolves at insertion time. Inverse
     sets are left empty here and wired below, once their source class's
     references exist. *)
  let oids : (string, Value.oid array) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (c : G.cls) ->
      let coll = G.coll_of c.G.c_name in
      let arr =
        Array.init c.G.c_card (fun _ ->
            let scalars = List.map (fun (f, k) -> (f, G.value_of_scalar rng k)) c.G.c_scalars in
            let refs =
              List.map
                (fun (f, target) ->
                  let tgt = Hashtbl.find oids (G.coll_of target) in
                  (f, Value.Ref tgt.(Prng.int rng (Array.length tgt))))
                c.G.c_refs
            in
            let sets =
              List.map
                (fun (f, elem, src) ->
                  match src with
                  | G.S_inverse _ -> (f, Value.Set [])
                  | G.S_random n ->
                    let tgt = Hashtbl.find oids (G.coll_of elem) in
                    ( f,
                      Value.Set
                        (List.init (Prng.int rng (n + 1)) (fun _ ->
                             Value.Ref tgt.(Prng.int rng (Array.length tgt)))) ))
                c.G.c_sets
            in
            Store.insert store ~coll (scalars @ refs @ sets))
      in
      Hashtbl.add oids coll arr)
    spec.G.g_classes;
  (* wire inverse relationships: rev_X_f on a target collects exactly
     the X objects whose f references it *)
  List.iter
    (fun (c : G.cls) ->
      List.iter
        (fun (f, _elem, src) ->
          match src with
          | G.S_random _ -> ()
          | G.S_inverse { src_cls; ref_field } ->
            let members : (Value.oid, Value.oid list) Hashtbl.t = Hashtbl.create 64 in
            Array.iter
              (fun soid ->
                let o = Store.peek store soid in
                match Store.field o ref_field with
                | Value.Ref tgt ->
                  let prev = try Hashtbl.find members tgt with Not_found -> [] in
                  Hashtbl.replace members tgt (soid :: prev)
                | _ -> ())
              (Hashtbl.find oids (G.coll_of src_cls));
            Array.iter
              (fun toid ->
                let srcs = try List.rev (Hashtbl.find members toid) with Not_found -> [] in
                Store.set_field store toid f (Value.Set (List.map (fun o -> Value.Ref o) srcs)))
              (Hashtbl.find oids (G.coll_of c.G.c_name)))
        c.G.c_sets)
    spec.G.g_classes;
  let cat = base_catalog spec in
  let db = Db.create cat store in
  List.iter
    (fun (c : G.cls) ->
      let coll = G.coll_of c.G.c_name in
      List.iter
        (fun f ->
          Catalog.set_distinct cat ~cls:c.G.c_name ~field:f
            (Datagen.measured_distinct store ~coll ~field:f))
        (List.map fst c.G.c_scalars @ List.map fst c.G.c_refs);
      List.iter
        (fun (f, _, _) ->
          Catalog.set_avg_set_size cat ~cls:c.G.c_name ~field:f
            (Datagen.measured_avg_set_size store ~coll ~field:f))
        c.G.c_sets)
    spec.G.g_classes;
  List.iter
    (function
      | G.I_field ix ->
        Datagen.add_field_index store db cat ~name:ix.ix_name ~coll:(G.coll_of ix.ix_cls)
          ~field:ix.ix_field
      | G.I_path ix ->
        Datagen.add_path_index store db cat ~name:ix.ix_name ~coll:(G.coll_of ix.ix_cls)
          ~ref_field:ix.ix_ref ~field:ix.ix_field)
    spec.G.g_indexes;
  if corrupt then begin
    (* The negative control: claim the anchor's near-unique name field
       has only 2 distinct values (the generate_skewed pattern). The
       optimizer then prices the name lookup at selectivity 1/2 and
       keeps the file scan; the index plan stays in the memo, so
       effectiveness scoring observes regret > 1. *)
    let a = G.anchor_cls spec in
    Catalog.set_distinct cat ~cls:a.G.c_name ~field:"name" 2;
    match Catalog.find_index cat ~coll:(G.coll_of a.G.c_name) ~path:[ "name" ] with
    | Some ix ->
      Catalog.drop_index cat ix.Catalog.ix_name;
      Catalog.add_index cat { ix with Catalog.ix_distinct = 2 }
    | None -> ()
  end;
  db

let to_json t =
  Json.Obj
    [ ("seed", Json.Int t.sc_seed);
      ("index", Json.Int t.sc_index);
      ("schema", G.to_json t.sc_schema);
      ( "queries",
        Json.List
          (List.map
             (fun q ->
               Json.Obj [ ("name", Json.String q.qc_name); ("zql", Json.String q.qc_zql) ])
             t.sc_queries) ) ]

let digest ?db t =
  let db = match db with Some db -> db | None -> build_db t in
  let store = Db.store db in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Json.to_string (to_json t));
  Buffer.add_string buf (Digest.to_hex (Catalog.digest (Db.catalog db)));
  List.iter
    (fun (c : G.cls) ->
      List.iter
        (fun oid ->
          let o = Store.peek store oid in
          Array.iter
            (fun (f, v) -> Buffer.add_string buf (Printf.sprintf "%s=%s;" f (Value.to_string v)))
            o.Store.fields)
        (Store.oids store ~coll:(G.coll_of c.G.c_name)))
    t.sc_schema.G.g_classes;
  Digest.to_hex (Digest.string (Buffer.contents buf))
