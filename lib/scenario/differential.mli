(** Differential fuzzing over a scenario: every query is compiled from
    its ZQL {e text} (so the lexer/parser/simplifier are on the path),
    optimized and executed under the default configuration, then
    re-optimized and re-executed under each variant configuration —
    batch sizes 1 and 64, pruning off, assembly window 1, guided
    (promise-ordered, cost-bounded) search, individual rule toggles, a
    cold-then-warm plan cache, and a feedback-harvesting round trip.
    The guided variant additionally demands winner-{e cost} equality
    with the exhaustive search, not just row parity. Every winner passes
    {!Oodb_verify.Verify.plan}; every memo passes
    {!Oodb_verify.Verify.types}; every variant's row multiset must equal
    the baseline's.

    A failing (query, variant) pair is shrunk greedily — dropping
    set-operation branches, ORDER BY, projections and WHERE conjuncts
    while the failure reproduces — to a minimal ZQL counterexample. *)

type failure = {
  f_query : string;
  f_variant : string;
  f_detail : string;
  f_zql : string;
  f_shrunk_zql : string;
}

type report = {
  d_index : int;
  d_queries : int;
  d_checks : int;
  d_failures : failure list;
}

type kind =
  | V_options of Open_oodb.Options.t
  | V_cache
  | V_feedback
  | V_guided
      (** promise-ordered, cost-bounded search: winner cost must equal
          the exhaustive winner's exactly, and rows must match *)

val variants : unit -> (string * kind) list

val compile :
  Oodb_catalog.Catalog.t ->
  string ->
  (Oodb_algebra.Logical.t * Open_oodb.Physprop.t, string) result
(** ZQL text to (logical expression, required physical properties),
    through the real lexer/parser/simplifier; an ORDER BY becomes a
    required sort-order property. *)

val variant_failure : Oodb_exec.Db.t -> kind -> string -> string option
(** [Some detail] when optimizing/executing the ZQL text under the
    variant disagrees with the default configuration (or either side
    fails verification). The predicate the shrinker replays. *)

val canon_rows : Oodb_exec.Executor.row list -> Oodb_exec.Executor.row list
(** Multiset canonical form: fields sorted within rows, rows sorted. *)

val shrink_candidates : Zql.Ast.query -> Zql.Ast.query list
(** One-step structural simplifications of a query (fewer set-operation
    branches, no ORDER BY, no projection, one conjunct fewer) — the
    moves the greedy shrinker descends through. *)

val run : Scenario.t -> report
(** Build the scenario's database and check every query against every
    variant. *)

val report_json : report -> Oodb_util.Json.t
