(** A scenario: one generated schema, its synthetic database and index
    configuration, and a set of ZQL queries over it — everything the
    differential harness ({!Differential}) and effectiveness scorer
    ({!Effectiveness}) need, derived deterministically from
    [(seed, index)].

    Determinism contract: {!generate} is a pure function of [seed] and
    [index] (scenario streams are independent, so generating scenarios
    [0..9] yields the same first ten scenarios as generating [0..99]),
    and {!build_db} is a pure function of the scenario; {!digest}
    witnesses both. *)

type query_case = {
  qc_name : string;  (** [lookup], [rich], [setop], [rand0]... *)
  qc_ast : Zql.Ast.query;
  qc_zql : string;  (** [Zql.Ast.to_zql qc_ast] — what harnesses compile *)
}

type t = {
  sc_seed : int;
  sc_index : int;
  sc_schema : Schemagen.t;
  sc_queries : query_case list;
}

val generate : ?join_width:int -> seed:int -> index:int -> unit -> t
(** [join_width] (>= 2) appends a [wide] chain-join query to the fixed
    mix (see {!Querygen.generate}); with the knob off the scenario is
    bit-identical to what earlier versions generated. *)

val base_catalog : Schemagen.t -> Oodb_catalog.Catalog.t
(** Catalog with the spec's collections but no measured statistics or
    indexes — enough for the simplifier, used to validate queries during
    generation. *)

val build_db : ?corrupt:bool -> t -> Oodb_exec.Db.t
(** Fresh store + catalog (measured statistics) + physical indexes for
    the scenario. [corrupt] additionally skews the anchor class's
    [name] statistics (class distinct and index [ix_distinct]) down to
    2, the {!Oodb_workloads.Datagen.generate_skewed} pattern — the
    effectiveness negative control. *)

val digest : ?db:Oodb_exec.Db.t -> t -> string
(** Hex digest covering the schema, every query's ZQL text, the catalog
    digest and a full dump of the stored objects. Equal digests mean
    equal optimizer inputs end to end. Builds the database unless one is
    passed in. *)

val to_json : t -> Oodb_util.Json.t
