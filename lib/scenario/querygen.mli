(** Random ZQL queries over a generated schema ({!Schemagen.t}).

    Each scenario gets a fixed mix: an indexed anchor [lookup], a
    multi-way anchor-rooted [rich] join (the effectiveness-sampling
    workhorse), a [setop] query (UNION/INTERSECT/EXCEPT with
    scope-identical branches), and {!n_random} free-form queries that
    may mix joins in both reference directions, set-valued ranges, deep
    path predicates, correlated EXISTS subqueries, projections and ORDER
    BY. All queries are returned as abstract syntax; callers render them
    with {!Zql.Ast.to_zql} so the concrete lexer/parser sit on the fuzz
    path. *)

val lookup_query : Oodb_util.Prng.t -> Schemagen.t -> Zql.Ast.query

val rich_query : Oodb_util.Prng.t -> Schemagen.t -> Zql.Ast.query

val setop_query : Oodb_util.Prng.t -> Schemagen.t -> Zql.Ast.query

val random_query : Oodb_util.Prng.t -> Schemagen.t -> Zql.Ast.query

val join_chain_query : width:int -> Oodb_util.Prng.t -> Schemagen.t -> Zql.Ast.query
(** A [width]-way chain of reference-equality joins rooted at the anchor
    class, zigzagging between outgoing and incoming references (classes
    may repeat). The join-order search space grows with [width] alone —
    the scaling knob for wide-join benchmarks and guided-search tests. *)

val n_random : int

val generate :
  ?join_width:int ->
  Oodb_util.Prng.t ->
  Oodb_catalog.Catalog.t ->
  Schemagen.t ->
  (string * Zql.Ast.query) list
(** The per-scenario query set, each validated against the catalog by
    running the real simplifier (rejected draws are retried from the
    same stream, so output is still a pure function of the generator
    state). [join_width] (>= 2) appends one extra [wide] query built by
    {!join_chain_query}; it is appended after the fixed mix, so the
    default set for a given generator state is unchanged when the knob
    is off.

    @raise Failure if a query shape repeatedly fails to simplify —
    a generator bug, not an input condition. *)
