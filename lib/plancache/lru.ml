type 'v node = {
  nkey : string;
  mutable nval : 'v;
  mutable prev : 'v node option; (* toward MRU *)
  mutable next : 'v node option; (* toward LRU *)
}

type 'v t = {
  cap : int;
  tbl : (string, 'v node) Hashtbl.t;
  mutable head : 'v node option; (* MRU *)
  mutable tail : 'v node option; (* LRU *)
  mutable hits : int;
  mutable misses : int;
  mutable insertions : int;
  mutable evictions : int;
}

type counters = { hits : int; misses : int; insertions : int; evictions : int }

let create ~capacity =
  if capacity < 1 then invalid_arg "Lru.create: capacity must be >= 1";
  { cap = capacity;
    tbl = Hashtbl.create (2 * capacity);
    head = None;
    tail = None;
    hits = 0;
    misses = 0;
    insertions = 0;
    evictions = 0 }

let capacity t = t.cap

let length t = Hashtbl.length t.tbl

let counters (t : _ t) =
  { hits = t.hits; misses = t.misses; insertions = t.insertions; evictions = t.evictions }

let unlink t n =
  (match n.prev with None -> t.head <- n.next | Some p -> p.next <- n.next);
  (match n.next with None -> t.tail <- n.prev | Some s -> s.prev <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  n.prev <- None;
  (match t.head with None -> t.tail <- Some n | Some h -> h.prev <- Some n);
  t.head <- Some n

let promote t n =
  if t.head != Some n then begin
    unlink t n;
    push_front t n
  end

let find t key =
  match Hashtbl.find_opt t.tbl key with
  | None ->
    t.misses <- t.misses + 1;
    None
  | Some n ->
    t.hits <- t.hits + 1;
    promote t n;
    Some n.nval

let mem t key = Hashtbl.mem t.tbl key

let peek t key = Option.map (fun n -> n.nval) (Hashtbl.find_opt t.tbl key)

let update t key f =
  match Hashtbl.find_opt t.tbl key with
  | None -> ()
  | Some n -> n.nval <- f n.nval

let evict_lru t =
  match t.tail with
  | None -> None
  | Some n ->
    unlink t n;
    Hashtbl.remove t.tbl n.nkey;
    t.evictions <- t.evictions + 1;
    Some n.nkey

let add t key v =
  match Hashtbl.find_opt t.tbl key with
  | Some n ->
    n.nval <- v;
    promote t n;
    None
  | None ->
    let evicted = if length t >= t.cap then evict_lru t else None in
    let n = { nkey = key; nval = v; prev = None; next = None } in
    Hashtbl.add t.tbl key n;
    push_front t n;
    t.insertions <- t.insertions + 1;
    evicted

let remove t key =
  match Hashtbl.find_opt t.tbl key with
  | None -> ()
  | Some n ->
    unlink t n;
    Hashtbl.remove t.tbl key

let clear t =
  Hashtbl.reset t.tbl;
  t.head <- None;
  t.tail <- None

let items t =
  let rec walk acc = function
    | None -> List.rev acc
    | Some n -> walk ((n.nkey, n.nval) :: acc) n.next
  in
  walk [] t.head
