module Logical = Oodb_algebra.Logical
module Pred = Oodb_algebra.Pred
module Value = Oodb_storage.Value
module Catalog = Oodb_catalog.Catalog
module Options = Open_oodb.Options
module Physprop = Open_oodb.Physprop
module Config = Oodb_cost.Config

(* ------------------------------------------------------------------ *)
(* Alpha-renaming                                                       *)

(* Canonical names are assigned in introduction order: a post-order walk
   visits each operator after its inputs, which is exactly the order
   bindings enter scope (Get at the leaves, Mat/Unnest above their
   input). Well-formed expressions introduce every binding once. *)
let renaming expr =
  let tbl = Hashtbl.create 16 in
  let n = ref 0 in
  let intro b =
    if not (Hashtbl.mem tbl b) then begin
      Hashtbl.add tbl b (Printf.sprintf "$%d" !n);
      incr n
    end
  in
  let rec walk t =
    List.iter walk t.Logical.inputs;
    match t.Logical.op with
    | Logical.Get { binding; _ } -> intro binding
    | Logical.Mat { out; _ } -> intro out
    | Logical.Unnest { out; _ } -> intro out
    | Logical.Select _ | Logical.Project _ | Logical.Join _ | Logical.Cross | Logical.Union
    | Logical.Intersect | Logical.Difference ->
      ()
  in
  walk expr;
  fun b -> match Hashtbl.find_opt tbl b with Some c -> c | None -> b

(* Orient each (renamed) atom so the smaller operand sits on the left,
   then sort the conjunction: conjunct order and operand mirroring are
   semantically irrelevant, so they must not split cache entries. *)
let canon_pred rename pred =
  Pred.rename rename pred
  |> List.map (fun (a : Pred.atom) ->
         if Stdlib.compare a.Pred.lhs a.Pred.rhs <= 0 then a
         else { Pred.cmp = Pred.flip a.Pred.cmp; lhs = a.Pred.rhs; rhs = a.Pred.lhs })
  |> List.sort Stdlib.compare

let canon_proj rename (p : Logical.proj) =
  let p_name =
    (* default-derived output names follow the binding renaming;
       explicit aliases name result columns and stay verbatim *)
    match p.Logical.p_expr with
    | Pred.Field (b, f) when p.Logical.p_name = b ^ "." ^ f -> rename b ^ "." ^ f
    | Pred.Self b when p.Logical.p_name = b -> rename b
    | Pred.Field _ | Pred.Self _ | Pred.Const _ -> p.Logical.p_name
  in
  let p_expr =
    match p.Logical.p_expr with
    | Pred.Const v -> Pred.Const v
    | Pred.Field (b, f) -> Pred.Field (rename b, f)
    | Pred.Self b -> Pred.Self (rename b)
  in
  { Logical.p_expr; p_name }

let canon_op rename = function
  | Logical.Get { coll; binding } -> Logical.Get { coll; binding = rename binding }
  | Logical.Select pred -> Logical.Select (canon_pred rename pred)
  | Logical.Project ps -> Logical.Project (List.map (canon_proj rename) ps)
  | Logical.Join pred -> Logical.Join (canon_pred rename pred)
  | Logical.Cross -> Logical.Cross
  | Logical.Mat { src; field; out } -> Logical.Mat { src = rename src; field; out = rename out }
  | Logical.Unnest { src; field; out } ->
    Logical.Unnest { src = rename src; field; out = rename out }
  | Logical.Union -> Logical.Union
  | Logical.Intersect -> Logical.Intersect
  | Logical.Difference -> Logical.Difference

let canonical expr =
  let rename = renaming expr in
  let rec rewrite t =
    { Logical.op = canon_op rename t.Logical.op; inputs = List.map rewrite t.Logical.inputs }
  in
  rewrite expr

(* ------------------------------------------------------------------ *)
(* Structural serialization                                             *)

(* Tagged, parenthesized and %S-escaped: distinct canonical trees
   serialize to distinct strings (the pretty-printer is for humans and
   not quite injective — [Str "1"] and [Int 1] both render as something
   readable; here they carry different tags). *)

let emit_value buf (v : Value.t) =
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let rec go = function
    | Value.Null -> add "null"
    | Value.Bool b -> add "bool:%b" b
    | Value.Int i -> add "int:%d" i
    | Value.Float f -> add "float:%h" f
    | Value.Str s -> add "str:%S" s
    | Value.Date d -> add "date:%d" d
    | Value.Ref oid -> add "ref:%d" oid
    | Value.Set vs ->
      add "set[";
      List.iter
        (fun v ->
          go v;
          add ";")
        vs;
      add "]"
  in
  go v

let emit_operand buf = function
  | Pred.Const v ->
    Buffer.add_string buf "const ";
    emit_value buf v
  | Pred.Field (b, f) -> Printf.ksprintf (Buffer.add_string buf) "field %S %S" b f
  | Pred.Self b -> Printf.ksprintf (Buffer.add_string buf) "self %S" b

let cmp_tag = function
  | Pred.Eq -> "eq"
  | Pred.Ne -> "ne"
  | Pred.Lt -> "lt"
  | Pred.Le -> "le"
  | Pred.Gt -> "gt"
  | Pred.Ge -> "ge"

let emit_pred buf pred =
  Buffer.add_char buf '[';
  List.iter
    (fun (a : Pred.atom) ->
      Buffer.add_char buf '(';
      Buffer.add_string buf (cmp_tag a.Pred.cmp);
      Buffer.add_char buf ' ';
      emit_operand buf a.Pred.lhs;
      Buffer.add_char buf ' ';
      emit_operand buf a.Pred.rhs;
      Buffer.add_char buf ')')
    pred;
  Buffer.add_char buf ']'

let emit_op buf op =
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  match op with
  | Logical.Get { coll; binding } -> add "get %S %S" coll binding
  | Logical.Select pred ->
    add "select ";
    emit_pred buf pred
  | Logical.Project ps ->
    add "project";
    List.iter
      (fun (p : Logical.proj) ->
        add " (%S " p.Logical.p_name;
        emit_operand buf p.Logical.p_expr;
        add ")")
      ps
  | Logical.Join pred ->
    add "join ";
    emit_pred buf pred
  | Logical.Cross -> add "cross"
  | Logical.Mat { src; field; out } ->
    add "mat %S %s %S" src
      (match field with Some f -> Printf.sprintf "(%S)" f | None -> "()")
      out
  | Logical.Unnest { src; field; out } -> add "unnest %S %S %S" src field out
  | Logical.Union -> add "union"
  | Logical.Intersect -> add "intersect"
  | Logical.Difference -> add "difference"

let rec emit_expr buf t =
  Buffer.add_char buf '(';
  emit_op buf t.Logical.op;
  List.iter
    (fun i ->
      Buffer.add_char buf ' ';
      emit_expr buf i)
    t.Logical.inputs;
  Buffer.add_char buf ')'

let emit_required buf rename (p : Physprop.t) =
  Buffer.add_string buf "required{mem:";
  (* sort after renaming: the set iterates in original-name order, which
     would leak the original spelling into the key *)
  Physprop.Bset.elements p.Physprop.in_memory
  |> List.map rename
  |> List.sort String.compare
  |> List.iter (fun b -> Printf.ksprintf (Buffer.add_string buf) "%S;" b);
  (match p.Physprop.order with
  | None -> Buffer.add_string buf "|order:none"
  | Some { Physprop.ord_binding; ord_field } ->
    Printf.ksprintf (Buffer.add_string buf) "|order:%S.%s" (rename ord_binding)
      (match ord_field with Some f -> Printf.sprintf "%S" f | None -> "self"));
  Buffer.add_char buf '}'

(* Every option that can change the chosen plan. [verify] only checks
   the winner, [cache] is meta, and [guided] changes how fast the winner
   is found but never which winner (bound propagation only skips
   provably dominated work), so none of those split entries. *)
let emit_options buf (o : Options.t) =
  let c = o.Options.config in
  Printf.ksprintf (Buffer.add_string buf)
    "options{config:%d,%h,%h,%h,%d,%h,%h,%d,%h,%h,%d,%d,%h,%h|disabled:%s|pruning:%b|normalize:%b}"
    c.Config.page_bytes c.Config.seq_io c.Config.rand_io c.Config.asm_io_floor
    c.Config.assembly_window c.Config.cpu_tuple c.Config.cpu_call c.Config.batch_size
    c.Config.cpu_pred c.Config.cpu_hash
    c.Config.memory_bytes c.Config.buffer_pages c.Config.default_selectivity
    c.Config.range_selectivity
    (String.concat ","
       (List.sort_uniq String.compare (List.map String.escaped o.Options.disabled)))
    o.Options.pruning o.Options.normalize

let key ~catalog ~options ~required expr =
  let buf = Buffer.create 512 in
  let rename = renaming expr in
  emit_expr buf (canonical expr);
  Buffer.add_char buf '|';
  emit_required buf rename required;
  Buffer.add_char buf '|';
  Printf.ksprintf (Buffer.add_string buf) "catalog{epoch:%d|digest:%s}"
    (Catalog.epoch catalog)
    (Digest.to_hex (Catalog.digest catalog));
  Buffer.add_char buf '|';
  emit_options buf options;
  Buffer.contents buf

type t = Digest.t

let make ~catalog ~options ~required expr =
  Digest.string (key ~catalog ~options ~required expr)

let equal (a : t) (b : t) = String.equal a b

let compare (a : t) (b : t) = String.compare a b

let hash (t : t) = Hashtbl.hash t

let to_hex = Digest.to_hex

let pp ppf t = Format.pp_print_string ppf (to_hex t)
