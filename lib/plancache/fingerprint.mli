(** Canonical plan-cache fingerprints.

    A fingerprint identifies everything that determines the optimizer's
    output: the logical expression, the required physical properties,
    the catalog state (epoch counter {e and} content digest, so
    fingerprints are stable across processes and stale the moment
    statistics change), and every option that can alter plan choice
    (cost-model configuration, disabled rules, pruning, normalization).

    The expression enters the fingerprint in a {e canonical} form:
    binding scopes are alpha-renamed to ["$0", "$1", ...] in
    introduction order, predicate atoms are oriented and sorted, and
    default-derived projection names follow the renaming — so
    syntactically distinct but equivalent ZQL spellings (different
    binding names, reordered conjuncts) hit the same cache entry.
    Explicit [as]-aliases in projections are preserved verbatim: they
    name output columns, which are part of the result. *)

module Logical = Oodb_algebra.Logical
module Catalog = Oodb_catalog.Catalog

type t

val make :
  catalog:Catalog.t ->
  options:Open_oodb.Options.t ->
  required:Open_oodb.Physprop.t ->
  Logical.t ->
  t

val equal : t -> t -> bool

val compare : t -> t -> int

val hash : t -> int

val to_hex : t -> string
(** 32-character lowercase hex of the fingerprint's MD5 — usable as a
    file name. *)

val pp : Format.formatter -> t -> unit

(** {1 Canonicalization internals} (exposed for tests and diagnostics) *)

val canonical : Logical.t -> Logical.t
(** The alpha-renamed, predicate-sorted form the fingerprint hashes. Two
    expressions have equal fingerprints under equal catalogs, options
    and required properties iff their canonical forms are equal. *)

val key :
  catalog:Catalog.t ->
  options:Open_oodb.Options.t ->
  required:Open_oodb.Physprop.t ->
  Logical.t ->
  string
(** The full pre-digest canonical key string — what {!make} hashes. *)
