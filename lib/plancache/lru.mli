(** Bounded LRU map with string keys.

    A plain doubly-linked recency list over a hash table: [find]
    promotes to most-recently-used, [add] evicts the least-recently-used
    entry once the capacity is reached. Instrumented with monotone
    hit/miss/insertion/eviction counters so callers can report cache
    effectiveness without wrapping every operation. *)

type 'v t

val create : capacity:int -> 'v t
(** @raise Invalid_argument when [capacity < 1]. *)

val capacity : 'v t -> int

val length : 'v t -> int

val find : 'v t -> string -> 'v option
(** Promotes the entry to most-recently-used; counts a hit or a miss. *)

val mem : 'v t -> string -> bool
(** No promotion, no counter update. *)

val peek : 'v t -> string -> 'v option
(** Like {!find} but with no promotion and no counter update — for
    bookkeeping reads that must not perturb recency or hit/miss stats. *)

val update : 'v t -> string -> ('v -> 'v) -> unit
(** Replace the value in place (no promotion, no counters); no-op when
    the key is absent. *)

val add : 'v t -> string -> 'v -> string option
(** Insert or replace (either way the entry becomes most-recently-used);
    returns the key evicted to make room, if any. Replacement never
    evicts. *)

val remove : 'v t -> string -> unit

val clear : 'v t -> unit
(** Drops all entries; counters are preserved (they are lifetime totals). *)

type counters = { hits : int; misses : int; insertions : int; evictions : int }

val counters : 'v t -> counters

val items : 'v t -> (string * 'v) list
(** Most-recently-used first; for tests and diagnostics. *)
