(** Bounded, fingerprint-keyed plan cache with optional disk
    persistence, plus cache-aware optimizer entry points.

    The cache stores winning physical plans (with their cost and the
    producing search's statistics) under {!Fingerprint} keys. Because a
    fingerprint covers the catalog epoch and content digest and every
    plan-relevant option, invalidation is automatic: refreshing
    statistics, editing the schema, toggling a rule or changing the cost
    model changes the key, so stale entries can never be served — they
    simply age out of the LRU.

    Two tiers: a bounded in-memory LRU always; below it, when [dir] is
    given (or [OODB_PLANCACHE_DIR] is set for {!of_env}), a directory of
    marshalled entries that survives process restarts. Disk reads are
    verified (format tag + fingerprint echo) and fall back to a cold
    optimization on any mismatch or corruption. *)

module Engine = Open_oodb.Model.Engine
module Catalog = Oodb_catalog.Catalog
module Logical = Oodb_algebra.Logical
module Options = Open_oodb.Options
module Physprop = Open_oodb.Physprop
module Metrics = Oodb_obs.Metrics
module Json = Oodb_util.Json

type t

val create : ?capacity:int -> ?dir:string -> unit -> t
(** [capacity] bounds the in-memory tier (default 256 entries). [dir] —
    created if missing — enables the persistent tier. *)

val of_env : ?capacity:int -> unit -> t
(** {!create} with [dir] taken from the [OODB_PLANCACHE_DIR] environment
    variable when set and non-empty; purely in-memory otherwise. This is
    what the test suite uses, so CI can run it twice — without and with
    a persisted cache directory — to catch cache-state leakage. *)

val dir : t -> string option

(** {1 Cache inspection} *)

type stats = {
  hits : int;  (** lookups served (memory or disk) *)
  misses : int;  (** lookups that went to a cold optimization *)
  insertions : int;
  evictions : int;  (** in-memory LRU evictions (disk entries persist) *)
  disk_hits : int;  (** subset of [hits] that came from the disk tier *)
  disk_rejects : int;
      (** disk entries rejected by validation (e.g. the plan no longer
          typechecks against the current catalog); each is deleted and
          counted as a miss *)
  qerror_evictions : int;
      (** entries evicted by the plan-quality gate: their recorded max
          q-error exceeded the limit passed to {!lookup} *)
  entries : int;
  capacity : int;
}

val stats : t -> stats

val stats_json : stats -> Json.t

val clear : t -> unit
(** Empty the in-memory tier (counters and disk entries persist). *)

(** {1 Entries} *)

type quality = {
  q_execs : int;  (** profiled executions recorded for this plan *)
  q_max_qerror : float;  (** worst per-node q-error over all executions *)
  q_mean_qerror : float;  (** mean of per-execution mean q-errors *)
  q_last_epoch : int;  (** catalog epoch at the latest recorded execution *)
}
(** How well a cached plan's estimates matched reality when it actually
    ran — the record the q-error gate ({!lookup}'s [qerror_limit])
    judges. *)

type entry = {
  e_fingerprint : string;  (** hex of the key it was stored under *)
  e_plan : Engine.plan option;
  e_stats : Engine.stats;  (** statistics of the cold search that produced it *)
  e_quality : quality option;  (** accumulated by {!note_execution} *)
}

val lookup :
  ?validate:(entry -> bool) ->
  ?qerror_limit:float ->
  t ->
  Fingerprint.t ->
  entry option
(** Memory first, then disk (a disk hit is promoted into memory).
    [validate] guards the disk tier only: a disk entry that fails it is
    deleted and the lookup degrades to a miss. The cache-aware entry
    points pass a plan-lint check against the current catalog, so a
    stale directory (schema drift, dropped index) cannot resurrect a
    plan that no longer typechecks.

    [qerror_limit] guards {e both} tiers: an entry whose recorded
    [q_max_qerror] exceeds it is evicted from memory and disk and the
    lookup misses, so the caller re-plans — with corrected statistics
    when runtime feedback is installed. Counted in
    {!stats.qerror_evictions}. *)

val insert : t -> Fingerprint.t -> entry -> unit

val note_execution :
  t -> Fingerprint.t -> epoch:int -> max_qerror:float -> mean_qerror:float -> unit
(** Fold one profiled execution's plan quality into the entry's record,
    in memory and (when persistent) on disk, without promoting the entry
    or touching hit/miss counters. No-op when the fingerprint is not
    cached. *)

val quality_json : quality -> Json.t

val entries : t -> entry list
(** In-memory entries, most recently used first. *)

(** {1 Cache-aware optimization} *)

type outcome = {
  plan : Engine.plan option;
  stats : Engine.stats;  (** of the producing search — cached or fresh *)
  opt_seconds : float;  (** this call: fingerprint + lookup, or cold search *)
  cached : bool;
}

val optimize :
  ?options:Options.t ->
  ?required:Physprop.t ->
  ?qerror_limit:float ->
  ?registry:Metrics.t ->
  ?spans:Oodb_obs.Span.t ->
  t ->
  Catalog.t ->
  Logical.t ->
  outcome
(** [Optimizer.optimize] behind the cache: fingerprint, serve on hit,
    optimize cold and insert on miss. When [options.cache] is off, the
    cache is bypassed entirely (always cold, nothing stored). A hit
    re-derives nothing — no well-formedness re-check, no logical
    properties, no rules. When [registry] is given, increments
    [plancache/hit], [plancache/miss], [plancache/insert],
    [plancache/eviction], [plancache/disk_hit], [plancache/bypass],
    [plancache/qerror_eviction] and [plancache/derivations] (one per logical-property derivation, i.e.
    per memo group created — zero on hits), and records the time to a
    hit/miss verdict in the [plancache/lookup_seconds] histogram.
    [spans] wraps fingerprinting and the lookup (category
    ["plancache"]) and is passed on to the cold search. *)

val optimize_all :
  ?options:Options.t ->
  ?required:Physprop.t ->
  ?qerror_limit:float ->
  ?registry:Metrics.t ->
  ?spans:Oodb_obs.Span.t ->
  t ->
  Catalog.t ->
  Logical.t list ->
  outcome list
(** The multi-query entry point: cache hits are served individually and
    all misses are optimized together by [Optimizer.optimize_batch]
    against one shared memo, then inserted. With [registry], also
    records [plancache/mqo/roots] (cold roots batched) and
    [plancache/mqo/groups] (final shared-memo group count). *)
