module Engine = Open_oodb.Model.Engine
module Optimizer = Open_oodb.Optimizer
module Catalog = Oodb_catalog.Catalog
module Logical = Oodb_algebra.Logical
module Options = Open_oodb.Options
module Physprop = Open_oodb.Physprop
module Metrics = Oodb_obs.Metrics
module Span = Oodb_obs.Span
module Json = Oodb_util.Json

type quality = {
  q_execs : int;
  q_max_qerror : float;
  q_mean_qerror : float;
  q_last_epoch : int;
}

type entry = {
  e_fingerprint : string;
  e_plan : Engine.plan option;
  e_stats : Engine.stats;
  e_quality : quality option;
}

type t = {
  mem : entry Lru.t;
  cache_dir : string option;
  mutable disk_hits : int;
  mutable disk_rejects : int;
  mutable qerror_evictions : int;
}

let default_capacity = 256

let rec mkdirs d =
  if not (Sys.file_exists d) then begin
    mkdirs (Filename.dirname d);
    try Sys.mkdir d 0o755 with Sys_error _ -> ()
  end

let create ?(capacity = default_capacity) ?dir () =
  Option.iter mkdirs dir;
  { mem = Lru.create ~capacity;
    cache_dir = dir;
    disk_hits = 0;
    disk_rejects = 0;
    qerror_evictions = 0 }

let of_env ?capacity () =
  match Sys.getenv_opt "OODB_PLANCACHE_DIR" with
  | Some d when d <> "" -> create ?capacity ~dir:d ()
  | Some _ | None -> create ?capacity ()

let dir t = t.cache_dir

(* ------------------------------------------------------------------ *)
(* Disk tier                                                           *)

(* A persisted entry is [(magic, entry)] marshalled; readers demand the
   magic and that the entry echoes the fingerprint it is filed under, so
   a renamed, truncated or old-format file degrades to a miss. Plans and
   stats are pure data (no closures), which is what makes Marshal safe
   here — the memo [ctx] is not, and is deliberately not cached. *)
(* v3: Engine.stats gained pruned_candidates/pruned_subgoals, changing
   the marshalled entry layout; v2 files degrade to misses. *)
let magic = "oodb-plancache-v3"

let entry_path d hex = Filename.concat d (hex ^ ".plan")

let disk_read d hex =
  let path = entry_path d hex in
  if not (Sys.file_exists path) then None
  else
    try
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let tag, (e : entry) = (Marshal.from_channel ic : string * entry) in
          if String.equal tag magic && String.equal e.e_fingerprint hex then Some e else None)
    with _ -> None

(* Best-effort: a full disk or read-only directory must not fail the
   query, so IO errors are swallowed and the entry just stays in memory. *)
let disk_write d hex e =
  let path = entry_path d hex in
  let tmp = path ^ ".tmp" in
  try
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> Marshal.to_channel oc (magic, e) []);
    Sys.rename tmp path
  with _ -> ( try Sys.remove tmp with _ -> ())

(* ------------------------------------------------------------------ *)
(* Lookup / insert                                                     *)

(* [validate] guards the disk tier only: in-memory entries were produced
   (and plan-linted) by this process, but a disk entry may predate a
   catalog or format change, so a validation failure deletes the file
   and degrades to a miss.

   [qerror_limit] guards both tiers: an entry whose recorded quality
   shows a worse max q-error was mispriced badly enough that serving it
   again just repeats the mistake — evict it everywhere so the caller
   re-plans (with corrected statistics, when feedback is installed). *)
let lookup ?(validate = fun _ -> true) ?qerror_limit t fp =
  let hex = Fingerprint.to_hex fp in
  let over e =
    match qerror_limit, e.e_quality with
    | Some limit, Some q -> q.q_max_qerror > limit
    | _ -> false
  in
  let qerror_evict ~count_miss =
    Lru.remove t.mem hex;
    (* with the entry gone this counts the miss the eviction behaves as
       (skipped on the disk path, where [find] above already missed) *)
    if count_miss then ignore (Lru.find t.mem hex : entry option);
    Option.iter
      (fun d -> try Sys.remove (entry_path d hex) with Sys_error _ -> ())
      t.cache_dir;
    t.qerror_evictions <- t.qerror_evictions + 1;
    None
  in
  (* Quality-gate the memory tier with a counter-free peek first, so a
     gated eviction registers as the miss it behaves as, not a hit. *)
  match Lru.peek t.mem hex with
  | Some e when over e -> qerror_evict ~count_miss:true
  | _ -> (
    match Lru.find t.mem hex with
    | Some e -> Some e
    | None -> (
    match t.cache_dir with
    | None -> None
    | Some d -> (
      match disk_read d hex with
      | None -> None
      | Some e ->
        if not (validate e) then begin
          t.disk_rejects <- t.disk_rejects + 1;
          (try Sys.remove (entry_path d hex) with Sys_error _ -> ());
          None
        end
        else if over e then qerror_evict ~count_miss:false
        else begin
          t.disk_hits <- t.disk_hits + 1;
          ignore (Lru.add t.mem hex e : string option);
          Some e
        end)))

let insert_counting t fp e =
  let hex = Fingerprint.to_hex fp in
  let e = { e with e_fingerprint = hex } in
  let evicted = Lru.add t.mem hex e in
  Option.iter (fun d -> disk_write d hex e) t.cache_dir;
  evicted

let insert t fp e = ignore (insert_counting t fp e : string option)

(* ------------------------------------------------------------------ *)
(* Plan quality                                                         *)

let merge_quality epoch ~max_qerror ~mean_qerror = function
  | None ->
    { q_execs = 1;
      q_max_qerror = max_qerror;
      q_mean_qerror = mean_qerror;
      q_last_epoch = epoch }
  | Some q ->
    let n = float_of_int q.q_execs in
    { q_execs = q.q_execs + 1;
      q_max_qerror = Float.max q.q_max_qerror max_qerror;
      q_mean_qerror = ((q.q_mean_qerror *. n) +. mean_qerror) /. (n +. 1.);
      q_last_epoch = epoch }

let note_execution t fp ~epoch ~max_qerror ~mean_qerror =
  let hex = Fingerprint.to_hex fp in
  let updated e =
    { e with
      e_quality = Some (merge_quality epoch ~max_qerror ~mean_qerror e.e_quality) }
  in
  match Lru.peek t.mem hex with
  | Some e ->
    let e = updated e in
    Lru.update t.mem hex (fun _ -> e);
    Option.iter (fun d -> disk_write d hex e) t.cache_dir
  | None -> (
    (* Not resident (evicted, or a fresh process with only the disk
       tier): update the persisted copy in place without promoting it. *)
    match t.cache_dir with
    | None -> ()
    | Some d -> (
      match disk_read d hex with
      | None -> ()
      | Some e -> disk_write d hex (updated e)))

let quality_json q =
  Json.Obj
    [ ("executions", Json.Int q.q_execs);
      ("max_qerror", Json.float q.q_max_qerror);
      ("mean_qerror", Json.float q.q_mean_qerror);
      ("last_validated_epoch", Json.Int q.q_last_epoch) ]

let entries t = List.map snd (Lru.items t.mem)

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)

type stats = {
  hits : int;
  misses : int;
  insertions : int;
  evictions : int;
  disk_hits : int;
  disk_rejects : int;
  qerror_evictions : int;
  entries : int;
  capacity : int;
}

(* Every disk hit first registered as an in-memory miss, so the served /
   cold split is [mem.hits + disk_hits] vs [mem.misses - disk_hits]. *)
let stats t =
  let c = Lru.counters t.mem in
  { hits = c.Lru.hits + t.disk_hits;
    misses = c.Lru.misses - t.disk_hits;
    insertions = c.Lru.insertions;
    evictions = c.Lru.evictions;
    disk_hits = t.disk_hits;
    disk_rejects = t.disk_rejects;
    qerror_evictions = t.qerror_evictions;
    entries = Lru.length t.mem;
    capacity = Lru.capacity t.mem }

let stats_json s =
  Json.Obj
    [ ("hits", Json.Int s.hits);
      ("misses", Json.Int s.misses);
      ("insertions", Json.Int s.insertions);
      ("evictions", Json.Int s.evictions);
      ("disk_hits", Json.Int s.disk_hits);
      ("disk_rejects", Json.Int s.disk_rejects);
      ("qerror_evictions", Json.Int s.qerror_evictions);
      ("entries", Json.Int s.entries);
      ("capacity", Json.Int s.capacity) ]

let clear t = Lru.clear t.mem

(* ------------------------------------------------------------------ *)
(* Cache-aware optimization                                            *)

type outcome = {
  plan : Engine.plan option;
  stats : Engine.stats;
  opt_seconds : float;
  cached : bool;
}

(* [Group_created] fires exactly once per memo group, and creating a
   group is the only point the engine derives logical properties — so
   this counter is the per-call derivation count the regression tests
   assert on (zero on a cache hit, which skips the engine entirely). *)
let derivation_sink registry (ev : Engine.event) =
  match ev with
  | Engine.Group_created _ -> Metrics.incr registry "plancache/derivations"
  | _ -> ()

let mincr registry name =
  match registry with None -> () | Some r -> Metrics.incr r name

let mhist registry name v =
  match registry with None -> () | Some r -> Metrics.observe_hist r name v

let trace_of registry = Option.map derivation_sink registry

let outcome_of_cold (o : Optimizer.outcome) =
  { plan = o.Optimizer.plan;
    stats = o.Optimizer.stats;
    opt_seconds = o.Optimizer.opt_seconds;
    cached = false }

let entry_of_cold hex (o : Optimizer.outcome) =
  { e_fingerprint = hex;
    e_plan = o.Optimizer.plan;
    e_stats = o.Optimizer.stats;
    e_quality = None }

(* A disk-tier plan must still typecheck against the current catalog
   (plan lint re-derives every operator's bindings and fields): the
   cache directory can outlive a schema or index change the fingerprint
   did not capture. *)
let entry_typechecks cat e =
  match e.e_plan with
  | None -> true
  | Some p -> ( match Open_oodb.Planlint.plan cat p with Ok () -> true | Error _ -> false)

let optimize ?(options = Options.default) ?(required = Physprop.empty) ?qerror_limit
    ?registry ?spans (t : t) cat expr =
  if not options.Options.cache then begin
    mincr registry "plancache/bypass";
    outcome_of_cold
      (Optimizer.optimize ~options ~required ?trace:(trace_of registry) ?spans cat expr)
  end
  else begin
    let t0 = Sys.time () in
    let disk_before = t.disk_hits in
    let rejects_before = t.disk_rejects in
    let qevict_before = t.qerror_evictions in
    let fp =
      Span.with_span spans ~cat:"plancache" "fingerprint" (fun () ->
          Fingerprint.make ~catalog:cat ~options ~required expr)
    in
    let found =
      Span.with_span spans ~cat:"plancache" "cache-lookup" (fun () ->
          lookup ~validate:(entry_typechecks cat) ?qerror_limit t fp)
    in
    (* Latency to a hit/miss verdict: fingerprinting plus both tiers. *)
    mhist registry "plancache/lookup_seconds" (Sys.time () -. t0);
    if t.disk_rejects > rejects_before then mincr registry "plancache/disk_reject";
    if t.qerror_evictions > qevict_before then
      mincr registry "plancache/qerror_eviction";
    match found with
    | Some e ->
      mincr registry "plancache/hit";
      if t.disk_hits > disk_before then mincr registry "plancache/disk_hit";
      { plan = e.e_plan; stats = e.e_stats; opt_seconds = Sys.time () -. t0; cached = true }
    | None ->
      mincr registry "plancache/miss";
      let cold =
        Optimizer.optimize ~options ~required ?trace:(trace_of registry) ?spans cat expr
      in
      let evicted = insert_counting t fp (entry_of_cold (Fingerprint.to_hex fp) cold) in
      mincr registry "plancache/insert";
      if Option.is_some evicted then mincr registry "plancache/eviction";
      { (outcome_of_cold cold) with opt_seconds = Sys.time () -. t0 }
  end

let optimize_all ?(options = Options.default) ?(required = Physprop.empty) ?qerror_limit
    ?registry ?spans (t : t) cat qs =
  if not options.Options.cache then begin
    List.iter (fun _ -> mincr registry "plancache/bypass") qs;
    List.map outcome_of_cold
      (Optimizer.optimize_all ~options ~required ?trace:(trace_of registry) ?spans cat qs)
  end
  else begin
    (* Serve hits individually; batch every miss through one shared memo
       (memo-level MQO), then fill results back in input order. *)
    let n = List.length qs in
    let results : outcome option array = Array.make n None in
    let misses =
      List.concat
        (List.mapi
           (fun i q ->
             let t0 = Sys.time () in
             let fp =
               Span.with_span spans ~cat:"plancache" "fingerprint" (fun () ->
                   Fingerprint.make ~catalog:cat ~options ~required q)
             in
             let rejects_before = t.disk_rejects in
             let qevict_before = t.qerror_evictions in
             let found =
               Span.with_span spans ~cat:"plancache" "cache-lookup" (fun () ->
                   lookup ~validate:(entry_typechecks cat) ?qerror_limit t fp)
             in
             mhist registry "plancache/lookup_seconds" (Sys.time () -. t0);
             if t.disk_rejects > rejects_before then
               mincr registry "plancache/disk_reject";
             if t.qerror_evictions > qevict_before then
               mincr registry "plancache/qerror_eviction";
             match found with
             | Some e ->
               mincr registry "plancache/hit";
               results.(i) <-
                 Some
                   { plan = e.e_plan;
                     stats = e.e_stats;
                     opt_seconds = Sys.time () -. t0;
                     cached = true };
               []
             | None ->
               mincr registry "plancache/miss";
               [ (i, q, fp, Sys.time () -. t0) ])
           qs)
    in
    (match misses with
    | [] -> ()
    | _ :: _ ->
      let batch =
        Optimizer.optimize_batch ~options ?trace:(trace_of registry) ?spans cat
          (List.map (fun (_, q, _, _) -> (q, required)) misses)
      in
      List.iter2
        (fun (i, _q, fp, lookup_seconds) (o : Optimizer.outcome) ->
          let evicted = insert_counting t fp (entry_of_cold (Fingerprint.to_hex fp) o) in
          mincr registry "plancache/insert";
          if Option.is_some evicted then mincr registry "plancache/eviction";
          results.(i) <-
            Some { (outcome_of_cold o) with opt_seconds = lookup_seconds +. o.Optimizer.opt_seconds })
        misses batch;
      (match registry with
      | None -> ()
      | Some r ->
        Metrics.incr ~by:(List.length misses) r "plancache/mqo/roots";
        (match List.rev batch with
        | last :: _ -> Metrics.set r "plancache/mqo/groups" (float_of_int last.Optimizer.stats.Engine.groups)
        | [] -> ())));
    Array.to_list results
    |> List.map (function Some o -> o | None -> invalid_arg "Plancache.optimize_all: unfilled slot")
  end
