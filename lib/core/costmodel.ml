module Cost = Oodb_cost.Cost
module Config = Oodb_cost.Config
module Lprops = Oodb_cost.Lprops
module Catalog = Oodb_catalog.Catalog

let fi = float_of_int

let file_scan (cfg : Config.t) (co : Catalog.collection) =
  let pages = Config.pages cfg ~bytes:(fi co.Catalog.co_card *. fi co.Catalog.co_obj_bytes) in
  Cost.make ~io:(pages *. cfg.Config.seq_io) ~cpu:(fi co.Catalog.co_card *. Config.per_tuple cfg)

let btree_height (cfg : Config.t) ~entries =
  let fanout = Float.max 2.0 (fi (cfg.Config.page_bytes / 16)) in
  let leaves = Float.max 1.0 (Float.ceil (entries /. fanout)) in
  let rec levels pages acc =
    if pages <= 1.0 then acc else levels (Float.ceil (pages /. fanout)) (acc + 1)
  in
  1 + levels leaves 0

let index_scan (cfg : Config.t) ~(coll : Catalog.collection) ~matches ~residual_atoms =
  let entries = fi coll.Catalog.co_card in
  let height = fi (btree_height cfg ~entries) in
  let fanout = Float.max 2.0 (fi (cfg.Config.page_bytes / 16)) in
  let extra_leaves = Float.max 0.0 (Float.ceil (matches /. fanout) -. 1.0) in
  let io =
    (height *. cfg.Config.rand_io)
    +. (extra_leaves *. cfg.Config.seq_io)
    +. (matches *. cfg.Config.rand_io)
  in
  let cpu =
    matches *. (Config.per_tuple cfg +. (fi residual_atoms *. cfg.Config.cpu_pred))
  in
  Cost.make ~io ~cpu

let filter (cfg : Config.t) ~card ~atoms =
  Cost.cpu (card *. (Config.per_tuple cfg +. (fi atoms *. cfg.Config.cpu_pred)))

let hash_join (cfg : Config.t) ~build_card ~build_bytes ~probe_card ~probe_bytes ~out_card
    ~atoms =
  let cpu =
    (* building costs a little more per tuple than probing, so ties break
       toward the smaller input as the build side *)
    ((build_card *. 1.2) +. probe_card) *. cfg.Config.cpu_hash
    +. (probe_card *. fi atoms *. cfg.Config.cpu_pred)
    +. (out_card *. Config.per_tuple cfg)
  in
  let io =
    if build_bytes <= fi cfg.Config.memory_bytes then 0.0
    else
      (* one partitioning pass: write and re-read both inputs *)
      let pages =
        Config.pages cfg ~bytes:build_bytes +. Config.pages cfg ~bytes:probe_bytes
      in
      2.0 *. pages *. cfg.Config.seq_io
  in
  Cost.make ~io ~cpu

let merge_join (cfg : Config.t) ~left_card ~right_card ~out_card ~atoms =
  Cost.cpu
    (((left_card +. right_card) *. Config.per_tuple cfg)
    +. (out_card *. (Config.per_tuple cfg +. (fi atoms *. cfg.Config.cpu_pred))))

let deref_fetches cat ~target_cls ~stream_card =
  match Catalog.class_cardinality cat target_cls with
  | Some n -> Float.min stream_card (fi n)
  | None -> stream_card

let assembly (cfg : Config.t) cat ~window ~stream_card ~targets =
  let per_fetch = Config.assembly_io cfg ~window in
  List.fold_left
    (fun acc cls ->
      let fetches = deref_fetches cat ~target_cls:cls ~stream_card in
      Cost.add acc
        (Cost.make ~io:(fetches *. per_fetch) ~cpu:(stream_card *. Config.per_tuple cfg)))
    Cost.zero targets

let warm_assembly (cfg : Config.t) cat ~(target_coll : Catalog.collection) ~stream_card =
  ignore cat;
  let pages =
    Config.pages cfg
      ~bytes:(fi target_coll.Catalog.co_card *. fi target_coll.Catalog.co_obj_bytes)
  in
  Cost.make
    ~io:(pages *. cfg.Config.seq_io)
    ~cpu:((fi target_coll.Catalog.co_card +. stream_card) *. Config.per_tuple cfg)

let pointer_join (cfg : Config.t) cat ~target_cls ~stream_card ~atoms =
  let fetches = deref_fetches cat ~target_cls ~stream_card in
  Cost.make
    ~io:(fetches *. cfg.Config.rand_io)
    ~cpu:(stream_card *. (Config.per_tuple cfg +. (fi atoms *. cfg.Config.cpu_pred)))

let alg_project (cfg : Config.t) ~card = Cost.cpu (card *. Config.per_tuple cfg)

let alg_unnest (cfg : Config.t) ~in_card ~out_card =
  Cost.cpu ((in_card +. out_card) *. Config.per_tuple cfg)

let hash_setop (cfg : Config.t) ~left_card ~right_card ~out_card =
  Cost.cpu
    (((left_card +. right_card) *. cfg.Config.cpu_hash) +. (out_card *. Config.per_tuple cfg))

let sort (cfg : Config.t) ~card ~row_bytes =
  let n = Float.max 2.0 card in
  let cpu = 2.0 *. n *. Float.log n /. Float.log 2.0 *. Config.per_tuple cfg in
  let bytes = card *. row_bytes in
  let io =
    if bytes <= fi cfg.Config.memory_bytes then 0.0
    else 2.0 *. Config.pages cfg ~bytes *. cfg.Config.seq_io
  in
  Cost.make ~io ~cpu
