(** Optimizer options: the cost-model configuration, the set of disabled
    rules, and search knobs. Disabling rules is how the paper "simulates"
    other optimizers: Table 2 disables [join-commute] and (separately)
    restricts the assembly window to one open reference; Figure 9
    disables [collapse-index-scan]. *)

type t = {
  config : Oodb_cost.Config.t;
  disabled : string list;  (** rule names to ignore; see {!rule_names} *)
  pruning : bool;  (** branch-and-bound cost limits (default on) *)
  guided : bool;
      (** cost-bounded guided search (default off): implementation rules
          run in promise order, candidates are costed cheapest first,
          and provably dominated subgoals are never expanded. Guided
          search returns plans of exactly the same cost as the
          exhaustive search — it changes how fast the winner is found,
          never which winner — so like [verify] and [cache] it is meta
          and never splits cache fingerprints *)
  normalize : bool;
      (** run the {!Argtrans} argument-transformation pass before
          algebraic optimization (default on) *)
  verify : bool;
      (** lint every winning plan with {!Planlint.plan} before returning
          it (default on); {!Optimizer.optimize} raises on violations —
          an unsound rule then fails loudly instead of producing a plan
          that dereferences garbage at run time *)
  cache : bool;
      (** let cache-aware entry points (the [plancache] library) serve
          and store fingerprinted plans (default on); when off they
          bypass lookup and insertion and always optimize cold. Ignored
          by the raw {!Optimizer.optimize}, which is always cold. *)
  provenance : bool;
      (** record derivation lineage during the search (default on, like
          [verify]): every multi-expression's producing rule, parent id
          and firing sequence, and every physical candidate's final
          disposition (kept / pruned with the bound and margin /
          abandoned) — the substrate of [explain --why], [why-not] and
          the memo export. Like [guided] it never changes which plan
          wins, so it is excluded from plan-cache fingerprints *)
  feedback_qerror_limit : float;
      (** maximum recorded q-error a cached plan may carry before a
          feedback-gated cache lookup evicts it and forces a re-plan
          with corrected statistics (default 16.0). Like [cache] and
          [verify] this is meta — it never splits cache fingerprints *)
}

val default : t
(** All paper rules enabled. The [warm-assembly] rule — the paper's
    Lesson-7 "warm-start" proposal, implemented here — is {e disabled} by
    default because the paper's own optimizer did not have it (it changes
    the Figure 6 plan); enable it with {!with_warm_start}. *)

val with_warm_start : t -> t
(** Enable the Lesson-7 warm-start assembly algorithm. *)

val rule_names : string list
(** All transformation, implementation and enforcer rule names. *)

val disable : string -> t -> t
(** @raise Invalid_argument for names not in {!rule_names}. *)

val without_join_commutativity : t -> t
(** Table 2's second row. *)

val with_assembly_window : int -> t -> t
(** Table 2's third row uses a window of 1. *)

val with_batch_size : int -> t -> t
(** Tuples per batch in the execution engine (and the cost model's
    amortization term); 1 is the tuple-at-a-time protocol.
    @raise Invalid_argument when below 1. *)

val with_config : Oodb_cost.Config.t -> t -> t

val with_feedback : Oodb_cost.Config.feedback -> t -> t
(** Install runtime-feedback overrides into the cost configuration: the
    estimator (and every rule that prices candidates) consults observed
    statistics before the synthetic model. *)

val without_feedback : t -> t

val without_cache : t -> t
(** Turn {!field-cache} off: cache-aware entry points always optimize cold. *)

val with_guided : t -> t
(** Turn {!field-guided} on: promise-ordered rules, cheapest-first
    candidate costing, dominated-subgoal skipping. Winner costs are
    identical to the exhaustive search. *)

val without_guided : t -> t

val with_provenance : t -> t

val without_provenance : t -> t
(** Turn {!field-provenance} off: no lineage side-tables are built (the
    engine's nil-sink fast path) and explanation queries report that
    provenance was disabled. *)
