(** Static linter for physical plans.

    [Logical.well_formed] checks the optimizer's {e input}; this pass
    checks its {e output}. It walks a physical plan bottom-up tracking
    the binding scope and the presence-in-memory vector exactly as the
    executor maintains them (children are trimmed to their [delivered]
    in-memory set before the parent consumes them), and reports every
    way the plan could dereference garbage or read a binding that is not
    materialized — the runtime failures the paper's property vector
    exists to prevent (§5).

    The checks per operator mirror the executor's requirements:
    predicate operands in scope, [Field] operands on in-memory bindings,
    merge-join inputs carrying the key order, catalog-backed names
    (collections, indexes, attributes) resolving, assembly/pointer-join
    sources holding single-valued references, and each node's
    [delivered] properties actually achievable by what it computes. *)

type violation =
  | Arity_mismatch of { alg : string; expected : int; got : int }
  | Unknown_collection of string  (** named collection absent from the catalog *)
  | Not_scannable of string  (** scan of a [Hidden] collection *)
  | Unknown_index of { index : string; coll : string }
      (** index-scan naming an index the catalog does not list on that
          collection *)
  | Out_of_scope of { binding : string; context : string }
      (** operand refers to a binding no input introduces *)
  | Not_in_memory of { binding : string; context : string }
      (** [Field] access on a binding present only as a reference — the
          executor would raise [Not_materialized] *)
  | Not_a_reference of { binding : string; field : string option; context : string }
      (** assembly / pointer-join path through a non-reference attribute *)
  | Not_set_valued of { binding : string; field : string }
      (** unnest of an attribute that is not set-valued *)
  | Unknown_attribute of { cls : string; field : string; context : string }
  | Duplicate_binding of string
      (** operator (re)introduces a binding already in scope *)
  | Missing_sort_order of {
      side : string;
      expected : Physprop.order option;
      got : Physprop.order option;
    }  (** merge-join input does not arrive in the key order *)
  | Undelivered_memory of { binding : string; alg : string }
      (** node's [delivered.in_memory] claims a binding it cannot have
          materialized *)
  | Undelivered_order of { alg : string }
      (** node's [delivered.order] claims an order its algorithm does not
          produce *)
  | Bad_window of int  (** assembly window < 1 *)
  | Unsatisfied_required of { delivered : Physprop.t; required : Physprop.t }
      (** root plan does not satisfy the stated optimization goal *)

val pp_violation : Format.formatter -> violation -> unit

val violation_to_string : violation -> string

val plan :
  ?required:Physprop.t ->
  Oodb_catalog.Catalog.t ->
  Model.Engine.plan ->
  (unit, violation list) result
(** Lint a physical plan against a catalog. All violations are collected
    (the walk continues past errors on a best-effort state), ordered
    bottom-up, left to right. [required] (default {!Physprop.empty})
    additionally checks the root's delivered properties against the
    optimization goal. *)

val pp_violations : Format.formatter -> violation list -> unit
