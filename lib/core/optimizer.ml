module Logical = Oodb_algebra.Logical
module Catalog = Oodb_catalog.Catalog
module Estimator = Oodb_cost.Estimator
module Cost = Oodb_cost.Cost
open Model

type outcome = {
  plan : Engine.plan option;
  stats : Engine.stats;
  opt_seconds : float;
  memo : Engine.ctx;
  root : Engine.group;
}

let spec (options : Options.t) cat =
  let cfg = options.Options.config in
  { Engine.derive_lprop = Estimator.derive cfg cat;
    transformations = Trules.all cfg cat;
    implementations = Irules.all cfg cat;
    enforcers = Enforcers.all cfg cat }

let optimize ?(options = Options.default) ?(required = Physprop.empty)
    ?(initial_limit = Cost.infinite) ?closure_fuel ?trace cat expr =
  (match Logical.well_formed cat expr with
  | Ok () -> ()
  | Error msg -> invalid_arg (Printf.sprintf "Optimizer.optimize: ill-formed query: %s" msg));
  let expr = if options.Options.normalize then Argtrans.expr expr else expr in
  let spec = spec options cat in
  let t0 = Sys.time () in
  let result =
    Engine.run ~disabled:options.Options.disabled ~pruning:options.Options.pruning
      ~initial_limit ?closure_fuel ?trace spec (expr_of_logical expr) ~required
  in
  let t1 = Sys.time () in
  (if options.Options.verify then
     match result.Engine.plan with
     | None -> ()
     | Some p -> (
       match Planlint.plan ~required cat p with
       | Ok () -> ()
       | Error vs ->
         invalid_arg
           (Format.asprintf "Optimizer.optimize: winning plan fails lint:@.%a"
              Planlint.pp_violations vs)));
  { plan = result.Engine.plan;
    stats = result.Engine.stats;
    opt_seconds = t1 -. t0;
    memo = result.Engine.ctx;
    root = result.Engine.root }

let plan_exn outcome =
  match outcome.plan with
  | Some p -> p
  | None -> invalid_arg "Optimizer: no plan found"

let cost outcome = (plan_exn outcome).Engine.cost

let pp_stats ppf (s : Engine.stats) =
  Format.fprintf ppf
    "groups=%d mexprs=%d rules fired/tried=%d/%d candidates=%d enforcers=%d memo hits=%d"
    s.Engine.groups s.Engine.mexprs s.Engine.trule_fired s.Engine.trule_tried
    s.Engine.candidates s.Engine.enforcer_uses s.Engine.phys_memo_hits

let explain outcome =
  match outcome.plan with
  | None -> "no plan found"
  | Some p ->
    Format.asprintf "%a@.@.anticipated cost: %a@.optimization: %.4fs, %a@." Engine.pp_plan p
      Cost.pp p.Engine.cost outcome.opt_seconds pp_stats outcome.stats
