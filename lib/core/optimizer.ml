module Logical = Oodb_algebra.Logical
module Catalog = Oodb_catalog.Catalog
module Estimator = Oodb_cost.Estimator
module Cost = Oodb_cost.Cost
open Model

type outcome = {
  plan : Engine.plan option;
  stats : Engine.stats;
  opt_seconds : float;
  memo : Engine.ctx;
  root : Engine.group;
}

let spec (options : Options.t) cat =
  let cfg = options.Options.config in
  { Engine.derive_lprop = Estimator.derive cfg cat;
    transformations = Trules.all cfg cat;
    implementations = Irules.all cfg cat;
    enforcers = Enforcers.all cfg cat }

(* The memo-wide type invariant (on by default through
   [Options.verify]): every multi-expression any rule interns must
   typecheck against the catalog and derive its group's type. *)
let typing_hook (options : Options.t) cat =
  if options.Options.verify then Some (Oodb_algebra.Typing.infer_op cat) else None

let prepare options cat expr =
  (match Logical.well_formed cat expr with
  | Ok () -> ()
  | Error msg -> invalid_arg (Printf.sprintf "Optimizer.optimize: ill-formed query: %s" msg));
  if options.Options.normalize then Argtrans.expr expr else expr

let lint options cat ~required plan =
  if options.Options.verify then
    match plan with
    | None -> ()
    | Some p -> (
      match Planlint.plan ~required cat p with
      | Ok () -> ()
      | Error vs ->
        invalid_arg
          (Format.asprintf "Optimizer.optimize: winning plan fails lint:@.%a"
             Planlint.pp_violations vs))

let optimize ?(options = Options.default) ?(required = Physprop.empty)
    ?(initial_limit = Cost.infinite) ?closure_fuel ?trace ?spans cat expr =
  let expr = prepare options cat expr in
  let spec = spec options cat in
  let t0 = Sys.time () in
  let result =
    Oodb_util.Span.with_span spans ~cat:"optimizer" "optimize" (fun () ->
        Engine.run ~disabled:options.Options.disabled ~pruning:options.Options.pruning
          ~guided:options.Options.guided ~provenance:options.Options.provenance
          ~initial_limit ?closure_fuel ?trace ?spans ?typing:(typing_hook options cat)
          spec (expr_of_logical expr) ~required)
  in
  let t1 = Sys.time () in
  lint options cat ~required result.Engine.plan;
  { plan = result.Engine.plan;
    stats = result.Engine.stats;
    opt_seconds = t1 -. t0;
    memo = result.Engine.ctx;
    root = result.Engine.root }

let optimize_batch ?(options = Options.default) ?closure_fuel ?trace ?spans cat queries =
  let spec = spec options cat in
  let s =
    Engine.session ~disabled:options.Options.disabled ~pruning:options.Options.pruning
      ~guided:options.Options.guided ~provenance:options.Options.provenance ?closure_fuel
      ?trace ?spans ?typing:(typing_hook options cat) spec
  in
  (* Register every root before solving any of them: the shared memo then
     reaches its full logical closure once, and a subexpression two
     queries share is physically searched exactly once. Registration time
     is attributed to the query that caused it, so later queries' smaller
     opt_seconds directly show the sharing. *)
  let roots =
    List.map
      (fun (q, _required) ->
        let q = prepare options cat q in
        let t0 = Sys.time () in
        let root = Engine.register s (expr_of_logical q) in
        (root, Sys.time () -. t0))
      queries
  in
  List.map2
    (fun (root, register_seconds) (_q, required) ->
      let t0 = Sys.time () in
      let result = Engine.solve s root ~required in
      let t1 = Sys.time () in
      lint options cat ~required result.Engine.plan;
      { plan = result.Engine.plan;
        stats = result.Engine.stats;
        opt_seconds = register_seconds +. (t1 -. t0);
        memo = result.Engine.ctx;
        root = result.Engine.root })
    roots queries

let optimize_all ?options ?(required = Physprop.empty) ?closure_fuel ?trace ?spans cat qs =
  optimize_batch ?options ?closure_fuel ?trace ?spans cat
    (List.map (fun q -> (q, required)) qs)

let plan_exn outcome =
  match outcome.plan with
  | Some p -> p
  | None -> invalid_arg "Optimizer: no plan found"

let cost outcome = (plan_exn outcome).Engine.cost

let pp_stats ppf (s : Engine.stats) =
  Format.fprintf ppf
    "groups=%d mexprs=%d rules fired/tried=%d/%d candidates=%d pruned=%d+%d enforcers=%d \
     memo hits=%d"
    s.Engine.groups s.Engine.mexprs s.Engine.trule_fired s.Engine.trule_tried
    s.Engine.candidates s.Engine.pruned_candidates s.Engine.pruned_subgoals
    s.Engine.enforcer_uses s.Engine.phys_memo_hits

let explain outcome =
  match outcome.plan with
  | None -> "no plan found"
  | Some p ->
    Format.asprintf "%a@.@.anticipated cost: %a@.optimization: %.4fs, %a@." Engine.pp_plan p
      Cost.pp p.Engine.cost outcome.opt_seconds pp_stats outcome.stats
