module Pred = Oodb_algebra.Pred
module Logical = Oodb_algebra.Logical
module Catalog = Oodb_catalog.Catalog
module Schema = Oodb_catalog.Schema
module Bset = Physprop.Bset
module Engine = Model.Engine

type violation =
  | Arity_mismatch of { alg : string; expected : int; got : int }
  | Unknown_collection of string
  | Not_scannable of string
  | Unknown_index of { index : string; coll : string }
  | Out_of_scope of { binding : string; context : string }
  | Not_in_memory of { binding : string; context : string }
  | Not_a_reference of { binding : string; field : string option; context : string }
  | Not_set_valued of { binding : string; field : string }
  | Unknown_attribute of { cls : string; field : string; context : string }
  | Duplicate_binding of string
  | Missing_sort_order of {
      side : string;
      expected : Physprop.order option;
      got : Physprop.order option;
    }
  | Undelivered_memory of { binding : string; alg : string }
  | Undelivered_order of { alg : string }
  | Bad_window of int
  | Unsatisfied_required of { delivered : Physprop.t; required : Physprop.t }

let pp_order ppf = function
  | None -> Format.pp_print_string ppf "no order"
  | Some o -> (
    match o.Physprop.ord_field with
    | None -> Format.fprintf ppf "order on %s (identity)" o.Physprop.ord_binding
    | Some f -> Format.fprintf ppf "order on %s.%s" o.Physprop.ord_binding f)

let pp_violation ppf = function
  | Arity_mismatch { alg; expected; got } ->
    Format.fprintf ppf "arity mismatch: %s expects %d input(s), got %d" alg expected got
  | Unknown_collection c -> Format.fprintf ppf "unknown collection %s" c
  | Not_scannable c -> Format.fprintf ppf "collection %s is not scannable" c
  | Unknown_index { index; coll } ->
    Format.fprintf ppf "no index named %s on collection %s" index coll
  | Out_of_scope { binding; context } ->
    Format.fprintf ppf "binding %s is not in scope (%s)" binding context
  | Not_in_memory { binding; context } ->
    Format.fprintf ppf "binding %s is not present in memory (%s)" binding context
  | Not_a_reference { binding; field; context } -> (
    match field with
    | Some f ->
      Format.fprintf ppf "%s.%s is not a single-valued reference (%s)" binding f context
    | None -> Format.fprintf ppf "%s is not a reference (%s)" binding context)
  | Not_set_valued { binding; field } ->
    Format.fprintf ppf "%s.%s is not set-valued (unnest)" binding field
  | Unknown_attribute { cls; field; context } ->
    Format.fprintf ppf "class %s has no attribute %s (%s)" cls field context
  | Duplicate_binding b -> Format.fprintf ppf "binding %s introduced twice" b
  | Missing_sort_order { side; expected; got } ->
    Format.fprintf ppf "merge-join %s input: needs %a, input delivers %a" side pp_order
      expected pp_order got
  | Undelivered_memory { binding; alg } ->
    Format.fprintf ppf "%s claims %s in memory but does not materialize it" alg binding
  | Undelivered_order { alg } ->
    Format.fprintf ppf "%s claims a sort order it does not produce" alg
  | Bad_window w -> Format.fprintf ppf "assembly window must be >= 1, got %d" w
  | Unsatisfied_required { delivered; required } ->
    Format.fprintf ppf "plan delivers %a but the goal requires %a" Physprop.pp delivered
      Physprop.pp required

let violation_to_string v = Format.asprintf "%a" pp_violation v

let pp_violations ppf vs =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf "@.")
    pp_violation ppf vs

(* Linter state, maintained exactly as the executor maintains tuples:
   which bindings each tuple carries (with their classes when known),
   which of them are materialized objects rather than bare references,
   and the stream's physical order. *)
type st = {
  scope : (string * string option) list;
  mem : Bset.t;
  ord : Physprop.order option;
}

let in_scope st b = List.mem_assoc b st.scope

let class_of st b = match List.assoc_opt b st.scope with Some c -> c | None -> None

let check_operand cat st emit ~context = function
  | Pred.Const _ -> ()
  | Pred.Self b -> if not (in_scope st b) then emit (Out_of_scope { binding = b; context })
  | Pred.Field (b, f) ->
    if not (in_scope st b) then emit (Out_of_scope { binding = b; context })
    else begin
      if not (Bset.mem b st.mem) then emit (Not_in_memory { binding = b; context });
      match class_of st b with
      | None -> ()
      | Some cls -> (
        match Schema.attr_ty (Catalog.schema cat) ~cls f with
        | Some _ -> ()
        | None -> emit (Unknown_attribute { cls; field = f; context }))
    end

let check_pred cat st emit ~context p =
  List.iter
    (fun (a : Pred.atom) ->
      check_operand cat st emit ~context a.Pred.lhs;
      check_operand cat st emit ~context a.Pred.rhs)
    p

(* Class reached by dereferencing [field] of [src]; emits violations for
   missing attributes and non-reference steps. *)
let deref_target cat st emit ~context src field =
  match field with
  | None -> class_of st src
  | Some f -> (
    match class_of st src with
    | None -> None
    | Some cls -> (
      match Schema.attr_ty (Catalog.schema cat) ~cls f with
      | None ->
        emit (Unknown_attribute { cls; field = f; context });
        None
      | Some (Schema.Ref t) -> Some t
      | Some _ ->
        emit (Not_a_reference { binding = src; field; context });
        None))

let key_order = function
  | Pred.Field (b, f) -> Some { Physprop.ord_binding = b; ord_field = Some f }
  | Pred.Self b -> Some { Physprop.ord_binding = b; ord_field = None }
  | Pred.Const _ -> None

let combine l r = { scope = l.scope @ r.scope; mem = Bset.union l.mem r.mem; ord = None }

let check_dup emit l r =
  List.iter
    (fun (b, _) -> if in_scope l b then emit (Duplicate_binding b))
    r.scope

let expected_arity : Physical.t -> int = function
  | Physical.File_scan _ | Physical.Index_scan _ -> 0
  | Physical.Filter _ | Physical.Pointer_join _ | Physical.Assembly _
  | Physical.Alg_project _ | Physical.Alg_unnest _ | Physical.Sort _ -> 1
  | Physical.Hash_join _ | Physical.Merge_join _ | Physical.Hash_union
  | Physical.Hash_intersect | Physical.Hash_difference -> 2

(* The executor wraps every child iterator in [Operators.trim child.delivered]:
   objects the child does not promise are demoted to bare references. The
   parent therefore sees [computed ∩ delivered] in memory — and a delivered
   claim beyond what the child computes is itself a violation. *)
let deliver emit (p : Engine.plan) st =
  let alg = Physical.to_string p.Engine.alg in
  let d = p.Engine.delivered in
  Bset.iter
    (fun b -> if not (Bset.mem b st.mem) then emit (Undelivered_memory { binding = b; alg }))
    d.Physprop.in_memory;
  (match d.Physprop.order with
  | Some o when st.ord <> Some o -> emit (Undelivered_order { alg })
  | _ -> ());
  { st with mem = Bset.inter st.mem d.Physprop.in_memory }

let rec walk cat emit (p : Engine.plan) : st =
  let expected = expected_arity p.Engine.alg in
  let got = List.length p.Engine.children in
  let children = List.map (fun c -> deliver emit c (walk cat emit c)) p.Engine.children in
  let raw =
    if got <> expected then begin
      emit
        (Arity_mismatch { alg = Physical.to_string p.Engine.alg; expected; got });
      (* best effort: keep whatever the children provide *)
      List.fold_left combine { scope = []; mem = Bset.empty; ord = None } children
    end
    else node cat emit p.Engine.alg children
  in
  raw

and node cat emit alg children =
  match alg, children with
  | Physical.File_scan { coll; binding }, [] ->
    let cls =
      match Catalog.find_collection cat coll with
      | None ->
        emit (Unknown_collection coll);
        None
      | Some co ->
        if co.Catalog.co_kind = Catalog.Hidden then emit (Not_scannable coll);
        Some co.Catalog.co_class
    in
    { scope = [ (binding, cls) ];
      mem = Bset.singleton binding;
      (* members stream in insertion order: ordered by object identity *)
      ord = Some { Physprop.ord_binding = binding; ord_field = None } }
  | Physical.Index_scan { coll; binding; index; key = _; residual; derefs }, [] ->
    let cls =
      match Catalog.find_collection cat coll with
      | None ->
        emit (Unknown_collection coll);
        None
      | Some co -> Some co.Catalog.co_class
    in
    if not (List.exists (fun ix -> ix.Catalog.ix_name = index) (Catalog.indexes_on cat ~coll))
    then emit (Unknown_index { index; coll });
    let st0 = { scope = [ (binding, cls) ]; mem = Bset.singleton binding; ord = None } in
    check_pred cat st0 emit ~context:"index-scan residual" residual;
    (* the consumed Mat links are re-emitted as bare references, root first *)
    List.fold_left
      (fun st (src, field, out) ->
        if not (in_scope st src) then begin
          emit (Out_of_scope { binding = src; context = "index-scan deref" });
          st
        end
        else begin
          let target = deref_target cat st emit ~context:"index-scan deref" src field in
          if in_scope st out then begin
            emit (Duplicate_binding out);
            st
          end
          else { st with scope = st.scope @ [ (out, target) ] }
        end)
      st0 derefs
  | Physical.Filter pred, [ c ] ->
    check_pred cat c emit ~context:"filter predicate" pred;
    c
  | Physical.Hash_join pred, [ l; r ] ->
    check_dup emit l r;
    let st = combine l r in
    check_pred cat st emit ~context:"hash-join predicate" pred;
    st
  | Physical.Merge_join { key_l; key_r; residual }, [ l; r ] ->
    check_dup emit l r;
    check_operand cat l emit ~context:"merge-join left key" key_l;
    check_operand cat r emit ~context:"merge-join right key" key_r;
    let want_l = key_order key_l and want_r = key_order key_r in
    if l.ord <> want_l then
      emit (Missing_sort_order { side = "left"; expected = want_l; got = l.ord });
    if r.ord <> want_r then
      emit (Missing_sort_order { side = "right"; expected = want_r; got = r.ord });
    let st = combine l r in
    check_pred cat st emit ~context:"merge-join residual" residual;
    (* the merge streams in left-key order *)
    { st with ord = want_l }
  | Physical.Pointer_join { src; field; out; residual }, [ c ] ->
    let st =
      if not (in_scope c src) then begin
        emit (Out_of_scope { binding = src; context = "pointer-join source" });
        c
      end
      else begin
        if field <> None && not (Bset.mem src c.mem) then
          emit (Not_in_memory { binding = src; context = "pointer-join source" });
        let target = deref_target cat c emit ~context:"pointer-join" src field in
        if in_scope c out then begin
          emit (Duplicate_binding out);
          c
        end
        else
          { c with scope = c.scope @ [ (out, target) ]; mem = Bset.add out c.mem }
      end
    in
    check_pred cat st emit ~context:"pointer-join residual" residual;
    st
  | Physical.Assembly { paths; window; warm }, [ c ] ->
    if window < 1 then emit (Bad_window window);
    (match warm with
    | None -> ()
    | Some w -> (
      match Catalog.find_collection cat w with
      | None -> emit (Unknown_collection w)
      | Some co -> if co.Catalog.co_kind = Catalog.Hidden then emit (Not_scannable w)));
    List.fold_left
      (fun st (path : Physical.assembly_path) ->
        let src = path.Physical.ap_src
        and field = path.Physical.ap_field
        and out = path.Physical.ap_out in
        if not (in_scope st src) then begin
          emit (Out_of_scope { binding = src; context = "assembly path" });
          st
        end
        else begin
          (* reading src.field needs the source object; a bare-reference
             source ([field = None]) only needs the OID every tuple holds *)
          if field <> None && not (Bset.mem src st.mem) then
            emit (Not_in_memory { binding = src; context = "assembly path" });
          let target = deref_target cat st emit ~context:"assembly path" src field in
          let scope =
            (* [out] may already be in scope: assembly-as-enforcer
               re-materializes a binding the tuple carries as a reference *)
            if in_scope st out then st.scope else st.scope @ [ (out, target) ]
          in
          { st with scope; mem = Bset.add out st.mem }
        end)
      c paths
  | Physical.Alg_project ps, [ c ] ->
    let operands = List.map (fun (p : Logical.proj) -> p.Logical.p_expr) ps in
    List.iter (check_operand cat c emit ~context:"project expression") operands;
    let keep =
      List.concat_map Pred.bindings_of_operand operands
      |> List.fold_left (fun acc b -> if List.mem b acc then acc else acc @ [ b ]) []
    in
    let scope = List.filter (fun (b, _) -> List.mem b keep) c.scope in
    { scope;
      mem = Bset.filter (fun b -> List.mem b keep) c.mem;
      ord =
        (match c.ord with
        | Some o when List.mem o.Physprop.ord_binding keep -> c.ord
        | _ -> None) }
  | Physical.Alg_unnest { src; field; out }, [ c ] ->
    if not (in_scope c src) then begin
      emit (Out_of_scope { binding = src; context = "unnest source" });
      c
    end
    else begin
      if not (Bset.mem src c.mem) then
        emit (Not_in_memory { binding = src; context = "unnest source" });
      let target =
        match class_of c src with
        | None -> None
        | Some cls -> (
          match Schema.attr_ty (Catalog.schema cat) ~cls field with
          | None ->
            emit (Unknown_attribute { cls; field; context = "unnest source" });
            None
          | Some (Schema.Set_of ty) -> Schema.ref_target ty
          | Some _ ->
            emit (Not_set_valued { binding = src; field });
            None)
      in
      if in_scope c out then begin
        emit (Duplicate_binding out);
        c
      end
      else
        (* the element enters scope as a reference, not in memory *)
        { c with scope = c.scope @ [ (out, target) ] }
    end
  | (Physical.Hash_union | Physical.Hash_intersect | Physical.Hash_difference), [ l; r ]
    ->
    List.iter
      (fun (b, _) ->
        if not (in_scope r b) then
          emit (Out_of_scope { binding = b; context = "set-operation right input" }))
      l.scope;
    List.iter
      (fun (b, _) ->
        if not (in_scope l b) then
          emit (Out_of_scope { binding = b; context = "set-operation left input" }))
      r.scope;
    { scope = l.scope; mem = Bset.inter l.mem r.mem; ord = None }
  | Physical.Sort o, [ c ] ->
    let b = o.Physprop.ord_binding in
    if not (in_scope c b) then
      emit (Out_of_scope { binding = b; context = "sort key" })
    else (
      match o.Physprop.ord_field with
      | None -> ()
      | Some f -> (
        (* sorting by a field reads the object; identity sorts only the OID *)
        if not (Bset.mem b c.mem) then
          emit (Not_in_memory { binding = b; context = "sort key" });
        match class_of c b with
        | None -> ()
        | Some cls -> (
          match Schema.attr_ty (Catalog.schema cat) ~cls f with
          | Some _ -> ()
          | None -> emit (Unknown_attribute { cls; field = f; context = "sort key" }))));
    { c with ord = Some o }
  | _ ->
    (* arity already validated by the caller *)
    assert false

let plan ?(required = Physprop.empty) cat (p : Engine.plan) =
  let acc = ref [] in
  let emit v = acc := v :: !acc in
  let st = walk cat emit p in
  ignore (deliver emit p st);
  if not (Physprop.satisfies ~delivered:p.Engine.delivered ~required) then
    emit (Unsatisfied_required { delivered = p.Engine.delivered; required });
  match List.rev !acc with [] -> Ok () | vs -> Error vs
