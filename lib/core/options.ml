type t = {
  config : Oodb_cost.Config.t;
  disabled : string list;
  pruning : bool;
  guided : bool;
  normalize : bool;
  verify : bool;
  cache : bool;
  provenance : bool;
  feedback_qerror_limit : float;
}

let default =
  { config = Oodb_cost.Config.default;
    disabled = [ "warm-assembly" ];
    pruning = true;
    guided = false;
    normalize = true;
    verify = true;
    cache = true;
    provenance = true;
    feedback_qerror_limit = 16.0 }

let with_guided t = { t with guided = true }

let without_guided t = { t with guided = false }

let with_provenance t = { t with provenance = true }

let without_provenance t = { t with provenance = false }

let without_cache t = { t with cache = false }

let rule_names = Trules.names @ Irules.names @ Enforcers.names

let disable name t =
  if not (List.mem name rule_names) then
    invalid_arg (Printf.sprintf "Options.disable: unknown rule %s" name);
  if List.mem name t.disabled then t else { t with disabled = name :: t.disabled }

let without_join_commutativity t = disable "join-commute" t

let with_assembly_window n t =
  if n < 1 then invalid_arg "Options.with_assembly_window: window must be >= 1";
  { t with config = { t.config with Oodb_cost.Config.assembly_window = n } }

let with_warm_start t =
  { t with disabled = List.filter (fun r -> r <> "warm-assembly") t.disabled }

let with_batch_size n t =
  if n < 1 then invalid_arg "Options.with_batch_size: batch size must be >= 1";
  { t with config = { t.config with Oodb_cost.Config.batch_size = n } }

let with_config config t = { t with config }

let with_feedback fb t =
  { t with config = { t.config with Oodb_cost.Config.feedback = Some fb } }

let without_feedback t =
  { t with config = { t.config with Oodb_cost.Config.feedback = None } }
