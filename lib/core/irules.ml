module Logical = Oodb_algebra.Logical
module Pred = Oodb_algebra.Pred
module Catalog = Oodb_catalog.Catalog
module Config = Oodb_cost.Config
module Cost = Oodb_cost.Cost
module Lprops = Oodb_cost.Lprops
module Estimator = Oodb_cost.Estimator
module Selectivity = Oodb_cost.Selectivity
module Bset = Physprop.Bset
open Model

let out_lprop cfg cat ctx (m : Engine.mexpr) =
  Estimator.derive cfg cat m.Engine.mop
    (List.map (Engine.group_lprop ctx) m.Engine.minputs)

let bset = Bset.of_list

(* An order requirement on a binding the operator itself introduces (or
   materializes) cannot be pushed to its input; the operator then cannot
   deliver it either — a sort enforcer on top must produce it. *)
let order_unless_introduced required outs =
  match required.Physprop.order with
  | Some o when List.mem o.Physprop.ord_binding outs -> None
  | other -> other

(* ------------------------------------------------------------------ *)
(* Get => File Scan                                                     *)

(* Promise values order rule application under guided search: rules that
   cheaply complete a plan (leaf scans, pointer chases) run first so the
   branch-and-bound limit tightens before the expensive alternatives
   (sort-hungry merge joins) are even costed. Only the relative order
   among rules matching the same operator matters. *)

let file_scan cfg cat =
  { Engine.i_name = "file-scan";
    i_promise = 100;
    i_apply =
      (fun _ctx ~required m ->
        match m.Engine.mop, m.Engine.minputs with
        | Logical.Get { coll; binding }, [] -> (
          match Catalog.find_collection cat coll with
          | Some co when co.Catalog.co_kind <> Catalog.Hidden ->
            [ { Engine.cand_alg = Physical.File_scan { coll; binding };
                cand_inputs = [];
                cand_cost = Costmodel.file_scan cfg co;
                cand_delivers =
                  (* members are packed in insertion order: the scan
                     streams them ordered by object identity *)
                  Physprop.with_order
                    { Physprop.ord_binding = binding; ord_field = None }
                    (Physprop.in_memory [ binding ]) } ]
          | Some _ | None -> ignore required; [])
        | _ -> []) }

(* ------------------------------------------------------------------ *)
(* Select (Mat* (Get)) => Index Scan (collapse-to-index-scan)           *)

(* Chase a Mat chain below [g] down to a Get, returning the collection,
   the scanned binding and the chain's Mat arguments. *)
let rec chase_to_get ctx g mats fuel =
  if fuel <= 0 then None
  else
    let exprs = Engine.group_exprs ctx g in
    let get =
      List.find_map
        (fun (m : Engine.mexpr) ->
          match m.Engine.mop with
          | Logical.Get { coll; binding } -> Some (coll, binding, mats)
          | _ -> None)
        exprs
    in
    match get with
    | Some _ as r -> r
    | None ->
      List.find_map
        (fun (m : Engine.mexpr) ->
          match m.Engine.mop, m.Engine.minputs with
          | Logical.Mat { src; field; out }, [ g' ] ->
            chase_to_get ctx g' ((src, field, out) :: mats) (fuel - 1)
          | _ -> None)
        exprs

(* Root-relative attribute paths of the chain's bindings. [mats] are
   (src, field, out) triples in arbitrary order. *)
let chain_paths root mats =
  let paths = Hashtbl.create 8 in
  Hashtbl.add paths root [];
  let rec fixpoint remaining =
    let ready, rest =
      List.partition (fun (src, _, _) -> Hashtbl.mem paths src) remaining
    in
    if ready = [] then ()
    else begin
      List.iter
        (fun (src, field, out) ->
          let base = Hashtbl.find paths src in
          Hashtbl.add paths out (match field with Some f -> base @ [ f ] | None -> base))
        ready;
      fixpoint rest
    end
  in
  fixpoint mats;
  paths

let residual_on_root root atoms =
  List.for_all
    (fun (a : Pred.atom) ->
      let operand_ok = function
        | Pred.Const _ -> true
        | Pred.Field (b, _) -> b = root
        | Pred.Self b -> b = root
      in
      operand_ok a.Pred.lhs && operand_ok a.Pred.rhs)
    atoms

let collapse_index_scan cfg cat =
  { Engine.i_name = "collapse-index-scan";
    i_promise = 90;
    i_apply =
      (fun ctx ~required m ->
        match m.Engine.mop, m.Engine.minputs with
        | Logical.Select p, [ g ] -> (
          match chase_to_get ctx g [] 16 with
          | None -> []
          | Some (coll, root, mats) -> (
            match Catalog.find_collection cat coll with
            | None -> []
            | Some co ->
              if
                not
                  (Bset.subset required.Physprop.in_memory (bset [ root ])
                  && required.Physprop.order = None)
              then []
              else
                let paths = chain_paths root mats in
                List.concat_map
                  (fun (a : Pred.atom) ->
                    let indexed =
                      match a.Pred.cmp, a.Pred.lhs, a.Pred.rhs with
                      | Pred.Eq, Pred.Field (b, f), Pred.Const v
                      | Pred.Eq, Pred.Const v, Pred.Field (b, f) -> (
                        match Hashtbl.find_opt paths b with
                        | Some base -> (
                          match Catalog.find_index cat ~coll ~path:(base @ [ f ]) with
                          | Some ix -> Some (ix, v)
                          | None -> None)
                        | None -> None)
                      | _ -> None
                    in
                    match indexed with
                    | None -> []
                    | Some (ix, key) ->
                      let residual = List.filter (fun a' -> a' <> a) p in
                      if not (residual_on_root root residual) then []
                      else
                        (* An observed selectivity for the consumed key
                           atom overrides the index distinct statistic,
                           keeping the scan's match estimate consistent
                           with how Select prices the same atom. *)
                        let matches =
                          match
                            Selectivity.feedback_sel cfg
                              ~env:(Engine.group_lprop ctx g) a
                          with
                          | Some s -> float_of_int co.Catalog.co_card *. s
                          | None ->
                            float_of_int co.Catalog.co_card
                            /. Float.max 1.0 (float_of_int ix.Catalog.ix_distinct)
                        in
                        [ { Engine.cand_alg =
                              Physical.Index_scan
                                { coll;
                                  binding = root;
                                  index = ix.Catalog.ix_name;
                                  key;
                                  residual;
                                  derefs = mats };
                            cand_inputs = [];
                            cand_cost =
                              Costmodel.index_scan cfg ~coll:co ~matches
                                ~residual_atoms:(List.length residual);
                            cand_delivers = Physprop.in_memory [ root ] } ])
                  p))
        | _ -> []) }

(* ------------------------------------------------------------------ *)
(* Select => Filter                                                     *)

let filter cfg cat =
  { Engine.i_name = "filter";
    i_promise = 50;
    i_apply =
      (fun ctx ~required m ->
        match m.Engine.mop, m.Engine.minputs with
        | Logical.Select p, [ g ] ->
          let inp =
            { Physprop.in_memory =
                Bset.union required.Physprop.in_memory (bset (Pred.memory_bindings p));
              order = required.Physprop.order }
          in
          let card = (Engine.group_lprop ctx g).Lprops.card in
          ignore (out_lprop cfg cat ctx m);
          [ { Engine.cand_alg = Physical.Filter p;
              cand_inputs = [ (g, inp) ];
              cand_cost = Costmodel.filter cfg ~card ~atoms:(List.length p);
              cand_delivers = inp } ]
        | _ -> []) }

(* ------------------------------------------------------------------ *)
(* Join => Hybrid Hash Join (first input builds, second probes)         *)

let hash_join cfg cat =
  { Engine.i_name = "hash-join";
    i_promise = 60;
    i_apply =
      (fun ctx ~required m ->
        match m.Engine.mop, m.Engine.minputs with
        | (Logical.Join _ | Logical.Cross), [ gl; gr ] ->
          let p = match m.Engine.mop with Logical.Join p -> p | _ -> [] in
          let ll = Engine.group_lprop ctx gl and lr = Engine.group_lprop ctx gr in
          let sl = List.map fst ll.Lprops.bindings
          and sr = List.map fst lr.Lprops.bindings in
          let memb = Pred.memory_bindings p in
          let side scope =
            Bset.union
              (Bset.filter (fun b -> List.mem b scope) required.Physprop.in_memory)
              (bset (List.filter (fun b -> List.mem b scope) memb))
          in
          let inp_l = { Physprop.in_memory = side sl; order = None } in
          let inp_r = { Physprop.in_memory = side sr; order = None } in
          let out = out_lprop cfg cat ctx m in
          let bytes lp props =
            ((Lprops.bytes_of lp (Bset.elements props.Physprop.in_memory) +. 16.0)
            *. lp.Lprops.card)
          in
          (* equality conjuncts spanning both sides become hash keys;
             only the rest are evaluated per probe *)
          let residual_atoms =
            List.length
              (List.filter
                 (fun (a : Pred.atom) ->
                   let side_of op =
                     let bs = Pred.bindings_of_operand op in
                     if bs = [] then `Const
                     else if List.for_all (fun b -> List.mem b sl) bs then `L
                     else if List.for_all (fun b -> List.mem b sr) bs then `R
                     else `Mixed
                   in
                   not
                     (a.Pred.cmp = Pred.Eq
                     &&
                     match side_of a.Pred.lhs, side_of a.Pred.rhs with
                     | `L, `R | `R, `L -> true
                     | _ -> false))
                 p)
          in
          [ { Engine.cand_alg = Physical.Hash_join p;
              cand_inputs = [ (gl, inp_l); (gr, inp_r) ];
              cand_cost =
                Costmodel.hash_join cfg ~build_card:ll.Lprops.card
                  ~build_bytes:(bytes ll inp_l) ~probe_card:lr.Lprops.card
                  ~probe_bytes:(bytes lr inp_r) ~out_card:out.Lprops.card
                  ~atoms:residual_atoms;
              cand_delivers =
                { Physprop.in_memory = Bset.union inp_l.Physprop.in_memory inp_r.Physprop.in_memory;
                  order = None } } ]
        | _ -> []) }

(* ------------------------------------------------------------------ *)
(* Join => Merge Join (inputs ordered on the join key)                  *)

let order_of_operand = function
  | Pred.Field (b, f) -> Some { Physprop.ord_binding = b; ord_field = Some f }
  | Pred.Self b -> Some { Physprop.ord_binding = b; ord_field = None }
  | Pred.Const _ -> None

let merge_join cfg cat =
  { Engine.i_name = "merge-join";
    i_promise = 40;
    i_apply =
      (fun ctx ~required m ->
        match m.Engine.mop, m.Engine.minputs with
        | Logical.Join p, [ gl; gr ] ->
          let ll = Engine.group_lprop ctx gl and lr = Engine.group_lprop ctx gr in
          let sl = List.map fst ll.Lprops.bindings
          and sr = List.map fst lr.Lprops.bindings in
          let side_of op =
            let bs = Pred.bindings_of_operand op in
            if bs = [] then `Const
            else if List.for_all (fun b -> List.mem b sl) bs then `Left
            else if List.for_all (fun b -> List.mem b sr) bs then `Right
            else `Mixed
          in
          List.concat_map
            (fun (a : Pred.atom) ->
              if a.Pred.cmp <> Pred.Eq then []
              else
                let keys =
                  match side_of a.Pred.lhs, side_of a.Pred.rhs with
                  | `Left, `Right -> Some (a.Pred.lhs, a.Pred.rhs)
                  | `Right, `Left -> Some (a.Pred.rhs, a.Pred.lhs)
                  | _ -> None
                in
                match keys with
                | None -> []
                | Some (key_l, key_r) -> (
                  match order_of_operand key_l, order_of_operand key_r with
                  | Some ord_l, Some ord_r ->
                    let residual = List.filter (fun a' -> a' <> a) p in
                    let memb = Pred.memory_bindings (a :: residual) in
                    let side scope =
                      Bset.union
                        (Bset.filter (fun b -> List.mem b scope) required.Physprop.in_memory)
                        (bset (List.filter (fun b -> List.mem b scope) memb))
                    in
                    let inp_l =
                      { Physprop.in_memory = side sl; order = Some ord_l }
                    in
                    let inp_r =
                      { Physprop.in_memory = side sr; order = Some ord_r }
                    in
                    let out = out_lprop cfg cat ctx m in
                    [ { Engine.cand_alg =
                          Physical.Merge_join { key_l; key_r; residual };
                        cand_inputs = [ (gl, inp_l); (gr, inp_r) ];
                        cand_cost =
                          Costmodel.merge_join cfg ~left_card:ll.Lprops.card
                            ~right_card:lr.Lprops.card ~out_card:out.Lprops.card
                            ~atoms:(List.length residual);
                        cand_delivers =
                          (* the merge streams in left-key order *)
                          { Physprop.in_memory =
                              Bset.union inp_l.Physprop.in_memory inp_r.Physprop.in_memory;
                            order = Some ord_l } } ]
                  | _ -> []))
            p
        | _ -> []) }

(* ------------------------------------------------------------------ *)
(* Join on a reference link against a plain Get => Pointer Join          *)

let pointer_join cfg cat =
  { Engine.i_name = "pointer-join";
    i_promise = 70;
    i_apply =
      (fun ctx ~required m ->
        match m.Engine.mop, m.Engine.minputs with
        | Logical.Join p, [ gl; gr ] ->
          let ll = Engine.group_lprop ctx gl and lr = Engine.group_lprop ctx gr in
          let sl = List.map fst ll.Lprops.bindings
          and sr = List.map fst lr.Lprops.bindings in
          let right_is_get =
            List.exists
              (fun (m' : Engine.mexpr) ->
                match m'.Engine.mop with Logical.Get _ -> true | _ -> false)
              (Engine.group_exprs ctx gr)
          in
          if not right_is_get then []
          else
            List.concat_map
              (fun (a : Pred.atom) ->
                let link =
                  match Pred.ref_eq_sides a with
                  | Some (src, field, target) -> Some (src, Some field, target)
                  | None -> (
                    match a.Pred.cmp, a.Pred.lhs, a.Pred.rhs with
                    | Pred.Eq, Pred.Self x, Pred.Self y ->
                      if List.mem x sl && List.mem y sr then Some (x, None, y)
                      else if List.mem y sl && List.mem x sr then Some (y, None, x)
                      else None
                    | _ -> None)
                in
                match link with
                | Some (src, field, target)
                  when List.mem src sl && sr = [ target ] -> (
                  match Lprops.class_of lr target with
                  | None -> []
                  | Some target_cls ->
                    let residual = List.filter (fun a' -> a' <> a) p in
                    let inp_mem =
                      let base =
                        Bset.union
                          (Bset.filter (fun b -> List.mem b sl) required.Physprop.in_memory)
                          (bset
                             (List.filter (fun b -> List.mem b sl)
                                (Pred.memory_bindings residual)))
                      in
                      match field with Some _ -> Bset.add src base | None -> base
                    in
                    let pass_order = order_unless_introduced required [ target ] in
                    let inp = { Physprop.in_memory = inp_mem; order = pass_order } in
                    [ { Engine.cand_alg =
                          Physical.Pointer_join { src; field; out = target; residual };
                        cand_inputs = [ (gl, inp) ];
                        cand_cost =
                          Costmodel.pointer_join cfg cat ~target_cls
                            ~stream_card:ll.Lprops.card ~atoms:(List.length residual);
                        cand_delivers =
                          { Physprop.in_memory = Bset.add target inp_mem;
                            order = pass_order } } ])
                | Some _ | None -> [])
              p
        | _ -> []) }

(* ------------------------------------------------------------------ *)
(* Mat (and Mat chains) => Assembly                                     *)

let assembly_candidate cfg cat ctx ~required ~window ~input_group paths =
  let outs = bset (List.map (fun p -> p.Physical.ap_out) paths) in
  let srcs_mem =
    List.filter_map
      (fun p ->
        match p.Physical.ap_field with
        | Some _ when not (Bset.mem p.Physical.ap_src outs) -> Some p.Physical.ap_src
        | Some _ | None -> None)
      paths
  in
  let inp =
    { Physprop.in_memory =
        Bset.union (Bset.diff required.Physprop.in_memory outs) (bset srcs_mem);
      (* assembly preserves its input order, but an order on a binding it
         introduces cannot be required of the input *)
      order =
        order_unless_introduced required (List.map (fun p -> p.Physical.ap_out) paths) }
  in
  let input_lp = Engine.group_lprop ctx input_group in
  let stream_card = input_lp.Lprops.card in
  (* Classes reached by each path, for the extent-bounded fetch count. *)
  let classes =
    List.filter_map
      (fun p ->
        let src_cls b = Lprops.class_of input_lp b in
        match p.Physical.ap_field with
        | None -> (
          match src_cls p.Physical.ap_src with
          | Some c -> Some c
          | None ->
            (* source produced by an earlier path in this assembly *)
            List.find_map
              (fun q ->
                if q.Physical.ap_out = p.Physical.ap_src then
                  src_cls q.Physical.ap_src
                else None)
              paths)
        | Some f -> (
          let rec owner b =
            match src_cls b with
            | Some c -> Some c
            | None ->
              List.find_map
                (fun q ->
                  if q.Physical.ap_out = b then
                    match q.Physical.ap_field with
                    | Some qf -> (
                      match owner q.Physical.ap_src with
                      | Some c ->
                        Oodb_catalog.Schema.follow (Catalog.schema cat) ~cls:c qf
                      | None -> None)
                    | None -> owner q.Physical.ap_src
                  else None)
                paths
          in
          match owner p.Physical.ap_src with
          | Some c -> Oodb_catalog.Schema.follow (Catalog.schema cat) ~cls:c f
          | None -> None))
      paths
  in
  { Engine.cand_alg = Physical.Assembly { paths; window; warm = None };
    cand_inputs = [ (input_group, inp) ];
    cand_cost = Costmodel.assembly cfg cat ~window ~stream_card ~targets:classes;
    cand_delivers = { inp with Physprop.in_memory = Bset.union inp.Physprop.in_memory outs } }

(* Mat => warm-start assembly (paper Lesson 7): pre-scan the referenced
   collection so dereferences hit the buffer. Offered only when the
   collection fits the buffer pool. *)
let warm_assembly cfg cat =
  { Engine.i_name = "warm-assembly";
    i_promise = 55;
    i_apply =
      (fun ctx ~required m ->
        match m.Engine.mop, m.Engine.minputs with
        | Logical.Mat { src; field; out }, [ g ] -> (
          let input_lp = Engine.group_lprop ctx g in
          let target_cls =
            match field with
            | Some f ->
              Option.bind (Lprops.class_of input_lp src) (fun cls ->
                  Oodb_catalog.Schema.follow (Catalog.schema cat) ~cls f)
            | None -> Lprops.class_of input_lp src
          in
          match Option.map (Catalog.scannables_of_class cat) target_cls with
          | Some (co :: _)
            when co.Catalog.co_card * co.Catalog.co_obj_bytes
                 <= cfg.Config.buffer_pages * cfg.Config.page_bytes ->
            let path = { Physical.ap_src = src; ap_field = field; ap_out = out } in
            let inp =
              { Physprop.in_memory =
                  Bset.union
                    (Bset.diff required.Physprop.in_memory (Bset.singleton out))
                    (match field with Some _ -> Bset.singleton src | None -> Bset.empty);
                order = order_unless_introduced required [ out ] }
            in
            [ { Engine.cand_alg =
                  Physical.Assembly
                    { paths = [ path ];
                      window = cfg.Config.assembly_window;
                      warm = Some co.Catalog.co_name };
                cand_inputs = [ (g, inp) ];
                cand_cost =
                  Costmodel.warm_assembly cfg cat ~target_coll:co
                    ~stream_card:input_lp.Lprops.card;
                cand_delivers =
                  { inp with Physprop.in_memory = Bset.add out inp.Physprop.in_memory } } ]
          | _ -> [])
        | _ -> []) }

let mat_assembly cfg cat =
  { Engine.i_name = "mat-assembly";
    i_promise = 50;
    i_apply =
      (fun ctx ~required m ->
        match m.Engine.mop, m.Engine.minputs with
        | Logical.Mat { src; field; out }, [ g ] ->
          let window = cfg.Config.assembly_window in
          let path1 = { Physical.ap_src = src; ap_field = field; ap_out = out } in
          let single = assembly_candidate cfg cat ctx ~required ~window ~input_group:g [ path1 ] in
          (* Merged form: consume a whole chain of Mats in one assembly
             operator with several open-reference slots (paper Fig. 7). *)
          let rec chain g acc =
            let next =
              List.find_map
                (fun (m' : Engine.mexpr) ->
                  match m'.Engine.mop, m'.Engine.minputs with
                  | Logical.Mat { src; field; out }, [ g' ] -> Some ((src, field, out), g')
                  | _ -> None)
                (Engine.group_exprs ctx g)
            in
            match next with
            | Some ((src, field, out), g') when List.length acc < 8 ->
              chain g' ({ Physical.ap_src = src; ap_field = field; ap_out = out } :: acc)
            | _ -> (g, acc)
          in
          let bottom, below = chain g [] in
          let merged =
            if below = [] then []
            else
              [ assembly_candidate cfg cat ctx ~required ~window ~input_group:bottom
                  (below @ [ path1 ]) ]
          in
          single :: merged
        | _ -> []) }

(* ------------------------------------------------------------------ *)
(* Project => Alg-Project                                               *)

let alg_project cfg cat =
  { Engine.i_name = "alg-project";
    i_promise = 50;
    i_apply =
      (fun ctx ~required m ->
        match m.Engine.mop, m.Engine.minputs with
        | Logical.Project ps, [ g ] ->
          ignore cat;
          let mem =
            List.concat_map
              (fun (p : Logical.proj) ->
                match p.Logical.p_expr with
                | Pred.Field (b, _) -> [ b ]
                | Pred.Self b -> [ b ]
                | Pred.Const _ -> [])
              ps
          in
          let inp =
            { Physprop.in_memory = bset mem; order = required.Physprop.order }
          in
          let card = (Engine.group_lprop ctx g).Lprops.card in
          [ { Engine.cand_alg = Physical.Alg_project ps;
              cand_inputs = [ (g, inp) ];
              cand_cost = Costmodel.alg_project cfg ~card;
              cand_delivers = required } ]
        | _ -> []) }

(* ------------------------------------------------------------------ *)
(* Unnest => Alg-Unnest                                                 *)

let alg_unnest cfg cat =
  { Engine.i_name = "alg-unnest";
    i_promise = 50;
    i_apply =
      (fun ctx ~required m ->
        match m.Engine.mop, m.Engine.minputs with
        | Logical.Unnest { src; field; out }, [ g ] ->
          let inp =
            { Physprop.in_memory =
                Bset.add src (Bset.remove out required.Physprop.in_memory);
              order = order_unless_introduced required [ out ] }
          in
          let in_card = (Engine.group_lprop ctx g).Lprops.card in
          let out_card = (out_lprop cfg cat ctx m).Lprops.card in
          [ { Engine.cand_alg = Physical.Alg_unnest { src; field; out };
              cand_inputs = [ (g, inp) ];
              cand_cost = Costmodel.alg_unnest cfg ~in_card ~out_card;
              cand_delivers = inp } ]
        | _ -> []) }

(* ------------------------------------------------------------------ *)
(* Set operators => hash-based implementations                          *)

let hash_setop cfg cat =
  { Engine.i_name = "hash-setop";
    i_promise = 50;
    i_apply =
      (fun ctx ~required m ->
        match m.Engine.mop, m.Engine.minputs with
        | (Logical.Union | Logical.Intersect | Logical.Difference), [ gl; gr ] ->
          let alg =
            match m.Engine.mop with
            | Logical.Union -> Physical.Hash_union
            | Logical.Intersect -> Physical.Hash_intersect
            | _ -> Physical.Hash_difference
          in
          let inp = { Physprop.in_memory = required.Physprop.in_memory; order = None } in
          let ll = Engine.group_lprop ctx gl and lr = Engine.group_lprop ctx gr in
          let out = out_lprop cfg cat ctx m in
          [ { Engine.cand_alg = alg;
              cand_inputs = [ (gl, inp); (gr, inp) ];
              cand_cost =
                Costmodel.hash_setop cfg ~left_card:ll.Lprops.card ~right_card:lr.Lprops.card
                  ~out_card:out.Lprops.card;
              cand_delivers = inp } ]
        | _ -> []) }

let all cfg cat =
  [ file_scan cfg cat;
    collapse_index_scan cfg cat;
    filter cfg cat;
    hash_join cfg cat;
    merge_join cfg cat;
    pointer_join cfg cat;
    mat_assembly cfg cat;
    warm_assembly cfg cat;
    alg_project cfg cat;
    alg_unnest cfg cat;
    hash_setop cfg cat ]

let names =
  [ "file-scan";
    "collapse-index-scan";
    "filter";
    "hash-join";
    "merge-join";
    "pointer-join";
    "mat-assembly";
    "warm-assembly";
    "alg-project";
    "alg-unnest";
    "hash-setop" ]
