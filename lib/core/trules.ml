module Logical = Oodb_algebra.Logical
module Pred = Oodb_algebra.Pred
module Catalog = Oodb_catalog.Catalog
module Schema = Oodb_catalog.Schema
module Lprops = Oodb_cost.Lprops
open Model

(* Helpers ----------------------------------------------------------- *)

let subset xs ys = List.for_all (fun x -> List.mem x ys) xs

(* Atoms of [pred] whose memory/identity references all fall within
   [scope], and the rest. *)
let split_by_scope pred scope =
  List.partition (fun a -> subset (Pred.bindings_of_atom a) scope) pred

let select_over pred build = if pred = [] then build else Engine.Node (Logical.Select pred, [ build ])

(* The class a Mat produces, from the child group's scope. *)
let mat_target cat ctx g (src : string) (field : string option) =
  match Lprops.class_of (Engine.group_lprop ctx g) src with
  | None -> None
  | Some cls -> (
    match field with
    | None -> Some cls
    | Some field -> Schema.follow (Catalog.schema cat) ~cls field)

(* Rules -------------------------------------------------------------- *)

(* Select (Select x) => Select' x : merge stacked selections. *)
let select_merge =
  { Engine.t_name = "select-merge";
    t_apply =
      (fun ctx m ->
        match m.Engine.mop, m.Engine.minputs with
        | Logical.Select p, [ g ] ->
          Engine.group_exprs ctx g
          |> List.filter_map (fun (m' : Engine.mexpr) ->
                 match m'.Engine.mop, m'.Engine.minputs with
                 | Logical.Select q, [ g' ] ->
                   (* set union of conjuncts: merging must not duplicate
                      atoms (duplicates square their selectivity and can
                      make repeated merge/split diverge) *)
                   let merged = p @ List.filter (fun a -> not (List.mem a p)) q in
                   Some (Engine.Node (Logical.Select merged, [ Engine.Ref g' ]))
                 | _ -> None)
        | _ -> []) }

(* Select [a && rest] => Select [a] (Select [rest]): exposes each
   conjunct on its own, so that e.g. an indexable conjunct can collapse
   into an index scan while the rest stays a filter above it. *)
let select_split =
  { Engine.t_name = "select-split";
    t_apply =
      (fun _ctx m ->
        match m.Engine.mop, m.Engine.minputs with
        | Logical.Select p, [ g ] when List.length p >= 2 ->
          List.map
            (fun a ->
              let rest = List.filter (fun a' -> a' <> a) p in
              Engine.Node
                ( Logical.Select rest,
                  [ Engine.Node (Logical.Select [ a ], [ Engine.Ref g ]) ] ))
            p
        | _ -> []) }

(* Select (Mat x) => Mat (Select x), for conjuncts independent of the
   materialized binding. *)
let select_push_mat =
  { Engine.t_name = "select-push-mat";
    t_apply =
      (fun ctx m ->
        match m.Engine.mop, m.Engine.minputs with
        | Logical.Select p, [ g ] ->
          Engine.group_exprs ctx g
          |> List.filter_map (fun (m' : Engine.mexpr) ->
                 match m'.Engine.mop, m'.Engine.minputs with
                 | Logical.Mat { src; field; out }, [ g' ] ->
                   let indep, dep =
                     List.partition
                       (fun a -> not (List.mem out (Pred.bindings_of_atom a)))
                       p
                   in
                   if indep = [] then None
                   else
                     Some
                       (select_over dep
                          (Engine.Node
                             ( Logical.Mat { src; field; out },
                               [ Engine.Node (Logical.Select indep, [ Engine.Ref g' ]) ] )))
                 | _ -> None)
        | _ -> []) }

(* Select (Unnest x) => Unnest (Select x), likewise. *)
let select_push_unnest =
  { Engine.t_name = "select-push-unnest";
    t_apply =
      (fun ctx m ->
        match m.Engine.mop, m.Engine.minputs with
        | Logical.Select p, [ g ] ->
          Engine.group_exprs ctx g
          |> List.filter_map (fun (m' : Engine.mexpr) ->
                 match m'.Engine.mop, m'.Engine.minputs with
                 | (Logical.Unnest { out; _ } as unop), [ g' ] ->
                   let indep, dep =
                     List.partition
                       (fun a -> not (List.mem out (Pred.bindings_of_atom a)))
                       p
                   in
                   if indep = [] then None
                   else
                     Some
                       (select_over dep
                          (Engine.Node
                             ( unop,
                               [ Engine.Node (Logical.Select indep, [ Engine.Ref g' ]) ] )))
                 | _ -> None)
        | _ -> []) }

(* Select (Join (A, B)) => Join' (Select A, Select B): push single-side
   conjuncts down, merge two-sided conjuncts into the join predicate. *)
let select_push_join =
  { Engine.t_name = "select-push-join";
    t_apply =
      (fun ctx m ->
        match m.Engine.mop, m.Engine.minputs with
        | Logical.Select p, [ g ] ->
          Engine.group_exprs ctx g
          |> List.filter_map (fun (m' : Engine.mexpr) ->
                 match m'.Engine.mop, m'.Engine.minputs with
                 | Logical.Join jp, [ gl; gr ] ->
                   let sl = scope_of ctx gl and sr = scope_of ctx gr in
                   let la, rest = split_by_scope p sl in
                   let ra, cross = split_by_scope rest sr in
                   if la = [] && ra = [] && cross = [] then None
                   else
                     let left =
                       if la = [] then Engine.Ref gl
                       else Engine.Node (Logical.Select la, [ Engine.Ref gl ])
                     in
                     let right =
                       if ra = [] then Engine.Ref gr
                       else Engine.Node (Logical.Select ra, [ Engine.Ref gr ])
                     in
                     Some
                       (Engine.Node
                          (Logical.Join (Pred.normalize (jp @ cross)), [ left; right ]))
                 | _ -> None)
        | _ -> []) }

(* Join (A, B) => Join (B, A). Also breaks the build/probe convention
   tie: the first input of a hash join builds the table. *)
let join_commute =
  { Engine.t_name = "join-commute";
    t_apply =
      (fun _ctx m ->
        match m.Engine.mop, m.Engine.minputs with
        | Logical.Join p, [ gl; gr ] ->
          [ Engine.Node (Logical.Join p, [ Engine.Ref gr; Engine.Ref gl ]) ]
        | Logical.Cross, [ gl; gr ] ->
          [ Engine.Node (Logical.Cross, [ Engine.Ref gr; Engine.Ref gl ]) ]
        | _ -> []) }

(* Join (Join (A, B), C) => Join (A, Join (B, C)), redistributing the
   combined predicate by scope. *)
let join_assoc =
  { Engine.t_name = "join-assoc";
    t_apply =
      (fun ctx m ->
        match m.Engine.mop, m.Engine.minputs with
        | Logical.Join p1, [ gl; gr ] ->
          Engine.group_exprs ctx gl
          |> List.filter_map (fun (m' : Engine.mexpr) ->
                 match m'.Engine.mop, m'.Engine.minputs with
                 | Logical.Join p2, [ ga; gb ] ->
                   let inner_scope = scope_of ctx gb @ scope_of ctx gr in
                   let inner, outer = split_by_scope (p1 @ p2) inner_scope in
                   let inner = Pred.normalize inner and outer = Pred.normalize outer in
                   Some
                     (Engine.Node
                        ( Logical.Join outer,
                          [ Engine.Ref ga;
                            Engine.Node (Logical.Join inner, [ Engine.Ref gb; Engine.Ref gr ])
                          ] ))
                 | _ -> None)
        | _ -> []) }

(* Mat => Join: "if the scope introduced by a materialize operator is
   actually a scannable object (a set object, file, etc.), the
   materialize operator can be transformed into a join" (paper §3). *)
let mat_to_join cat =
  { Engine.t_name = "mat-to-join";
    t_apply =
      (fun ctx m ->
        match m.Engine.mop, m.Engine.minputs with
        | Logical.Mat { src; field; out }, [ g ] -> (
          match mat_target cat ctx g src field with
          | None -> []
          | Some target_cls ->
            Catalog.scannables_of_class cat target_cls
            |> List.map (fun (co : Catalog.collection) ->
                   let link =
                     match field with
                     | Some f -> Pred.atom Pred.Eq (Pred.Field (src, f)) (Pred.Self out)
                     | None -> Pred.atom Pred.Eq (Pred.Self src) (Pred.Self out)
                   in
                   Engine.Node
                     ( Logical.Join [ link ],
                       [ Engine.Ref g;
                         Engine.Node
                           (Logical.Get { coll = co.Catalog.co_name; binding = out }, [])
                       ] )))
        | _ -> []) }

(* Join (A, Get C) on a pure reference-equality link => Mat: the inverse
   of mat-to-join, re-establishing pointer traversal as an alternative. *)
let join_to_mat =
  { Engine.t_name = "join-to-mat";
    t_apply =
      (fun ctx m ->
        match m.Engine.mop, m.Engine.minputs with
        | Logical.Join [ atom ], [ gl; gr ] ->
          let right_get =
            Engine.group_exprs ctx gr
            |> List.exists (fun (m' : Engine.mexpr) ->
                   match m'.Engine.mop with Logical.Get _ -> true | _ -> false)
          in
          if not right_get then []
          else
            let sl = scope_of ctx gl and sr = scope_of ctx gr in
            let mk src field out =
              if List.mem src sl && sr = [ out ] then
                [ Engine.Node (Logical.Mat { src; field; out }, [ Engine.Ref gl ]) ]
              else []
            in
            (match Pred.ref_eq_sides atom with
            | Some (src, field, target) -> mk src (Some field) target
            | None -> (
              match atom.Pred.cmp, atom.Pred.lhs, atom.Pred.rhs with
              | Pred.Eq, Pred.Self a, Pred.Self b ->
                if List.mem a sl then mk a None b else mk b None a
              | _ -> []))
        | _ -> []) }

(* Mat m1 (Mat m2 X) => Mat m2 (Mat m1 X), when independent. *)
let mat_commute =
  { Engine.t_name = "mat-commute";
    t_apply =
      (fun ctx m ->
        match m.Engine.mop, m.Engine.minputs with
        | Logical.Mat ({ src = src1; _ } as m1), [ g ] ->
          let op1 = Logical.Mat m1 in
          Engine.group_exprs ctx g
          |> List.filter_map (fun (m' : Engine.mexpr) ->
                 match m'.Engine.mop, m'.Engine.minputs with
                 | (Logical.Mat { out = out2; _ } as op2), [ g' ] when src1 <> out2 ->
                   Some
                     (Engine.Node (op2, [ Engine.Node (op1, [ Engine.Ref g' ]) ]))
                 | _ -> None)
        | _ -> []) }

(* Mat (Join (A, B)) => Join (Mat A, B) / Join (A, Mat B): resolve a
   reference on the side that introduces its source. *)
let mat_push_join =
  { Engine.t_name = "mat-push-join";
    t_apply =
      (fun ctx m ->
        match m.Engine.mop, m.Engine.minputs with
        | Logical.Mat ({ src; _ } as mt), [ g ] ->
          let matop = Logical.Mat mt in
          Engine.group_exprs ctx g
          |> List.concat_map (fun (m' : Engine.mexpr) ->
                 match m'.Engine.mop, m'.Engine.minputs with
                 | Logical.Join jp, [ gl; gr ] ->
                   let push side other mk =
                     if List.mem src (scope_of ctx side) then
                       [ mk (Engine.Node (matop, [ Engine.Ref side ])) (Engine.Ref other) ]
                     else []
                   in
                   push gl gr (fun l r -> Engine.Node (Logical.Join jp, [ l; r ]))
                   @ push gr gl (fun r l -> Engine.Node (Logical.Join jp, [ l; r ]))
                 | _ -> [])
        | _ -> []) }

(* Join (Mat A, B) => Mat (Join (A, B)): pull a materialize above a join
   that does not consume its output. *)
let mat_pull_join =
  { Engine.t_name = "mat-pull-join";
    t_apply =
      (fun ctx m ->
        match m.Engine.mop, m.Engine.minputs with
        | Logical.Join jp, [ gl; gr ] ->
          let pull g_mat g_other mk =
            Engine.group_exprs ctx g_mat
            |> List.filter_map (fun (m' : Engine.mexpr) ->
                   match m'.Engine.mop, m'.Engine.minputs with
                   | (Logical.Mat { out; _ } as matop), [ g' ]
                     when not (List.mem out (Pred.bindings jp)) ->
                     Some
                       (Engine.Node (matop, [ mk (Engine.Ref g') (Engine.Ref g_other) ]))
                   | _ -> None)
          in
          pull gl gr (fun l r -> Engine.Node (Logical.Join jp, [ l; r ]))
          @ pull gr gl (fun r l -> Engine.Node (Logical.Join jp, [ l; r ]))
        | _ -> []) }

(* Union/Intersect (A, B) => (B, A). *)
let setop_commute =
  { Engine.t_name = "setop-commute";
    t_apply =
      (fun _ctx m ->
        match m.Engine.mop, m.Engine.minputs with
        | (Logical.Union | Logical.Intersect), [ gl; gr ] ->
          [ Engine.Node (m.Engine.mop, [ Engine.Ref gr; Engine.Ref gl ]) ]
        | _ -> []) }

(* Union (Union (A, B), C) => Union (A, Union (B, C)). *)
let setop_assoc =
  { Engine.t_name = "setop-assoc";
    t_apply =
      (fun ctx m ->
        match m.Engine.mop, m.Engine.minputs with
        | (Logical.Union | Logical.Intersect), [ gl; gr ] ->
          Engine.group_exprs ctx gl
          |> List.filter_map (fun (m' : Engine.mexpr) ->
                 match m'.Engine.mop, m'.Engine.minputs with
                 | op2, [ ga; gb ] when op2 = m.Engine.mop ->
                   Some
                     (Engine.Node
                        ( m.Engine.mop,
                          [ Engine.Ref ga;
                            Engine.Node (m.Engine.mop, [ Engine.Ref gb; Engine.Ref gr ]) ] ))
                 | _ -> None)
        | _ -> []) }

let all _cfg cat =
  [ select_merge;
    select_split;
    select_push_mat;
    select_push_unnest;
    select_push_join;
    join_commute;
    join_assoc;
    mat_to_join cat;
    join_to_mat;
    mat_commute;
    mat_push_join;
    mat_pull_join;
    setop_commute;
    setop_assoc ]

let names =
  [ "select-merge";
    "select-split";
    "select-push-mat";
    "select-push-unnest";
    "select-push-join";
    "join-commute";
    "join-assoc";
    "mat-to-join";
    "join-to-mat";
    "mat-commute";
    "mat-push-join";
    "mat-pull-join";
    "setop-commute";
    "setop-assoc" ]
