(** The Open OODB query optimizer: public entry point.

    Takes a logical algebra expression (usually produced by the ZQL
    simplifier), runs the Volcano search with the Open OODB rule set, and
    returns the optimal physical plan with its anticipated execution
    cost, the search statistics, and the wall-clock optimization time. *)

type outcome = {
  plan : Model.Engine.plan option;
      (** [None] only if no combination of algorithms can deliver the
          required properties (does not happen with the full rule set) *)
  stats : Model.Engine.stats;
  opt_seconds : float;  (** optimization time *)
  memo : Model.Engine.ctx;  (** final memo, for inspection *)
  root : Model.Engine.group;
}

val optimize :
  ?options:Options.t ->
  ?required:Physprop.t ->
  ?initial_limit:Oodb_cost.Cost.t ->
  ?closure_fuel:int ->
  ?trace:(Model.Engine.event -> unit) ->
  ?spans:Oodb_util.Span.t ->
  Oodb_catalog.Catalog.t ->
  Oodb_algebra.Logical.t ->
  outcome
(** Optimize a (well-formed) logical expression. [required] defaults to
    no required properties — the usual goal for a query root.
    [initial_limit] seeds branch-and-bound with a heuristic plan's cost
    (Volcano's heuristic-guidance mechanism, which the paper lists as
    unevaluated future work); if no plan at or below the limit exists
    the outcome carries no plan. [closure_fuel] bounds logical-closure
    work for rule-set diagnostics (see {!Model.Engine.run}). [trace]
    receives every search event (see {!Model.Engine.event}); leave it
    unset for the zero-overhead nil-sink fast path. [spans] collects an
    ["optimize"] span (category ["optimizer"]) enclosing the engine's
    per-phase spans (see {!Model.Engine.session}).
    @raise Invalid_argument if the expression is not well-formed, or if
    [options.verify] is on and the winning plan fails {!Planlint.plan} —
    the signature of an unsound rule. *)

val optimize_batch :
  ?options:Options.t ->
  ?closure_fuel:int ->
  ?trace:(Model.Engine.event -> unit) ->
  ?spans:Oodb_util.Span.t ->
  Oodb_catalog.Catalog.t ->
  (Oodb_algebra.Logical.t * Physprop.t) list ->
  outcome list
(** Optimize a batch of queries against {e one} shared memo
    ({!Model.Engine.session}): every root is registered before any is
    solved, so the logical closure runs once over the union of the
    queries and a subexpression common to several queries is expanded,
    costed and pruned exactly once — memo-level multi-query optimization
    (Roy et al., SIGMOD 2000). Outcomes are returned in input order;
    they all share the same [memo], whose statistics are
    session-cumulative (each outcome snapshots them at its completion,
    so [stats.groups] of the last outcome is the whole batch's group
    count). [opt_seconds] of each outcome covers its own registration
    and search, so later queries' smaller times show the sharing.
    Plans are identical in rows-produced (and, when no query adds
    alternatives to another's groups, identical in cost) to per-query
    {!optimize}. *)

val optimize_all :
  ?options:Options.t ->
  ?required:Physprop.t ->
  ?closure_fuel:int ->
  ?trace:(Model.Engine.event -> unit) ->
  ?spans:Oodb_util.Span.t ->
  Oodb_catalog.Catalog.t ->
  Oodb_algebra.Logical.t list ->
  outcome list
(** {!optimize_batch} with the same [required] properties (default none)
    for every query. *)

val cost : outcome -> Oodb_cost.Cost.t
(** Anticipated execution cost of the chosen plan.
    @raise Invalid_argument when no plan was found. *)

val plan_exn : outcome -> Model.Engine.plan

val explain : outcome -> string
(** Plan rendering in the style of the paper's figures, followed by the
    anticipated cost and search statistics. *)

val pp_stats : Format.formatter -> Model.Engine.stats -> unit
