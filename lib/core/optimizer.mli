(** The Open OODB query optimizer: public entry point.

    Takes a logical algebra expression (usually produced by the ZQL
    simplifier), runs the Volcano search with the Open OODB rule set, and
    returns the optimal physical plan with its anticipated execution
    cost, the search statistics, and the wall-clock optimization time. *)

type outcome = {
  plan : Model.Engine.plan option;
      (** [None] only if no combination of algorithms can deliver the
          required properties (does not happen with the full rule set) *)
  stats : Model.Engine.stats;
  opt_seconds : float;  (** optimization time *)
  memo : Model.Engine.ctx;  (** final memo, for inspection *)
  root : Model.Engine.group;
}

val optimize :
  ?options:Options.t ->
  ?required:Physprop.t ->
  ?initial_limit:Oodb_cost.Cost.t ->
  ?closure_fuel:int ->
  ?trace:(Model.Engine.event -> unit) ->
  Oodb_catalog.Catalog.t ->
  Oodb_algebra.Logical.t ->
  outcome
(** Optimize a (well-formed) logical expression. [required] defaults to
    no required properties — the usual goal for a query root.
    [initial_limit] seeds branch-and-bound with a heuristic plan's cost
    (Volcano's heuristic-guidance mechanism, which the paper lists as
    unevaluated future work); if no plan at or below the limit exists
    the outcome carries no plan. [closure_fuel] bounds logical-closure
    work for rule-set diagnostics (see {!Model.Engine.run}). [trace]
    receives every search event (see {!Model.Engine.event}); leave it
    unset for the zero-overhead nil-sink fast path.
    @raise Invalid_argument if the expression is not well-formed, or if
    [options.verify] is on and the winning plan fails {!Planlint.plan} —
    the signature of an unsound rule. *)

val cost : outcome -> Oodb_cost.Cost.t
(** Anticipated execution cost of the chosen plan.
    @raise Invalid_argument when no plan was found. *)

val plan_exn : outcome -> Model.Engine.plan

val explain : outcome -> string
(** Plan rendering in the style of the paper's figures, followed by the
    anticipated cost and search statistics. *)

val pp_stats : Format.formatter -> Model.Engine.stats -> unit
