(** Instantiation of the Volcano optimizer generator with the Open OODB
    data model: logical object algebra, physical algebra, presence-in-
    memory property, and the cost ADT. *)

module M : Volcano.MODEL
  with type Op.t = Oodb_algebra.Logical.op
   and type Alg.t = Physical.t
   and type Lprop.t = Oodb_cost.Lprops.t
   and type Typ.t = Oodb_algebra.Typing.t
   and type Pprop.t = Physprop.t
   and type Cost.t = Oodb_cost.Cost.t

module Engine : module type of Volcano.Make (M)

val expr_of_logical : Oodb_algebra.Logical.t -> Engine.expr

val scope_of : Engine.ctx -> Engine.group -> string list
(** Binding names in scope of a group, from its logical properties. *)
