module Logical = Oodb_algebra.Logical
module Lprops = Oodb_cost.Lprops

module M = struct
  module Op = struct
    type t = Logical.op

    let arity = Logical.arity

    let equal (a : t) (b : t) = Stdlib.compare a b = 0

    let hash (t : t) = Hashtbl.hash t

    let pp = Logical.pp_op
  end

  module Alg = struct
    type t = Physical.t

    let pp = Physical.pp
  end

  module Lprop = struct
    type t = Lprops.t

    let pp = Lprops.pp
  end

  module Typ = struct
    type t = Oodb_algebra.Typing.t

    let equal = Oodb_algebra.Typing.equal

    let pp = Oodb_algebra.Typing.pp
  end

  module Pprop = Physprop

  module Cost = Oodb_cost.Cost
end

module Engine = Volcano.Make (M)

let rec expr_of_logical (t : Logical.t) =
  Engine.Expr (t.Logical.op, List.map expr_of_logical t.Logical.inputs)

let scope_of ctx g = List.map fst (Engine.group_lprop ctx g).Lprops.bindings
