module Value = Oodb_storage.Value
module Store = Oodb_storage.Store
module Disk = Oodb_storage.Disk
module Buffer_pool = Oodb_storage.Buffer_pool
module Logical = Oodb_algebra.Logical
module Pred = Oodb_algebra.Pred
module Physical = Open_oodb.Physical
module Engine = Open_oodb.Model.Engine
module Config = Oodb_cost.Config

type row = (string * Value.t) list

(* Debug mode: refuse plans that fail the static linter before running
   them — a lint violation at this point means a hand-built or corrupted
   plan (the optimizer already checks its own output). *)
let debug_default =
  match Sys.getenv_opt "OODB_DEBUG" with
  | None | Some "" | Some "0" -> false
  | Some _ -> true

let lint_or_refuse db plan =
  match Open_oodb.Planlint.plan (Db.catalog db) plan with
  | Ok () -> ()
  | Error vs ->
    invalid_arg
      (Format.asprintf "Executor: refusing invalid plan:@.%a"
         Open_oodb.Planlint.pp_violations vs)

let rec iterator ?(config = Config.default) ?(wrap = fun _plan it -> it) db
    (plan : Engine.plan) =
  let child n =
    let cp = List.nth plan.Engine.children n in
    let it = iterator ~config ~wrap db cp in
    (* Carry only the objects the child promises in memory. *)
    Operators.trim
      (Open_oodb.Physprop.Bset.elements cp.Engine.delivered.Open_oodb.Physprop.in_memory)
      it
  in
  let bs = max 1 config.Config.batch_size in
  let it =
    match plan.Engine.alg, plan.Engine.children with
    | Physical.File_scan { coll; binding }, [] ->
      Operators.file_scan db ~coll ~binding ~batch_size:bs
    | Physical.Index_scan { coll; binding; index; key; residual; derefs }, [] ->
      Operators.index_scan db ~coll ~binding ~index ~key ~residual ~derefs ~batch_size:bs
    | Physical.Filter pred, [ _ ] -> Operators.filter pred (child 0)
    | Physical.Hash_join pred, [ _; _ ] ->
      Operators.hash_join db config pred ~build:(child 0) ~probe:(child 1)
    | Physical.Merge_join { key_l; key_r; residual }, [ _; _ ] ->
      Operators.merge_join ~key_l ~key_r ~residual ~batch_size:bs ~left:(child 0)
        ~right:(child 1)
    | Physical.Pointer_join { src; field; out; residual }, [ _ ] ->
      Operators.pointer_join db ~src ~field ~out ~residual (child 0)
    | Physical.Assembly { paths; window; warm }, [ _ ] ->
      Operators.assembly db ~paths ~window ~warm (child 0)
    | Physical.Alg_project ps, [ _ ] -> Operators.alg_project ps (child 0)
    | Physical.Alg_unnest { src; field; out }, [ _ ] ->
      Operators.alg_unnest db ~src ~field ~out ~batch_size:bs (child 0)
    | Physical.Hash_union, [ _; _ ] ->
      Operators.hash_union ~batch_size:bs (child 0) (child 1)
    | Physical.Hash_intersect, [ _; _ ] ->
      Operators.hash_intersect ~batch_size:bs (child 0) (child 1)
    | Physical.Hash_difference, [ _; _ ] ->
      Operators.hash_difference ~batch_size:bs (child 0) (child 1)
    | Physical.Sort o, [ _ ] -> Operators.sort o ~batch_size:bs (child 0)
    | _ -> invalid_arg "Executor.iterator: malformed plan (operator arity)"
  in
  wrap plan it

(* Row extraction: a root Alg-Project evaluates its expressions; any
   other root yields binding/OID pairs. *)
let rows_of (plan : Engine.plan) envs =
  match plan.Engine.alg with
  | Physical.Alg_project ps ->
    List.map
      (fun env ->
        List.map
          (fun (p : Logical.proj) -> (p.Logical.p_name, Eval.operand env p.Logical.p_expr))
          ps)
      envs
  | _ ->
    List.map
      (fun env ->
        List.map (fun b -> (b, Value.Ref (Env.oid env b))) (Env.bindings env))
      envs

let run ?(verify = debug_default) ?config db plan =
  if verify then lint_or_refuse db plan;
  let it = iterator ?config db plan in
  rows_of plan (Iterator.to_list it)

type io_report = {
  seq_reads : int;
  rand_reads : int;
  writes : int;
  buffer_hits : int;
  buffer_misses : int;
  buffer_evictions : int;
  rows : int;
  simulated_seconds : float;
}

(* A random read decomposes into settle/transfer (the assembly floor)
   plus seek time scaled by the actual arm travel, so elevator-ordered
   fetch patterns are measurably cheaper. Writes (spill partitions) are
   sequential. *)
let simulated_seconds_of (config : Config.t) (d : Disk.stats) =
  (float_of_int d.Disk.seq_reads *. config.Config.seq_io)
  +. (float_of_int d.Disk.rand_reads *. config.Config.asm_io_floor)
  +. (d.Disk.seek_units *. (config.Config.rand_io -. config.Config.asm_io_floor))
  +. (float_of_int d.Disk.writes *. config.Config.seq_io)

let report_of ~(config : Config.t) ~rows (d : Disk.stats) (b : Buffer_pool.stats) =
  { seq_reads = d.Disk.seq_reads;
    rand_reads = d.Disk.rand_reads;
    writes = d.Disk.writes;
    buffer_hits = b.Buffer_pool.hits;
    buffer_misses = b.Buffer_pool.misses;
    buffer_evictions = b.Buffer_pool.evictions;
    rows;
    simulated_seconds = simulated_seconds_of config d }

let run_measured ?verify ?(config = Config.default) db plan =
  let store = Db.store db in
  Disk.reset_stats (Store.disk store);
  Buffer_pool.reset_stats (Store.buffer store);
  Buffer_pool.flush (Store.buffer store);
  let rows = run ?verify ~config db plan in
  let d = Disk.stats (Store.disk store) in
  let b = Buffer_pool.stats (Store.buffer store) in
  (rows, report_of ~config ~rows:(List.length rows) d b)

let pp_report ppf r =
  Format.fprintf ppf
    "rows=%d io: %d seq + %d rand + %d write (buffer: %d hit / %d miss / %d evict), ~%.2fs \
     simulated disk"
    r.rows r.seq_reads r.rand_reads r.writes r.buffer_hits r.buffer_misses r.buffer_evictions
    r.simulated_seconds
