module Config = Oodb_cost.Config

type t = {
  open_ : unit -> unit;
  next_batch : unit -> Batch.t option;
  close : unit -> unit;
  (* Cursor backing the tuple-at-a-time compatibility shim. *)
  mutable cur : Batch.t;
  mutable pos : int;
}

let make_batched ~open_ ~next_batch ~close =
  { open_; next_batch; close; cur = Batch.empty; pos = 0 }

let open_ t =
  t.cur <- Batch.empty;
  t.pos <- 0;
  t.open_ ()

let close t = t.close ()

let next_batch t =
  if t.pos < Batch.length t.cur then begin
    (* hand the unconsumed remainder of the shim cursor back first *)
    let rest = Batch.drop t.cur t.pos in
    t.cur <- Batch.empty;
    t.pos <- 0;
    Some rest
  end
  else
    let rec pull () =
      match t.next_batch () with
      | Some b when Batch.is_empty b -> pull ()
      | r -> r
    in
    pull ()

let next t =
  let rec go () =
    if t.pos < Batch.length t.cur then begin
      let env = Batch.get t.cur t.pos in
      t.pos <- t.pos + 1;
      Some env
    end
    else
      match t.next_batch () with
      | None -> None
      | Some b ->
        t.cur <- b;
        t.pos <- 0;
        go ()
  in
  go ()

(* Tuple-level constructors: legacy producers batch their output up to
   [batch_size] so downstream batch consumers still amortize. *)

let batch_of_next ~batch_size next =
  match next () with
  | None -> None
  | Some env ->
    let acc = ref [ env ] in
    let n = ref 1 in
    let exhausted = ref false in
    while (not !exhausted) && !n < batch_size do
      match next () with
      | None -> exhausted := true
      | Some env ->
        acc := env :: !acc;
        incr n
    done;
    Some (Batch.of_list (List.rev !acc))

let make ~open_ ~next ~close =
  make_batched ~open_ ~close
    ~next_batch:(fun () -> batch_of_next ~batch_size:Config.default_batch_size next)

let of_gen ?(batch_size = Config.default_batch_size) factory =
  let batch_size = max 1 batch_size in
  let gen = ref (fun () -> None) in
  make_batched
    ~open_:(fun () -> gen := factory ())
    ~next_batch:(fun () -> batch_of_next ~batch_size !gen)
    ~close:(fun () -> gen := fun () -> None)

let of_batch_gen factory =
  let gen = ref (fun () -> None) in
  make_batched
    ~open_:(fun () -> gen := factory ())
    ~next_batch:(fun () -> !gen ())
    ~close:(fun () -> gen := fun () -> None)

let of_list_thunk ?(batch_size = Config.default_batch_size) thunk =
  let batch_size = max 1 batch_size in
  of_batch_gen (fun () ->
      let remaining = ref (thunk ()) in
      fun () ->
        match !remaining with
        | [] -> None
        | l ->
          let rec take n acc l =
            if n = 0 then (List.rev acc, l)
            else match l with [] -> (List.rev acc, []) | x :: rest -> take (n - 1) (x :: acc) rest
          in
          let chunk, rest = take batch_size [] l in
          remaining := rest;
          Some (Batch.of_list chunk))

(* Drains close the iterator on the way out even when the tree raises
   mid-stream, so a failing operator cannot leak its children's open
   resources. The original exception wins over any secondary failure
   raised by [close] itself. *)
let drain_protected t f =
  open_ t;
  match f () with
  | v ->
    close t;
    v
  | exception e ->
    (try close t with _ -> ());
    raise e

let to_list t =
  drain_protected t (fun () ->
      let rec drain acc =
        match next_batch t with
        | Some b -> drain (Batch.fold (fun acc env -> env :: acc) acc b)
        | None -> List.rev acc
      in
      drain [])

let iter f t =
  drain_protected t (fun () ->
      let rec go () =
        match next_batch t with
        | Some b ->
          Batch.iter f b;
          go ()
        | None -> ()
      in
      go ())
