(** Translation of optimizer plans into iterator trees and plan
    execution. *)

module Value = Oodb_storage.Value
module Engine = Open_oodb.Model.Engine
module Config = Oodb_cost.Config

type row = (string * Value.t) list
(** One result tuple: projected name/value pairs, or binding/[Ref] pairs
    for plans without a root projection. *)

val iterator :
  ?config:Config.t ->
  ?wrap:(Engine.plan -> Iterator.t -> Iterator.t) ->
  Db.t ->
  Engine.plan ->
  Iterator.t
(** Build the iterator tree for a physical plan. [wrap] is applied to
    every node's iterator as it is built (children before parents, and
    {e inside} the in-memory trim the parent applies), receiving the plan
    node it implements — the hook the per-operator profiler
    ({!Oodb_obs.Profile}) uses to interpose counting iterators. The
    default is the identity: no per-tuple indirection is added when no
    wrapper is requested. *)

val rows_of : Engine.plan -> Env.t list -> row list
(** Extract result rows from drained environments: a root Alg-Project
    evaluates its expressions; any other root yields binding/OID pairs.
    Exposed so drivers that build their own iterator (e.g. the
    per-operator profiler) extract rows the same way {!run} does. *)

val run : ?verify:bool -> ?config:Config.t -> Db.t -> Engine.plan -> row list
(** Execute to completion and extract result rows. [verify] runs the
    static plan linter ({!Open_oodb.Planlint.plan}) first and refuses the
    plan on any violation; it defaults to on when the [OODB_DEBUG]
    environment variable is set (non-empty, not ["0"]).
    @raise Invalid_argument when [verify] is on and the plan is invalid. *)

type io_report = {
  seq_reads : int;
  rand_reads : int;
  writes : int;
      (** spill traffic (hash-join partitioning); priced into
          [simulated_seconds] as sequential transfers *)
  buffer_hits : int;
  buffer_misses : int;
  buffer_evictions : int;
  rows : int;
  simulated_seconds : float;
      (** disk time under the cost model's per-page constants — the
          executed counterpart of the optimizer's anticipated I/O cost *)
}

val simulated_seconds_of : Config.t -> Oodb_storage.Disk.stats -> float
(** Disk time of a traffic (delta) under the cost model's constants —
    the pricing {!run_measured} applies to the whole query and the
    profiler applies to per-operator deltas. *)

val report_of :
  config:Config.t ->
  rows:int ->
  Oodb_storage.Disk.stats ->
  Oodb_storage.Buffer_pool.stats ->
  io_report
(** Assemble a report from (delta) statistics snapshots. *)

val run_measured :
  ?verify:bool -> ?config:Config.t -> Db.t -> Engine.plan -> row list * io_report
(** Like {!run}, but resets the disk/buffer statistics first and reports
    the traffic the plan caused. *)

val pp_report : Format.formatter -> io_report -> unit
