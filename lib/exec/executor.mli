(** Translation of optimizer plans into iterator trees and plan
    execution. *)

module Value = Oodb_storage.Value
module Engine = Open_oodb.Model.Engine
module Config = Oodb_cost.Config

type row = (string * Value.t) list
(** One result tuple: projected name/value pairs, or binding/[Ref] pairs
    for plans without a root projection. *)

val iterator : ?config:Config.t -> Db.t -> Engine.plan -> Iterator.t
(** Build the iterator tree for a physical plan. *)

val run : ?verify:bool -> ?config:Config.t -> Db.t -> Engine.plan -> row list
(** Execute to completion and extract result rows. [verify] runs the
    static plan linter ({!Open_oodb.Planlint.plan}) first and refuses the
    plan on any violation; it defaults to on when the [OODB_DEBUG]
    environment variable is set (non-empty, not ["0"]).
    @raise Invalid_argument when [verify] is on and the plan is invalid. *)

type io_report = {
  seq_reads : int;
  rand_reads : int;
  buffer_hits : int;
  rows : int;
  simulated_seconds : float;
      (** disk time under the cost model's per-page constants — the
          executed counterpart of the optimizer's anticipated I/O cost *)
}

val run_measured :
  ?verify:bool -> ?config:Config.t -> Db.t -> Engine.plan -> row list * io_report
(** Like {!run}, but resets the disk/buffer statistics first and reports
    the traffic the plan caused. *)

val pp_report : Format.formatter -> io_report -> unit
