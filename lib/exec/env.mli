(** Tuples flowing between execution operators.

    A tuple maps bindings to slots; a slot always carries the object's
    OID and optionally the materialized object. The distinction is the
    runtime counterpart of the optimizer's presence-in-memory property:
    reading a field of a non-materialized slot is a plan bug, and the
    executor raises {!Not_materialized} to surface it (the property
    machinery makes this unreachable for plans the optimizer emits). *)

module Value = Oodb_storage.Value
module Store = Oodb_storage.Store

exception Not_materialized of string

exception Unbound of string

type slot = { s_oid : Value.oid; s_obj : Store.obj option }

type t

val empty : t

val bind_obj : t -> string -> Store.obj -> t

val bind_ref : t -> string -> Value.oid -> t

val rebind_obj : t -> string -> Store.obj -> t
(** Replace (or add) a binding — used by assembly to materialize a slot
    in place. *)

val lookup : t -> string -> slot option

val oid : t -> string -> Value.oid
(** @raise Unbound *)

val obj : t -> string -> Store.obj
(** @raise Unbound / Not_materialized *)

val bindings : t -> string list
(** In binding order. *)

val merge : t -> t -> t
(** Disjoint union (right bindings appended). *)

val narrow : t -> string list -> t
(** Keep only the listed bindings. *)

val demote_except : t -> string list -> t
(** Drop the materialized object of every binding outside the list,
    keeping bare references; returns the tuple unchanged (physically)
    when nothing is materialized outside it. *)

val key_of : t -> string list -> Value.t list
(** OIDs of the listed bindings — the identity key used by set
    operations. @raise Unbound *)
