(** Bounded batches of tuples — the unit flowing between execution
    operators in the vectorized engine.

    A batch is an array of {!Env.t} plus an optional {e selection
    vector}: filters narrow a batch by listing the surviving indexes
    instead of copying tuples, so predicate chains touch each tuple once
    and allocate no intermediate arrays of environments. Transforming
    operators ([map], [filter_map]) produce dense batches. *)

type t

val empty : t

val of_array : Env.t array -> t
(** The array is owned by the batch; do not mutate it afterwards. *)

val of_list : Env.t list -> t

val length : t -> int
(** Live (selected) tuples. *)

val is_empty : t -> bool

val get : t -> int -> Env.t
(** [get t i] is the [i]-th live tuple (selection applied). *)

val iter : (Env.t -> unit) -> t -> unit

val fold : ('a -> Env.t -> 'a) -> 'a -> t -> 'a

val to_list : t -> Env.t list

val map : (Env.t -> Env.t) -> t -> t

val filter : (Env.t -> bool) -> t -> t
(** Refines the selection vector; the backing array is shared, no tuple
    is copied. Returns the batch unchanged when nothing is dropped. *)

val filter_map : (Env.t -> Env.t option) -> t -> t

val drop : t -> int -> t
(** [drop t pos] is the batch of live tuples from position [pos] on —
    the remainder a partially consumed tuple cursor hands back to batch
    consumers. *)
