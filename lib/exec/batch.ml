(* A bounded batch of tuples: a backing array plus an optional selection
   vector. Filters refine the selection vector in place of copying the
   backing array, so a chain of selective operators over one batch costs
   one array of indices per filter and zero tuple copies. *)

type t = {
  data : Env.t array;
  sel : int array option; (* live indexes into [data], in order; None = all *)
}

let empty = { data = [||]; sel = None }

let of_array data = { data; sel = None }

let of_list l = of_array (Array.of_list l)

let length t = match t.sel with Some s -> Array.length s | None -> Array.length t.data

let is_empty t = length t = 0

let get t i = match t.sel with Some s -> t.data.(s.(i)) | None -> t.data.(i)

let iter f t =
  match t.sel with
  | None -> Array.iter f t.data
  | Some s -> Array.iter (fun i -> f t.data.(i)) s

let fold f init t =
  match t.sel with
  | None -> Array.fold_left f init t.data
  | Some s -> Array.fold_left (fun acc i -> f acc t.data.(i)) init s

let to_list t = List.rev (fold (fun acc env -> env :: acc) [] t)

(* Dense output: transformations produce fresh tuples anyway, so there is
   nothing to share with the input's backing array. *)
let map f t =
  let n = length t in
  { data = Array.init n (fun i -> f (get t i)); sel = None }

let filter p t =
  let n = length t in
  let sel = Array.make n 0 in
  let k = ref 0 in
  (match t.sel with
  | None ->
    for i = 0 to n - 1 do
      if p t.data.(i) then begin
        sel.(!k) <- i;
        incr k
      end
    done
  | Some s ->
    for i = 0 to n - 1 do
      if p t.data.(s.(i)) then begin
        sel.(!k) <- s.(i);
        incr k
      end
    done);
  if !k = n then t else { data = t.data; sel = Some (Array.sub sel 0 !k) }

let filter_map f t =
  let out = ref [] in
  let n = ref 0 in
  iter
    (fun env ->
      match f env with
      | Some env' ->
        out := env' :: !out;
        incr n
      | None -> ())
    t;
  let arr = Array.make !n Env.empty in
  List.iteri (fun i env -> arr.(!n - 1 - i) <- env) !out;
  { data = arr; sel = None }

let drop t pos =
  let n = length t in
  if pos <= 0 then t
  else if pos >= n then empty
  else
    match t.sel with
    | Some s -> { data = t.data; sel = Some (Array.sub s pos (n - pos)) }
    | None -> { data = t.data; sel = Some (Array.init (n - pos) (fun i -> pos + i)) }
