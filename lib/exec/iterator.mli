(** Volcano-style demand-driven iterators, batch-at-a-time.

    The execution model is the Volcano pull protocol the paper plans to
    transfer to the Open OODB system, vectorized: every algorithm is an
    iterator over bounded {!Batch.t}s of {!Env.t} tuples, composed into
    a tree mirroring the physical plan. One [next_batch] call per batch
    replaces one closure call per tuple at every operator boundary.

    A tuple-at-a-time shim ({!next}) cursors over the current batch, so
    drivers written against the classic open/next/close protocol keep
    working unchanged; with batch size 1 the engine degrades to exactly
    the paper's tuple-at-a-time behavior. *)

type t

val make_batched :
  open_:(unit -> unit) ->
  next_batch:(unit -> Batch.t option) ->
  close:(unit -> unit) ->
  t
(** The primary constructor. [next_batch] returns [None] when
    exhausted; empty batches are legal but consumers skip them. *)

val make :
  open_:(unit -> unit) -> next:(unit -> Env.t option) -> close:(unit -> unit) -> t
(** Compatibility constructor for tuple-level producers: output is
    gathered into batches of the default size
    ({!Oodb_cost.Config.default_batch_size}). *)

val of_gen : ?batch_size:int -> (unit -> (unit -> Env.t option)) -> t
(** Build from a tuple-generator factory: [open_] calls the factory,
    [next_batch] gathers up to [batch_size] pulls, [close] drops it. *)

val of_batch_gen : (unit -> (unit -> Batch.t option)) -> t
(** Build from a batch-generator factory. *)

val open_ : t -> unit

val next_batch : t -> Batch.t option
(** Never returns an empty batch. A batch partially consumed through
    {!next} is handed back (its remainder) before the underlying
    producer is pulled again, so mixed tuple/batch consumption is
    coherent. *)

val next : t -> Env.t option
(** Tuple-at-a-time shim: cursors over the current batch and pulls the
    next one when it runs out. *)

val close : t -> unit

val to_list : t -> Env.t list
(** Open, drain batch-wise, close. If the iterator tree raises
    mid-drain, the tree is closed before the exception is re-raised, so
    no operator leaks open children. *)

val iter : (Env.t -> unit) -> t -> unit
(** Same exception-safety contract as {!to_list}. *)

val of_list_thunk : ?batch_size:int -> (unit -> Env.t list) -> t
(** Materializing source: the thunk runs at open time; output is served
    in batches of [batch_size] (default {!Oodb_cost.Config.default_batch_size}). *)
