module Value = Oodb_storage.Value
module Store = Oodb_storage.Store
module Disk = Oodb_storage.Disk
module Btree_index = Oodb_storage.Btree_index
module Pred = Oodb_algebra.Pred
module Logical = Oodb_algebra.Logical
module Physical = Open_oodb.Physical
module Config = Oodb_cost.Config

(* [take n l] splits off the first [n] elements — how operators that
   buffer unbounded output (joins, unnest) re-chunk it into bounded
   batches. *)
let take n l =
  let rec go n acc l =
    if n = 0 then (List.rev acc, l)
    else match l with [] -> (List.rev acc, []) | x :: rest -> go (n - 1) (x :: acc) rest
  in
  go n [] l

(* Demote slots of bindings outside [keep] to bare references. This is
   the runtime counterpart of the optimizer's delivered-properties
   vector: objects a plan node does not promise in memory are not
   carried (a real engine would not copy them into its output tuples),
   and any later attempt to read their fields raises
   [Env.Not_materialized], surfacing property-machinery bugs. *)
let trim keep child =
  Iterator.make_batched
    ~open_:(fun () -> Iterator.open_ child)
    ~next_batch:(fun () ->
      Option.map
        (Batch.map (fun env -> Env.demote_except env keep))
        (Iterator.next_batch child))
    ~close:(fun () -> Iterator.close child)

let file_scan db ~coll ~binding ~batch_size =
  let store = Db.store db in
  let batch_size = max 1 batch_size in
  let pos = ref 0 in
  Iterator.make_batched
    ~open_:(fun () -> pos := 0)
    ~next_batch:(fun () ->
      match Store.scan_batch store ~coll ~pos:!pos ~n:batch_size with
      | [||] -> None
      | objs ->
        pos := !pos + Array.length objs;
        Some (Batch.of_array (Array.map (fun o -> Env.bind_obj Env.empty binding o) objs)))
    ~close:(fun () -> ())

let index_scan db ~coll ~binding ~index ~key ~residual ~derefs ~batch_size =
  ignore coll;
  let store = Db.store db in
  let batch_size = max 1 batch_size in
  let ix =
    match Db.find_index db index with
    | Some ix -> ix
    | None -> invalid_arg (Printf.sprintf "Operators.index_scan: no physical index %s" index)
  in
  (* Re-emit the reference bindings of a collapsed Mat chain. The first
     link reads a field of the fetched root for free; deeper links must
     fetch the intermediate object (rare: multi-link paths below an
     unprojected root). *)
  let apply_deref env (src, field, out) =
    match field with
    | None -> Env.bind_ref env out (Env.oid env src)
    | Some f -> (
      let src_obj =
        match Env.lookup env src with
        | Some { Env.s_obj = Some o; _ } -> Some o
        | Some { Env.s_obj = None; s_oid } -> Some (Store.fetch store s_oid)
        | None -> None
      in
      match src_obj with
      | None -> env
      | Some o -> (
        match Value.as_ref (Store.field o f) with
        | Some oid -> Env.bind_ref env out oid
        | None -> env))
  in
  let pos = ref 0 in
  (* [lookup_batch] charges the descent at pos = 0, so once it comes back
     empty we must not probe again. *)
  let exhausted = ref false in
  Iterator.make_batched
    ~open_:(fun () ->
      pos := 0;
      exhausted := false)
    ~next_batch:(fun () ->
      if !exhausted then None
      else
        match Btree_index.lookup_batch ix key ~pos:!pos ~n:batch_size with
        | [] ->
          exhausted := true;
          None
        | oids ->
          pos := !pos + List.length oids;
          let b =
            Store.fetch_batch store oids
            |> List.map (fun o -> Env.bind_obj Env.empty binding o)
            |> Batch.of_list
            |> Batch.filter (fun env -> Eval.pred env residual)
          in
          Some
            (if derefs = [] then b
             else Batch.map (fun env -> List.fold_left apply_deref env derefs) b))
    ~close:(fun () -> ())

let filter pred child =
  Iterator.make_batched
    ~open_:(fun () -> Iterator.open_ child)
    ~next_batch:(fun () ->
      Option.map (Batch.filter (fun env -> Eval.pred env pred)) (Iterator.next_batch child))
    ~close:(fun () -> Iterator.close child)

(* ------------------------------------------------------------------ *)
(* Hybrid hash join                                                     *)

let operand_side build_scope op =
  let bs = Pred.bindings_of_operand op in
  if bs = [] then `Const
  else if List.for_all (fun b -> List.mem b build_scope) bs then `Build
  else if List.for_all (fun b -> not (List.mem b build_scope)) bs then `Probe
  else `Mixed

(* Split the conjunction into hash-key pairs (build operand, probe
   operand) and residual atoms. *)
let classify_atoms build_scope atoms =
  List.fold_left
    (fun (keys, residual) (a : Pred.atom) ->
      if a.Pred.cmp = Pred.Eq then
        match operand_side build_scope a.Pred.lhs, operand_side build_scope a.Pred.rhs with
        | `Build, `Probe -> ((a.Pred.lhs, a.Pred.rhs) :: keys, residual)
        | `Probe, `Build -> ((a.Pred.rhs, a.Pred.lhs) :: keys, residual)
        | _ -> (keys, a :: residual)
      else (keys, a :: residual))
    ([], []) atoms

let env_bytes store env =
  List.fold_left
    (fun acc b ->
      match Env.lookup env b with
      | Some { Env.s_obj = Some o; _ } -> acc +. float_of_int (Store.obj_bytes store ~coll:o.Store.coll)
      | Some _ | None -> acc)
    16.0 (Env.bindings env)

(* Simulated partitioning pass: write [bytes] to a temp segment and read
   them back, so spills are visible in the disk statistics. *)
let charge_spill store bytes =
  let disk = Store.disk store in
  let pages = int_of_float (Float.ceil (bytes /. float_of_int (Disk.page_size disk))) in
  if pages > 0 then begin
    let seg = Disk.alloc_segment disk ~name:"hashjoin-spill" in
    Disk.extend disk seg pages;
    for p = 0 to pages - 1 do
      Disk.write disk seg p
    done;
    for p = 0 to pages - 1 do
      Disk.read disk seg p
    done
  end

let hash_join db (cfg : Config.t) atoms ~build ~probe =
  let store = Db.store db in
  let batch_size = max 1 cfg.Config.batch_size in
  let probe_open = ref false in
  let probe_next = ref (fun () -> None) in
  let match_probe = ref (fun (_ : Env.t) -> []) in
  let pending = ref [] in
  let open_ () =
    pending := [];
    probe_open := false;
    let build_envs = Iterator.to_list build in
    let build_scope =
      match build_envs with [] -> [] | env :: _ -> Env.bindings env
    in
    let keys, residual = classify_atoms build_scope atoms in
    let build_key env = List.map (fun (b, _) -> Eval.operand env b) keys in
    let probe_key env = List.map (fun (_, p) -> Eval.operand env p) keys in
    let build_hash env = List.map (fun (b, _) -> Value.hash (Eval.operand env b)) keys in
    let probe_hash env = List.map (fun (_, p) -> Value.hash (Eval.operand env p)) keys in
    let table = Hashtbl.create (max 16 (List.length build_envs)) in
    let build_bytes = ref 0.0 in
    List.iter
      (fun env ->
        build_bytes := !build_bytes +. env_bytes store env;
        Hashtbl.add table (build_hash env) env)
      build_envs;
    (match_probe :=
       fun penv ->
         Hashtbl.find_all table (probe_hash penv)
         |> List.filter_map (fun benv ->
                (* re-check key values (hash collisions) and residual *)
                let merged = Env.merge benv penv in
                let key_ok =
                  List.for_all2 Value.equal (build_key benv) (probe_key penv)
                in
                if key_ok && Eval.pred merged residual then Some merged else None));
    let spilled = !build_bytes > float_of_int cfg.Config.memory_bytes in
    if spilled then begin
      charge_spill store !build_bytes;
      (* both sides take the extra partitioning pass *)
      let envs = Iterator.to_list probe in
      let bytes = List.fold_left (fun acc e -> acc +. env_bytes store e) 0.0 envs in
      charge_spill store bytes;
      let remaining = ref envs in
      probe_next :=
        fun () ->
          match !remaining with
          | [] -> None
          | l ->
            let chunk, rest = take batch_size l in
            remaining := rest;
            Some (Batch.of_list chunk)
    end
    else
      probe_next :=
        fun () ->
          if not !probe_open then begin
            Iterator.open_ probe;
            probe_open := true
          end;
          Iterator.next_batch probe
  in
  (* Accumulate matches across probe batches until a full output batch
     is ready: selective joins would otherwise pass tiny batches
     downstream and forfeit the amortization. *)
  let rec next_batch () =
    if List.length !pending >= batch_size then begin
      let chunk, rest = take batch_size !pending in
      pending := rest;
      Some (Batch.of_list chunk)
    end
    else
      match !probe_next () with
      | None ->
        if !pending = [] then None
        else begin
          let chunk = !pending in
          pending := [];
          Some (Batch.of_list chunk)
        end
      | Some pbatch ->
        (* rev_append of each (reversed-in-place) match list, un-reversed
           once at the end: emission order is preserved without the
           intermediate list [Batch.to_list] would build. *)
        let matches =
          List.rev
            (Batch.fold (fun acc env -> List.rev_append (!match_probe env) acc) [] pbatch)
        in
        pending := !pending @ matches;
        next_batch ()
  in
  let close () =
    pending := [];
    probe_next := (fun () -> None);
    match_probe := (fun _ -> []);
    if !probe_open then begin
      probe_open := false;
      Iterator.close probe
    end
  in
  Iterator.make_batched ~open_ ~next_batch ~close

(* ------------------------------------------------------------------ *)
(* Merge join over sorted inputs                                        *)

let merge_join ~key_l ~key_r ~residual ~batch_size ~left ~right =
  Iterator.of_list_thunk ~batch_size (fun () ->
      let ls = Array.of_list (Iterator.to_list left) in
      let rs = Array.of_list (Iterator.to_list right) in
      let kl env = Eval.operand env key_l and kr env = Eval.operand env key_r in
      let out = ref [] in
      let i = ref 0 and j = ref 0 in
      let nl = Array.length ls and nr = Array.length rs in
      while !i < nl && !j < nr do
        let c = Value.compare (kl ls.(!i)) (kr rs.(!j)) in
        if c < 0 then incr i
        else if c > 0 then incr j
        else begin
          (* emit the cross product of the two equal-key blocks *)
          let key = kl ls.(!i) in
          let i0 = !i and j0 = !j in
          while !i < nl && Value.equal (kl ls.(!i)) key do
            incr i
          done;
          while !j < nr && Value.equal (kr rs.(!j)) key do
            incr j
          done;
          for a = i0 to !i - 1 do
            for b = j0 to !j - 1 do
              let merged = Env.merge ls.(a) rs.(b) in
              if Eval.pred merged residual then out := merged :: !out
            done
          done
        end
      done;
      List.rev !out)

(* ------------------------------------------------------------------ *)

let pointer_join db ~src ~field ~out ~residual child =
  let store = Db.store db in
  Iterator.make_batched
    ~open_:(fun () -> Iterator.open_ child)
    ~next_batch:(fun () ->
      match Iterator.next_batch child with
      | None -> None
      | Some b ->
        (* Resolve the whole batch's references, then dereference them in
           one storage call; tuples with Null references are dropped. *)
        let pairs =
          Batch.fold
            (fun acc env ->
              let target =
                match field with
                | None -> Some (Env.oid env src)
                | Some f -> Value.as_ref (Store.field (Env.obj env src) f)
              in
              match target with None -> acc | Some oid -> (env, oid) :: acc)
            [] b
          |> List.rev
        in
        let objs = Store.fetch_batch store (List.map snd pairs) in
        let envs = List.map2 (fun (env, _) o -> Env.bind_obj env out o) pairs objs in
        Some (Batch.of_list envs |> Batch.filter (fun env -> Eval.pred env residual)))
    ~close:(fun () -> Iterator.close child)

(* ------------------------------------------------------------------ *)
(* Assembly: windowed, elevator-ordered dereferencing                   *)

let resolve_path store (path : Physical.assembly_path) batch =
  (* batch : Env.t option array; returns the batch with [ap_out]
     materialized, dropping tuples with Null references. *)
  let refs =
    Array.map
      (fun env ->
        match env with
        | None -> None
        | Some env -> (
          match path.Physical.ap_field with
          | None -> Some (env, Env.oid env path.Physical.ap_src)
          | Some f -> (
            match Value.as_ref (Store.field (Env.obj env path.Physical.ap_src) f) with
            | Some oid -> Some (env, oid)
            | None -> None)))
      batch
  in
  (* Elevator: fetch in physical address order. *)
  let order =
    refs |> Array.to_list
    |> List.mapi (fun i r -> (i, r))
    |> List.filter_map (fun (i, r) -> Option.map (fun (_, oid) -> (i, oid)) r)
    |> List.sort (fun (_, a) (_, b) ->
           compare (Store.location store a) (Store.location store b))
  in
  let fetched = Hashtbl.create 16 in
  List.iter
    (fun (i, oid) -> Hashtbl.replace fetched i (Store.fetch store oid))
    order;
  Array.mapi
    (fun i r ->
      match r with
      | None -> None
      | Some (env, _) -> (
        match Hashtbl.find_opt fetched i with
        | Some o -> Some (Env.rebind_obj env path.Physical.ap_out o)
        | None -> None))
    refs

let assembly db ~paths ~window ?(warm = None) child =
  let store = Db.store db in
  let window = max 1 window in
  let exhausted = ref false in
  Iterator.make_batched
    ~open_:(fun () ->
      exhausted := false;
      (* warm start (paper Lesson 7): stream the referenced collection
         into the buffer pool before assembling, so the per-reference
         faults below become hits *)
      (match warm with
      | Some coll -> Store.scan store ~coll (fun _ -> ())
      | None -> ());
      Iterator.open_ child)
    ~next_batch:(fun () ->
      if !exhausted then None
      else begin
        let batch = ref [] in
        let n = ref 0 in
        while (not !exhausted) && !n < window do
          match Iterator.next child with
          | None -> exhausted := true
          | Some env ->
            batch := env :: !batch;
            incr n
        done;
        if !batch = [] then None
        else begin
          let arr = Array.of_list (List.rev_map Option.some !batch) in
          let arr = List.fold_left (fun arr path -> resolve_path store path arr) arr paths in
          (* one output batch per assembly window *)
          Some (Batch.of_list (Array.to_list arr |> List.filter_map Fun.id))
        end
      end)
    ~close:(fun () -> Iterator.close child)

(* ------------------------------------------------------------------ *)

let alg_project ps child =
  let used =
    List.concat_map (fun (p : Logical.proj) -> Pred.bindings_of_operand p.Logical.p_expr) ps
  in
  Iterator.make_batched
    ~open_:(fun () -> Iterator.open_ child)
    ~next_batch:(fun () ->
      Option.map (Batch.map (fun env -> Env.narrow env used)) (Iterator.next_batch child))
    ~close:(fun () -> Iterator.close child)

let alg_unnest db ~src ~field ~out ~batch_size child =
  ignore db;
  let batch_size = max 1 batch_size in
  let pending = ref [] in
  (* Same accumulation as the hash join: expansions of successive child
     batches coalesce into full output batches. *)
  let rec next_batch () =
    if List.length !pending >= batch_size then begin
      let chunk, rest = take batch_size !pending in
      pending := rest;
      Some (Batch.of_list chunk)
    end
    else
      match Iterator.next_batch child with
      | None ->
        if !pending = [] then None
        else begin
          let chunk = !pending in
          pending := [];
          Some (Batch.of_list chunk)
        end
      | Some b ->
        pending :=
          !pending
          @ List.concat_map
              (fun env ->
                let elements =
                  match Store.field (Env.obj env src) field with
                  | v -> Value.set_elements v
                  | exception Not_found -> []
                in
                List.filter_map
                  (fun v -> Option.map (fun oid -> Env.bind_ref env out oid) (Value.as_ref v))
                  elements)
              (Batch.to_list b);
        next_batch ()
  in
  Iterator.make_batched
    ~open_:(fun () ->
      pending := [];
      Iterator.open_ child)
    ~next_batch
    ~close:(fun () ->
      pending := [];
      Iterator.close child)

(* ------------------------------------------------------------------ *)
(* Set operations (by tuple identity: the OIDs of all bindings).
   Env.bindings follows the branch's join order, and the two inputs of
   a set operation are free to join in different orders — the key must
   be canonical across branches, so sort the binding names first. *)

let env_key env = Env.key_of env (List.sort compare (Env.bindings env))

let hash_union ~batch_size left right =
  Iterator.of_list_thunk ~batch_size (fun () ->
      let seen = Hashtbl.create 64 in
      let emit acc env =
        let k = env_key env in
        if Hashtbl.mem seen k then acc
        else begin
          Hashtbl.add seen k ();
          env :: acc
        end
      in
      let acc = List.fold_left emit [] (Iterator.to_list left) in
      let acc = List.fold_left emit acc (Iterator.to_list right) in
      List.rev acc)

let hash_intersect ~batch_size left right =
  Iterator.of_list_thunk ~batch_size (fun () ->
      let rights = Hashtbl.create 64 in
      List.iter (fun env -> Hashtbl.replace rights (env_key env) ()) (Iterator.to_list right);
      let seen = Hashtbl.create 64 in
      Iterator.to_list left
      |> List.filter (fun env ->
             let k = env_key env in
             Hashtbl.mem rights k
             && not (Hashtbl.mem seen k)
             &&
             (Hashtbl.add seen k ();
              true)))

let hash_difference ~batch_size left right =
  Iterator.of_list_thunk ~batch_size (fun () ->
      let rights = Hashtbl.create 64 in
      List.iter (fun env -> Hashtbl.replace rights (env_key env) ()) (Iterator.to_list right);
      let seen = Hashtbl.create 64 in
      Iterator.to_list left
      |> List.filter (fun env ->
             let k = env_key env in
             (not (Hashtbl.mem rights k))
             && not (Hashtbl.mem seen k)
             &&
             (Hashtbl.add seen k ();
              true)))

let sort (o : Open_oodb.Physprop.order) ~batch_size child =
  let key env =
    match o.Open_oodb.Physprop.ord_field with
    | Some f -> Eval.operand env (Pred.Field (o.Open_oodb.Physprop.ord_binding, f))
    | None -> Value.Ref (Env.oid env o.Open_oodb.Physprop.ord_binding)
  in
  Iterator.of_list_thunk ~batch_size (fun () ->
      Iterator.to_list child
      |> List.stable_sort (fun a b -> Value.compare (key a) (key b)))
