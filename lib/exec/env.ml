module Value = Oodb_storage.Value
module Store = Oodb_storage.Store

exception Not_materialized of string

exception Unbound of string

type slot = { s_oid : Value.oid; s_obj : Store.obj option }

type t = (string * slot) list (* in binding order *)

let empty = []

let bind_obj t b (o : Store.obj) = t @ [ (b, { s_oid = o.Store.oid; s_obj = Some o }) ]

let bind_ref t b oid = t @ [ (b, { s_oid = oid; s_obj = None }) ]

let rebind_obj t b (o : Store.obj) =
  let slot = { s_oid = o.Store.oid; s_obj = Some o } in
  if List.mem_assoc b t then List.map (fun (b', s) -> if b' = b then (b', slot) else (b', s)) t
  else t @ [ (b, slot) ]

let lookup t b = List.assoc_opt b t

let oid t b =
  match lookup t b with Some s -> s.s_oid | None -> raise (Unbound b)

let obj t b =
  match lookup t b with
  | None -> raise (Unbound b)
  | Some { s_obj = Some o; _ } -> o
  | Some { s_obj = None; _ } -> raise (Not_materialized b)

let bindings t = List.map fst t

let merge a b = a @ b

let narrow t bs = List.filter (fun (b, _) -> List.mem b bs) t

let demote_except t keep =
  let demoted (b, s) = s.s_obj <> None && not (List.mem b keep) in
  if List.exists demoted t then
    List.map (fun ((b, s) as e) -> if demoted e then (b, { s with s_obj = None }) else e) t
  else t

let key_of t bs = List.map (fun b -> Value.Ref (oid t b)) bs
