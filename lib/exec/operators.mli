(** Execution operators: one constructor per physical algorithm.

    All operators are {!Iterator.t} factories producing and consuming
    {!Batch.t}s (the vectorized protocol; see {!Iterator}). Operators
    that control their own output granularity take a [batch_size];
    setting it to 1 degrades the engine to tuple-at-a-time behavior
    with identical row streams and I/O charges. Disk and buffer traffic
    is charged through the {!Db.t}'s store, so runs can be compared
    with the optimizer's anticipated costs. *)

module Value = Oodb_storage.Value
module Pred = Oodb_algebra.Pred
module Logical = Oodb_algebra.Logical
module Physical = Open_oodb.Physical
module Config = Oodb_cost.Config

val trim : string list -> Iterator.t -> Iterator.t
(** Demote slots of bindings outside the list to bare references — the
    runtime counterpart of a plan node's delivered in-memory properties. *)

val file_scan : Db.t -> coll:string -> binding:string -> batch_size:int -> Iterator.t
(** Reads [batch_size] objects per storage call ({!Store.scan_batch}),
    paying buffer-pool traffic per page range instead of per object. *)

val index_scan :
  Db.t -> coll:string -> binding:string -> index:string -> key:Value.t ->
  residual:Pred.t -> derefs:(string * string option * string) list ->
  batch_size:int -> Iterator.t
(** [derefs] are the collapsed Mat links whose output references the scan
    re-emits. @raise Invalid_argument when the physical index is missing. *)

val filter : Pred.t -> Iterator.t -> Iterator.t

val hash_join : Db.t -> Config.t -> Pred.t -> build:Iterator.t -> probe:Iterator.t -> Iterator.t
(** Equality conjuncts spanning both sides become the hash key; the rest
    are evaluated as residual predicates. A build side exceeding the
    memory budget triggers a simulated partitioning pass (temp-segment
    writes and re-reads) so the spill shows up in the I/O statistics. *)

val merge_join :
  key_l:Pred.operand -> key_r:Pred.operand -> residual:Pred.t ->
  batch_size:int -> left:Iterator.t -> right:Iterator.t -> Iterator.t
(** Both inputs must arrive ordered on their key (ensured by the
    optimizer's order property). Handles duplicate key blocks on both
    sides. *)

val pointer_join :
  Db.t -> src:string -> field:string option -> out:string -> residual:Pred.t ->
  Iterator.t -> Iterator.t

val assembly :
  Db.t -> paths:Physical.assembly_path list -> window:int ->
  ?warm:string option -> Iterator.t -> Iterator.t
(** Maintains a window of open references per path and fetches each
    window in physical disk order (elevator). Tuples whose reference is
    [Null] are dropped. [warm] pre-scans a collection into the buffer
    pool (the paper's Lesson 7 warm-start variant). *)

val alg_project : Logical.proj list -> Iterator.t -> Iterator.t
(** Narrows tuples to the bindings the projections mention; row
    construction happens in {!Executor.run}. *)

val alg_unnest :
  Db.t -> src:string -> field:string -> out:string -> batch_size:int ->
  Iterator.t -> Iterator.t

val hash_union : batch_size:int -> Iterator.t -> Iterator.t -> Iterator.t

val hash_intersect : batch_size:int -> Iterator.t -> Iterator.t -> Iterator.t

val hash_difference : batch_size:int -> Iterator.t -> Iterator.t -> Iterator.t

val sort : Open_oodb.Physprop.order -> batch_size:int -> Iterator.t -> Iterator.t
