(** LRU buffer pool in front of the simulated {!Disk}.

    All page accesses made by the execution engine go through a pool, so
    that repeated dereferences of hot objects (e.g. the 1,000 departments
    shared by 50,000 employees in the paper's Query 1) hit in memory
    instead of re-reading the disk — the effect the paper notes can only
    be studied "in the context of a real, working system". *)

type t

type stats = { hits : int; misses : int; evictions : int }

val create : Disk.t -> capacity_pages:int -> t
(** [capacity_pages] must be positive. *)

val capacity : t -> int

val resident : t -> int
(** Number of pages currently cached. *)

val read : t -> Disk.segment -> int -> unit
(** Read a page through the pool: a hit costs nothing on the disk, a miss
    performs {!Disk.read} and may evict the least recently used page. *)

val contains : t -> Disk.segment -> int -> bool

val flush : t -> unit
(** Drop all cached pages (statistics are preserved). *)

val stats : t -> stats

val reset_stats : t -> unit

val sub : stats -> stats -> stats
(** Componentwise difference between two snapshots. *)
