(* Classic O(1) LRU: hash table from absolute page address to a node of an
   intrusive doubly-linked list ordered most- to least-recently used. *)

type node = {
  addr : int;
  seg : Disk.segment;
  page : int;
  mutable prev : node option;
  mutable next : node option;
}

type stats = { hits : int; misses : int; evictions : int }

type t = {
  disk : Disk.t;
  cap : int;
  table : (int, node) Hashtbl.t;
  mutable mru : node option;
  mutable lru : node option;
  mutable count : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create disk ~capacity_pages =
  if capacity_pages <= 0 then invalid_arg "Buffer_pool.create: capacity must be positive";
  { disk;
    cap = capacity_pages;
    table = Hashtbl.create 1024;
    mru = None;
    lru = None;
    count = 0;
    hits = 0;
    misses = 0;
    evictions = 0 }

let capacity t = t.cap

let resident t = t.count

let unlink t node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> t.mru <- node.next);
  (match node.next with
  | Some n -> n.prev <- node.prev
  | None -> t.lru <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.mru;
  node.prev <- None;
  (match t.mru with Some m -> m.prev <- Some node | None -> t.lru <- Some node);
  t.mru <- Some node

let evict_lru t =
  match t.lru with
  | None -> ()
  | Some victim ->
    unlink t victim;
    Hashtbl.remove t.table victim.addr;
    t.count <- t.count - 1;
    t.evictions <- t.evictions + 1

let read t seg page =
  let addr = Disk.abs_page t.disk seg page in
  match Hashtbl.find_opt t.table addr with
  | Some node ->
    t.hits <- t.hits + 1;
    unlink t node;
    push_front t node
  | None ->
    t.misses <- t.misses + 1;
    Disk.read t.disk seg page;
    if t.count >= t.cap then evict_lru t;
    let node = { addr; seg; page; prev = None; next = None } in
    Hashtbl.add t.table addr node;
    push_front t node;
    t.count <- t.count + 1

let contains t seg page = Hashtbl.mem t.table (Disk.abs_page t.disk seg page)

let flush t =
  Hashtbl.reset t.table;
  t.mru <- None;
  t.lru <- None;
  t.count <- 0

let stats t = { hits = t.hits; misses = t.misses; evictions = t.evictions }

let sub (a : stats) (b : stats) =
  { hits = a.hits - b.hits; misses = a.misses - b.misses; evictions = a.evictions - b.evictions }

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0;
  t.evictions <- 0
