(** Simulated B+-tree index over a collection.

    The index is built from an arbitrary key extraction function, which is
    how both plain field indexes ([Tasks] on [time]) and the paper's path
    indexes ([Cities] on [mayor().name()]) are expressed: a path index's
    extractor dereferences intermediate objects at build time, so lookups
    never touch the intermediate objects — exactly the behaviour the
    collapse-to-index-scan rule exploits in Query 2.

    Lookups charge simulated I/O for the root-to-leaf descent plus the
    leaf pages holding the matching entries. Matching OIDs are returned in
    key order; fetching the objects themselves is the caller's business
    (and its cost). *)

type t

val build :
  Store.t -> name:string -> coll:string -> key:(Value.oid -> Value.t) -> t
(** Build over the current members of [coll]. Entries with [Null] keys are
    indexed under [Null] (queries never look them up). Building charges no
    I/O. *)

val name : t -> string

val collection : t -> string

val entry_count : t -> int

val distinct_keys : t -> int

val height : t -> int
(** Levels from root to leaf, >= 1. *)

val leaf_pages : t -> int

val lookup : t -> Value.t -> Value.oid list
(** Equality probe. *)

val lookup_batch : t -> Value.t -> pos:int -> n:int -> Value.oid list
(** Equality probe, one batch at a time: matches [\[pos, pos+n)] of the
    full match list in key order, [\[\]] once exhausted. The descent is
    charged only at [pos = 0] and each leaf page exactly once across a
    full drain, so the summed I/O of the slices equals one {!lookup}.
    @raise Invalid_argument on negative [pos] or [n < 1]. *)

val lookup_range : t -> lo:Value.t option -> hi:Value.t option -> Value.oid list
(** Inclusive range scan; [None] bounds are open ends. *)
