(** Simulated object store.

    Objects belong to a named {e collection} (a user-defined set such as
    [Cities], or a type extent such as [extent(Job)]); each collection is
    a disk segment in which objects are densely packed in insertion order,
    matching the paper's assumption that "objects in user-defined sets and
    type extents are densely packed on pages".

    Object field data is held in memory for simplicity, but every access
    path that a real system would pay I/O for ([fetch], [scan]) charges
    the simulated {!Disk} through the {!Buffer_pool}, so execution-engine
    measurements reflect the paper's storage model. [peek] reads without
    charging and is meant for catalogs, statistics, data generation, and
    tests. *)

type t

type obj = {
  oid : Value.oid;
  cls : string;  (** class (type) name *)
  coll : string; (** owning collection *)
  fields : (string * Value.t) array;
}

val create : ?page_size:int -> ?buffer_pages:int -> unit -> t
(** Defaults: 4096-byte pages, 2048 buffered pages (8 MB). *)

val disk : t -> Disk.t

val buffer : t -> Buffer_pool.t

val declare_collection : t -> name:string -> cls:string -> obj_bytes:int -> unit
(** Declare a collection before inserting into it.
    @raise Invalid_argument on duplicate names or non-positive sizes. *)

val collections : t -> string list

val insert : t -> coll:string -> (string * Value.t) list -> Value.oid
(** Append an object; allocates disk pages as needed. No I/O is charged
    (bulk loading is not part of any measured experiment). *)

val set_field : t -> Value.oid -> string -> Value.t -> unit
(** Update a field in place (used to wire cyclic references during data
    generation). Charges nothing. *)

val fetch : t -> Value.oid -> obj
(** Dereference an OID, charging buffered page reads for every page the
    object spans. @raise Not_found for dangling OIDs. *)

val peek : t -> Value.oid -> obj
(** Like [fetch] but free: no simulated I/O. *)

val field : obj -> string -> Value.t
(** @raise Not_found if the object has no such field. *)

val scan : t -> coll:string -> (obj -> unit) -> unit
(** Sequential scan in physical order, charging each page once. *)

val scan_batch : t -> coll:string -> pos:int -> n:int -> obj array
(** The batch read path of the vectorized engine: objects in slots
    [\[pos, pos+n)] (clipped to the collection) in physical order, with
    one buffer-pool interaction per page the range spans rather than
    one per object. Empty when [pos] is past the end; with [n = 1] the
    charges are exactly {!fetch}'s.
    @raise Invalid_argument on negative [pos] or [n < 1]. *)

val fetch_batch : t -> Value.oid list -> obj list
(** Dereference a batch of OIDs in one storage call, charging per
    object exactly what {!fetch} charges. @raise Not_found on dangling
    OIDs. *)

val oids : t -> coll:string -> Value.oid list
(** Members in physical order, free of charge. *)

val cardinality : t -> coll:string -> int

val segment : t -> coll:string -> Disk.segment

val obj_bytes : t -> coll:string -> int

val location : t -> Value.oid -> Disk.segment * int
(** First (segment, page) of the object — the sort key for elevator
    scheduling in the assembly operator. *)

val class_of : t -> Value.oid -> string
(** Class of an object, free of charge (OID tables are resident). *)
