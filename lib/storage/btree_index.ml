(* Entries are kept in a sorted array; the page layout (leaf fanout,
   internal fanout, height) is simulated from entry counts so that lookups
   can charge a realistic number of page reads without materializing the
   tree. 16 bytes per leaf entry (key digest + OID) and 16 per separator
   give fanouts of page_size / 16. *)

type entry = { key : Value.t; oid : Value.oid }

type t = {
  name : string;
  coll : string;
  store : Store.t;
  seg : Disk.segment;
  entries : entry array; (* sorted by (key, oid) *)
  leaf_fanout : int;
  distinct : int;
  height : int;
  leaf_pages : int;
}

let compare_entry a b =
  let c = Value.compare a.key b.key in
  if c <> 0 then c else Int.compare a.oid b.oid

let build store ~name ~coll ~key =
  let entries =
    Store.oids store ~coll
    |> List.map (fun oid -> { key = key oid; oid })
    |> Array.of_list
  in
  Array.sort compare_entry entries;
  let n = Array.length entries in
  let psize = Disk.page_size (Store.disk store) in
  let fanout = max 2 (psize / 16) in
  let leaf_pages = max 1 ((n + fanout - 1) / fanout) in
  let rec levels pages acc = if pages <= 1 then acc else levels ((pages + fanout - 1) / fanout) (acc + 1) in
  let height = 1 + levels leaf_pages 0 in
  let internal_pages =
    let rec go pages acc =
      if pages <= 1 then acc + (if acc = 0 then 0 else 1)
      else
        let parents = (pages + fanout - 1) / fanout in
        go parents (acc + parents)
    in
    if leaf_pages <= 1 then 0 else go leaf_pages 0
  in
  let distinct =
    let d = ref 0 in
    Array.iteri
      (fun i e -> if i = 0 || Value.compare entries.(i - 1).key e.key <> 0 then incr d)
      entries;
    !d
  in
  let seg = Disk.alloc_segment (Store.disk store) ~name:("idx:" ^ name) in
  Disk.extend (Store.disk store) seg (leaf_pages + max 0 internal_pages);
  { name; coll; store; seg; entries; leaf_fanout = fanout; distinct; height; leaf_pages }

let name t = t.name

let collection t = t.coll

let entry_count t = Array.length t.entries

let distinct_keys t = t.distinct

let height t = t.height

let leaf_pages t = t.leaf_pages

(* First index whose entry key is >= [key] (w.r.t. Value.compare). *)
let lower_bound t key =
  let lo = ref 0 and hi = ref (Array.length t.entries) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Value.compare t.entries.(mid).key key < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

(* First index whose entry key is > [key]. *)
let upper_bound t key =
  let lo = ref 0 and hi = ref (Array.length t.entries) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Value.compare t.entries.(mid).key key <= 0 then lo := mid + 1 else hi := mid
  done;
  !lo

let charge_descent t first_leaf =
  let buffer = Store.buffer t.store in
  (* Internal pages are laid out after the leaves; charge one page per
     internal level, then the starting leaf's page. *)
  for level = 1 to t.height - 1 do
    let page = min (Disk.segment_pages t.seg - 1) (t.leaf_pages + level - 1) in
    if page >= 0 && Disk.segment_pages t.seg > 0 then Buffer_pool.read buffer t.seg page
  done;
  if Disk.segment_pages t.seg > 0 then Buffer_pool.read buffer t.seg (min first_leaf (Disk.segment_pages t.seg - 1))

let charge_leaves t first last =
  (* [first, last) entry range; charge each additional leaf page. *)
  if last > first then begin
    let buffer = Store.buffer t.store in
    let first_leaf = first / t.leaf_fanout in
    let last_leaf = (last - 1) / t.leaf_fanout in
    for leaf = first_leaf + 1 to last_leaf do
      Buffer_pool.read buffer t.seg leaf
    done
  end

let slice t first last =
  let rec go i acc = if i < first then acc else go (i - 1) (t.entries.(i).oid :: acc) in
  if last <= first then [] else go (last - 1) []

let lookup t key =
  let first = lower_bound t key in
  let last = upper_bound t key in
  charge_descent t (if Array.length t.entries = 0 then 0 else min first (Array.length t.entries - 1) / t.leaf_fanout);
  charge_leaves t first last;
  slice t first last

let lookup_batch t key ~pos ~n =
  if pos < 0 then invalid_arg "Btree_index.lookup_batch: negative position";
  if n < 1 then invalid_arg "Btree_index.lookup_batch: batch size must be >= 1";
  let first = lower_bound t key in
  let last = upper_bound t key in
  (* Charge the root-to-leaf descent only on the first slice; later
     slices resume from the leaf the previous one ended on.  Summed over
     a full drain the charges are exactly [lookup]'s. *)
  if pos = 0 then
    charge_descent t
      (if Array.length t.entries = 0 then 0
       else min first (Array.length t.entries - 1) / t.leaf_fanout);
  let a = first + pos in
  let b = min last (a + n) in
  if a >= b then []
  else begin
    let buffer = Store.buffer t.store in
    let start_leaf =
      if pos = 0 then (a / t.leaf_fanout) + 1
      else max (a / t.leaf_fanout) (((a - 1) / t.leaf_fanout) + 1)
    in
    for leaf = start_leaf to (b - 1) / t.leaf_fanout do
      Buffer_pool.read buffer t.seg leaf
    done;
    slice t a b
  end

let lookup_range t ~lo ~hi =
  let first = match lo with Some v -> lower_bound t v | None -> 0 in
  let last = match hi with Some v -> upper_bound t v | None -> Array.length t.entries in
  charge_descent t (if Array.length t.entries = 0 then 0 else min first (Array.length t.entries - 1) / t.leaf_fanout);
  charge_leaves t first last;
  slice t first last
