type obj = {
  oid : Value.oid;
  cls : string;
  coll : string;
  fields : (string * Value.t) array;
}

type coll_info = {
  c_name : string;
  c_cls : string;
  c_obj_bytes : int;
  c_seg : Disk.segment;
  c_per_page : int;       (* objects per page; 1 when objects span pages *)
  c_pages_per_obj : int;  (* pages per object; 1 when objects share pages *)
  mutable c_members : Value.oid list; (* reverse insertion order *)
  mutable c_members_arr : Value.oid array option; (* slot-order cache *)
  mutable c_count : int;
}

type t = {
  disk : Disk.t;
  buffer : Buffer_pool.t;
  colls : (string, coll_info) Hashtbl.t;
  objects : (Value.oid, obj) Hashtbl.t;
  slots : (Value.oid, coll_info * int) Hashtbl.t; (* oid -> (collection, slot index) *)
  mutable next_oid : Value.oid;
}

let create ?(page_size = 4096) ?(buffer_pages = 2048) () =
  let disk = Disk.create ~page_size () in
  { disk;
    buffer = Buffer_pool.create disk ~capacity_pages:buffer_pages;
    colls = Hashtbl.create 32;
    objects = Hashtbl.create 4096;
    slots = Hashtbl.create 4096;
    next_oid = 1 }

let disk t = t.disk

let buffer t = t.buffer

let declare_collection t ~name ~cls ~obj_bytes =
  if obj_bytes <= 0 then invalid_arg "Store.declare_collection: obj_bytes must be positive";
  if Hashtbl.mem t.colls name then
    invalid_arg (Printf.sprintf "Store.declare_collection: duplicate collection %s" name);
  let psize = Disk.page_size t.disk in
  let per_page = max 1 (psize / obj_bytes) in
  let pages_per_obj = if obj_bytes <= psize then 1 else (obj_bytes + psize - 1) / psize in
  Hashtbl.add t.colls name
    { c_name = name;
      c_cls = cls;
      c_obj_bytes = obj_bytes;
      c_seg = Disk.alloc_segment t.disk ~name;
      c_per_page = per_page;
      c_pages_per_obj = pages_per_obj;
      c_members = [];
      c_members_arr = None;
      c_count = 0 }

let collections t = Hashtbl.fold (fun name _ acc -> name :: acc) t.colls []

let get_coll t name =
  match Hashtbl.find_opt t.colls name with
  | Some c -> c
  | None -> invalid_arg (Printf.sprintf "Store: unknown collection %s" name)

(* First page index of the object in slot [i]. *)
let first_page c i = if c.c_pages_per_obj > 1 then i * c.c_pages_per_obj else i / c.c_per_page

let last_page_needed c count =
  if count = 0 then 0 else first_page c (count - 1) + c.c_pages_per_obj

let insert t ~coll fields =
  let c = get_coll t coll in
  let oid = t.next_oid in
  t.next_oid <- oid + 1;
  let slot = c.c_count in
  c.c_count <- slot + 1;
  c.c_members <- oid :: c.c_members;
  c.c_members_arr <- None;
  let needed = last_page_needed c c.c_count in
  let have = Disk.segment_pages c.c_seg in
  if needed > have then Disk.extend t.disk c.c_seg (needed - have);
  let obj = { oid; cls = c.c_cls; coll; fields = Array.of_list fields } in
  Hashtbl.add t.objects oid obj;
  Hashtbl.add t.slots oid (c, slot);
  oid

let peek t oid =
  match Hashtbl.find_opt t.objects oid with
  | Some o -> o
  | None -> raise Not_found

let set_field t oid name v =
  let o = peek t oid in
  let rec go i =
    if i >= Array.length o.fields then
      invalid_arg (Printf.sprintf "Store.set_field: object %d has no field %s" oid name)
    else if fst o.fields.(i) = name then o.fields.(i) <- (name, v)
    else go (i + 1)
  in
  go 0

let fetch t oid =
  let o = peek t oid in
  let c, slot = Hashtbl.find t.slots oid in
  let page0 = first_page c slot in
  for p = page0 to page0 + c.c_pages_per_obj - 1 do
    Buffer_pool.read t.buffer c.c_seg p
  done;
  o

let field o name =
  let rec go i =
    if i >= Array.length o.fields then raise Not_found
    else if fst o.fields.(i) = name then snd o.fields.(i)
    else go (i + 1)
  in
  go 0

let members_array c =
  match c.c_members_arr with
  | Some a -> a
  | None ->
    let a = Array.of_list (List.rev c.c_members) in
    c.c_members_arr <- Some a;
    a

let oids t ~coll = List.rev (get_coll t coll).c_members

let scan_batch t ~coll ~pos ~n =
  if pos < 0 then invalid_arg "Store.scan_batch: negative position";
  if n < 1 then invalid_arg "Store.scan_batch: batch size must be >= 1";
  let c = get_coll t coll in
  let members = members_array c in
  let count = Array.length members in
  if pos >= count then [||]
  else begin
    let stop = min count (pos + n) in
    (* One buffer-pool interaction per page the slot range spans — the
       page-granular counterpart of per-object [fetch]. With n = 1 the
       charges are exactly [fetch]'s. *)
    let last = first_page c (stop - 1) + c.c_pages_per_obj - 1 in
    for p = first_page c pos to last do
      Buffer_pool.read t.buffer c.c_seg p
    done;
    Array.init (stop - pos) (fun i -> Hashtbl.find t.objects members.(pos + i))
  end

let fetch_batch t oids = List.map (fetch t) oids

let scan t ~coll f =
  let c = get_coll t coll in
  let members = Array.of_list (List.rev c.c_members) in
  let n = Array.length members in
  let pages = last_page_needed c n in
  (* Charge pages as we cross page boundaries, in physical order. *)
  let next_page = ref 0 in
  Array.iteri
    (fun i oid ->
      let p_end = first_page c i + c.c_pages_per_obj in
      while !next_page < p_end && !next_page < pages do
        Buffer_pool.read t.buffer c.c_seg !next_page;
        incr next_page
      done;
      f (Hashtbl.find t.objects oid))
    members

let cardinality t ~coll = (get_coll t coll).c_count

let segment t ~coll = (get_coll t coll).c_seg

let obj_bytes t ~coll = (get_coll t coll).c_obj_bytes

let location t oid =
  let c, slot = Hashtbl.find t.slots oid in
  (c.c_seg, first_page c slot)

let class_of t oid = (peek t oid).cls
