(** Simulated disk.

    Pages live in contiguously allocated segments on a single platter
    addressed by absolute page number. The model distinguishes sequential
    reads (next page after the head) from random reads, and accounts seek
    distance so that an elevator access pattern (sorted by address, as the
    assembly operator issues) is measurably cheaper than the same reads in
    arbitrary order. This is the behaviour the paper's cost model charges
    for: "charge less for sequential than for random I/O" and assembly's
    reduced seek distances. *)

type t

type segment

type stats = {
  seq_reads : int;       (** reads of the page immediately after the head *)
  rand_reads : int;      (** all other reads *)
  seek_pages : int;      (** total seek distance of random reads, in pages *)
  seek_units : float;
      (** seek time in full-stroke equivalents: each random read adds
          [sqrt (min (distance, cap) / cap)] (arm acceleration makes seek
          time grow with the square root of the distance) — elevator hops
          are much cheaper than cross-segment jumps, which is what rewards
          the assembly operator's sorted fetch order. *)
  writes : int;
}

val create : ?page_size:int -> unit -> t
(** Fresh disk. [page_size] defaults to 4096 bytes. *)

val page_size : t -> int

val alloc_segment : t -> name:string -> segment
(** Allocate a new (initially empty) segment. *)

val segment_name : segment -> string

val segment_pages : segment -> int

val extend : t -> segment -> int -> unit
(** [extend t seg n] appends [n] fresh pages to [seg]. Segments are
    contiguous: extending a segment after another segment has been
    allocated relocates nothing (pages are assigned from a per-segment
    reserved region grown on demand). *)

val read : t -> segment -> int -> unit
(** [read t seg page] simulates reading page index [page] (0-based) of
    [seg], updating head position and statistics.
    @raise Invalid_argument if the page does not exist. *)

val write : t -> segment -> int -> unit
(** Simulated write (counted, head moves). *)

val abs_page : t -> segment -> int -> int
(** Absolute platter address of a segment page; callers sorting fetches
    by this address obtain the elevator pattern. *)

val stats : t -> stats

val reset_stats : t -> unit

val sub : stats -> stats -> stats
(** Componentwise difference: the traffic between two snapshots — what
    the per-operator execution profiler attributes to a plan node. *)
