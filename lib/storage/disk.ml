type segment = {
  id : int;
  name : string;
  mutable n_pages : int;
}

type stats = {
  seq_reads : int;
  rand_reads : int;
  seek_pages : int;
  seek_units : float;
  writes : int;
}

type t = {
  psize : int;
  mutable next_segment : int;
  mutable head : int; (* absolute page address under the head *)
  mutable seq_reads : int;
  mutable rand_reads : int;
  mutable seek_pages : int;
  mutable seek_units : float;
  mutable writes : int;
}

(* Each segment owns a large contiguous region of the platter; regions are
   spaced far apart so that cross-segment seeks dominate within-segment
   seeks, as on a real extent-allocated disk. *)
let region = 1_000_000

(* Full-stroke seek distance: anything beyond this costs one unit. Seek
   time grows with the square root of the distance (arm acceleration), so
   short elevator hops are cheap but not free. *)
let seek_cap = 16_384

let create ?(page_size = 4096) () =
  { psize = page_size;
    next_segment = 0;
    head = -1;
    seq_reads = 0;
    rand_reads = 0;
    seek_pages = 0;
    seek_units = 0.0;
    writes = 0 }

let page_size t = t.psize

let alloc_segment t ~name =
  let id = t.next_segment in
  t.next_segment <- id + 1;
  { id; name; n_pages = 0 }

let segment_name seg = seg.name

let segment_pages seg = seg.n_pages

let extend _t seg n =
  assert (n >= 0);
  seg.n_pages <- seg.n_pages + n

let abs_page _t seg page = (seg.id * region) + page

let check seg page =
  if page < 0 || page >= seg.n_pages then
    invalid_arg
      (Printf.sprintf "Disk: page %d out of range in segment %s (%d pages)" page seg.name
         seg.n_pages)

let read t seg page =
  check seg page;
  let addr = abs_page t seg page in
  if addr = t.head + 1 then t.seq_reads <- t.seq_reads + 1
  else begin
    t.rand_reads <- t.rand_reads + 1;
    let d = abs (addr - t.head) in
    t.seek_pages <- t.seek_pages + d;
    t.seek_units <-
      t.seek_units +. sqrt (float_of_int (min d seek_cap) /. float_of_int seek_cap)
  end;
  t.head <- addr

let write t seg page =
  check seg page;
  t.writes <- t.writes + 1;
  t.head <- abs_page t seg page

let stats t =
  { seq_reads = t.seq_reads;
    rand_reads = t.rand_reads;
    seek_pages = t.seek_pages;
    seek_units = t.seek_units;
    writes = t.writes }

let reset_stats t =
  t.seq_reads <- 0;
  t.rand_reads <- 0;
  t.seek_pages <- 0;
  t.seek_units <- 0.0;
  t.writes <- 0

let sub (a : stats) (b : stats) =
  { seq_reads = a.seq_reads - b.seq_reads;
    rand_reads = a.rand_reads - b.rand_reads;
    seek_pages = a.seek_pages - b.seek_pages;
    seek_units = a.seek_units -. b.seek_units;
    writes = a.writes - b.writes }
