module Json = Oodb_util.Json

type metric =
  | Mcounter of int ref
  | Mgauge of float ref
  | Mtimer of { mutable total : float; mutable count : int; mutable max : float }

type t = (string, metric) Hashtbl.t

let create () : t = Hashtbl.create 64

let kind_name = function
  | Mcounter _ -> "counter"
  | Mgauge _ -> "gauge"
  | Mtimer _ -> "timer"

let kind_clash name got want =
  invalid_arg
    (Printf.sprintf "Metrics: %S is a %s, used as a %s" name (kind_name got) want)

let incr ?(by = 1) t name =
  if by < 0 then invalid_arg "Metrics.incr: negative increment";
  match Hashtbl.find_opt t name with
  | None -> Hashtbl.replace t name (Mcounter (ref by))
  | Some (Mcounter r) -> r := !r + by
  | Some m -> kind_clash name m "counter"

let set t name v =
  match Hashtbl.find_opt t name with
  | None -> Hashtbl.replace t name (Mgauge (ref v))
  | Some (Mgauge r) -> r := v
  | Some m -> kind_clash name m "gauge"

let observe t name dt =
  match Hashtbl.find_opt t name with
  | None -> Hashtbl.replace t name (Mtimer { total = dt; count = 1; max = dt })
  | Some (Mtimer tm) ->
    tm.total <- tm.total +. dt;
    tm.count <- tm.count + 1;
    if dt > tm.max then tm.max <- dt
  | Some m -> kind_clash name m "timer"

let time t name f =
  let t0 = Sys.time () in
  let record () = observe t name (Sys.time () -. t0) in
  match f () with
  | v ->
    record ();
    v
  | exception e ->
    record ();
    raise e

type value =
  | Counter of int
  | Gauge of float
  | Timer of { total : float; count : int; max : float }

type snapshot = (string * value) list

let snapshot t =
  Hashtbl.fold
    (fun name m acc ->
      let v =
        match m with
        | Mcounter r -> Counter !r
        | Mgauge r -> Gauge !r
        | Mtimer tm -> Timer { total = tm.total; count = tm.count; max = tm.max }
      in
      (name, v) :: acc)
    t []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let find snap name = List.assoc_opt name snap

let diff ~before ~after =
  List.filter_map
    (fun (name, av) ->
      match av, find before name with
      | v, None -> Some (name, v)
      | Counter a, Some (Counter b) ->
        let d = a - b in
        if d = 0 then None else Some (name, Counter d)
      | Gauge _, Some (Gauge _) -> Some (name, av)
      | Timer a, Some (Timer b) ->
        let count = a.count - b.count in
        if count = 0 then None
        else Some (name, Timer { total = a.total -. b.total; count; max = a.max })
      | _, Some _ ->
        (* Unreachable for snapshots of the same registry: a name keeps
           its kind for the registry's lifetime. *)
        invalid_arg (Printf.sprintf "Metrics.diff: %S changed kind" name))
    after

let scoped t f =
  let before = snapshot t in
  let v = f () in
  let after = snapshot t in
  (v, diff ~before ~after)

let to_json snap =
  Json.Obj
    (List.map
       (fun (name, v) ->
         ( name,
           match v with
           | Counter n -> Json.Int n
           | Gauge g -> Json.float g
           | Timer { total; count; max } ->
             Json.Obj
               [ ("total", Json.float total);
                 ("count", Json.Int count);
                 ("max", Json.float max) ] ))
       snap)

let pp ppf snap =
  List.iter
    (fun (name, v) ->
      match v with
      | Counter n -> Format.fprintf ppf "%s %d@." name n
      | Gauge g -> Format.fprintf ppf "%s %g@." name g
      | Timer { total; count; max } ->
        Format.fprintf ppf "%s total=%.6fs count=%d max=%.6fs@." name total count max)
    snap
