module Json = Oodb_util.Json

(* ------------------------------------------------------------------ *)
(* Log-bucketed histograms                                              *)

(* Geometric bucket boundaries: bucket k holds values in
   (bound.(k-1), bound.(k)], bucket 0 everything <= histo_lo, and a final
   overflow bucket everything above the top boundary. 1 µs .. ~9 min in
   factor-of-two steps covers every latency and batch-size series the
   registry records. *)
let histo_lo = 1e-6

let histo_factor = 2.0

let histo_buckets = 40

let bucket_bounds =
  Array.init (histo_buckets + 1) (fun k ->
      if k = histo_buckets then Float.infinity
      else histo_lo *. (histo_factor ** float_of_int k))

let bucket_of v =
  let rec find k = if v <= bucket_bounds.(k) then k else find (k + 1) in
  find 0

type histo = {
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
  h_counts : int array; (* histo_buckets + 1 slots; the last is overflow *)
}

type hsnap = {
  count : int;
  sum : float;
  min : float;
  max : float;
  counts : int array;
}

(* Percentile from the buckets: the bucket containing the rank'th sample
   gives an upper bound, clamped into the exactly-tracked [min, max] — so
   a single sample (or all samples equal, or the rank landing in the
   overflow bucket) yields the exact observed value. An empty histogram
   has no percentiles: [None], not a NaN sentinel every caller would
   have to remember to guard against. *)
let percentile (h : hsnap) q =
  if h.count = 0 then None
  else begin
    let q = Float.min 1.0 (Float.max 0.0 q) in
    let rank = Stdlib.max 1 (int_of_float (Float.ceil (q *. float_of_int h.count))) in
    let k = ref 0 and cum = ref h.counts.(0) in
    while !cum < rank do
      incr k;
      cum := !cum + h.counts.(!k)
    done;
    Some (Float.max h.min (Float.min h.max bucket_bounds.(!k)))
  end

(* ------------------------------------------------------------------ *)
(* Registry                                                             *)

type metric =
  | Mcounter of int ref
  | Mgauge of float ref
  | Mtimer of { mutable total : float; mutable count : int; mutable max : float }
  | Mhisto of histo

type t = (string, metric) Hashtbl.t

let create () : t = Hashtbl.create 64

let kind_name = function
  | Mcounter _ -> "counter"
  | Mgauge _ -> "gauge"
  | Mtimer _ -> "timer"
  | Mhisto _ -> "histogram"

let kind_clash name got want =
  invalid_arg
    (Printf.sprintf "Metrics: %S is a %s, used as a %s" name (kind_name got) want)

let incr ?(by = 1) t name =
  if by < 0 then invalid_arg "Metrics.incr: negative increment";
  match Hashtbl.find_opt t name with
  | None -> Hashtbl.replace t name (Mcounter (ref by))
  | Some (Mcounter r) -> r := !r + by
  | Some m -> kind_clash name m "counter"

let set t name v =
  match Hashtbl.find_opt t name with
  | None -> Hashtbl.replace t name (Mgauge (ref v))
  | Some (Mgauge r) -> r := v
  | Some m -> kind_clash name m "gauge"

let observe t name dt =
  match Hashtbl.find_opt t name with
  | None -> Hashtbl.replace t name (Mtimer { total = dt; count = 1; max = dt })
  | Some (Mtimer tm) ->
    tm.total <- tm.total +. dt;
    tm.count <- tm.count + 1;
    if dt > tm.max then tm.max <- dt
  | Some m -> kind_clash name m "timer"

let histo_observe h v =
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. v;
  if v < h.h_min then h.h_min <- v;
  if v > h.h_max then h.h_max <- v;
  let k = bucket_of v in
  h.h_counts.(k) <- h.h_counts.(k) + 1

let observe_hist t name v =
  match Hashtbl.find_opt t name with
  | None ->
    let h =
      { h_count = 0;
        h_sum = 0.;
        h_min = Float.infinity;
        h_max = Float.neg_infinity;
        h_counts = Array.make (histo_buckets + 1) 0 }
    in
    histo_observe h v;
    Hashtbl.replace t name (Mhisto h)
  | Some (Mhisto h) -> histo_observe h v
  | Some m -> kind_clash name m "histogram"

let time t name f =
  let t0 = Sys.time () in
  let record () = observe t name (Sys.time () -. t0) in
  match f () with
  | v ->
    record ();
    v
  | exception e ->
    record ();
    raise e

type value =
  | Counter of int
  | Gauge of float
  | Timer of { total : float; count : int; max : float }
  | Histogram of hsnap

type snapshot = (string * value) list

let snapshot t =
  Hashtbl.fold
    (fun name m acc ->
      let v =
        match m with
        | Mcounter r -> Counter !r
        | Mgauge r -> Gauge !r
        | Mtimer tm -> Timer { total = tm.total; count = tm.count; max = tm.max }
        | Mhisto h ->
          Histogram
            { count = h.h_count;
              sum = h.h_sum;
              min = h.h_min;
              max = h.h_max;
              counts = Array.copy h.h_counts }
      in
      (name, v) :: acc)
    t []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let find snap name = List.assoc_opt name snap

let diff ~before ~after =
  List.filter_map
    (fun (name, av) ->
      match av, find before name with
      | v, None -> Some (name, v)
      | Counter a, Some (Counter b) ->
        let d = a - b in
        if d = 0 then None else Some (name, Counter d)
      | Gauge _, Some (Gauge _) -> Some (name, av)
      | Timer a, Some (Timer b) ->
        let count = a.count - b.count in
        if count = 0 then None
        else Some (name, Timer { total = a.total -. b.total; count; max = a.max })
      | Histogram a, Some (Histogram b) ->
        let count = a.count - b.count in
        if count = 0 then None
        else
          Some
            ( name,
              (* bucket counts subtract; min/max stay the [after] values
                 (exact window extrema are not recoverable from deltas) *)
              Histogram
                { count;
                  sum = a.sum -. b.sum;
                  min = a.min;
                  max = a.max;
                  counts = Array.mapi (fun i c -> c - b.counts.(i)) a.counts } )
      | _, Some _ ->
        (* Unreachable for snapshots of the same registry: a name keeps
           its kind for the registry's lifetime. *)
        invalid_arg (Printf.sprintf "Metrics.diff: %S changed kind" name))
    after

let scoped t f =
  let before = snapshot t in
  let v = f () in
  let after = snapshot t in
  (v, diff ~before ~after)

let pct_json h q =
  match percentile h q with None -> Json.Null | Some v -> Json.float v

let histo_json (h : hsnap) =
  (* only occupied buckets; the overflow bucket's bound encodes as null
     (non-finite float) *)
  let buckets =
    Array.to_list (Array.mapi (fun k n -> (bucket_bounds.(k), n)) h.counts)
    |> List.filter_map (fun (le, n) ->
           if n > 0 then Some (Json.Obj [ ("le", Json.float le); ("count", Json.Int n) ])
           else None)
  in
  Json.Obj
    [ ("count", Json.Int h.count);
      ("sum", Json.float h.sum);
      ("min", Json.float h.min);
      ("max", Json.float h.max);
      ("p50", pct_json h 0.50);
      ("p95", pct_json h 0.95);
      ("p99", pct_json h 0.99);
      ("buckets", Json.List buckets) ]

let to_json snap =
  Json.Obj
    (List.map
       (fun (name, v) ->
         ( name,
           match v with
           | Counter n -> Json.Int n
           | Gauge g -> Json.float g
           | Timer { total; count; max } ->
             Json.Obj
               [ ("total", Json.float total);
                 ("count", Json.Int count);
                 ("max", Json.float max) ]
           | Histogram h -> histo_json h ))
       snap)

let pp ppf snap =
  List.iter
    (fun (name, v) ->
      match v with
      | Counter n -> Format.fprintf ppf "%s %d@." name n
      | Gauge g -> Format.fprintf ppf "%s %g@." name g
      | Timer { total; count; max } ->
        Format.fprintf ppf "%s total=%.6fs count=%d max=%.6fs@." name total count max
      | Histogram h ->
        let pct q = match percentile h q with None -> Float.nan | Some v -> v in
        Format.fprintf ppf "%s count=%d p50=%g p95=%g p99=%g max=%g@." name h.count
          (pct 0.50) (pct 0.95) (pct 0.99) h.max)
    snap
