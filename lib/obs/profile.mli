(** Per-operator execution profiling: [explain --analyze] for the
    iterator tree.

    {!run} executes a physical plan with a counting iterator interposed
    at every node (via [Executor.iterator ~wrap]) and returns, besides
    the usual rows and whole-query {!Executor.io_report}, a profile tree
    mirroring the plan. The interposition is per {e batch}, matching the
    vectorized protocol, so profiling overhead amortizes exactly like
    the engine's own call overhead; rows are counted by summing batch
    lengths and the I/O deltas remain exact (they are differences of
    global counters). Each node records rows produced, [next_batch]
    calls, CPU seconds, and I/O deltas both {e inclusive} (everything that
    happened while the node's subtree was active — in a pull model all
    child work happens inside the parent's open/next/close) and
    {e exclusive} (inclusive minus the children's inclusive), so the
    exclusive columns sum exactly to the whole-query totals. Estimated
    cardinalities come from {!Cardest}, giving an estimated-vs-actual
    q-error per node. *)

module Json = Oodb_util.Json
module Engine = Open_oodb.Model.Engine
module Physical = Open_oodb.Physical

type io = {
  seq_reads : int;
  rand_reads : int;
  writes : int;
  buffer_hits : int;
  buffer_misses : int;
  buffer_evictions : int;
  seek_units : float;
  simulated_seconds : float;  (** priced like {!Executor.simulated_seconds_of} *)
}

type node = {
  op_id : int;
      (** iterator construction order; matches the ["op_id"] span
          argument, so trace spans can be attributed to plan nodes *)
  alg : Physical.t;
  est_rows : float;  (** the optimizer's estimate, re-derived by {!Cardest} *)
  actual_rows : int;
  batches : int;  (** [next_batch] calls, including the final [None] *)
  wall_seconds : float;  (** inclusive CPU seconds ([Sys.time]) *)
  exclusive_seconds : float;
      (** [wall_seconds] minus the children's — sums to the root's
          inclusive time over the tree (clamped at 0 against rounding) *)
  inclusive : io;
  exclusive : io;
  q_error : float;
      (** [max est actual 1 / max (min est actual) 1], 1.0 = perfect *)
  est_source : string;
      (** ["feedback"] when the estimate drew on observed statistics in
          [config.feedback], ["model"] otherwise *)
  children : node list;
}

val q_error : est:float -> actual:float -> float
(** [max(est, actual, 1) / max(min(est, actual), 1)]. Flooring both
    sides at one row keeps the ratio finite and symmetric around
    zero-row cases: est=5/actual=0 is q=5, est=0/actual=3 is q=3, and
    0/0 (or any pair both below a row) is a perfect 1.0. *)

val run :
  ?verify:bool ->
  ?config:Oodb_cost.Config.t ->
  ?spans:Span.t ->
  ?registry:Metrics.t ->
  Oodb_exec.Db.t ->
  Engine.plan ->
  Oodb_exec.Executor.row list * Oodb_exec.Executor.io_report * node
(** Execute like [Executor.run_measured] (statistics reset, buffer pool
    flushed) with profiling on. [verify] (default off) runs the static
    plan linter first. [spans] records one span per interposed call
    (category ["exec"], named after the operator, with ["op_id"] and
    ["phase"] ∈ open/next_batch/close arguments) using the {e same}
    clock readings as [wall_seconds], so per-operator span durations sum
    to the profile's wall times exactly. [registry] gets every produced
    batch's row count in the ["exec/batch_rows"] histogram. *)

val pp : Format.formatter -> node -> unit
(** The annotated plan: operator tree with
    [rows=actual est=… q=… batches=… io=…] per node (exclusive I/O). *)

val to_json : node -> Json.t
