(** Bounded ring buffer with global sequence numbers.

    The trace sink pushes every search event here; once the buffer is
    full the oldest events are overwritten, so memory stays bounded on
    arbitrarily large searches while aggregate tables (which are updated
    on the way in, before the ring) remain exact. Sequence numbers are
    assigned from 0 in arrival order and survive wrap-around, so a
    rendered timeline shows where its window starts. *)

type 'a t

val create : int -> 'a t
(** @raise Invalid_argument when the capacity is not positive. *)

val capacity : 'a t -> int

val push : 'a t -> 'a -> unit

val seen : 'a t -> int
(** Total number of items ever pushed. *)

val length : 'a t -> int
(** Items currently retained, [min (seen t) (capacity t)]. *)

val dropped : 'a t -> int
(** [seen - length]: items overwritten by wrap-around. *)

val to_list : 'a t -> (int * 'a) list
(** Retained items with their sequence numbers, oldest first. *)

val iter : (int -> 'a -> unit) -> 'a t -> unit
(** Oldest first. *)
