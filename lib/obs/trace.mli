(** Optimizer search-trace recorder.

    A recorder is an {!Engine.event} sink (pass {!sink} as the [?trace]
    argument of [Optimizer.optimize] or [Engine.run]). Aggregate tables
    — per-rule tried/fired counts, per-group activity, search totals —
    are updated on every event before the event enters the bounded
    {!Ring}, so they stay exact even when the timeline window has
    wrapped. The per-rule table reproduces [Engine.rule_counters] (and
    hence the shape of Tables 2–3 in the paper) from the event stream
    alone. *)

module Json = Oodb_util.Json
module Engine = Open_oodb.Model.Engine

type t

val create : ?capacity:int -> unit -> t
(** [capacity] bounds the retained timeline (default 4096 events). *)

val sink : t -> Engine.event -> unit
(** The event callback. Must not be shared across concurrent searches. *)

(** {1 Aggregates} *)

val per_rule : t -> (string * int * int) list
(** [(rule, tried, fired)] sorted by name — same contract as
    [Engine.rule_counters]: fired counts transformations that changed
    the memo, implementation candidates costed, and enforcer offers. *)

type group_stat = {
  g_mexprs : int;  (** multi-expressions added to the group *)
  g_trules_fired : int;
  g_candidates : int;
  g_prunes : int;
  g_subgoal_prunes : int;  (** subgoals never expanded (guided search) *)
  g_enforcer_inserts : int;
  g_memo_hits : int;
}

val per_group : t -> (int * group_stat) list
(** Sorted by group id. Groups that merged retain separate entries under
    the id current when the events fired. *)

type totals = {
  groups_created : int;
  mexprs_added : int;
  merges : int;
  trules_tried : int;
  trules_fired : int;
  irules_tried : int;
  candidates : int;
  prunes : int;
  subgoal_prunes : int;
  enforcers_tried : int;
  enforcer_offers : int;
  enforcer_inserts : int;
  memo_hits : int;
}

val totals : t -> totals

(** {1 Timeline} *)

val seen : t -> int
(** Events ever received. *)

val dropped : t -> int
(** Events overwritten by ring wrap-around. *)

val events : t -> (int * Engine.event) list
(** Retained window with sequence numbers, oldest first. *)

(** {1 Rendering} *)

val pp_event : Format.formatter -> Engine.event -> unit

val pp_timeline : ?limit:int -> ?prov_dropped:int -> Format.formatter -> t -> unit
(** Sequence-numbered event lines, oldest first; [limit] keeps only the
    last [limit] retained events. {e Leads} with a WARNING line whenever
    the ring dropped events, so a truncated timeline cannot be mistaken
    for a complete one; [prov_dropped] (the engine's
    [stats.prov_dropped]) adds the same warning for truncated
    provenance lineage. *)

val pp_rules : Format.formatter -> t -> unit
(** Per-rule tried/fired table, the paper's Table 2–3 shape. *)

val pp_groups : Format.formatter -> t -> unit

val pp_summary : Format.formatter -> t -> unit

val to_json : ?prov_dropped:int -> t -> Json.t
(** [{"dropped": n, "prov_dropped": n, "totals": .., "rules": [..],
    "groups": [..], "timeline": {"seen": n, "dropped": n,
    "events": [..]}}] — the top-level ["dropped"] and ["prov_dropped"]
    (plus human-readable [.._warning] fields when nonzero) flag an
    incomplete timeline or truncated provenance lineage without digging
    into the nesting. *)
