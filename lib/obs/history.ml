module Json = Oodb_util.Json

let schema_version = 4

type query_rec = {
  q_name : string;
  q_opt_min : float;
  q_opt_median : float;
  q_exec_min : float;
  q_exec_median : float;
  q_rows : int;
  q_groups : int;
  q_rules_fired : int;
  q_mean_qerror : float;  (* nan when not recorded (schema v1 baselines) *)
}

type scale_rec = {
  s_width : int;
  s_opt_seconds : float;  (* guided search, one cold run *)
  s_exhaustive_seconds : float;  (* nan when skipped as over budget *)
  s_groups : int;
  s_mexprs : int;
  s_candidates : int;
  s_pruned : int;
}

type record = {
  r_git_sha : string;
  r_date : string;
  r_batch_size : int;
  r_cache_hit_rate : float;
  r_queries : query_rec list;
  r_search_scale : scale_rec list;  (* [] on v1/v2 records *)
  r_provenance_overhead_pct : float;  (* nan on v1-v3 records *)
  r_whynot_smoke : (string * float) list;  (* [] on v1-v3 records *)
}

(* ------------------------------------------------------------------ *)
(* Serialization                                                       *)

let query_json q =
  Json.Obj
    [ ("name", Json.String q.q_name);
      ("opt_min_seconds", Json.float q.q_opt_min);
      ("opt_median_seconds", Json.float q.q_opt_median);
      ("exec_min_seconds", Json.float q.q_exec_min);
      ("exec_median_seconds", Json.float q.q_exec_median);
      ("rows", Json.Int q.q_rows);
      ("memo_groups", Json.Int q.q_groups);
      ("rules_fired", Json.Int q.q_rules_fired);
      (* Json.float encodes the nan of an unprofiled run as null *)
      ("mean_qerror", Json.float q.q_mean_qerror) ]

let scale_json s =
  Json.Obj
    [ ("width", Json.Int s.s_width);
      ("opt_seconds", Json.float s.s_opt_seconds);
      (* Json.float encodes the nan of an over-budget width as null *)
      ("exhaustive_seconds", Json.float s.s_exhaustive_seconds);
      ("memo_groups", Json.Int s.s_groups);
      ("memo_mexprs", Json.Int s.s_mexprs);
      ("plans", Json.Int s.s_candidates);
      ("pruned", Json.Int s.s_pruned) ]

let to_json r =
  Json.Obj
    [ ("schema_version", Json.Int schema_version);
      ("git_sha", Json.String r.r_git_sha);
      ("date", Json.String r.r_date);
      ("batch_size", Json.Int r.r_batch_size);
      ("cache_hit_rate", Json.float r.r_cache_hit_rate);
      ("queries", Json.List (List.map query_json r.r_queries));
      ("search_scale", Json.List (List.map scale_json r.r_search_scale));
      (* Json.float encodes the nan of an unmeasured run as null *)
      ("provenance_overhead_pct", Json.float r.r_provenance_overhead_pct);
      ( "whynot_smoke",
        Json.List
          (List.map
             (fun (name, seconds) ->
               Json.Obj
                 [ ("name", Json.String name); ("seconds", Json.float seconds) ])
             r.r_whynot_smoke) ) ]

let ( let* ) = Result.bind

let field name conv j =
  match Json.member name j with
  | None -> Error (Printf.sprintf "missing field %S" name)
  | Some v -> (
    match conv v with
    | Some x -> Ok x
    | None -> Error (Printf.sprintf "field %S has the wrong type" name))

let to_string_opt = function Json.String s -> Some s | _ -> None

let query_of_json j =
  let* q_name = field "name" to_string_opt j in
  let* q_opt_min = field "opt_min_seconds" Json.to_float j in
  let* q_opt_median = field "opt_median_seconds" Json.to_float j in
  let* q_exec_min = field "exec_min_seconds" Json.to_float j in
  let* q_exec_median = field "exec_median_seconds" Json.to_float j in
  let* q_rows = field "rows" Json.to_int j in
  let* q_groups = field "memo_groups" Json.to_int j in
  let* q_rules_fired = field "rules_fired" Json.to_int j in
  (* Absent (v1 record) or null (unprofiled run) both read as nan. *)
  let q_mean_qerror =
    match Json.member "mean_qerror" j with
    | Some v -> Option.value (Json.to_float v) ~default:Float.nan
    | None -> Float.nan
  in
  Ok { q_name; q_opt_min; q_opt_median; q_exec_min; q_exec_median; q_rows;
       q_groups; q_rules_fired; q_mean_qerror }

let scale_of_json j =
  let* s_width = field "width" Json.to_int j in
  let* s_opt_seconds = field "opt_seconds" Json.to_float j in
  let s_exhaustive_seconds =
    match Json.member "exhaustive_seconds" j with
    | Some v -> Option.value (Json.to_float v) ~default:Float.nan
    | None -> Float.nan
  in
  let* s_groups = field "memo_groups" Json.to_int j in
  let* s_mexprs = field "memo_mexprs" Json.to_int j in
  let* s_candidates = field "plans" Json.to_int j in
  let* s_pruned = field "pruned" Json.to_int j in
  Ok { s_width; s_opt_seconds; s_exhaustive_seconds; s_groups; s_mexprs;
       s_candidates; s_pruned }

let rec all_ok = function
  | [] -> Ok []
  | Error e :: _ -> Error e
  | Ok x :: tl ->
    let* rest = all_ok tl in
    Ok (x :: rest)

let of_json j =
  let* version = field "schema_version" Json.to_int j in
  (* v1 records (no mean_qerror) still load, so an existing history file
     keeps serving as a baseline across the schema bump. *)
  if version < 1 || version > schema_version then
    Error (Printf.sprintf "schema_version %d, expected 1..%d" version schema_version)
  else
    let* r_git_sha = field "git_sha" to_string_opt j in
    let* r_date = field "date" to_string_opt j in
    let* r_batch_size = field "batch_size" Json.to_int j in
    let* r_cache_hit_rate = field "cache_hit_rate" Json.to_float j in
    let* queries = field "queries" Json.to_list j in
    let* r_queries = all_ok (List.map query_of_json queries) in
    (* Absent on v1/v2 records: an existing history file keeps serving
       as a baseline across the schema bump, with no scale deltas. *)
    let* r_search_scale =
      match Json.member "search_scale" j with
      | None -> Ok []
      | Some v -> (
        match Json.to_list v with
        | None -> Error "field \"search_scale\" has the wrong type"
        | Some l -> all_ok (List.map scale_of_json l))
    in
    (* Absent on v1-v3 records, null when the run skipped the overhead
       measurement — both read as nan / []. *)
    let r_provenance_overhead_pct =
      match Json.member "provenance_overhead_pct" j with
      | Some v -> Option.value (Json.to_float v) ~default:Float.nan
      | None -> Float.nan
    in
    let* r_whynot_smoke =
      match Json.member "whynot_smoke" j with
      | None -> Ok []
      | Some v -> (
        match Json.to_list v with
        | None -> Error "field \"whynot_smoke\" has the wrong type"
        | Some l ->
          all_ok
            (List.map
               (fun entry ->
                 let* name = field "name" to_string_opt entry in
                 let* seconds = field "seconds" Json.to_float entry in
                 Ok (name, seconds))
               l))
    in
    if r_queries = [] then Error "empty \"queries\""
    else
      Ok { r_git_sha; r_date; r_batch_size; r_cache_hit_rate; r_queries; r_search_scale;
           r_provenance_overhead_pct; r_whynot_smoke }

let of_line line =
  let* j = Json.of_string line in
  of_json j

(* ------------------------------------------------------------------ *)
(* JSONL file I/O                                                      *)

let append path r =
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (Json.to_string ~minify:true (to_json r));
      output_char oc '\n')

let load path =
  if not (Sys.file_exists path) then Error (Printf.sprintf "%s: no such file" path)
  else begin
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let rec loop lineno acc =
          match input_line ic with
          | exception End_of_file -> Ok (List.rev acc)
          | "" -> loop (lineno + 1) acc
          | line -> (
            match of_line line with
            | Ok r -> loop (lineno + 1) (r :: acc)
            | Error e -> Error (Printf.sprintf "%s:%d: %s" path lineno e))
        in
        loop 1 [])
  end

(* ------------------------------------------------------------------ *)
(* Comparison                                                          *)

type delta = {
  d_query : string;
  d_metric : string;
  d_old : float;
  d_new : float;
  d_ratio : float;
  d_regressed : bool;
}

type comparison = {
  c_old_sha : string;
  c_new_sha : string;
  c_threshold : float;
  c_min_seconds : float;
  c_deltas : delta list;
  c_missing : string list;
  c_added : string list;
}

let default_threshold = 0.5

let default_min_seconds = 1e-3

(* Absolute noise floor for the mean-q-error delta, in q units: a plan
   whose mean q-error drifts by less than half a q is not a planning
   regression worth failing on. *)
let qerror_floor = 0.5

let compare_records ?(threshold = default_threshold)
    ?(min_seconds = default_min_seconds) ~old_rec ~new_rec () =
  let delta_with ~floor q metric old_v new_v =
    let ratio = if old_v > 0. then new_v /. old_v else Float.infinity in
    (* Noise gate: both a relative blow-up and an absolute floor — a
       0.1 ms wobble on a sub-millisecond query is not a regression. *)
    let regressed =
      new_v > old_v *. (1. +. threshold) && new_v -. old_v > floor
    in
    { d_query = q; d_metric = metric; d_old = old_v; d_new = new_v;
      d_ratio = ratio; d_regressed = regressed }
  in
  let delta = delta_with ~floor:min_seconds in
  let deltas =
    List.concat_map
      (fun (nq : query_rec) ->
        match
          List.find_opt (fun oq -> String.equal oq.q_name nq.q_name)
            old_rec.r_queries
        with
        | None -> []
        | Some oq ->
          (* Compare the min-of-trials: the most noise-robust statistic
             of the ones recorded. *)
          [ delta nq.q_name "opt_min_seconds" oq.q_opt_min nq.q_opt_min;
            delta nq.q_name "exec_min_seconds" oq.q_exec_min nq.q_exec_min ]
          @
          (* Only when both sides recorded it: a v1 baseline or an
             unprofiled run carries nan, which must not fabricate a
             delta. *)
          (if Float.is_nan oq.q_mean_qerror || Float.is_nan nq.q_mean_qerror
           then []
           else
             [ delta_with ~floor:qerror_floor nq.q_name "mean_qerror"
                 oq.q_mean_qerror nq.q_mean_qerror ]))
      new_rec.r_queries
  in
  let deltas =
    deltas
    @ List.concat_map
        (fun (ns : scale_rec) ->
          match
            List.find_opt (fun os -> os.s_width = ns.s_width) old_rec.r_search_scale
          with
          | None -> []
          | Some os ->
            [ delta
                (Printf.sprintf "chain%d" ns.s_width)
                "guided_opt_seconds" os.s_opt_seconds ns.s_opt_seconds ])
        new_rec.r_search_scale
  in
  let names r = List.map (fun q -> q.q_name) r.r_queries in
  let missing =
    List.filter (fun n -> not (List.mem n (names new_rec))) (names old_rec)
  in
  let added =
    List.filter (fun n -> not (List.mem n (names old_rec))) (names new_rec)
  in
  { c_old_sha = old_rec.r_git_sha;
    c_new_sha = new_rec.r_git_sha;
    c_threshold = threshold;
    c_min_seconds = min_seconds;
    c_deltas = deltas;
    c_missing = missing;
    c_added = added }

let regressed c = List.exists (fun d -> d.d_regressed) c.c_deltas

let pp_comparison ppf c =
  Format.fprintf ppf "bench-compare %s -> %s (threshold +%.0f%%, floor %gs)@."
    c.c_old_sha c.c_new_sha (100. *. c.c_threshold) c.c_min_seconds;
  List.iter
    (fun d ->
      let unit = if Filename.check_suffix d.d_metric "_seconds" then "s" else "" in
      Format.fprintf ppf "  %-24s %-18s %10.6f%s -> %10.6f%s  %5.2fx%s@." d.d_query
        d.d_metric d.d_old unit d.d_new unit d.d_ratio
        (if d.d_regressed then "  REGRESSION" else ""))
    c.c_deltas;
  List.iter (fun n -> Format.fprintf ppf "  %s: missing from new record@." n)
    c.c_missing;
  List.iter (fun n -> Format.fprintf ppf "  %s: new query (no baseline)@." n)
    c.c_added;
  if regressed c then
    Format.fprintf ppf "RESULT: regression detected@."
  else Format.fprintf ppf "RESULT: ok@."

let comparison_json c =
  Json.Obj
    [ ("old_sha", Json.String c.c_old_sha);
      ("new_sha", Json.String c.c_new_sha);
      ("threshold", Json.float c.c_threshold);
      ("min_seconds", Json.float c.c_min_seconds);
      ("regressed", Json.Bool (regressed c));
      ( "deltas",
        Json.List
          (List.map
             (fun d ->
               Json.Obj
                 [ ("query", Json.String d.d_query);
                   ("metric", Json.String d.d_metric);
                   ("old", Json.float d.d_old);
                   ("new", Json.float d.d_new);
                   ("ratio", Json.float d.d_ratio);
                   ("regressed", Json.Bool d.d_regressed) ])
             c.c_deltas) );
      ("missing", Json.List (List.map (fun n -> Json.String n) c.c_missing));
      ("added", Json.List (List.map (fun n -> Json.String n) c.c_added)) ]
