module Engine = Open_oodb.Model.Engine
module Physical = Open_oodb.Physical
module Logical = Oodb_algebra.Logical
module Pred = Oodb_algebra.Pred
module Catalog = Oodb_catalog.Catalog
module Config = Oodb_cost.Config
module Estimator = Oodb_cost.Estimator
module Selectivity = Oodb_cost.Selectivity
module Lprops = Oodb_cost.Lprops

type t = { card : float; fed : bool; children : t list }

let empty_lprops : Lprops.t = { Lprops.card = 0.; bindings = [] }

(* Reconstruct the key-equality atom that collapse-index-scan consumed:
   the binding whose root-relative path is the index path minus its last
   field, equated with the scan key. Feedback observed for that atom then
   prices the scan exactly as the rule priced it. *)
let index_key_atom root derefs (ix : Catalog.index_def) key =
  match List.rev ix.Catalog.ix_path with
  | [] -> None
  | last :: rev_base ->
    let base = List.rev rev_base in
    let paths = Hashtbl.create 8 in
    Hashtbl.add paths root [];
    let rec fixpoint remaining =
      let ready, rest =
        List.partition (fun (src, _, _) -> Hashtbl.mem paths src) remaining
      in
      if ready = [] then ()
      else begin
        List.iter
          (fun (src, field, out) ->
            let p = Hashtbl.find paths src in
            Hashtbl.add paths out
              (match field with Some f -> p @ [ f ] | None -> p))
          ready;
        fixpoint rest
      end
    in
    fixpoint derefs;
    Hashtbl.fold
      (fun b p acc -> match acc with Some _ -> acc | None -> if p = base then Some b else None)
      paths None
    |> Option.map (fun b -> Pred.atom Pred.Eq (Pred.Field (b, last)) (Pred.Const key))

(* Logical properties of each physical node, by re-deriving through the
   logical operator(s) the algorithm implements. *)
let node_lprops cfg cat (alg : Physical.t) (inputs : Lprops.t list) : Lprops.t =
  let derive op ins = Estimator.derive cfg cat op ins in
  let fallback () = match inputs with lp :: _ -> lp | [] -> empty_lprops in
  try
    match alg with
    | Physical.File_scan { coll; binding } ->
      derive (Logical.Get { coll; binding }) []
    | Physical.Index_scan { coll; binding; index; key; residual; derefs } ->
      let lp0 = derive (Logical.Get { coll; binding }) [] in
      (* Re-apply the Mat spine the collapse consumed so the residual's
         bindings are in scope. *)
      let lp =
        List.fold_left
          (fun lp (src, field, out) ->
            derive (Logical.Mat { src; field; out }) [ lp ])
          lp0 derefs
      in
      let matches =
        match
          List.find_opt
            (fun ix -> String.equal ix.Catalog.ix_name index)
            (Catalog.indexes_on cat ~coll)
        with
        | Some ix -> (
          let fb =
            match index_key_atom binding derefs ix key with
            | Some a -> Selectivity.feedback_sel cfg ~env:lp a
            | None -> None
          in
          match fb with
          | Some s -> lp0.Lprops.card *. s
          | None ->
            lp0.Lprops.card /. Float.max 1.0 (float_of_int ix.Catalog.ix_distinct))
        | None -> lp0.Lprops.card
      in
      let sel = Selectivity.pred cfg cat ~env:lp residual in
      { lp with Lprops.card = matches *. sel }
    | Physical.Filter pred -> derive (Logical.Select pred) inputs
    | Physical.Hash_join pred -> derive (Logical.Join pred) inputs
    | Physical.Merge_join { key_l; key_r; residual } ->
      derive (Logical.Join (Pred.atom Pred.Eq key_l key_r :: residual)) inputs
    | Physical.Pointer_join { src; field; out; residual } ->
      let lp = derive (Logical.Mat { src; field; out }) inputs in
      derive (Logical.Select residual) [ lp ]
    | Physical.Assembly { paths; window = _; warm = _ } ->
      List.fold_left
        (fun lp { Physical.ap_src; ap_field; ap_out } ->
          match Lprops.find lp ap_out with
          | Some _ -> lp (* already in scope: nothing new to materialize *)
          | None ->
            derive
              (Logical.Mat { src = ap_src; field = ap_field; out = ap_out })
              [ lp ])
        (fallback ()) paths
    | Physical.Alg_project pl -> derive (Logical.Project pl) inputs
    | Physical.Alg_unnest { src; field; out } ->
      derive (Logical.Unnest { src; field; out }) inputs
    | Physical.Hash_union -> derive Logical.Union inputs
    | Physical.Hash_intersect -> derive Logical.Intersect inputs
    | Physical.Hash_difference -> derive Logical.Difference inputs
    | Physical.Sort _ -> fallback ()
  with _ -> fallback ()

let plan ?(config = Config.default) cat p =
  let rec build (p : Engine.plan) : Lprops.t * t =
    let pairs = List.map build p.Engine.children in
    let before = Config.fb_hits config in
    let lp = node_lprops config cat p.Engine.alg (List.map fst pairs) in
    let fed = Config.fb_hits config > before in
    (lp, { card = lp.Lprops.card; fed; children = List.map snd pairs })
  in
  snd (build p)
