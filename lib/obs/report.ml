module Json = Oodb_util.Json
module Engine = Open_oodb.Model.Engine
module Optimizer = Open_oodb.Optimizer
module Options = Open_oodb.Options
module Physical = Open_oodb.Physical
module Cost = Oodb_cost.Cost
module Db = Oodb_exec.Db
module Executor = Oodb_exec.Executor

type t = {
  name : string;
  outcome : Optimizer.outcome;
  trace : Trace.t;
  rows : Executor.row list;
  report : Executor.io_report;
  profile : Profile.node option;
}

let zero_report : Executor.io_report =
  { Executor.seq_reads = 0;
    rand_reads = 0;
    writes = 0;
    buffer_hits = 0;
    buffer_misses = 0;
    buffer_evictions = 0;
    rows = 0;
    simulated_seconds = 0. }

let collect ?(options = Options.default) ?registry ?trace_capacity ?spans db ~name query
    =
  let trace = Trace.create ?capacity:trace_capacity () in
  let outcome =
    Span.with_span spans ~cat:"pipeline" name (fun () ->
        Optimizer.optimize ~options ~trace:(Trace.sink trace) ?spans (Db.catalog db)
          query)
  in
  let rows, report, profile =
    match outcome.Optimizer.plan with
    | None -> ([], zero_report, None)
    | Some plan ->
      let rows, report, prof =
        Span.with_span spans ~cat:"pipeline" "execute" (fun () ->
            Profile.run ~config:options.Options.config ?spans ?registry db plan)
      in
      (rows, report, Some prof)
  in
  (match registry with
  | None -> ()
  | Some m ->
    let key suffix = name ^ "/" ^ suffix in
    let s = outcome.Optimizer.stats in
    Metrics.incr ~by:s.Engine.groups m (key "opt/groups");
    Metrics.incr ~by:s.Engine.mexprs m (key "opt/mexprs");
    Metrics.incr ~by:s.Engine.candidates m (key "opt/candidates");
    Metrics.incr ~by:s.Engine.phys_memo_hits m (key "opt/memo_hits");
    Metrics.observe m (key "opt/seconds") outcome.Optimizer.opt_seconds;
    (* Cross-query latency distribution, alongside the per-query timer. *)
    Metrics.observe_hist m "opt/seconds" outcome.Optimizer.opt_seconds;
    (match profile with
    | None -> ()
    | Some p ->
      let rec walk (n : Profile.node) =
        Metrics.observe_hist m
          ("exec/op/" ^ Physical.to_string n.Profile.alg ^ "/exclusive_seconds")
          n.Profile.exclusive_seconds;
        List.iter walk n.Profile.children
      in
      walk p);
    Metrics.incr ~by:report.Executor.rows m (key "exec/rows");
    Metrics.incr
      ~by:(report.Executor.seq_reads + report.Executor.rand_reads)
      m (key "exec/reads");
    Metrics.incr ~by:report.Executor.writes m (key "exec/writes");
    Metrics.set m (key "exec/simulated_seconds") report.Executor.simulated_seconds);
  { name; outcome; trace; rows; report; profile }

let io_report_json (r : Executor.io_report) =
  Json.Obj
    [ ("rows", Json.Int r.Executor.rows);
      ("seq_reads", Json.Int r.Executor.seq_reads);
      ("rand_reads", Json.Int r.Executor.rand_reads);
      ("writes", Json.Int r.Executor.writes);
      ("buffer_hits", Json.Int r.Executor.buffer_hits);
      ("buffer_misses", Json.Int r.Executor.buffer_misses);
      ("buffer_evictions", Json.Int r.Executor.buffer_evictions);
      ("simulated_seconds", Json.float r.Executor.simulated_seconds) ]

let stats_json (s : Engine.stats) =
  Json.Obj
    [ ("groups", Json.Int s.Engine.groups);
      ("mexprs", Json.Int s.Engine.mexprs);
      ("trule_tried", Json.Int s.Engine.trule_tried);
      ("trule_fired", Json.Int s.Engine.trule_fired);
      ("candidates", Json.Int s.Engine.candidates);
      ("pruned_candidates", Json.Int s.Engine.pruned_candidates);
      ("pruned_subgoals", Json.Int s.Engine.pruned_subgoals);
      ("enforcer_uses", Json.Int s.Engine.enforcer_uses);
      ("phys_memo_hits", Json.Int s.Engine.phys_memo_hits);
      ("closure_steps", Json.Int s.Engine.closure_steps);
      ("closure_complete", Json.Bool s.Engine.closure_complete);
      ("prov_records", Json.Int s.Engine.prov_records);
      ("prov_dropped", Json.Int s.Engine.prov_dropped) ]

let cost_json (c : Cost.t) =
  Json.Obj
    [ ("io", Json.float c.Cost.io);
      ("cpu", Json.float c.Cost.cpu);
      ("total", Json.float (Cost.total c)) ]

let to_json t =
  let plan_fields =
    match t.outcome.Optimizer.plan with
    | None -> [ ("plan", Json.Null) ]
    | Some p ->
      [ ("plan", Json.String (Format.asprintf "%a" Engine.pp_plan p));
        ("cost", cost_json p.Engine.cost) ]
  in
  Json.Obj
    [ ("name", Json.String t.name);
      ( "optimizer",
        Json.Obj
          ([ ("stats", stats_json t.outcome.Optimizer.stats);
             ("opt_seconds", Json.float t.outcome.Optimizer.opt_seconds) ]
          @ plan_fields
          @ [ ( "trace",
                Trace.to_json
                  ~prov_dropped:t.outcome.Optimizer.stats.Engine.prov_dropped t.trace )
            ]) );
      ( "execution",
        Json.Obj
          [ ("io", io_report_json t.report);
            ( "profile",
              match t.profile with
              | None -> Json.Null
              | Some p -> Profile.to_json p ) ] ) ]

let workload_json ?registry ?(extra = []) reports =
  Json.Obj
    ([ ("schema_version", Json.Int 1);
       ("queries", Json.List (List.map to_json reports)) ]
    @ (match registry with
      | None -> []
      | Some m -> [ ("metrics", Metrics.to_json (Metrics.snapshot m)) ])
    @ extra)
