module Json = Oodb_util.Json
module Engine = Open_oodb.Model.Engine
module Physical = Open_oodb.Physical
module Planlint = Open_oodb.Planlint
module Config = Oodb_cost.Config
module Disk = Oodb_storage.Disk
module Store = Oodb_storage.Store
module Buffer_pool = Oodb_storage.Buffer_pool
module Db = Oodb_exec.Db
module Executor = Oodb_exec.Executor
module Iterator = Oodb_exec.Iterator

type io = {
  seq_reads : int;
  rand_reads : int;
  writes : int;
  buffer_hits : int;
  buffer_misses : int;
  buffer_evictions : int;
  seek_units : float;
  simulated_seconds : float;
}

type node = {
  op_id : int;
  alg : Physical.t;
  est_rows : float;
  actual_rows : int;
  batches : int;
  wall_seconds : float;
  exclusive_seconds : float;
  inclusive : io;
  exclusive : io;
  q_error : float;
  est_source : string;
  children : node list;
}

(* Flooring both operands at one row keeps the ratio finite and
   symmetric when either side is zero: est=5/actual=0 reads q=5 (the
   estimator invented five rows), est=0/actual=3 reads q=3, and the
   degenerate 0/0 is a perfect q=1 — not the 1e9-ish artifacts the old
   epsilon floor produced. *)
let q_error ~est ~actual =
  let hi = Float.max 1.0 (Float.max est actual)
  and lo = Float.max 1.0 (Float.min est actual) in
  hi /. lo

(* Mutable per-operator accumulator, one per plan node. *)
type cell = {
  id : int;
  mutable rows : int;
  mutable batches : int;
  mutable wall : float;
  mutable disk : Disk.stats;
  mutable buf : Buffer_pool.stats;
}

let zero_disk : Disk.stats =
  { Disk.seq_reads = 0; rand_reads = 0; seek_pages = 0; seek_units = 0.; writes = 0 }

let zero_buf : Buffer_pool.stats = { Buffer_pool.hits = 0; misses = 0; evictions = 0 }

let add_disk (a : Disk.stats) (b : Disk.stats) : Disk.stats =
  { Disk.seq_reads = a.Disk.seq_reads + b.Disk.seq_reads;
    rand_reads = a.Disk.rand_reads + b.Disk.rand_reads;
    seek_pages = a.Disk.seek_pages + b.Disk.seek_pages;
    seek_units = a.Disk.seek_units +. b.Disk.seek_units;
    writes = a.Disk.writes + b.Disk.writes }

let add_buf (a : Buffer_pool.stats) (b : Buffer_pool.stats) : Buffer_pool.stats =
  { Buffer_pool.hits = a.Buffer_pool.hits + b.Buffer_pool.hits;
    misses = a.Buffer_pool.misses + b.Buffer_pool.misses;
    evictions = a.Buffer_pool.evictions + b.Buffer_pool.evictions }

let io_of config (d : Disk.stats) (b : Buffer_pool.stats) =
  { seq_reads = d.Disk.seq_reads;
    rand_reads = d.Disk.rand_reads;
    writes = d.Disk.writes;
    buffer_hits = b.Buffer_pool.hits;
    buffer_misses = b.Buffer_pool.misses;
    buffer_evictions = b.Buffer_pool.evictions;
    seek_units = d.Disk.seek_units;
    simulated_seconds = Executor.simulated_seconds_of config d }

(* The physical memo can hand the optimizer the same plan record for
   repeated (group, property) subproblems, so one record may occur at
   several tree positions. Profiling keys cells by physical identity of
   the node, so give every position its own record first. *)
let rec uniquify (p : Engine.plan) : Engine.plan =
  { p with Engine.children = List.map uniquify p.Engine.children }

let run ?(verify = false) ?(config = Config.default) ?spans ?registry db plan =
  (if verify then
     match Planlint.plan (Db.catalog db) plan with
     | Ok () -> ()
     | Error vs ->
       invalid_arg
         (Format.asprintf "Profile: refusing invalid plan:@.%a"
            Planlint.pp_violations vs));
  let plan = uniquify plan in
  let store = Db.store db in
  let disk = Store.disk store and buffer = Store.buffer store in
  let cells : (Engine.plan * cell) list ref = ref [] in
  (* Span boundaries use the very same [Sys.time] readings as the wall
     accumulator, so per-operator span durations sum to [wall_seconds]
     exactly, not merely within clock jitter. *)
  let span_begin name args t0 =
    match spans with
    | None -> ()
    | Some s -> Span.begin_ s ~cat:"exec" ~args ~ts:t0 name
  in
  let span_end name t1 =
    match spans with None -> () | Some s -> Span.end_ s ~ts:t1 name
  in
  let measure cell ~name ~args f =
    let d0 = Disk.stats disk and b0 = Buffer_pool.stats buffer in
    let t0 = Sys.time () in
    span_begin name args t0;
    let finish () =
      let t1 = Sys.time () in
      cell.wall <- cell.wall +. (t1 -. t0);
      cell.disk <- add_disk cell.disk (Disk.sub (Disk.stats disk) d0);
      cell.buf <- add_buf cell.buf (Buffer_pool.sub (Buffer_pool.stats buffer) b0);
      span_end name t1
    in
    match f () with
    | v ->
      finish ();
      v
    | exception e ->
      finish ();
      raise e
  in
  let next_id = ref 0 in
  let wrap node it =
    let id = !next_id in
    incr next_id;
    let cell =
      { id; rows = 0; batches = 0; wall = 0.; disk = zero_disk; buf = zero_buf }
    in
    cells := (node, cell) :: !cells;
    let name = Physical.to_string node.Engine.alg in
    let args phase = [ ("op_id", Json.Int id); ("phase", Json.String phase) ] in
    (* Interpose per batch, not per tuple: one measured boundary crossing
       per next_batch keeps the profiler's own overhead amortized the
       same way the engine's is, and the I/O counters still sum exactly
       because they are deltas of global counters. *)
    Iterator.make_batched
      ~open_:(fun () ->
        measure cell ~name ~args:(args "open") (fun () -> Iterator.open_ it))
      ~next_batch:(fun () ->
        cell.batches <- cell.batches + 1;
        let r =
          measure cell ~name ~args:(args "next_batch") (fun () ->
              Iterator.next_batch it)
        in
        (match r with
        | Some b ->
          let n = Oodb_exec.Batch.length b in
          cell.rows <- cell.rows + n;
          Option.iter
            (fun reg -> Metrics.observe_hist reg "exec/batch_rows" (float_of_int n))
            registry
        | None -> ());
        r)
      ~close:(fun () ->
        measure cell ~name ~args:(args "close") (fun () -> Iterator.close it))
  in
  Disk.reset_stats disk;
  Buffer_pool.reset_stats buffer;
  Buffer_pool.flush buffer;
  let it = Executor.iterator ~config ~wrap db plan in
  let envs = Iterator.to_list it in
  let rows = Executor.rows_of plan envs in
  let report =
    Executor.report_of ~config ~rows:(List.length rows) (Disk.stats disk)
      (Buffer_pool.stats buffer)
  in
  let est = Cardest.plan ~config (Db.catalog db) plan in
  let cell_of node =
    match List.find_opt (fun (n, _) -> n == node) !cells with
    | Some (_, c) -> c
    | None ->
      (* A node the executor never built an iterator for (unreachable for
         well-formed plans): report zeros. *)
      { id = -1; rows = 0; batches = 0; wall = 0.; disk = zero_disk; buf = zero_buf }
  in
  let sub_io a b =
    let d =
      { Disk.seq_reads = a.seq_reads - b.seq_reads;
        rand_reads = a.rand_reads - b.rand_reads;
        seek_pages = 0;
        seek_units = a.seek_units -. b.seek_units;
        writes = a.writes - b.writes }
    in
    { seq_reads = d.Disk.seq_reads;
      rand_reads = d.Disk.rand_reads;
      writes = d.Disk.writes;
      buffer_hits = a.buffer_hits - b.buffer_hits;
      buffer_misses = a.buffer_misses - b.buffer_misses;
      buffer_evictions = a.buffer_evictions - b.buffer_evictions;
      seek_units = d.Disk.seek_units;
      (* re-priced from the residual counters rather than subtracted, so
         a leaf-heavy node can't show a float-rounding -0.000s *)
      simulated_seconds = Executor.simulated_seconds_of config d }
  in
  let rec build (p : Engine.plan) (e : Cardest.t) =
    let children = List.map2 build p.Engine.children e.Cardest.children in
    let cell = cell_of p in
    let inclusive = io_of config cell.disk cell.buf in
    let exclusive =
      List.fold_left (fun acc c -> sub_io acc c.inclusive) inclusive children
    in
    (* In the pull model every child batch is produced inside a parent
       measure window, so inclusive >= sum of children; the clamp only
       absorbs float rounding. *)
    let exclusive_seconds =
      Float.max 0.
        (List.fold_left (fun acc c -> acc -. c.wall_seconds) cell.wall children)
    in
    { op_id = cell.id;
      alg = p.Engine.alg;
      est_rows = e.Cardest.card;
      actual_rows = cell.rows;
      batches = cell.batches;
      wall_seconds = cell.wall;
      exclusive_seconds;
      inclusive;
      exclusive;
      q_error = q_error ~est:e.Cardest.card ~actual:(float_of_int cell.rows);
      est_source = (if e.Cardest.fed then "feedback" else "model");
      children }
  in
  (rows, report, build plan est)

let annot n =
  Printf.sprintf
    "rows=%d est=%.1f%s q=%.2f batches=%d wall=%.4fs io: %d seq + %d rand + %d write (buffer %d/%d/%d) ~%.3fs"
    n.actual_rows n.est_rows
    (if String.equal n.est_source "feedback" then " src=feedback" else "")
    n.q_error n.batches n.exclusive_seconds
    n.exclusive.seq_reads n.exclusive.rand_reads n.exclusive.writes
    n.exclusive.buffer_hits n.exclusive.buffer_misses n.exclusive.buffer_evictions
    n.exclusive.simulated_seconds

let rec tree_of n =
  Oodb_util.Pretty.Node
    ( Printf.sprintf "%s  [%s]" (Physical.to_string n.alg) (annot n),
      List.map tree_of n.children )

let pp ppf n = Format.pp_print_string ppf (Oodb_util.Pretty.render (tree_of n))

let io_json io =
  Json.Obj
    [ ("seq_reads", Json.Int io.seq_reads);
      ("rand_reads", Json.Int io.rand_reads);
      ("writes", Json.Int io.writes);
      ("buffer_hits", Json.Int io.buffer_hits);
      ("buffer_misses", Json.Int io.buffer_misses);
      ("buffer_evictions", Json.Int io.buffer_evictions);
      ("seek_units", Json.float io.seek_units);
      ("simulated_seconds", Json.float io.simulated_seconds) ]

let rec to_json n =
  Json.Obj
    [ ("op", Json.String (Physical.to_string n.alg));
      ("op_id", Json.Int n.op_id);
      ("est_rows", Json.float n.est_rows);
      ("actual_rows", Json.Int n.actual_rows);
      ("batches", Json.Int n.batches);
      ("wall_seconds", Json.float n.wall_seconds);
      ("exclusive_seconds", Json.float n.exclusive_seconds);
      ("q_error", Json.float n.q_error);
      ("est_source", Json.String n.est_source);
      ("inclusive", io_json n.inclusive);
      ("exclusive", io_json n.exclusive);
      ("children", Json.List (List.map to_json n.children)) ]
