module Json = Oodb_util.Json
module Engine = Open_oodb.Model.Engine
module Physical = Open_oodb.Physical
module Physprop = Open_oodb.Physprop
module Logical = Oodb_algebra.Logical
module Cost = Oodb_cost.Cost

type rule_cell = { mutable tried : int; mutable fired : int }

type group_cell = {
  mutable c_mexprs : int;
  mutable c_trules_fired : int;
  mutable c_candidates : int;
  mutable c_prunes : int;
  mutable c_subgoal_prunes : int;
  mutable c_enforcer_inserts : int;
  mutable c_memo_hits : int;
}

type totals = {
  groups_created : int;
  mexprs_added : int;
  merges : int;
  trules_tried : int;
  trules_fired : int;
  irules_tried : int;
  candidates : int;
  prunes : int;
  subgoal_prunes : int;
  enforcers_tried : int;
  enforcer_offers : int;
  enforcer_inserts : int;
  memo_hits : int;
}

type t = {
  ring : Engine.event Ring.t;
  rules : (string, rule_cell) Hashtbl.t;
  groups : (int, group_cell) Hashtbl.t;
  mutable totals : totals;
}

let zero_totals =
  { groups_created = 0;
    mexprs_added = 0;
    merges = 0;
    trules_tried = 0;
    trules_fired = 0;
    irules_tried = 0;
    candidates = 0;
    prunes = 0;
    subgoal_prunes = 0;
    enforcers_tried = 0;
    enforcer_offers = 0;
    enforcer_inserts = 0;
    memo_hits = 0 }

let create ?(capacity = 4096) () =
  { ring = Ring.create capacity;
    rules = Hashtbl.create 32;
    groups = Hashtbl.create 64;
    totals = zero_totals }

let rule_cell t name =
  match Hashtbl.find_opt t.rules name with
  | Some c -> c
  | None ->
    let c = { tried = 0; fired = 0 } in
    Hashtbl.add t.rules name c;
    c

let group_cell t g =
  match Hashtbl.find_opt t.groups g with
  | Some c -> c
  | None ->
    let c =
      { c_mexprs = 0;
        c_trules_fired = 0;
        c_candidates = 0;
        c_prunes = 0;
        c_subgoal_prunes = 0;
        c_enforcer_inserts = 0;
        c_memo_hits = 0 }
    in
    Hashtbl.add t.groups g c;
    c

let aggregate t (e : Engine.event) =
  let tot = t.totals in
  match e with
  | Group_created { group } ->
    ignore (group_cell t group);
    t.totals <- { tot with groups_created = tot.groups_created + 1 }
  | Mexpr_added { group; _ } ->
    let c = group_cell t group in
    c.c_mexprs <- c.c_mexprs + 1;
    t.totals <- { tot with mexprs_added = tot.mexprs_added + 1 }
  | Groups_merged _ -> t.totals <- { tot with merges = tot.merges + 1 }
  | Trule_tried { rule; _ } ->
    (rule_cell t rule).tried <- (rule_cell t rule).tried + 1;
    t.totals <- { tot with trules_tried = tot.trules_tried + 1 }
  | Trule_fired { rule; group } ->
    (rule_cell t rule).fired <- (rule_cell t rule).fired + 1;
    let c = group_cell t group in
    c.c_trules_fired <- c.c_trules_fired + 1;
    t.totals <- { tot with trules_fired = tot.trules_fired + 1 }
  | Irule_tried { rule; _ } ->
    (rule_cell t rule).tried <- (rule_cell t rule).tried + 1;
    t.totals <- { tot with irules_tried = tot.irules_tried + 1 }
  | Candidate_costed { rule; group; _ } ->
    (rule_cell t rule).fired <- (rule_cell t rule).fired + 1;
    let c = group_cell t group in
    c.c_candidates <- c.c_candidates + 1;
    t.totals <- { tot with candidates = tot.candidates + 1 }
  | Pruned { group; _ } ->
    let c = group_cell t group in
    c.c_prunes <- c.c_prunes + 1;
    t.totals <- { tot with prunes = tot.prunes + 1 }
  | Subgoal_pruned { group; _ } ->
    let c = group_cell t group in
    c.c_subgoal_prunes <- c.c_subgoal_prunes + 1;
    t.totals <- { tot with subgoal_prunes = tot.subgoal_prunes + 1 }
  | Enforcer_tried { rule; _ } ->
    (rule_cell t rule).tried <- (rule_cell t rule).tried + 1;
    t.totals <- { tot with enforcers_tried = tot.enforcers_tried + 1 }
  | Enforcer_offered { rule; _ } ->
    (rule_cell t rule).fired <- (rule_cell t rule).fired + 1;
    t.totals <- { tot with enforcer_offers = tot.enforcer_offers + 1 }
  | Enforcer_inserted { group; _ } ->
    let c = group_cell t group in
    c.c_enforcer_inserts <- c.c_enforcer_inserts + 1;
    t.totals <- { tot with enforcer_inserts = tot.enforcer_inserts + 1 }
  | Phys_memo_hit { group; _ } ->
    let c = group_cell t group in
    c.c_memo_hits <- c.c_memo_hits + 1;
    t.totals <- { tot with memo_hits = tot.memo_hits + 1 }

let sink t e =
  (* Aggregates first: they must stay exact even after the ring wraps. *)
  aggregate t e;
  Ring.push t.ring e

let per_rule t =
  Hashtbl.fold (fun name c acc -> (name, c.tried, c.fired) :: acc) t.rules []
  |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)

type group_stat = {
  g_mexprs : int;
  g_trules_fired : int;
  g_candidates : int;
  g_prunes : int;
  g_subgoal_prunes : int;
  g_enforcer_inserts : int;
  g_memo_hits : int;
}

let per_group t =
  Hashtbl.fold
    (fun g c acc ->
      ( g,
        { g_mexprs = c.c_mexprs;
          g_trules_fired = c.c_trules_fired;
          g_candidates = c.c_candidates;
          g_prunes = c.c_prunes;
          g_subgoal_prunes = c.c_subgoal_prunes;
          g_enforcer_inserts = c.c_enforcer_inserts;
          g_memo_hits = c.c_memo_hits } )
      :: acc)
    t.groups []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let totals t = t.totals

let seen t = Ring.seen t.ring

let dropped t = Ring.dropped t.ring

let events t = Ring.to_list t.ring

let pp_event ppf (e : Engine.event) =
  match e with
  | Group_created { group } -> Format.fprintf ppf "group %d created" group
  | Mexpr_added { group; op } ->
    Format.fprintf ppf "group %d += %a" group Logical.pp_op op
  | Groups_merged { winner; loser } ->
    Format.fprintf ppf "merge: group %d absorbed into group %d" loser winner
  | Trule_tried { rule; group } ->
    Format.fprintf ppf "trule %s tried on group %d" rule group
  | Trule_fired { rule; group } ->
    Format.fprintf ppf "trule %s fired on group %d" rule group
  | Irule_tried { rule; group } ->
    Format.fprintf ppf "irule %s tried on group %d" rule group
  | Candidate_costed { rule; group; alg; cost } ->
    Format.fprintf ppf "irule %s: costed %a for group %d at %a" rule Physical.pp
      alg group Cost.pp cost
  | Pruned { group; alg; cost; limit } ->
    Format.fprintf ppf "pruned %a in group %d: %a > limit %a" Physical.pp alg
      group Cost.pp cost Cost.pp limit
  | Subgoal_pruned { group; required } ->
    Format.fprintf ppf "subgoal pruned: (group %d, %a) dominated, never expanded"
      group Physprop.pp required
  | Enforcer_tried { rule; group } ->
    Format.fprintf ppf "enforcer %s tried on group %d" rule group
  | Enforcer_offered { rule; group; alg; cost } ->
    Format.fprintf ppf "enforcer %s: offered %a for group %d at %a" rule
      Physical.pp alg group Cost.pp cost
  | Enforcer_inserted { group; alg } ->
    Format.fprintf ppf "enforcer inserted %a above group %d" Physical.pp alg
      group
  | Phys_memo_hit { group; required } ->
    Format.fprintf ppf "memo hit: (group %d, %a)" group Physprop.pp required

let pp_timeline ?limit ?(prov_dropped = 0) ppf t =
  (* Lead with the drop count: a truncated timeline silently read as
     complete is worse than no timeline. Aggregates stay exact anyway. *)
  if dropped t > 0 then
    Format.fprintf ppf
      "WARNING: %d of %d events dropped (ring capacity exceeded); timeline is a \
       suffix, aggregates remain exact@."
      (dropped t) (seen t);
  if prov_dropped > 0 then
    Format.fprintf ppf
      "WARNING: %d provenance candidate-log rows dropped (cap exceeded); lineage and \
       explanations are incomplete@."
      prov_dropped;
  let evs = events t in
  let retained = List.length evs in
  let evs, shown =
    match limit with
    | Some n when n < retained ->
      let rec drop k = function xs when k <= 0 -> xs | _ :: tl -> drop (k - 1) tl | [] -> [] in
      (drop (retained - n) evs, n)
    | _ -> (evs, retained)
  in
  let hidden = retained - shown in
  if hidden > 0 then Format.fprintf ppf "... %d earlier events not shown@." hidden;
  List.iter (fun (seq, e) -> Format.fprintf ppf "%6d  %a@." seq pp_event e) evs

let pp_rules ppf t =
  Format.fprintf ppf "%-30s %6s %6s@." "rule" "tried" "fired";
  List.iter
    (fun (name, tried, fired) ->
      Format.fprintf ppf "%-30s %6d %6d@." name tried fired)
    (per_rule t)

let pp_groups ppf t =
  Format.fprintf ppf "%5s %7s %7s %7s %7s %8s %9s %9s@." "group" "mexprs" "tfired"
    "cands" "prunes" "subgoals" "enforced" "memohits";
  List.iter
    (fun (g, s) ->
      Format.fprintf ppf "%5d %7d %7d %7d %7d %8d %9d %9d@." g s.g_mexprs
        s.g_trules_fired s.g_candidates s.g_prunes s.g_subgoal_prunes
        s.g_enforcer_inserts s.g_memo_hits)
    (per_group t)

let pp_summary ppf t =
  let x = t.totals in
  Format.fprintf ppf
    "groups %d, mexprs %d, merges %d; trules %d/%d fired, irules %d tried / %d \
     candidates, %d pruned, %d subgoals skipped; enforcers %d tried / %d \
     offered / %d inserted; %d memo hits; %d events (%d dropped)@."
    x.groups_created x.mexprs_added x.merges x.trules_fired x.trules_tried
    x.irules_tried x.candidates x.prunes x.subgoal_prunes x.enforcers_tried
    x.enforcer_offers x.enforcer_inserts x.memo_hits (seen t) (dropped t)

let cost_json (c : Cost.t) =
  Json.Obj
    [ ("io", Json.float c.Cost.io);
      ("cpu", Json.float c.Cost.cpu);
      ("total", Json.float (Cost.total c)) ]

let alg_json alg = Json.String (Format.asprintf "%a" Physical.pp alg)

let event_json (e : Engine.event) =
  let obj kind fields = Json.Obj (("event", Json.String kind) :: fields) in
  let g n = ("group", Json.Int n) in
  let rule r = ("rule", Json.String r) in
  match e with
  | Group_created { group } -> obj "group_created" [ g group ]
  | Mexpr_added { group; op } ->
    obj "mexpr_added"
      [ g group; ("op", Json.String (Format.asprintf "%a" Logical.pp_op op)) ]
  | Groups_merged { winner; loser } ->
    obj "groups_merged" [ ("winner", Json.Int winner); ("loser", Json.Int loser) ]
  | Trule_tried { rule = r; group } -> obj "trule_tried" [ rule r; g group ]
  | Trule_fired { rule = r; group } -> obj "trule_fired" [ rule r; g group ]
  | Irule_tried { rule = r; group } -> obj "irule_tried" [ rule r; g group ]
  | Candidate_costed { rule = r; group; alg; cost } ->
    obj "candidate_costed"
      [ rule r; g group; ("alg", alg_json alg); ("cost", cost_json cost) ]
  | Pruned { group; alg; cost; limit } ->
    obj "pruned"
      [ g group;
        ("alg", alg_json alg);
        ("cost", cost_json cost);
        ("limit", cost_json limit) ]
  | Subgoal_pruned { group; required } ->
    obj "subgoal_pruned"
      [ g group;
        ("required", Json.String (Format.asprintf "%a" Physprop.pp required)) ]
  | Enforcer_tried { rule = r; group } -> obj "enforcer_tried" [ rule r; g group ]
  | Enforcer_offered { rule = r; group; alg; cost } ->
    obj "enforcer_offered"
      [ rule r; g group; ("alg", alg_json alg); ("cost", cost_json cost) ]
  | Enforcer_inserted { group; alg } ->
    obj "enforcer_inserted" [ g group; ("alg", alg_json alg) ]
  | Phys_memo_hit { group; required } ->
    obj "phys_memo_hit"
      [ g group;
        ("required", Json.String (Format.asprintf "%a" Physprop.pp required)) ]

let to_json ?(prov_dropped = 0) t =
  let x = t.totals in
  Json.Obj
    ((* top-level, not buried in "timeline": consumers checking
        completeness should not need to know the nesting *)
     [ ("dropped", Json.Int (dropped t)); ("prov_dropped", Json.Int prov_dropped) ]
    @ (if dropped t > 0 then
         [ ( "dropped_warning",
             Json.String
               (Printf.sprintf
                  "%d of %d events dropped (ring capacity exceeded); timeline is \
                   a suffix, aggregates remain exact"
                  (dropped t) (seen t)) ) ]
       else [])
    @ (if prov_dropped > 0 then
         [ ( "prov_dropped_warning",
             Json.String
               (Printf.sprintf
                  "%d provenance candidate-log rows dropped (cap exceeded); lineage \
                   and explanations are incomplete"
                  prov_dropped) ) ]
       else [])
    @ [ ( "totals",
        Json.Obj
          [ ("groups_created", Json.Int x.groups_created);
            ("mexprs_added", Json.Int x.mexprs_added);
            ("merges", Json.Int x.merges);
            ("trules_tried", Json.Int x.trules_tried);
            ("trules_fired", Json.Int x.trules_fired);
            ("irules_tried", Json.Int x.irules_tried);
            ("candidates", Json.Int x.candidates);
            ("prunes", Json.Int x.prunes);
            ("subgoal_prunes", Json.Int x.subgoal_prunes);
            ("enforcers_tried", Json.Int x.enforcers_tried);
            ("enforcer_offers", Json.Int x.enforcer_offers);
            ("enforcer_inserts", Json.Int x.enforcer_inserts);
            ("memo_hits", Json.Int x.memo_hits) ] );
      ( "rules",
        Json.List
          (List.map
             (fun (name, tried, fired) ->
               Json.Obj
                 [ ("rule", Json.String name);
                   ("tried", Json.Int tried);
                   ("fired", Json.Int fired) ])
             (per_rule t)) );
      ( "groups",
        Json.List
          (List.map
             (fun (gid, s) ->
               Json.Obj
                 [ ("group", Json.Int gid);
                   ("mexprs", Json.Int s.g_mexprs);
                   ("trules_fired", Json.Int s.g_trules_fired);
                   ("candidates", Json.Int s.g_candidates);
                   ("prunes", Json.Int s.g_prunes);
                   ("subgoal_prunes", Json.Int s.g_subgoal_prunes);
                   ("enforcer_inserts", Json.Int s.g_enforcer_inserts);
                   ("memo_hits", Json.Int s.g_memo_hits) ])
             (per_group t)) );
      ( "timeline",
        Json.Obj
          [ ("seen", Json.Int (seen t));
            ("dropped", Json.Int (dropped t));
            ( "events",
              Json.List
                (List.map
                   (fun (seq, e) ->
                     match event_json e with
                     | Json.Obj fields -> Json.Obj (("seq", Json.Int seq) :: fields)
                     | other -> other)
                   (events t)) ) ] ) ])
