(** Plan provenance and counterfactual explanation, built on the Volcano
    engine's derivation-lineage side-tables (recorded when
    [Options.provenance] is on, the default).

    Three consumers: [explain --why] (the winner's lineage, bottom-up,
    with rule chains, per-step cost deltas and estimate provenance);
    [why-not SHAPE] (classify where a hypothetical alternative died:
    never derived / derived-but-lost / pruned); and the memo export
    (deterministic JSON and Graphviz DOT of the group/mexpr DAG with
    lineage edges). *)

module Engine = Open_oodb.Model.Engine
module Optimizer = Open_oodb.Optimizer
module Options = Open_oodb.Options
module Physical = Open_oodb.Physical
module Physprop = Open_oodb.Physprop
module Cost = Oodb_cost.Cost
module Json = Oodb_util.Json

val available : Optimizer.outcome -> bool
(** Did this outcome record provenance? False when the optimizer ran
    with [Options.without_provenance]. *)

(** {2 Winner lineage: explain --why} *)

type why_step = {
  ws_alg : Physical.t;
  ws_rule : string;  (** implementation rule or enforcer that built the node *)
  ws_group : Engine.group;
  ws_cost : Cost.t;  (** subtree total *)
  ws_local : Cost.t;  (** the node's own (algorithm-local) cost *)
  ws_trules : string list;
      (** transformation chain that derived the implemented
          multi-expression, oldest firing first; [] for enforcer nodes *)
  ws_children : why_step list;
}

val why : Optimizer.outcome -> required:Physprop.t -> (why_step, string) result
(** Walk the winner's recorded derivation from the root goal. [Error]
    when provenance is off or no winner was recorded. *)

val replay_rules : Optimizer.outcome -> required:Physprop.t -> string list
(** Transformation rules in the winner's transitive derivation, deduped
    and sorted — the set the lineage-replay invariant re-optimizes with. *)

val est_annotations :
  ?config:Oodb_cost.Config.t ->
  Oodb_catalog.Catalog.t ->
  Optimizer.outcome ->
  Cardest.t option
(** Per-node cardinality estimates (with feedback/model source) aligned
    with the chosen plan — and hence with the {!why} tree. *)

val pp_why : ?est:Cardest.t -> Format.formatter -> why_step -> unit
(** Bottom-up transcript: post-order steps, each naming its producing
    rule, derivation chain, per-step cost and (when [est] is given)
    estimated rows with their source. *)

val why_json : ?est:Cardest.t -> why_step -> Json.t

(** {2 Why-not: counterfactual classification} *)

(** The alternative plan shape being asked about. *)
type shape =
  | Force_index of string  (** index name; [""] matches any index scan *)
  | Force_join of string  (** ["hash"] | ["merge"] | ["pointer"] *)
  | Force_scan of string  (** collection name; [""] matches any file scan *)
  | Force_alg of string  (** any algorithm by label, e.g. ["sort"] *)

val alg_label : Physical.t -> string

val shape_to_string : shape -> string

val shape_matches : shape -> Physical.t -> bool

val producing_rules : shape -> string list
(** The implementation rules/enforcers that could produce the shape. *)

val shape_of_alg : Physical.t -> shape
(** The most specific shape matching an algorithm — how the
    effectiveness report turns a better sampled plan's distinguishing
    operator into a why-not question. *)

(** Where the alternative died. *)
type verdict =
  | Chosen of { cost : Cost.t }
      (** not a death: the winning plan already uses the shape *)
  | Never_derived of { rules : string list; disabled : string list }
      (** no candidate with the shape was ever costed; [rules] names the
          producing rules, [disabled] the subset currently disabled *)
  | Derived_but_lost of {
      group : Engine.group;
      required : Physprop.t;
      alt_rule : string;
      alt_alg : Physical.t;
      alt_cost : Cost.t;
      winner_rule : string;
      winner_alg : Physical.t;
      winner_cost : Cost.t;
      gap : Cost.delta;
    }
      (** a candidate completed but lost on cost to the winner of its own
          (group, required) goal; [gap] decomposes the loss into io/cpu *)
  | Pruned_away of {
      group : Engine.group;
      rule : string;
      alg : Physical.t;
      local_cost : Cost.t;
      limit : Cost.t;
      margin : Cost.t;
      mode : string;  (** ["candidate"] | ["subgoal"] | ["abandoned"] *)
    }
      (** every matching candidate died under the branch-and-bound limit;
          the record replays the bound and margin of the closest call *)

type classification = { cl_shape : shape; cl_verdict : verdict; cl_dropped : int }

val classify :
  ?options:Options.t ->
  ?replay:(Options.t -> Optimizer.outcome) ->
  Optimizer.outcome ->
  shape ->
  (classification, string) result
(** Classify why the shape is absent from the chosen plan. [options]
    should be the options the outcome was optimized under (used to tell
    a disabled producing rule from an inapplicable one, and to decide
    whether a prune may be escalated). A completed match that won its
    own goal is chased upward through its consumers to where the
    subtree carrying it actually lost or was pruned.

    [replay], when given, re-optimizes the same query under modified
    options. It is used for one escalation only: under exhaustive
    (non-guided) branch-and-bound, a prune is a short-circuited cost
    comparison, so a pruned (or blocked-path never-derived) verdict is
    re-derived with [pruning = false]; if the completed search shows
    the alternative losing on cost, the verdict upgrades to
    {!Derived_but_lost} with the true gap. Guided-mode refusals are
    reported as {!Pruned_away} and never second-guessed.

    [Error] when provenance was not recorded. *)

val verdict_label : verdict -> string
(** ["chosen"] | ["never-derived"] | ["derived-but-lost"] | ["pruned"]. *)

val pp_classification : Format.formatter -> classification -> unit

val classification_json : classification -> Json.t

(** {2 Memo export} *)

val memo_schema_version : int

val memo_json : Optimizer.outcome -> required:Physprop.t -> Json.t
(** Deterministic JSON dump of the group/mexpr DAG with lineage edges,
    the candidate log with dispositions, and the winner path. Two runs
    of the same query produce bit-identical output (no timestamps,
    hashtable orders, or pointers leak in). *)

val memo_dot : Optimizer.outcome -> required:Physprop.t -> string
(** Graphviz DOT of the same DAG: groups as boxes, live mexprs as
    ellipses, lineage edges dashed and labeled with the producing rule;
    the winner path is bold red, pruned-everywhere mexprs dashed. *)

val cost_json : Cost.t -> Json.t
