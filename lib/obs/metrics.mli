(** Metrics registry: named counters, gauges and timers with scoped
    snapshots and JSON serialization.

    A registry is a flat namespace of metrics created on first use
    (conventionally slash-separated, e.g. ["q1/opt/groups"]). Snapshots
    are immutable copies; [diff] subtracts two snapshots of the same
    registry so a caller can attribute activity to a scope (a query, a
    request, a benchmark iteration) without resetting anything — the
    pattern {!scoped} packages. A name keeps the kind it was created
    with; re-using it as a different kind raises, surfacing telemetry
    bugs at the emission site instead of corrupting the report. *)

module Json = Oodb_util.Json

type t

val create : unit -> t

(** {1 Instruments} *)

val incr : ?by:int -> t -> string -> unit
(** Counter: monotonically increasing integer. [by] defaults to 1.
    @raise Invalid_argument if [by] is negative or the name is registered
    with a different kind. *)

val set : t -> string -> float -> unit
(** Gauge: last-write-wins float. *)

val observe : t -> string -> float -> unit
(** Timer: record one duration in seconds; the registry accumulates
    total, count and max. *)

val time : t -> string -> (unit -> 'a) -> 'a
(** Run the thunk, {!observe} its wall-clock duration under the given
    timer name. The duration is recorded even when the thunk raises. *)

(** {1 Snapshots} *)

type value =
  | Counter of int
  | Gauge of float
  | Timer of { total : float; count : int; max : float }

type snapshot = (string * value) list
(** Sorted by name. *)

val snapshot : t -> snapshot

val find : snapshot -> string -> value option

val diff : before:snapshot -> after:snapshot -> snapshot
(** Per-name delta: counters and timer totals/counts subtract (a metric
    absent from [before] counts from zero); gauges keep their [after]
    value (instantaneous readings have no meaningful delta); timer [max]
    is the [after] max. Names only in [before] are dropped. *)

val scoped : t -> (unit -> 'a) -> 'a * snapshot
(** Run the thunk and return what the registry accumulated during it. *)

val to_json : snapshot -> Json.t
(** An object keyed by metric name; counters as ints, gauges as floats,
    timers as [{"total": s, "count": n, "max": s}]. *)

val pp : Format.formatter -> snapshot -> unit
(** One ["name value"] line per metric. *)
