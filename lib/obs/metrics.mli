(** Metrics registry: named counters, gauges, timers and log-bucketed
    latency histograms with scoped snapshots and JSON serialization.

    A registry is a flat namespace of metrics created on first use
    (conventionally slash-separated, e.g. ["q1/opt/groups"]). Snapshots
    are immutable copies; [diff] subtracts two snapshots of the same
    registry so a caller can attribute activity to a scope (a query, a
    request, a benchmark iteration) without resetting anything — the
    pattern {!scoped} packages. A name keeps the kind it was created
    with; re-using it as a different kind raises, surfacing telemetry
    bugs at the emission site instead of corrupting the report. *)

module Json = Oodb_util.Json

type t

val create : unit -> t

(** {1 Instruments} *)

val incr : ?by:int -> t -> string -> unit
(** Counter: monotonically increasing integer. [by] defaults to 1.
    @raise Invalid_argument if [by] is negative or the name is registered
    with a different kind. *)

val set : t -> string -> float -> unit
(** Gauge: last-write-wins float. *)

val observe : t -> string -> float -> unit
(** Timer: record one duration in seconds; the registry accumulates
    total, count and max. *)

val observe_hist : t -> string -> float -> unit
(** Histogram: record one sample into geometric buckets (factor-of-two
    boundaries from 1 µs, with an overflow bucket above the top bound).
    Count, sum, and exact min/max are tracked alongside the buckets, so
    {!percentile} snapshots are exact for single-sample, all-equal and
    overflow-bucket distributions. *)

val time : t -> string -> (unit -> 'a) -> 'a
(** Run the thunk, {!observe} its wall-clock duration under the given
    timer name. The duration is recorded even when the thunk raises. *)

(** {1 Snapshots} *)

type hsnap = {
  count : int;
  sum : float;
  min : float;  (** exact observed minimum ([infinity] when empty) *)
  max : float;  (** exact observed maximum ([neg_infinity] when empty) *)
  counts : int array;  (** per-bucket counts, indexed like {!bucket_bounds} *)
}

type value =
  | Counter of int
  | Gauge of float
  | Timer of { total : float; count : int; max : float }
  | Histogram of hsnap

type snapshot = (string * value) list
(** Sorted by name. *)

val bucket_bounds : float array
(** Inclusive upper bounds of the histogram buckets; the last entry is
    [infinity] (the overflow bucket). *)

val percentile : hsnap -> float -> float option
(** [percentile h q] for [q] in [0, 1]: [None] when the histogram is
    empty, otherwise the upper bound of the bucket
    holding the [ceil (q * count)]'th smallest sample, clamped into the
    exact [[min, max]] — so the result never leaves the observed range,
    and degenerate distributions (one sample, all samples in one bucket,
    rank landing in the overflow bucket) come back exact. [nan] when the
    histogram is empty. *)

val snapshot : t -> snapshot

val find : snapshot -> string -> value option

val diff : before:snapshot -> after:snapshot -> snapshot
(** Per-name delta: counters, timer totals/counts and histogram
    bucket counts subtract (a metric absent from [before] counts from
    zero); gauges keep their [after] value (instantaneous readings have
    no meaningful delta); timer and histogram [min]/[max] are the
    [after] extrema. Names only in [before] are dropped. *)

val scoped : t -> (unit -> 'a) -> 'a * snapshot
(** Run the thunk and return what the registry accumulated during it. *)

val to_json : snapshot -> Json.t
(** An object keyed by metric name; counters as ints, gauges as floats,
    timers as [{"total": s, "count": n, "max": s}], histograms as
    [{"count", "sum", "min", "max", "p50", "p95", "p99", "buckets":
    [{"le", "count"}, ..]}] (occupied buckets only; the overflow
    bucket's bound serializes as [null]). *)

val pp : Format.formatter -> snapshot -> unit
(** One ["name value"] line per metric. *)
