type 'a t = {
  buf : 'a option array;
  mutable seen : int;
}

let create capacity =
  if capacity <= 0 then invalid_arg "Ring.create: capacity must be positive";
  { buf = Array.make capacity None; seen = 0 }

let capacity t = Array.length t.buf

let push t x =
  t.buf.(t.seen mod Array.length t.buf) <- Some x;
  t.seen <- t.seen + 1

let seen t = t.seen

let length t = min t.seen (Array.length t.buf)

let dropped t = t.seen - length t

let iter f t =
  let cap = Array.length t.buf in
  let first = t.seen - length t in
  for seq = first to t.seen - 1 do
    match t.buf.(seq mod cap) with
    | Some x -> f seq x
    | None -> () (* unreachable: every slot below [seen] was written *)
  done

let to_list t =
  let acc = ref [] in
  iter (fun seq x -> acc := (seq, x) :: !acc) t;
  List.rev !acc
