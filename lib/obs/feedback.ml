module Json = Oodb_util.Json
module Catalog = Oodb_catalog.Catalog
module Config = Oodb_cost.Config
module Fbkey = Oodb_cost.Fbkey
module Lprops = Oodb_cost.Lprops
module Pred = Oodb_algebra.Pred
module Physical = Open_oodb.Physical

type obs = { o_value : float; o_count : int; o_qerror : float }

type t = {
  fb_dir : string option;
  fb_epoch : int;
  fb_digest : string;
  sel : (string, obs) Hashtbl.t;
  card : (string, obs) Hashtbl.t;
  fanout : (string, obs) Hashtbl.t;
}

let size t = Hashtbl.length t.sel + Hashtbl.length t.card + Hashtbl.length t.fanout

let file t =
  match t.fb_dir with
  | None -> None
  | Some dir ->
    Some (Filename.concat dir (Printf.sprintf "fb-%d-%s.json" t.fb_epoch t.fb_digest))

(* ------------------------------------------------------------------ *)
(* Serialization                                                        *)

let obs_json o =
  Json.Obj
    [ ("value", Json.float o.o_value);
      ("count", Json.Int o.o_count);
      ("qerror", Json.float o.o_qerror) ]

let tbl_json tbl =
  Json.Obj
    (Hashtbl.fold (fun k o acc -> (k, obs_json o) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b))

let contents t =
  let rows name tbl = Hashtbl.fold (fun k o acc -> (name, k, o) :: acc) tbl [] in
  List.sort compare (rows "sel" t.sel @ rows "card" t.card @ rows "fanout" t.fanout)

let to_json t =
  Json.Obj
    [ ("epoch", Json.Int t.fb_epoch);
      ("digest", Json.String t.fb_digest);
      ("observations", Json.Int (size t));
      ("sel", tbl_json t.sel);
      ("card", tbl_json t.card);
      ("fanout", tbl_json t.fanout) ]

let obs_of_json j =
  match
    ( Option.bind (Json.member "value" j) Json.to_float,
      Option.bind (Json.member "count" j) Json.to_int,
      Option.bind (Json.member "qerror" j) Json.to_float )
  with
  | Some v, Some c, Some q -> Some { o_value = v; o_count = c; o_qerror = q }
  | _ -> None

let fill_tbl tbl j =
  match j with
  | Some (Json.Obj fields) ->
    List.iter
      (fun (k, v) -> Option.iter (Hashtbl.replace tbl k) (obs_of_json v))
      fields
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                            *)

let load_file t path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error _ -> ()
  | contents -> (
    match Json.of_string contents with
    | Error _ -> ()
    | Ok j ->
      (* The filename already scopes (epoch, digest); the body's copy is
         informational. *)
      fill_tbl t.sel (Json.member "sel" j);
      fill_tbl t.card (Json.member "card" j);
      fill_tbl t.fanout (Json.member "fanout" j))

let create ?dir cat =
  let t =
    { fb_dir = dir;
      fb_epoch = Catalog.epoch cat;
      fb_digest = Digest.to_hex (Catalog.digest cat);
      sel = Hashtbl.create 32;
      card = Hashtbl.create 16;
      fanout = Hashtbl.create 16 }
  in
  (match file t with
  | Some path when Sys.file_exists path -> load_file t path
  | _ -> ());
  t

let env_var = "OODB_FEEDBACK_DIR"

let of_env cat =
  match Sys.getenv_opt env_var with
  | Some dir when dir <> "" -> Some (create ~dir cat)
  | _ -> None

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

let save t =
  match file t with
  | None -> ()
  | Some path ->
    Option.iter mkdir_p t.fb_dir;
    let tmp = path ^ ".tmp" in
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc (Json.to_string (to_json t)));
    Sys.rename tmp path

let reset t =
  Hashtbl.reset t.sel;
  Hashtbl.reset t.card;
  Hashtbl.reset t.fanout

let clear_dir dir =
  if not (Sys.file_exists dir) then 0
  else
    Array.fold_left
      (fun n f ->
        if
          String.length f > 3
          && String.sub f 0 3 = "fb-"
          && Filename.check_suffix f ".json"
        then begin
          (try Sys.remove (Filename.concat dir f) with Sys_error _ -> ());
          n + 1
        end
        else n)
      0 (Sys.readdir dir)

(* ------------------------------------------------------------------ *)
(* Observation merge                                                    *)

(* Exponential moving average with alpha 1/2: repeated observations of a
   drifting statistic converge geometrically on the latest runs instead
   of being pinned by history, and a single outlier decays just as
   fast. *)
let merge tbl key ~value ~qerror =
  match Hashtbl.find_opt tbl key with
  | None -> Hashtbl.replace tbl key { o_value = value; o_count = 1; o_qerror = qerror }
  | Some o ->
    Hashtbl.replace tbl key
      { o_value = (0.5 *. o.o_value) +. (0.5 *. value);
        o_count = o.o_count + 1;
        o_qerror = Float.max o.o_qerror qerror }

let observe_sel t key ~value ~qerror =
  let value = Float.min 1.0 (Float.max 1e-6 value) in
  merge t.sel key ~value ~qerror

let observe_card t coll ~value ~qerror = merge t.card coll ~value:(Float.max 0. value) ~qerror

let observe_fanout t key ~value ~qerror = merge t.fanout key ~value:(Float.max 0. value) ~qerror

(* ------------------------------------------------------------------ *)
(* Installing into a cost configuration                                 *)

let hook t : Config.feedback =
  let fb = Config.feedback_create () in
  Hashtbl.iter (fun k o -> Hashtbl.replace fb.Config.fb_sel k o.o_value) t.sel;
  Hashtbl.iter (fun k o -> Hashtbl.replace fb.Config.fb_card k o.o_value) t.card;
  Hashtbl.iter (fun k o -> Hashtbl.replace fb.Config.fb_fanout k o.o_value) t.fanout;
  fb

let install t opts = Open_oodb.Options.with_feedback (hook t) opts

(* ------------------------------------------------------------------ *)
(* Harvesting a profiled execution                                      *)

(* Per-ATOM observations only, never whole conjunctions: the memo
   consistency invariant needs sel({a1,a2}) = sel(a1) * sel(a2), which
   only holds if feedback overrides individual atoms. Multi-atom
   predicates are skipped rather than attributed to one atom. *)
let harvest ?registry t config cat (root : Profile.node) =
  let recorded = ref 0 in
  let record kind key ~value ~qerror =
    (match kind with
    | `Sel -> observe_sel t key ~value ~qerror
    | `Card -> observe_card t key ~value ~qerror
    | `Fanout -> observe_fanout t key ~value ~qerror);
    incr recorded;
    Option.iter (fun reg -> Metrics.observe_hist reg "feedback/qerror" qerror) registry
  in
  let ratio out inn = float_of_int out /. float_of_int inn in
  let rec walk (n : Profile.node) : Lprops.t =
    let inputs = List.map walk n.Profile.children in
    let env = Cardest.node_lprops config cat n.Profile.alg inputs in
    let child_rows i =
      match List.nth_opt n.Profile.children i with
      | Some c -> c.Profile.actual_rows
      | None -> 0
    in
    let sel_atom a ~inn =
      if inn > 0 then
        match Fbkey.atom ~env a with
        | Some key ->
          record `Sel key ~value:(ratio n.Profile.actual_rows inn) ~qerror:n.Profile.q_error
        | None -> ()
    in
    (match n.Profile.alg with
    | Physical.File_scan { coll; _ } ->
      record `Card coll
        ~value:(float_of_int n.Profile.actual_rows)
        ~qerror:n.Profile.q_error
    | Physical.Filter [ a ] -> sel_atom a ~inn:(child_rows 0)
    | Physical.Hash_join [ a ] -> sel_atom a ~inn:(child_rows 0 * child_rows 1)
    | Physical.Merge_join { key_l; key_r; residual = [] } ->
      sel_atom (Pred.atom Pred.Eq key_l key_r) ~inn:(child_rows 0 * child_rows 1)
    | Physical.Pointer_join { residual = [ a ]; _ } -> sel_atom a ~inn:(child_rows 0)
    | Physical.Alg_unnest { src; field; _ } -> (
      let inn = child_rows 0 in
      if inn > 0 then
        match Lprops.class_of env src with
        | Some cls ->
          record `Fanout (Fbkey.fanout ~cls ~field)
            ~value:(ratio n.Profile.actual_rows inn)
            ~qerror:n.Profile.q_error
        | None -> ())
    | _ -> ());
    env
  in
  ignore (walk root);
  !recorded

(* ------------------------------------------------------------------ *)
(* Plan quality                                                         *)

let plan_quality (root : Profile.node) =
  let rec fold (mx, sum, n) (node : Profile.node) =
    List.fold_left fold
      (Float.max mx node.Profile.q_error, sum +. node.Profile.q_error, n + 1)
      node.Profile.children
  in
  let mx, sum, n = fold (1.0, 0., 0) root in
  (mx, if n = 0 then 1.0 else sum /. float_of_int n)
