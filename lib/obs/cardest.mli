(** Estimated cardinalities for a {e physical} plan.

    The optimizer's estimator ({!Oodb_cost.Estimator}) derives logical
    properties over the logical algebra; a chosen physical plan has lost
    that annotation. This module re-derives it by mapping each physical
    algorithm back onto the logical operators it implements (an index
    scan is a collapsed Select–Mat–Get spine, an assembly a stack of
    Mats, a merge join a Join whose predicate re-adds the key-equality
    atom) and running the same derivation — so the "est rows" column of
    [explain --analyze] output means exactly what the optimizer believed
    when it costed the plan. *)

module Engine = Open_oodb.Model.Engine

type t = { card : float; children : t list }
(** Mirrors the plan's shape: [children] line up with [Engine.plan.children]. *)

val plan : ?config:Oodb_cost.Config.t -> Oodb_catalog.Catalog.t -> Engine.plan -> t
(** Estimates never raise: a node whose reconstruction fails (e.g. a
    hand-built plan with out-of-scope bindings) falls back to its first
    child's estimate, or 0 rows at a leaf. *)
