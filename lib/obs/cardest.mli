(** Estimated cardinalities for a {e physical} plan.

    The optimizer's estimator ({!Oodb_cost.Estimator}) derives logical
    properties over the logical algebra; a chosen physical plan has lost
    that annotation. This module re-derives it by mapping each physical
    algorithm back onto the logical operators it implements (an index
    scan is a collapsed Select–Mat–Get spine, an assembly a stack of
    Mats, a merge join a Join whose predicate re-adds the key-equality
    atom) and running the same derivation — so the "est rows" column of
    [explain --analyze] output means exactly what the optimizer believed
    when it costed the plan. *)

module Engine = Open_oodb.Model.Engine

type t = { card : float; fed : bool; children : t list }
(** Mirrors the plan's shape: [children] line up with
    [Engine.plan.children]. [fed] is true when the node's estimate drew
    on at least one runtime-feedback override (an observed selectivity,
    collection cardinality or unnest fanout in
    [config.feedback]) rather than the synthetic model alone. *)

val node_lprops :
  Oodb_cost.Config.t ->
  Oodb_catalog.Catalog.t ->
  Open_oodb.Physical.t ->
  Oodb_cost.Lprops.t list ->
  Oodb_cost.Lprops.t
(** Logical properties of one physical node given its inputs' properties
    — the per-node step {!plan} folds over. Exposed so the feedback
    harvester can rebuild each node's binding environment. Falls back to
    the first input (or an empty environment at a leaf) when the
    reconstruction fails. *)

val plan : ?config:Oodb_cost.Config.t -> Oodb_catalog.Catalog.t -> Engine.plan -> t
(** Estimates never raise: a node whose reconstruction fails (e.g. a
    hand-built plan with out-of-scope bindings) falls back to its first
    child's estimate, or 0 rows at a leaf. *)
