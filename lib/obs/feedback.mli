(** Persistent cardinality feedback: the "closed loop" of the
    observatory.

    After a profiled execution, {!harvest} walks the profile tree and
    records per-node observed statistics — collection cardinalities,
    single-atom selectivities, unnest fanouts — keyed by the canonical
    {!Oodb_cost.Fbkey} keys the estimator looks up. {!install} loads
    those observations into an optimizer configuration
    ({!Oodb_cost.Config.feedback}), so the next optimization of any
    query touching the same atoms prices candidates with observed truth
    instead of the synthetic model, and [explain --analyze] tags such
    nodes [est_source: feedback].

    A store is scoped to one catalog state ([(epoch, digest)]): stale
    observations from before a statistics change can never leak into a
    fresh catalog. On disk the store is one JSON file per scope,
    [fb-<epoch>-<digest>.json], under a directory (typically
    [$OODB_FEEDBACK_DIR]). Repeated observations of the same key merge
    by exponential moving average (alpha 1/2), so drifting statistics
    converge on recent runs.

    Only {e single-atom} selectivities are harvested. The memo
    consistency invariant requires [sel({a1, a2}) = sel(a1) * sel(a2)];
    overriding a whole conjunction would break the select-into-join
    merge's arithmetic. *)

module Catalog = Oodb_catalog.Catalog
module Config = Oodb_cost.Config
module Json = Oodb_util.Json

type obs = { o_value : float; o_count : int; o_qerror : float }
(** One merged observation: the EMA value, how many raw observations
    went into it, and the worst q-error seen for the node that produced
    it. *)

type t

val create : ?dir:string -> Catalog.t -> t
(** A store scoped to [cat]'s current (epoch, digest). With [dir], the
    scope's file is loaded if present; without, the store is purely
    in-memory (and {!save} is a no-op). *)

val env_var : string
(** ["OODB_FEEDBACK_DIR"]. *)

val of_env : Catalog.t -> t option
(** [create ~dir] from [$OODB_FEEDBACK_DIR] when set and non-empty. *)

val file : t -> string option
(** The scope's on-disk path, when the store has a directory. *)

val save : t -> unit
(** Write atomically (temp file + rename), creating the directory if
    needed. No-op for in-memory stores. *)

val reset : t -> unit
(** Drop all in-memory observations (the file, if any, is untouched
    until the next {!save}). *)

val clear_dir : string -> int
(** Remove every [fb-*.json] under a directory; returns how many. *)

val size : t -> int
(** Distinct keys across all three tables. *)

val observe_sel : t -> string -> value:float -> qerror:float -> unit
(** Merge an observed selectivity (clamped into [[1e-6, 1]]). *)

val observe_card : t -> string -> value:float -> qerror:float -> unit

val observe_fanout : t -> string -> value:float -> qerror:float -> unit

val hook : t -> Config.feedback
(** Snapshot the store's current values into estimator-consultable
    tables. Later observations do {e not} flow into an already-built
    hook; build a fresh one per optimization pass. *)

val install : t -> Open_oodb.Options.t -> Open_oodb.Options.t
(** [Options.with_feedback (hook t)]. *)

val harvest :
  ?registry:Metrics.t -> t -> Config.t -> Catalog.t -> Profile.node -> int
(** Walk a profiled plan bottom-up, recording observed statistics at
    every harvestable node: [File_scan] (collection cardinality),
    single-atom [Filter]/[Hash_join]/[Pointer_join] and residual-free
    [Merge_join] (selectivity from actual in/out rows), [Alg_unnest]
    (fanout). [config] is only used to rebuild binding environments for
    key canonicalization. Returns the number of observations recorded;
    each also lands in [registry]'s ["feedback/qerror"] histogram. *)

val plan_quality : Profile.node -> float * float
(** [(max, mean)] q-error over all nodes of a profile tree. *)

val contents : t -> (string * string * obs) list
(** All observations as [(table, key, obs)] rows, [table] one of
    ["sel"], ["card"], ["fanout"]; sorted for stable display. *)

val to_json : t -> Json.t
