include Oodb_util.Span
