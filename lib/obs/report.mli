(** Machine-readable observability reports: one record per query tying
    together the optimizer trace, the chosen plan, and the measured
    execution profile — the payload behind [oodb stats] and the
    benchmark's [BENCH_results.json]. *)

module Json = Oodb_util.Json
module Engine = Open_oodb.Model.Engine

type t = {
  name : string;
  outcome : Open_oodb.Optimizer.outcome;
  trace : Trace.t;
  rows : Oodb_exec.Executor.row list;
  report : Oodb_exec.Executor.io_report;
  profile : Profile.node option;  (** [None] when the optimizer found no plan *)
}

val collect :
  ?options:Open_oodb.Options.t ->
  ?registry:Metrics.t ->
  ?trace_capacity:int ->
  ?spans:Span.t ->
  Oodb_exec.Db.t ->
  name:string ->
  Oodb_algebra.Logical.t ->
  t
(** Optimize [query] with a fresh {!Trace} recorder attached, then
    execute the winning plan under the {!Profile} counting iterators.
    When [registry] is given, headline figures (groups, candidates,
    optimization/simulated seconds, rows, I/O) are also accumulated
    there under ["<name>/..."] metric names, so a caller sweeping a
    workload gets a cross-query {!Metrics.snapshot} for free; latency
    distributions land in the cross-query ["opt/seconds"],
    ["exec/batch_rows"] and per-operator
    ["exec/op/<op>/exclusive_seconds"] histograms. [spans] wraps the
    optimize and execute phases (category ["pipeline"]) around the
    engine's and profiler's finer spans. *)

val io_report_json : Oodb_exec.Executor.io_report -> Json.t

val stats_json : Engine.stats -> Json.t

val to_json : t -> Json.t
(** [{"name": .., "optimizer": {"stats", "opt_seconds", "cost", "plan",
    "trace"}, "execution": {"io", "profile"}}]. *)

val workload_json : ?registry:Metrics.t -> ?extra:(string * Json.t) list -> t list -> Json.t
(** Wrap per-query records with a schema version and, when a [registry]
    is given, its metrics snapshot:
    [{"schema_version": 1, "queries": [..], "metrics": ..}]. [extra]
    fields are appended at the top level — e.g. a ["plan_cache"] section
    from the plan-cache layer, which sits above this library and so
    serializes its own stats. *)
