(** Hierarchical pipeline spans, re-exported from {!Oodb_util.Span}.

    The implementation lives in [lib/util] so the layers below the
    observability library (the Volcano engine, the optimizer, the plan
    cache, the executor) can accept a [Span.t option] without a
    dependency cycle; this alias makes the observability surface
    complete — [Oodb_obs] is the one library an operator-facing tool
    needs. Collect with {!with_span} threaded through parse → optimize →
    cache → execute, export with {!to_chrome}, load in ui.perfetto.dev
    ([oodb run --trace-out FILE]). *)

include module type of struct
  include Oodb_util.Span
end
