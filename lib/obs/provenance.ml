module Json = Oodb_util.Json
module Engine = Open_oodb.Model.Engine
module Model = Open_oodb.Model
module Optimizer = Open_oodb.Optimizer
module Options = Open_oodb.Options
module Physical = Open_oodb.Physical
module Physprop = Open_oodb.Physprop
module Catalog = Oodb_catalog.Catalog
module Cost = Oodb_cost.Cost
module Vec = Oodb_util.Vec

let available (o : Optimizer.outcome) = Engine.provenance_on o.Optimizer.memo

let disabled_msg =
  "provenance was not recorded (Options.provenance is off); re-run with provenance \
   enabled"

(* ------------------------------------------------------------------ *)
(* Winner lineage: the --why walk                                      *)

type why_step = {
  ws_alg : Physical.t;
  ws_rule : string;  (* implementation rule / enforcer that built the node *)
  ws_group : Engine.group;
  ws_cost : Cost.t;  (* subtree total *)
  ws_local : Cost.t;  (* the node's own (algorithm-local) cost *)
  ws_trules : string list;  (* logical derivation chain, oldest firing first *)
  ws_children : why_step list;
}

let rec winner_walk ctx g ~required =
  match Engine.winner_of ctx g ~required with
  | None -> None
  | Some cr ->
    let children =
      List.filter_map
        (fun (cg, cp) -> winner_walk ctx cg ~required:cp)
        cr.Engine.cr_inputs
    in
    let child_cost = Cost.sum (List.map (fun c -> c.ws_cost) children) in
    let total =
      match cr.Engine.cr_disposition with
      | Engine.Kept c -> c
      | _ -> Cost.add cr.Engine.cr_local_cost child_cost
    in
    Some
      { ws_alg = cr.Engine.cr_alg;
        ws_rule = cr.Engine.cr_rule;
        ws_group = cr.Engine.cr_group;
        ws_cost = total;
        ws_local = cr.Engine.cr_local_cost;
        ws_trules =
          (match cr.Engine.cr_mexpr with
          | None -> []
          | Some mid -> Engine.rule_chain ctx mid);
        ws_children = children }

let why (o : Optimizer.outcome) ~required =
  if not (available o) then Error disabled_msg
  else
    match winner_walk o.Optimizer.memo o.Optimizer.root ~required with
    | Some s -> Ok s
    | None -> Error "no winner recorded for the root goal (no plan found?)"

(* Transformation rules in the winner's transitive derivation: the union
   of every winning node's logical rule chain, deduped and sorted. The
   lineage-replay invariant re-optimizes with only these trules enabled
   and expects a bit-identical winner cost. *)
let replay_rules (o : Optimizer.outcome) ~required =
  match why o ~required with
  | Error _ -> []
  | Ok step ->
    let rec collect acc s =
      let acc = List.fold_left (fun acc r -> r :: acc) acc s.ws_trules in
      List.fold_left collect acc s.ws_children
    in
    List.sort_uniq String.compare (collect [] step)

(* Per-node estimate annotations, aligned with the why tree (the winner
   walk reproduces the chosen plan's shape). *)
let est_annotations ?config cat (o : Optimizer.outcome) =
  match o.Optimizer.plan with
  | None -> None
  | Some plan -> Some (Cardest.plan ?config cat plan)

let pp_why ?est ppf step =
  (* Bottom-up: post-order numbering, leaves first, so each step's
     inputs are already on the page when the step is printed. *)
  let n = ref 0 in
  let buf = Buffer.create 256 in
  let bppf = Format.formatter_of_buffer buf in
  let rec walk (est : Cardest.t option) s =
    let child_ests =
      match est with
      | Some e when List.length e.Cardest.children = List.length s.ws_children ->
        List.map Option.some e.Cardest.children
      | _ -> List.map (fun _ -> None) s.ws_children
    in
    let child_nums = List.map2 walk child_ests s.ws_children in
    incr n;
    let me = !n in
    Format.fprintf bppf "step %d: %s@." me (Physical.to_string s.ws_alg);
    Format.fprintf bppf "  via %s on group %d" s.ws_rule s.ws_group;
    (match child_nums with
    | [] -> ()
    | nums ->
      Format.fprintf bppf " over %s"
        (String.concat ", " (List.map (fun c -> Printf.sprintf "step %d" c) nums)));
    Format.fprintf bppf "@.";
    (match est with
    | Some e ->
      Format.fprintf bppf "  est rows %.0f (%s)@." e.Cardest.card
        (if e.Cardest.fed then "feedback" else "model")
    | None -> ());
    if s.ws_trules <> [] then
      Format.fprintf bppf "  derived by: %s@." (String.concat " -> " s.ws_trules);
    Format.fprintf bppf "  cost %a (node %a)@." Cost.pp s.ws_cost Cost.pp s.ws_local;
    me
  in
  ignore (walk est step);
  Format.pp_print_flush bppf ();
  Format.fprintf ppf "%s@.winner cost: %a@." (Buffer.contents buf) Cost.pp step.ws_cost

let cost_json (c : Cost.t) =
  Json.Obj
    [ ("io", Json.float c.Cost.io);
      ("cpu", Json.float c.Cost.cpu);
      ("total", Json.float (Cost.total c)) ]

let rec why_json ?est step =
  let child_ests =
    match est with
    | Some (e : Cardest.t)
      when List.length e.Cardest.children = List.length step.ws_children ->
      List.map Option.some e.Cardest.children
    | _ -> List.map (fun _ -> None) step.ws_children
  in
  Json.Obj
    ([ ("alg", Json.String (Physical.to_string step.ws_alg));
       ("rule", Json.String step.ws_rule);
       ("group", Json.Int step.ws_group);
       ("cost", cost_json step.ws_cost);
       ("local_cost", cost_json step.ws_local);
       ("trules", Json.List (List.map (fun r -> Json.String r) step.ws_trules));
       ( "children",
         Json.List (List.map2 (fun e c -> why_json ?est:e c) child_ests step.ws_children)
       ) ]
    @
    match est with
    | None -> []
    | Some e ->
      [ ("est_rows", Json.float e.Cardest.card);
        ("est_source", Json.String (if e.Cardest.fed then "feedback" else "model")) ])

(* ------------------------------------------------------------------ *)
(* Why-not: counterfactual classification                              *)

type shape =
  | Force_index of string  (* index name; "" matches any index scan *)
  | Force_join of string  (* "hash" | "merge" | "pointer" *)
  | Force_scan of string  (* collection name; "" matches any file scan *)
  | Force_alg of string  (* any algorithm by label, e.g. "sort" *)

let alg_label = function
  | Physical.File_scan _ -> "file-scan"
  | Physical.Index_scan _ -> "index-scan"
  | Physical.Filter _ -> "filter"
  | Physical.Hash_join _ -> "hash-join"
  | Physical.Merge_join _ -> "merge-join"
  | Physical.Pointer_join _ -> "pointer-join"
  | Physical.Assembly _ -> "assembly"
  | Physical.Alg_project _ -> "project"
  | Physical.Alg_unnest _ -> "unnest"
  | Physical.Hash_union -> "union"
  | Physical.Hash_intersect -> "intersect"
  | Physical.Hash_difference -> "difference"
  | Physical.Sort _ -> "sort"

let shape_to_string = function
  | Force_index "" -> "index-scan"
  | Force_index name -> Printf.sprintf "index-scan(%s)" name
  | Force_join kind -> kind ^ "-join"
  | Force_scan "" -> "file-scan"
  | Force_scan coll -> Printf.sprintf "file-scan(%s)" coll
  | Force_alg label -> label

let shape_matches shape (alg : Physical.t) =
  match shape, alg with
  | Force_index name, Physical.Index_scan { index; _ } ->
    name = "" || String.equal index name
  | Force_join "hash", Physical.Hash_join _ -> true
  | Force_join "merge", Physical.Merge_join _ -> true
  | Force_join "pointer", Physical.Pointer_join _ -> true
  | Force_scan coll, Physical.File_scan { coll = c; _ } ->
    coll = "" || String.equal c coll
  | Force_alg label, alg -> String.equal (alg_label alg) label
  | _ -> false

(* The implementation rules (or enforcers) that could produce the shape —
   what a never-derived verdict names as disabled or missing. *)
let producing_rules = function
  | Force_index _ -> [ "collapse-index-scan" ]
  | Force_join "hash" -> [ "hash-join" ]
  | Force_join "merge" -> [ "merge-join" ]
  | Force_join "pointer" -> [ "pointer-join" ]
  | Force_join _ -> []
  | Force_scan _ -> [ "file-scan" ]
  | Force_alg "file-scan" -> [ "file-scan" ]
  | Force_alg "index-scan" -> [ "collapse-index-scan" ]
  | Force_alg "filter" -> [ "filter" ]
  | Force_alg "hash-join" -> [ "hash-join" ]
  | Force_alg "merge-join" -> [ "merge-join" ]
  | Force_alg "pointer-join" -> [ "pointer-join" ]
  | Force_alg "assembly" -> [ "mat-assembly"; "warm-assembly"; "assembly-enforcer" ]
  | Force_alg "project" -> [ "alg-project" ]
  | Force_alg "unnest" -> [ "alg-unnest" ]
  | Force_alg ("union" | "intersect" | "difference") -> [ "hash-setop" ]
  | Force_alg "sort" -> [ "sort-enforcer" ]
  | Force_alg _ -> []

(* A shape to ask about for an alternative plan's distinguishing
   operator — the effectiveness report uses this when a sampled plan
   beats the chosen one. *)
let shape_of_alg = function
  | Physical.Index_scan { index; _ } -> Force_index index
  | Physical.Hash_join _ -> Force_join "hash"
  | Physical.Merge_join _ -> Force_join "merge"
  | Physical.Pointer_join _ -> Force_join "pointer"
  | Physical.File_scan { coll; _ } -> Force_scan coll
  | alg -> Force_alg (alg_label alg)

type verdict =
  | Chosen of { cost : Cost.t }
  | Never_derived of { rules : string list; disabled : string list }
  | Derived_but_lost of {
      group : Engine.group;
      required : Physprop.t;
      alt_rule : string;
      alt_alg : Physical.t;
      alt_cost : Cost.t;  (* full plan cost of the losing alternative at its goal *)
      winner_rule : string;
      winner_alg : Physical.t;
      winner_cost : Cost.t;
      gap : Cost.delta;
    }
  | Pruned_away of {
      group : Engine.group;
      rule : string;
      alg : Physical.t;
      local_cost : Cost.t;
      limit : Cost.t;  (* the bound in force at the decision point *)
      margin : Cost.t;  (* amount over the bound (before slack) *)
      mode : string;  (* "candidate" | "subgoal" | "abandoned" *)
    }

type classification = { cl_shape : shape; cl_verdict : verdict; cl_dropped : int }

let rec plan_algs (p : Engine.plan) =
  p.Engine.alg :: List.concat_map plan_algs p.Engine.children

let kept_cost (cr : Engine.cand_record) =
  match cr.Engine.cr_disposition with Engine.Kept c -> Some c | _ -> None

(* The log-evidence pass: classify from this outcome's candidate log
   alone. A completed (Kept) match that lost its own goal is the direct
   derived-but-lost case; a match that *won* its goal died further up,
   so the walk follows its consumers (candidates whose inputs name the
   match's goal) until it finds where that subtree lost or was pruned. *)
let classify_verdict options (o : Optimizer.outcome) shape =
  let ctx = o.Optimizer.memo in
  let chosen =
    match o.Optimizer.plan with
    | Some p when List.exists (shape_matches shape) (plan_algs p) ->
      Some (Chosen { cost = p.Engine.cost })
    | _ -> None
  in
  match chosen with
  | Some v -> v
  | None -> (
    let records = Engine.cand_records ctx in
    let matching = List.filter (fun cr -> shape_matches shape cr.Engine.cr_alg) records in
    match matching with
    | [] ->
      let rules = producing_rules shape in
      Never_derived
        { rules;
          disabled = List.filter (fun r -> List.mem r options.Options.disabled) rules }
    | _ -> (
      let lost_of (cr : Engine.cand_record) =
        match kept_cost cr with
        | None -> None
        | Some alt_cost -> (
          match
            Engine.winner_of ctx cr.Engine.cr_group ~required:cr.Engine.cr_required
          with
          | Some w when w.Engine.cr_index <> cr.Engine.cr_index -> (
            match kept_cost w with
            | Some wcost -> Some (cr, alt_cost, w, wcost)
            | None -> None)
          | _ -> None)
      in
      let won (cr : Engine.cand_record) =
        kept_cost cr <> None
        &&
        match
          Engine.winner_of ctx cr.Engine.cr_group ~required:cr.Engine.cr_required
        with
        | Some w -> w.Engine.cr_index = cr.Engine.cr_index
        | None -> false
      in
      let pruned_of (cr : Engine.cand_record) =
        match cr.Engine.cr_disposition with
        | Engine.Pruned_candidate { limit; margin } -> Some (cr, limit, margin, "candidate")
        | Engine.Pruned_subgoal { limit; margin; _ } -> Some (cr, limit, margin, "subgoal")
        | Engine.Kept _ | Engine.Abandoned -> None
      in
      (* Upward walk from goals the shape *won*: the shape itself
         survived its own competition, so its death is an ancestor's —
         a consumer that carried this subtree and lost or was pruned. *)
      let walk_lost, walk_pruned =
        let visited = Hashtbl.create 32 in
        let lost = ref [] in
        let pruned = ref [] in
        let rec walk (cr : Engine.cand_record) =
          if not (Hashtbl.mem visited cr.Engine.cr_index) then begin
            Hashtbl.add visited cr.Engine.cr_index ();
            let consumers =
              List.filter
                (fun c ->
                  List.exists
                    (fun (g, req) ->
                      g = cr.Engine.cr_group && req = cr.Engine.cr_required)
                    c.Engine.cr_inputs)
                records
            in
            List.iter
              (fun c ->
                match lost_of c with
                | Some l -> lost := l :: !lost
                | None ->
                  if won c then walk c
                  else
                    match pruned_of c with
                    | Some p -> pruned := p :: !pruned
                    | None -> ())
              consumers
          end
        in
        List.iter (fun cr -> if won cr then walk cr) matching;
        (!lost, !pruned)
      in
      let direct_lost = List.filter_map lost_of matching in
      let pick_lost = function
        | [] -> None
        | hd :: tl ->
          (* closest call: smallest total-cost gap to its goal winner *)
          let cr, alt_cost, w, wcost =
            List.fold_left
              (fun (((_, ac, _, wc) : _ * Cost.t * _ * Cost.t) as best)
                   ((_, ac', _, wc') as cand) ->
                if
                  Float.compare
                    (Cost.total ac' -. Cost.total wc')
                    (Cost.total ac -. Cost.total wc)
                  < 0
                then cand
                else best)
              hd tl
          in
          Some
            (Derived_but_lost
               { group = cr.Engine.cr_group;
                 required = cr.Engine.cr_required;
                 alt_rule = cr.Engine.cr_rule;
                 alt_alg = cr.Engine.cr_alg;
                 alt_cost;
                 winner_rule = w.Engine.cr_rule;
                 winner_alg = w.Engine.cr_alg;
                 winner_cost = wcost;
                 gap = Cost.delta ~winner:wcost ~loser:alt_cost })
      in
      match pick_lost direct_lost with
      | Some v -> v
      | None -> (
        match pick_lost walk_lost with
        | Some v -> v
        | None -> (
          (* Never completed on any surviving path: replay the tightest
             prune, whether it hit the shape itself or the subtree
             carrying it. *)
          match List.filter_map pruned_of matching @ walk_pruned with
          | _ :: _ as pruned ->
            let cr, limit, margin, mode =
              List.fold_left
                (fun ((_, _, m, _) as best) ((_, _, m', _) as cand) ->
                  if Cost.compare m' m < 0 then cand else best)
                (List.hd pruned) (List.tl pruned)
            in
            Pruned_away
              { group = cr.Engine.cr_group;
                rule = cr.Engine.cr_rule;
                alg = cr.Engine.cr_alg;
                local_cost = cr.Engine.cr_local_cost;
                limit;
                margin;
                mode }
          | [] ->
            let cr = List.hd matching in
            Pruned_away
              { group = cr.Engine.cr_group;
                rule = cr.Engine.cr_rule;
                alg = cr.Engine.cr_alg;
                local_cost = cr.Engine.cr_local_cost;
                limit = Cost.infinite;
                margin = Cost.zero;
                mode = "abandoned" }))))

let classify ?(options = Options.default) ?replay (o : Optimizer.outcome) shape =
  if not (available o) then Error disabled_msg
  else begin
    let verdict = classify_verdict options o shape in
    let dropped = Engine.provenance_dropped o.Optimizer.memo in
    (* Escalation: under exhaustive branch-and-bound, a prune (or an
       unexplored subgoal that makes the shape look never-derived) is
       just a short-circuited cost comparison — the bound is admissible,
       so re-running without pruning completes every alternative and
       turns the verdict into a true derived-but-lost gap. Guided-mode
       refusals are a real death mode and are never second-guessed. *)
    let verdict, dropped =
      match verdict, replay with
      | (Pruned_away _ | Never_derived { disabled = []; rules = _ :: _ }), Some replay
        when options.Options.pruning && not options.Options.guided -> (
        let options' = { options with Options.pruning = false } in
        let o' = replay options' in
        if not (available o') then (verdict, dropped)
        else
          match classify_verdict options' o' shape with
          | Derived_but_lost _ as v' ->
            (v', max dropped (Engine.provenance_dropped o'.Optimizer.memo))
          | _ -> (verdict, dropped))
      | _ -> (verdict, dropped)
    in
    Ok { cl_shape = shape; cl_verdict = verdict; cl_dropped = dropped }
  end

let verdict_label = function
  | Chosen _ -> "chosen"
  | Never_derived _ -> "never-derived"
  | Derived_but_lost _ -> "derived-but-lost"
  | Pruned_away _ -> "pruned"

let pp_classification ppf c =
  let shape = shape_to_string c.cl_shape in
  (match c.cl_verdict with
  | Chosen { cost } ->
    Format.fprintf ppf "%s: chosen — the winning plan already uses it (cost %a)@." shape
      Cost.pp cost
  | Never_derived { rules; disabled } ->
    Format.fprintf ppf "%s: never derived — no candidate with this shape was ever costed.@."
      shape;
    (match disabled with
    | _ :: _ ->
      Format.fprintf ppf "  producing rule%s disabled: %s@."
        (if List.length disabled > 1 then "s" else "")
        (String.concat ", " disabled)
    | [] ->
      (match rules with
      | [] -> Format.fprintf ppf "  no known rule produces this shape@."
      | rs ->
        Format.fprintf ppf
          "  producing rule%s (%s) enabled but never fired for this query — the shape \
           does not apply@."
          (if List.length rs > 1 then "s" else "")
          (String.concat ", " rs)))
  | Derived_but_lost d ->
    Format.fprintf ppf "%s: derived but lost on cost at group %d.@." shape d.group;
    Format.fprintf ppf "  alternative%s: %s via %s, cost %a@."
      (if shape_matches c.cl_shape d.alt_alg then ""
       else " (subtree carrying the shape)")
      (Physical.to_string d.alt_alg) d.alt_rule Cost.pp d.alt_cost;
    Format.fprintf ppf "  winner:      %s via %s, cost %a@."
      (Physical.to_string d.winner_alg) d.winner_rule Cost.pp d.winner_cost;
    Format.fprintf ppf "  gap:         %a@." Cost.pp_delta d.gap
  | Pruned_away p ->
    (match p.mode with
    | "abandoned" ->
      Format.fprintf ppf
        "%s: abandoned — derived (via %s at group %d, local cost %a) but never \
         completed: a child goal found no plan within the bound@."
        shape p.rule p.group Cost.pp p.local_cost
    | mode ->
      Format.fprintf ppf "%s: pruned (%s) by the branch-and-bound limit at group %d.@."
        shape mode p.group;
      Format.fprintf ppf "  candidate: %s via %s, local cost %a@."
        (Physical.to_string p.alg) p.rule Cost.pp p.local_cost;
      Format.fprintf ppf "  bound:     %a (slack %a)@." Cost.pp p.limit Cost.pp Cost.slack;
      Format.fprintf ppf "  margin:    %a over the bound@." Cost.pp p.margin));
  if c.cl_dropped > 0 then
    Format.fprintf ppf
      "WARNING: %d candidate-log rows were dropped at the provenance cap; this \
       classification may be incomplete@."
      c.cl_dropped

let classification_json c =
  let verdict_fields =
    match c.cl_verdict with
    | Chosen { cost } -> [ ("cost", cost_json cost) ]
    | Never_derived { rules; disabled } ->
      [ ("rules", Json.List (List.map (fun r -> Json.String r) rules));
        ("disabled", Json.List (List.map (fun r -> Json.String r) disabled)) ]
    | Derived_but_lost d ->
      [ ("group", Json.Int d.group);
        ("required", Json.String (Format.asprintf "%a" Physprop.pp d.required));
        ("alt_rule", Json.String d.alt_rule);
        ("alt_alg", Json.String (Physical.to_string d.alt_alg));
        ("alt_cost", cost_json d.alt_cost);
        ("winner_rule", Json.String d.winner_rule);
        ("winner_alg", Json.String (Physical.to_string d.winner_alg));
        ("winner_cost", cost_json d.winner_cost);
        ( "gap",
          Json.Obj
            [ ("io", Json.float d.gap.Cost.d_io);
              ("cpu", Json.float d.gap.Cost.d_cpu);
              ("total", Json.float d.gap.Cost.d_total);
              ("ratio", Json.float d.gap.Cost.d_ratio) ] ) ]
    | Pruned_away p ->
      [ ("group", Json.Int p.group);
        ("rule", Json.String p.rule);
        ("alg", Json.String (Physical.to_string p.alg));
        ("local_cost", cost_json p.local_cost);
        ("limit", cost_json p.limit);
        ("margin", cost_json p.margin);
        ("slack", cost_json Cost.slack);
        ("mode", Json.String p.mode) ]
  in
  Json.Obj
    [ ("shape", Json.String (shape_to_string c.cl_shape));
      ("verdict", Json.String (verdict_label c.cl_verdict));
      ("detail", Json.Obj verdict_fields);
      ("prov_dropped", Json.Int c.cl_dropped) ]

(* ------------------------------------------------------------------ *)
(* Memo export                                                         *)

let memo_schema_version = 1

let winner_path ctx root ~required =
  (* candidate-log indexes along the winner's derivation walk, root
     first; the walk is tree-shaped so no cycle guard is needed *)
  let acc = ref [] in
  let rec go g required =
    match Engine.winner_of ctx g ~required with
    | None -> ()
    | Some cr ->
      acc := cr.Engine.cr_index :: !acc;
      List.iter (fun (cg, cp) -> go cg cp) cr.Engine.cr_inputs
  in
  go root required;
  List.rev !acc

let disposition_json = function
  | Engine.Kept c -> Json.Obj [ ("kept", cost_json c) ]
  | Engine.Pruned_candidate { limit; margin } ->
    Json.Obj
      [ ("pruned_candidate", Json.Obj [ ("limit", cost_json limit); ("margin", cost_json margin) ])
      ]
  | Engine.Pruned_subgoal { subgoal; subgoal_required; limit; margin } ->
    Json.Obj
      [ ( "pruned_subgoal",
          Json.Obj
            [ ("subgoal", Json.Int subgoal);
              ("required", Json.String (Format.asprintf "%a" Physprop.pp subgoal_required));
              ("limit", cost_json limit);
              ("margin", cost_json margin) ] ) ]
  | Engine.Abandoned -> Json.String "abandoned"

let mexpr_id_json mid = Json.String (Format.asprintf "%a" Volcano.Id.pp mid)

let lineage_json (l : Engine.lineage) =
  Json.Obj
    [ ("id", mexpr_id_json l.Engine.lin_id);
      ("group", Json.Int l.Engine.lin_group);
      ("op", Json.String (Format.asprintf "%a" Model.M.Op.pp l.Engine.lin_op));
      ("inputs", Json.List (List.map (fun g -> Json.Int g) l.Engine.lin_inputs));
      ( "rule",
        match l.Engine.lin_rule with None -> Json.Null | Some r -> Json.String r );
      ( "parent",
        match l.Engine.lin_parent with None -> Json.Null | Some p -> mexpr_id_json p );
      ("seq", Json.Int l.Engine.lin_seq);
      ("alive", Json.Bool l.Engine.lin_alive) ]

let cand_json (cr : Engine.cand_record) =
  Json.Obj
    [ ("index", Json.Int cr.Engine.cr_index);
      ("seq", Json.Int cr.Engine.cr_seq);
      ("group", Json.Int cr.Engine.cr_group);
      ("required", Json.String (Format.asprintf "%a" Physprop.pp cr.Engine.cr_required));
      ("rule", Json.String cr.Engine.cr_rule);
      ( "mexpr",
        match cr.Engine.cr_mexpr with None -> Json.Null | Some m -> mexpr_id_json m );
      ("alg", Json.String (Physical.to_string cr.Engine.cr_alg));
      ("local_cost", cost_json cr.Engine.cr_local_cost);
      ( "inputs",
        Json.List
          (List.map
             (fun (g, p) ->
               Json.Obj
                 [ ("group", Json.Int g);
                   ("required", Json.String (Format.asprintf "%a" Physprop.pp p)) ])
             cr.Engine.cr_inputs) );
      ("disposition", disposition_json cr.Engine.cr_disposition) ]

let memo_json (o : Optimizer.outcome) ~required =
  let ctx = o.Optimizer.memo in
  let groups =
    List.map
      (fun g ->
        Json.Obj
          [ ("id", Json.Int g);
            ("lprop", Json.String (Format.asprintf "%a" Oodb_cost.Lprops.pp
                                     (Engine.group_lprop ctx g))) ])
      (Engine.groups ctx)
  in
  Json.Obj
    [ ("schema_version", Json.Int memo_schema_version);
      ("root", Json.Int o.Optimizer.root);
      ("required", Json.String (Format.asprintf "%a" Physprop.pp required));
      ("provenance", Json.Bool (available o));
      ("prov_dropped", Json.Int (Engine.provenance_dropped ctx));
      ("groups", Json.List groups);
      ("mexprs", Json.List (List.map lineage_json (Engine.lineages ctx)));
      ("candidates", Json.List (List.map cand_json (Engine.cand_records ctx)));
      ( "winner_path",
        Json.List
          (List.map
             (fun i -> Json.Int i)
             (winner_path ctx o.Optimizer.root ~required)) ) ]

(* Graphviz DOT rendering of the same DAG: groups as boxes, live mexprs
   as ellipses, input edges mexpr->group, lineage edges parent->child
   (dashed, labeled with the producing rule). The winner's mexprs and
   groups are bold red; mexprs whose every candidate-log row was pruned
   (and none kept) are dashed. *)
let dot_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let truncate n s = if String.length s <= n then s else String.sub s 0 (n - 1) ^ "…"

let memo_dot (o : Optimizer.outcome) ~required =
  let ctx = o.Optimizer.memo in
  let buf = Buffer.create 4096 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let cands = Engine.cand_records ctx in
  let path = winner_path ctx o.Optimizer.root ~required in
  let winner_groups = Hashtbl.create 16 and winner_mexprs = Hashtbl.create 16 in
  List.iter
    (fun i ->
      match Engine.cand_record ctx i with
      | None -> ()
      | Some cr ->
        Hashtbl.replace winner_groups cr.Engine.cr_group ();
        (match cr.Engine.cr_mexpr with
        | Some m -> Hashtbl.replace winner_mexprs m ()
        | None -> ()))
    path;
  (* per-mexpr disposition summary: pruned-only mexprs render dashed *)
  let kept = Hashtbl.create 64 and pruned = Hashtbl.create 64 in
  List.iter
    (fun (cr : Engine.cand_record) ->
      match cr.Engine.cr_mexpr with
      | None -> ()
      | Some m -> (
        match cr.Engine.cr_disposition with
        | Engine.Kept _ -> Hashtbl.replace kept m ()
        | Engine.Pruned_candidate _ | Engine.Pruned_subgoal _ ->
          Hashtbl.replace pruned m ()
        | Engine.Abandoned -> ()))
    cands;
  pr "digraph memo {\n";
  pr "  rankdir=BT;\n";
  pr "  node [fontsize=10];\n";
  List.iter
    (fun g ->
      let win = Hashtbl.mem winner_groups g in
      pr "  g%d [shape=box label=\"g%d\"%s];\n" g g
        (if win then " color=red penwidth=2" else ""))
    (Engine.groups ctx);
  List.iter
    (fun (l : Engine.lineage) ->
      if l.Engine.lin_alive then begin
        let idx = Volcano.Id.to_idx l.Engine.lin_id in
        let label =
          dot_escape
            (truncate 48 (Format.asprintf "m%d %a" idx Model.M.Op.pp l.Engine.lin_op))
        in
        let style =
          if Hashtbl.mem winner_mexprs l.Engine.lin_id then " color=red penwidth=2"
          else if
            Hashtbl.mem pruned l.Engine.lin_id && not (Hashtbl.mem kept l.Engine.lin_id)
          then " style=dashed"
          else ""
        in
        pr "  m%d [shape=ellipse label=\"%s\"%s];\n" idx label style;
        pr "  m%d -> g%d [arrowhead=none];\n" idx l.Engine.lin_group;
        List.iter (fun g -> pr "  g%d -> m%d [style=dotted];\n" g idx) l.Engine.lin_inputs;
        match l.Engine.lin_parent, l.Engine.lin_rule with
        | Some parent, Some rule ->
          pr "  m%d -> m%d [style=dashed color=blue label=\"%s\"];\n"
            (Volcano.Id.to_idx parent) idx (dot_escape rule)
        | _ -> ()
      end)
    (Engine.lineages ctx);
  pr "}\n";
  Buffer.contents buf
