(** Benchmark history records and the noise-aware regression gate.

    The benchmark appends one schema-versioned record per run to a JSONL
    file ([BENCH_history.jsonl]): git SHA, date, per-query min/median
    wall times, memo group counts, rules fired, and the plan-cache hit
    rate. [oodb bench-compare] then diffs two records and exits nonzero
    on a regression, so CI can gate on measured performance rather than
    on eyeballs.

    The gate is deliberately noise-aware: it compares the {e min} over
    trials (the statistic least contaminated by scheduler jitter), and a
    metric only counts as regressed when it blows up {e relatively}
    (ratio above [1 + threshold]) {e and} by an absolute floor
    ([min_seconds]) — so sub-millisecond wobble never fails a build. *)

module Json = Oodb_util.Json

val schema_version : int
(** Currently 4 (v2 added [mean_qerror]; v3 added [search_scale]; v4
    added [provenance_overhead_pct] and [whynot_smoke]). {!of_json}
    accepts any version from 1 up to the current one — older records
    simply read the fields they predate as absent — and rejects records
    from the future. *)

type query_rec = {
  q_name : string;
  q_opt_min : float;  (** min optimization seconds over trials *)
  q_opt_median : float;
  q_exec_min : float;  (** min execution seconds over trials *)
  q_exec_median : float;
  q_rows : int;  (** result rows — a safety check that runs are comparable *)
  q_groups : int;  (** memo groups of the (cold) search *)
  q_rules_fired : int;
  q_mean_qerror : float;
      (** mean per-node q-error of a profiled execution; [nan] when not
          recorded (v1 baselines, unprofiled runs) — encoded as [null],
          and excluded from comparison when either side lacks it *)
}

type scale_rec = {
  s_width : int;  (** join-chain width (number of joined collections) *)
  s_opt_seconds : float;  (** one cold guided-search optimization *)
  s_exhaustive_seconds : float;
      (** one cold exhaustive optimization; [nan] (encoded [null]) when
          the width was over the exhaustive budget and skipped *)
  s_groups : int;
  s_mexprs : int;
  s_candidates : int;  (** physical plans costed (the paper's "plans") *)
  s_pruned : int;  (** candidates + subgoals refused by bound propagation *)
}
(** One row of the wide-join scaling sweep: how optimization time and
    memo size grow with join width under the guided search. *)

type record = {
  r_git_sha : string;
  r_date : string;  (** ISO 8601 *)
  r_batch_size : int;
  r_cache_hit_rate : float;  (** served / lookups over the run's cache phase *)
  r_queries : query_rec list;
  r_search_scale : scale_rec list;  (** [[]] on v1/v2 records *)
  r_provenance_overhead_pct : float;
      (** optimizer wall-time overhead of provenance recording on the
          width-8 chain join, in percent (min over trials, on vs off);
          [nan] (encoded [null]) on v1–v3 records and unmeasured runs.
          Advisory: the bench warns past 5% but never fails on it. *)
  r_whynot_smoke : (string * float) list;
      (** wall seconds of representative why-not classifications
          (optimize + classify), by scenario name; [[]] on v1–v3
          records *)
}

(** {1 Serialization} *)

val to_json : record -> Json.t

val scale_json : scale_rec -> Json.t
(** One [search_scale] row, as embedded in {!to_json} — also reusable by
    benchmark artifacts that carry the sweep outside a history record. *)

val of_json : Json.t -> (record, string) result
(** Validates the schema version, every field's presence and type, and
    that [queries] is non-empty. *)

val of_line : string -> (record, string) result

val append : string -> record -> unit
(** Append one minified-JSON line to the (created-if-missing) file. *)

val load : string -> (record list, string) result
(** Parse a whole JSONL file; blank lines are skipped; the first invalid
    line fails the load with its line number. *)

(** {1 Comparison} *)

type delta = {
  d_query : string;
  d_metric : string;
      (** ["opt_min_seconds"], ["exec_min_seconds"] or ["mean_qerror"] *)
  d_old : float;
  d_new : float;
  d_ratio : float;  (** new / old; [infinity] when old is 0 *)
  d_regressed : bool;
}

type comparison = {
  c_old_sha : string;
  c_new_sha : string;
  c_threshold : float;
  c_min_seconds : float;
  c_deltas : delta list;
  c_missing : string list;  (** queries in old but not new *)
  c_added : string list;  (** queries in new but not old *)
}

val default_threshold : float
(** 0.5 — flag at a 50% slowdown. *)

val default_min_seconds : float
(** 1e-3 — and only if the absolute slowdown exceeds a millisecond. *)

val qerror_floor : float
(** 0.5 — absolute floor, in q units, for the [mean_qerror] delta. *)

val compare_records :
  ?threshold:float ->
  ?min_seconds:float ->
  old_rec:record ->
  new_rec:record ->
  unit ->
  comparison
(** Match queries by name and diff the min-of-trials wall times. A delta
    regresses iff [new > old * (1 + threshold)] and
    [new - old > min_seconds]. When both records carry a [mean_qerror],
    it is diffed too, with {!qerror_floor} as the absolute floor in
    place of [min_seconds]. [search_scale] rows are matched by width
    (reported as [chainN]) and diff the guided optimization time. *)

val regressed : comparison -> bool

val pp_comparison : Format.formatter -> comparison -> unit
(** Per-delta table with a trailing [RESULT: ok/regression detected]. *)

val comparison_json : comparison -> Json.t
