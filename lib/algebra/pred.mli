(** Predicate language of the optimizer-input algebra.

    Following the paper's separation of a rich user algebra from an
    optimizable algebra "with simple arguments", predicates here are
    conjunctions of comparison atoms whose operands are constants,
    terminal fields of in-scope bindings, or the identity of a binding.
    All path traversal has been made explicit by [Mat]/[Unnest] operators
    during simplification, so an operand like [Field ("c.mayor", "name")]
    refers to the binding introduced by [Mat c.mayor]. *)

type operand =
  | Const of Oodb_storage.Value.t
  | Field of string * string
      (** [(binding, field)] — a terminal (non-path) attribute; the field
          may be reference-valued, in which case it compares by OID. *)
  | Self of string
      (** identity (OID) of a binding's object, as in [e.department == d] *)

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type atom = { cmp : cmp; lhs : operand; rhs : operand }

type t = atom list
(** Conjunction; [[]] is [true]. *)

val atom : cmp -> operand -> operand -> atom

val conjoin : t -> t -> t

val bindings_of_operand : operand -> string list

val bindings : t -> string list
(** Free bindings, no duplicates, in first-occurrence order. *)

val memory_bindings : t -> string list
(** Bindings whose {e object} must be present in memory to evaluate the
    predicate: those read through [Field]. [Self] operands compare
    identities, which every tuple carries without materialization. *)

val bindings_of_atom : atom -> string list

val rename : (string -> string) -> t -> t
(** Apply a binding renaming to every operand. *)

val ref_eq_sides : atom -> (string * string * string) option
(** [Some (src, field, target)] when the atom is an OID equality linking a
    reference field to an object identity, i.e. [src.field == target] or
    the mirrored form — the shape produced by the Mat-to-Join rule. *)

val flip : cmp -> cmp
(** Comparison with operands swapped: [flip Lt = Gt], [flip Eq = Eq]. *)

val equal : t -> t -> bool

val compare : t -> t -> int

val normalize : t -> t
(** Canonical conjunct order: sorted by {!compare_atom} with duplicates
    removed. Transformation rules that recombine predicate lists must
    emit normalized lists so the memo does not intern the same atom set
    under several list orders. *)

val compare_atom : atom -> atom -> int

val pp_operand : Format.formatter -> operand -> unit

val pp_atom : Format.formatter -> atom -> unit

val pp : Format.formatter -> t -> unit
(** Paper style: [c.mayor.name == "Joe" && c.age >= 32]. *)

val to_string : t -> string
