module Value = Oodb_storage.Value

type operand =
  | Const of Value.t
  | Field of string * string
  | Self of string

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type atom = { cmp : cmp; lhs : operand; rhs : operand }

type t = atom list

let atom cmp lhs rhs = { cmp; lhs; rhs }

let conjoin a b = a @ b

let bindings_of_operand = function
  | Const _ -> []
  | Field (b, _) -> [ b ]
  | Self b -> [ b ]

let bindings_of_atom a = bindings_of_operand a.lhs @ bindings_of_operand a.rhs

let dedup bs =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun b ->
      if Hashtbl.mem seen b then false
      else begin
        Hashtbl.add seen b ();
        true
      end)
    bs

let bindings t = dedup (List.concat_map bindings_of_atom t)

let memory_bindings_of_operand = function
  | Const _ | Self _ -> []
  | Field (b, _) -> [ b ]

let memory_bindings t =
  dedup
    (List.concat_map
       (fun a -> memory_bindings_of_operand a.lhs @ memory_bindings_of_operand a.rhs)
       t)

let rename_operand f = function
  | Const _ as c -> c
  | Field (b, fld) -> Field (f b, fld)
  | Self b -> Self (f b)

let rename f t =
  List.map (fun a -> { a with lhs = rename_operand f a.lhs; rhs = rename_operand f a.rhs }) t

let ref_eq_sides a =
  match a.cmp, a.lhs, a.rhs with
  | Eq, Field (src, field), Self target | Eq, Self target, Field (src, field) ->
    Some (src, field, target)
  | _ -> None

let flip = function Eq -> Eq | Ne -> Ne | Lt -> Gt | Le -> Ge | Gt -> Lt | Ge -> Le

let compare_operand a b = Stdlib.compare a b

let compare_atom a b =
  let c = Stdlib.compare a.cmp b.cmp in
  if c <> 0 then c
  else
    let c = compare_operand a.lhs b.lhs in
    if c <> 0 then c else compare_operand a.rhs b.rhs

let compare = List.compare compare_atom

let equal a b = compare a b = 0

(* Canonical conjunct order (sorted, duplicates removed). Rules that
   recombine predicates — pushing selections into joins, redistributing
   atoms across an associativity rewrite — must emit normalized lists:
   the memo interns operators structurally, so the same atom set in two
   list orders would otherwise populate a group with spuriously distinct
   multi-expressions (measured 7x memo blowup on 8-way join chains). *)
let normalize t = List.sort_uniq compare_atom t

let pp_operand ppf = function
  | Const v -> Value.pp ppf v
  | Field (b, f) -> Format.fprintf ppf "%s.%s" b f
  | Self b -> Format.fprintf ppf "%s.self" b

let cmp_name = function
  | Eq -> "=="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let pp_atom ppf a =
  Format.fprintf ppf "%a %s %a" pp_operand a.lhs (cmp_name a.cmp) pp_operand a.rhs

let pp ppf = function
  | [] -> Format.pp_print_string ppf "true"
  | atoms ->
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " && ")
      pp_atom ppf atoms

let to_string t = Format.asprintf "%a" pp t
