(* Typed algebra IR: compositional type inference for the logical object
   algebra. The type of an expression records its binder environment
   (binding name -> class, in scope order), its output columns when the
   root is a projection, and its duplicate semantics. Ordering is a
   physical property (delivered by algorithms, demanded by goals) and is
   deliberately absent from the logical type.

   [infer_op] is the single-step judgment the memo enforces on every
   multi-expression it interns; [infer] is its transitive closure over a
   whole expression tree. Both check path-expression validity (Mat needs
   a single-valued reference, Unnest a set of references), predicate
   binder scoping and attribute existence against the catalog. *)

module Schema = Oodb_catalog.Schema
module Catalog = Oodb_catalog.Catalog
module Value = Oodb_storage.Value

type dup = Set_sem | Bag_sem

type col_ty =
  | Typed of Schema.attr_ty
  | Opaque (* a column whose type has no catalog name, e.g. a null literal *)

type t = {
  ty_bindings : (string * string) list;
  ty_cols : (string * col_ty) list option;
  ty_dup : dup;
}

let dup_name = function Set_sem -> "set" | Bag_sem -> "bag"

(* Transformation rules permute binder order (join-commute most
   obviously), so group-level type equality treats the environment as a
   finite map; column lists are positional and compare as written. *)
let sorted_bindings t =
  List.sort (fun (a, _) (b, _) -> String.compare a b) t.ty_bindings

let equal a b =
  sorted_bindings a = sorted_bindings b && a.ty_cols = b.ty_cols && a.ty_dup = b.ty_dup

let pp_col_ty ppf = function
  | Typed ty -> Schema.pp_attr_ty ppf ty
  | Opaque -> Format.pp_print_string ppf "_"

let pp_sep ppf () = Format.pp_print_string ppf ", "

let pp ppf t =
  (match t.ty_cols with
  | Some cols ->
    Format.fprintf ppf "[%a]"
      (Format.pp_print_list ~pp_sep (fun ppf (n, ct) ->
           Format.fprintf ppf "%s: %a" n pp_col_ty ct))
      cols
  | None ->
    Format.fprintf ppf "{%a}"
      (Format.pp_print_list ~pp_sep (fun ppf (b, c) -> Format.fprintf ppf "%s: %s" b c))
      t.ty_bindings);
  Format.fprintf ppf " %s" (dup_name t.ty_dup)

let to_string t = Format.asprintf "%a" pp t

let fail fmt = Format.kasprintf (fun s -> Error s) fmt

let ( let* ) = Result.bind

let check_operand schema env = function
  | Pred.Const _ -> Ok ()
  | Pred.Self b ->
    if List.mem_assoc b env then Ok () else fail "binding %s not in scope" b
  | Pred.Field (b, f) -> (
    match List.assoc_opt b env with
    | None -> fail "binding %s not in scope" b
    | Some cls -> (
      match Schema.attr_ty schema ~cls f with
      | None -> fail "class %s has no attribute %s" cls f
      | Some _ -> Ok ()))

let check_pred schema env pred =
  List.fold_left
    (fun acc (a : Pred.atom) ->
      let* () = acc in
      let* () = check_operand schema env a.Pred.lhs in
      check_operand schema env a.Pred.rhs)
    (Ok ()) pred

let operand_ty schema env = function
  | Pred.Const (Value.Bool _) -> Ok (Typed Schema.Bool)
  | Pred.Const (Value.Int _) -> Ok (Typed Schema.Int)
  | Pred.Const (Value.Float _) -> Ok (Typed Schema.Float)
  | Pred.Const (Value.Str _) -> Ok (Typed Schema.String)
  | Pred.Const (Value.Date _) -> Ok (Typed Schema.Date)
  | Pred.Const (Value.Null | Value.Ref _ | Value.Set _) -> Ok Opaque
  | Pred.Self b -> (
    match List.assoc_opt b env with
    | Some cls -> Ok (Typed (Schema.Ref cls))
    | None -> fail "binding %s not in scope" b)
  | Pred.Field (b, f) -> (
    match List.assoc_opt b env with
    | None -> fail "binding %s not in scope" b
    | Some cls -> (
      match Schema.attr_ty schema ~cls f with
      | Some ty -> Ok (Typed ty)
      | None -> fail "class %s has no attribute %s" cls f))

let unprojected what (i : t) =
  match i.ty_cols with
  | None -> Ok i.ty_bindings
  | Some _ -> fail "%s over a projection" what

let introduce env b cls =
  if List.mem_assoc b env then fail "binding %s introduced twice" b
  else Ok (env @ [ (b, cls) ])

let env_of bindings = { ty_bindings = bindings; ty_cols = None; ty_dup = Set_sem }

let infer_op cat (op : Logical.op) (inputs : t list) : (t, string) result =
  let schema = Catalog.schema cat in
  match op, inputs with
  | Logical.Get { coll; binding }, [] -> (
    match Catalog.find_collection cat coll with
    | None -> fail "unknown collection %s" coll
    | Some co -> Ok { (env_of [ (binding, co.Catalog.co_class) ]) with ty_dup = Set_sem })
  | Logical.Select pred, [ i ] ->
    let* env = unprojected "Select" i in
    let* () = check_pred schema env pred in
    Ok i
  | Logical.Project ps, [ i ] ->
    let* env = unprojected "Project" i in
    let* cols =
      List.fold_left
        (fun acc (p : Logical.proj) ->
          let* cols = acc in
          if List.mem_assoc p.Logical.p_name cols then
            fail "Project: duplicate output column %s" p.Logical.p_name
          else
            let* ct = operand_ty schema env p.Logical.p_expr in
            Ok (cols @ [ (p.Logical.p_name, ct) ]))
        (Ok []) ps
    in
    let used =
      List.concat_map (fun (p : Logical.proj) -> Pred.bindings_of_operand p.Logical.p_expr) ps
    in
    let kept = List.filter (fun (b, _) -> List.mem b used) env in
    (* Distinctness survives a projection only when every binder's
       identity is retained verbatim: then output tuples are injective
       images of input tuples. Anything weaker may merge rows. *)
    let keeps_identity b =
      List.exists (fun (p : Logical.proj) -> p.Logical.p_expr = Pred.Self b) ps
    in
    let ty_dup =
      if i.ty_dup = Set_sem && List.for_all (fun (b, _) -> keeps_identity b) env then
        Set_sem
      else Bag_sem
    in
    Ok { ty_bindings = kept; ty_cols = Some cols; ty_dup }
  | Logical.Join pred, [ l; r ] ->
    let* envl = unprojected "Join" l in
    let* envr = unprojected "Join" r in
    let* env =
      List.fold_left
        (fun acc (b, cls) ->
          let* env = acc in
          introduce env b cls)
        (Ok envl) envr
    in
    let* () = check_pred schema env pred in
    let ty_dup = if l.ty_dup = Set_sem && r.ty_dup = Set_sem then Set_sem else Bag_sem in
    Ok { ty_bindings = env; ty_cols = None; ty_dup }
  | Logical.Cross, [ l; r ] ->
    let* envl = unprojected "Cross" l in
    let* envr = unprojected "Cross" r in
    let* env =
      List.fold_left
        (fun acc (b, cls) ->
          let* env = acc in
          introduce env b cls)
        (Ok envl) envr
    in
    let ty_dup = if l.ty_dup = Set_sem && r.ty_dup = Set_sem then Set_sem else Bag_sem in
    Ok { ty_bindings = env; ty_cols = None; ty_dup }
  | Logical.Mat { src; field; out }, [ i ] ->
    let* env = unprojected "Mat" i in
    (match List.assoc_opt src env with
    | None -> fail "Mat: binding %s not in scope" src
    | Some cls ->
      let* target =
        match field with
        | None -> Ok cls
        | Some field -> (
          match Schema.attr_ty schema ~cls field with
          | Some (Schema.Ref target) -> Ok target
          | Some ty ->
            fail "Mat: %s.%s is %a, not a single-valued reference" cls field
              Schema.pp_attr_ty ty
          | None -> fail "Mat: class %s has no attribute %s" cls field)
      in
      let* env = introduce env out target in
      (* one output row per input row: multiplicities are preserved *)
      Ok { ty_bindings = env; ty_cols = None; ty_dup = i.ty_dup })
  | Logical.Unnest { src; field; out }, [ i ] ->
    let* env = unprojected "Unnest" i in
    (match List.assoc_opt src env with
    | None -> fail "Unnest: binding %s not in scope" src
    | Some cls -> (
      match Schema.attr_ty schema ~cls field with
      | Some (Schema.Set_of (Schema.Ref target)) ->
        let* env = introduce env out target in
        (* set elements are distinct, so each input row fans out to
           distinct (row, element) pairs: multiplicities are preserved *)
        Ok { ty_bindings = env; ty_cols = None; ty_dup = i.ty_dup }
      | Some ty ->
        fail "Unnest: %s.%s is %a, not a set of references" cls field Schema.pp_attr_ty ty
      | None -> fail "Unnest: class %s has no attribute %s" cls field))
  | (Logical.Union | Logical.Intersect | Logical.Difference), [ l; r ] ->
    let what =
      match op with
      | Logical.Union -> "Union"
      | Logical.Intersect -> "Intersect"
      | _ -> "Difference"
    in
    let* envl = unprojected what l in
    let* envr = unprojected what r in
    let sorted env = List.sort (fun (a, _) (b, _) -> String.compare a b) env in
    if sorted envl <> sorted envr then fail "%s: inputs have different scopes" what
    else
      (* the hash-based set algorithms deduplicate their output *)
      Ok { ty_bindings = envl; ty_cols = None; ty_dup = Set_sem }
  | _ -> fail "malformed expression (wrong arity for %a)" Logical.pp_op op

let rec infer cat (e : Logical.t) =
  let* itys =
    List.fold_left
      (fun acc i ->
        let* tys = acc in
        let* ty = infer cat i in
        Ok (tys @ [ ty ]))
      (Ok []) e.Logical.inputs
  in
  infer_op cat e.Logical.op itys

(* The schema of the rows the executor will actually emit: named columns
   at a projection root, (binding, object reference) pairs otherwise —
   mirrors Executor.rows_of. *)
let output_schema cat e =
  let* ty = infer cat e in
  match ty.ty_cols with
  | Some cols -> Ok cols
  | None -> Ok (List.map (fun (b, cls) -> (b, Typed (Schema.Ref cls))) ty.ty_bindings)

let rec value_matches ct (v : Value.t) =
  match ct, v with
  | _, Value.Null -> true (* missing fields evaluate to Null at any type *)
  | Opaque, _ -> true
  | Typed Schema.Bool, Value.Bool _ -> true
  | Typed Schema.Int, Value.Int _ -> true
  | Typed Schema.Float, (Value.Float _ | Value.Int _) -> true
  | Typed Schema.String, Value.Str _ -> true
  | Typed Schema.Date, Value.Date _ -> true
  | Typed (Schema.Ref _), Value.Ref _ -> true
  | Typed (Schema.Set_of ty), Value.Set vs -> List.for_all (value_matches (Typed ty)) vs
  | Typed _, _ -> false
