(** Typed algebra IR: compositional type inference for the logical
    object algebra.

    The type of an expression records three things the optimizer must
    preserve under every rewrite:

    - the {e binder environment} — which bindings are in scope and what
      class each ranges over (derived from the catalog, through Mat and
      Unnest path expressions);
    - the {e output columns} when the root is a projection;
    - the {e duplicate semantics} — whether the expression denotes a set
      (no duplicate rows possible) or a bag.

    Ordering is deliberately not part of the logical type: it is a
    physical property, delivered by algorithms and demanded by goals
    (see {!Physprop} and the plan linter).

    {!infer_op} is the single-step judgment: given the types of an
    operator's inputs, produce the output type or a type error. The memo
    enforces it on every multi-expression interned during optimization
    (see [Volcano]), so a transformation rule cannot smuggle an
    ill-typed or scope-changing expression into a group. {!infer} is the
    whole-tree closure of the same judgment. *)

(** Duplicate semantics of a logical expression. *)
type dup =
  | Set_sem  (** no duplicate rows can occur in the denotation *)
  | Bag_sem  (** duplicates possible (e.g. a projection that drops a key) *)

(** Static type of one output column. *)
type col_ty =
  | Typed of Oodb_catalog.Schema.attr_ty
  | Opaque  (** no catalog name for the type, e.g. a null literal *)

type t = {
  ty_bindings : (string * string) list;
      (** binding name -> class, in scope order *)
  ty_cols : (string * col_ty) list option;
      (** [Some] at a projection root: output column name -> type *)
  ty_dup : dup;
}

val equal : t -> t -> bool
(** Group-level type equality: binder environments compare as finite
    maps (rules like join-commute permute scope order), columns compare
    positionally. *)

val pp : Format.formatter -> t -> unit

val pp_col_ty : Format.formatter -> col_ty -> unit

val to_string : t -> string

val dup_name : dup -> string

val infer_op :
  Oodb_catalog.Catalog.t -> Logical.op -> t list -> (t, string) result
(** One-step type inference: the output type of [op] applied to inputs
    of the given types, or a type error (binder out of scope or
    introduced twice, unknown collection or attribute, invalid path
    expression, set operation over unequal scopes, operator over a
    projection). *)

val infer : Oodb_catalog.Catalog.t -> Logical.t -> (t, string) result
(** Whole-expression inference: [infer_op] applied bottom-up. *)

val output_schema :
  Oodb_catalog.Catalog.t -> Logical.t -> ((string * col_ty) list, string) result
(** The schema of the rows execution will actually produce: the named
    columns at a projection root, and [(binding, ref<class>)] pairs for
    every other root — mirrors [Executor.rows_of]. *)

val value_matches : col_ty -> Oodb_storage.Value.t -> bool
(** Does a runtime value inhabit a static column type? [Null] inhabits
    every type (missing fields evaluate to [Null]); [Int] inhabits
    [Float] (numeric comparison collapses them). *)
