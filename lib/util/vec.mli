(** A growable flat array (amortized O(1) [push], O(1) [get]/[set]) — the
    backing store for the optimizer memo's id-indexed tables. OCaml 5.1
    predates [Stdlib.Dynarray]; this is the small subset the memo needs.

    No dummy element is required: capacity is allocated lazily at the
    first [push], using the pushed value as the fill for unused slots
    (which may therefore retain it until overwritten — fine for the
    memo's append-only tables). *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** An empty vector. [capacity] is a hint for the first allocation. *)

val length : 'a t -> int

val get : 'a t -> int -> 'a
(** @raise Invalid_argument outside [0 .. length-1]. *)

val set : 'a t -> int -> 'a -> unit
(** @raise Invalid_argument outside [0 .. length-1]. *)

val push : 'a t -> 'a -> int
(** Append and return the new element's index. *)

val iter : ('a -> unit) -> 'a t -> unit

val iteri : (int -> 'a -> unit) -> 'a t -> unit

val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

val to_list : 'a t -> 'a list
