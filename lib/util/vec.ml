type 'a t = {
  mutable data : 'a array;
  mutable len : int;
  mutable cap_hint : int;
}

let create ?(capacity = 16) () = { data = [||]; len = 0; cap_hint = max capacity 1 }

let length t = t.len

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Vec.get: index out of bounds";
  Array.unsafe_get t.data i

let set t i v =
  if i < 0 || i >= t.len then invalid_arg "Vec.set: index out of bounds";
  Array.unsafe_set t.data i v

let push t v =
  if t.len = Array.length t.data then begin
    (* grow with [v] as the filler: no dummy element needed, and the
       unused tail holds a value of the right type *)
    let data = Array.make (if t.len = 0 then t.cap_hint else 2 * t.len) v in
    Array.blit t.data 0 data 0 t.len;
    t.data <- data
  end;
  Array.unsafe_set t.data t.len v;
  t.len <- t.len + 1;
  t.len - 1

let iteri f t =
  for i = 0 to t.len - 1 do
    f i (Array.unsafe_get t.data i)
  done

let iter f t = iteri (fun _ v -> f v) t

let fold_left f acc t =
  let acc = ref acc in
  iter (fun v -> acc := f !acc v) t;
  !acc

let to_list t = List.init t.len (fun i -> Array.unsafe_get t.data i)
