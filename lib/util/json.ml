type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of t_float
  | String of string
  | List of t list
  | Obj of (string * t) list

and t_float = float

let float f = if Float.is_finite f then Float f else Null

(* ------------------------------------------------------------------ *)
(* Encoding                                                             *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Shortest representation that round-trips: try %.12g (compact, exact
   for every number the reports contain), fall back to %.17g. *)
let float_repr f =
  let s = Printf.sprintf "%.12g" f in
  let s = if float_of_string s = f then s else Printf.sprintf "%.17g" f in
  (* "1e+09" and "1.5" are valid JSON; bare "1" must stay a number, which
     it is — no decoration needed. *)
  s

let to_string ?(minify = false) t =
  let buf = Buffer.create 256 in
  let indent n = Buffer.add_string buf (String.make (2 * n) ' ') in
  let nl depth =
    if not minify then begin
      Buffer.add_char buf '\n';
      indent depth
    end
  in
  let rec go depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f ->
      if Float.is_finite f then Buffer.add_string buf (float_repr f)
      else Buffer.add_string buf "null"
    | String s -> escape_string buf s
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          nl (depth + 1);
          go (depth + 1) item)
        items;
      nl depth;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      (* Deterministic output: keys render sorted regardless of build
         order, so report diffs and CI artifact comparisons are stable. *)
      let fields =
        List.stable_sort (fun (a, _) (b, _) -> String.compare a b) fields
      in
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          nl (depth + 1);
          escape_string buf k;
          Buffer.add_char buf ':';
          if not minify then Buffer.add_char buf ' ';
          go (depth + 1) v)
        fields;
      nl depth;
      Buffer.add_char buf '}'
  in
  go 0 t;
  Buffer.contents buf

let pp ppf t = Format.pp_print_string ppf (to_string t)

(* ------------------------------------------------------------------ *)
(* Parsing                                                              *)

exception Parse_error of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let error fmt = Format.kasprintf (fun m -> raise (Parse_error m)) fmt in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> error "at %d: expected %c, found %c" !pos c c'
    | None -> error "at %d: expected %c, found end of input" !pos c
  in
  let skip_ws () =
    while
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        true
      | _ -> false
    do
      ()
    done
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else error "at %d: invalid literal" !pos
  in
  (* Encode one Unicode code point as UTF-8 bytes. *)
  let add_utf8 buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> error "at %d: unterminated string" !pos
      | Some '"' -> advance ()
      | Some '\\' -> (
        advance ();
        match peek () with
        | None -> error "at %d: unterminated escape" !pos
        | Some c ->
          advance ();
          (match c with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'u' ->
            if !pos + 4 > n then error "at %d: truncated \\u escape" !pos;
            let hex = String.sub s !pos 4 in
            let cp =
              try int_of_string ("0x" ^ hex)
              with _ -> error "at %d: bad \\u escape %s" !pos hex
            in
            pos := !pos + 4;
            add_utf8 buf cp
          | c -> error "at %d: bad escape \\%c" !pos c);
          go ())
      | Some c ->
        advance ();
        Buffer.add_char buf c;
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    let is_float = String.exists (fun c -> c = '.' || c = 'e' || c = 'E') text in
    if is_float then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> error "at %d: bad number %s" start text
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> error "at %d: bad number %s" start text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> error "at %d: unexpected end of input" !pos
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [ parse_value () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          items := parse_value () :: !items;
          skip_ws ()
        done;
        expect ']';
        List (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let fields = ref [ field () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          fields := field () :: !fields;
          skip_ws ()
        done;
        expect '}';
        Obj (List.rev !fields)
      end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> error "at %d: unexpected character %c" !pos c
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then error "at %d: trailing content" !pos;
    v
  with
  | v -> Ok v
  | exception Parse_error m -> Error m

(* ------------------------------------------------------------------ *)
(* Accessors                                                            *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let to_float = function Int i -> Some (float_of_int i) | Float f -> Some f | _ -> None

let to_int = function Int i -> Some i | _ -> None

let to_list = function List items -> Some items | _ -> None
