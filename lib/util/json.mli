(** Minimal JSON values, hand-rolled encoder and parser.

    The observability layer ({!Oodb_obs}) serializes traces, profiles and
    metrics snapshots as JSON so external tooling (CI checks, plotting,
    regression diffing against [BENCH_results.json]) can consume them
    without an OCaml toolchain. No third-party JSON dependency is pulled
    in: the format needed here is small and a round-trippable subset is
    ~200 lines.

    Floats are emitted with enough digits to round-trip; non-finite
    floats (which raw division in metrics code can produce) encode as
    [null] rather than the invalid tokens [inf]/[nan]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of t_float
  | String of string
  | List of t list
  | Obj of (string * t) list
      (** insertion order is preserved in the value; {!to_string} renders
          keys sorted so emitted reports are deterministic *)

and t_float = float

val float : float -> t
(** [Float f], or [Null] when [f] is not finite. *)

val to_string : ?minify:bool -> t -> string
(** Render; [minify] (default [false]) drops all whitespace, otherwise
    objects and arrays are indented two spaces per level. Object keys
    are emitted in sorted order (stable for duplicates), making the
    output deterministic for diffing and CI artifact comparison. *)

val pp : Format.formatter -> t -> unit
(** Pretty (indented) rendering. *)

val of_string : string -> (t, string) result
(** Parse a complete JSON document (trailing whitespace allowed, anything
    else after the value is an error). Numbers without [.], [e] or [E]
    that fit in an OCaml [int] parse as [Int], every other number as
    [Float]. [\uXXXX] escapes decode to UTF-8 bytes. *)

(** {1 Accessors} (for tests and report post-processing) *)

val member : string -> t -> t option
(** Field of an [Obj]; [None] otherwise. *)

val to_float : t -> float option
(** Numeric value of an [Int] or [Float]. *)

val to_int : t -> int option

val to_list : t -> t list option
