(** Hierarchical span collection: begin/end scopes with well-formed
    nesting, exported as Chrome trace-event JSON (loadable in
    ui.perfetto.dev).

    A collector is threaded through the pipeline as a [t option]; [None]
    is the nil-sink fast path — every emission site is a single match
    and constructs nothing. Spans must nest: {!end_} enforces that the
    span being closed is the innermost open one and raises otherwise, so
    a collected stream is well-formed by construction ({!with_span}
    guarantees it even across exceptions).

    The clock defaults to [Sys.time] — the same processor clock the
    profiler uses — so span durations and profiler wall times are
    directly comparable; pass explicit [ts] values to share the exact
    same readings. Timestamps are stored relative to the collector's
    creation. *)

type event = {
  ev_ph : [ `B | `E ];
  ev_name : string;
  ev_cat : string;  (** empty on [`E]; filled from the matching [`B] at export *)
  ev_ts : float;  (** seconds since the collector was created *)
  ev_args : (string * Json.t) list;
}

type t

val create : ?clock:(unit -> float) -> unit -> t

val begin_ : ?args:(string * Json.t) list -> ?ts:float -> t -> cat:string -> string -> unit
(** Open a span. [ts] is a raw clock reading (defaults to reading the
    collector's clock). *)

val end_ : ?args:(string * Json.t) list -> ?ts:float -> t -> string -> unit
(** Close the innermost open span, which must carry this name.
    @raise Invalid_argument on a nesting violation. *)

val with_span :
  ?args:(string * Json.t) list -> t option -> cat:string -> string -> (unit -> 'a) -> 'a
(** [with_span spans ~cat name f] runs [f] inside a span when [spans] is
    [Some _], closing it even when [f] raises; with [None] it is just
    [f ()]. *)

val depth : t -> int
(** Number of currently open spans. *)

val count : t -> int
(** Total events recorded. *)

val events : t -> event list
(** In chronological order. *)

val to_chrome : ?pid:int -> ?tid:int -> t -> Json.t
(** Chrome trace-event JSON:
    [{"displayTimeUnit": "ms", "traceEvents": [{"name", "cat", "ph",
    "ts", "pid", "tid", "args"?}, ..]}] with [ts] in microseconds. *)

val well_formed : t -> (unit, string) result
(** [Ok ()] iff no span is still open and every [`E] closes the most
    recent unmatched [`B] of the same name. *)
