type event = {
  ev_ph : [ `B | `E ];
  ev_name : string;
  ev_cat : string;
  ev_ts : float;
  ev_args : (string * Json.t) list;
}

type t = {
  clock : unit -> float;
  epoch : float;
  mutable events : event list; (* newest first *)
  mutable count : int;
  mutable stack : string list; (* names of currently open spans *)
}

let create ?(clock = Sys.time) () =
  { clock; epoch = clock (); events = []; count = 0; stack = [] }

let depth t = List.length t.stack

let count t = t.count

let push t ev =
  t.events <- ev :: t.events;
  t.count <- t.count + 1

let begin_ ?(args = []) ?ts t ~cat name =
  let ts = match ts with Some ts -> ts | None -> t.clock () in
  t.stack <- name :: t.stack;
  push t { ev_ph = `B; ev_name = name; ev_cat = cat; ev_ts = ts -. t.epoch; ev_args = args }

let end_ ?(args = []) ?ts t name =
  (match t.stack with
  | top :: rest when String.equal top name -> t.stack <- rest
  | top :: _ ->
    invalid_arg
      (Printf.sprintf "Span.end_: closing %S but innermost open span is %S" name top)
  | [] -> invalid_arg (Printf.sprintf "Span.end_: closing %S but no span is open" name));
  let ts = match ts with Some ts -> ts | None -> t.clock () in
  (* The category is filled in at export time from the matching B event
     (the stack discipline guarantees there is exactly one). *)
  push t { ev_ph = `E; ev_name = name; ev_cat = ""; ev_ts = ts -. t.epoch; ev_args = args }

let with_span ?args spans ~cat name f =
  match spans with
  | None -> f ()
  | Some t ->
    begin_ ?args t ~cat name;
    (match f () with
    | v ->
      end_ t name;
      v
    | exception e ->
      end_ t name;
      raise e)

let events t = List.rev t.events

(* ------------------------------------------------------------------ *)
(* Chrome trace-event export (loadable in ui.perfetto.dev)              *)

(* E events inherit the matching B event's category so every record is
   self-describing; timestamps are microseconds from the collector's
   creation. *)
let to_chrome ?(pid = 1) ?(tid = 1) t =
  let cat_stack = ref [] in
  let trace_events =
    List.map
      (fun ev ->
        let cat =
          match ev.ev_ph with
          | `B ->
            cat_stack := ev.ev_cat :: !cat_stack;
            ev.ev_cat
          | `E -> (
            match !cat_stack with
            | c :: rest ->
              cat_stack := rest;
              c
            | [] -> ev.ev_cat)
        in
        let base =
          [ ("name", Json.String ev.ev_name);
            ("cat", Json.String cat);
            ("ph", Json.String (match ev.ev_ph with `B -> "B" | `E -> "E"));
            ("ts", Json.float (ev.ev_ts *. 1e6));
            ("pid", Json.Int pid);
            ("tid", Json.Int tid) ]
        in
        Json.Obj
          (if ev.ev_args = [] then base else base @ [ ("args", Json.Obj ev.ev_args) ]))
      (events t)
  in
  Json.Obj
    [ ("displayTimeUnit", Json.String "ms"); ("traceEvents", Json.List trace_events) ]

(* ------------------------------------------------------------------ *)
(* Well-formedness (for tests and report validation)                    *)

let well_formed t =
  if t.stack <> [] then
    Error (Printf.sprintf "%d span(s) still open: %s" (depth t) (String.concat ", " t.stack))
  else
    let rec check stack = function
      | [] -> if stack = [] then Ok () else Error "unclosed B events"
      | ev :: rest -> (
        match ev.ev_ph with
        | `B -> check (ev.ev_name :: stack) rest
        | `E -> (
          match stack with
          | top :: stack' when String.equal top ev.ev_name -> check stack' rest
          | top :: _ ->
            Error (Printf.sprintf "E %S closes B %S" ev.ev_name top)
          | [] -> Error (Printf.sprintf "E %S without a prior B" ev.ev_name)))
    in
    check [] (events t)
