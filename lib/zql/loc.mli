(** Source locations for ZQL front-end diagnostics (1-based line and
    column of a token's first character). *)

type t = {
  line : int;
  col : int;
}

val none : t
(** The absent location (line 0) — used for synthesized nodes. Never
    printed by {!to_string} callers that check {!is_none} first. *)

val is_none : t -> bool

val make : line:int -> col:int -> t

val to_string : t -> string
(** ["line L, column C"]. *)

val pp : Format.formatter -> t -> unit
