module Value = Oodb_storage.Value
module Catalog = Oodb_catalog.Catalog
module Schema = Oodb_catalog.Schema
module Logical = Oodb_algebra.Logical
module Pred = Oodb_algebra.Pred

exception Simplify_error of string

let error fmt = Format.kasprintf (fun m -> raise (Simplify_error m)) fmt

(* Errors that can be traced to a source token carry its location;
   [Loc.none] (synthesized AST nodes) degrades to the bare message. *)
let error_at (loc : Loc.t) fmt =
  Format.kasprintf
    (fun m ->
      raise (Simplify_error (if Loc.is_none loc then m else Loc.to_string loc ^ ": " ^ m)))
    fmt

let pos_of_expr = function
  | Ast.Path p -> p.Ast.p_pos
  | Ast.Lit _ -> Loc.none

type state = {
  cat : Catalog.t;
  mutable tree : Logical.t;
  mutable env : (string * string) list; (* binding -> class, in scope order *)
  mutable mats : string list; (* Mat output bindings already introduced *)
}

let schema st = Catalog.schema st.cat

let class_of ?(at = Loc.none) st b =
  match List.assoc_opt b st.env with
  | Some cls -> cls
  | None -> error_at at "unknown range variable %s" b

let bind ?(at = Loc.none) st b cls =
  if List.mem_assoc b st.env then error_at at "range variable %s defined twice" b;
  st.env <- st.env @ [ (b, cls) ]

(* Introduce [Mat src.field] (once) and return the output binding. *)
let add_mat ?(at = Loc.none) st ~src ~field =
  let out = src ^ "." ^ field in
  if not (List.mem out st.mats) then begin
    st.tree <- Logical.mat ~out ~src ~field st.tree;
    st.mats <- out :: st.mats;
    let cls = class_of ~at st src in
    match Schema.follow (schema st) ~cls field with
    | Some target -> bind ~at st out target
    | None -> error_at at "%s.%s is not a reference" cls field
  end;
  out

(* Resolve all but the last step of a path to a binding holding the
   object the last step applies to; intermediate steps must be
   single-valued references and introduce Mats. *)
let resolve_prefix st (p : Ast.path) =
  let at = p.Ast.p_pos in
  List.fold_left
    (fun binding step ->
      let cls = class_of ~at st binding in
      match Schema.attr_ty (schema st) ~cls step with
      | Some (Schema.Ref _) -> add_mat ~at st ~src:binding ~field:step
      | Some ty ->
        error_at at "path step %s.%s has type %a, expected a single-valued reference" binding
          step Schema.pp_attr_ty ty
      | None -> error_at at "class %s has no attribute %s" cls step)
    p.Ast.p_root
    (match p.Ast.p_steps with [] -> [] | steps -> List.filteri (fun i _ -> i < List.length steps - 1) steps)

let last_step (p : Ast.path) =
  match List.rev p.Ast.p_steps with [] -> None | last :: _ -> Some last

(* Scalar type of an operand, for comparability checking. *)
type sty = S_bool | S_num | S_str | S_date | S_obj of string

let sty_of_attr = function
  | Schema.Bool -> S_bool
  | Schema.Int | Schema.Float -> S_num
  | Schema.String -> S_str
  | Schema.Date -> S_date
  | Schema.Ref cls -> S_obj cls
  | Schema.Set_of _ -> error "set-valued component used in scalar position"

let sty_of_lit = function
  | Value.Bool _ -> S_bool
  | Value.Int _ | Value.Float _ -> S_num
  | Value.Str _ -> S_str
  | Value.Date _ -> S_date
  | Value.Null | Value.Ref _ | Value.Set _ -> error "unsupported literal"

(* Translate an expression to a predicate operand, introducing Mats for
   intermediate path links. *)
let operand st = function
  | Ast.Lit v -> (Pred.Const v, sty_of_lit v)
  | Ast.Path p -> (
    let at = p.Ast.p_pos in
    match last_step p with
    | None -> (Pred.Self p.Ast.p_root, S_obj (class_of ~at st p.Ast.p_root))
    | Some last ->
      let binding = resolve_prefix st p in
      let cls = class_of ~at st binding in
      (match Schema.attr_ty (schema st) ~cls last with
      | None -> error_at at "class %s has no attribute %s" cls last
      | Some ty -> (Pred.Field (binding, last), sty_of_attr ty)))

let compatible a b =
  match a, b with
  | S_bool, S_bool | S_num, S_num | S_str, S_str | S_date, S_date -> true
  | S_obj c1, S_obj c2 -> c1 = c2
  | _ -> false

let cmp_of = function
  | Ast.Eq -> Pred.Eq
  | Ast.Ne -> Pred.Ne
  | Ast.Lt -> Pred.Lt
  | Ast.Le -> Pred.Le
  | Ast.Gt -> Pred.Gt
  | Ast.Ge -> Pred.Ge

let fresh_ref_binding v = "&" ^ v

let rec add_range st (r : Ast.range) ~first =
  let at = r.Ast.r_pos in
  match r.Ast.r_src with
  | Ast.Coll coll -> (
    match Catalog.find_collection st.cat coll with
    | None -> error_at at "unknown collection %s" coll
    | Some co ->
      (match r.Ast.r_class with
      | Some cls when cls <> co.Catalog.co_class ->
        error_at at "collection %s contains %s objects, not %s" coll co.Catalog.co_class cls
      | Some _ | None -> ());
      let get = Logical.get ~coll ~binding:r.Ast.r_var in
      if first then st.tree <- get
      else st.tree <- Logical.join [] st.tree get;
      bind ~at st r.Ast.r_var co.Catalog.co_class)
  | Ast.Set_path p ->
    if first then error_at at "the first range must be over a collection";
    let last =
      match last_step p with
      | Some l -> l
      | None -> error_at at "set-valued range %s is not a path" p.Ast.p_root
    in
    let prefix = resolve_prefix st p in
    let cls = class_of ~at:p.Ast.p_pos st prefix in
    (match Schema.attr_ty (schema st) ~cls last with
    | Some (Schema.Set_of (Schema.Ref target)) ->
      (match r.Ast.r_class with
      | Some ann when ann <> target ->
        error_at at "%s.%s contains %s objects, not %s" prefix last target ann
      | Some _ | None -> ());
      let ref_binding = fresh_ref_binding r.Ast.r_var in
      st.tree <- Logical.unnest ~out:ref_binding ~src:prefix ~field:last st.tree;
      bind ~at st ref_binding target;
      (* materialize the revealed references, as in the paper's Fig. 3 *)
      st.tree <- Logical.mat_ref ~out:r.Ast.r_var ~src:ref_binding st.tree;
      bind ~at st r.Ast.r_var target
    | Some ty ->
      error_at at "%s.%s has type %a, expected a set of references" prefix last
        Schema.pp_attr_ty ty
    | None -> error_at at "class %s has no attribute %s" cls last)

(* Flatten a condition into predicate atoms, inlining EXISTS subqueries
   by appending their ranges (witness-pair semantics). *)
and atoms_of_cond st cond =
  Ast.conjuncts cond
  |> List.concat_map (function
       | Ast.Cmp (op, l, r) ->
         let lo, lt = operand st l in
         let ro, rt = operand st r in
         if not (compatible lt rt) then begin
           let at = if Loc.is_none (pos_of_expr l) then pos_of_expr r else pos_of_expr l in
           error_at at "incomparable operands in %a" Ast.pp_cond (Ast.Cmp (op, l, r))
         end;
         [ Pred.atom (cmp_of op) lo ro ]
       | Ast.And _ -> assert false (* flattened by conjuncts *)
       | Ast.Exists q ->
         if q.Ast.q_setops <> [] then
           error "set operations are not supported inside EXISTS";
         List.iter (fun r -> add_range st r ~first:false) q.Ast.q_from;
         (match q.Ast.q_where with
         | None -> []
         | Some c -> atoms_of_cond st c))

type compiled = {
  c_logical : Logical.t;
  c_order : (string * string option) option;
}

(* Compile one SELECT block (the set-operation branches of [q] are the
   caller's concern). Raises [Simplify_error]. *)
let compile_core cat (q : Ast.query) =
    let st =
      { cat;
        tree = Logical.get ~coll:"?" ~binding:"?" (* replaced by the first range *);
        env = [];
        mats = [] }
    in
    (match q.Ast.q_from with
    | [] -> error "empty FROM clause"
    | first :: rest ->
      add_range st first ~first:true;
      List.iter (fun r -> add_range st r ~first:false) rest);
    let atoms = match q.Ast.q_where with None -> [] | Some c -> atoms_of_cond st c in
    if atoms <> [] then st.tree <- Logical.select atoms st.tree;
    (match q.Ast.q_select with
    | [] -> () (* SELECT *: deliver the full scope *)
    | items ->
      let projs =
        List.map
          (fun (si : Ast.select_item) ->
            let op, _ = operand st si.Ast.si_expr in
            let default_name =
              match si.Ast.si_expr with
              | Ast.Path p -> Format.asprintf "%a" Ast.pp_path p
              | Ast.Lit v -> Value.to_string v
            in
            { Logical.p_expr = op;
              p_name = (match si.Ast.si_as with Some n -> n | None -> default_name) })
          items
      in
      st.tree <- Logical.project projs st.tree);
    let order =
      match q.Ast.q_order with
      | None -> None
      | Some p -> (
        let at = p.Ast.p_pos in
        match last_step p with
        | None ->
          if not (List.mem p.Ast.p_root (Logical.scope st.tree)) then
            error_at at "ORDER BY %s: not in the query result" p.Ast.p_root;
          Some (p.Ast.p_root, None)
        | Some last ->
          let binding = resolve_prefix st p in
          let cls = class_of ~at st binding in
          (match Schema.attr_ty (schema st) ~cls last with
          | None -> error_at at "class %s has no attribute %s" cls last
          | Some (Schema.Set_of _) -> error_at at "cannot ORDER BY a set-valued component"
          | Some _ -> ());
          if not (List.mem binding (Logical.scope st.tree)) then
            error_at at "ORDER BY %a: %s is not in the query result" Ast.pp_path p binding;
          Some (binding, Some last))
    in
    (st.tree, order)

let query_ordered cat (q : Ast.query) =
  match
    let tree, order = compile_core cat q in
    let tree =
      match q.Ast.q_setops with
      | [] -> tree
      | branches ->
        if order <> None then error "ORDER BY cannot be combined with set operations";
        let scope = Logical.scope tree in
        List.fold_left
          (fun acc (op, rhs) ->
            if rhs.Ast.q_order <> None then
              error "ORDER BY cannot be combined with set operations";
            if rhs.Ast.q_setops <> [] then
              error "nested set-operation branches are not supported";
            let rhs_tree, _ = compile_core cat rhs in
            if Logical.scope rhs_tree <> scope then
              error "set-operation branches deliver different scopes (%s vs %s)"
                (String.concat ", " scope)
                (String.concat ", " (Logical.scope rhs_tree));
            match op with
            | Ast.Union -> Logical.union acc rhs_tree
            | Ast.Intersect -> Logical.intersect acc rhs_tree
            | Ast.Except -> Logical.difference acc rhs_tree)
          tree branches
    in
    match Logical.well_formed cat tree with
    | Ok () -> { c_logical = tree; c_order = order }
    | Error msg -> error "internal simplification bug: %s" msg
  with
  | compiled -> Ok compiled
  | exception Simplify_error msg -> Result.Error msg

let query cat q = Result.map (fun c -> c.c_logical) (query_ordered cat q)

let compile cat input =
  match Parser.parse input with
  | Error msg -> Error ("parse error: " ^ msg)
  | Ok ast -> query cat ast

let compile_ordered cat input =
  match Parser.parse input with
  | Error msg -> Error ("parse error: " ^ msg)
  | Ok ast -> query_ordered cat ast

let compile_exn cat input =
  match compile cat input with
  | Ok t -> t
  | Error msg -> invalid_arg ("ZQL: " ^ msg)
