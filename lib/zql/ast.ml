module Value = Oodb_storage.Value

type path = {
  p_root : string;
  p_steps : string list;
  p_pos : Loc.t;  (* location of the path's first identifier *)
}

type expr =
  | Path of path
  | Lit of Value.t

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type cond =
  | Cmp of cmp * expr * expr
  | And of cond * cond
  | Exists of query

and range = {
  r_class : string option;
  r_var : string;
  r_src : src;
  r_pos : Loc.t;  (* location of the range's first token *)
}

and src =
  | Coll of string
  | Set_path of path

and select_item = { si_expr : expr; si_as : string option }

and setop = Union | Intersect | Except

and query = {
  q_select : select_item list;
  q_from : range list;
  q_where : cond option;
  q_order : path option;
  q_setops : (setop * query) list;
}

let rec conjuncts = function
  | And (a, b) -> conjuncts a @ conjuncts b
  | (Cmp _ | Exists _) as c -> [ c ]

let pp_path ppf p =
  Format.pp_print_string ppf (String.concat "." (p.p_root :: p.p_steps))

let pp_expr ppf = function
  | Path p -> pp_path ppf p
  | Lit v -> Value.pp ppf v

let cmp_name = function
  | Eq -> "=="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let rec pp_cond ppf = function
  | Cmp (op, a, b) -> Format.fprintf ppf "%a %s %a" pp_expr a (cmp_name op) pp_expr b
  | And (a, b) -> Format.fprintf ppf "%a && %a" pp_cond a pp_cond b
  | Exists q -> Format.fprintf ppf "EXISTS (%a)" pp_query q

and pp_range ppf r =
  (match r.r_class with
  | Some cls -> Format.fprintf ppf "%s %s IN " cls r.r_var
  | None -> Format.fprintf ppf "%s IN " r.r_var);
  match r.r_src with
  | Coll c -> Format.pp_print_string ppf c
  | Set_path p -> pp_path ppf p

and pp_select_item ppf si =
  pp_expr ppf si.si_expr;
  match si.si_as with Some n -> Format.fprintf ppf " AS %s" n | None -> ()

and setop_name = function
  | Union -> "UNION"
  | Intersect -> "INTERSECT"
  | Except -> "EXCEPT"

and pp_query ppf q =
  Format.pp_print_string ppf "SELECT ";
  (match q.q_select with
  | [] -> Format.pp_print_string ppf "*"
  | items ->
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
      pp_select_item ppf items);
  Format.pp_print_string ppf " FROM ";
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
    pp_range ppf q.q_from;
  (match q.q_where with
  | None -> ()
  | Some c -> Format.fprintf ppf " WHERE %a" pp_cond c);
  (match q.q_order with
  | None -> ()
  | Some p -> Format.fprintf ppf " ORDER BY %a" pp_path p);
  List.iter (fun (op, rhs) -> Format.fprintf ppf " %s %a" (setop_name op) pp_query rhs)
    q.q_setops

(* ------------------------------------------------------------------ *)
(* Concrete-syntax emission: [to_zql] renders a query as text the lexer
   and parser accept, so generated queries can be pushed through the
   whole front end (and written to .zql files) rather than handed to the
   simplifier as ASTs. The scenario factory's round-trip property pins
   [parse (to_zql q)] to simplify to the same logical expression as
   [q]. *)

exception Unprintable of string

(* The lexer has no sign or exponent syntax, so only non-negative
   numeric literals can be rendered; the query generators stay inside
   this subset. *)
let zql_literal v =
  match v with
  | Value.Int i ->
    if i < 0 then raise (Unprintable "negative integer literal");
    string_of_int i
  | Value.Float f ->
    if not (Float.is_finite f) || f < 0.0 then raise (Unprintable "unprintable float literal");
    let s = Printf.sprintf "%.12g" f in
    if String.contains s 'e' then raise (Unprintable "float literal needs an exponent");
    if String.contains s '.' then s else s ^ ".0"
  | Value.Str s ->
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' || c = '\\' then Buffer.add_char buf '\\';
        Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  | Value.Bool true -> "true"
  | Value.Bool false -> "false"
  | Value.Date d ->
    Printf.sprintf "date(%d, %d, %d)" ((d / 372) + 1900) ((d mod 372 / 31) + 1)
      ((d mod 31) + 1)
  | Value.Null | Value.Ref _ | Value.Set _ ->
    raise (Unprintable "literal has no ZQL syntax")

let zql_path p = String.concat "." (p.p_root :: p.p_steps)

let zql_expr = function
  | Path p -> zql_path p
  | Lit v -> zql_literal v

let rec zql_cond buf = function
  | Cmp (op, a, b) ->
    Buffer.add_string buf (zql_expr a);
    Buffer.add_string buf (" " ^ cmp_name op ^ " ");
    Buffer.add_string buf (zql_expr b)
  | And (a, b) ->
    zql_cond buf a;
    Buffer.add_string buf " && ";
    zql_cond buf b
  | Exists q ->
    Buffer.add_string buf "EXISTS (";
    zql_query buf q;
    Buffer.add_string buf ")"

and zql_range buf r =
  (match r.r_class with
  | Some cls -> Buffer.add_string buf (cls ^ " " ^ r.r_var ^ " IN ")
  | None -> Buffer.add_string buf (r.r_var ^ " IN "));
  match r.r_src with
  | Coll c -> Buffer.add_string buf c
  | Set_path p -> Buffer.add_string buf (zql_path p)

and zql_query buf q =
  Buffer.add_string buf "SELECT ";
  (match q.q_select with
  | [] -> Buffer.add_string buf "*"
  | items ->
    List.iteri
      (fun i si ->
        if i > 0 then Buffer.add_string buf ", ";
        Buffer.add_string buf (zql_expr si.si_expr);
        match si.si_as with
        | Some n -> Buffer.add_string buf (" AS " ^ n)
        | None -> ())
      items);
  Buffer.add_string buf " FROM ";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_string buf ", ";
      zql_range buf r)
    q.q_from;
  (match q.q_where with
  | None -> ()
  | Some c ->
    Buffer.add_string buf " WHERE ";
    zql_cond buf c);
  (match q.q_order with
  | None -> ()
  | Some p -> Buffer.add_string buf (" ORDER BY " ^ zql_path p));
  List.iter
    (fun (op, rhs) ->
      Buffer.add_string buf (" " ^ setop_name op ^ " ");
      zql_query buf rhs)
    q.q_setops

let to_zql q =
  let buf = Buffer.create 128 in
  zql_query buf q;
  Buffer.contents buf
