module Value = Oodb_storage.Value

type path = {
  p_root : string;
  p_steps : string list;
  p_pos : Loc.t;  (* location of the path's first identifier *)
}

type expr =
  | Path of path
  | Lit of Value.t

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type cond =
  | Cmp of cmp * expr * expr
  | And of cond * cond
  | Exists of query

and range = {
  r_class : string option;
  r_var : string;
  r_src : src;
  r_pos : Loc.t;  (* location of the range's first token *)
}

and src =
  | Coll of string
  | Set_path of path

and select_item = { si_expr : expr; si_as : string option }

and query = {
  q_select : select_item list;
  q_from : range list;
  q_where : cond option;
  q_order : path option;
}

let rec conjuncts = function
  | And (a, b) -> conjuncts a @ conjuncts b
  | (Cmp _ | Exists _) as c -> [ c ]

let pp_path ppf p =
  Format.pp_print_string ppf (String.concat "." (p.p_root :: p.p_steps))

let pp_expr ppf = function
  | Path p -> pp_path ppf p
  | Lit v -> Value.pp ppf v

let cmp_name = function
  | Eq -> "=="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let rec pp_cond ppf = function
  | Cmp (op, a, b) -> Format.fprintf ppf "%a %s %a" pp_expr a (cmp_name op) pp_expr b
  | And (a, b) -> Format.fprintf ppf "%a && %a" pp_cond a pp_cond b
  | Exists q -> Format.fprintf ppf "EXISTS (%a)" pp_query q

and pp_range ppf r =
  (match r.r_class with
  | Some cls -> Format.fprintf ppf "%s %s IN " cls r.r_var
  | None -> Format.fprintf ppf "%s IN " r.r_var);
  match r.r_src with
  | Coll c -> Format.pp_print_string ppf c
  | Set_path p -> pp_path ppf p

and pp_select_item ppf si =
  pp_expr ppf si.si_expr;
  match si.si_as with Some n -> Format.fprintf ppf " AS %s" n | None -> ()

and pp_query ppf q =
  Format.pp_print_string ppf "SELECT ";
  (match q.q_select with
  | [] -> Format.pp_print_string ppf "*"
  | items ->
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
      pp_select_item ppf items);
  Format.pp_print_string ppf " FROM ";
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
    pp_range ppf q.q_from;
  (match q.q_where with
  | None -> ()
  | Some c -> Format.fprintf ppf " WHERE %a" pp_cond c);
  match q.q_order with
  | None -> ()
  | Some p -> Format.fprintf ppf " ORDER BY %a" pp_path p
