module Value = Oodb_storage.Value

exception Parse_error of string

type state = { mutable tokens : (Lexer.token * Loc.t) list }

let peek st = match st.tokens with [] -> Lexer.EOF | (t, _) :: _ -> t

let peek_loc st = match st.tokens with [] -> Loc.none | (_, l) :: _ -> l

let advance st = match st.tokens with [] -> () | _ :: rest -> st.tokens <- rest

let error_at loc fmt =
  Format.kasprintf
    (fun m ->
      raise (Parse_error (if Loc.is_none loc then m else Loc.to_string loc ^ ": " ^ m)))
    fmt

let error st fmt = error_at (peek_loc st) fmt

let expect st tok =
  if peek st = tok then advance st
  else error st "expected %s but found %s" (Lexer.token_name tok) (Lexer.token_name (peek st))

let ident st =
  match peek st with
  | Lexer.IDENT s ->
    advance st;
    s
  | t -> error st "expected identifier but found %s" (Lexer.token_name t)

let parse_path st =
  let p_pos = peek_loc st in
  let root = ident st in
  let rec steps acc =
    if peek st = Lexer.DOT then begin
      advance st;
      steps (ident st :: acc)
    end
    else List.rev acc
  in
  { Ast.p_root = root; p_steps = steps []; p_pos }

let parse_literal st =
  match peek st with
  | Lexer.INT i ->
    advance st;
    Value.Int i
  | Lexer.FLOAT f ->
    advance st;
    Value.Float f
  | Lexer.STRING s ->
    advance st;
    Value.Str s
  | Lexer.TRUE ->
    advance st;
    Value.Bool true
  | Lexer.FALSE ->
    advance st;
    Value.Bool false
  | Lexer.DATE ->
    advance st;
    expect st Lexer.LPAREN;
    let int_arg () =
      match peek st with
      | Lexer.INT i ->
        advance st;
        i
      | t -> error st "expected integer in date(...) but found %s" (Lexer.token_name t)
    in
    let y = int_arg () in
    expect st Lexer.COMMA;
    let m = int_arg () in
    expect st Lexer.COMMA;
    let d = int_arg () in
    expect st Lexer.RPAREN;
    Value.Date (Value.date_of_ymd y m d)
  | t -> error st "expected literal but found %s" (Lexer.token_name t)

let parse_expr st =
  match peek st with
  | Lexer.IDENT _ -> Ast.Path (parse_path st)
  | _ -> Ast.Lit (parse_literal st)

let parse_cmp_op st =
  let op =
    match peek st with
    | Lexer.EQEQ -> Ast.Eq
    | Lexer.NEQ -> Ast.Ne
    | Lexer.LT -> Ast.Lt
    | Lexer.LE -> Ast.Le
    | Lexer.GT -> Ast.Gt
    | Lexer.GE -> Ast.Ge
    | t -> error st "expected comparison operator but found %s" (Lexer.token_name t)
  in
  advance st;
  op

let rec parse_query st =
  let head = parse_core st in
  let rec setops acc =
    match peek st with
    | Lexer.UNION | Lexer.INTERSECT | Lexer.EXCEPT ->
      let op =
        match peek st with
        | Lexer.UNION -> Ast.Union
        | Lexer.INTERSECT -> Ast.Intersect
        | _ -> Ast.Except
      in
      advance st;
      setops ((op, parse_core st) :: acc)
    | _ -> List.rev acc
  in
  let q_setops = setops [] in
  if peek st = Lexer.SEMI then advance st;
  { head with Ast.q_setops }

(* One SELECT block, without trailing set-operation branches. *)
and parse_core st =
  expect st Lexer.SELECT;
  let q_select = parse_select st in
  expect st Lexer.FROM;
  let q_from = parse_ranges st in
  let q_where =
    if peek st = Lexer.WHERE then begin
      advance st;
      Some (parse_cond st)
    end
    else None
  in
  let q_order =
    if peek st = Lexer.ORDER then begin
      advance st;
      expect st Lexer.BY;
      Some (parse_path st)
    end
    else None
  in
  { Ast.q_select; q_from; q_where; q_order; q_setops = [] }

and parse_select st =
  match peek st with
  | Lexer.STAR ->
    advance st;
    []
  | Lexer.NEWOBJECT ->
    advance st;
    expect st Lexer.LPAREN;
    let items = parse_items st in
    expect st Lexer.RPAREN;
    items
  | _ -> parse_items st

and parse_items st =
  let item () =
    let si_expr = parse_expr st in
    let si_as =
      if peek st = Lexer.AS then begin
        advance st;
        Some (ident st)
      end
      else None
    in
    { Ast.si_expr; si_as }
  in
  let rec more acc =
    if peek st = Lexer.COMMA then begin
      advance st;
      more (item () :: acc)
    end
    else List.rev acc
  in
  more [ item () ]

and parse_ranges st =
  let range () =
    (* [Class var IN src] or [var IN src] *)
    let r_pos = peek_loc st in
    let first = ident st in
    let r_class, r_var =
      match peek st with
      | Lexer.IDENT _ -> (Some first, ident st)
      | _ -> (None, first)
    in
    expect st Lexer.IN;
    let src_path = parse_path st in
    let r_src =
      if src_path.Ast.p_steps = [] then Ast.Coll src_path.Ast.p_root
      else Ast.Set_path src_path
    in
    { Ast.r_class; r_var; r_src; r_pos }
  in
  let rec more acc =
    if peek st = Lexer.COMMA then begin
      advance st;
      more (range () :: acc)
    end
    else List.rev acc
  in
  more [ range () ]

and parse_cond st =
  let atom () =
    match peek st with
    | Lexer.EXISTS ->
      advance st;
      expect st Lexer.LPAREN;
      let q = parse_query st in
      expect st Lexer.RPAREN;
      Ast.Exists q
    | _ ->
      let lhs = parse_expr st in
      let op = parse_cmp_op st in
      let rhs = parse_expr st in
      Ast.Cmp (op, lhs, rhs)
  in
  let rec more acc =
    if peek st = Lexer.ANDAND then begin
      advance st;
      more (Ast.And (acc, atom ()))
    end
    else acc
  in
  more (atom ())

let parse input =
  match Lexer.tokenize_pos input with
  | Error msg -> Error msg
  | Ok tokens -> (
    let st = { tokens } in
    match parse_query st with
    | q ->
      if peek st = Lexer.EOF then Ok q
      else
        Error
          (Printf.sprintf "%s: trailing input: %s"
             (Loc.to_string (peek_loc st))
             (Lexer.token_name (peek st)))
    | exception Parse_error msg -> Error msg)

let parse_exn input =
  match parse input with Ok q -> q | Error msg -> invalid_arg ("ZQL parse error: " ^ msg)
