type t = {
  line : int;
  col : int;
}

let none = { line = 0; col = 0 }

let is_none l = l.line = 0

let make ~line ~col = { line; col }

let to_string l = Printf.sprintf "line %d, column %d" l.line l.col

let pp ppf l = Format.pp_print_string ppf (to_string l)
