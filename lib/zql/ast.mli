(** Abstract syntax of the ZQL query language.

    ZQL is a standalone rendition of the paper's ZQL[C++]: SQL-shaped
    object queries with range variables over collections or set-valued
    paths, path expressions, [Newobject] projections and existentially
    quantified subqueries.

    {[
      SELECT Newobject(e.name, e.dept.name)
      FROM Employee e IN Employees
      WHERE e.dept.plant.location == "Dallas" && e.age >= 32
      ORDER BY e.name
    ]}

    [ORDER BY] compiles to the optimizer's required sort-order physical
    property rather than to an operator — the search decides whether a
    sort is actually needed. *)

type path = {
  p_root : string;  (** range variable *)
  p_steps : string list;  (** attribute steps, possibly empty *)
  p_pos : Loc.t;
      (** location of the path's first identifier ({!Loc.none} on
          synthesized nodes) — carried into simplification so type
          errors name the offending source position *)
}

type expr =
  | Path of path
  | Lit of Oodb_storage.Value.t

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type cond =
  | Cmp of cmp * expr * expr
  | And of cond * cond
  | Exists of query  (** [EXISTS (SELECT ...)] *)

and range = {
  r_class : string option;  (** optional class annotation, as in [Employee e IN ...] *)
  r_var : string;
  r_src : src;
  r_pos : Loc.t;  (** location of the range's first token *)
}

and src =
  | Coll of string  (** named collection *)
  | Set_path of path  (** set-valued component of an earlier range variable *)

and select_item = { si_expr : expr; si_as : string option }

and setop = Union | Intersect | Except
(** [SELECT ... UNION SELECT ...] and friends, with ZQL's set (distinct)
    semantics; branches must deliver identical scopes. *)

and query = {
  q_select : select_item list;  (** empty list encodes [SELECT *] *)
  q_from : range list;
  q_where : cond option;
  q_order : path option;  (** [ORDER BY path] *)
  q_setops : (setop * query) list;
      (** trailing set-operation branches, applied left to right:
          [q UNION q1 EXCEPT q2] is [((q ∪ q1) ∖ q2)] *)
}

val conjuncts : cond -> cond list
(** Flatten nested [And]s (the result contains no [And]). *)

val setop_name : setop -> string

val pp_path : Format.formatter -> path -> unit

val pp_expr : Format.formatter -> expr -> unit

val pp_cond : Format.formatter -> cond -> unit

val pp_query : Format.formatter -> query -> unit

exception Unprintable of string
(** Raised by {!to_zql} on literals outside ZQL's concrete syntax
    (negative numbers, references, sets, non-finite floats). *)

val to_zql : query -> string
(** Render as concrete ZQL text that {!Parser.parse} accepts. The
    scenario factory emits every generated query this way, so the real
    lexer/parser/simplifier sit on the fuzz path; its round-trip
    property test pins [parse (to_zql q)] to simplify to the same
    logical expression as [q]. *)
