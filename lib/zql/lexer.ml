type token =
  | SELECT
  | FROM
  | WHERE
  | IN
  | AS
  | EXISTS
  | ORDER
  | BY
  | UNION
  | INTERSECT
  | EXCEPT
  | NEWOBJECT
  | DATE
  | TRUE
  | FALSE
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | LPAREN
  | RPAREN
  | COMMA
  | DOT
  | SEMI
  | STAR
  | ANDAND
  | EQEQ
  | NEQ
  | LT
  | LE
  | GT
  | GE
  | EOF

let token_name = function
  | SELECT -> "SELECT"
  | FROM -> "FROM"
  | WHERE -> "WHERE"
  | IN -> "IN"
  | AS -> "AS"
  | EXISTS -> "EXISTS"
  | ORDER -> "ORDER"
  | BY -> "BY"
  | UNION -> "UNION"
  | INTERSECT -> "INTERSECT"
  | EXCEPT -> "EXCEPT"
  | NEWOBJECT -> "Newobject"
  | DATE -> "date"
  | TRUE -> "true"
  | FALSE -> "false"
  | IDENT s -> Printf.sprintf "identifier %s" s
  | INT i -> string_of_int i
  | FLOAT f -> string_of_float f
  | STRING s -> Printf.sprintf "%S" s
  | LPAREN -> "("
  | RPAREN -> ")"
  | COMMA -> ","
  | DOT -> "."
  | SEMI -> ";"
  | STAR -> "*"
  | ANDAND -> "&&"
  | EQEQ -> "=="
  | NEQ -> "!="
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | EOF -> "end of input"

let keyword s =
  match String.lowercase_ascii s with
  | "select" -> Some SELECT
  | "from" -> Some FROM
  | "where" -> Some WHERE
  | "in" -> Some IN
  | "as" -> Some AS
  | "exists" -> Some EXISTS
  | "order" -> Some ORDER
  | "by" -> Some BY
  | "union" -> Some UNION
  | "intersect" -> Some INTERSECT
  | "except" -> Some EXCEPT
  | "newobject" -> Some NEWOBJECT
  | "date" -> Some DATE
  | "true" -> Some TRUE
  | "false" -> Some FALSE
  | _ -> None

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

let is_digit c = c >= '0' && c <= '9'

(* 1-based line/column of a byte offset; inputs are query-sized, so the
   rescan per token is immaterial. *)
let loc_of input off =
  let line = ref 1 and bol = ref 0 in
  String.iteri
    (fun i c ->
      if i < off && c = '\n' then begin
        incr line;
        bol := i + 1
      end)
    input;
  Loc.make ~line:!line ~col:(off - !bol + 1)

let tokenize_pos input =
  let n = String.length input in
  let exception Lex_error of string in
  let pos = ref 0 in
  let peek () = if !pos < n then Some input.[!pos] else None in
  let advance () = incr pos in
  let error_at off fmt =
    Format.kasprintf
      (fun m -> raise (Lex_error (Printf.sprintf "%s: %s" (Loc.to_string (loc_of input off)) m)))
      fmt
  in
  let error fmt = error_at !pos fmt in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | Some '-' when !pos + 1 < n && input.[!pos + 1] = '-' ->
      (* line comment *)
      while !pos < n && input.[!pos] <> '\n' do
        advance ()
      done;
      skip_ws ()
    | Some _ | None -> ()
  in
  let lex_ident () =
    let start = !pos in
    while !pos < n && is_ident_char input.[!pos] do
      advance ()
    done;
    let s = String.sub input start (!pos - start) in
    match keyword s with Some t -> t | None -> IDENT s
  in
  let lex_number () =
    let start = !pos in
    while !pos < n && is_digit input.[!pos] do
      advance ()
    done;
    (* A '.' only continues the number if followed by a digit; otherwise
       it is the path separator (so [3.x] never arises: paths start with
       identifiers). *)
    if !pos + 1 < n && input.[!pos] = '.' && is_digit input.[!pos + 1] then begin
      advance ();
      while !pos < n && is_digit input.[!pos] do
        advance ()
      done;
      FLOAT (float_of_string (String.sub input start (!pos - start)))
    end
    else INT (int_of_string (String.sub input start (!pos - start)))
  in
  let lex_string () =
    advance ();
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> error "unterminated string literal"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
        | None -> error "unterminated escape")
      | Some c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    STRING (Buffer.contents buf)
  in
  let next_token () =
    skip_ws ();
    let start = !pos in
    let t =
      match peek () with
    | None -> EOF
    | Some c when is_ident_start c -> lex_ident ()
    | Some c when is_digit c -> lex_number ()
    | Some '"' -> lex_string ()
    | Some '(' ->
      advance ();
      LPAREN
    | Some ')' ->
      advance ();
      RPAREN
    | Some ',' ->
      advance ();
      COMMA
    | Some '.' ->
      advance ();
      DOT
    | Some ';' ->
      advance ();
      SEMI
    | Some '*' ->
      advance ();
      STAR
    | Some '&' ->
      advance ();
      if peek () = Some '&' then begin
        advance ();
        ANDAND
      end
      else error_at (!pos - 1) "expected &&"
    | Some '=' ->
      advance ();
      if peek () = Some '=' then begin
        advance ();
        EQEQ
      end
      else error_at (!pos - 1) "expected == (ZQL uses == for equality)"
    | Some '!' ->
      advance ();
      if peek () = Some '=' then begin
        advance ();
        NEQ
      end
      else error_at (!pos - 1) "expected !="
    | Some '<' ->
      advance ();
      if peek () = Some '=' then begin
        advance ();
        LE
      end
      else LT
    | Some '>' ->
      advance ();
      if peek () = Some '=' then begin
        advance ();
        GE
      end
      else GT
      | Some c -> error "unexpected character %C" c
    in
    (t, loc_of input start)
  in
  match
    let rec all acc =
      match next_token () with
      | (EOF, _) as t -> List.rev (t :: acc)
      | t -> all (t :: acc)
    in
    all []
  with
  | tokens -> Ok tokens
  | exception Lex_error msg -> Error msg

let tokenize input = Result.map (List.map fst) (tokenize_pos input)
