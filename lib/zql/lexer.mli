(** Hand-written lexer for ZQL. *)

type token =
  | SELECT
  | FROM
  | WHERE
  | IN
  | AS
  | EXISTS
  | ORDER
  | BY
  | UNION
  | INTERSECT
  | EXCEPT
  | NEWOBJECT
  | DATE
  | TRUE
  | FALSE
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | LPAREN
  | RPAREN
  | COMMA
  | DOT
  | SEMI
  | STAR
  | ANDAND
  | EQEQ
  | NEQ
  | LT
  | LE
  | GT
  | GE
  | EOF

val token_name : token -> string

val tokenize_pos : string -> ((token * Loc.t) list, string) result
(** Whole-input tokenization with the source location of each token's
    first character; keywords are case-insensitive, identifiers keep
    their case. Errors carry a ["line L, column C"] prefix. *)

val tokenize : string -> (token list, string) result
(** {!tokenize_pos} without the locations. *)
