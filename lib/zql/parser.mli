(** Recursive-descent parser for ZQL.

    Grammar (conditions are conjunctive, as in the paper's simplification
    stage; disjunction is rejected at the lexer):

    {v
    query  ::= core (setop core)* [";"]
    setop  ::= UNION | INTERSECT | EXCEPT      -- left-associative
    core   ::= SELECT select FROM range ("," range)*
               [WHERE cond] [ORDER BY path]
    select ::= "*" | Newobject "(" item ("," item)* ")" | item ("," item)*
    item   ::= expr [AS ident]
    range  ::= [ident] ident IN source      -- optional class annotation
    source ::= ident                        -- collection
             | ident ("." ident)+           -- set-valued path
    cond   ::= atom ("&&" atom)*
    atom   ::= EXISTS "(" query ")" | expr cmp expr
    expr   ::= path | int | float | string | true | false
             | date "(" int "," int "," int ")"
    v} *)

val parse : string -> (Ast.query, string) result

val parse_exn : string -> Ast.query
(** @raise Invalid_argument on syntax errors. *)
