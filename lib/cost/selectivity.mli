(** Selectivity estimation.

    The paper's rule: "If no index can be used to assist in selectivity
    estimation, selectivity of selection predicates is assumed to be 10%."
    We implement three tiers for an equality atom on [binding.field]:

    + a path/field index on the provenance path of the operand supplies
      [1 / distinct keys];
    + a catalog distinct-value statistic on the class attribute supplies
      [1 / distinct values];
    + otherwise the configured default (10%).

    Reference-equality atoms (the output of Mat-to-Join) use
    [1 / cardinality of the referenced class] when the class has a
    scannable collection, reflecting that each source object references
    exactly one target. *)

val feedback_sel :
  Config.t -> env:Lprops.t -> Oodb_algebra.Pred.atom -> float option
(** Observed selectivity from {!Config.feedback} for the atom's
    canonical {!Fbkey} key (clamped; counts a feedback hit). [None]
    when no feedback is installed or nothing was observed. Overrides
    are per-atom only: whole-conjunction overrides would break the
    compositionality the memo consistency checker enforces. *)

val atom :
  Config.t -> Oodb_catalog.Catalog.t -> env:Lprops.t -> Oodb_algebra.Pred.atom -> float
(** Constant-folds const-const atoms, then consults {!feedback_sel},
    then falls back to the model tiers below. *)

val pred :
  Config.t -> Oodb_catalog.Catalog.t -> env:Lprops.t -> Oodb_algebra.Pred.t -> float
(** Product over atoms (independence assumption). *)
