module Pred = Oodb_algebra.Pred
module Value = Oodb_storage.Value

(* Tagged serialization, like the plan-cache fingerprint's: distinct
   values must produce distinct keys ([Str "1"] vs [Int 1]). *)
let value_key v =
  let buf = Buffer.create 16 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let rec go = function
    | Value.Null -> add "null"
    | Value.Bool b -> add "bool:%b" b
    | Value.Int i -> add "int:%d" i
    | Value.Float f -> add "float:%h" f
    | Value.Str s -> add "str:%S" s
    | Value.Date d -> add "date:%d" d
    | Value.Ref oid -> add "ref:%d" oid
    | Value.Set vs ->
      add "set[";
      List.iter
        (fun v ->
          go v;
          add ";")
        vs;
      add "]"
  in
  go v;
  Buffer.contents buf

let cmp_tag = function
  | Pred.Eq -> "eq"
  | Pred.Ne -> "ne"
  | Pred.Lt -> "lt"
  | Pred.Le -> "le"
  | Pred.Gt -> "gt"
  | Pred.Ge -> "ge"

(* Operands are keyed by the CLASS of their binding, never the binding
   name or its provenance: binder names differ across queries, and
   provenance differs across memo forms of the same group (a Mat chain
   vs the join Mat-to-Join rewrites it into), while the typing
   invariant guarantees one class per group — so class-based keys make
   an override apply identically to every form. A binding whose class
   cannot be resolved yields no key (no feedback). *)
let operand_key ~env = function
  | Pred.Const v -> Some ("c:" ^ value_key v)
  | Pred.Field (b, f) ->
    Option.map
      (fun cls -> Printf.sprintf "f:%S.%S" cls f)
      (Lprops.class_of env b)
  | Pred.Self b -> Option.map (fun cls -> "s:" ^ cls) (Lprops.class_of env b)

let make cmp l r =
  let cmp, l, r =
    if String.compare l r <= 0 then (cmp, l, r) else (Pred.flip cmp, r, l)
  in
  Printf.sprintf "%s(%s|%s)" (cmp_tag cmp) l r

let atom ~env (a : Pred.atom) =
  match operand_key ~env a.Pred.lhs, operand_key ~env a.Pred.rhs with
  | Some l, Some r -> Some (make a.Pred.cmp l r)
  | _ -> None

let eq_const ~cls ~field v =
  make Pred.Eq (Printf.sprintf "f:%S.%S" cls field) ("c:" ^ value_key v)

let fanout ~cls ~field = Printf.sprintf "%S.%S" cls field
