(** Tunable constants of the cost model and execution environment.

    The defaults are calibrated against the paper's anticipated execution
    times (its testbed was a 25 MHz DECstation 5000/125 with 32 MB of
    memory); EXPERIMENTS.md records how close each reproduced number
    lands. Everything is a plain record so experiments and property tests
    can sweep values. *)

type feedback = {
  fb_sel : (string, float) Hashtbl.t;
      (** canonical atom key ({!Fbkey.atom}) to observed selectivity *)
  fb_card : (string, float) Hashtbl.t;
      (** collection name to observed cardinality *)
  fb_fanout : (string, float) Hashtbl.t;
      (** [class.field] ({!Fbkey.fanout}) to observed set-valued fanout *)
  mutable fb_hits : int;
      (** applied overrides, cumulative; sample deltas around one
          derivation to attribute an estimate to feedback vs the model *)
}
(** Runtime cardinality feedback: observed statistics consulted by
    {!Selectivity} and {!Estimator} {e before} the synthetic model. Keys
    are canonical and class-based so overrides are independent of the
    memo form a predicate appears in (the memo consistency checker
    re-derives with the same config and must agree). Plain hashtables,
    no closures: a config carrying feedback stays marshalable. Built
    from harvested executions by [Oodb_obs.Feedback]. *)

type t = {
  page_bytes : int;  (** disk page size *)
  seq_io : float;  (** seconds per sequentially read page *)
  rand_io : float;  (** seconds per randomly read page *)
  asm_io_floor : float;
      (** seconds per assembly fetch with an unbounded window: the
          elevator pattern removes most seek time but not rotation and
          transfer *)
  assembly_window : int;  (** default window of open references *)
  cpu_tuple : float;
      (** seconds of CPU per tuple handled by an operator under the
          tuple-at-a-time protocol (work plus one boundary call) *)
  cpu_call : float;
      (** the operator-boundary (closure-call) share of [cpu_tuple],
          amortized over a batch by the vectorized engine *)
  batch_size : int;
      (** tuples per batch flowing between execution operators; 1
          degrades to the classic Volcano tuple-at-a-time protocol *)
  cpu_pred : float;  (** seconds per predicate-atom evaluation *)
  cpu_hash : float;  (** seconds per hash-table insert or probe *)
  memory_bytes : int;  (** budget for hash tables before spilling *)
  buffer_pages : int;  (** buffer-pool capacity used by the executor *)
  default_selectivity : float;  (** the paper's 10% fallback *)
  range_selectivity : float;  (** fallback for inequality predicates *)
  feedback : feedback option;
      (** observed-statistics overrides (default [None]: pure model).
          Deliberately excluded from plan-cache fingerprints — feedback
          corrects a plan {e under the same query identity}, so the
          re-planned winner overwrites the stale cache entry *)
}

val default : t
(** [default.batch_size] honors the [OODB_BATCH_SIZE] environment
    variable (default 64).
    @raise Invalid_argument at module load if it is set but not a
    positive integer. *)

val default_batch_size : int
(** What [OODB_BATCH_SIZE] resolved to. *)

val per_tuple : t -> float
(** Per-tuple CPU seconds of operator overhead with the boundary-call
    share amortized over [batch_size]: exactly [cpu_tuple] at batch
    size 1, approaching [cpu_tuple - cpu_call] for large batches. *)

val assembly_io : t -> window:int -> float
(** Per-fetch I/O seconds for the assembly algorithm with the given
    window: [rand_io] when the window is 1 (one object at a time, no seek
    optimization — the degraded variant in the paper's Table 2) and
    approaching [asm_io_floor] as the window grows. *)

val pages : t -> bytes:float -> float
(** Number of pages occupied by [bytes] of densely packed data. *)

val feedback_create : unit -> feedback
(** Fresh, empty feedback tables. *)

val feedback_size : feedback -> int
(** Total overrides across all three tables. *)

val fb_sel_find : t -> string -> float option
(** Observed selectivity for a canonical atom key; increments [fb_hits]
    when an override is found (same for the other finders). *)

val fb_card_find : t -> string -> float option

val fb_fanout_find : t -> string -> float option

val fb_hits : t -> int
(** Current override counter ([0] without feedback). *)
