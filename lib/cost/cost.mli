(** Cost abstract data type.

    As in the paper, cost is "encapsulated in an abstract data type" and
    plans are compared on anticipated total execution time; the I/O and
    CPU components are kept separate only for explanation output. *)

type t = { io : float; cpu : float }
(** Both components in seconds. *)

val zero : t

val io : float -> t

val cpu : float -> t

val make : io:float -> cpu:float -> t

val add : t -> t -> t

val sub : t -> t -> t
(** Componentwise difference; used for branch-and-bound limit budgets. *)

val slack : t
(** One nanosecond ({!total}); the tolerance the search engine adds to
    a branch-and-bound limit before discarding a candidate or subgoal.
    Limits propagate through {!sub}, whose componentwise rounding
    drifts from the exact algebraic value by ulps ([1e-17]-ish at
    second-scale costs); a discard exactly at the boundary would then
    drop plans the exhaustive enumeration keeps, breaking the
    guided-equals-exhaustive winner-cost contract. [1e-9] is ~8 orders
    of magnitude above the drift and far below any modelled cost
    difference between genuinely distinct plans. *)

val sum : t list -> t

val total : t -> float

val compare : t -> t -> int
(** By total seconds; exact ties broken by the io component, then cpu
    (the rounded sum [io +. cpu] does not determine the components).
    Equal-total plans with different io/cpu splits
    are genuine ties for the cost model, but the search keeps whichever
    it meets first — and a parent plan folds the chosen child's io and
    cpu into its own sums, so two tied children perturb the parent's
    total at the ulp level. The tie-break makes the winner independent
    of enumeration order, which the guided-equals-exhaustive
    winner-cost contract relies on. *)

val ( <= ) : t -> t -> bool

val infinite : t
(** Upper bound used as the initial branch-and-bound limit. *)

val is_finite : t -> bool

val pp : Format.formatter -> t -> unit
(** e.g. [119.60s (io 118.52 + cpu 1.08)]. *)

type delta = { d_io : float; d_cpu : float; d_total : float; d_ratio : float }
(** Decomposed gap between two plans' costs: componentwise loser − winner
    differences, the total-seconds difference, and the loser/winner
    total ratio ([1.0] for two zero-cost plans, [infinity] when only the
    winner is free). The explanation layer ([why-not]'s
    derived-but-lost report) uses this to say {e where} the gap lives. *)

val delta : winner:t -> loser:t -> delta

val pp_delta : Format.formatter -> delta -> unit
(** e.g. [+12.40s (io +12.10, cpu +0.30; 11.6x)]. *)
