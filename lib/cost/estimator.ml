module Catalog = Oodb_catalog.Catalog
module Schema = Oodb_catalog.Schema
module Logical = Oodb_algebra.Logical
module Pred = Oodb_algebra.Pred

let class_bytes cat cls =
  let sizes =
    Catalog.collections cat
    |> List.filter_map (fun co ->
           if co.Catalog.co_class = cls then Some co.Catalog.co_obj_bytes else None)
  in
  match sizes with
  | [] -> 128.0
  | sizes -> float_of_int (List.fold_left max 0 sizes)

let fail fmt = Format.kasprintf invalid_arg fmt

let one_input = function [ i ] -> i | _ -> fail "Estimator.derive: expected one input"

let two_inputs = function
  | [ l; r ] -> (l, r)
  | _ -> fail "Estimator.derive: expected two inputs"

let target_class cat env src field =
  match Lprops.class_of env src with
  | None -> fail "Estimator.derive: binding %s not in scope" src
  | Some cls -> (
    match Schema.follow (Catalog.schema cat) ~cls field with
    | Some target -> (cls, target)
    | None -> fail "Estimator.derive: %s.%s is not a reference" cls field)

let derive cfg cat (op : Logical.op) inputs : Lprops.t =
  match op with
  | Logical.Get { coll; binding } -> (
    match Catalog.find_collection cat coll with
    | None -> fail "Estimator.derive: unknown collection %s" coll
    | Some co ->
      let card =
        match Config.fb_card_find cfg coll with
        | Some c -> c
        | None -> float_of_int co.Catalog.co_card
      in
      { Lprops.card;
        bindings =
          [ ( binding,
              { Lprops.b_class = co.Catalog.co_class;
                b_bytes = float_of_int co.Catalog.co_obj_bytes;
                b_source = Lprops.From_get coll } ) ] })
  | Logical.Select pred ->
    let input = one_input inputs in
    let sel = Selectivity.pred cfg cat ~env:input pred in
    { input with Lprops.card = input.Lprops.card *. sel }
  | Logical.Project ps ->
    let input = one_input inputs in
    let used = List.concat_map (fun p -> Pred.bindings_of_operand p.Logical.p_expr) ps in
    { input with
      Lprops.bindings = List.filter (fun (b, _) -> List.mem b used) input.Lprops.bindings }
  | Logical.Join pred ->
    let l, r = two_inputs inputs in
    let env = { Lprops.card = 0.0; bindings = l.Lprops.bindings @ r.Lprops.bindings } in
    let sel = Selectivity.pred cfg cat ~env pred in
    { Lprops.card = l.Lprops.card *. r.Lprops.card *. sel; bindings = env.Lprops.bindings }
  | Logical.Cross ->
    let l, r = two_inputs inputs in
    { Lprops.card = l.Lprops.card *. r.Lprops.card;
      bindings = l.Lprops.bindings @ r.Lprops.bindings }
  | Logical.Mat { src; field; out } ->
    let input = one_input inputs in
    let target =
      match field with
      | Some field -> snd (target_class cat input src field)
      | None -> (
        (* materializing the reference binding itself: same class *)
        match Lprops.class_of input src with
        | Some cls -> cls
        | None -> fail "Estimator.derive: binding %s not in scope" src)
    in
    { input with
      Lprops.bindings =
        input.Lprops.bindings
        @ [ ( out,
              { Lprops.b_class = target;
                b_bytes = class_bytes cat target;
                b_source = Lprops.From_mat (src, field) } ) ] }
  | Logical.Unnest { src; field; out } ->
    let input = one_input inputs in
    let cls, target = target_class cat input src field in
    let fanout =
      match Config.fb_fanout_find cfg (Fbkey.fanout ~cls ~field) with
      | Some f -> f
      | None -> Catalog.avg_set_size cat ~cls ~field
    in
    { Lprops.card = input.Lprops.card *. fanout;
      bindings =
        input.Lprops.bindings
        @ [ ( out,
              { Lprops.b_class = target;
                b_bytes = class_bytes cat target;
                b_source = Lprops.From_unnest (src, field) } ) ] }
  | Logical.Union ->
    let l, r = two_inputs inputs in
    { l with Lprops.card = l.Lprops.card +. r.Lprops.card }
  | Logical.Intersect ->
    let l, r = two_inputs inputs in
    { l with Lprops.card = Float.min l.Lprops.card r.Lprops.card }
  | Logical.Difference ->
    let l, _ = two_inputs inputs in
    l

let rec derive_expr cfg cat (t : Logical.t) =
  derive cfg cat t.Logical.op (List.map (derive_expr cfg cat) t.Logical.inputs)
