module Catalog = Oodb_catalog.Catalog
module Pred = Oodb_algebra.Pred

let clamp s = Float.max 1e-9 (Float.min 1.0 s)

(* Distinct-value estimate for [binding.field], preferring index
   statistics on the provenance path over class statistics.

   The estimate must not depend on HOW the binding entered scope: a
   transformation rule may turn [Mat e] into a join with [Get Employees]
   and both forms share a memo group, so both must price [e.name] the
   same (the memo consistency checker enforces this). When the
   provenance chain is lost (unnest, projection), a single-attribute
   index on any collection of the binding's class supplies the same
   statistic the [Get]-sourced form would find through its provenance. *)
let distinct_of _cfg cat ~env binding field =
  let class_based () =
    match Lprops.class_of env binding with
    | None -> None
    | Some cls -> (
      match Catalog.distinct cat ~cls ~field with
      | Some d -> Some (float_of_int d)
      | None ->
        Catalog.collections cat
        |> List.find_map (fun co ->
               if co.Catalog.co_class = cls then
                 Option.map
                   (fun ix -> float_of_int ix.Catalog.ix_distinct)
                   (Catalog.find_index cat ~coll:co.Catalog.co_name ~path:[ field ])
               else None))
  in
  match Lprops.provenance env binding with
  | Some (coll, path) -> (
    match Catalog.find_index cat ~coll ~path:(path @ [ field ]) with
    | Some ix -> Some (float_of_int ix.Catalog.ix_distinct)
    | None -> class_based ())
  | None -> class_based ()

(* Observed selectivity from runtime feedback, keyed per ATOM — never
   per conjunction. A conjunction split across a Select and a Join must
   estimate exactly like the merged form (product of the same atom
   factors), so whole-predicate overrides would break the memo
   consistency checker; per-atom overrides compose by construction. *)
let feedback_sel (cfg : Config.t) ~env (a : Pred.atom) =
  match cfg.Config.feedback with
  | None -> None
  | Some _ -> (
    match Fbkey.atom ~env a with
    | None -> None
    | Some key -> Option.map clamp (Config.fb_sel_find cfg key))

let atom (cfg : Config.t) cat ~env (a : Pred.atom) =
  let eq_field_sel binding field =
    match distinct_of cfg cat ~env binding field with
    | Some d when d > 0.0 -> 1.0 /. d
    | Some _ | None -> cfg.default_selectivity
  in
  let identity_sel target =
    (* one reference matches exactly one object of the target class *)
    match Lprops.class_of env target with
    | Some cls -> (
      match Catalog.class_cardinality cat cls with
      | Some n when n > 0 -> 1.0 /. float_of_int n
      | Some _ | None -> cfg.default_selectivity)
    | None -> cfg.default_selectivity
  in
  let const_eval =
    match a.Pred.lhs, a.Pred.rhs with
    | Pred.Const l, Pred.Const r ->
      let c = Oodb_storage.Value.compare l r in
      let holds =
        match a.Pred.cmp with
        | Pred.Eq -> c = 0
        | Pred.Ne -> c <> 0
        | Pred.Lt -> c < 0
        | Pred.Le -> c <= 0
        | Pred.Gt -> c > 0
        | Pred.Ge -> c >= 0
      in
      Some (if holds then 1.0 else 0.0)
    | _ -> None
  in
  match const_eval with
  | Some s -> clamp s
  | None ->
  match feedback_sel cfg ~env a with
  | Some s -> s
  | None ->
  let sel =
    match a.Pred.cmp with
    | Pred.Eq -> (
      match Pred.ref_eq_sides a with
      | Some (_src, _field, target) -> identity_sel target
      | None -> (
        match a.Pred.lhs, a.Pred.rhs with
        | Pred.Field (b, f), Pred.Const _ | Pred.Const _, Pred.Field (b, f) -> eq_field_sel b f
        | Pred.Field (b1, f1), Pred.Field (b2, f2) ->
          (* equijoin-style: 1 / max of the distinct counts, per System R *)
          let d1 = distinct_of cfg cat ~env b1 f1 and d2 = distinct_of cfg cat ~env b2 f2 in
          (match d1, d2 with
          | Some d1, Some d2 -> 1.0 /. Float.max d1 d2
          | Some d, None | None, Some d -> 1.0 /. d
          | None, None -> cfg.default_selectivity)
        | Pred.Self b1, Pred.Self b2 ->
          if b1 = b2 then 1.0 else identity_sel b2
        | _ -> cfg.default_selectivity))
    | Pred.Ne -> 1.0 -. cfg.default_selectivity
    | Pred.Lt | Pred.Le | Pred.Gt | Pred.Ge -> cfg.range_selectivity
  in
  clamp sel

(* No clamp on the product: each factor is already clamped, and flooring
   the product would make estimation non-compositional — a conjunction
   split across a Select and a Join (or across two Joins) must estimate
   exactly like the merged form, or equivalent memo groups derive
   different cardinalities (caught by the memo consistency checker). *)
let pred cfg cat ~env atoms =
  List.fold_left (fun acc a -> acc *. atom cfg cat ~env a) 1.0 atoms
