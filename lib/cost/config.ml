(* Runtime cardinality feedback: observed statistics the estimator
   consults before the synthetic model. Keys are canonical and
   class-based (see Fbkey), so the override does not depend on which
   memo form a predicate appears in — the memo consistency checker
   re-derives with the same config and must agree. Kept as plain
   hashtables (no closures) so a config carrying feedback stays
   marshalable and structurally comparable. [fb_hits] counts applied
   overrides; samplers take deltas around a derivation to tag nodes
   with their estimate's source. *)
type feedback = {
  fb_sel : (string, float) Hashtbl.t;  (** atom key -> observed selectivity *)
  fb_card : (string, float) Hashtbl.t;  (** collection -> observed cardinality *)
  fb_fanout : (string, float) Hashtbl.t;  (** class.field -> observed set fanout *)
  mutable fb_hits : int;
}

type t = {
  page_bytes : int;
  seq_io : float;
  rand_io : float;
  asm_io_floor : float;
  assembly_window : int;
  cpu_tuple : float;
  cpu_call : float;
  batch_size : int;
  cpu_pred : float;
  cpu_hash : float;
  memory_bytes : int;
  buffer_pages : int;
  default_selectivity : float;
  range_selectivity : float;
  feedback : feedback option;
}

let feedback_create () =
  { fb_sel = Hashtbl.create 16;
    fb_card = Hashtbl.create 16;
    fb_fanout = Hashtbl.create 16;
    fb_hits = 0 }

let feedback_size fb =
  Hashtbl.length fb.fb_sel + Hashtbl.length fb.fb_card + Hashtbl.length fb.fb_fanout

let fb_find table t key =
  match t.feedback with
  | None -> None
  | Some fb -> (
    match Hashtbl.find_opt (table fb) key with
    | Some v ->
      fb.fb_hits <- fb.fb_hits + 1;
      Some v
    | None -> None)

let fb_sel_find t key = fb_find (fun fb -> fb.fb_sel) t key

let fb_card_find t key = fb_find (fun fb -> fb.fb_card) t key

let fb_fanout_find t key = fb_find (fun fb -> fb.fb_fanout) t key

let fb_hits t = match t.feedback with None -> 0 | Some fb -> fb.fb_hits

(* The execution engine's default batch size, shared with the cost
   model so anticipated CPU tracks the engine actually run. *)
let default_batch_size =
  match Sys.getenv_opt "OODB_BATCH_SIZE" with
  | None | Some "" -> 64
  | Some s -> (
    match int_of_string_opt s with
    | Some n when n >= 1 -> n
    | _ -> invalid_arg (Printf.sprintf "OODB_BATCH_SIZE: not a positive integer: %s" s))

(* Calibrated against the paper's DECstation 5000/125 era: ~20 ms
   sequential and ~30 ms random page access, ~0.5 ms of CPU per tuple per
   operator on the 25 MHz processor. With these constants the anticipated
   times for the paper's queries land within a small factor of Tables 2-3
   (see EXPERIMENTS.md). *)
let default =
  { page_bytes = 4096;
    seq_io = 0.020;
    rand_io = 0.030;
    asm_io_floor = 0.008;
    assembly_window = 16;
    cpu_tuple = 5.0e-4;
    cpu_call = 2.0e-4;
    batch_size = default_batch_size;
    cpu_pred = 1.0e-4;
    cpu_hash = 5.0e-4;
    memory_bytes = 4 * 1024 * 1024;
    buffer_pages = 1024;
    default_selectivity = 0.10;
    range_selectivity = 0.33;
    feedback = None }

(* [cpu_tuple] is calibrated for the tuple-at-a-time protocol: each
   tuple pays the operator's work plus one closure call per operator
   boundary. Batching spreads the boundary share [cpu_call] over
   [batch_size] tuples; at batch size 1 this is exactly [cpu_tuple]. *)
let per_tuple t =
  let b = float_of_int (max 1 t.batch_size) in
  t.cpu_tuple -. t.cpu_call +. (t.cpu_call /. b)

let assembly_io t ~window =
  let window = max 1 window in
  t.asm_io_floor +. ((t.rand_io -. t.asm_io_floor) /. float_of_int window)

let pages t ~bytes = Float.max 1.0 (Float.ceil (bytes /. float_of_int t.page_bytes))
