(** Canonical keys for runtime cardinality feedback.

    A feedback key must identify "the same predicate atom" across
    queries, plan shapes and memo forms. Binder names are
    alpha-varying and provenance chains differ between a Mat spine and
    its Mat-to-Join rewrite, so operands are keyed by the {e class} of
    their binding (one class per memo group, enforced by the typing
    hook) plus the field; constants carry a tagged serialization.
    Atoms are oriented smaller-operand-left with the comparison
    flipped, mirroring the plan-cache fingerprint, so [a = b] and
    [b = a] share a key. *)

val atom : env:Lprops.t -> Oodb_algebra.Pred.atom -> string option
(** [None] when a binding's class cannot be resolved in [env] — such an
    atom gets no feedback. *)

val eq_const : cls:string -> field:string -> Oodb_storage.Value.t -> string
(** The key {!atom} would build for [binding.field = const] where
    [binding] has class [cls] — used by the index-scan paths, which
    hold the matched key value rather than a predicate atom. *)

val fanout : cls:string -> field:string -> string
(** Key for the average set-valued fanout of [cls.field] (Unnest). *)
