type t = { io : float; cpu : float }

let zero = { io = 0.0; cpu = 0.0 }

let io io = { io; cpu = 0.0 }

let cpu cpu = { io = 0.0; cpu }

let make ~io ~cpu = { io; cpu }

let add a b = { io = a.io +. b.io; cpu = a.cpu +. b.cpu }

let sub a b = { io = a.io -. b.io; cpu = a.cpu -. b.cpu }

let slack = { io = 1e-9; cpu = 0.0 }

let sum = List.fold_left add zero

let total t = t.io +. t.cpu

let compare a b =
  let c = Float.compare (total a) (total b) in
  if c <> 0 then c
  else
    let c = Float.compare a.io b.io in
    if c <> 0 then c else Float.compare a.cpu b.cpu

let ( <= ) a b = compare a b <= 0

let infinite = { io = Float.infinity; cpu = 0.0 }

let is_finite t = Float.is_finite (total t)

let pp ppf t =
  if not (is_finite t) then Format.pp_print_string ppf "inf"
  else Format.fprintf ppf "%.2fs (io %.2f + cpu %.2f)" (total t) t.io t.cpu
