type t = { io : float; cpu : float }

let zero = { io = 0.0; cpu = 0.0 }

let io io = { io; cpu = 0.0 }

let cpu cpu = { io = 0.0; cpu }

let make ~io ~cpu = { io; cpu }

let add a b = { io = a.io +. b.io; cpu = a.cpu +. b.cpu }

let sub a b = { io = a.io -. b.io; cpu = a.cpu -. b.cpu }

let slack = { io = 1e-9; cpu = 0.0 }

let sum = List.fold_left add zero

let total t = t.io +. t.cpu

let compare a b =
  let c = Float.compare (total a) (total b) in
  if c <> 0 then c
  else
    let c = Float.compare a.io b.io in
    if c <> 0 then c else Float.compare a.cpu b.cpu

let ( <= ) a b = compare a b <= 0

let infinite = { io = Float.infinity; cpu = 0.0 }

let is_finite t = Float.is_finite (total t)

let pp ppf t =
  if not (is_finite t) then Format.pp_print_string ppf "inf"
  else Format.fprintf ppf "%.2fs (io %.2f + cpu %.2f)" (total t) t.io t.cpu

type delta = { d_io : float; d_cpu : float; d_total : float; d_ratio : float }

let delta ~winner ~loser =
  let d_io = loser.io -. winner.io and d_cpu = loser.cpu -. winner.cpu in
  let wt = total winner and lt = total loser in
  let d_ratio =
    if wt > 0.0 then lt /. wt else if lt > 0.0 then Float.infinity else 1.0
  in
  { d_io; d_cpu; d_total = lt -. wt; d_ratio }

let pp_delta ppf d =
  Format.fprintf ppf "+%.2fs (io %+.2f, cpu %+.2f; %.1fx)" d.d_total d.d_io d.d_cpu
    d.d_ratio
