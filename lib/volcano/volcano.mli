(** A re-implementation of the Volcano optimizer generator (Graefe &
    McKenna, ICDE 1993) as a generic OCaml library.

    Where the original translated a model description file into C source,
    here the data model is an OCaml module satisfying {!MODEL} and the
    optimizer implementor supplies transformation rules, implementation
    rules, enforcers and property/cost support functions as first-class
    values in a {!module-Make.spec}. The engine contributes what Volcano
    contributed: the memo structure, exhaustive logical closure under the
    transformation rules, and goal-directed top-down search over
    (group, required physical properties) pairs with memoization,
    branch-and-bound pruning, and enforcer introduction.

    The search is {e goal-directed}: it "considers only those subplans
    that can deliver the physical properties that are required by the
    algorithm of the containing plan" (paper §4), in contrast to
    bottom-up optimizers that keep all subplans with a priori
    "interesting" properties. *)

(** Kind-tagged packed ids: a table index in the high bits, a 2-bit kind
    tag (group / multi-expression / physical-memo entry) in the low bits.
    The memo stores its rows in flat growable tables indexed by these
    ids; packing lets heterogeneous worklists, journals and trace sinks
    carry one immediate [int] instead of a boxed variant. Public group
    ids remain plain table indexes (kind tag stripped) for backward
    compatibility. *)
module Id : sig
  type kind = Group | Mexpr | Phys

  val make : kind -> int -> int
  (** @raise Invalid_argument when the index overflows the tag field. *)

  val to_idx : int -> int

  val kind_of : int -> kind

  val pp : Format.formatter -> int -> unit
end

(** Data-model types and their basic operations. *)
module type MODEL = sig
  module Op : sig
    type t
    (** logical operator, including its arguments *)

    val arity : t -> int

    val equal : t -> t -> bool

    val hash : t -> int

    val pp : Format.formatter -> t -> unit
  end

  module Alg : sig
    type t
    (** physical algorithm or enforcer, including its arguments *)

    val pp : Format.formatter -> t -> unit
  end

  module Lprop : sig
    type t

    val pp : Format.formatter -> t -> unit
  end

  module Typ : sig
    type t
    (** inferred logical type of a group (schema, scoping, duplicate
        semantics) — the currency of the memo-wide type invariant *)

    val equal : t -> t -> bool

    val pp : Format.formatter -> t -> unit
  end

  module Pprop : sig
    type t
    (** physical property vector *)

    val equal : t -> t -> bool

    val hash : t -> int

    val satisfies : delivered:t -> required:t -> bool
    (** Does a plan delivering the first vector meet the second? Must be
        a partial order: reflexive and transitive. *)

    val pp : Format.formatter -> t -> unit
  end

  module Cost : sig
    type t

    val zero : t

    val add : t -> t -> t

    val sub : t -> t -> t
    (** Used only for branch-and-bound limit arithmetic. *)

    val slack : t
    (** Tolerance for branch-and-bound {e discard} decisions: a
        candidate, subgoal or memoized plan is refused only when it
        exceeds the limit by more than [slack]; anything at the boundary
        survives to the exact [compare] that picks the winner. Limits
        are propagated with [sub], whose componentwise rounding can
        drift from the exact algebraic value by a few ulps — without
        slack that drift makes the bounded search discard plans the
        exhaustive enumeration keeps (observed as one-ulp winner-cost
        differences). Pick [slack] far above the rounding drift and far
        below any real cost difference; [zero] is sound for optimality
        up to [slack] but loses exact-winner parity. *)

    val compare : t -> t -> int

    val infinite : t

    val pp : Format.formatter -> t -> unit
  end
end

module Make (M : MODEL) : sig
  type group = int
  (** Equivalence class of logical expressions in the memo. *)

  exception Type_violation of string
  (** Raised (only when a [typing] hook is installed) the moment the
      memo-wide type invariant breaks: a rule produced an expression
      that does not typecheck, or whose type differs from its group's,
      or two groups with different types were merged. The message names
      the offending operator and both types. *)

  type mexpr = { mop : M.Op.t; minputs : group list }
  (** Multi-expression: an operator over input groups. *)

  (** Expression produced by a transformation rule: fresh nodes over
      existing groups. *)
  type build =
    | Node of M.Op.t * build list
    | Ref of group

  type ctx
  (** Read access to the memo for rules. *)

  (** Structured search-trace events for the observability layer. Events
      are emitted at exactly the points where {!stats} and
      {!rule_counters} increment, so aggregating a complete event stream
      reproduces both: per rule, [tried] is the count of
      [Trule_tried]/[Irule_tried]/[Enforcer_tried] and [fired] the count
      of [Trule_fired]/[Candidate_costed]/[Enforcer_offered]. No events
      are constructed when no tracer is installed (the nil-sink fast
      path). *)
  type event =
    | Group_created of { group : group }
    | Mexpr_added of { group : group; op : M.Op.t }
    | Groups_merged of { winner : group; loser : group }
    | Trule_tried of { rule : string; group : group }
    | Trule_fired of { rule : string; group : group }
        (** the transformation added a new multi-expression to the group,
            or merged it with another group *)
    | Irule_tried of { rule : string; group : group }
    | Candidate_costed of { rule : string; group : group; alg : M.Alg.t; cost : M.Cost.t }
    | Pruned of { group : group; alg : M.Alg.t; cost : M.Cost.t; limit : M.Cost.t }
        (** branch-and-bound: the candidate's local cost already exceeds
            the current limit, so its inputs are never optimized *)
    | Subgoal_pruned of { group : group; required : M.Pprop.t }
        (** guided search: the budget left for this input subgoal was
            already negative, so the subgoal was never expanded (the
            exhaustive search would have recursed and failed — same
            winner, more work) *)
    | Enforcer_tried of { rule : string; group : group }
    | Enforcer_offered of { rule : string; group : group; alg : M.Alg.t; cost : M.Cost.t }
    | Enforcer_inserted of { group : group; alg : M.Alg.t }
        (** an offer's input subplan was found within the limit, so the
            enforcer actually entered a plan under consideration *)
    | Phys_memo_hit of { group : group; required : M.Pprop.t }

  val group_lprop : ctx -> group -> M.Lprop.t

  val group_typ : ctx -> group -> M.Typ.t option
  (** The group's inferred type; [None] when no [typing] hook was
      installed for the session. With a hook installed, every group with
      at least one multi-expression has a type. *)

  val group_exprs : ctx -> group -> mexpr list
  (** All multi-expressions currently in a group (logical closure runs to
      a fixpoint before physical search starts, so during implementation
      rules this is the complete set). *)

  val groups : ctx -> group list
  (** Canonical group ids (union-find roots), in creation order — the
      hook static analyses use to sweep the whole memo. *)

  val rule_counters : ctx -> (string * int * int) list
  (** Per-rule [(name, tried, fired)] instrumentation, sorted by name.
      "Fired" means: a transformation added a new multi-expression or
      merged two groups; an implementation rule produced a candidate; an
      enforcer produced an offer. Rules that were never invoked (e.g.
      disabled ones) have no entry. *)

  val closure_complete : ctx -> bool
  (** [false] when a [closure_fuel] budget interrupted the logical
      closure before its fixpoint — the signature of a non-terminating
      rule cycle when the budget was generous. *)

  type trule = {
    t_name : string;
    t_apply : ctx -> mexpr -> build list;
        (** alternatives equivalent to the given multi-expression; the
            engine inserts them into the same group *)
  }

  type candidate = {
    cand_alg : M.Alg.t;
    cand_inputs : (group * M.Pprop.t) list;
        (** input groups with the properties the algorithm requires of
            them; rules may reach through to descendant groups (that is
            how collapse-to-index-scan consumes a Select-Mat-Get spine
            with zero plan inputs) *)
    cand_cost : M.Cost.t;  (** local cost of the algorithm itself *)
    cand_delivers : M.Pprop.t;
  }

  type irule = {
    i_name : string;
    i_promise : int;
        (** scheduling hint for guided search: rules with higher promise
            are applied first (ties keep registration order), so cheap or
            high-yield algorithms tighten the branch-and-bound limit
            before expensive alternatives are costed. Ignored — and
            invisible in results — outside guided mode. *)
    i_apply : ctx -> required:M.Pprop.t -> mexpr -> candidate list;
  }

  type enforcer = {
    e_name : string;
    e_apply : ctx -> required:M.Pprop.t -> group -> (M.Alg.t * M.Pprop.t * M.Cost.t) list;
        (** ways to achieve [required] on this group's output: the
            enforcer algorithm, the (weaker) properties required of its
            input plan, and the enforcer's local cost *)
  }

  type spec = {
    derive_lprop : M.Op.t -> M.Lprop.t list -> M.Lprop.t;
    transformations : trule list;
    implementations : irule list;
    enforcers : enforcer list;
  }

  type plan = {
    alg : M.Alg.t;
    children : plan list;
    cost : M.Cost.t;  (** total cost of the subtree *)
    delivered : M.Pprop.t;
  }

  type stats = {
    groups : int;
    mexprs : int;
    trule_fired : int;  (** transformation applications that added a new mexpr *)
    trule_tried : int;
    candidates : int;  (** implementation candidates costed *)
    pruned_candidates : int;
        (** candidates whose local cost already exceeded the limit *)
    pruned_subgoals : int;
        (** input subgoals never expanded because the remaining budget
            was negative (guided search only; always 0 otherwise) *)
    enforcer_uses : int;
    phys_memo_hits : int;
    closure_steps : int;  (** multi-expressions popped during logical closure *)
    closure_complete : bool;  (** [false] iff a [closure_fuel] budget ran out *)
    prov_records : int;
        (** provenance rows recorded (mexpr lineage + candidate log);
            0 when provenance is off *)
    prov_dropped : int;
        (** candidate-log rows dropped at the provenance cap — nonzero
            means the lineage is truncated and explanations built on it
            are incomplete *)
  }

  type expr = Expr of M.Op.t * expr list
  (** Input logical expression tree. *)

  type result = {
    plan : plan option;
    stats : stats;
    root : group;
    ctx : ctx;  (** memo snapshot, for inspection and tests *)
  }

  type session
  (** One memo shared across any number of query roots: the logical
      groups {e and} the physical [(group, required-properties)] table
      both persist across {!register}/{!solve} calls, so a subexpression
      common to several queries is expanded by the transformation rules,
      costed and pruned once — memo-level multi-query optimization in
      the style of Roy et al. (SIGMOD 2000), restricted to sharing the
      search (plans themselves are still per-root trees). *)

  val session :
    ?disabled:string list ->
    ?pruning:bool ->
    ?guided:bool ->
    ?closure_fuel:int ->
    ?trace:(event -> unit) ->
    ?spans:Oodb_util.Span.t ->
    ?typing:(M.Op.t -> M.Typ.t list -> (M.Typ.t, string) Stdlib.result) ->
    ?provenance:bool ->
    ?provenance_cap:int ->
    spec ->
    session
  (** Fresh session with an empty memo.

      [provenance] (default [false]) turns on derivation-lineage
      recording in flat [Vec] side-tables parallel to the memo: every
      multi-expression records the transformation rule that produced it,
      the packed id of the multi-expression the rule fired on, and a
      global firing sequence number; every physical candidate and
      enforcer offer gets a candidate-log row whose disposition
      ({!disposition}) records whether it was kept, pruned (with the
      bound and margin at the decision point), or abandoned. Like
      [trace], the off state is a nil-sink fast path. [provenance_cap]
      (default [2^20]) bounds the candidate log; rows beyond it are
      counted in [stats.prov_dropped] instead of stored.

      [guided] (default [false]) turns on cost-bounded guided search:
      implementation rules are applied in [i_promise] order, all
      candidates of a goal are costed cheapest-local-cost first (so the
      branch-and-bound limit tightens before expensive alternatives),
      and an input subgoal whose remaining budget is already negative is
      skipped without being expanded. Guided search returns plans with
      exactly the same cost as the exhaustive search (skipping a
      dominated subgoal only avoids work the exhaustive search performs
      and then discards, since costs are non-negative) — it changes how
      fast the winner is found, never which winner.

      [closure_fuel] is a budget over
      the session's total closure steps (all [register] calls share it).
      Statistics and rule counters accumulate over the session's
      lifetime; each {!solve} result carries a snapshot. [spans]
      collects one hierarchical span per search phase — ["intern"] and
      ["logical-closure"] under each {!register}, ["physical-search"]
      under each {!solve} — category ["volcano"]; when absent no span
      events are constructed.

      [typing] installs the memo-wide type invariant: the hook derives
      the type of an operator from its input groups' types (or reports a
      type error). Every interned multi-expression is then checked —
      first mexpr of a group sets the group's type, every later one must
      derive an equal type, and merged groups must agree — and any
      failure raises {!Type_violation} at the exact rule firing that
      caused it. When absent, no types are derived and interning cost is
      unchanged. *)

  val session_ctx : session -> ctx

  val register : session -> expr -> group
  (** Intern a root expression into the shared memo and run the logical
      closure over whatever is new. Registering an expression whose every
      node is already present adds nothing, fires no rules, and simply
      returns the existing root group. For best sharing, register all
      roots of a batch before solving any of them: physical-memo entries
      computed before the logical memo grew are conservatively
      re-searched, so interleaving register and solve costs repeated
      search work (never a stale plan). *)

  val solve : session -> ?initial_limit:M.Cost.t -> group -> required:M.Pprop.t -> result
  (** Goal-directed physical search for a registered root. Solving the
      same (root, required) pair again is a pure memo hit: no rules are
      tried, no candidates costed. [result.stats] snapshots the
      session-cumulative statistics at completion. *)

  val run :
    ?disabled:string list ->
    ?pruning:bool ->
    ?guided:bool ->
    ?initial_limit:M.Cost.t ->
    ?closure_fuel:int ->
    ?trace:(event -> unit) ->
    ?spans:Oodb_util.Span.t ->
    ?typing:(M.Op.t -> M.Typ.t list -> (M.Typ.t, string) Stdlib.result) ->
    ?provenance:bool ->
    ?provenance_cap:int ->
    spec ->
    expr ->
    required:M.Pprop.t ->
    result
  (** Optimize [expr] for the required properties. [disabled] names
      transformation/implementation/enforcer rules to ignore (the paper
      "simulates" other optimizers this way). [pruning] (default [true])
      enables branch-and-bound cost limits. [initial_limit] seeds the
      branch-and-bound budget — e.g. with the cost of a plan found by a
      heuristic optimizer (Volcano's "heuristic guidance" mechanism);
      the result is [None] if no plan at or below the limit exists.
      [closure_fuel] bounds logical-closure work (multi-expressions
      popped); when it runs out, closure stops early and
      [stats.closure_complete] is [false] — the rule-set analyzer uses
      this to flag non-terminating rule cycles without hanging.
      [trace] receives every {!event} of the search as it happens (the
      sink must not re-enter the engine); when absent, no events are
      constructed. *)

  (** {2 Provenance}

      Derivation lineage recorded (when the session was created with
      [~provenance:true]) in flat side-tables parallel to the memo's
      packed representation. Two table families: per-mexpr lineage rows
      (producing rule, parent id, firing sequence) and the candidate log
      (one row per physical candidate or enforcer offer, with its final
      disposition). All of it is read-only after a solve. *)

  (** How a logged candidate ended. [margin] is the amount by which the
      bound was exceeded at the decision point (before the [Cost.slack]
      tolerance): for [Pruned_candidate] the candidate's local cost
      versus the limit then in force; for [Pruned_subgoal] the committed
      cost overrun when the remaining budget for the named subgoal went
      negative (guided mode only). [Abandoned] candidates never
      completed for another reason — the delivered property failed the
      requirement, or a child goal found no plan within its budget. *)
  type disposition =
    | Kept of M.Cost.t  (** completed with this full plan cost *)
    | Pruned_candidate of { limit : M.Cost.t; margin : M.Cost.t }
    | Pruned_subgoal of {
        subgoal : group;
        subgoal_required : M.Pprop.t;
        limit : M.Cost.t;
        margin : M.Cost.t;
      }
    | Abandoned

  type lineage = {
    lin_id : int;  (** packed mexpr id ({!Id} kind [Mexpr]) *)
    lin_group : group;  (** canonical owning group *)
    lin_op : M.Op.t;
    lin_inputs : group list;  (** canonical input groups *)
    lin_rule : string option;  (** producing trule; [None] = root intern *)
    lin_parent : int option;  (** packed mexpr id the rule fired on *)
    lin_seq : int;  (** global firing sequence number *)
    lin_alive : bool;
  }

  type cand_record = {
    cr_index : int;  (** stable index in the candidate log *)
    cr_seq : int;
    cr_group : group;
    cr_required : M.Pprop.t;
    cr_rule : string;  (** implementation rule or enforcer name *)
    cr_mexpr : int option;
        (** packed id of the implementing mexpr; [None] for enforcer
            offers *)
    cr_alg : M.Alg.t;
    cr_local_cost : M.Cost.t;
    cr_inputs : (group * M.Pprop.t) list;
    cr_disposition : disposition;
  }

  val provenance_on : ctx -> bool

  val lineage : ctx -> int -> lineage option
  (** Lineage row of a packed mexpr id; [None] when provenance is off or
      the id is unknown. *)

  val lineages : ctx -> lineage list
  (** All lineage rows, in mexpr-id (= interning) order. *)

  val rule_chain : ctx -> int -> string list
  (** Transformation-rule chain that derived the given mexpr, oldest
      firing first, following parent pointers back to a root intern.
      Empty when provenance is off. *)

  val cand_records : ctx -> cand_record list
  (** The whole candidate log, in costing order. *)

  val cand_record : ctx -> int -> cand_record option

  val provenance_dropped : ctx -> int
  (** Candidate-log rows dropped at the cap; nonzero means the log (and
      anything derived from it) is incomplete. *)

  val winner_of : ctx -> group -> required:M.Pprop.t -> cand_record option
  (** The candidate that produced the current best plan of a searched
      (group, required) goal — the root of the winner's derivation walk:
      its [cr_inputs] name the child goals, whose own winners are the
      plan's subtrees; its [cr_mexpr]'s {!rule_chain} is the logical
      derivation of the implemented expression. *)

  val pp_plan : Format.formatter -> plan -> unit

  val plan_to_tree : plan -> Oodb_util.Pretty.tree

  val pp_memo : Format.formatter -> ctx -> unit
  (** Dump of all groups and their multi-expressions. *)
end
