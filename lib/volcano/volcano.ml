module Pretty = Oodb_util.Pretty
module Span = Oodb_util.Span
module Json = Oodb_util.Json
module Vec = Oodb_util.Vec

module type MODEL = sig
  module Op : sig
    type t

    val arity : t -> int

    val equal : t -> t -> bool

    val hash : t -> int

    val pp : Format.formatter -> t -> unit
  end

  module Alg : sig
    type t

    val pp : Format.formatter -> t -> unit
  end

  module Lprop : sig
    type t

    val pp : Format.formatter -> t -> unit
  end

  module Typ : sig
    type t

    val equal : t -> t -> bool

    val pp : Format.formatter -> t -> unit
  end

  module Pprop : sig
    type t

    val equal : t -> t -> bool

    val hash : t -> int

    val satisfies : delivered:t -> required:t -> bool

    val pp : Format.formatter -> t -> unit
  end

  module Cost : sig
    type t

    val zero : t

    val add : t -> t -> t

    val sub : t -> t -> t

    val slack : t

    val compare : t -> t -> int

    val infinite : t

    val pp : Format.formatter -> t -> unit
  end
end

(* Kind-tagged packed ids: the table index in the high bits, a 2-bit kind
   tag in the low bits. Group ids stay plain table indexes in the public
   API (they predate this module and leak into traces, memo dumps and
   tests); multi-expressions and physical-memo entries, which are new as
   first-class table rows, carry tagged ids so a heterogeneous worklist
   or journal can tell them apart without context. *)
module Id = struct
  type kind = Group | Mexpr | Phys

  let bits = 2

  let max_idx = (1 lsl (Sys.int_size - 1 - bits)) - 1

  let tag = function Group -> 0 | Mexpr -> 1 | Phys -> 2

  let make k idx =
    if idx < 0 || idx > max_idx then invalid_arg "Volcano.Id.make: index overflow";
    (idx lsl bits) lor tag k

  let to_idx id = id lsr bits

  let kind_of id =
    match id land ((1 lsl bits) - 1) with
    | 0 -> Group
    | 1 -> Mexpr
    | 2 -> Phys
    | _ -> invalid_arg "Volcano.Id.kind_of: unknown tag"

  let pp ppf id =
    Format.fprintf ppf "%s%d"
      (match kind_of id with Group -> "g" | Mexpr -> "m" | Phys -> "p")
      (to_idx id)
end

module Make (M : MODEL) = struct
  type group = int

  exception Type_violation of string

  type mexpr = { mop : M.Op.t; minputs : group list }

  type build =
    | Node of M.Op.t * build list
    | Ref of group

  (* Structured search-trace events, emitted (only when a tracer is
     installed) at exactly the points where the statistics and per-rule
     counters increment — so any aggregation of a complete event stream
     reproduces [stats] and [rule_counters] by construction. *)
  type event =
    | Group_created of { group : group }
    | Mexpr_added of { group : group; op : M.Op.t }
    | Groups_merged of { winner : group; loser : group }
    | Trule_tried of { rule : string; group : group }
    | Trule_fired of { rule : string; group : group }
    | Irule_tried of { rule : string; group : group }
    | Candidate_costed of { rule : string; group : group; alg : M.Alg.t; cost : M.Cost.t }
    | Pruned of { group : group; alg : M.Alg.t; cost : M.Cost.t; limit : M.Cost.t }
    | Subgoal_pruned of { group : group; required : M.Pprop.t }
    | Enforcer_tried of { rule : string; group : group }
    | Enforcer_offered of { rule : string; group : group; alg : M.Alg.t; cost : M.Cost.t }
    | Enforcer_inserted of { group : group; alg : M.Alg.t }
    | Phys_memo_hit of { group : group; required : M.Pprop.t }

  (* ------------------------------------------------------------------ *)
  (* The exact structural intern key                                      *)

  (* op(inputs) with the operator interned to a small id and the input
     groups canonical: the common case (arity <= 2, ids within field
     width) packs into one immediate int — operator id in the high 24
     bits, each input group + 1 in a 19-bit field (0 = absent input) —
     and anything wider falls back to the boxed exact form. Either way
     equality is exact: the previous design's weak (op hash, inputs) key,
     whose collisions had to be resolved by scanning candidate groups'
     expression lists, is gone. *)
  type key = Packed of int | Wide of int * int list

  let input_bits = 19

  let max_packed_input = (1 lsl input_bits) - 2 (* +1 offset must still fit *)

  let max_packed_op = (1 lsl (Sys.int_size - 1 - (2 * input_bits))) - 1

  let make_key op_id (inputs : int array) =
    let n = Array.length inputs in
    if n <= 2 && op_id <= max_packed_op
       && (n < 1 || inputs.(0) <= max_packed_input)
       && (n < 2 || inputs.(1) <= max_packed_input)
    then
      let in0 = if n >= 1 then inputs.(0) + 1 else 0 in
      let in1 = if n >= 2 then inputs.(1) + 1 else 0 in
      Packed ((op_id lsl (2 * input_bits)) lor (in0 lsl input_bits) lor in1)
    else Wide (op_id, Array.to_list inputs)

  module Key_tbl = Hashtbl.Make (struct
    type t = key

    let equal a b =
      match a, b with
      | Packed x, Packed y -> Int.equal x y
      | Wide (o1, l1), Wide (o2, l2) -> Int.equal o1 o2 && List.equal Int.equal l1 l2
      | Packed _, Wide _ | Wide _, Packed _ -> false

    let hash = function
      | Packed x -> (x * 0x61c88647) land max_int
      | Wide _ as w -> Hashtbl.hash w
  end)

  module Op_tbl = Hashtbl.Make (M.Op)

  module Pprop_tbl = Hashtbl.Make (M.Pprop)

  type group_data = {
    gid : int;
    mutable gexprs : int list; (* mexpr ids, reverse insertion order *)
    mutable glprop : M.Lprop.t;
    mutable gtyp : M.Typ.t option;
        (* inferred type, set by the first interned mexpr when a typing
           hook is installed; every later mexpr and merge must agree *)
    mutable gusers : int list;
        (* mexpr ids that take this group as an input — the congruence
           repair worklist after a merge; may hold dead or duplicate ids
           (repair is idempotent), never misses a live user *)
    mutable gstamp : int;
        (* bumped whenever the group's visible expression set changes:
           an mexpr added, killed, or re-canonicalized *)
    mutable gcache_stamp : int; (* gstamp the cache was computed at; -1 = none *)
    mutable gcache : mexpr list;
        (* rules (join-associativity above all) rescan the same groups
           once per sibling multi-expression; materializing the public
           view once per change turns the closure's dominant cost from
           per-scan allocation into a plain list walk *)
  }

  type mexpr_data = {
    mx_id : int; (* Id.make Mexpr index *)
    mx_op : int; (* interned operator id *)
    mutable mx_inputs : int array; (* canonical as of the last repair *)
    mutable mx_group : int; (* owning group (canonicalize via find) *)
    mutable mx_key : key;
    mutable mx_alive : bool;
        (* cleared when a merge made the expression self-referential or a
           structural duplicate of another live one *)
  }

  type mutable_stats = {
    mutable s_trule_fired : int;
    mutable s_trule_tried : int;
    mutable s_candidates : int;
    mutable s_pruned_candidates : int;
    mutable s_pruned_subgoals : int;
    mutable s_enforcer_uses : int;
    mutable s_phys_memo_hits : int;
    mutable s_closure_steps : int;
    mutable s_closure_complete : bool;
  }

  type rule_counter = { mutable rc_tried : int; mutable rc_fired : int }

  (* ------------------------------------------------------------------ *)
  (* Provenance side-tables                                              *)

  (* How a logged physical candidate died (or didn't). [margin] is always
     the amount by which the bound was exceeded at the decision point
     (positive = over budget), before the [Cost.slack] tolerance:
     [Pruned_candidate] compares the candidate's local cost against the
     limit in force; [Pruned_subgoal] is the committed cost overrun when
     the remaining budget for a child goal went negative. [Abandoned]
     covers candidates that never completed for any other reason — the
     delivered property did not satisfy the requirement, or a child goal
     found no plan within its budget. *)
  type disposition =
    | Kept of M.Cost.t (* full plan cost when the candidate completed *)
    | Pruned_candidate of { limit : M.Cost.t; margin : M.Cost.t }
    | Pruned_subgoal of {
        subgoal : group;
        subgoal_required : M.Pprop.t;
        limit : M.Cost.t;
        margin : M.Cost.t;
      }
    | Abandoned

  (* One row of the candidate log: a physical candidate (or enforcer
     offer) at the moment it was costed, plus its final disposition. *)
  type prov_cand = {
    pc_seq : int;
    pc_group : group; (* canonical at record time; re-canonicalize on read *)
    pc_required : M.Pprop.t;
    pc_rule : string;
    pc_mexpr : int; (* packed mexpr id implementing it; -1 for enforcer offers *)
    pc_alg : M.Alg.t;
    pc_local_cost : M.Cost.t;
    pc_inputs : (group * M.Pprop.t) list;
    mutable pc_disposition : disposition;
  }

  (* Flat side-tables parallel to the memo's [Vec] representation.
     [pm_rule]/[pm_parent]/[pm_seq] are indexed by mexpr table index
     (pushed exactly when [ctx.mexprs] is); the candidate log is bounded
     by [pv_cap] with an explicit drop counter so truncated lineage is
     never silently presented as complete. *)
  type prov = {
    pm_rule : int Vec.t; (* interned trule id, -1 = root intern *)
    pm_parent : int Vec.t; (* packed mexpr id the rule fired on, -1 = none *)
    pm_seq : int Vec.t; (* global firing sequence number *)
    pr_names : string Vec.t;
    pr_index : (string, int) Hashtbl.t;
    pv_cands : prov_cand Vec.t;
    pv_cap : int;
    mutable pv_dropped : int;
    pv_winners : (int, int) Hashtbl.t; (* packed phys key -> candidate index *)
    mutable p_seq : int;
    mutable p_rule : int; (* firing context: current trule, -1 outside a firing *)
    mutable p_parent : int; (* firing context: mexpr fired on, -1 outside *)
  }

  type ctx = {
    parents : int Vec.t; (* union-find over group indexes *)
    groups : group_data Vec.t;
    mexprs : mexpr_data Vec.t;
    ops : M.Op.t Vec.t;
    op_index : int Op_tbl.t; (* operator -> interned id; exact M.Op.equal *)
    mexpr_index : int Key_tbl.t; (* exact structural key -> mexpr id *)
    pprop_index : int Pprop_tbl.t; (* physical-property interning *)
    mutable pprops : int; (* count of interned properties *)
    pending_unions : (int * int) Queue.t;
    mutable in_union : bool;
    ms : mutable_stats;
    rule_tbl : (string, rule_counter) Hashtbl.t;
    mutable generation : int;
        (* bumped whenever the logical memo changes (new mexpr or group
           merge); physical-memo entries from an older generation may be
           missing alternatives and are re-searched instead of served *)
    tracer : (event -> unit) option;
        (* [None] is the fast path: every emission site is a single match
           on this field and constructs no event *)
    prov : prov option;
        (* provenance side-tables; [None] is the same nil-sink fast path
           as [tracer] — recording sites are a single match *)
    typing : (M.Op.t -> M.Typ.t list -> (M.Typ.t, string) result) option;
        (* the memo-wide type invariant: when installed, every mexpr must
           derive a type, and all mexprs of one group must derive equal
           types; violations raise [Type_violation] *)
  }

  let rule_counter ctx name =
    match Hashtbl.find_opt ctx.rule_tbl name with
    | Some c -> c
    | None ->
      let c = { rc_tried = 0; rc_fired = 0 } in
      Hashtbl.add ctx.rule_tbl name c;
      c

  let rule_counters ctx =
    Hashtbl.fold (fun name c acc -> (name, c.rc_tried, c.rc_fired) :: acc) ctx.rule_tbl []
    |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)

  let closure_complete ctx = ctx.ms.s_closure_complete

  let provenance_on ctx = ctx.prov <> None

  let prov_rule_id p name =
    match Hashtbl.find_opt p.pr_index name with
    | Some id -> id
    | None ->
      let id = Vec.push p.pr_names name in
      Hashtbl.add p.pr_index name id;
      id

  let prov_next_seq p =
    let s = p.p_seq in
    p.p_seq <- s + 1;
    s

  (* ------------------------------------------------------------------ *)
  (* Union-find over groups                                              *)

  let rec find ctx g =
    let p = Vec.get ctx.parents g in
    if p = g then g
    else begin
      let root = find ctx p in
      Vec.set ctx.parents g root;
      root
    end

  let group_data ctx g =
    if g < 0 || g >= Vec.length ctx.groups then invalid_arg "Volcano: unknown group";
    Vec.get ctx.groups (find ctx g)

  let mexpr_data ctx mid = Vec.get ctx.mexprs (Id.to_idx mid)

  let canon_inputs ctx inputs = Array.map (find ctx) inputs

  let self_ref_inputs g (inputs : int array) =
    let n = Array.length inputs in
    let rec go i = i < n && (inputs.(i) = g || go (i + 1)) in
    go 0

  (* ------------------------------------------------------------------ *)
  (* Memo construction                                                   *)

  let intern_op ctx op =
    match Op_tbl.find_opt ctx.op_index op with
    | Some id -> id
    | None ->
      let id = Vec.push ctx.ops op in
      Op_tbl.add ctx.op_index op id;
      id

  let new_group ctx lprop =
    let gid = Vec.length ctx.groups in
    let _ = Vec.push ctx.parents gid in
    let gd =
      { gid; gexprs = []; glprop = lprop; gtyp = None; gusers = []; gstamp = 0;
        gcache_stamp = -1; gcache = [] }
    in
    let _ = Vec.push ctx.groups gd in
    (match ctx.tracer with None -> () | Some f -> f (Group_created { group = gid }));
    gid

  let group_lprop ctx g = (group_data ctx g).glprop

  let group_typ ctx g = (group_data ctx g).gtyp

  (* Canonical (union-find root) group ids, in creation order. *)
  let groups ctx =
    let acc = ref [] in
    for g = Vec.length ctx.groups - 1 downto 0 do
      if find ctx g = g then acc := g :: !acc
    done;
    !acc

  (* Live multi-expressions of a group, oldest first. Congruence repair
     keeps inputs canonical and kills self-referential or duplicate forms
     eagerly, so this is a filter over dead ids, not a scan-and-rebuild;
     the result is cached until the group's [gstamp] moves. *)
  let group_exprs ctx g =
    let root = find ctx g in
    let gd = Vec.get ctx.groups root in
    if gd.gcache_stamp = gd.gstamp then gd.gcache
    else begin
      let exprs =
        gd.gexprs
        |> List.filter_map (fun mid ->
               let mx = mexpr_data ctx mid in
               if not mx.mx_alive then None
               else
                 let inputs = canon_inputs ctx mx.mx_inputs in
                 if self_ref_inputs root inputs then None
                 else
                   Some { mop = Vec.get ctx.ops mx.mx_op; minputs = Array.to_list inputs })
        |> List.rev
      in
      gd.gcache_stamp <- gd.gstamp;
      gd.gcache <- exprs;
      exprs
    end

  (* Memo-wide type invariant: derive the type of [m] from its input
     groups' types and check it against the group's; raises
     [Type_violation] on any failure. Inputs always carry a type when a
     hook is installed — a group is created together with its first
     mexpr, which sets it. *)
  let typecheck_mexpr ctx gd (m : mexpr) =
    match ctx.typing with
    | None -> ()
    | Some derive -> (
      let input_typ g' =
        match (group_data ctx g').gtyp with
        | Some ty -> ty
        | None ->
          raise
            (Type_violation
               (Format.asprintf "input group %d of %a has no inferred type" g' M.Op.pp
                  m.mop))
      in
      match derive m.mop (List.map input_typ m.minputs) with
      | Error msg ->
        raise
          (Type_violation (Format.asprintf "%a is ill-typed: %s" M.Op.pp m.mop msg))
      | Ok ty -> (
        match gd.gtyp with
        | None -> gd.gtyp <- Some ty
        | Some gty ->
          if not (M.Typ.equal ty gty) then
            raise
              (Type_violation
                 (Format.asprintf "group %d has type %a but %a derives %a" gd.gid
                    M.Typ.pp gty M.Op.pp m.mop M.Typ.pp ty))))

  let unbind_key ctx mx =
    match Key_tbl.find_opt ctx.mexpr_index mx.mx_key with
    | Some mid when mid = mx.mx_id -> Key_tbl.remove ctx.mexpr_index mx.mx_key
    | Some _ | None -> ()

  let add_user ctx g mid =
    let gd = group_data ctx g in
    gd.gusers <- mid :: gd.gusers

  let register_users ctx (inputs : int array) mid =
    (* duplicate registrations (a group twice among the inputs) are fine:
       repair is idempotent, and deduping here would cost a scan *)
    let seen_prev i =
      let rec go j = j < i && (inputs.(j) = inputs.(i) || go (j + 1)) in
      go 0
    in
    Array.iteri (fun i g -> if not (seen_prev i) then add_user ctx g mid) inputs

  (* Merge two groups discovered to be logically equivalent, then repair
     the intern table: every expression that used the absorbed group is
     re-canonicalized and re-interned, so keys never go stale and two
     groups holding the same (post-merge) expression are themselves
     merged — the cascade runs off [pending_unions] to a fixpoint. *)
  let rec union ctx g1 g2 =
    Queue.add (g1, g2) ctx.pending_unions;
    if not ctx.in_union then begin
      ctx.in_union <- true;
      Fun.protect
        ~finally:(fun () -> ctx.in_union <- false)
        (fun () ->
          while not (Queue.is_empty ctx.pending_unions) do
            let a, b = Queue.pop ctx.pending_unions in
            do_union ctx a b
          done)
    end

  and do_union ctx g1 g2 =
    let g1 = find ctx g1 and g2 = find ctx g2 in
    if g1 <> g2 then begin
      let winner, loser = if g1 < g2 then g1, g2 else g2, g1 in
      ctx.generation <- ctx.generation + 1;
      (match ctx.tracer with None -> () | Some f -> f (Groups_merged { winner; loser }));
      let wd = Vec.get ctx.groups winner and ld = Vec.get ctx.groups loser in
      (match wd.gtyp, ld.gtyp with
      | Some a, Some b when not (M.Typ.equal a b) ->
        raise
          (Type_violation
             (Format.asprintf
                "merge of groups %d and %d with incompatible types: %a vs %a" winner loser
                M.Typ.pp a M.Typ.pp b))
      | None, (Some _ as t) -> wd.gtyp <- t
      | _ -> ());
      Vec.set ctx.parents loser winner;
      (* re-home the absorbed group's expressions *)
      let moved = List.rev ld.gexprs in
      ld.gexprs <- [];
      List.iter (fun mid -> rehome ctx winner mid) moved;
      (* congruence repair: users of the absorbed group re-canonicalize;
         their ids migrate to the winner's user list (their repaired
         inputs now name the winner) *)
      let users = ld.gusers in
      ld.gusers <- [];
      wd.gusers <- List.rev_append users wd.gusers;
      List.iter (fun mid -> repair ctx mid) users
    end

  (* An expression of a just-absorbed group: move it into [winner],
     deduplicating against the intern table. *)
  and rehome ctx winner mid =
    let mx = mexpr_data ctx mid in
    if mx.mx_alive then begin
      unbind_key ctx mx;
      let inputs = canon_inputs ctx mx.mx_inputs in
      mx.mx_inputs <- inputs;
      mx.mx_group <- winner;
      if self_ref_inputs winner inputs then mx.mx_alive <- false
      else begin
        let k = make_key mx.mx_op inputs in
        mx.mx_key <- k;
        match Key_tbl.find_opt ctx.mexpr_index k with
        | Some other_id when other_id <> mid ->
          mx.mx_alive <- false;
          let og = find ctx (mexpr_data ctx other_id).mx_group in
          if og <> winner then union ctx winner og
        | Some _ | None ->
          Key_tbl.replace ctx.mexpr_index k mid;
          let wd = Vec.get ctx.groups winner in
          wd.gexprs <- mid :: wd.gexprs;
          wd.gstamp <- wd.gstamp + 1
      end
    end

  (* An expression (in any group) whose inputs mentioned a just-absorbed
     group: re-canonicalize and re-intern it under its exact key. A key
     collision here means two groups hold the same expression — the
     missed-merge case the old hashtable design silently accumulated —
     and queues their union. *)
  and repair ctx mid =
    let mx = mexpr_data ctx mid in
    if mx.mx_alive then begin
      let home = find ctx mx.mx_group in
      let hd = Vec.get ctx.groups home in
      hd.gstamp <- hd.gstamp + 1;
      unbind_key ctx mx;
      let inputs = canon_inputs ctx mx.mx_inputs in
      mx.mx_inputs <- inputs;
      if self_ref_inputs home inputs then mx.mx_alive <- false
      else begin
        let k = make_key mx.mx_op inputs in
        mx.mx_key <- k;
        match Key_tbl.find_opt ctx.mexpr_index k with
        | Some other_id when other_id <> mid ->
          mx.mx_alive <- false;
          let og = find ctx (mexpr_data ctx other_id).mx_group in
          if og <> home then union ctx home og
        | Some _ | None -> Key_tbl.replace ctx.mexpr_index k mid
      end
    end

  (* Add [m] to group [g]; returns the worklist entry to process and
     whether the expression was new anywhere in the memo. *)
  let add_mexpr ctx g (m : mexpr) =
    let g = find ctx g in
    let op_id = intern_op ctx m.mop in
    let inputs = canon_inputs ctx (Array.of_list m.minputs) in
    if self_ref_inputs g inputs then None
    else
      let k = make_key op_id inputs in
      match Key_tbl.find_opt ctx.mexpr_index k with
      | Some mid ->
        let g' = find ctx (mexpr_data ctx mid).mx_group in
        if g' = g then None
        else begin
          union ctx g g';
          None
        end
      | None ->
        let gd = Vec.get ctx.groups g in
        let m = { m with minputs = Array.to_list inputs } in
        typecheck_mexpr ctx gd m;
        let idx = Vec.length ctx.mexprs in
        let mid = Id.make Id.Mexpr idx in
        let mx =
          { mx_id = mid; mx_op = op_id; mx_inputs = inputs; mx_group = g; mx_key = k;
            mx_alive = true }
        in
        let _ = Vec.push ctx.mexprs mx in
        (match ctx.prov with
        | None -> ()
        | Some p ->
          (* one row per mexpr, pushed exactly when [ctx.mexprs] is *)
          let _ = Vec.push p.pm_rule p.p_rule in
          let _ = Vec.push p.pm_parent p.p_parent in
          let _ = Vec.push p.pm_seq (prov_next_seq p) in
          ());
        gd.gexprs <- mid :: gd.gexprs;
        gd.gstamp <- gd.gstamp + 1;
        Key_tbl.replace ctx.mexpr_index k mid;
        register_users ctx inputs mid;
        ctx.generation <- ctx.generation + 1;
        (match ctx.tracer with None -> () | Some f -> f (Mexpr_added { group = g; op = m.mop }));
        Some (g, m, mid)

  (* Exact lookup without insertion (intern_build's fast path). *)
  let lookup_mexpr ctx (m : mexpr) =
    match Op_tbl.find_opt ctx.op_index m.mop with
    | None -> None
    | Some op_id -> (
      let inputs = canon_inputs ctx (Array.of_list m.minputs) in
      match Key_tbl.find_opt ctx.mexpr_index (make_key op_id inputs) with
      | Some mid -> Some (find ctx (mexpr_data ctx mid).mx_group)
      | None -> None)

  (* Packed id of the live mexpr equal to [m], or -1. The physical search
     iterates the public [group_exprs] view (ids erased), so provenance
     recording recovers the id through the exact intern key. *)
  let prov_mexpr_id ctx (m : mexpr) =
    match Op_tbl.find_opt ctx.op_index m.mop with
    | None -> -1
    | Some op_id -> (
      let inputs = canon_inputs ctx (Array.of_list m.minputs) in
      match Key_tbl.find_opt ctx.mexpr_index (make_key op_id inputs) with
      | Some mid -> mid
      | None -> -1)

  (* ------------------------------------------------------------------ *)
  (* Rules and specification                                             *)

  type trule = {
    t_name : string;
    t_apply : ctx -> mexpr -> build list;
  }

  type candidate = {
    cand_alg : M.Alg.t;
    cand_inputs : (group * M.Pprop.t) list;
    cand_cost : M.Cost.t;
    cand_delivers : M.Pprop.t;
  }

  type irule = {
    i_name : string;
    i_promise : int;
    i_apply : ctx -> required:M.Pprop.t -> mexpr -> candidate list;
  }

  type enforcer = {
    e_name : string;
    e_apply : ctx -> required:M.Pprop.t -> group -> (M.Alg.t * M.Pprop.t * M.Cost.t) list;
  }

  type spec = {
    derive_lprop : M.Op.t -> M.Lprop.t list -> M.Lprop.t;
    transformations : trule list;
    implementations : irule list;
    enforcers : enforcer list;
  }

  type plan = {
    alg : M.Alg.t;
    children : plan list;
    cost : M.Cost.t;
    delivered : M.Pprop.t;
  }

  type stats = {
    groups : int;
    mexprs : int;
    trule_fired : int;
    trule_tried : int;
    candidates : int;
    pruned_candidates : int;
    pruned_subgoals : int;
    enforcer_uses : int;
    phys_memo_hits : int;
    closure_steps : int;
    closure_complete : bool;
    prov_records : int;
    prov_dropped : int;
  }

  type expr = Expr of M.Op.t * expr list

  type result = {
    plan : plan option;
    stats : stats;
    root : group;
    ctx : ctx;
  }

  (* ------------------------------------------------------------------ *)
  (* Logical closure                                                     *)

  (* Intern a build tree; fresh interior nodes get fresh (or shared)
     groups, with logical properties derived bottom-up. *)
  let rec intern_build spec ctx queue b =
    match b with
    | Ref g -> find ctx g
    | Node (op, children) ->
      let gs = List.map (intern_build spec ctx queue) children in
      let m = { mop = op; minputs = gs } in
      (match lookup_mexpr ctx m with
      | Some g -> g
      | None ->
        let lprop = spec.derive_lprop op (List.map (group_lprop ctx) gs) in
        let g = new_group ctx lprop in
        (match add_mexpr ctx g m with
        | Some entry -> Queue.add entry queue
        | None -> ());
        g)

  let rec intern_expr spec ctx queue (Expr (op, children)) =
    intern_build spec ctx queue
      (Node (op, List.map (fun e -> Ref (intern_expr spec ctx queue e)) children))

  let closure ?fuel spec ctx queue ~enabled_trules =
    let exhausted () =
      match fuel with None -> false | Some n -> ctx.ms.s_closure_steps >= n
    in
    while (not (Queue.is_empty queue)) && not (exhausted ()) do
      ctx.ms.s_closure_steps <- ctx.ms.s_closure_steps + 1;
      let g, m, mid = Queue.pop queue in
      List.iter
        (fun rule ->
          ctx.ms.s_trule_tried <- ctx.ms.s_trule_tried + 1;
          let counter = rule_counter ctx rule.t_name in
          counter.rc_tried <- counter.rc_tried + 1;
          (match ctx.tracer with
          | None -> ()
          | Some f -> f (Trule_tried { rule = rule.t_name; group = find ctx g }));
          (* Firing context: every mexpr interned while this rule's builds
             are processed (interior nodes included) is attributed to the
             rule and the mexpr it fired on. *)
          (match ctx.prov with
          | None -> ()
          | Some p ->
            p.p_rule <- prov_rule_id p rule.t_name;
            p.p_parent <- mid);
          let builds = rule.t_apply ctx m in
          List.iter
            (fun b ->
              match b with
              | Ref _ ->
                (* A rule asserting the whole group equals another group:
                   merge them. *)
                let g' = intern_build spec ctx queue b in
                if find ctx g <> find ctx g' then begin
                  counter.rc_fired <- counter.rc_fired + 1;
                  match ctx.tracer with
                  | None -> ()
                  | Some f -> f (Trule_fired { rule = rule.t_name; group = find ctx g })
                end;
                union ctx g g'
              | Node (op, children) ->
                let gs =
                  List.map (fun c -> intern_build spec ctx queue (c : build)) children
                in
                let m' = { mop = op; minputs = gs } in
                (match add_mexpr ctx g m' with
                | Some entry ->
                  ctx.ms.s_trule_fired <- ctx.ms.s_trule_fired + 1;
                  counter.rc_fired <- counter.rc_fired + 1;
                  (match ctx.tracer with
                  | None -> ()
                  | Some f -> f (Trule_fired { rule = rule.t_name; group = find ctx g }));
                  Queue.add entry queue
                | None -> ()))
            builds)
        enabled_trules;
      (match ctx.prov with
      | None -> ()
      | Some p ->
        p.p_rule <- -1;
        p.p_parent <- -1)
    done;
    (* A drained queue means the rule set reached its fixpoint; leftover
       entries mean the fuel budget interrupted a (possibly diverging)
       closure. *)
    ctx.ms.s_closure_complete <- Queue.is_empty queue

  (* ------------------------------------------------------------------ *)
  (* Physical search                                                     *)

  type entry = {
    mutable best : plan option;
    mutable searched : M.Cost.t option; (* fully searched up to this limit *)
    mutable in_progress : bool;
    mutable egen : int; (* ctx generation the entry was computed under *)
  }

  let cost_le a b = M.Cost.compare a b <= 0

  (* Bound checks that *discard* work (prune a candidate, skip a
     subgoal, refuse to return a memoized plan) tolerate [Cost.slack]
     over the limit: limits are propagated through [Cost.sub], whose
     rounding drifts from the exact algebraic value by ulps, and an
     exact check at the boundary would make the bounded search drop
     plans the exhaustive enumeration keeps. Anything surviving the
     slackened bound still faces the exact [compare] in [consider]. *)
  let bounded_le a limit = M.Cost.compare a (M.Cost.add limit M.Cost.slack) <= 0

  (* The physical memo key packs (group index, interned required-property
     id) into one int: the group in the high bits, the property id in the
     low 16. Properties are interned through [M.Pprop.equal]/[hash], so
     the packed key is exact; the id space is per session and overflow
     fails loudly rather than silently degrading. *)
  let pprop_bits = 16

  let intern_pprop ctx p =
    match Pprop_tbl.find_opt ctx.pprop_index p with
    | Some id -> id
    | None ->
      let id = ctx.pprops in
      if id >= 1 lsl pprop_bits then
        invalid_arg "Volcano: physical-property intern table overflow";
      ctx.pprops <- id + 1;
      Pprop_tbl.add ctx.pprop_index p id;
      id

  let phys_key ctx g p = Id.make Id.Phys ((g lsl pprop_bits) lor intern_pprop ctx p)

  (* Append one candidate-log row; returns its index, or -1 when
     provenance is off or the cap was hit (the drop is counted). *)
  let prov_log ctx ~group ~required ~rule ~mexpr ~alg ~local_cost ~inputs =
    match ctx.prov with
    | None -> -1
    | Some p ->
      if Vec.length p.pv_cands >= p.pv_cap then begin
        p.pv_dropped <- p.pv_dropped + 1;
        -1
      end
      else
        Vec.push p.pv_cands
          { pc_seq = prov_next_seq p;
            pc_group = group;
            pc_required = required;
            pc_rule = rule;
            pc_mexpr = mexpr;
            pc_alg = alg;
            pc_local_cost = local_cost;
            pc_inputs = inputs;
            pc_disposition = Abandoned }

  let prov_set ctx idx d =
    if idx >= 0 then
      match ctx.prov with
      | None -> ()
      | Some p -> (Vec.get p.pv_cands idx).pc_disposition <- d

  let optimize_physical ctx ~memo ~enabled_irules ~enabled_enforcers ~pruning ~guided
      ~initial_limit ~root ~required =
    let find_entry g p = Hashtbl.find_opt memo (phys_key ctx g p) in
    let add_entry g p e = Hashtbl.add memo (phys_key ctx g p) e in
    let rec optimize g required limit =
      let g = find ctx g in
      let entry =
        match find_entry g required with
        | Some e ->
          (* The logical memo grew since this entry was searched (a later
             root's closure added alternatives to shared groups): its
             result may be missing cheaper plans, so re-search it. *)
          if e.egen <> ctx.generation && not e.in_progress then begin
            e.best <- None;
            e.searched <- None;
            e.egen <- ctx.generation
          end;
          e
        | None ->
          let e =
            { best = None; searched = None; in_progress = false; egen = ctx.generation }
          in
          add_entry g required e;
          e
      in
      if entry.in_progress then None
      else
        let proven_optimal =
          match entry.best, entry.searched with
          | Some p, Some s -> cost_le p.cost s
          | _ -> false
        in
        if proven_optimal then begin
          ctx.ms.s_phys_memo_hits <- ctx.ms.s_phys_memo_hits + 1;
          (match ctx.tracer with
          | None -> ()
          | Some f -> f (Phys_memo_hit { group = g; required }));
          match entry.best with
          | Some p when bounded_le p.cost limit -> Some p
          | Some _ | None -> None
        end
        else
          match entry.searched with
          | Some s when cost_le limit s ->
            (* already searched at least this far and found nothing *)
            ctx.ms.s_phys_memo_hits <- ctx.ms.s_phys_memo_hits + 1;
            (match ctx.tracer with
            | None -> ()
            | Some f -> f (Phys_memo_hit { group = g; required }));
            (match entry.best with
            | Some p when bounded_le p.cost limit -> Some p
            | Some _ | None -> None)
          | _ ->
            entry.in_progress <- true;
            let best = ref entry.best in
            let goal_key =
              match ctx.prov with None -> -1 | Some _ -> phys_key ctx g required
            in
            let current_limit () =
              if not pruning then M.Cost.infinite
              else
                match !best with
                | Some p when cost_le p.cost limit -> p.cost
                | _ -> limit
            in
            let consider pidx plan =
              match !best with
              | Some b when cost_le b.cost plan.cost -> ()
              | _ ->
                best := Some plan;
                (match ctx.prov with
                | Some p when pidx >= 0 -> Hashtbl.replace p.pv_winners goal_key pidx
                | Some _ | None -> ())
            in
            (* Guided mode may skip a subgoal outright when the budget
               left after the candidate's own cost is already negative:
               any child plan has non-negative cost, so the candidate is
               provably dominated and the subgoal is never expanded. The
               exhaustive mode reaches the same conclusion by recursing
               into the subgoal and failing — same winner, more work. *)
            let subgoal_dominated remaining =
              guided && pruning && M.Cost.compare (M.Cost.add remaining M.Cost.slack) M.Cost.zero < 0
            in
            let prune_subgoal child cprops =
              ctx.ms.s_pruned_subgoals <- ctx.ms.s_pruned_subgoals + 1;
              match ctx.tracer with
              | None -> ()
              | Some f -> f (Subgoal_pruned { group = find ctx child; required = cprops })
            in
            let try_candidate (cand, pidx) =
              ctx.ms.s_candidates <- ctx.ms.s_candidates + 1;
              if M.Pprop.satisfies ~delivered:cand.cand_delivers ~required then begin
                let limit0 = current_limit () in
                if not (bounded_le cand.cand_cost limit0) then begin
                  ctx.ms.s_pruned_candidates <- ctx.ms.s_pruned_candidates + 1;
                  prov_set ctx pidx
                    (Pruned_candidate
                       { limit = limit0; margin = M.Cost.sub cand.cand_cost limit0 });
                  match ctx.tracer with
                  | None -> ()
                  | Some f ->
                    f
                      (Pruned
                         { group = g;
                           alg = cand.cand_alg;
                           cost = cand.cand_cost;
                           limit = limit0 })
                end
                else begin
                  let rec opt_children acc_cost acc_plans = function
                    | [] -> Some (List.rev acc_plans, acc_cost)
                    | (child, cprops) :: rest -> (
                      let remaining = M.Cost.sub (current_limit ()) acc_cost in
                      if subgoal_dominated remaining then begin
                        prune_subgoal child cprops;
                        prov_set ctx pidx
                          (Pruned_subgoal
                             { subgoal = find ctx child;
                               subgoal_required = cprops;
                               limit = current_limit ();
                               margin = M.Cost.sub M.Cost.zero remaining });
                        None
                      end
                      else
                        match optimize child cprops remaining with
                        | None -> None
                        | Some cplan ->
                          opt_children (M.Cost.add acc_cost cplan.cost) (cplan :: acc_plans)
                            rest)
                  in
                  match opt_children cand.cand_cost [] cand.cand_inputs with
                  | None -> ()
                  | Some (children, total) ->
                    prov_set ctx pidx (Kept total);
                    consider pidx
                      { alg = cand.cand_alg;
                        children;
                        cost = total;
                        delivered = cand.cand_delivers }
                end
              end
            in
            (* Candidates are produced rule by rule (promise order, when
               guided); guided search then costs them cheapest-local-cost
               first, so the branch-and-bound limit tightens before the
               expensive alternatives are considered. *)
            let deferred = ref [] in
            List.iter
              (fun m ->
                let m_pid =
                  match ctx.prov with None -> -1 | Some _ -> prov_mexpr_id ctx m
                in
                List.iter
                  (fun (ir : irule) ->
                    let counter = rule_counter ctx ir.i_name in
                    counter.rc_tried <- counter.rc_tried + 1;
                    (match ctx.tracer with
                    | None -> ()
                    | Some f -> f (Irule_tried { rule = ir.i_name; group = g }));
                    let cands = ir.i_apply ctx ~required m in
                    counter.rc_fired <- counter.rc_fired + List.length cands;
                    List.iter
                      (fun cand ->
                        (match ctx.tracer with
                        | None -> ()
                        | Some f ->
                          f
                            (Candidate_costed
                               { rule = ir.i_name;
                                 group = g;
                                 alg = cand.cand_alg;
                                 cost = cand.cand_cost }));
                        let pidx =
                          prov_log ctx ~group:g ~required ~rule:ir.i_name ~mexpr:m_pid
                            ~alg:cand.cand_alg ~local_cost:cand.cand_cost
                            ~inputs:cand.cand_inputs
                        in
                        if guided then deferred := (cand, pidx) :: !deferred
                        else try_candidate (cand, pidx))
                      cands)
                  enabled_irules)
              (group_exprs ctx g);
            if guided then
              List.stable_sort
                (fun (a, _) (b, _) -> M.Cost.compare a.cand_cost b.cand_cost)
                (List.rev !deferred)
              |> List.iter try_candidate;
            (* Enforcers: achieve [required] by gluing a property-enforcing
               algorithm on top of a plan for weaker requirements. *)
            List.iter
              (fun (en : enforcer) ->
                let counter = rule_counter ctx en.e_name in
                counter.rc_tried <- counter.rc_tried + 1;
                (match ctx.tracer with
                | None -> ()
                | Some f -> f (Enforcer_tried { rule = en.e_name; group = g }));
                let offers = en.e_apply ctx ~required g in
                counter.rc_fired <- counter.rc_fired + List.length offers;
                List.iter
                  (fun (alg, weaker, ecost) ->
                    (match ctx.tracer with
                    | None -> ()
                    | Some f ->
                      f (Enforcer_offered { rule = en.e_name; group = g; alg; cost = ecost }));
                    let pidx =
                      prov_log ctx ~group:g ~required ~rule:en.e_name ~mexpr:(-1) ~alg
                        ~local_cost:ecost
                        ~inputs:[ (g, weaker) ]
                    in
                    let remaining = M.Cost.sub (current_limit ()) ecost in
                    if subgoal_dominated remaining then begin
                      prov_set ctx pidx
                        (Pruned_subgoal
                           { subgoal = g;
                             subgoal_required = weaker;
                             limit = current_limit ();
                             margin = M.Cost.sub M.Cost.zero remaining });
                      prune_subgoal g weaker
                    end
                    else
                      match optimize g weaker remaining with
                      | None -> ()
                      | Some sub ->
                        ctx.ms.s_enforcer_uses <- ctx.ms.s_enforcer_uses + 1;
                        (match ctx.tracer with
                        | None -> ()
                        | Some f -> f (Enforcer_inserted { group = g; alg }));
                        let total = M.Cost.add ecost sub.cost in
                        prov_set ctx pidx (Kept total);
                        consider pidx
                          { alg;
                            children = [ sub ];
                            cost = total;
                            delivered = required })
                  offers)
              enabled_enforcers;
            entry.best <- !best;
            entry.searched <-
              Some
                (match entry.searched with
                | Some s when not (cost_le s limit) -> s
                | _ -> limit);
            entry.in_progress <- false;
            (match !best with
            | Some p when bounded_le p.cost limit -> Some p
            | Some _ | None -> None)
    in
    optimize root required initial_limit

  (* ------------------------------------------------------------------ *)
  (* Entry point                                                         *)

  let count_groups (ctx : ctx) =
    let n = ref 0 in
    for g = 0 to Vec.length ctx.groups - 1 do
      if find ctx g = g then incr n
    done;
    !n

  let count_mexprs ctx =
    List.fold_left (fun n g -> n + List.length (group_exprs ctx g)) 0 (groups ctx)

  (* A session owns one memo (logical groups plus the physical
     (group, properties) table) shared across any number of roots: the
     multi-query-optimization substrate. Registering a root interns its
     expression — re-finding every group an earlier root already created
     — and runs the logical closure over whatever is genuinely new;
     solving runs the goal-directed physical search, whose memo entries
     persist across roots, so a subexpression shared by two queries is
     expanded, costed and pruned once. *)
  type session = {
    ss_spec : spec;
    ss_trules : trule list;
    ss_irules : irule list;
    ss_enforcers : enforcer list;
    ss_pruning : bool;
    ss_guided : bool;
    ss_closure_fuel : int option; (* budget over the whole session's closure steps *)
    ss_spans : Span.t option; (* search-phase spans; None is the nil-sink fast path *)
    ss_ctx : ctx;
    ss_phys : (int, entry) Hashtbl.t; (* packed (group, pprop id) -> entry *)
  }

  let default_provenance_cap = 1 lsl 20

  let session ?(disabled = []) ?(pruning = true) ?(guided = false) ?closure_fuel ?trace
      ?spans ?typing ?(provenance = false) ?(provenance_cap = default_provenance_cap)
      spec =
    let enabled name = not (List.mem name disabled) in
    let prov =
      if not provenance then None
      else
        Some
          { pm_rule = Vec.create ~capacity:256 ();
            pm_parent = Vec.create ~capacity:256 ();
            pm_seq = Vec.create ~capacity:256 ();
            pr_names = Vec.create ~capacity:32 ();
            pr_index = Hashtbl.create 32;
            pv_cands = Vec.create ~capacity:256 ();
            pv_cap = provenance_cap;
            pv_dropped = 0;
            pv_winners = Hashtbl.create 256;
            p_seq = 0;
            p_rule = -1;
            p_parent = -1 }
    in
    let ctx =
      { parents = Vec.create ~capacity:64 ();
        groups = Vec.create ~capacity:64 ();
        mexprs = Vec.create ~capacity:256 ();
        ops = Vec.create ~capacity:64 ();
        op_index = Op_tbl.create 256;
        mexpr_index = Key_tbl.create 256;
        pprop_index = Pprop_tbl.create 16;
        pprops = 0;
        pending_unions = Queue.create ();
        in_union = false;
        ms =
          { s_trule_fired = 0;
            s_trule_tried = 0;
            s_candidates = 0;
            s_pruned_candidates = 0;
            s_pruned_subgoals = 0;
            s_enforcer_uses = 0;
            s_phys_memo_hits = 0;
            s_closure_steps = 0;
            s_closure_complete = true };
        rule_tbl = Hashtbl.create 32;
        generation = 0;
        tracer = trace;
        prov;
        typing }
    in
    let irules = List.filter (fun r -> enabled r.i_name) spec.implementations in
    { ss_spec = spec;
      ss_trules = List.filter (fun r -> enabled r.t_name) spec.transformations;
      ss_irules =
        (* guided search applies rules in promise order (highest first, ties
           keep registration order), so cheap/high-yield algorithms tighten
           the branch-and-bound limit before expensive ones are costed *)
        (if guided then
           List.stable_sort (fun a b -> Int.compare b.i_promise a.i_promise) irules
         else irules);
      ss_enforcers = List.filter (fun r -> enabled r.e_name) spec.enforcers;
      ss_pruning = pruning;
      ss_guided = guided;
      ss_closure_fuel = closure_fuel;
      ss_spans = spans;
      ss_ctx = ctx;
      ss_phys = Hashtbl.create 256 }

  let session_ctx s = s.ss_ctx

  let register s expr =
    let ctx = s.ss_ctx in
    let queue = Queue.create () in
    let root =
      Span.with_span s.ss_spans ~cat:"volcano" "intern" (fun () ->
          intern_expr s.ss_spec ctx queue expr)
    in
    Span.with_span s.ss_spans ~cat:"volcano" "logical-closure"
      ~args:[ ("root_group", Json.Int root) ]
      (fun () ->
        closure ?fuel:s.ss_closure_fuel s.ss_spec ctx queue ~enabled_trules:s.ss_trules);
    find ctx root

  let snapshot_stats ctx =
    { groups = count_groups ctx;
      mexprs = count_mexprs ctx;
      trule_fired = ctx.ms.s_trule_fired;
      trule_tried = ctx.ms.s_trule_tried;
      candidates = ctx.ms.s_candidates;
      pruned_candidates = ctx.ms.s_pruned_candidates;
      pruned_subgoals = ctx.ms.s_pruned_subgoals;
      enforcer_uses = ctx.ms.s_enforcer_uses;
      phys_memo_hits = ctx.ms.s_phys_memo_hits;
      closure_steps = ctx.ms.s_closure_steps;
      closure_complete = ctx.ms.s_closure_complete;
      prov_records =
        (match ctx.prov with
        | None -> 0
        | Some p -> Vec.length p.pm_rule + Vec.length p.pv_cands);
      prov_dropped = (match ctx.prov with None -> 0 | Some p -> p.pv_dropped) }

  let solve s ?(initial_limit = M.Cost.infinite) root ~required =
    let ctx = s.ss_ctx in
    let plan =
      Span.with_span s.ss_spans ~cat:"volcano" "physical-search"
        ~args:[ ("root_group", Json.Int (find ctx root)) ]
        (fun () ->
          optimize_physical ctx ~memo:s.ss_phys ~enabled_irules:s.ss_irules
            ~enabled_enforcers:s.ss_enforcers ~pruning:s.ss_pruning ~guided:s.ss_guided
            ~initial_limit ~root:(find ctx root) ~required)
    in
    { plan; stats = snapshot_stats ctx; root = find ctx root; ctx }

  let run ?disabled ?pruning ?guided ?(initial_limit = M.Cost.infinite) ?closure_fuel
      ?trace ?spans ?typing ?provenance ?provenance_cap spec expr ~required =
    let s =
      session ?disabled ?pruning ?guided ?closure_fuel ?trace ?spans ?typing ?provenance
        ?provenance_cap spec
    in
    let root = register s expr in
    solve s ~initial_limit root ~required

  (* ------------------------------------------------------------------ *)
  (* Provenance read API                                                 *)

  type lineage = {
    lin_id : int; (* packed mexpr id *)
    lin_group : group; (* canonical owning group *)
    lin_op : M.Op.t;
    lin_inputs : group list;
    lin_rule : string option; (* None = root intern *)
    lin_parent : int option; (* packed mexpr id the rule fired on *)
    lin_seq : int;
    lin_alive : bool;
  }

  type cand_record = {
    cr_index : int;
    cr_seq : int;
    cr_group : group;
    cr_required : M.Pprop.t;
    cr_rule : string;
    cr_mexpr : int option; (* packed mexpr id; None for enforcer offers *)
    cr_alg : M.Alg.t;
    cr_local_cost : M.Cost.t;
    cr_inputs : (group * M.Pprop.t) list;
    cr_disposition : disposition;
  }

  let lineage ctx mid =
    match ctx.prov with
    | None -> None
    | Some p ->
      let idx = Id.to_idx mid in
      if idx < 0 || idx >= Vec.length p.pm_rule then None
      else
        let mx = Vec.get ctx.mexprs idx in
        let rule_id = Vec.get p.pm_rule idx in
        let parent = Vec.get p.pm_parent idx in
        Some
          { lin_id = mx.mx_id;
            lin_group = find ctx mx.mx_group;
            lin_op = Vec.get ctx.ops mx.mx_op;
            lin_inputs = Array.to_list (canon_inputs ctx mx.mx_inputs);
            lin_rule = (if rule_id < 0 then None else Some (Vec.get p.pr_names rule_id));
            lin_parent = (if parent < 0 then None else Some parent);
            lin_seq = Vec.get p.pm_seq idx;
            lin_alive = mx.mx_alive }

  let lineages ctx =
    match ctx.prov with
    | None -> []
    | Some p ->
      let n = Vec.length p.pm_rule in
      List.filter_map (fun i -> lineage ctx (Id.make Id.Mexpr i)) (List.init n Fun.id)

  (* Trule chain that derived [mid], oldest firing first: walk parent
     pointers to the root intern, collecting each step's producing rule. *)
  let rule_chain ctx mid =
    match ctx.prov with
    | None -> []
    | Some p ->
      let rec walk acc mid =
        let idx = Id.to_idx mid in
        if idx < 0 || idx >= Vec.length p.pm_rule then acc
        else
          let rule_id = Vec.get p.pm_rule idx in
          let acc =
            if rule_id < 0 then acc else Vec.get p.pr_names rule_id :: acc
          in
          let parent = Vec.get p.pm_parent idx in
          if parent < 0 then acc else walk acc parent
      in
      walk [] mid

  let cand_record_of p ctx idx =
    let c = Vec.get p.pv_cands idx in
    { cr_index = idx;
      cr_seq = c.pc_seq;
      cr_group = find ctx c.pc_group;
      cr_required = c.pc_required;
      cr_rule = c.pc_rule;
      cr_mexpr = (if c.pc_mexpr < 0 then None else Some c.pc_mexpr);
      cr_alg = c.pc_alg;
      cr_local_cost = c.pc_local_cost;
      cr_inputs = List.map (fun (g, pr) -> (find ctx g, pr)) c.pc_inputs;
      cr_disposition = c.pc_disposition }

  let cand_records ctx =
    match ctx.prov with
    | None -> []
    | Some p ->
      List.init (Vec.length p.pv_cands) (fun i -> cand_record_of p ctx i)

  let cand_record ctx idx =
    match ctx.prov with
    | None -> None
    | Some p ->
      if idx < 0 || idx >= Vec.length p.pv_cands then None
      else Some (cand_record_of p ctx idx)

  let provenance_dropped ctx =
    match ctx.prov with None -> 0 | Some p -> p.pv_dropped

  (* Winning candidate of a searched (group, required) goal, if any. *)
  let winner_of ctx g ~required =
    match ctx.prov with
    | None -> None
    | Some p -> (
      match Hashtbl.find_opt p.pv_winners (phys_key ctx (find ctx g) required) with
      | None -> None
      | Some idx -> Some (cand_record_of p ctx idx))

  let rec plan_to_tree plan =
    Pretty.Node (Format.asprintf "%a" M.Alg.pp plan.alg, List.map plan_to_tree plan.children)

  let pp_plan ppf plan = Format.pp_print_string ppf (Pretty.render (plan_to_tree plan))

  let pp_memo ppf (ctx : ctx) =
    for g = 0 to Vec.length ctx.groups - 1 do
      if find ctx g = g then begin
        let gd = Vec.get ctx.groups g in
        Format.fprintf ppf "group %d: %a@." g M.Lprop.pp gd.glprop;
        List.iter
          (fun m ->
            Format.fprintf ppf "  %a [%s]@." M.Op.pp m.mop
              (String.concat " " (List.map string_of_int m.minputs)))
          (group_exprs ctx g)
      end
    done
end
