module Pretty = Oodb_util.Pretty
module Span = Oodb_util.Span
module Json = Oodb_util.Json

module type MODEL = sig
  module Op : sig
    type t

    val arity : t -> int

    val equal : t -> t -> bool

    val hash : t -> int

    val pp : Format.formatter -> t -> unit
  end

  module Alg : sig
    type t

    val pp : Format.formatter -> t -> unit
  end

  module Lprop : sig
    type t

    val pp : Format.formatter -> t -> unit
  end

  module Typ : sig
    type t

    val equal : t -> t -> bool

    val pp : Format.formatter -> t -> unit
  end

  module Pprop : sig
    type t

    val equal : t -> t -> bool

    val hash : t -> int

    val satisfies : delivered:t -> required:t -> bool

    val pp : Format.formatter -> t -> unit
  end

  module Cost : sig
    type t

    val zero : t

    val add : t -> t -> t

    val sub : t -> t -> t

    val compare : t -> t -> int

    val infinite : t

    val pp : Format.formatter -> t -> unit
  end
end

module Make (M : MODEL) = struct
  type group = int

  exception Type_violation of string

  type mexpr = { mop : M.Op.t; minputs : group list }

  type build =
    | Node of M.Op.t * build list
    | Ref of group

  (* Structured search-trace events, emitted (only when a tracer is
     installed) at exactly the points where the statistics and per-rule
     counters increment — so any aggregation of a complete event stream
     reproduces [stats] and [rule_counters] by construction. *)
  type event =
    | Group_created of { group : group }
    | Mexpr_added of { group : group; op : M.Op.t }
    | Groups_merged of { winner : group; loser : group }
    | Trule_tried of { rule : string; group : group }
    | Trule_fired of { rule : string; group : group }
    | Irule_tried of { rule : string; group : group }
    | Candidate_costed of { rule : string; group : group; alg : M.Alg.t; cost : M.Cost.t }
    | Pruned of { group : group; alg : M.Alg.t; cost : M.Cost.t; limit : M.Cost.t }
    | Enforcer_tried of { rule : string; group : group }
    | Enforcer_offered of { rule : string; group : group; alg : M.Alg.t; cost : M.Cost.t }
    | Enforcer_inserted of { group : group; alg : M.Alg.t }
    | Phys_memo_hit of { group : group; required : M.Pprop.t }

  type group_data = {
    gid : int;
    mutable gexprs : mexpr list; (* reverse insertion order, canonical inputs *)
    mutable glprop : M.Lprop.t;
    mutable gtyp : M.Typ.t option;
        (* inferred type, set by the first interned mexpr when a typing
           hook is installed; every later mexpr and merge must agree *)
  }

  type mutable_stats = {
    mutable s_trule_fired : int;
    mutable s_trule_tried : int;
    mutable s_candidates : int;
    mutable s_enforcer_uses : int;
    mutable s_phys_memo_hits : int;
    mutable s_closure_steps : int;
    mutable s_closure_complete : bool;
  }

  type rule_counter = { mutable rc_tried : int; mutable rc_fired : int }

  type ctx = {
    mutable parents : int array; (* union-find over group ids *)
    mutable groups : group_data option array; (* indexed by gid *)
    mutable n_groups : int;
    mexpr_index : (int * int list, group) Hashtbl.t; (* (op hash, inputs) is a weak key; resolved by scan *)
    ms : mutable_stats;
    rule_tbl : (string, rule_counter) Hashtbl.t;
    mutable generation : int;
        (* bumped whenever the logical memo changes (new mexpr or group
           merge); physical-memo entries from an older generation may be
           missing alternatives and are re-searched instead of served *)
    tracer : (event -> unit) option;
        (* [None] is the fast path: every emission site is a single match
           on this field and constructs no event *)
    typing : (M.Op.t -> M.Typ.t list -> (M.Typ.t, string) result) option;
        (* the memo-wide type invariant: when installed, every mexpr must
           derive a type, and all mexprs of one group must derive equal
           types; violations raise [Type_violation] *)
  }

  let rule_counter ctx name =
    match Hashtbl.find_opt ctx.rule_tbl name with
    | Some c -> c
    | None ->
      let c = { rc_tried = 0; rc_fired = 0 } in
      Hashtbl.add ctx.rule_tbl name c;
      c

  let rule_counters ctx =
    Hashtbl.fold (fun name c acc -> (name, c.rc_tried, c.rc_fired) :: acc) ctx.rule_tbl []
    |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)

  let closure_complete ctx = ctx.ms.s_closure_complete

  (* ------------------------------------------------------------------ *)
  (* Union-find over groups                                              *)

  let rec find ctx g =
    let p = ctx.parents.(g) in
    if p = g then g
    else begin
      let root = find ctx p in
      ctx.parents.(g) <- root;
      root
    end

  let group_data ctx g =
    match ctx.groups.(find ctx g) with
    | Some gd -> gd
    | None -> invalid_arg "Volcano: unknown group"

  let canon_mexpr ctx m = { m with minputs = List.map (find ctx) m.minputs }

  let mexpr_equal ctx a b =
    M.Op.equal a.mop b.mop
    && List.length a.minputs = List.length b.minputs
    && List.for_all2 (fun x y -> find ctx x = find ctx y) a.minputs b.minputs

  (* ------------------------------------------------------------------ *)
  (* Memo construction                                                   *)

  let ensure_capacity ctx =
    let n = Array.length ctx.parents in
    if ctx.n_groups >= n then begin
      let parents = Array.init (2 * n) (fun i -> if i < n then ctx.parents.(i) else i) in
      let groups = Array.init (2 * n) (fun i -> if i < n then ctx.groups.(i) else None) in
      ctx.parents <- parents;
      ctx.groups <- groups
    end

  let new_group ctx lprop =
    ensure_capacity ctx;
    let gid = ctx.n_groups in
    ctx.n_groups <- gid + 1;
    ctx.parents.(gid) <- gid;
    ctx.groups.(gid) <- Some { gid; gexprs = []; glprop = lprop; gtyp = None };
    (match ctx.tracer with None -> () | Some f -> f (Group_created { group = gid }));
    gid

  let index_key ctx m =
    let m = canon_mexpr ctx m in
    (M.Op.hash m.mop, m.minputs)

  let lookup_mexpr ctx m =
    match Hashtbl.find_all ctx.mexpr_index (index_key ctx m) with
    | [] -> None
    | gs ->
      (* Hash collisions on Op.hash are possible; verify by scanning the
         candidate groups for a structurally equal expression. *)
      List.find_opt
        (fun g -> List.exists (fun m' -> mexpr_equal ctx m m') (group_data ctx g).gexprs)
        (List.map (find ctx) gs)

  let group_lprop ctx g = (group_data ctx g).glprop

  let group_typ ctx g = (group_data ctx g).gtyp

  (* Canonical (union-find root) group ids, in creation order. *)
  let groups ctx =
    let acc = ref [] in
    for g = ctx.n_groups - 1 downto 0 do
      if find ctx g = g then acc := g :: !acc
    done;
    !acc

  let group_exprs ctx g =
    (* unions elsewhere in the memo can retroactively make an expression
       self-referential; never surface those *)
    (group_data ctx g).gexprs
    |> List.filter_map (fun m ->
           let m = canon_mexpr ctx m in
           if List.exists (fun g' -> g' = find ctx g) m.minputs then None else Some m)
    |> List.rev

  (* A multi-expression whose inputs include its own group asserts
     G = op(..G..); it can never contribute a finite plan and (worse)
     lets rules like select-merge diverge, so such forms are dropped. *)
  let self_referential ctx g m = List.exists (fun g' -> find ctx g' = find ctx g) m.minputs

  (* Merge two groups discovered to be logically equivalent. *)
  let union ctx g1 g2 =
    let g1 = find ctx g1 and g2 = find ctx g2 in
    if g1 <> g2 then begin
      let winner, loser = if g1 < g2 then g1, g2 else g2, g1 in
      ctx.generation <- ctx.generation + 1;
      (match ctx.tracer with None -> () | Some f -> f (Groups_merged { winner; loser }));
      let wd = group_data ctx winner and ld = group_data ctx loser in
      (match wd.gtyp, ld.gtyp with
      | Some a, Some b when not (M.Typ.equal a b) ->
        raise
          (Type_violation
             (Format.asprintf
                "merge of groups %d and %d with incompatible types: %a vs %a" winner loser
                M.Typ.pp a M.Typ.pp b))
      | None, (Some _ as t) -> wd.gtyp <- t
      | _ -> ());
      ctx.parents.(loser) <- winner;
      wd.gexprs <- List.filter (fun m -> not (self_referential ctx winner m)) wd.gexprs;
      List.iter
        (fun m ->
          if
            (not (self_referential ctx winner m))
            && not (List.exists (fun m' -> mexpr_equal ctx m m') wd.gexprs)
          then begin
            wd.gexprs <- m :: wd.gexprs;
            Hashtbl.add ctx.mexpr_index (index_key ctx m) winner
          end)
        (List.rev ld.gexprs);
      ld.gexprs <- []
    end

  (* Memo-wide type invariant: derive the type of [m] from its input
     groups' types and check it against the group's; raises
     [Type_violation] on any failure. Inputs always carry a type when a
     hook is installed — a group is created together with its first
     mexpr, which sets it. *)
  let typecheck_mexpr ctx gd m =
    match ctx.typing with
    | None -> ()
    | Some derive -> (
      let input_typ g' =
        match (group_data ctx g').gtyp with
        | Some ty -> ty
        | None ->
          raise
            (Type_violation
               (Format.asprintf "input group %d of %a has no inferred type" g' M.Op.pp
                  m.mop))
      in
      match derive m.mop (List.map input_typ m.minputs) with
      | Error msg ->
        raise
          (Type_violation (Format.asprintf "%a is ill-typed: %s" M.Op.pp m.mop msg))
      | Ok ty -> (
        match gd.gtyp with
        | None -> gd.gtyp <- Some ty
        | Some gty ->
          if not (M.Typ.equal ty gty) then
            raise
              (Type_violation
                 (Format.asprintf "group %d has type %a but %a derives %a" gd.gid
                    M.Typ.pp gty M.Op.pp m.mop M.Typ.pp ty))))

  (* Add [m] to group [g]; returns the worklist entries to process and
     whether the expression was new anywhere in the memo. *)
  let add_mexpr ctx g m =
    let g = find ctx g in
    let m = canon_mexpr ctx m in
    if self_referential ctx g m then None
    else
    match lookup_mexpr ctx m with
    | Some g' when g' = g -> None
    | Some g' ->
      union ctx g g';
      None
    | None ->
      let gd = group_data ctx g in
      if List.exists (fun m' -> mexpr_equal ctx m m') gd.gexprs then None
      else begin
        typecheck_mexpr ctx gd m;
        gd.gexprs <- m :: gd.gexprs;
        Hashtbl.add ctx.mexpr_index (index_key ctx m) g;
        ctx.generation <- ctx.generation + 1;
        (match ctx.tracer with None -> () | Some f -> f (Mexpr_added { group = g; op = m.mop }));
        Some (g, m)
      end

  (* ------------------------------------------------------------------ *)
  (* Rules and specification                                             *)

  type trule = {
    t_name : string;
    t_apply : ctx -> mexpr -> build list;
  }

  type candidate = {
    cand_alg : M.Alg.t;
    cand_inputs : (group * M.Pprop.t) list;
    cand_cost : M.Cost.t;
    cand_delivers : M.Pprop.t;
  }

  type irule = {
    i_name : string;
    i_apply : ctx -> required:M.Pprop.t -> mexpr -> candidate list;
  }

  type enforcer = {
    e_name : string;
    e_apply : ctx -> required:M.Pprop.t -> group -> (M.Alg.t * M.Pprop.t * M.Cost.t) list;
  }

  type spec = {
    derive_lprop : M.Op.t -> M.Lprop.t list -> M.Lprop.t;
    transformations : trule list;
    implementations : irule list;
    enforcers : enforcer list;
  }

  type plan = {
    alg : M.Alg.t;
    children : plan list;
    cost : M.Cost.t;
    delivered : M.Pprop.t;
  }

  type stats = {
    groups : int;
    mexprs : int;
    trule_fired : int;
    trule_tried : int;
    candidates : int;
    enforcer_uses : int;
    phys_memo_hits : int;
    closure_steps : int;
    closure_complete : bool;
  }

  type expr = Expr of M.Op.t * expr list

  type result = {
    plan : plan option;
    stats : stats;
    root : group;
    ctx : ctx;
  }

  (* ------------------------------------------------------------------ *)
  (* Logical closure                                                     *)

  (* Intern a build tree; fresh interior nodes get fresh (or shared)
     groups, with logical properties derived bottom-up. *)
  let rec intern_build spec ctx queue b =
    match b with
    | Ref g -> find ctx g
    | Node (op, children) ->
      let gs = List.map (intern_build spec ctx queue) children in
      let m = { mop = op; minputs = gs } in
      (match lookup_mexpr ctx m with
      | Some g -> g
      | None ->
        let lprop = spec.derive_lprop op (List.map (group_lprop ctx) gs) in
        let g = new_group ctx lprop in
        (match add_mexpr ctx g m with
        | Some entry -> Queue.add entry queue
        | None -> ());
        g)

  let rec intern_expr spec ctx queue (Expr (op, children)) =
    intern_build spec ctx queue
      (Node (op, List.map (fun e -> Ref (intern_expr spec ctx queue e)) children))

  let closure ?fuel spec ctx queue ~enabled_trules =
    let exhausted () =
      match fuel with None -> false | Some n -> ctx.ms.s_closure_steps >= n
    in
    while (not (Queue.is_empty queue)) && not (exhausted ()) do
      ctx.ms.s_closure_steps <- ctx.ms.s_closure_steps + 1;
      let g, m = Queue.pop queue in
      List.iter
        (fun rule ->
          ctx.ms.s_trule_tried <- ctx.ms.s_trule_tried + 1;
          let counter = rule_counter ctx rule.t_name in
          counter.rc_tried <- counter.rc_tried + 1;
          (match ctx.tracer with
          | None -> ()
          | Some f -> f (Trule_tried { rule = rule.t_name; group = find ctx g }));
          let builds = rule.t_apply ctx m in
          List.iter
            (fun b ->
              match b with
              | Ref _ ->
                (* A rule asserting the whole group equals another group:
                   merge them. *)
                let g' = intern_build spec ctx queue b in
                if find ctx g <> find ctx g' then begin
                  counter.rc_fired <- counter.rc_fired + 1;
                  match ctx.tracer with
                  | None -> ()
                  | Some f -> f (Trule_fired { rule = rule.t_name; group = find ctx g })
                end;
                union ctx g g'
              | Node (op, children) ->
                let gs =
                  List.map (fun c -> intern_build spec ctx queue (c : build)) children
                in
                let m' = { mop = op; minputs = gs } in
                (match add_mexpr ctx g m' with
                | Some entry ->
                  ctx.ms.s_trule_fired <- ctx.ms.s_trule_fired + 1;
                  counter.rc_fired <- counter.rc_fired + 1;
                  (match ctx.tracer with
                  | None -> ()
                  | Some f -> f (Trule_fired { rule = rule.t_name; group = find ctx g }));
                  Queue.add entry queue
                | None -> ()))
            builds)
        enabled_trules
    done;
    (* A drained queue means the rule set reached its fixpoint; leftover
       entries mean the fuel budget interrupted a (possibly diverging)
       closure. *)
    ctx.ms.s_closure_complete <- Queue.is_empty queue

  (* ------------------------------------------------------------------ *)
  (* Physical search                                                     *)

  type entry = {
    mutable best : plan option;
    mutable searched : M.Cost.t option; (* fully searched up to this limit *)
    mutable in_progress : bool;
    mutable egen : int; (* ctx generation the entry was computed under *)
  }

  let cost_le a b = M.Cost.compare a b <= 0

  module Phys_key = struct
    type t = int * M.Pprop.t

    let equal (g1, p1) (g2, p2) = g1 = g2 && M.Pprop.equal p1 p2

    let hash (g, p) = (g * 0x61c88647) lxor M.Pprop.hash p
  end

  module Phys_tbl = Hashtbl.Make (Phys_key)

  let optimize_physical ctx ~memo ~enabled_irules ~enabled_enforcers ~pruning ~initial_limit
      ~root ~required =
    let find_entry g p = Phys_tbl.find_opt memo (g, p) in
    let add_entry g p e = Phys_tbl.add memo (g, p) e in
    let rec optimize g required limit =
      let g = find ctx g in
      let entry =
        match find_entry g required with
        | Some e ->
          (* The logical memo grew since this entry was searched (a later
             root's closure added alternatives to shared groups): its
             result may be missing cheaper plans, so re-search it. *)
          if e.egen <> ctx.generation && not e.in_progress then begin
            e.best <- None;
            e.searched <- None;
            e.egen <- ctx.generation
          end;
          e
        | None ->
          let e =
            { best = None; searched = None; in_progress = false; egen = ctx.generation }
          in
          add_entry g required e;
          e
      in
      if entry.in_progress then None
      else
        let proven_optimal =
          match entry.best, entry.searched with
          | Some p, Some s -> cost_le p.cost s
          | _ -> false
        in
        if proven_optimal then begin
          ctx.ms.s_phys_memo_hits <- ctx.ms.s_phys_memo_hits + 1;
          (match ctx.tracer with
          | None -> ()
          | Some f -> f (Phys_memo_hit { group = g; required }));
          match entry.best with
          | Some p when cost_le p.cost limit -> Some p
          | Some _ | None -> None
        end
        else
          match entry.searched with
          | Some s when cost_le limit s ->
            (* already searched at least this far and found nothing *)
            ctx.ms.s_phys_memo_hits <- ctx.ms.s_phys_memo_hits + 1;
            (match ctx.tracer with
            | None -> ()
            | Some f -> f (Phys_memo_hit { group = g; required }));
            (match entry.best with
            | Some p when cost_le p.cost limit -> Some p
            | Some _ | None -> None)
          | _ ->
            entry.in_progress <- true;
            let best = ref entry.best in
            let current_limit () =
              if not pruning then M.Cost.infinite
              else
                match !best with
                | Some p when cost_le p.cost limit -> p.cost
                | _ -> limit
            in
            let consider plan =
              match !best with
              | Some b when cost_le b.cost plan.cost -> ()
              | _ -> best := Some plan
            in
            let try_candidate cand =
              ctx.ms.s_candidates <- ctx.ms.s_candidates + 1;
              if M.Pprop.satisfies ~delivered:cand.cand_delivers ~required then begin
                let limit0 = current_limit () in
                (match ctx.tracer with
                | None -> ()
                | Some f ->
                  if not (cost_le cand.cand_cost limit0) then
                    f
                      (Pruned
                         { group = g;
                           alg = cand.cand_alg;
                           cost = cand.cand_cost;
                           limit = limit0 }));
                if cost_le cand.cand_cost limit0 then begin
                  let rec opt_children acc_cost acc_plans = function
                    | [] -> Some (List.rev acc_plans, acc_cost)
                    | (child, cprops) :: rest -> (
                      let remaining = M.Cost.sub (current_limit ()) acc_cost in
                      match optimize child cprops remaining with
                      | None -> None
                      | Some cplan ->
                        opt_children (M.Cost.add acc_cost cplan.cost) (cplan :: acc_plans) rest)
                  in
                  match opt_children cand.cand_cost [] cand.cand_inputs with
                  | None -> ()
                  | Some (children, total) ->
                    consider
                      { alg = cand.cand_alg;
                        children;
                        cost = total;
                        delivered = cand.cand_delivers }
                end
              end
            in
            List.iter
              (fun m ->
                List.iter
                  (fun (ir : irule) ->
                    let counter = rule_counter ctx ir.i_name in
                    counter.rc_tried <- counter.rc_tried + 1;
                    (match ctx.tracer with
                    | None -> ()
                    | Some f -> f (Irule_tried { rule = ir.i_name; group = g }));
                    let cands = ir.i_apply ctx ~required m in
                    counter.rc_fired <- counter.rc_fired + List.length cands;
                    List.iter
                      (fun cand ->
                        (match ctx.tracer with
                        | None -> ()
                        | Some f ->
                          f
                            (Candidate_costed
                               { rule = ir.i_name;
                                 group = g;
                                 alg = cand.cand_alg;
                                 cost = cand.cand_cost }));
                        try_candidate cand)
                      cands)
                  enabled_irules)
              (group_exprs ctx g);
            (* Enforcers: achieve [required] by gluing a property-enforcing
               algorithm on top of a plan for weaker requirements. *)
            List.iter
              (fun (en : enforcer) ->
                let counter = rule_counter ctx en.e_name in
                counter.rc_tried <- counter.rc_tried + 1;
                (match ctx.tracer with
                | None -> ()
                | Some f -> f (Enforcer_tried { rule = en.e_name; group = g }));
                let offers = en.e_apply ctx ~required g in
                counter.rc_fired <- counter.rc_fired + List.length offers;
                List.iter
                  (fun (alg, weaker, ecost) ->
                    (match ctx.tracer with
                    | None -> ()
                    | Some f ->
                      f (Enforcer_offered { rule = en.e_name; group = g; alg; cost = ecost }));
                    let remaining = M.Cost.sub (current_limit ()) ecost in
                    match optimize g weaker remaining with
                    | None -> ()
                    | Some sub ->
                      ctx.ms.s_enforcer_uses <- ctx.ms.s_enforcer_uses + 1;
                      (match ctx.tracer with
                      | None -> ()
                      | Some f -> f (Enforcer_inserted { group = g; alg }));
                      consider
                        { alg;
                          children = [ sub ];
                          cost = M.Cost.add ecost sub.cost;
                          delivered = required })
                  offers)
              enabled_enforcers;
            entry.best <- !best;
            entry.searched <-
              Some
                (match entry.searched with
                | Some s when not (cost_le s limit) -> s
                | _ -> limit);
            entry.in_progress <- false;
            (match !best with
            | Some p when cost_le p.cost limit -> Some p
            | Some _ | None -> None)
    in
    optimize root required initial_limit

  (* ------------------------------------------------------------------ *)
  (* Entry point                                                         *)

  let count_mexprs ctx =
    let n = ref 0 in
    for g = 0 to ctx.n_groups - 1 do
      if find ctx g = g then n := !n + List.length (group_data ctx g).gexprs
    done;
    !n

  let count_groups ctx =
    let n = ref 0 in
    for g = 0 to ctx.n_groups - 1 do
      if find ctx g = g then incr n
    done;
    !n

  (* A session owns one memo (logical groups plus the physical
     (group, properties) table) shared across any number of roots: the
     multi-query-optimization substrate. Registering a root interns its
     expression — re-finding every group an earlier root already created
     — and runs the logical closure over whatever is genuinely new;
     solving runs the goal-directed physical search, whose memo entries
     persist across roots, so a subexpression shared by two queries is
     expanded, costed and pruned once. *)
  type session = {
    ss_spec : spec;
    ss_trules : trule list;
    ss_irules : irule list;
    ss_enforcers : enforcer list;
    ss_pruning : bool;
    ss_closure_fuel : int option; (* budget over the whole session's closure steps *)
    ss_spans : Span.t option; (* search-phase spans; None is the nil-sink fast path *)
    ss_ctx : ctx;
    ss_phys : entry Phys_tbl.t;
  }

  let session ?(disabled = []) ?(pruning = true) ?closure_fuel ?trace ?spans ?typing spec
      =
    let enabled name = not (List.mem name disabled) in
    let ctx =
      { parents = Array.init 64 (fun i -> i);
        groups = Array.make 64 None;
        n_groups = 0;
        mexpr_index = Hashtbl.create 256;
        ms =
          { s_trule_fired = 0;
            s_trule_tried = 0;
            s_candidates = 0;
            s_enforcer_uses = 0;
            s_phys_memo_hits = 0;
            s_closure_steps = 0;
            s_closure_complete = true };
        rule_tbl = Hashtbl.create 32;
        generation = 0;
        tracer = trace;
        typing }
    in
    { ss_spec = spec;
      ss_trules = List.filter (fun r -> enabled r.t_name) spec.transformations;
      ss_irules = List.filter (fun r -> enabled r.i_name) spec.implementations;
      ss_enforcers = List.filter (fun r -> enabled r.e_name) spec.enforcers;
      ss_pruning = pruning;
      ss_closure_fuel = closure_fuel;
      ss_spans = spans;
      ss_ctx = ctx;
      ss_phys = Phys_tbl.create 256 }

  let session_ctx s = s.ss_ctx

  let register s expr =
    let ctx = s.ss_ctx in
    let queue = Queue.create () in
    let root =
      Span.with_span s.ss_spans ~cat:"volcano" "intern" (fun () ->
          intern_expr s.ss_spec ctx queue expr)
    in
    Span.with_span s.ss_spans ~cat:"volcano" "logical-closure"
      ~args:[ ("root_group", Json.Int root) ]
      (fun () ->
        closure ?fuel:s.ss_closure_fuel s.ss_spec ctx queue ~enabled_trules:s.ss_trules);
    find ctx root

  let snapshot_stats ctx =
    { groups = count_groups ctx;
      mexprs = count_mexprs ctx;
      trule_fired = ctx.ms.s_trule_fired;
      trule_tried = ctx.ms.s_trule_tried;
      candidates = ctx.ms.s_candidates;
      enforcer_uses = ctx.ms.s_enforcer_uses;
      phys_memo_hits = ctx.ms.s_phys_memo_hits;
      closure_steps = ctx.ms.s_closure_steps;
      closure_complete = ctx.ms.s_closure_complete }

  let solve s ?(initial_limit = M.Cost.infinite) root ~required =
    let ctx = s.ss_ctx in
    let plan =
      Span.with_span s.ss_spans ~cat:"volcano" "physical-search"
        ~args:[ ("root_group", Json.Int (find ctx root)) ]
        (fun () ->
          optimize_physical ctx ~memo:s.ss_phys ~enabled_irules:s.ss_irules
            ~enabled_enforcers:s.ss_enforcers ~pruning:s.ss_pruning ~initial_limit
            ~root:(find ctx root) ~required)
    in
    { plan; stats = snapshot_stats ctx; root = find ctx root; ctx }

  let run ?disabled ?pruning ?(initial_limit = M.Cost.infinite) ?closure_fuel ?trace ?spans
      ?typing spec expr ~required =
    let s = session ?disabled ?pruning ?closure_fuel ?trace ?spans ?typing spec in
    let root = register s expr in
    solve s ~initial_limit root ~required

  let rec plan_to_tree plan =
    Pretty.Node (Format.asprintf "%a" M.Alg.pp plan.alg, List.map plan_to_tree plan.children)

  let pp_plan ppf plan = Format.pp_print_string ppf (Pretty.render (plan_to_tree plan))

  let pp_memo ppf ctx =
    for g = 0 to ctx.n_groups - 1 do
      if find ctx g = g then begin
        let gd = group_data ctx g in
        Format.fprintf ppf "group %d: %a@." g M.Lprop.pp gd.glprop;
        List.iter
          (fun m ->
            Format.fprintf ppf "  %a [%s]@." M.Op.pp m.mop
              (String.concat " " (List.map string_of_int (List.map (find ctx) m.minputs))))
          (List.rev gd.gexprs)
      end
    done
end
