(** Deterministic synthetic database matching the Table 1 catalog.

    Key invariants relied on by the experiments (at [scale = 1.0]):
    - 10 of the 100 plants are located in Dallas, so 100 of the 1,000
      departments and 5,000 of the 50,000 employees qualify for Query 1;
    - exactly 2 of the 10,000 cities have a mayor named "Joe" (Query 2);
    - employee names have 100 distinct values including "Fred";
    - task completion times have 1,000 distinct values, so
      [time == 100] selects ~10 tasks (Query 4);
    - every reference is containment-consistent with the collection the
      Mat-to-Join rule would join against (referential integrity).

    All data derives from fixed congruences, not a PRNG, so runs are
    reproducible and counts are exact. *)

(** {1 Generic measured-statistics and index helpers}

    Shared with the scenario factory ([lib/scenario]), whose generated
    databases install the same kind of measured catalog statistics and
    B-tree indexes as the Table-1 database below. *)

val measured_distinct : Oodb_storage.Store.t -> coll:string -> field:string -> int
(** Exact distinct-value count of a stored field, via free [peek] reads. *)

val measured_avg_set_size : Oodb_storage.Store.t -> coll:string -> field:string -> float
(** Mean cardinality of a set-valued field over a collection. *)

val add_field_index :
  Oodb_storage.Store.t ->
  Oodb_exec.Db.t ->
  Oodb_catalog.Catalog.t ->
  name:string ->
  coll:string ->
  field:string ->
  unit
(** Build a B-tree index on a terminal field, register it with the
    database, and record its metadata (with measured [ix_distinct]) in
    the catalog. *)

val add_path_index :
  Oodb_storage.Store.t ->
  Oodb_exec.Db.t ->
  Oodb_catalog.Catalog.t ->
  name:string ->
  coll:string ->
  ref_field:string ->
  field:string ->
  unit
(** Same for a two-step path index [ref_field.field] (the shape of the
    paper's [cities_mayor_name]); objects with a null reference key as
    [Null]. *)

val generate : ?scale:float -> ?buffer_pages:int -> unit -> Oodb_exec.Db.t
(** Build store + physical indexes under a fresh
    {!Oodb_catalog.Open_oodb_catalog.catalog_with_indexes} catalog whose
    collection cardinalities are adjusted to the actual generated counts
    when [scale <> 1.0]. [scale] scales every collection (useful for fast
    tests; minimum sizes keep the schema connected). *)

val generate_catalog_only : ?scale:float -> unit -> Oodb_catalog.Catalog.t
(** The catalog that [generate] would pair with the data. *)

val generate_skewed : ?scale:float -> ?buffer_pages:int -> unit -> Oodb_exec.Db.t
(** {!generate}, then deterministically corrupt the employee-name
    statistics (class distinct and the [employees_name] index's
    [ix_distinct]) down to 2 where the data really has ~100 distinct
    names. The cold optimizer then prices [name = "Fred"] at selectivity
    1/2 and rejects the name index; one profiled execution under
    feedback observes the true selectivity and records a q-error past
    the default gate, so the next optimization flips to the index scan.
    The demo catalog for the cardinality-feedback loop. *)

val micro : ?variant:int -> unit -> Oodb_exec.Db.t
(** A micro-database with 2–4 objects per extent, for bounded
    (denotational) rule certification: small enough to evaluate both
    sides of every rewrite exhaustively with the reference interpreter.
    [variant] deterministically changes extent sizes, reference wiring,
    and team-set sizes. Built through the same generator as {!generate},
    so referential integrity holds. *)

val n_micro_variants : int

val micro_family : unit -> Oodb_exec.Db.t list
(** The enumerated family [micro ~variant:0 .. n_micro_variants - 1]. *)
