module Logical = Oodb_algebra.Logical
module Pred = Oodb_algebra.Pred
module Value = Oodb_storage.Value

let field b f = Pred.Field (b, f)

let proj b f = { Logical.p_expr = field b f; p_name = b ^ "." ^ f }

let str s = Pred.Const (Value.Str s)

let int i = Pred.Const (Value.Int i)

let eq a b = Pred.atom Pred.Eq a b

(* Figure 5 *)
let q1 =
  Logical.get ~coll:"Employees" ~binding:"e"
  |> Logical.mat ~src:"e" ~field:"job"
  |> Logical.mat ~src:"e" ~field:"dept"
  |> Logical.mat ~src:"e.dept" ~field:"plant"
  |> Logical.select [ eq (field "e.dept.plant" "location") (str "Dallas") ]
  |> Logical.project [ proj "e" "name"; proj "e.job" "name"; proj "e.dept" "name" ]

(* Figure 8 *)
let q2 =
  Logical.get ~coll:"Cities" ~binding:"c"
  |> Logical.mat ~src:"c" ~field:"mayor"
  |> Logical.select [ eq (field "c.mayor" "name") (str "Joe") ]

(* Figure 10 *)
let q3 =
  q2 |> Logical.project [ proj "c.mayor" "age"; proj "c" "name" ]

(* Figure 12 *)
let q4 =
  Logical.get ~coll:"Tasks" ~binding:"t"
  |> Logical.unnest ~out:"m" ~src:"t" ~field:"team_members"
  |> Logical.mat_ref ~out:"e" ~src:"m"
  |> Logical.select
       [ eq (field "e" "name") (str "Fred"); eq (field "t" "time") (int 100) ]

(* The feedback-loop demo (not in the paper): a single-table name
   lookup whose plan depends entirely on how selective the optimizer
   believes [name = "Fred"] is — file scan under the skewed statistics,
   index scan once feedback corrects them. *)
let fred =
  Logical.get ~coll:"Employees" ~binding:"e"
  |> Logical.select [ eq (field "e" "name") (str "Fred") ]

(* Figure 2 *)
let fig2 =
  Logical.get ~coll:"Cities" ~binding:"c"
  |> Logical.mat ~src:"c" ~field:"mayor"
  |> Logical.mat ~src:"c" ~field:"country"
  |> Logical.mat ~src:"c.country" ~field:"president"
  |> Logical.select
       [ eq (field "c.mayor" "name") (field "c.country.president" "name") ]

(* Figure 3 *)
let fig3 =
  Logical.get ~coll:"Tasks" ~binding:"t"
  |> Logical.unnest ~out:"m" ~src:"t" ~field:"team_members"
  |> Logical.mat_ref ~out:"e" ~src:"m"

(* Not from the paper: an n-way self-join chain over Employees, adjacent
   bindings linked by name equality. join-assoc and join-commute expand
   it into the full bushy join space, so memo size and optimization time
   grow steeply with [width] — the scaling workload for the guided
   search. *)
let join_chain width =
  if width < 2 then invalid_arg "Queries.join_chain: width must be >= 2";
  let get i = Logical.get ~coll:"Employees" ~binding:(Printf.sprintf "j%d" i) in
  let link i = eq (field (Printf.sprintf "j%d" (i - 1)) "name") (field (Printf.sprintf "j%d" i) "name") in
  let rec build acc i =
    if i >= width then acc else build (Logical.join [ link i ] acc (get i)) (i + 1)
  in
  build (get 0) 1

let all =
  [ ("q1", q1); ("q2", q2); ("q3", q3); ("q4", q4); ("fig2", fig2); ("fig3", fig3) ]
