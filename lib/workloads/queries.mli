(** The paper's example queries as optimizer-input logical algebra.

    Binding names follow the paper's path naming, so the plans render
    exactly like its figures: [Mat e.dept] introduces binding ["e.dept"],
    which plays the role of the paper's [d]. *)

module Logical = Oodb_algebra.Logical

val q1 : Logical.t
(** Figure 5: name, department name and job name of employees working in
    a plant in Dallas. Three Mats over the Employees set; the Plant class
    has no extent. *)

val q2 : Logical.t
(** Figure 8: cities whose mayor is called Joe (path index on
    [mayor.name] makes collapse-to-index-scan applicable). *)

val q3 : Logical.t
(** Figure 10: Query 2 plus the mayor's age in the projection, requiring
    the mayor component in memory. *)

val q4 : Logical.t
(** Figure 12: tasks with a completion time of 100 hours and a team
    member called Fred (set-valued path; one index on [time], one on
    [name]). *)

val fig2 : Logical.t
(** Figure 2: cities whose mayor has the same name as the country's
    president — the multi-Mat path-expression example. *)

val fig3 : Logical.t
(** Figure 3: the set-valued path [task.team_members] unnested and
    materialized. *)

val fred : Logical.t
(** [Employees where name = "Fred"] — the cardinality-feedback demo
    query: with {!Datagen.generate_skewed} statistics the cold plan is a
    full scan; after one feedback pass the optimizer flips to the
    [employees_name] index. Not part of {!all} (it is not a paper
    query). *)

val join_chain : int -> Logical.t
(** An n-way self-join chain over Employees ([j0.name == j1.name == ...]).
    Not a paper query: the search-scaling workload — join associativity
    and commutativity expand an n-way chain into the full bushy join
    space, so memo size and optimization time grow steeply with the
    width.
    @raise Invalid_argument when the width is below 2. *)

val all : (string * Logical.t) list
(** Named list of everything above. *)
