module Value = Oodb_storage.Value
module Store = Oodb_storage.Store
module Btree_index = Oodb_storage.Btree_index
module Catalog = Oodb_catalog.Catalog
module OC = Oodb_catalog.Open_oodb_catalog
module Db = Oodb_exec.Db

type counts = {
  n_plants : int;
  n_jobs : int;
  n_depts : int;
  n_persons : int;
  n_capitals : int;
  n_countries : int;
  n_cities : int;
  n_employees : int;
  n_tasks : int;
  n_info : int;
  person_names : int;  (** distinct person-name pool (includes "Joe") *)
  employee_names : int;  (** distinct employee-name pool (includes "Fred") *)
  task_times : int;  (** distinct completion times *)
  team_size : int;
}

let counts_of_scale scale =
  let s n lo = max lo (int_of_float (float_of_int n *. scale)) in
  let n_persons = s 100_000 50 in
  let n_employees = s 50_000 50 in
  let n_tasks = s 10_000 20 in
  { n_plants = s 100 10;
    n_jobs = s 5_000 10;
    n_depts = s 1_000 20;
    n_persons;
    n_capitals = s 160 4;
    n_countries = s 160 4;
    n_cities = s 10_000 20;
    n_employees;
    n_tasks;
    n_info = s 1_000 5;
    person_names = min 5_000 (max 2 (n_persons / 20));
    employee_names = min 100 (max 2 (n_employees / 20));
    task_times = min 1_000 (max 2 (n_tasks / 10));
    team_size = 9 }

let vstr s = Value.Str s

let vint i = Value.Int i

let vref o = Value.Ref o

(* Object sizes from Table 1 (bytes). *)
let obj_bytes =
  [ ("Capitals", 400); ("Cities", 200); ("Countries", 300); ("Departments", 400);
    ("Employees", 250); ("Information", 400); ("Jobs", 250); ("Persons", 100);
    ("Plant.heap", 1_000); ("Tasks", 150) ]

let person_name c i = if i mod c.person_names = 0 then "Joe" else Printf.sprintf "pname_%d" (i mod c.person_names)

let employee_name c i =
  if i mod c.employee_names = 0 then "Fred" else Printf.sprintf "ename_%d" (i mod c.employee_names)

let plant_location i = if i mod 10 = 0 then "Dallas" else Printf.sprintf "loc_%d" (i mod 10)

let build_data store c =
  let cls_of = [ ("Capitals", "Capital"); ("Cities", "City"); ("Countries", "Country");
                 ("Departments", "Department"); ("Employees", "Employee");
                 ("Information", "Information"); ("Jobs", "Job"); ("Persons", "Person");
                 ("Plant.heap", "Plant"); ("Tasks", "Task") ] in
  List.iter
    (fun (coll, bytes) ->
      Store.declare_collection store ~name:coll ~cls:(List.assoc coll cls_of) ~obj_bytes:bytes)
    obj_bytes;
  let tabulate n f = Array.init n f in
  let plants =
    tabulate c.n_plants (fun i ->
        Store.insert store ~coll:"Plant.heap"
          [ ("name", vstr (Printf.sprintf "plant_%d" i)); ("location", vstr (plant_location i)) ])
  in
  let jobs =
    tabulate c.n_jobs (fun i ->
        Store.insert store ~coll:"Jobs"
          [ ("name", vstr (Printf.sprintf "job_%d" i)); ("level", vint (i mod 10)) ])
  in
  let depts =
    tabulate c.n_depts (fun i ->
        Store.insert store ~coll:"Departments"
          [ ("name", vstr (Printf.sprintf "dept_%d" i));
            ("floor", vint ((i mod 10) + 1));
            ("plant", vref plants.(i mod c.n_plants)) ])
  in
  let persons =
    tabulate c.n_persons (fun i ->
        Store.insert store ~coll:"Persons"
          [ ("name", vstr (person_name c i)); ("age", vint (20 + (i mod 80))) ])
  in
  let capitals =
    tabulate c.n_capitals (fun i ->
        Store.insert store ~coll:"Capitals"
          [ ("name", vstr (Printf.sprintf "capital_%d" i)); ("population", vint (10_000 * (i + 1))) ])
  in
  let countries =
    tabulate c.n_countries (fun i ->
        Store.insert store ~coll:"Countries"
          [ ("name", vstr (Printf.sprintf "country_%d" i));
            ("president", vref persons.(i * 613 mod c.n_persons));
            ("capital", vref capitals.(i mod c.n_capitals)) ])
  in
  let _cities =
    tabulate c.n_cities (fun i ->
        Store.insert store ~coll:"Cities"
          [ ("name", vstr (Printf.sprintf "city_%d" i));
            ("population", vint (1_000 * ((i mod 977) + 1)));
            (* a large coprime multiplier scatters mayors across the Person
               extent (realistic disk layout); exactly 2 of 10,000 cities
               get a "Joe" at scale 1 since gcd(57331, 5000) = 1 *)
            ("mayor", vref persons.(i * 57331 mod c.n_persons));
            ("country", vref countries.(i mod c.n_countries)) ])
  in
  let employees =
    tabulate c.n_employees (fun i ->
        Store.insert store ~coll:"Employees"
          [ ("name", vstr (employee_name c i));
            ("age", vint (20 + (i mod 46)));
            ("salary", Value.Float (20_000.0 +. float_of_int (i mod 1000) *. 75.0));
            ("last_raise", Value.Date (Value.date_of_ymd (1988 + (i mod 6)) ((i mod 12) + 1) 1));
            ("dept", vref depts.(i mod c.n_depts));
            ("job", vref jobs.(i mod c.n_jobs)) ])
  in
  let _tasks =
    tabulate c.n_tasks (fun i ->
        let members =
          List.init c.team_size (fun k ->
              (* Every other task whose time lands on 100 gets employee 0
                 (a "Fred") as a member, so Query 4 has a non-empty
                 result (5 rows at scale 1). *)
              if k = 0 && i mod (2 * c.task_times) = 99 then 0
              else ((i * 7) + (k * 13)) mod c.n_employees)
          |> List.sort_uniq compare
          |> List.map (fun e -> vref employees.(e))
        in
        Store.insert store ~coll:"Tasks"
          [ ("name", vstr (Printf.sprintf "task_%d" i));
            ("time", vint ((i mod c.task_times) + 1));
            ("team_members", Value.Set members) ])
  in
  let _info =
    tabulate c.n_info (fun i ->
        Store.insert store ~coll:"Information"
          [ ("subject", vstr (Printf.sprintf "subject_%d" i));
            ("body", vstr (Printf.sprintf "body of document %d" i)) ])
  in
  ()

(* Generic measured-statistics and index installation helpers, shared
   between this module's Table-1 database and the scenario factory's
   generated databases (lib/scenario). *)

let measured_distinct store ~coll ~field =
  let seen = Hashtbl.create 64 in
  List.iter
    (fun oid -> Hashtbl.replace seen (Store.field (Store.peek store oid) field) ())
    (Store.oids store ~coll);
  Hashtbl.length seen

let measured_avg_set_size store ~coll ~field =
  let total, n =
    List.fold_left
      (fun (total, n) oid ->
        (total + List.length (Value.set_elements (Store.field (Store.peek store oid) field)),
         n + 1))
      (0, 0) (Store.oids store ~coll)
  in
  float_of_int total /. float_of_int (max 1 n)

let install_index store db cat ~name ~coll ~path ~key =
  let ix = Btree_index.build store ~name ~coll ~key in
  Db.add_index db ix;
  Catalog.add_index cat
    { Catalog.ix_name = name;
      ix_coll = coll;
      ix_path = path;
      ix_distinct = Btree_index.distinct_keys ix }

let add_field_index store db cat ~name ~coll ~field =
  install_index store db cat ~name ~coll ~path:[ field ] ~key:(fun oid ->
      Store.field (Store.peek store oid) field)

let add_path_index store db cat ~name ~coll ~ref_field ~field =
  install_index store db cat ~name ~coll ~path:[ ref_field; field ] ~key:(fun oid ->
      match Value.as_ref (Store.field (Store.peek store oid) ref_field) with
      | Some target -> Store.field (Store.peek store target) field
      | None -> Value.Null)

let measured_catalog store =
  let cat = Catalog.create (OC.schema ()) in
  let kind_of = function
    | "Capitals" | "Cities" | "Employees" | "Tasks" -> Catalog.Set
    | "Plant.heap" -> Catalog.Hidden
    | _ -> Catalog.Extent
  in
  let cls_of coll = (Store.peek store (List.hd (Store.oids store ~coll))).Store.cls in
  List.iter
    (fun (coll, bytes) ->
      Catalog.add_collection cat
        { Catalog.co_name = coll;
          co_class = cls_of coll;
          co_kind = kind_of coll;
          co_card = Store.cardinality store ~coll;
          co_obj_bytes = bytes })
    obj_bytes;
  (* Measured distinct-value statistics (same set of attributes as the
     paper-exact catalog; Task.time and Employee.name intentionally come
     only from index statistics). *)
  let distinct coll field = measured_distinct store ~coll ~field in
  Catalog.set_distinct cat ~cls:"Person" ~field:"name" (distinct "Persons" "name");
  Catalog.set_distinct cat ~cls:"Person" ~field:"age" (distinct "Persons" "age");
  Catalog.set_distinct cat ~cls:"Plant" ~field:"location" (distinct "Plant.heap" "location");
  Catalog.set_distinct cat ~cls:"Department" ~field:"floor" (distinct "Departments" "floor");
  Catalog.set_distinct cat ~cls:"City" ~field:"name" (distinct "Cities" "name");
  Catalog.set_distinct cat ~cls:"Job" ~field:"name" (distinct "Jobs" "name");
  Catalog.set_avg_set_size cat ~cls:"Task" ~field:"team_members"
    (measured_avg_set_size store ~coll:"Tasks" ~field:"team_members");
  cat

let build_indexes store db cat =
  add_path_index store db cat ~name:"cities_mayor_name" ~coll:"Cities" ~ref_field:"mayor"
    ~field:"name";
  add_field_index store db cat ~name:"tasks_time" ~coll:"Tasks" ~field:"time";
  add_field_index store db cat ~name:"employees_name" ~coll:"Employees" ~field:"name"

let generate ?(scale = 1.0) ?buffer_pages () =
  let c = counts_of_scale scale in
  let buffer_pages =
    match buffer_pages with
    | Some n -> n
    | None -> Oodb_cost.Config.default.Oodb_cost.Config.buffer_pages
  in
  let store = Store.create ~buffer_pages () in
  build_data store c;
  let cat = measured_catalog store in
  let db = Db.create cat store in
  build_indexes store db cat;
  db

let generate_catalog_only ?scale () = Db.catalog (generate ?scale ~buffer_pages:64 ())

(* The feedback-loop demo: the same database, but with the name
   statistics corrupted to claim only [skewed_distinct] distinct employee
   names where the data really has ~100. The estimator then prices
   [name = "Fred"] at selectivity 1/2 — thousands of phantom matches —
   so the cold optimizer rejects the name index in favor of a full scan,
   and the first profiled execution records a q-error large enough
   (~card/2 estimated vs ~card/100 actual) to trip the default
   [feedback_qerror_limit] gate. Both the class distinct and the index's
   [ix_distinct] are corrupted, keeping Select and collapse-index-scan
   pricing consistent. The corruption is deterministic, so the catalog's
   (epoch, digest) — and with them plan-cache fingerprints and
   feedback-store scopes — agree across processes. *)
let skewed_distinct = 2

let generate_skewed ?scale ?buffer_pages () =
  let db = generate ?scale ?buffer_pages () in
  let cat = Db.catalog db in
  (match Catalog.find_collection cat "Employees" with
  | Some co ->
    Catalog.set_distinct cat ~cls:co.Catalog.co_class ~field:"name" skewed_distinct
  | None -> ());
  (match
     List.find_opt
       (fun ix -> String.equal ix.Catalog.ix_name "employees_name")
       (Catalog.indexes cat)
   with
  | Some ix ->
    Catalog.drop_index cat "employees_name";
    Catalog.add_index cat { ix with Catalog.ix_distinct = skewed_distinct }
  | None -> ());
  db

(* ------------------------------------------------------------------ *)
(* Enumerated micro-databases for bounded rule certification            *)

(* Tiny instances (2–4 objects per extent) small enough for the
   reference interpreter to evaluate both sides of a rewrite
   exhaustively, yet wired differently enough across variants to exercise
   empty/non-empty selections, dangling-free references, shared targets,
   and team sets of different sizes. Reuses [build_data], so every
   referential invariant of the full generator holds at micro scale. *)
let micro ?(variant = 0) () =
  let n k = 2 + ((variant + k) mod 3) in
  let c =
    { n_plants = n 0;
      n_jobs = n 1;
      n_depts = n 2;
      n_persons = n 3;
      n_capitals = n 4;
      n_countries = n 5;
      n_cities = n 6;
      n_employees = n 7;
      n_tasks = n 8;
      n_info = 2;
      (* tiny name pools force collisions, so equality predicates and the
         workload's "Joe"/"Fred" lookups select real subsets *)
      person_names = 2;
      employee_names = 2;
      task_times = 2;
      team_size = 1 + (variant mod 3) }
  in
  let store = Store.create ~buffer_pages:64 () in
  build_data store c;
  let cat = measured_catalog store in
  let db = Db.create cat store in
  build_indexes store db cat;
  db

let n_micro_variants = 6

let micro_family () = List.init n_micro_variants (fun variant -> micro ~variant ())
