(** Catalog: collections (user sets and type extents), their statistics,
    and index metadata — the information in the paper's Table 1 plus the
    distinct-value statistics that drive selectivity estimation.

    The catalog is metadata only; it does not hold data. Index
    availability is mutable so experiments can sweep index configurations
    (paper Table 3) without rebuilding anything else. *)

type coll_kind =
  | Set     (** user-defined named set, e.g. [Cities] *)
  | Extent  (** type extent, e.g. [extent(Job)] *)
  | Hidden  (** physically present but not scannable — the paper's [Plant]
                type, which "does not have an extent": the optimizer may
                not scan it and has no cardinality information for it *)

type collection = {
  co_name : string;
  co_class : string;
  co_kind : coll_kind;
  co_card : int;       (** cardinality statistic *)
  co_obj_bytes : int;  (** average object size in bytes *)
}

type index_def = {
  ix_name : string;
  ix_coll : string;        (** indexed collection *)
  ix_path : string list;   (** key path; length > 1 is a path index *)
  ix_distinct : int;       (** distinct keys statistic *)
}

type t

val create : Schema.t -> t

val schema : t -> Schema.t

(** {1 Epochs}

    A monotone counter identifying the catalog's mutation state: every
    statistics refresh or schema-level edit ([add_collection],
    [set_distinct], [set_avg_set_size], [add_index], [drop_index]) bumps
    it, so cached artifacts derived from the catalog — plan-cache
    entries in particular — can be invalidated by comparing epochs
    instead of rescanning contents. *)

val epoch : t -> int

val bump_epoch : t -> unit
(** Manual invalidation knob: force every catalog-derived cache entry
    stale without changing any statistic. *)

val digest : t -> Digest.t
(** Deterministic digest of the catalog's contents (schema classes,
    collections, indexes, statistics). Two catalogs built the same way —
    even in different processes — digest equal; any mutation that bumps
    the epoch also changes the digest unless it restored identical
    contents. Used alongside {!epoch} in plan-cache fingerprints so
    persisted entries survive process restarts safely. *)

(** {1 Collections} *)

val add_collection : t -> collection -> unit
(** @raise Invalid_argument on duplicate names or unknown classes. *)

val collections : t -> collection list

val find_collection : t -> string -> collection option

val scannables_of_class : t -> string -> collection list
(** Sets and extents (not [Hidden]) whose members have the given class —
    the candidate join inputs for the Mat-to-Join transformation. *)

val class_cardinality : t -> string -> int option
(** Total instances of a class if any non-hidden collection records it
    (largest collection wins: an extent contains every set). [None] for
    classes like [Plant] with no extent — the situation that makes the
    optimizer assume one fetch per reference in Query 1. *)

(** {1 Statistics} *)

val set_distinct : t -> cls:string -> field:string -> int -> unit
(** Record the number of distinct values of an attribute. *)

val distinct : t -> cls:string -> field:string -> int option

val set_avg_set_size : t -> cls:string -> field:string -> float -> unit

val avg_set_size : t -> cls:string -> field:string -> float
(** Average cardinality of a set-valued attribute; defaults to 10. *)

(** {1 Indexes} *)

val add_index : t -> index_def -> unit

val drop_index : t -> string -> unit
(** Remove by index name; unknown names are ignored. *)

val indexes : t -> index_def list

val indexes_on : t -> coll:string -> index_def list

val find_index : t -> coll:string -> path:string list -> index_def option
(** Index on exactly this key path of this collection. *)

val pp_table : Format.formatter -> t -> unit
(** Render the collection statistics in the style of the paper's Table 1. *)
