type coll_kind = Set | Extent | Hidden

type collection = {
  co_name : string;
  co_class : string;
  co_kind : coll_kind;
  co_card : int;
  co_obj_bytes : int;
}

type index_def = {
  ix_name : string;
  ix_coll : string;
  ix_path : string list;
  ix_distinct : int;
}

type t = {
  schema : Schema.t;
  colls : (string, collection) Hashtbl.t;
  mutable coll_order : collection list; (* reverse insertion order *)
  mutable indexes : index_def list;
  distinct_tbl : (string * string, int) Hashtbl.t;
  set_size_tbl : (string * string, float) Hashtbl.t;
  mutable epoch : int;
}

let create schema =
  { schema;
    colls = Hashtbl.create 16;
    coll_order = [];
    indexes = [];
    distinct_tbl = Hashtbl.create 32;
    set_size_tbl = Hashtbl.create 8;
    epoch = 0 }

let schema t = t.schema

let epoch t = t.epoch

let bump_epoch t = t.epoch <- t.epoch + 1

let add_collection t co =
  if Hashtbl.mem t.colls co.co_name then
    invalid_arg (Printf.sprintf "Catalog.add_collection: duplicate %s" co.co_name);
  if Schema.find_class t.schema co.co_class = None then
    invalid_arg (Printf.sprintf "Catalog.add_collection: unknown class %s" co.co_class);
  Hashtbl.add t.colls co.co_name co;
  t.coll_order <- co :: t.coll_order;
  bump_epoch t

let collections t = List.rev t.coll_order

let find_collection t name = Hashtbl.find_opt t.colls name

let scannables_of_class t cls =
  collections t
  |> List.filter (fun co -> co.co_class = cls && co.co_kind <> Hidden)

let class_cardinality t cls =
  match scannables_of_class t cls with
  | [] -> None
  | cos -> Some (List.fold_left (fun acc co -> max acc co.co_card) 0 cos)

let set_distinct t ~cls ~field n =
  Hashtbl.replace t.distinct_tbl (cls, field) n;
  bump_epoch t

let distinct t ~cls ~field = Hashtbl.find_opt t.distinct_tbl (cls, field)

let set_avg_set_size t ~cls ~field n =
  Hashtbl.replace t.set_size_tbl (cls, field) n;
  bump_epoch t

let avg_set_size t ~cls ~field =
  match Hashtbl.find_opt t.set_size_tbl (cls, field) with
  | Some n -> n
  | None -> 10.0

let add_index t ix =
  if List.exists (fun i -> i.ix_name = ix.ix_name) t.indexes then
    invalid_arg (Printf.sprintf "Catalog.add_index: duplicate %s" ix.ix_name);
  if not (Hashtbl.mem t.colls ix.ix_coll) then
    invalid_arg (Printf.sprintf "Catalog.add_index: unknown collection %s" ix.ix_coll);
  t.indexes <- t.indexes @ [ ix ];
  bump_epoch t

let drop_index t name =
  t.indexes <- List.filter (fun i -> i.ix_name <> name) t.indexes;
  bump_epoch t

let indexes t = t.indexes

let indexes_on t ~coll = List.filter (fun i -> i.ix_coll = coll) t.indexes

let find_index t ~coll ~path =
  List.find_opt (fun i -> i.ix_coll = coll && i.ix_path = path) t.indexes

(* Deterministic digest of everything that can change a plan: collections
   with their statistics, index definitions, per-attribute statistics, and
   the schema's class layout. Hash-table contents are emitted in sorted
   order so insertion history does not leak into the digest. *)
let digest t =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  List.iter
    (fun cd ->
      add "class %s:" cd.Schema.cl_name;
      List.iter
        (fun a ->
          add " %s=%s" a.Schema.a_name
            (Format.asprintf "%a" Schema.pp_attr_ty a.Schema.a_ty))
        cd.Schema.cl_attrs;
      add ";")
    (Schema.classes t.schema);
  List.iter
    (fun co ->
      add "coll %s class=%s kind=%d card=%d bytes=%d;" co.co_name co.co_class
        (match co.co_kind with Set -> 0 | Extent -> 1 | Hidden -> 2)
        co.co_card co.co_obj_bytes)
    (collections t);
  List.iter
    (fun ix ->
      add "index %s on %s(%s) distinct=%d;" ix.ix_name ix.ix_coll
        (String.concat "." ix.ix_path) ix.ix_distinct)
    t.indexes;
  let sorted_bindings tbl add_entry =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
    |> List.sort Stdlib.compare
    |> List.iter add_entry
  in
  sorted_bindings t.distinct_tbl (fun ((cls, field), n) ->
      add "distinct %s.%s=%d;" cls field n);
  sorted_bindings t.set_size_tbl (fun ((cls, field), n) ->
      add "setsize %s.%s=%h;" cls field n);
  Digest.string (Buffer.contents buf)

let kind_name = function Set -> "set" | Extent -> "extent" | Hidden -> "(none)"

let pp_table ppf t =
  Format.fprintf ppf "%-12s %-18s %-8s %10s %10s@." "Type" "Collection" "Kind" "Card." "Obj[bytes]";
  List.iter
    (fun co ->
      Format.fprintf ppf "%-12s %-18s %-8s %10d %10d@." co.co_class co.co_name
        (kind_name co.co_kind) co.co_card co.co_obj_bytes)
    (collections t)
