(* Rule-soundness certifier.

   For every registered rule — logical transformation, physical
   implementation, enforcer — this pass builds an evidence-backed
   verdict that the rule preserves query semantics:

   - {e Logical rules} are certified per {e instance}: every (input
     multi-expression, produced alternative) pair actually harvested
     from the memo over a query corpus. Each instance is checked
     statically — both sides must typecheck to the same {!Typing.t}
     (schema, scoping, duplicate semantics) and agree on estimated
     cardinality — and then {e denotationally}: both sides are executed
     with the reference interpreter ({!Interp}) over an enumerated
     family of micro-databases (2–4 objects per extent,
     {!Oodb_workloads.Datagen.micro_family}) and must produce the same
     row multiset on every one. A mismatch yields a concrete
     counterexample: the database, both expressions, both row lists.

   - {e Physical rules} are certified per {e plan occurrence}: the
     optimizer is run over the corpus under a family of option variants
     chosen so every implementation rule and enforcer appears in at
     least one winning plan (rule-toggle forcing, warm-start, ordered
     goals for the sort enforcer). Each winning plan is executed on each
     micro-database and compared against the interpreter's answer for
     the original query; every rule whose algorithm appears in a
     mismatching plan is refuted with the counterexample.

   Guard completeness is checked by construction: every rule
   application runs under a handler, and a rule that raises instead of
   declining (returning no alternatives) is reported as
   [Static_refuted] — an incomplete applicability guard.

   The same harvest feeds a rule-set meta-analysis: overlapping rules
   (two rules producing alternatives at the same memo site — confluence
   risk), ping-pong pairs (A rewrites x to y, B rewrites y back to x —
   termination risk handled by memo deduplication, but worth knowing),
   and dead rules the corpus never exercises. *)

module Value = Oodb_storage.Value
module Catalog = Oodb_catalog.Catalog
module Logical = Oodb_algebra.Logical
module Pred = Oodb_algebra.Pred
module Typing = Oodb_algebra.Typing
module Config = Oodb_cost.Config
module Lprops = Oodb_cost.Lprops
module Estimator = Oodb_cost.Estimator
module Model = Open_oodb.Model
module Engine = Open_oodb.Model.Engine
module Options = Open_oodb.Options
module Optimizer = Open_oodb.Optimizer
module Physical = Open_oodb.Physical
module Physprop = Open_oodb.Physprop
module Trules = Open_oodb.Trules
module Irules = Open_oodb.Irules
module Enforcers = Open_oodb.Enforcers
module Argtrans = Open_oodb.Argtrans
module Db = Oodb_exec.Db
module Executor = Oodb_exec.Executor
module Datagen = Oodb_workloads.Datagen
module Queries = Oodb_workloads.Queries
module Json = Oodb_util.Json

type kind =
  | Transformation
  | Implementation
  | Enforcer

let kind_name = function
  | Transformation -> "transformation"
  | Implementation -> "implementation"
  | Enforcer -> "enforcer"

type counterexample = {
  cx_variant : int;
  cx_db : string;
  cx_setting : string;
  cx_lhs : string;
  cx_rhs : string;
  cx_expected : Interp.row list;
  cx_actual : Interp.row list;
}

type status =
  | Certified
  | Bounded_only of string
  | No_instances
  | Static_refuted of string
  | Refuted of counterexample

let status_name = function
  | Certified -> "certified"
  | Bounded_only _ -> "bounded-only"
  | No_instances -> "no-instances"
  | Static_refuted _ -> "static-refuted"
  | Refuted _ -> "refuted"

let uncertified = function
  | Certified | Bounded_only _ -> false
  | No_instances | Static_refuted _ | Refuted _ -> true

type rule_report = {
  rr_rule : string;
  rr_kind : kind;
  rr_instances : int;  (** distinct rewrite instances / plan occurrences *)
  rr_checks : int;  (** denotational comparisons run *)
  rr_status : status;
}

type meta = {
  m_overlaps : (string * string * int) list;
  m_pingpong : (string * string * int) list;
  m_dead : string list;
}

type report = {
  cert_rules : rule_report list;
  cert_meta : meta;
  cert_dbs : int;
  cert_queries : int;
}

(* ------------------------------------------------------------------ *)
(* Corpus                                                               *)

(* The paper workload never uses the set operations, so setop-commute
   and setop-assoc would go uncertified (and be reported dead) without
   these synthetic queries. *)
let setop_queries =
  let emp () = Logical.get ~coll:"Employees" ~binding:"e" in
  let atom cmp l r = { Pred.cmp; lhs = l; rhs = r } in
  let young =
    Logical.select
      [ atom Pred.Lt (Pred.Field ("e", "age")) (Pred.Const (Value.Int 40)) ]
      (emp ())
  in
  let rich =
    Logical.select
      [ atom Pred.Gt (Pred.Field ("e", "salary")) (Pred.Const (Value.Float 30_000.0)) ]
      (emp ())
  in
  let named =
    Logical.select
      [ atom Pred.Eq (Pred.Field ("e", "name")) (Pred.Const (Value.Str "Fred")) ]
      (emp ())
  in
  [ ("setop-union", Logical.union young rich);
    ("setop-union-nested", Logical.union (Logical.union young rich) named);
    ("setop-intersect", Logical.intersect young rich);
    ("setop-difference", Logical.difference young named) ]

let corpus = Queries.all @ setop_queries

(* ------------------------------------------------------------------ *)
(* Harvesting transformation-rule instances from the memo               *)

type instance = { i_lhs : Logical.t; i_rhs : Logical.t }

(* Rebuild one representative logical expression per memo group, bottom
   up to a fixpoint (groups may reference groups created later, e.g. by
   select-split). Any member works as the representative: certification
   compares each rule's two sides, not the representative itself. *)
let reps_of ctx =
  let tbl : (Engine.group, Logical.t) Hashtbl.t = Hashtbl.create 64 in
  let gs = Engine.groups ctx in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun g ->
        if not (Hashtbl.mem tbl g) then
          List.iter
            (fun (m : Engine.mexpr) ->
              if not (Hashtbl.mem tbl g) then begin
                let ins = List.map (Hashtbl.find_opt tbl) m.Engine.minputs in
                if List.for_all Option.is_some ins then begin
                  Hashtbl.add tbl g
                    { Logical.op = m.Engine.mop; inputs = List.map Option.get ins };
                  changed := true
                end
              end)
            (Engine.group_exprs ctx g))
      gs
  done;
  tbl

let rec logical_of_build reps = function
  | Engine.Ref g -> (
    match Hashtbl.find_opt reps g with
    | Some e -> Ok e
    | None -> Error (Printf.sprintf "no representative for group %d" g))
  | Engine.Node (op, children) ->
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | c :: rest -> (
        match logical_of_build reps c with
        | Ok e -> go (e :: acc) rest
        | Error _ as e -> e)
    in
    Result.bind (go [] children) (fun inputs ->
        if Logical.arity op <> List.length inputs then
          Error "rule produced an expression with the wrong arity"
        else Ok { Logical.op; inputs })

type harvest = {
  h_instances : (string, instance list) Hashtbl.t;  (** rule -> instances, newest first *)
  h_guard_errors : (string, string) Hashtbl.t;  (** rule -> first exception *)
  h_overlaps : (string * string, int) Hashtbl.t;
  h_pingpong : (string * string, int) Hashtbl.t;
  h_fired : (string, int) Hashtbl.t;
}

let bump tbl k = Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k))

(* A rule that raises instead of declining has an incomplete
   applicability guard; record the exception and treat the application
   as producing nothing so harvesting survives. *)
let guarded h (r : Engine.trule) =
  { r with
    Engine.t_apply =
      (fun ctx m ->
        try r.Engine.t_apply ctx m
        with e ->
          if not (Hashtbl.mem h.h_guard_errors r.Engine.t_name) then
            Hashtbl.add h.h_guard_errors r.Engine.t_name (Printexc.to_string e);
          []) }

let record_instance h ~max_instances rule inst =
  let existing = Option.value ~default:[] (Hashtbl.find_opt h.h_instances rule) in
  if
    List.length existing < max_instances
    && not
         (List.exists
            (fun i -> Logical.equal i.i_lhs inst.i_lhs && Logical.equal i.i_rhs inst.i_rhs)
            existing)
  then Hashtbl.replace h.h_instances rule (inst :: existing)

(* Harvest every (multi-expression, alternative) pair each rule produces
   over the corpus: run the logical closure per query (transformations
   only — physical search is irrelevant here and a broken rule must not
   be masked by it), then sweep the final memo re-applying every rule to
   every multi-expression. *)
let harvest_trules ~cfg ~cat ~disabled ~trules ~max_instances queries =
  let h =
    { h_instances = Hashtbl.create 32;
      h_guard_errors = Hashtbl.create 8;
      h_overlaps = Hashtbl.create 32;
      h_pingpong = Hashtbl.create 8;
      h_fired = Hashtbl.create 32 }
  in
  let trules = List.map (guarded h) trules in
  let enabled = List.filter (fun (r : Engine.trule) -> not (List.mem r.Engine.t_name disabled)) trules in
  let spec =
    { Engine.derive_lprop = Estimator.derive cfg cat;
      transformations = trules;
      implementations = [];
      enforcers = [] }
  in
  List.iter
    (fun (_qname, q) ->
      let s = Engine.session ~disabled spec in
      let _root = Engine.register s (Model.expr_of_logical q) in
      let ctx = Engine.session_ctx s in
      let reps = reps_of ctx in
      List.iter
        (fun g ->
          (* productions within this group, for the ping-pong analysis *)
          let productions = ref [] in
          List.iter
            (fun (m : Engine.mexpr) ->
              let lhs =
                let ins = List.map (Hashtbl.find_opt reps) m.Engine.minputs in
                if List.for_all Option.is_some ins then
                  Some { Logical.op = m.Engine.mop; inputs = List.map Option.get ins }
                else None
              in
              let site_rules = ref [] in
              List.iter
                (fun (r : Engine.trule) ->
                  let builds = r.Engine.t_apply ctx m in
                  if builds <> [] then begin
                    bump h.h_fired r.Engine.t_name;
                    site_rules := r.Engine.t_name :: !site_rules
                  end;
                  match lhs with
                  | None -> ()
                  | Some lhs ->
                    List.iter
                      (fun b ->
                        match logical_of_build reps b with
                        | Error _ -> ()  (* alternative over an unrepresentable group *)
                        | Ok rhs ->
                          record_instance h ~max_instances r.Engine.t_name
                            { i_lhs = lhs; i_rhs = rhs };
                          productions := (lhs, r.Engine.t_name, rhs) :: !productions)
                      builds)
                enabled;
              (* two rules firing at the same memo site: overlapping
                 left-hand sides (confluence risk) *)
              let rec pairs = function
                | [] -> ()
                | a :: rest ->
                  List.iter
                    (fun b ->
                      let k = if a < b then (a, b) else (b, a) in
                      bump h.h_overlaps k)
                    rest;
                  pairs rest
              in
              pairs (List.sort_uniq compare !site_rules))
            (Engine.group_exprs ctx g);
          (* ping-pong: r1 turns x into y and r2 turns y back into x *)
          List.iter
            (fun (x, r1, y) ->
              List.iter
                (fun (x', r2, y') ->
                  if
                    (not (Logical.equal x y))
                    && Logical.equal x y' && Logical.equal y x'
                    && (r1 < r2 || (r1 = r2 && not (Logical.equal x' x)))
                  then bump h.h_pingpong (min r1 r2, max r1 r2))
                !productions)
            !productions)
        (Engine.groups ctx))
    queries;
  h

(* ------------------------------------------------------------------ *)
(* Checking one transformation instance                                 *)

let describe_db db =
  Catalog.collections (Db.catalog db)
  |> List.map (fun (c : Catalog.collection) -> Printf.sprintf "%s=%d" c.Catalog.co_name c.Catalog.co_card)
  |> String.concat ", "

let rtol = 1e-6

(* Static side: both expressions must carry the same type (schema,
   scoping, duplicate semantics) and the same estimated cardinality —
   the properties every memo group stores once for all members. *)
let static_check cfg cat inst =
  match (Typing.infer cat inst.i_lhs, Typing.infer cat inst.i_rhs) with
  | Error e, _ -> Error (`Refuted (Printf.sprintf "input side does not typecheck: %s" e))
  | _, Error e -> Error (`Refuted (Printf.sprintf "rule output does not typecheck: %s" e))
  | Ok tl, Ok tr ->
    if not (Typing.equal tl tr) then
      Error
        (`Refuted
          (Printf.sprintf "type not preserved: %s vs %s" (Typing.to_string tl)
             (Typing.to_string tr)))
    else (
      match (Estimator.derive_expr cfg cat inst.i_lhs, Estimator.derive_expr cfg cat inst.i_rhs) with
      | exception Invalid_argument m ->
        Error (`Bounded (Printf.sprintf "cardinality not statically derivable: %s" m))
      | ll, lr ->
        let cl = ll.Lprops.card and cr = lr.Lprops.card in
        if Float.abs (cl -. cr) > rtol *. (1.0 +. Float.abs cl) then
          Error
            (`Bounded (Printf.sprintf "estimated cardinality not preserved: %g vs %g" cl cr))
        else Ok ())

(* Denotational side: same row multiset on every micro-database. *)
let denotational_check dbs inst =
  let rec go variant = function
    | [] -> Ok ()
    | db :: rest ->
      let expected = Interp.rows db inst.i_lhs in
      let actual = Interp.rows db inst.i_rhs in
      if Interp.same_rows expected actual then go (variant + 1) rest
      else
        Error
          { cx_variant = variant;
            cx_db = describe_db db;
            cx_setting = "rewrite instance";
            cx_lhs = Logical.to_string inst.i_lhs;
            cx_rhs = Logical.to_string inst.i_rhs;
            cx_expected = expected;
            cx_actual = actual }
  in
  go 0 dbs

let certify_trule ~cfg ~cat ~dbs h (r : Engine.trule) =
  let name = r.Engine.t_name in
  let instances = List.rev (Option.value ~default:[] (Hashtbl.find_opt h.h_instances name)) in
  let n = List.length instances in
  let checks = n * List.length dbs in
  let status =
    match Hashtbl.find_opt h.h_guard_errors name with
    | Some e -> Static_refuted (Printf.sprintf "incomplete applicability guard, rule raised: %s" e)
    | None ->
      if instances = [] then No_instances
      else begin
        (* counterexamples first: a concrete mismatching database is the
           most actionable verdict *)
        let refuted =
          List.find_map
            (fun i -> match denotational_check dbs i with Ok () -> None | Error cx -> Some cx)
            instances
        in
        match refuted with
        | Some cx -> Refuted cx
        | None ->
          let statics = List.map (static_check cfg cat) instances in
          let first p = List.find_map (function Error e -> p e | Ok () -> None) statics in
          (match first (function `Refuted m -> Some m | _ -> None) with
          | Some m -> Static_refuted m
          | None -> (
            match first (function `Bounded m -> Some m | _ -> None) with
            | Some m -> Bounded_only m
            | None -> Certified))
      end
  in
  { rr_rule = name; rr_kind = Transformation; rr_instances = n; rr_checks = checks; rr_status = status }

(* ------------------------------------------------------------------ *)
(* Physical rules: whole-plan certification                             *)

(* Map each algorithm in a winning plan back to the rule that offers
   it. A cold Assembly is offered both by the mat-assembly
   implementation and the assembly enforcer, so it certifies (or
   refutes) both. *)
let rules_of_alg = function
  | Physical.File_scan _ -> [ "file-scan" ]
  | Physical.Index_scan _ -> [ "collapse-index-scan" ]
  | Physical.Filter _ -> [ "filter" ]
  | Physical.Hash_join _ -> [ "hash-join" ]
  | Physical.Merge_join _ -> [ "merge-join" ]
  | Physical.Pointer_join _ -> [ "pointer-join" ]
  | Physical.Assembly { warm = Some _; _ } -> [ "warm-assembly" ]
  | Physical.Assembly _ -> [ "mat-assembly"; "assembly-enforcer" ]
  | Physical.Alg_project _ -> [ "alg-project" ]
  | Physical.Alg_unnest _ -> [ "alg-unnest" ]
  | Physical.Hash_union | Physical.Hash_intersect | Physical.Hash_difference -> [ "hash-setop" ]
  | Physical.Sort _ -> [ "sort-enforcer" ]

let rec plan_rules (p : Engine.plan) =
  rules_of_alg p.Engine.alg @ List.concat_map plan_rules p.Engine.children

(* Option variants chosen so that every implementation rule and enforcer
   shows up in at least one winning plan over the corpus: the cost model
   is free to prefer one join algorithm on every micro-database, so the
   "force-*" variants disable its competitors. *)
let option_variants base =
  let dis names o = List.fold_left (fun o n -> Options.disable n o) o names in
  [ ("default", base);
    ("warm-start", Options.with_warm_start base);
    ("window-1", Options.with_assembly_window 1 base);
    ("force-merge-join", dis [ "hash-join"; "pointer-join"; "mat-assembly"; "assembly-enforcer" ] base);
    ("force-pointer-join", dis [ "hash-join"; "merge-join"; "mat-assembly"; "assembly-enforcer" ] base);
    ("force-hash-join", dis [ "pointer-join"; "merge-join"; "mat-assembly"; "assembly-enforcer" ] base);
    ("force-assembly", dis [ "hash-join"; "pointer-join"; "merge-join" ] base);
    ( "force-warm-assembly",
      Options.with_warm_start (dis [ "hash-join"; "pointer-join"; "merge-join" ] base) );
    ("force-index-scan", dis [ "file-scan" ] base) ]

(* The sort enforcer only fires when a goal actually requires an order,
   so the physical corpus adds ordered goals on top of the plain ones. *)
let phys_goals queries =
  List.map (fun (n, q) -> (n, q, Physprop.empty)) queries
  @ [ ( "employees-ordered",
        Logical.get ~coll:"Employees" ~binding:"e",
        Physprop.with_order { Physprop.ord_binding = "e"; ord_field = Some "name" } Physprop.empty );
      ( "employees-ordered-oid",
        Logical.get ~coll:"Employees" ~binding:"e",
        Physprop.with_order { Physprop.ord_binding = "e"; ord_field = None } Physprop.empty ) ]

type phys_acc = {
  mutable pa_occurrences : int;
  mutable pa_checks : int;
  mutable pa_failure : counterexample option;
}

let certify_physical ~options ~dbs ~queries () =
  let acc : (string, phys_acc) Hashtbl.t = Hashtbl.create 16 in
  let get_acc rule =
    match Hashtbl.find_opt acc rule with
    | Some a -> a
    | None ->
      let a = { pa_occurrences = 0; pa_checks = 0; pa_failure = None } in
      Hashtbl.add acc rule a;
      a
  in
  let goals = phys_goals queries in
  let variants = option_variants (Options.without_cache options) in
  List.iteri
    (fun variant db ->
      let cat = Db.catalog db in
      (* interpreter answers are per (query, db), not per option variant *)
      let expect = Hashtbl.create 8 in
      let expected_rows qname q =
        match Hashtbl.find_opt expect qname with
        | Some rows -> rows
        | None ->
          let rows = Interp.rows db q in
          Hashtbl.add expect qname rows;
          rows
      in
      List.iter
        (fun (qname, q, required) ->
          List.iter
            (fun (vname, opts) ->
              match (Optimizer.optimize ~options:opts ~required cat q).Optimizer.plan with
              | None -> ()  (* this rule-toggle variant admits no plan here *)
              | Some plan ->
                let rules = List.sort_uniq compare (plan_rules plan) in
                let expected = expected_rows qname q in
                let actual = Executor.run ~verify:true ~config:opts.Options.config db plan in
                let ok = Interp.same_rows expected actual in
                List.iter
                  (fun rule ->
                    let a = get_acc rule in
                    a.pa_occurrences <- a.pa_occurrences + 1;
                    a.pa_checks <- a.pa_checks + 1;
                    if (not ok) && a.pa_failure = None then
                      a.pa_failure <-
                        Some
                          { cx_variant = variant;
                            cx_db = describe_db db;
                            cx_setting = Printf.sprintf "query %s under options %s" qname vname;
                            cx_lhs = Logical.to_string q;
                            cx_rhs = Format.asprintf "%a" Engine.pp_plan plan;
                            cx_expected = expected;
                            cx_actual = actual })
                  rules)
            variants)
        goals)
    dbs;
  List.map
    (fun (name, kind) ->
      match Hashtbl.find_opt acc name with
      | None -> { rr_rule = name; rr_kind = kind; rr_instances = 0; rr_checks = 0; rr_status = No_instances }
      | Some a ->
        { rr_rule = name;
          rr_kind = kind;
          rr_instances = a.pa_occurrences;
          rr_checks = a.pa_checks;
          rr_status =
            (match a.pa_failure with
            | Some cx -> Refuted cx
            | None -> Certified) })
    (List.map (fun n -> (n, Implementation)) Irules.names
    @ List.map (fun n -> (n, Enforcer)) Enforcers.names)

(* ------------------------------------------------------------------ *)
(* Entry point                                                          *)

let run ?(options = Options.default) ?(extra_trules = fun _ _ -> []) ?dbs ?(queries = corpus)
    ?(max_instances = 6) ?(physical = true) () =
  let dbs = match dbs with Some dbs -> dbs | None -> Datagen.micro_family () in
  if dbs = [] then invalid_arg "Certify.run: empty micro-database family";
  let cat = Db.catalog (List.hd dbs) in
  let cfg = options.Options.config in
  let queries =
    if options.Options.normalize then List.map (fun (n, q) -> (n, Argtrans.expr q)) queries
    else queries
  in
  let trules = Trules.all cfg cat @ extra_trules cfg cat in
  let h =
    harvest_trules ~cfg ~cat ~disabled:options.Options.disabled ~trules ~max_instances queries
  in
  let logical_reports = List.map (certify_trule ~cfg ~cat ~dbs h) trules in
  let phys_reports = if physical then certify_physical ~options ~dbs ~queries () else [] in
  let reports = logical_reports @ phys_reports in
  let dead =
    List.filter_map
      (fun rr ->
        if rr.rr_instances = 0 && not (List.mem rr.rr_rule options.Options.disabled) then
          Some rr.rr_rule
        else None)
      reports
  in
  let pairs tbl = Hashtbl.fold (fun (a, b) n acc -> (a, b, n) :: acc) tbl [] |> List.sort compare in
  { cert_rules = reports;
    cert_meta = { m_overlaps = pairs h.h_overlaps; m_pingpong = pairs h.h_pingpong; m_dead = dead };
    cert_dbs = List.length dbs;
    cert_queries = List.length queries }

let ok report = List.for_all (fun rr -> not (uncertified rr.rr_status)) report.cert_rules

(* ------------------------------------------------------------------ *)
(* Rendering                                                            *)

let status_detail = function
  | Certified -> None
  | Bounded_only m | Static_refuted m -> Some m
  | No_instances -> Some "never exercised by the corpus"
  | Refuted cx -> Some (Printf.sprintf "counterexample on micro-database %d" cx.cx_variant)

let pp_counterexample ppf cx =
  Format.fprintf ppf
    "@[<v 2>counterexample (micro-database %d: %s)@ setting: %s@ lhs: %s@ rhs: %s@ expected: %a@ actual:   %a@]"
    cx.cx_variant cx.cx_db cx.cx_setting cx.cx_lhs cx.cx_rhs Interp.pp_rows
    (Interp.canon_rows cx.cx_expected) Interp.pp_rows (Interp.canon_rows cx.cx_actual)

let pp_rule_report ppf rr =
  Format.fprintf ppf "%-22s %-14s %-14s %4d instance(s), %4d check(s)" rr.rr_rule
    (kind_name rr.rr_kind) (status_name rr.rr_status) rr.rr_instances rr.rr_checks;
  match rr.rr_status with
  | Certified -> ()
  | Refuted cx -> Format.fprintf ppf "@   %a" pp_counterexample cx
  | s -> (
    match status_detail s with
    | Some d -> Format.fprintf ppf "@   %s" d
    | None -> ())

let pp_report ppf r =
  Format.fprintf ppf "@[<v>certified %d rule(s) over %d micro-database(s), %d corpus quer(ies)@ @ "
    (List.length r.cert_rules) r.cert_dbs r.cert_queries;
  Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_rule_report ppf r.cert_rules;
  Format.fprintf ppf "@ @ meta-analysis:@ ";
  Format.fprintf ppf "  overlapping rules: %s@ "
    (match r.cert_meta.m_overlaps with
    | [] -> "(none)"
    | os ->
      String.concat ", " (List.map (fun (a, b, n) -> Printf.sprintf "%s+%s (%d sites)" a b n) os));
  Format.fprintf ppf "  ping-pong pairs:   %s@ "
    (match r.cert_meta.m_pingpong with
    | [] -> "(none)"
    | ps ->
      String.concat ", " (List.map (fun (a, b, n) -> Printf.sprintf "%s<->%s (%d)" a b n) ps));
  Format.fprintf ppf "  dead rules:        %s@]"
    (match r.cert_meta.m_dead with [] -> "(none)" | ds -> String.concat ", " ds)

let rows_json rows =
  Json.List
    (List.map
       (fun row ->
         Json.Obj (List.map (fun (k, v) -> (k, Json.String (Value.to_string v))) row))
       (Interp.canon_rows rows))

let counterexample_json cx =
  Json.Obj
    [ ("db_variant", Json.Int cx.cx_variant);
      ("db", Json.String cx.cx_db);
      ("setting", Json.String cx.cx_setting);
      ("lhs", Json.String cx.cx_lhs);
      ("rhs", Json.String cx.cx_rhs);
      ("expected", rows_json cx.cx_expected);
      ("actual", rows_json cx.cx_actual) ]

let rule_json rr =
  Json.Obj
    ([ ("rule", Json.String rr.rr_rule);
       ("kind", Json.String (kind_name rr.rr_kind));
       ("status", Json.String (status_name rr.rr_status));
       ("instances", Json.Int rr.rr_instances);
       ("checks", Json.Int rr.rr_checks) ]
    @ (match status_detail rr.rr_status with
      | Some d when (match rr.rr_status with Refuted _ -> false | _ -> true) ->
        [ ("detail", Json.String d) ]
      | _ -> [])
    @ match rr.rr_status with Refuted cx -> [ ("counterexample", counterexample_json cx) ] | _ -> [])

let to_json r =
  Json.Obj
    [ ("ok", Json.Bool (ok r));
      ("micro_databases", Json.Int r.cert_dbs);
      ("corpus_queries", Json.Int r.cert_queries);
      ("rules", Json.List (List.map rule_json r.cert_rules));
      ( "meta",
        Json.Obj
          [ ( "overlaps",
              Json.List
                (List.map
                   (fun (a, b, n) ->
                     Json.Obj
                       [ ("rules", Json.List [ Json.String a; Json.String b ]);
                         ("sites", Json.Int n) ])
                   r.cert_meta.m_overlaps) );
            ( "ping_pong",
              Json.List
                (List.map
                   (fun (a, b, n) ->
                     Json.Obj
                       [ ("rules", Json.List [ Json.String a; Json.String b ]);
                         ("instances", Json.Int n) ])
                   r.cert_meta.m_pingpong) );
            ("dead", Json.List (List.map (fun d -> Json.String d) r.cert_meta.m_dead)) ] ) ]
