(** Static checking for the optimizer, independent of execution.

    Three passes, each checking a different layer of the stack:

    - {!plan} lints a physical plan (binding scope, presence in memory,
      sort orders, catalog references) — re-exported from
      {!Open_oodb.Planlint}, where {!Open_oodb.Optimizer.optimize} runs
      it on every winning plan when [Options.verify] is set;
    - {!memo} checks the memo after logical closure: every
      multi-expression in a group must derive the same logical
      properties as its group, which statically catches unsound
      transformation rules; {!plan_costs} adds cost sanity on winning
      plans;
    - {!rules} instruments the closure over a whole workload, reporting
      per-rule coverage, rules that never fire, and non-terminating rule
      cycles (detected by a closure fuel bound).

    [bin/oodb lint] runs all three over the paper's workload queries. *)

module Planlint = Open_oodb.Planlint
module Engine = Open_oodb.Model.Engine

(** {1 Plan linting} *)

type violation = Planlint.violation

val plan :
  ?required:Open_oodb.Physprop.t ->
  Oodb_catalog.Catalog.t ->
  Engine.plan ->
  (unit, violation list) result
(** See {!Open_oodb.Planlint.plan}. *)

val pp_violation : Format.formatter -> violation -> unit

val pp_violations : Format.formatter -> violation list -> unit

(** {1 Memo consistency} *)

type memo_detail =
  | Card_mismatch of { group_card : float; mexpr_card : float }
      (** re-deriving the multi-expression's cardinality from its input
          groups disagrees with the group's property — some rule merged
          inequivalent expressions *)
  | Scope_mismatch of { group_scope : string list; mexpr_scope : string list }
      (** binding sets differ: the expressions cannot be equivalent *)
  | Derive_failure of string
      (** property derivation itself rejected the multi-expression *)

type memo_violation = {
  mv_group : int;
  mv_mexpr : string;  (** rendering of the offending multi-expression *)
  mv_detail : memo_detail;
}

val pp_memo_violation : Format.formatter -> memo_violation -> unit

val memo :
  ?card_rtol:float ->
  config:Oodb_cost.Config.t ->
  Oodb_catalog.Catalog.t ->
  Engine.ctx ->
  (unit, memo_violation list) result
(** Check every group of a memo: each multi-expression, re-derived from
    its input groups' properties, must match the group's own logical
    properties — same binding scope (as a set: commutativity rules
    reorder introduction order) and same cardinality up to [card_rtol]
    (default [1e-6], covering float drift between derivation orders).
    Sound rule sets pass exactly; a rule that rewrites an expression to
    a non-equivalent one merges groups with different properties and is
    flagged here without ever executing a plan. *)

(** {1 Memo-wide type consistency} *)

type typ_detail =
  | Typ_error of string
      (** the multi-expression does not typecheck against the catalog *)
  | Typ_mismatch of {
      group_typ : Oodb_algebra.Typing.t;
      mexpr_typ : Oodb_algebra.Typing.t;
    }
      (** it typechecks, but to a different type than its group — some
          rule changed the schema, scope, or duplicate semantics *)
  | Typ_unresolved
      (** an input group's type could not be established (itself a
          consequence of ill-typed expressions upstream) *)

type typ_violation = {
  tv_group : int;
  tv_mexpr : string;
  tv_detail : typ_detail;
}

val pp_typ_violation : Format.formatter -> typ_violation -> unit

val types :
  Oodb_catalog.Catalog.t -> Engine.ctx -> (unit, typ_violation list) result
(** Post-hoc form of the memo-wide type invariant: infer one type per
    group (to a fixpoint, since groups can reference later-created
    groups) and require every multi-expression to derive exactly its
    group's type under {!Oodb_algebra.Typing.infer_op}. This is the same
    judgment the engine enforces online while optimizing when
    [Options.verify] is set; running it here covers memos built with
    verification off, e.g. by [oodb lint]. *)

(** {1 Cost sanity} *)

type cost_violation = {
  cv_alg : string;
  cv_reason : string;
}

val pp_cost_violation : Format.formatter -> cost_violation -> unit

val plan_costs : Engine.plan -> (unit, cost_violation list) result
(** Every subtree's cost must be finite, non-negative, and at least the
    sum of its children's costs (a node cannot un-spend its inputs'
    work). *)

(** {1 Rule-set analysis} *)

type rule_stat = {
  rs_name : string;
  rs_tried : int;
  rs_fired : int;
}

type rules_report = {
  per_rule : rule_stat list;
      (** every rule of the configuration, aggregated over the workload;
          disabled rules appear with zero counts *)
  never_fired : string list;
      (** enabled rules that never produced anything over the workload —
          dead weight or a guard bug; reported, not fatal *)
  incomplete : (string * int) list;
      (** queries whose logical closure did not reach a fixpoint within
          the fuel bound [(query, closure steps)] — the signature of a
          non-terminating rule cycle; fatal *)
}

val rules :
  ?options:Open_oodb.Options.t ->
  ?fuel:int ->
  Oodb_catalog.Catalog.t ->
  (string * Oodb_algebra.Logical.t) list ->
  rules_report
(** Optimize every named query with per-rule instrumentation and a
    closure fuel bound (default [100_000] steps — two orders of
    magnitude above what the paper workload needs, so hitting it means
    divergence, not a hard query). *)

val rules_ok : rules_report -> bool
(** No query diverged. Never-firing rules do not fail the check: the
    set-operation rules legitimately never fire on the paper's
    workload. *)

val pp_rules_report : Format.formatter -> rules_report -> unit
(** The per-rule coverage table. *)
