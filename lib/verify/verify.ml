module Planlint = Open_oodb.Planlint
module Engine = Open_oodb.Model.Engine
module Options = Open_oodb.Options
module Optimizer = Open_oodb.Optimizer
module Catalog = Oodb_catalog.Catalog
module Logical = Oodb_algebra.Logical
module Typing = Oodb_algebra.Typing
module Lprops = Oodb_cost.Lprops
module Estimator = Oodb_cost.Estimator
module Cost = Oodb_cost.Cost

(* ------------------------------------------------------------------ *)
(* Plan linting (the pass itself lives in lib/core so the optimizer can
   run it on every winning plan without a dependency cycle)             *)

type violation = Planlint.violation

let plan = Planlint.plan

let pp_violation = Planlint.pp_violation

let pp_violations = Planlint.pp_violations

(* ------------------------------------------------------------------ *)
(* Memo consistency                                                     *)

type memo_detail =
  | Card_mismatch of { group_card : float; mexpr_card : float }
  | Scope_mismatch of { group_scope : string list; mexpr_scope : string list }
  | Derive_failure of string

type memo_violation = {
  mv_group : int;
  mv_mexpr : string;
  mv_detail : memo_detail;
}

let pp_memo_violation ppf v =
  let detail ppf = function
    | Card_mismatch { group_card; mexpr_card } ->
      Format.fprintf ppf "cardinality %.6g, group says %.6g" mexpr_card group_card
    | Scope_mismatch { group_scope; mexpr_scope } ->
      Format.fprintf ppf "scope {%s}, group says {%s}"
        (String.concat ", " mexpr_scope)
        (String.concat ", " group_scope)
    | Derive_failure msg -> Format.fprintf ppf "derivation failed: %s" msg
  in
  Format.fprintf ppf "group %d: %s derives %a" v.mv_group v.mv_mexpr detail v.mv_detail

let scope_of_lprop (lp : Lprops.t) =
  List.sort String.compare (List.map fst lp.Lprops.bindings)

let cards_agree rtol a b =
  (a = b)
  || (Float.is_finite a && Float.is_finite b
     && Float.abs (a -. b) <= rtol *. Float.max 1.0 (Float.max (Float.abs a) (Float.abs b))
     )

let memo ?(card_rtol = 1e-6) ~config cat ctx =
  let acc = ref [] in
  List.iter
    (fun g ->
      let glp = Engine.group_lprop ctx g in
      List.iter
        (fun (m : Engine.mexpr) ->
          let name =
            Format.asprintf "%a(%s)" Logical.pp_op m.Engine.mop
              (String.concat ", " (List.map string_of_int m.Engine.minputs))
          in
          let push d = acc := { mv_group = g; mv_mexpr = name; mv_detail = d } :: !acc in
          match
            Estimator.derive config cat m.Engine.mop
              (List.map (Engine.group_lprop ctx) m.Engine.minputs)
          with
          | exception Invalid_argument msg -> push (Derive_failure msg)
          | derived ->
            let gs = scope_of_lprop glp and ms = scope_of_lprop derived in
            if gs <> ms then push (Scope_mismatch { group_scope = gs; mexpr_scope = ms });
            if not (cards_agree card_rtol glp.Lprops.card derived.Lprops.card) then
              push
                (Card_mismatch
                   { group_card = glp.Lprops.card; mexpr_card = derived.Lprops.card }))
        (Engine.group_exprs ctx g))
    (Engine.groups ctx);
  match List.rev !acc with [] -> Ok () | vs -> Error vs

(* ------------------------------------------------------------------ *)
(* Memo-wide type consistency (post hoc)                                *)

(* The same invariant the engine enforces online through its typing hook
   (Options.verify), recomputed from scratch over a finished memo — the
   pass `oodb lint` uses on memos built with verification off. Group
   types are solved to a fixpoint because closure can make a group refer
   to groups created after it (select-split interns fresh intermediate
   groups and links them from the old one). *)

type typ_detail =
  | Typ_error of string
  | Typ_mismatch of { group_typ : Typing.t; mexpr_typ : Typing.t }
  | Typ_unresolved

type typ_violation = {
  tv_group : int;
  tv_mexpr : string;
  tv_detail : typ_detail;
}

let pp_typ_violation ppf v =
  let detail ppf = function
    | Typ_error msg -> Format.fprintf ppf "ill-typed: %s" msg
    | Typ_mismatch { group_typ; mexpr_typ } ->
      Format.fprintf ppf "type %a, group says %a" Typing.pp mexpr_typ Typing.pp group_typ
    | Typ_unresolved -> Format.pp_print_string ppf "type of an input group never resolved"
  in
  Format.fprintf ppf "group %d: %s is %a" v.tv_group v.tv_mexpr detail v.tv_detail

let mexpr_name (m : Engine.mexpr) =
  Format.asprintf "%a(%s)" Logical.pp_op m.Engine.mop
    (String.concat ", " (List.map string_of_int m.Engine.minputs))

let types cat ctx =
  let tys : (int, Typing.t) Hashtbl.t = Hashtbl.create 64 in
  let gs = Engine.groups ctx in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun g ->
        if not (Hashtbl.mem tys g) then
          List.iter
            (fun (m : Engine.mexpr) ->
              if not (Hashtbl.mem tys g) then
                let itys = List.map (Hashtbl.find_opt tys) m.Engine.minputs in
                if List.for_all Option.is_some itys then
                  match Typing.infer_op cat m.Engine.mop (List.map Option.get itys) with
                  | Ok ty ->
                    Hashtbl.add tys g ty;
                    changed := true
                  | Error _ -> ())
            (Engine.group_exprs ctx g))
      gs
  done;
  let acc = ref [] in
  List.iter
    (fun g ->
      List.iter
        (fun (m : Engine.mexpr) ->
          let push d =
            acc := { tv_group = g; tv_mexpr = mexpr_name m; tv_detail = d } :: !acc
          in
          let itys = List.map (Hashtbl.find_opt tys) m.Engine.minputs in
          if not (List.for_all Option.is_some itys) then push Typ_unresolved
          else
            match Typing.infer_op cat m.Engine.mop (List.map Option.get itys) with
            | Error msg -> push (Typ_error msg)
            | Ok ty -> (
              match Hashtbl.find_opt tys g with
              | Some gty when not (Typing.equal ty gty) ->
                push (Typ_mismatch { group_typ = gty; mexpr_typ = ty })
              | Some _ -> ()
              | None -> push Typ_unresolved))
        (Engine.group_exprs ctx g))
    gs;
  match List.rev !acc with [] -> Ok () | vs -> Error vs

(* ------------------------------------------------------------------ *)
(* Cost sanity                                                          *)

type cost_violation = {
  cv_alg : string;
  cv_reason : string;
}

let pp_cost_violation ppf v = Format.fprintf ppf "%s: %s" v.cv_alg v.cv_reason

let plan_costs (p : Engine.plan) =
  let acc = ref [] in
  let rec walk (p : Engine.plan) =
    let total = Cost.total p.Engine.cost in
    let push reason =
      acc := { cv_alg = Open_oodb.Physical.to_string p.Engine.alg; cv_reason = reason } :: !acc
    in
    if not (Cost.is_finite p.Engine.cost) then push "cost is not finite"
    else if total < 0.0 then push (Printf.sprintf "cost is negative (%.6g)" total)
    else begin
      let children_total =
        List.fold_left (fun s c -> s +. Cost.total c.Engine.cost) 0.0 p.Engine.children
      in
      (* a tolerance for float summation order; subtree costs are sums of
         non-negative local costs, so any real shortfall is much larger *)
      if total +. 1e-9 +. (1e-9 *. Float.abs children_total) < children_total then
        push
          (Printf.sprintf "cost %.6g is below the sum of its inputs' costs %.6g" total
             children_total)
    end;
    List.iter walk p.Engine.children
  in
  walk p;
  match List.rev !acc with [] -> Ok () | vs -> Error vs

(* ------------------------------------------------------------------ *)
(* Rule-set analysis                                                    *)

type rule_stat = {
  rs_name : string;
  rs_tried : int;
  rs_fired : int;
}

type rules_report = {
  per_rule : rule_stat list;
  never_fired : string list;
  incomplete : (string * int) list;
}

let rules ?(options = Options.default) ?(fuel = 100_000) cat queries =
  let totals = Hashtbl.create 32 in
  List.iter (fun n -> Hashtbl.replace totals n (0, 0)) Options.rule_names;
  let incomplete = ref [] in
  List.iter
    (fun (name, q) ->
      let outcome = Optimizer.optimize ~options ~closure_fuel:fuel cat q in
      if not outcome.Optimizer.stats.Engine.closure_complete then
        incomplete :=
          (name, outcome.Optimizer.stats.Engine.closure_steps) :: !incomplete;
      List.iter
        (fun (rule, tried, fired) ->
          let t0, f0 = Option.value ~default:(0, 0) (Hashtbl.find_opt totals rule) in
          Hashtbl.replace totals rule (t0 + tried, f0 + fired))
        (Engine.rule_counters outcome.Optimizer.memo))
    queries;
  let per_rule =
    Hashtbl.fold
      (fun rs_name (rs_tried, rs_fired) acc -> { rs_name; rs_tried; rs_fired } :: acc)
      totals []
    |> List.sort (fun a b -> String.compare a.rs_name b.rs_name)
  in
  let never_fired =
    List.filter_map
      (fun r ->
        if r.rs_fired = 0 && not (List.mem r.rs_name options.Options.disabled) then
          Some r.rs_name
        else None)
      per_rule
  in
  { per_rule; never_fired; incomplete = List.rev !incomplete }

let rules_ok r = r.incomplete = []

let pp_rules_report ppf r =
  let width =
    List.fold_left (fun w s -> max w (String.length s.rs_name)) 4 r.per_rule
  in
  Format.fprintf ppf "%-*s %8s %8s@." width "rule" "tried" "fired";
  List.iter
    (fun s -> Format.fprintf ppf "%-*s %8d %8d@." width s.rs_name s.rs_tried s.rs_fired)
    r.per_rule;
  (match r.never_fired with
  | [] -> ()
  | rules ->
    Format.fprintf ppf "never fired over this workload: %s@." (String.concat ", " rules));
  List.iter
    (fun (q, steps) ->
      Format.fprintf ppf
        "DIVERGED: closure of %s did not terminate within %d steps@." q steps)
    r.incomplete
