(** Rule-soundness certifier: evidence-backed verdicts that every
    registered optimizer rule preserves query semantics.

    Transformation rules are certified per harvested rewrite instance —
    statically (both sides must carry the same {!Oodb_algebra.Typing.t}
    and estimated cardinality) and denotationally (both sides must
    produce the same row multiset under the reference interpreter
    {!Interp} on every enumerated micro-database,
    {!Oodb_workloads.Datagen.micro_family}). Implementation rules and
    enforcers are certified per plan occurrence: winning plans over a
    family of rule-toggle option variants are executed on each
    micro-database and compared against the interpreter's answer for
    the original query. Uncertifiable rules carry a concrete
    counterexample: the database, both sides, both row multisets. *)

type kind =
  | Transformation
  | Implementation
  | Enforcer

type counterexample = {
  cx_variant : int;  (** index into the micro-database family *)
  cx_db : string;  (** extent cardinalities of the mismatching database *)
  cx_setting : string;  (** rewrite instance, or query + option variant *)
  cx_lhs : string;  (** input expression (or query) *)
  cx_rhs : string;  (** rule output (or executed plan) *)
  cx_expected : Interp.row list;
  cx_actual : Interp.row list;
}

type status =
  | Certified
      (** every static check discharged and every denotational check
          passed *)
  | Bounded_only of string
      (** denotational checks passed on every micro-database but a
          static check could not be discharged (reason given) —
          certification is bounded, not static *)
  | No_instances  (** the corpus never exercised the rule *)
  | Static_refuted of string
      (** a static check failed outright: type not preserved,
          cardinality not preserved, or the applicability guard raised *)
  | Refuted of counterexample  (** a concrete semantic mismatch *)

val uncertified : status -> bool
(** [true] for the CI-failing statuses: {!No_instances},
    {!Static_refuted}, {!Refuted}. *)

type rule_report = {
  rr_rule : string;
  rr_kind : kind;
  rr_instances : int;
      (** distinct rewrite instances harvested (transformations) or
          winning-plan occurrences (implementations/enforcers) *)
  rr_checks : int;  (** denotational / execution comparisons run *)
  rr_status : status;
}

(** Rule-set meta-analysis over the same harvest. *)
type meta = {
  m_overlaps : (string * string * int) list;
      (** rule pairs that both produced an alternative at the same memo
          site, with the site count — overlapping left-hand sides are a
          confluence risk *)
  m_pingpong : (string * string * int) list;
      (** pairs where one rule rewrites x to y and the other rewrites y
          back to x within a group — a termination risk absorbed by memo
          deduplication *)
  m_dead : string list;  (** enabled rules the corpus never exercised *)
}

type report = {
  cert_rules : rule_report list;
  cert_meta : meta;
  cert_dbs : int;
  cert_queries : int;
}

val corpus : (string * Oodb_algebra.Logical.t) list
(** Default certification corpus: the paper workload
    ({!Oodb_workloads.Queries.all}) plus synthetic set-operation
    queries, without which setop-commute and setop-assoc would go
    unexercised. *)

val run :
  ?options:Open_oodb.Options.t ->
  ?extra_trules:
    (Oodb_cost.Config.t -> Oodb_catalog.Catalog.t -> Open_oodb.Model.Engine.trule list) ->
  ?dbs:Oodb_exec.Db.t list ->
  ?queries:(string * Oodb_algebra.Logical.t) list ->
  ?max_instances:int ->
  ?physical:bool ->
  unit ->
  report
(** Certify the rule set. [extra_trules] appends rules to the default
    set — the certifier's own test injects a deliberately unsound rule
    this way and asserts it is refuted. [dbs] defaults to
    {!Oodb_workloads.Datagen.micro_family} (pass a smaller family for
    fast tests). [max_instances] caps harvested instances per rule per
    memo site sweep (default 6). [physical:false] skips the
    implementation/enforcer pass. *)

val ok : report -> bool
(** No rule has an {!uncertified} status. *)

val pp_report : Format.formatter -> report -> unit

val pp_counterexample : Format.formatter -> counterexample -> unit

val to_json : report -> Oodb_util.Json.t
(** Machine-readable report, uploaded as a CI artifact. *)

val kind_name : kind -> string

val status_name : status -> string
