(* Reference denotational interpreter for the logical algebra.

   Deliberately the dumbest possible evaluator — list comprehensions
   over object stores, nested-loop joins, no indexes, no batching, no
   buffer pool — so it is easy to audit against the algebra's intended
   semantics and independent of every optimizer and executor decision.
   The rule certifier uses it as ground truth: two logically equivalent
   expressions must produce identical row multisets here, and an
   executed physical plan must reproduce what the interpreter says about
   the query it implements.

   Semantics mirrored from the execution engine where the algebra leaves
   latitude: a Mat over a Null reference drops the row (pointer-join
   behaviour), Unnest of a Null set is empty, missing fields evaluate to
   Null, ordered comparisons with Null are false, and the set operations
   deduplicate their output (hash-union/intersect/difference
   behaviour). *)

module Value = Oodb_storage.Value
module Store = Oodb_storage.Store
module Db = Oodb_exec.Db
module Logical = Oodb_algebra.Logical
module Pred = Oodb_algebra.Pred

type env = (string * Value.oid) list (* binding -> oid, scope order *)

let field_of store oid f =
  match Store.field (Store.peek store oid) f with
  | v -> v
  | exception Not_found -> Value.Null

let operand store env = function
  | Pred.Const v -> v
  | Pred.Self b -> Value.Ref (List.assoc b env)
  | Pred.Field (b, f) -> field_of store (List.assoc b env) f

let atom store env (a : Pred.atom) =
  let l = operand store env a.Pred.lhs and r = operand store env a.Pred.rhs in
  match a.Pred.cmp with
  | Pred.Eq -> Value.equal l r
  | Pred.Ne -> not (Value.equal l r)
  | Pred.Lt -> l <> Value.Null && r <> Value.Null && Value.compare l r < 0
  | Pred.Le -> l <> Value.Null && r <> Value.Null && Value.compare l r <= 0
  | Pred.Gt -> l <> Value.Null && r <> Value.Null && Value.compare l r > 0
  | Pred.Ge -> l <> Value.Null && r <> Value.Null && Value.compare l r >= 0

let pred store env atoms = List.for_all (atom store env) atoms

(* Set operations compare rows as binding->oid maps, independent of the
   scope order either side happened to be built with. *)
let canon env = List.sort (fun (a, _) (b, _) -> String.compare a b) env

let dedup envs =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun e ->
      let k = canon e in
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.add seen k ();
        true
      end)
    envs

let rec eval store (e : Logical.t) : env list =
  match e.Logical.op, e.Logical.inputs with
  | Logical.Get { coll; binding }, [] ->
    List.map (fun o -> [ (binding, o) ]) (Store.oids store ~coll)
  | Logical.Select p, [ i ] -> List.filter (fun env -> pred store env p) (eval store i)
  | Logical.Project ps, [ i ] ->
    let used =
      List.concat_map (fun (p : Logical.proj) -> Pred.bindings_of_operand p.Logical.p_expr) ps
    in
    List.map (fun env -> List.filter (fun (b, _) -> List.mem b used) env) (eval store i)
  | Logical.Join p, [ l; r ] ->
    let rights = eval store r in
    List.concat_map
      (fun el ->
        List.filter_map
          (fun er ->
            let env = el @ er in
            if pred store env p then Some env else None)
          rights)
      (eval store l)
  | Logical.Cross, [ l; r ] ->
    let rights = eval store r in
    List.concat_map (fun el -> List.map (fun er -> el @ er) rights) (eval store l)
  | Logical.Mat { src; field; out }, [ i ] ->
    List.filter_map
      (fun env ->
        let target =
          match field with
          | None -> Some (List.assoc src env)
          | Some f -> Value.as_ref (field_of store (List.assoc src env) f)
        in
        Option.map (fun oid -> env @ [ (out, oid) ]) target)
      (eval store i)
  | Logical.Unnest { src; field; out }, [ i ] ->
    List.concat_map
      (fun env ->
        Value.set_elements (field_of store (List.assoc src env) field)
        |> List.filter_map Value.as_ref
        |> List.map (fun oid -> env @ [ (out, oid) ]))
      (eval store i)
  | Logical.Union, [ l; r ] -> dedup (eval store l @ eval store r)
  | Logical.Intersect, [ l; r ] ->
    let rights = Hashtbl.create 64 in
    List.iter (fun e -> Hashtbl.replace rights (canon e) ()) (eval store r);
    dedup (List.filter (fun e -> Hashtbl.mem rights (canon e)) (eval store l))
  | Logical.Difference, [ l; r ] ->
    let rights = Hashtbl.create 64 in
    List.iter (fun e -> Hashtbl.replace rights (canon e) ()) (eval store r);
    dedup (List.filter (fun e -> not (Hashtbl.mem rights (canon e))) (eval store l))
  | _ -> invalid_arg "Interp.eval: malformed expression (wrong arity)"

type row = (string * Value.t) list

(* Same row extraction convention as Executor.rows_of: a root projection
   evaluates its columns, any other root yields binding/reference
   pairs. *)
let rows db (e : Logical.t) : row list =
  let store = Db.store db in
  let envs = eval store e in
  match e.Logical.op with
  | Logical.Project ps ->
    List.map
      (fun env ->
        List.map
          (fun (p : Logical.proj) -> (p.Logical.p_name, operand store env p.Logical.p_expr))
          ps)
      envs
  | _ -> List.map (List.map (fun (b, o) -> (b, Value.Ref o))) envs

(* Canonical multiset form: order of rows and of columns within a row is
   not semantically significant. *)
let canon_rows rows =
  rows
  |> List.map (List.sort (fun (a, _) (b, _) -> String.compare a b))
  |> List.sort
       (List.compare (fun (k1, v1) (k2, v2) ->
            let c = String.compare k1 k2 in
            if c <> 0 then c else Value.compare v1 v2))

let same_rows a b = canon_rows a = canon_rows b

let pp_row ppf row =
  Format.fprintf ppf "{%s}"
    (String.concat ", "
       (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k (Value.to_string v)) row))

let pp_rows ppf rows =
  match rows with
  | [] -> Format.pp_print_string ppf "(empty)"
  | rows ->
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
      pp_row ppf rows
