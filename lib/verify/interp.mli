(** Reference denotational interpreter for the logical algebra.

    The dumbest possible evaluator — nested loops over object stores, no
    indexes, no batching — used as ground truth by the rule certifier
    ({!Certify}): two logically equivalent expressions must produce the
    same row multiset here, and an executed physical plan must reproduce
    the interpreter's answer for the query it implements.

    Where the algebra leaves latitude, semantics follow the execution
    engine: Mat over a Null reference drops the row, Unnest of Null is
    empty, missing fields read as Null, ordered comparisons with Null
    are false, and set operations deduplicate. *)

type env = (string * Oodb_storage.Value.oid) list

type row = (string * Oodb_storage.Value.t) list

val eval : Oodb_storage.Store.t -> Oodb_algebra.Logical.t -> env list
(** Denotation of an expression as a multiset (list) of binding
    environments. Raises [Invalid_argument] on a malformed tree. *)

val rows : Oodb_exec.Db.t -> Oodb_algebra.Logical.t -> row list
(** {!eval} followed by the executor's row-extraction convention: a root
    projection evaluates its columns, any other root yields
    (binding, reference) pairs. *)

val canon_rows : row list -> row list
(** Canonical multiset form (rows and columns sorted). *)

val same_rows : row list -> row list -> bool
(** Multiset equality of two row lists. *)

val pp_rows : Format.formatter -> row list -> unit
