module Logical = Oodb_algebra.Logical
module Pred = Oodb_algebra.Pred
module Catalog = Oodb_catalog.Catalog
module Schema = Oodb_catalog.Schema
module Config = Oodb_cost.Config
module Cost = Oodb_cost.Cost
module Lprops = Oodb_cost.Lprops
module Estimator = Oodb_cost.Estimator
module Physical = Open_oodb.Physical
module Physprop = Open_oodb.Physprop
module Costmodel = Open_oodb.Costmodel
module Engine = Open_oodb.Model.Engine
module Bset = Physprop.Bset

type parts = {
  base_coll : string;
  base_binding : string;
  steps : step list; (* bottom-up *)
  atoms : Pred.atom list;
  projs : Logical.proj list option;
}

and step =
  | S_mat of string * string option * string (* src, field, out *)
  | S_unnest of string * string * string

let decompose expr =
  let rec go (t : Logical.t) steps atoms projs =
    match t.Logical.op, t.Logical.inputs with
    | Logical.Project ps, [ input ] when projs = None -> go input steps atoms (Some ps)
    | Logical.Select p, [ input ] -> go input steps (atoms @ p) projs
    | Logical.Mat { src; field; out }, [ input ] ->
      go input (S_mat (src, field, out) :: steps) atoms projs
    | Logical.Unnest { src; field; out }, [ input ] ->
      go input (S_unnest (src, field, out) :: steps) atoms projs
    | Logical.Get { coll; binding }, [] ->
      Ok { base_coll = coll; base_binding = binding; steps; atoms; projs }
    | _ -> Error "greedy optimizer: unsupported query shape"
  in
  go expr [] [] None

(* Root-relative index path of each binding (bindings past an Unnest have
   none: path indexes do not span set-valued components here). *)
let index_paths parts =
  let tbl = Hashtbl.create 8 in
  Hashtbl.add tbl parts.base_binding [];
  List.iter
    (fun step ->
      match step with
      | S_mat (src, field, out) -> (
        match Hashtbl.find_opt tbl src, field with
        | Some base, Some f -> Hashtbl.add tbl out (base @ [ f ])
        | Some base, None -> Hashtbl.add tbl out base
        | None, _ -> ())
      | S_unnest _ -> ())
    parts.steps;
  tbl

(* A plan node under construction: the physical plan plus the logical
   properties and in-memory set used for costing downstream nodes. *)
type node = {
  plan : Engine.plan;
  lp : Lprops.t;
  mem : Bset.t;
}

let mk alg children ~local ~lp ~mem =
  { plan =
      { Engine.alg;
        children = List.map (fun n -> n.plan) children;
        cost = List.fold_left (fun acc n -> Cost.add acc n.plan.Engine.cost) local children;
        delivered = { Physprop.in_memory = mem; order = None } };
    lp;
    mem }

let optimize ?(config = Config.default) cat expr =
  (* the same argument-transformation pass the cost-based optimizer runs,
     so degenerate conjunctions are estimated identically *)
  let expr = Open_oodb.Argtrans.expr expr in
  match decompose expr with
  | Error _ as e -> e
  | Ok parts -> (
    match Catalog.find_collection cat parts.base_coll with
    | None -> Error (Printf.sprintf "unknown collection %s" parts.base_coll)
    | Some base_co ->
      let paths = index_paths parts in
      let indexed_atom (a : Pred.atom) =
        (* (atom, binding, index) for conjuncts an index on the base
           collection covers *)
        match a.Pred.cmp, a.Pred.lhs, a.Pred.rhs with
        | Pred.Eq, Pred.Field (b, f), Pred.Const v | Pred.Eq, Pred.Const v, Pred.Field (b, f)
          -> (
          match Hashtbl.find_opt paths b with
          | Some base -> (
            match Catalog.find_index cat ~coll:parts.base_coll ~path:(base @ [ f ]) with
            | Some ix -> Some (ix, v)
            | None -> None)
          | None -> None)
        | _ -> None
      in
      (* 1. base access: first conjunct with a covering index wins *)
      let primary =
        List.find_map (fun a -> Option.map (fun hit -> (a, hit)) (indexed_atom a)) parts.atoms
      in
      let derive op inputs = Estimator.derive config cat op inputs in
      let base_lp = derive (Logical.Get { coll = parts.base_coll; binding = parts.base_binding }) [] in
      let base_node, consumed_primary =
        match primary with
        | Some (a, (ix, key)) ->
          let matches =
            float_of_int base_co.Catalog.co_card
            /. Float.max 1.0 (float_of_int ix.Catalog.ix_distinct)
          in
          let lp = { base_lp with Lprops.card = matches } in
          ( mk
              (Physical.Index_scan
                 { coll = parts.base_coll;
                   binding = parts.base_binding;
                   index = ix.Catalog.ix_name;
                   key;
                   residual = [];
                   derefs = [] })
              []
              ~local:(Costmodel.index_scan config ~coll:base_co ~matches ~residual_atoms:0)
              ~lp
              ~mem:(Bset.singleton parts.base_binding),
            [ a ] )
        | None ->
          ( mk
              (Physical.File_scan { coll = parts.base_coll; binding = parts.base_binding })
              []
              ~local:(Costmodel.file_scan config base_co)
              ~lp:base_lp
              ~mem:(Bset.singleton parts.base_binding),
            [] )
      in
      let remaining_atoms = List.filter (fun a -> not (List.memq a consumed_primary)) parts.atoms in
      (* 2. for each remaining indexed conjunct over a step output whose
         class has its own indexed scannable collection: index scan +
         hash join, consuming that step's Mat *)
      let class_env =
        (* binding -> class for every binding the pipeline introduces *)
        let tbl = Hashtbl.create 8 in
        Hashtbl.add tbl parts.base_binding base_co.Catalog.co_class;
        List.iter
          (fun step ->
            match step with
            | S_mat (src, field, out) -> (
              match Hashtbl.find_opt tbl src, field with
              | Some cls, Some f -> (
                match Schema.follow (Catalog.schema cat) ~cls f with
                | Some c -> Hashtbl.add tbl out c
                | None -> ())
              | Some cls, None -> Hashtbl.add tbl out cls
              | None, _ -> ())
            | S_unnest (src, field, out) -> (
              match Hashtbl.find_opt tbl src with
              | Some cls -> (
                match
                  Option.bind (Schema.attr_ty (Catalog.schema cat) ~cls field) Schema.ref_target
                with
                | Some c -> Hashtbl.add tbl out c
                | None -> ())
              | None -> ()))
          parts.steps;
        tbl
      in
      let mat_outputs =
        List.filter_map (function S_mat (_, _, out) -> Some out | S_unnest _ -> None)
          parts.steps
      in
      let join_for_atom (a : Pred.atom) =
        match a.Pred.cmp, a.Pred.lhs, a.Pred.rhs with
        | Pred.Eq, Pred.Field (b, f), Pred.Const v | Pred.Eq, Pred.Const v, Pred.Field (b, f)
          -> (
          (* only step outputs can be replaced by an index-scan join; the
             base binding is handled by the primary access path *)
          if not (List.mem b mat_outputs) then None
          else
            match Hashtbl.find_opt class_env b with
            | None -> None
            | Some cls -> (
              match Catalog.scannables_of_class cat cls with
              | co :: _ -> (
                match Catalog.find_index cat ~coll:co.Catalog.co_name ~path:[ f ] with
                | Some ix -> Some (a, b, co, ix, v)
                | None -> None)
              | [] -> None))
        | _ -> None
      in
      (* at most one join per binding: extra indexable conjuncts on the
         same component stay as ordinary filters *)
      let joins =
        List.fold_left
          (fun acc a ->
            match join_for_atom a with
            | Some ((_, b, _, _, _) as j) when not (List.exists (fun (_, b', _, _, _) -> b' = b) acc)
              -> j :: acc
            | _ -> acc)
          [] remaining_atoms
        |> List.rev
      in
      let join_bindings = List.map (fun (_, b, _, _, _) -> b) joins in
      let remaining_atoms =
        List.filter (fun a -> not (List.exists (fun (a', _, _, _, _) -> a == a') joins))
          remaining_atoms
      in
      (* 3. pipeline: steps in original order; Mats consumed by joins
         become hash joins against their index scans. Conjuncts are
         applied eagerly, as soon as the objects they read are present —
         greedy in evaluation order, like the strategy it models. *)
      let window = config.Config.assembly_window in
      let pending = ref remaining_atoms in
      let apply_ready node =
        let scope = List.map fst node.lp.Lprops.bindings in
        let ready, later =
          List.partition
            (fun a ->
              List.for_all (fun b -> Bset.mem b node.mem) (Pred.memory_bindings [ a ])
              && List.for_all (fun b -> List.mem b scope) (Pred.bindings [ a ]))
            !pending
        in
        pending := later;
        if ready = [] then node
        else
          let lp = derive (Logical.Select ready) [ node.lp ] in
          mk (Physical.Filter ready) [ node ]
            ~local:
              (Costmodel.filter config ~card:node.lp.Lprops.card ~atoms:(List.length ready))
            ~lp ~mem:node.mem
      in
      let pipeline =
        List.fold_left
          (fun node step ->
            apply_ready
            @@
            match step with
            | S_unnest (src, field, out) ->
              let lp = derive (Logical.Unnest { src; field; out }) [ node.lp ] in
              mk (Physical.Alg_unnest { src; field; out }) [ node ] ~lp
                ~local:(Costmodel.alg_unnest config ~in_card:node.lp.Lprops.card
                          ~out_card:lp.Lprops.card)
                ~mem:node.mem
            | S_mat (src, field, out) when List.mem out join_bindings ->
              let a, _, co, ix, v =
                List.find (fun (_, b, _, _, _) -> b = out) joins
              in
              let matches =
                float_of_int co.Catalog.co_card
                /. Float.max 1.0 (float_of_int ix.Catalog.ix_distinct)
              in
              let build_lp =
                { Lprops.card = matches;
                  bindings =
                    [ ( out,
                        { Lprops.b_class = co.Catalog.co_class;
                          b_bytes = float_of_int co.Catalog.co_obj_bytes;
                          b_source = Lprops.From_get co.Catalog.co_name } ) ] }
              in
              let build =
                mk
                  (Physical.Index_scan
                     { coll = co.Catalog.co_name;
                       binding = out;
                       index = ix.Catalog.ix_name;
                       key = v;
                       residual = [];
                       derefs = [] })
                  []
                  ~local:(Costmodel.index_scan config ~coll:co ~matches ~residual_atoms:0)
                  ~lp:build_lp
                  ~mem:(Bset.singleton out)
              in
              ignore a;
              let link =
                match field with
                | Some f -> Pred.atom Pred.Eq (Pred.Field (src, f)) (Pred.Self out)
                | None -> Pred.atom Pred.Eq (Pred.Self src) (Pred.Self out)
              in
              let lp =
                derive (Logical.Join [ link ]) [ node.lp; build_lp ]
              in
              let mem = Bset.add out node.mem in
              mk (Physical.Hash_join [ link ]) [ build; node ]
                ~local:
                  (Costmodel.hash_join config ~build_card:build_lp.Lprops.card
                     ~build_bytes:
                       ((float_of_int co.Catalog.co_obj_bytes +. 16.0) *. build_lp.Lprops.card)
                     ~probe_card:node.lp.Lprops.card
                     ~probe_bytes:
                       ((Lprops.bytes_of node.lp (Bset.elements node.mem) +. 16.0)
                       *. node.lp.Lprops.card)
                     ~out_card:lp.Lprops.card ~atoms:1)
                ~lp ~mem
            | S_mat (src, field, out) ->
              let lp = derive (Logical.Mat { src; field; out }) [ node.lp ] in
              let target_cls =
                match Lprops.class_of lp out with Some c -> c | None -> "?"
              in
              let mem = Bset.add out node.mem in
              mk
                (Physical.Assembly
                   { paths = [ { Physical.ap_src = src; ap_field = field; ap_out = out } ];
                     window;
                     warm = None })
                [ node ]
                ~local:
                  (Costmodel.assembly config cat ~window ~stream_card:node.lp.Lprops.card
                     ~targets:[ target_cls ])
                ~lp ~mem)
          (apply_ready base_node) parts.steps
      in
      let pipeline = apply_ready pipeline in
      (* 4. leftover conjuncts as a filter, then the projection *)
      let with_filter =
        match !pending with
        | [] -> pipeline
        | leftover ->
          let lp = derive (Logical.Select leftover) [ pipeline.lp ] in
          mk (Physical.Filter leftover) [ pipeline ]
            ~local:
              (Costmodel.filter config ~card:pipeline.lp.Lprops.card
                 ~atoms:(List.length leftover))
            ~lp ~mem:pipeline.mem
      in
      let final =
        match parts.projs with
        | None -> with_filter
        | Some ps ->
          let lp = derive (Logical.Project ps) [ with_filter.lp ] in
          (* the project narrows the tuple to its operand bindings, so it
             can only deliver those in memory *)
          let keep =
            List.concat_map
              (fun (p : Logical.proj) -> Pred.bindings_of_operand p.Logical.p_expr)
              ps
          in
          mk (Physical.Alg_project ps) [ with_filter ]
            ~local:(Costmodel.alg_project config ~card:with_filter.lp.Lprops.card)
            ~lp
            ~mem:(Bset.filter (fun b -> List.mem b keep) with_filter.mem)
      in
      Ok final.plan)
