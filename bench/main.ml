(* Reproduction harness: regenerates every table and figure of the
   paper's evaluation (Section 4), prints paper-reported values next to
   measured ones, and adds validation/ablation experiments the paper
   could not run (estimated vs simulated execution, window and buffer
   sweeps). Optimization-time microbenchmarks run under Bechamel at the
   end. EXPERIMENTS.md summarizes the output of this program. *)

module Value = Oodb_storage.Value
module Logical = Oodb_algebra.Logical
module Catalog = Oodb_catalog.Catalog
module OC = Oodb_catalog.Open_oodb_catalog
module Config = Oodb_cost.Config
module Cost = Oodb_cost.Cost
module Q = Oodb_workloads.Queries
module Datagen = Oodb_workloads.Datagen
module Opt = Open_oodb.Optimizer
module Options = Open_oodb.Options
module Physprop = Open_oodb.Physprop
module Engine = Open_oodb.Model.Engine
module Db = Oodb_exec.Db
module Executor = Oodb_exec.Executor
module Greedy = Oodb_baselines.Greedy
module Naive = Oodb_baselines.Naive
module Json = Oodb_util.Json
module Metrics = Oodb_obs.Metrics
module Profile = Oodb_obs.Profile
module Feedback = Oodb_obs.Feedback
module Report = Oodb_obs.Report
module History = Oodb_obs.History
module Provenance = Oodb_obs.Provenance
module Plancache = Oodb_plancache.Plancache

let section title =
  Format.printf "@.============================================================@.";
  Format.printf "%s@." title;
  Format.printf "============================================================@."

let subsection title = Format.printf "@.---- %s ----@." title

(* The paper-exact catalog drives all estimates. *)
let cat = OC.catalog_with_indexes ()

(* The generated database validates plans by execution. Building it takes
   about a second. *)
let db = lazy (Datagen.generate ())

let optimize ?(options = Options.default) ?(catalog = cat) q = Opt.optimize ~options catalog q

let est ?options ?catalog q = Cost.total (Opt.cost (optimize ?options ?catalog q))

let show_plan label outcome =
  Format.printf "@.%s:@.%a@.anticipated cost: %a   (optimization %.4fs; %a)@." label
    Engine.pp_plan (Opt.plan_exn outcome) Cost.pp (Opt.cost outcome) outcome.Opt.opt_seconds
    Opt.pp_stats outcome.Opt.stats

let execute label plan =
  let rows, report = Executor.run_measured (Lazy.force db) plan in
  ignore rows;
  Format.printf "%-34s %a@." label Executor.pp_report report;
  report

(* ------------------------------------------------------------------ *)

let table1 () =
  section "Table 1. Catalog information (reconstructed; see DESIGN.md)";
  Format.printf "%a" Catalog.pp_table cat;
  Format.printf "Indexes: %s@."
    (String.concat ", "
       (List.map
          (fun ix ->
            Printf.sprintf "%s on %s(%s), %d keys" ix.Catalog.ix_name ix.Catalog.ix_coll
              (String.concat "." ix.Catalog.ix_path) ix.Catalog.ix_distinct)
          (Catalog.indexes cat)))

let figures_2_to_5 () =
  section "Figures 2, 3 and 5. Logical algebra expressions with Mat";
  subsection "Figure 2 (path expressions as Mat compositions)";
  Format.printf "%a@." Logical.pp Q.fig2;
  subsection "Figure 3 (set-valued path: Unnest + Mat)";
  Format.printf "%a@." Logical.pp Q.fig3;
  subsection "Figure 5 (Query 1 as presented to the optimizer)";
  Format.printf "%a@." Logical.pp Q.q1

(* Table 2 + Figures 6 and 7 --------------------------------------- *)

let query1 () =
  section "Query 1: path expressions and inter-object references";
  let all = optimize Q.q1 in
  let naive = optimize ~options:(Options.disable "mat-to-join" Options.default) Q.q1 in
  let no_window =
    optimize
      ~options:(Options.with_assembly_window 1 (Options.disable "mat-to-join" Options.default))
      Q.q1
  in
  let no_commute = optimize ~options:(Options.without_join_commutativity Options.default) Q.q1 in
  show_plan "Figure 6: optimal execution plan (all rules)" all;
  show_plan "Figure 7: plan without Mat-to-Join (naive pointer chasing)" naive;
  subsection "Table 2. Optimization results for Query 1";
  Format.printf "%-28s %10s %10s %12s %12s %14s@." "Configuration" "Opt [ms]" "plans" "Est [s]"
    "% of opt" "paper Est [s]";
  let all_cost = Cost.total (Opt.cost all) in
  let row label outcome paper =
    Format.printf "%-28s %10.2f %10d %12.1f %12.0f %14s@." label
      (outcome.Opt.opt_seconds *. 1000.0)
      outcome.Opt.stats.Engine.candidates
      (Cost.total (Opt.cost outcome))
      (100.0 *. Cost.total (Opt.cost outcome) /. all_cost)
      paper
  in
  row "All rules" all "161 (100%)";
  row "W/o Mat-to-Join (Fig. 7)" naive "681 (422%)";
  row "W/o window (and no joins)" no_window "1188 (737%)";
  row "W/o join commutativity" no_commute "-";
  Format.printf
    "(The paper obtained Fig. 7 by disabling join commutativity; our rule set still finds a\n\
    \ join-based plan in that configuration, so the pointer-chasing row disables Mat-to-Join —\n\
    \ see EXPERIMENTS.md.)@.";
  subsection "Execution on the generated database (beyond the paper)";
  let r_all = execute "optimal plan" (Opt.plan_exn all) in
  let r_naive = execute "naive pointer chasing" (Opt.plan_exn naive) in
  Format.printf "simulated-disk ratio naive/optimal: %.1fx@."
    (r_naive.Executor.simulated_seconds /. r_all.Executor.simulated_seconds)

(* Figures 8 and 9 --------------------------------------------------- *)

let query2 () =
  section "Query 2: collapse-to-index-scan over a path index";
  let all = optimize Q.q2 in
  let no_collapse = optimize ~options:(Options.disable "collapse-index-scan" Options.default) Q.q2 in
  show_plan "Figure 8: optimal plan (path index on mayor.name)" all;
  show_plan "Figure 9: plan without collapse-to-index-scan" no_collapse;
  Format.printf "@.est: with rule %.2fs (paper 0.08), without %.2fs (paper 119.6) — %.0fx apart@."
    (Cost.total (Opt.cost all))
    (Cost.total (Opt.cost no_collapse))
    (Cost.total (Opt.cost no_collapse) /. Cost.total (Opt.cost all));
  subsection "Execution on the generated database";
  ignore (execute "index-scan plan" (Opt.plan_exn all));
  ignore (execute "assembly plan (Fig. 9)" (Opt.plan_exn no_collapse))

(* Figures 10 and 11 ------------------------------------------------- *)

let query3 () =
  section "Query 3: physical properties and goal-directed search";
  let all = optimize Q.q3 in
  show_plan "Figure 10: optimal plan (assembly enforcer above the index scan)" all;
  subsection "Figure 11. The search state this plan comes from";
  Format.printf
    "Alg-Project requires {c, c.mayor} present in memory.  The collapsed index scan@.\
     delivers only {c}, so it cannot implement the Select subquery directly:@.\
     \  alternative 1: Filter with input {c, c.mayor}  ->  assembly over a full file scan@.\
     \  alternative 2: assembly ENFORCER for c.mayor over the plan for {c}  ->  index scan@.";
  let filter_based =
    optimize ~options:(Options.disable "collapse-index-scan" Options.default) Q.q3
  in
  let no_enforcer = optimize ~options:(Options.disable "assembly-enforcer" Options.default) Q.q3 in
  Format.printf "alternative 1 (no index):   %a   (paper: 119.6s)@." Cost.pp (Opt.cost filter_based);
  Format.printf "alternative 2 (chosen):     %a   (paper: 0.12s)@." Cost.pp (Opt.cost all);
  Format.printf "without the enforcer:       %a@." Cost.pp (Opt.cost no_enforcer);
  subsection "Execution on the generated database";
  ignore (execute "figure 10 plan" (Opt.plan_exn all))

(* Table 3 + Figures 12 and 13 --------------------------------------- *)

let query4 () =
  section "Query 4: heuristic (greedy) vs cost-based optimization";
  let all = optimize Q.q4 in
  show_plan "Figure 12: optimal plan (only the time index)" all;
  (match Greedy.optimize cat Q.q4 with
  | Ok plan ->
    Format.printf "@.Figure 13: greedy plan (uses both indexes):@.%a@.anticipated cost: %a@."
      Engine.pp_plan plan Cost.pp plan.Engine.cost
  | Error m -> Format.printf "greedy failed: %s@." m);
  subsection "Table 3. Anticipated execution times for Query 4 [s]";
  let with_indexes ixs =
    let c = OC.catalog () in
    List.iter (Catalog.add_index c) ixs;
    c
  in
  let configs =
    [ ("None", with_indexes []);
      ("Time only", with_indexes [ OC.idx_tasks_time ]);
      ("Name only", with_indexes [ OC.idx_employees_name ]);
      ("Both", with_indexes [ OC.idx_tasks_time; OC.idx_employees_name ]) ]
  in
  Format.printf "%-12s %14s %14s@." "Indexes" "All rules" "Greedy use";
  List.iter
    (fun (label, c) ->
      let full = est ~catalog:c Q.q4 in
      let greedy =
        match Greedy.optimize c Q.q4 with
        | Ok p -> Cost.total p.Engine.cost
        | Error _ -> nan
      in
      Format.printf "%-12s %14.2f %14.2f@." label full greedy)
    configs;
  Format.printf "paper:       None 108/108   Time 1.73/1.73   Name 28.4/28.4   Both 1.73/10.1@.";
  subsection "Execution on the generated database";
  ignore (execute "cost-based plan" (Opt.plan_exn all));
  match Greedy.optimize (Db.catalog (Lazy.force db)) Q.q4 with
  | Ok plan -> ignore (execute "greedy plan" plan)
  | Error m -> Format.printf "greedy failed: %s@." m

(* Estimated vs simulated execution ---------------------------------- *)

let validation () =
  section "Validation: anticipated I/O cost vs simulated disk time (beyond the paper)";
  Format.printf "%-8s %12s %14s %10s@." "query" "est io [s]" "simulated [s]" "rows";
  List.iter
    (fun (name, q) ->
      let d = Lazy.force db in
      let outcome = Opt.optimize (Db.catalog d) q in
      let plan = Opt.plan_exn outcome in
      let rows, report = Executor.run_measured d plan in
      Format.printf "%-8s %12.2f %14.2f %10d@." name (Opt.cost outcome).Cost.io
        report.Executor.simulated_seconds (List.length rows))
    [ ("q1", Q.q1); ("q2", Q.q2); ("q3", Q.q3); ("q4", Q.q4) ]

(* Ablations ---------------------------------------------------------- *)

let ablation_window () =
  section "Ablation: assembly window size (Query 2 assembly plan, 10,000 mayors)";
  Format.printf
    "Simulated on a memory-constrained machine (128 buffered pages) where the Person extent@.";
  Format.printf "does not fit: the window of open references is what reorders the fetches.@.";
  let small = Datagen.generate ~buffer_pages:128 () in
  Format.printf "%-10s %14s %16s@." "window" "est cost [s]" "simulated [s]";
  List.iter
    (fun w ->
      let options =
        Options.with_assembly_window w
          (Options.disable "mat-to-join"
             (Options.disable "collapse-index-scan" Options.default))
      in
      let outcome = optimize ~options ~catalog:(Db.catalog small) Q.q2 in
      let _, report = Executor.run_measured small (Opt.plan_exn outcome) in
      Format.printf "%-10d %14.2f %16.2f@." w
        (Cost.total (Opt.cost outcome))
        report.Executor.simulated_seconds)
    [ 1; 2; 4; 8; 16; 64; 256 ]

let ablation_buffer () =
  section "Ablation: buffer pool size vs naive pointer chasing (Query 1, simulated disk)";
  Format.printf
    "The cost model charges naive traversal for repeated dereferences; at execution time a@.";
  Format.printf
    "large enough buffer pool absorbs them (the effect the paper notes can only be studied@.";
  Format.printf "in the context of a real, working system). Small pools restore the gap.@.";
  Format.printf "%-14s %18s %18s %10s@." "buffer [pages]" "optimal sim [s]" "naive sim [s]"
    "ratio";
  List.iter
    (fun pages ->
      let d = Datagen.generate ~buffer_pages:pages () in
      let dcat = Db.catalog d in
      let optimal = Opt.plan_exn (Opt.optimize dcat Q.q1) in
      let naive =
        Opt.plan_exn (Opt.optimize ~options:(Options.disable "mat-to-join" Options.default) dcat Q.q1)
      in
      let _, r_opt = Executor.run_measured d optimal in
      let _, r_naive = Executor.run_measured d naive in
      Format.printf "%-14d %18.2f %18.2f %10.1f@." pages r_opt.Executor.simulated_seconds
        r_naive.Executor.simulated_seconds
        (r_naive.Executor.simulated_seconds /. r_opt.Executor.simulated_seconds))
    [ 16; 64; 256; 1024 ]

let ablation_selectivity () =
  section "Ablation: default selectivity (Query 4 without indexes)";
  Format.printf "%-14s %14s@." "default sel." "est cost [s]";
  List.iter
    (fun s ->
      let config = { Config.default with Config.default_selectivity = s } in
      let options = Options.with_config config Options.default in
      let c = OC.catalog () in
      Format.printf "%-14.2f %14.2f@." s (est ~options ~catalog:c Q.q4))
    [ 0.01; 0.05; 0.10; 0.25; 0.50 ]

let ablation_pruning () =
  section "Ablation: branch-and-bound pruning (search effort on Query 1)";
  let run pruning =
    optimize ~options:{ Options.default with Options.pruning } Q.q1
  in
  let on = run true and off = run false in
  Format.printf "%-12s %10s %10s %12s@." "pruning" "plans" "memo hits" "est [s]";
  Format.printf "%-12s %10d %10d %12.1f@." "on" on.Opt.stats.Engine.candidates
    on.Opt.stats.Engine.phys_memo_hits
    (Cost.total (Opt.cost on));
  Format.printf "%-12s %10d %10d %12.1f@." "off" off.Opt.stats.Engine.candidates
    off.Opt.stats.Engine.phys_memo_hits
    (Cost.total (Opt.cost off))

let ablation_guidance () =
  section "Heuristic guidance: seeding branch-and-bound with the greedy plan's cost";
  Format.printf
    "The paper lists evaluating Volcano's heuristic guidance and pruning as future work.@.";
  Format.printf
    "Seeding the cost limit with the greedy baseline's estimate prunes the search:@.";
  Format.printf "%-28s %12s %12s %12s@." "query" "unseeded" "seeded" "est [s]";
  List.iter
    (fun (name, q) ->
      let unseeded = optimize q in
      match Greedy.optimize cat q with
      | Error _ -> Format.printf "%-28s (greedy not applicable)@." name
      | Ok g ->
        (* a hair of slack: the heuristic accumulates costs in a different
           order, so its total can differ from the search's by an ulp *)
        let limit = Cost.add g.Engine.cost (Cost.cpu 1e-6) in
        let seeded = Opt.optimize ~initial_limit:limit cat q in
        Format.printf "%-28s %12d %12d %12.2f@." name
          unseeded.Opt.stats.Engine.candidates seeded.Opt.stats.Engine.candidates
          (Cost.total (Opt.cost seeded));
        assert (Cost.total (Opt.cost seeded) <= Cost.total (Opt.cost unseeded) +. 1e-9))
    [ ("q1", Q.q1); ("q2", Q.q2); ("q3", Q.q3); ("q4", Q.q4) ]

(* Wide-join search scaling ------------------------------------------- *)

(* How optimization time and memo size grow with join width, under the
   guided (promise-ordered, cost-bounded) search and under the
   exhaustive default. One cold run per width: at these scales the
   signal is orders of magnitude, not microseconds. The exhaustive side
   is skipped beyond [exhaustive_max_width] — it measures ~16s at width
   10 and grows ~15x per width — so the sweep stays inside a CI budget
   while the guided side still covers the headline width. *)
let scale_widths = [ 4; 6; 8; 10 ]

let exhaustive_max_width = 8

let search_scale_measurements () =
  List.map
    (fun width ->
      let q = Q.join_chain width in
      let time options =
        Gc.full_major ();
        let t0 = Unix.gettimeofday () in
        let o = Opt.optimize ~options cat q in
        (Unix.gettimeofday () -. t0, o)
      in
      let guided_s, o = time (Options.with_guided Options.default) in
      let exhaustive_s =
        if width <= exhaustive_max_width then fst (time Options.default) else Float.nan
      in
      let st = o.Opt.stats in
      { History.s_width = width;
        s_opt_seconds = guided_s;
        s_exhaustive_seconds = exhaustive_s;
        s_groups = st.Engine.groups;
        s_mexprs = st.Engine.mexprs;
        s_candidates = st.Engine.candidates;
        s_pruned = st.Engine.pruned_candidates + st.Engine.pruned_subgoals })
    scale_widths

let pp_search_scale rows =
  Format.printf "%6s %12s %12s %8s %8s %8s %8s@." "width" "guided [s]" "exhaust [s]"
    "groups" "mexprs" "plans" "pruned";
  List.iter
    (fun (s : History.scale_rec) ->
      Format.printf "%6d %12.3f %12s %8d %8d %8d %8d@." s.History.s_width
        s.History.s_opt_seconds
        (if Float.is_nan s.History.s_exhaustive_seconds then "-"
         else Printf.sprintf "%.3f" s.History.s_exhaustive_seconds)
        s.History.s_groups s.History.s_mexprs s.History.s_candidates s.History.s_pruned)
    rows

let search_scale () =
  section "Wide-join scaling: guided search over n-way join chains";
  let rows = search_scale_measurements () in
  pp_search_scale rows;
  rows

(* Standalone CI smoke mode: run the sweep and fail if the widest chain
   blew the time budget (OODB_SCALE_BUDGET seconds, default 120). *)
let search_scale_gate () =
  let budget =
    match Sys.getenv_opt "OODB_SCALE_BUDGET" with
    | Some s -> (try float_of_string s with _ -> 120.0)
    | None -> 120.0
  in
  let rows = search_scale () in
  let worst =
    List.fold_left (fun m (s : History.scale_rec) -> Float.max m s.History.s_opt_seconds) 0.0
      rows
  in
  if worst > budget then begin
    Format.printf "FAIL: slowest guided width took %.1fs (budget %.1fs)@." worst budget;
    1
  end
  else begin
    Format.printf "ok: slowest guided width took %.1fs (budget %.1fs)@." worst budget;
    0
  end

let ablation_warm_start () =
  section "Extension: Lesson-7 warm-start assembly (opt-in; beyond the paper)";
  Format.printf
    "The paper's Lesson 7 proposes pre-scanning a scannable collection before assembly.@.";
  Format.printf "Enabling the implemented rule improves the paper's own optimal Query 1 plan:@.";
  let base = optimize Q.q1 in
  let warm = optimize ~options:(Options.with_warm_start Options.default) Q.q1 in
  Format.printf "  all paper rules:        %a@." Cost.pp (Opt.cost base);
  Format.printf "  + warm-start assembly:  %a@." Cost.pp (Opt.cost warm);
  show_plan "Query 1 plan with warm-start enabled" warm;
  subsection "Execution on the generated database";
  ignore (execute "paper-optimal plan" (Opt.plan_exn base));
  ignore (execute "warm-start plan" (Opt.plan_exn warm))

let ablation_merge_join () =
  section "Extension: merge join and the sort-order property (beyond the paper)";
  Format.printf
    "The paper's optimizer 'currently does not use merge-join'; this implementation adds it.@.";
  Format.printf
    "Resolving task team members against Employees with hash/pointer joins and@.";
  Format.printf
    "assembly disabled: only merge join remains, with the Employees file scan@.";
  Format.printf
    "delivering identity order for free and a sort enforcer on the member side.@.";
  let member_query =
    Oodb_algebra.Logical.(
      get ~coll:"Tasks" ~binding:"t"
      |> unnest ~out:"m" ~src:"t" ~field:"team_members"
      |> mat_ref ~out:"e" ~src:"m"
      |> select
           [ Oodb_algebra.Pred.atom Oodb_algebra.Pred.Ge
               (Oodb_algebra.Pred.Field ("e", "age"))
               (Oodb_algebra.Pred.Const (Oodb_storage.Value.Int 40)) ])
  in
  let options =
    List.fold_left (fun o r -> Options.disable r o) Options.default
      [ "hash-join"; "pointer-join"; "mat-assembly" ]
  in
  let outcome = optimize ~options member_query in
  show_plan "member query via merge join" outcome;
  Format.printf "vs the unrestricted optimum: %a@." Cost.pp
    (Opt.cost (optimize member_query));
  subsection "Execution on the generated database";
  ignore (execute "merge-join plan" (Opt.plan_exn outcome))

(* Vectorized execution: tuple-at-a-time vs batch-at-a-time ----------- *)

(* Same plans, same row multisets (test_vectorized checks that); this
   measures only the engine-side wall time of pulling the iterator tree
   at batch size 1 (the classic Volcano protocol) vs the default 64.

   Methodology: the repetition count is calibrated per query so every
   trial runs for a comparable wall time, the two configurations are
   measured in interleaved trials (so drift affects both alike), each
   trial starts from a warm-up run and a completed major GC collection
   (so one configuration's garbage is not collected on the other's
   clock), and the reported figure is the minimum over trials — the
   standard estimator for the noise-free cost of a deterministic
   computation. *)
let vectorized_measurements ?(trials = 5) () =
  let d = Lazy.force db in
  let dcat = Db.catalog d in
  let trial plan batch_size reps =
    let config = { Config.default with Config.batch_size } in
    ignore (Executor.run ~config d plan);
    Gc.full_major ();
    let t0 = Sys.time () in
    for _ = 1 to reps do
      ignore (Executor.run ~config d plan)
    done;
    (Sys.time () -. t0) /. float_of_int reps
  in
  let per_query =
    List.map
      (fun (name, q) ->
        let plan = Opt.plan_exn (Opt.optimize dcat q) in
        let config = { Config.default with Config.batch_size = 1 } in
        ignore (Executor.run ~config d plan);
        let t0 = Sys.time () in
        ignore (Executor.run ~config d plan);
        let once = Sys.time () -. t0 in
        let reps = max 5 (min 100_000 (int_of_float (0.1 /. Float.max once 1e-6))) in
        let t1 = ref infinity and t64 = ref infinity in
        for _ = 1 to trials do
          t1 := Float.min !t1 (trial plan 1 reps);
          t64 := Float.min !t64 (trial plan 64 reps)
        done;
        let t1 = !t1 and t64 = !t64 in
        (name, t1, t64, if t64 > 0. then t1 /. t64 else infinity))
      [ ("q1", Q.q1); ("q2", Q.q2); ("q3", Q.q3); ("q4", Q.q4) ]
  in
  let json =
    Json.Obj
      [ ("batch_sizes", Json.List [ Json.Int 1; Json.Int 64 ]);
        ("trials", Json.Int trials);
        ( "queries",
          Json.List
            (List.map
               (fun (name, t1, t64, sp) ->
                 Json.Obj
                   [ ("query", Json.String name);
                     ("tuple_at_a_time_seconds", Json.float t1);
                     ("batch64_seconds", Json.float t64);
                     ("speedup", Json.float sp) ])
               per_query) ) ]
  in
  (per_query, json)

let vectorized_execution () =
  section "Vectorized execution: tuple-at-a-time vs batch-at-a-time (beyond the paper)";
  Format.printf
    "Same plans and rows; the only change is the unit flowing between operators.@.";
  let per_query, _ = vectorized_measurements () in
  Format.printf "%-8s %15s %15s %10s@." "query" "batch=1 [ms]" "batch=64 [ms]" "speedup";
  List.iter
    (fun (name, t1, t64, sp) ->
      Format.printf "%-8s %15.3f %15.3f %9.2fx@." name (t1 *. 1000.) (t64 *. 1000.) sp)
    per_query

(* Repeated workload: plan cache + multi-query optimization ----------- *)

(* One cold pass of the whole workload through the plan cache (batched
   over a shared memo), then [repeats] warm passes that should be pure
   fingerprint-and-lookup. Also compares the shared memo's final group
   count against the sum of per-query memos — the space the memo-level
   MQO saves. Returned as JSON for BENCH_results.json and printed as a
   section of the full run. *)
let plan_cache_measurements ?(repeats = 5) () =
  let qs = List.map snd Q.all in
  let pc = Plancache.create () in
  let total os =
    List.fold_left (fun acc (o : Plancache.outcome) -> acc +. o.Plancache.opt_seconds) 0. os
  in
  let cold = Plancache.optimize_all pc cat qs in
  let warm_passes = List.init repeats (fun _ -> Plancache.optimize_all pc cat qs) in
  let cold_seconds = total cold in
  let warm_seconds =
    List.fold_left (fun acc p -> acc +. total p) 0. warm_passes /. float_of_int repeats
  in
  let shared_groups =
    match List.rev cold with
    | last :: _ -> last.Plancache.stats.Engine.groups
    | [] -> 0
  in
  let individual_groups =
    List.fold_left
      (fun acc q -> acc + (Opt.optimize cat q).Opt.stats.Engine.groups)
      0 qs
  in
  let s = Plancache.stats pc in
  let json =
    Json.Obj
      [ ("queries", Json.Int (List.length qs));
        ("repeats", Json.Int repeats);
        ("cold_opt_seconds", Json.float cold_seconds);
        ("warm_opt_seconds", Json.float warm_seconds);
        ( "speedup",
          Json.float (if warm_seconds > 0. then cold_seconds /. warm_seconds else infinity) );
        ( "mqo",
          Json.Obj
            [ ("individual_groups_total", Json.Int individual_groups);
              ("shared_memo_groups", Json.Int shared_groups) ] );
        ("cache", Plancache.stats_json s) ]
  in
  (cold_seconds, warm_seconds, individual_groups, shared_groups, s, json)

let repeated_workload () =
  section "Repeated workload: plan cache and memo-level MQO (beyond the paper)";
  let cold_s, warm_s, individual, shared, s, _json = plan_cache_measurements () in
  Format.printf "cold pass (6 queries, shared memo):  %.6fs@." cold_s;
  Format.printf "warm pass (plan cache, avg of 5):    %.6fs  (%.0fx faster)@." warm_s
    (if warm_s > 0. then cold_s /. warm_s else infinity);
  Format.printf "memo groups: %d per-query total vs %d shared (MQO saves %d)@." individual
    shared (individual - shared);
  Format.printf "cache: %d hits, %d misses, %d insertions@." s.Plancache.hits
    s.Plancache.misses s.Plancache.insertions

(* The cardinality-feedback loop -------------------------------------- *)

(* Cold optimize on the skewed catalog (employee-name distinct corrupted
   to 2 where the data has ~100), one profiled execution, harvest the
   observed statistics, re-optimize with them installed: the plan flips
   from the full file scan to the name-index scan, and the winner is
   cheaper by *measured* simulated disk time, not just by estimate. The
   same loop `oodb run --skewed --feedback` closes across processes. *)
let feedback_loop_measurements () =
  let d = Datagen.generate_skewed ~scale:0.05 () in
  let dcat = Db.catalog d in
  let cold = Opt.optimize dcat Q.fred in
  let cold_plan = Opt.plan_exn cold in
  let _, r_cold, prof_cold = Profile.run d cold_plan in
  let fb = Feedback.create dcat in
  let harvested = Feedback.harvest fb Config.default dcat prof_cold in
  let cold_q = Feedback.plan_quality prof_cold in
  let options = Feedback.install fb Options.default in
  let warm = Opt.optimize ~options dcat Q.fred in
  let warm_plan = Opt.plan_exn warm in
  let _, r_warm, prof_warm = Profile.run ~config:options.Options.config d warm_plan in
  let warm_q = Feedback.plan_quality prof_warm in
  let rec flatten depth (n : Profile.node) =
    (depth, n) :: List.concat_map (flatten (depth + 1)) n.Profile.children
  in
  let side (prof : Profile.node) (report : Executor.io_report) (max_q, mean_q) =
    Json.Obj
      [ ("simulated_seconds", Json.float report.Executor.simulated_seconds);
        ("max_qerror", Json.float max_q);
        ("mean_qerror", Json.float mean_q);
        ( "nodes",
          Json.List
            (List.map
               (fun (_, (n : Profile.node)) ->
                 Json.Obj
                   [ ("op", Json.String (Open_oodb.Physical.to_string n.Profile.alg));
                     ("est_rows", Json.float n.Profile.est_rows);
                     ("actual_rows", Json.Int n.Profile.actual_rows);
                     ("q_error", Json.float n.Profile.q_error);
                     ("est_source", Json.String n.Profile.est_source) ])
               (flatten 0 prof)) ) ]
  in
  let json =
    Json.Obj
      [ ("query", Json.String "fred");
        ("harvested_observations", Json.Int harvested);
        ("cold", side prof_cold r_cold cold_q);
        ("with_feedback", side prof_warm r_warm warm_q);
        ( "simulated_speedup",
          Json.float
            (if r_warm.Executor.simulated_seconds > 0. then
               r_cold.Executor.simulated_seconds /. r_warm.Executor.simulated_seconds
             else infinity) ) ]
  in
  ((cold_plan, r_cold, prof_cold, cold_q), (warm_plan, r_warm, prof_warm, warm_q),
   harvested, flatten, json)

let feedback_loop () =
  section "Cardinality feedback: one profiled run flips the plan (beyond the paper)";
  Format.printf
    "Skewed catalog: Employee.name recorded as 2 distinct values where the data has ~100,@.";
  Format.printf
    "so the cold optimizer prices name == \"Fred\" at selectivity 1/2 and rejects the index.@.";
  let (cold_plan, r_cold, prof_cold, (cold_max, cold_mean)),
      (warm_plan, r_warm, prof_warm, (warm_max, warm_mean)),
      harvested, flatten, _json =
    feedback_loop_measurements ()
  in
  let table title prof =
    Format.printf "@.%s (est vs actual):@." title;
    Format.printf "  %-44s %10s %10s %8s %s@." "operator" "est" "actual" "q-error" "source";
    List.iter
      (fun (depth, (n : Profile.node)) ->
        Format.printf "  %-44s %10.1f %10d %8.2f %s@."
          (String.make (2 * depth) ' ' ^ Open_oodb.Physical.to_string n.Profile.alg)
          n.Profile.est_rows n.Profile.actual_rows n.Profile.q_error n.Profile.est_source)
      (flatten 0 prof)
  in
  Format.printf "@.cold plan:@.%a@." Engine.pp_plan cold_plan;
  table "cold execution" prof_cold;
  Format.printf "  plan quality: max q-error %.2f, mean %.2f; %d observation(s) harvested@."
    cold_max cold_mean harvested;
  Format.printf "@.re-optimized with feedback installed:@.%a@." Engine.pp_plan warm_plan;
  table "corrected execution" prof_warm;
  Format.printf "  plan quality: max q-error %.2f, mean %.2f@." warm_max warm_mean;
  Format.printf "@.simulated disk: cold %.2fs vs corrected %.2fs (%.1fx cheaper by actuals)@."
    r_cold.Executor.simulated_seconds r_warm.Executor.simulated_seconds
    (r_cold.Executor.simulated_seconds /. Float.max 1e-9 r_warm.Executor.simulated_seconds)

(* Provenance overhead and why-not smoke ------------------------------ *)

(* Optimizer wall time on the width-8 chain join with provenance
   recording on (the default) vs off, min over interleaved trials. The
   5% gate is advisory (report-only): the number lands in the history
   record so drifts are visible, but a noisy CI box never fails on it. *)
let provenance_overhead_budget_pct = 5.0

let provenance_overhead ?(trials = 5) () =
  let q = Q.join_chain 8 in
  (* CPU time, not wall time: the diff of two ~0.2s measurements is
     exactly where scheduler jitter would otherwise dominate the
     statistic. *)
  let time options =
    Gc.full_major ();
    let t0 = Sys.time () in
    ignore (Opt.optimize ~options cat q);
    Sys.time () -. t0
  in
  let on = ref infinity and off = ref infinity in
  for _ = 1 to trials do
    off := Float.min !off (time (Options.without_provenance Options.default));
    on := Float.min !on (time Options.default)
  done;
  let pct = if !off > 0. then 100. *. (!on -. !off) /. !off else Float.nan in
  Format.printf
    "provenance overhead (chain-8, min of %d): on %.4fs vs off %.4fs = %+.1f%%%s@."
    trials !on !off pct
    (if pct > provenance_overhead_budget_pct then
       Printf.sprintf "  WARNING: over the %.0f%% budget (report-only)"
         provenance_overhead_budget_pct
     else "");
  pct

(* Wall seconds of representative why-not classifications (optimize +
   classify), one per death mode — the explanation path must stay
   interactive. *)
let whynot_smoke () =
  let time name options shape =
    let q = if String.length name >= 5 && String.sub name 0 5 = "chain" then Q.join_chain 8 else Q.q1 in
    Gc.full_major ();
    let t0 = Unix.gettimeofday () in
    let outcome = Opt.optimize ~options cat q in
    let replay options = Opt.optimize ~options cat q in
    (match Provenance.classify ~options ~replay outcome shape with
    | Ok _ -> ()
    | Error e -> Format.printf "  why-not smoke %s failed: %s@." name e);
    let dt = Unix.gettimeofday () -. t0 in
    Format.printf "  why-not %-24s %.4fs@." name dt;
    (name, dt)
  in
  [ time "q1-merge-lost" Options.default (Provenance.Force_join "merge");
    time "q1-merge-disabled"
      (Options.disable "merge-join" Options.default)
      (Provenance.Force_join "merge");
    time "chain8-guided-hash-pruned"
      (Options.with_guided Options.default)
      (Provenance.Force_join "hash") ]

(* Bench history: the regression gate's input ------------------------- *)

let git_sha () =
  match Sys.getenv_opt "OODB_GIT_SHA" with
  | Some s when s <> "" -> s
  | _ -> (
    try
      let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
      let line = try input_line ic with End_of_file -> "" in
      ignore (Unix.close_process_in ic);
      if line = "" then "unknown" else line
    with _ -> "unknown")

let iso_date () =
  let tm = Unix.gmtime (Unix.time ()) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec

let median xs =
  match List.sort Float.compare xs with
  | [] -> nan
  | sorted -> List.nth sorted (List.length sorted / 2)

(* One schema-versioned record for BENCH_history.jsonl: per-query
   min/median optimization and execution wall times (min over interleaved
   trials, the same noise discipline as the vectorized section), the
   search's memo size and rule work (stable across runs — a drift means
   the optimizer changed, not the machine), and a deterministic
   cold+warm plan-cache sweep whose hit rate is exactly 0.5 when the
   cache works. *)
let history_record ?(trials = 5) ~scale () =
  let d = Lazy.force db in
  let dcat = Db.catalog d in
  let time f =
    Gc.full_major ();
    let t0 = Sys.time () in
    let v = f () in
    (Sys.time () -. t0, v)
  in
  let queries =
    List.map
      (fun (name, q) ->
        let outcome = Opt.optimize dcat q in
        let plan = Opt.plan_exn outcome in
        ignore (Executor.run d plan);
        (* One profiled pass for plan quality; the timing trials below
           stay unprofiled so interposition cost never contaminates them. *)
        let _, _, prof = Profile.run d plan in
        let _, mean_qerror = Feedback.plan_quality prof in
        let opt_times = ref [] and exec_times = ref [] and rows = ref 0 in
        for _ = 1 to trials do
          let dt, _ = time (fun () -> Opt.optimize dcat q) in
          opt_times := dt :: !opt_times;
          let dt, rs = time (fun () -> Executor.run d plan) in
          exec_times := dt :: !exec_times;
          rows := List.length rs
        done;
        { History.q_name = name;
          q_opt_min = List.fold_left Float.min infinity !opt_times;
          q_opt_median = median !opt_times;
          q_exec_min = List.fold_left Float.min infinity !exec_times;
          q_exec_median = median !exec_times;
          q_rows = !rows;
          q_groups = outcome.Opt.stats.Engine.groups;
          q_rules_fired = outcome.Opt.stats.Engine.trule_fired;
          q_mean_qerror = mean_qerror })
      [ ("q1", Q.q1); ("q2", Q.q2); ("q3", Q.q3); ("q4", Q.q4) ]
  in
  let cache_hit_rate =
    let pc = Plancache.create () in
    let qs = List.map snd Q.all in
    ignore (Plancache.optimize_all pc cat qs);
    ignore (Plancache.optimize_all pc cat qs);
    let s = Plancache.stats pc in
    float_of_int s.Plancache.hits /. float_of_int (s.Plancache.hits + s.Plancache.misses)
  in
  { History.r_git_sha = git_sha ();
    r_date = iso_date ();
    r_batch_size = Config.default.Config.batch_size;
    r_cache_hit_rate = cache_hit_rate;
    r_queries = queries;
    r_search_scale = scale;
    r_provenance_overhead_pct = provenance_overhead ();
    r_whynot_smoke = whynot_smoke () }

let history_path () =
  match Sys.getenv_opt "OODB_BENCH_HISTORY" with
  | Some p when p <> "" -> p
  | _ -> "BENCH_history.jsonl"

let append_history ~scale () =
  let r = history_record ~scale () in
  let path = history_path () in
  History.append path r;
  Format.printf "appended %s record %s (%s) to %s@."
    (match Sys.getenv_opt "OODB_BATCH_SIZE" with
    | Some b -> "batch-size-" ^ b
    | None -> "default")
    r.History.r_git_sha r.History.r_date path;
  List.iter
    (fun (q : History.query_rec) ->
      Format.printf "  %-4s opt min %.6fs median %.6fs | exec min %.6fs median %.6fs | %d rows, %d groups@."
        q.History.q_name q.History.q_opt_min q.History.q_opt_median q.History.q_exec_min
        q.History.q_exec_median q.History.q_rows q.History.q_groups)
    r.History.r_queries

(* Optimization-time microbenchmarks ---------------------------------- *)

let bechamel_benchmarks () =
  section "Optimization-time microbenchmarks (Bechamel)";
  let open Bechamel in
  let open Toolkit in
  let mk name ?(options = Options.default) q =
    Test.make ~name (Staged.stage (fun () -> ignore (Opt.optimize ~options cat q)))
  in
  let greedy_cat = cat in
  let tests =
    [ mk "table2/q1-all-rules" Q.q1;
      mk "table2/q1-wo-mat-to-join" ~options:(Options.disable "mat-to-join" Options.default) Q.q1;
      mk "table2/q1-wo-window"
        ~options:(Options.with_assembly_window 1 (Options.disable "mat-to-join" Options.default))
        Q.q1;
      mk "fig8/q2-index-collapse" Q.q2;
      mk "fig9/q2-wo-collapse" ~options:(Options.disable "collapse-index-scan" Options.default)
        Q.q2;
      mk "fig10/q3-enforcer" Q.q3;
      mk "fig12/q4-cost-based" Q.q4;
      Test.make ~name:"fig13/q4-greedy"
        (Staged.stage (fun () -> ignore (Greedy.optimize greedy_cat Q.q4)));
      mk "fig2/multi-path-expression" Q.fig2;
      (let deep =
         Oodb_algebra.Logical.(
           get ~coll:"Cities" ~binding:"c"
           |> mat ~src:"c" ~field:"mayor"
           |> mat ~src:"c" ~field:"country"
           |> mat ~src:"c.country" ~field:"president"
           |> mat ~src:"c.country" ~field:"capital"
           |> select
                [ Oodb_algebra.Pred.atom Oodb_algebra.Pred.Ge
                    (Oodb_algebra.Pred.Field ("c.mayor", "age"))
                    (Oodb_algebra.Pred.Const (Oodb_storage.Value.Int 30)) ])
       in
       mk "stress/four-link-path" deep);
      Test.make ~name:"zql/parse-simplify"
        (Staged.stage (fun () ->
             ignore
               (Zql.Simplify.compile cat
                  {| SELECT c.name FROM c IN Cities WHERE c.mayor.name == "Joe" |}))) ]
  in
  let grouped = Test.make_grouped ~name:"opt" ~fmt:"%s %s" tests in
  let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 0.25) ~kde:None () in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] grouped in
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name est acc -> (name, est) :: acc) results [] in
  Format.printf "%-36s %14s@." "benchmark" "per opt [ms]";
  rows
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  |> List.iter (fun (name, est) ->
         match Analyze.OLS.estimates est with
         | Some [ ns ] -> Format.printf "%-36s %14.3f@." name (ns /. 1e6)
         | _ -> Format.printf "%-36s %14s@." name "-")

(* Machine-readable results ------------------------------------------ *)

(* BENCH_results.json: the paper's headline tables plus the full
   per-query observability records (search trace aggregates, plan costs,
   measured I/O, per-operator profiles) from lib/obs. The [--json] flag
   emits only this file, for CI. *)
let json_results ~scale path =
  let t2_configs =
    [ ("all-rules", Options.default);
      ("wo-mat-to-join", Options.disable "mat-to-join" Options.default);
      ( "wo-window",
        Options.with_assembly_window 1 (Options.disable "mat-to-join" Options.default) );
      ("wo-join-commute", Options.without_join_commutativity Options.default) ]
  in
  let table2 =
    Json.List
      (List.map
         (fun (label, options) ->
           let o = optimize ~options Q.q1 in
           Json.Obj
             [ ("configuration", Json.String label);
               ("opt_ms", Json.float (o.Opt.opt_seconds *. 1000.0));
               ("plans", Json.Int o.Opt.stats.Engine.candidates);
               ("est_seconds", Json.float (Cost.total (Opt.cost o))) ])
         t2_configs)
  in
  let table3 =
    let with_indexes ixs =
      let c = OC.catalog () in
      List.iter (Catalog.add_index c) ixs;
      c
    in
    Json.List
      (List.map
         (fun (label, c) ->
           let full = est ~catalog:c Q.q4 in
           let greedy =
             match Greedy.optimize c Q.q4 with
             | Ok p -> Json.float (Cost.total p.Engine.cost)
             | Error _ -> Json.Null
           in
           Json.Obj
             [ ("indexes", Json.String label);
               ("all_rules_est_seconds", Json.float full);
               ("greedy_est_seconds", greedy) ])
         [ ("none", with_indexes []);
           ("time-only", with_indexes [ OC.idx_tasks_time ]);
           ("name-only", with_indexes [ OC.idx_employees_name ]);
           ("both", with_indexes [ OC.idx_tasks_time; OC.idx_employees_name ]) ])
  in
  let registry = Metrics.create () in
  let reports =
    List.map
      (* 256 retained events per query keep the artifact small; the trace
         aggregates stay exact regardless of the window. *)
      (fun (name, q) -> Report.collect ~registry ~trace_capacity:256 (Lazy.force db) ~name q)
      Q.all
  in
  let _, _, _, _, _, plan_cache = plan_cache_measurements () in
  let _, vectorized = vectorized_measurements () in
  let _, _, _, _, feedback_loop = feedback_loop_measurements () in
  let json =
    Json.Obj
      [ ("schema_version", Json.Int 1);
        ("table2", table2);
        ("table3", table3);
        ("plan_cache", plan_cache);
        ("vectorized", vectorized);
        ("feedback_loop", feedback_loop);
        ("search_scale", Json.List (List.map History.scale_json scale));
        ("workload", Report.workload_json ~registry reports) ]
  in
  let oc = open_out path in
  output_string oc (Json.to_string json);
  output_char oc '\n';
  close_out oc;
  Format.printf "wrote %s@." path

let () =
  if Array.exists (fun a -> a = "--search-scale") Sys.argv then exit (search_scale_gate ());
  if Array.exists (fun a -> a = "--history") Sys.argv then begin
    append_history ~scale:(search_scale_measurements ()) ();
    exit 0
  end;
  if Array.exists (fun a -> a = "--json") Sys.argv then begin
    let scale = search_scale () in
    json_results ~scale "BENCH_results.json";
    append_history ~scale ();
    exit 0
  end;
  Format.printf "Open OODB query optimizer: reproduction of the SIGMOD'93 evaluation@.";
  table1 ();
  figures_2_to_5 ();
  query1 ();
  query2 ();
  query3 ();
  query4 ();
  validation ();
  ablation_window ();
  ablation_buffer ();
  ablation_selectivity ();
  ablation_pruning ();
  ablation_guidance ();
  ablation_warm_start ();
  ablation_merge_join ();
  let scale = search_scale () in
  vectorized_execution ();
  repeated_workload ();
  feedback_loop ();
  bechamel_benchmarks ();
  json_results ~scale "BENCH_results.json";
  append_history ~scale ();
  Format.printf "@.done.@."
